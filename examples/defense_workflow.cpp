// Defense workflow: the full inspect-and-prune loop of the paper's
// motivation, measured.  Attacks a set of victims with FGA-T and with
// GEAttack, then lets an analyst armed with GNNExplainer iteratively prune
// the most suspicious incident edges.  Recovery rate against FGA-T is high;
// against GEAttack it drops — the safety gap the paper demonstrates.
//
// The whole loop is graph-native (sparse context, edge-list deltas,
// ball-local re-predicts): one ProtocolContext bundles model + features +
// inspector, one working Graph is patched per target and restored, and
// nothing n×n is ever materialized — the same code runs at 100k+ nodes.
//
// Build & run:  ./build/examples/defense_workflow

#include <iostream>

#include "src/attack/fga.h"
#include "src/core/geattack.h"
#include "src/defense/inspector_defense.h"
#include "src/eval/pipeline.h"
#include "src/eval/report.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/datasets.h"
#include "src/nn/trainer.h"

namespace {

struct DefenseStats {
  int attacked = 0;
  int recovered = 0;
  int adversarial_pruned = 0;
  int total_pruned = 0;
};

DefenseStats Evaluate(const geattack::AttackContext& ctx,
                      const geattack::ProtocolContext& pctx,
                      const geattack::TargetedAttack& attack,
                      const std::vector<geattack::PreparedTarget>& targets,
                      geattack::Rng* rng) {
  using namespace geattack;
  DefenseStats stats;
  // One working graph for every target: patch with the attack's edge-list
  // delta, defend in place, restore.
  Graph work = ctx.data->graph;
  for (const PreparedTarget& t : targets) {
    AttackRequest req{t.node, t.target_label, t.budget};
    const AttackResult result = attack.Attack(ctx, req, rng);
    for (const Edge& e : result.added_edges) work.AddEdge(e.u, e.v);
    if (PredictAtNode(pctx, work, t.node) == t.target_label) {
      ++stats.attacked;
      InspectorDefenseConfig cfg;
      cfg.prune_top = 2 * t.budget;
      const DefenseOutcome d = InspectAndPruneInPlace(pctx, &work, t.node, cfg,
                                                      &result.added_edges);
      if (d.prediction_after == t.true_label) ++stats.recovered;
      stats.adversarial_pruned += static_cast<int>(d.true_adversarial_pruned);
      stats.total_pruned += static_cast<int>(d.pruned_edges.size());
      for (const Edge& e : d.pruned_edges) work.AddEdge(e.u, e.v);
    }
    for (const Edge& e : result.added_edges) work.RemoveEdge(e.u, e.v);
  }
  return stats;
}

}  // namespace

int main() {
  using namespace geattack;
  Rng rng(17);
  GraphData data = MakeDataset(DatasetId::kCora, /*scale=*/0.1, &rng);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainResult tr;
  Gcn model = TrainNewGcn(data, split, TrainConfig{}, &rng, &tr);
  // Sparse-only context: no dense adjacency exists anywhere in this demo.
  AttackContext ctx = MakeSparseAttackContext(data, model);
  auto victims = SelectTargetNodes(
      data, tr.final_logits, split.test,
      {.top_margin = 3, .bottom_margin = 3, .random = 3}, &rng);
  auto targets = PrepareTargets(ctx, victims, &rng, /*sparse=*/true);
  std::cout << "defending " << targets.size() << " attacked victims on a "
            << data.num_nodes() << "-node CORA stand-in\n";

  GnnExplainerConfig icfg;
  icfg.epochs = 40;
  GnnExplainer inspector(&model, &data.features, icfg);
  const ProtocolContext pctx = MakeProtocolContext(ctx, inspector);

  GeAttackConfig ge;
  ge.use_sparse = true;
  TablePrinter table({"attacker", "successful attacks", "recovered",
                      "adversarial/pruned edges"});
  for (const auto* attack : std::initializer_list<const TargetedAttack*>{
           new FgaAttack(/*targeted=*/true, /*use_sparse=*/true),
           new GeAttack(ge)}) {
    Rng eval_rng(4);
    const DefenseStats s = Evaluate(ctx, pctx, *attack, targets, &eval_rng);
    table.AddRow({attack->name(), std::to_string(s.attacked),
                  std::to_string(s.recovered),
                  std::to_string(s.adversarial_pruned) + "/" +
                      std::to_string(s.total_pruned)});
    delete attack;
  }
  table.Print(std::cout);
  std::cout << "\nWith a generous iterative budget the analyst recovers "
               "from both attackers here;\nGEAttack's value is making each "
               "recovery costlier (lower-ranked edges, more\nre-inspection "
               "rounds) — push lambda up in GeAttackConfig to see the "
               "trade-off.\n";
  return 0;
}
