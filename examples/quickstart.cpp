// Quickstart: the end-to-end GEAttack workflow in ~60 lines.
//
//   1. build an attributed graph (synthetic CITESEER stand-in),
//   2. train the victim GCN,
//   3. pick a victim node and a target label,
//   4. run GEAttack,
//   5. verify the prediction flipped AND check where GNNExplainer ranks the
//      adversarial edges.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "src/core/geattack.h"
#include "src/eval/metrics.h"
#include "src/eval/pipeline.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/datasets.h"
#include "src/nn/trainer.h"

int main() {
  using namespace geattack;

  // 1. Data: a homophilous citation graph with bag-of-words features.
  Rng rng(2026);
  GraphData data = MakeDataset(DatasetId::kCiteseer, /*scale=*/0.1, &rng);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  std::cout << "graph: " << data.num_nodes() << " nodes, "
            << data.graph.num_edges() << " edges, " << data.num_classes
            << " classes\n";

  // 2. Victim model.
  TrainResult train_result;
  Gcn model = TrainNewGcn(data, split, TrainConfig{}, &rng, &train_result);
  std::cout << "GCN test accuracy: " << train_result.test_accuracy << "\n";

  // 3. Victim node + specific (wrong) target label, assigned the paper's
  //    way: whatever label a plain gradient attack flips the node to.
  AttackContext ctx = MakeAttackContext(data, model);
  auto victims = SelectTargetNodes(
      data, train_result.final_logits, split.test,
      {.top_margin = 1, .bottom_margin = 1, .random = 2}, &rng);
  auto prepared = PrepareTargets(ctx, victims, &rng);
  if (prepared.empty()) {
    std::cout << "no flippable victim found; try another seed\n";
    return 1;
  }
  const PreparedTarget target = prepared.front();
  std::cout << "victim node " << target.node << ": true label "
            << target.true_label << ", attack target label "
            << target.target_label << ", budget " << target.budget << "\n";

  // 4. The joint attack.
  GeAttack attack;  // λ=2, T=5, η=0.3 — see GeAttackConfig.
  AttackRequest request{target.node, target.target_label, target.budget};
  AttackResult result = attack.Attack(ctx, request, &rng);
  std::cout << "added " << result.added_edges.size() << " adversarial edges:";
  for (const Edge& e : result.added_edges)
    std::cout << " (" << e.u << "," << e.v << ")";
  std::cout << "\n";

  // 5. Did it work, and can the inspector see it?
  const Tensor logits = model.LogitsFromRaw(result.adjacency, data.features);
  const int64_t predicted = logits.ArgMaxRow(target.node);
  std::cout << "post-attack prediction: " << predicted
            << (predicted == target.target_label ? "  (attack succeeded)"
                                                 : "  (attack failed)")
            << "\n";

  GnnExplainer inspector(&model, &data.features, GnnExplainerConfig{});
  Explanation explanation =
      inspector.Explain(result.adjacency, target.node, predicted);
  DetectionMetrics detection =
      ComputeDetection(explanation, result.added_edges, /*L=*/20, /*K=*/15);
  std::cout << "inspector ranks of the adversarial edges:";
  for (const Edge& e : result.added_edges)
    std::cout << " " << explanation.RankOf(e);
  std::cout << "\ndetection F1@15 = " << detection.f1
            << ", NDCG@15 = " << detection.ndcg
            << "  (lower = better hidden)\n";
  return 0;
}
