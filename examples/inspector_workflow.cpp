// Inspector workflow: GNNExplainer as an adversarial-edge detector.
//
// This example plays the *defender's* side of the paper (§3): a system
// designer notices a suspicious prediction, runs GNNExplainer on it, and
// checks the top-ranked edges.  We attack a node with three different
// attackers and show what the inspector would see in each case —
// demonstrating the paper's premise that ordinary attacks leave footprints
// an explainer surfaces, and that GEAttack does not.
//
// Build & run:  ./build/examples/inspector_workflow

#include <iostream>

#include "src/attack/fga.h"
#include "src/attack/nettack.h"
#include "src/core/geattack.h"
#include "src/eval/metrics.h"
#include "src/eval/pipeline.h"
#include "src/eval/report.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/datasets.h"
#include "src/nn/trainer.h"

namespace {

void InspectOne(const geattack::AttackContext& ctx,
                const geattack::Gcn& model,
                const geattack::GnnExplainer& inspector,
                const geattack::TargetedAttack& attack,
                const geattack::PreparedTarget& target,
                geattack::Rng* rng) {
  using namespace geattack;
  AttackRequest request{target.node, target.target_label, target.budget};
  AttackResult result = attack.Attack(ctx, request, rng);
  const Tensor logits =
      model.LogitsFromRaw(result.adjacency, ctx.data->features);
  const int64_t predicted = logits.ArgMaxRow(target.node);

  Explanation explanation =
      inspector.Explain(result.adjacency, target.node, predicted);
  DetectionMetrics d =
      ComputeDetection(explanation, result.added_edges, 20, 15);

  std::cout << "\n--- attacker: " << attack.name() << " ---\n";
  std::cout << "prediction after attack: " << predicted << " (target "
            << target.target_label << ", true " << target.true_label
            << ")\n";
  std::cout << "inspector's top-10 explanation edges (* = adversarial):\n";
  const auto top = explanation.TopEdges(10);
  for (size_t i = 0; i < top.size(); ++i) {
    bool adversarial = false;
    for (const Edge& e : result.added_edges)
      if (e == top[i]) adversarial = true;
    std::cout << "  #" << i + 1 << "  (" << top[i].u << "," << top[i].v
              << ")  w=" << FormatDouble(explanation.ranked_edges[i].weight, 3)
              << (adversarial ? "   *ADVERSARIAL*" : "") << "\n";
  }
  std::cout << "detection: F1@15=" << FormatDouble(d.f1, 3)
            << " NDCG@15=" << FormatDouble(d.ndcg, 3) << "\n";
}

}  // namespace

int main() {
  using namespace geattack;
  Rng rng(7);
  GraphData data = MakeDataset(DatasetId::kCora, /*scale=*/0.1, &rng);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainResult tr;
  Gcn model = TrainNewGcn(data, split, TrainConfig{}, &rng, &tr);
  AttackContext ctx = MakeAttackContext(data, model);

  auto victims = SelectTargetNodes(
      data, tr.final_logits, split.test,
      {.top_margin = 2, .bottom_margin = 2, .random = 2}, &rng);
  auto prepared = PrepareTargets(ctx, victims, &rng);
  if (prepared.empty()) {
    std::cout << "no flippable victim; try another seed\n";
    return 1;
  }
  // Prefer a higher-degree victim: with budget = degree there is more room
  // for the joint attack to choose stealthy edges.
  PreparedTarget target = prepared.front();
  for (const PreparedTarget& t : prepared)
    if (t.budget > target.budget) target = t;
  std::cout << "victim node " << target.node << " (degree " << target.budget
            << ")\n";

  GnnExplainer inspector(&model, &data.features, GnnExplainerConfig{});
  InspectOne(ctx, model, inspector, FgaAttack(/*targeted=*/true), target,
             &rng);
  InspectOne(ctx, model, inspector, Nettack(), target, &rng);
  InspectOne(ctx, model, inspector, GeAttack(), target, &rng);

  std::cout << "\nTakeaway: all three attackers flip the prediction, and the "
               "inspector surfaces their\nedges — on average GEAttack's rank "
               "lower (run bench_table1 for the aggregate\ncomparison; a "
               "single low-degree victim's edges are load-bearing and can "
               "stay visible).\n";
  return 0;
}
