// Library tour without any attack: generate data, train a GCN, and compare
// GNNExplainer and PGExplainer explanations of the same prediction — the
// substrate a user would adopt even if they only care about explainability.
//
// Build & run:  ./build/examples/train_and_explain

#include <iostream>

#include "src/eval/report.h"
#include "src/explain/gnn_explainer.h"
#include "src/explain/pg_explainer.h"
#include "src/graph/datasets.h"
#include "src/nn/trainer.h"

int main() {
  using namespace geattack;
  Rng rng(3);
  GraphData data = MakeDataset(DatasetId::kAcm, /*scale=*/0.1, &rng);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainResult tr;
  Gcn model = TrainNewGcn(data, split, TrainConfig{}, &rng, &tr);
  std::cout << DatasetName(DatasetId::kAcm) << " stand-in: "
            << data.num_nodes() << " nodes / " << data.graph.num_edges()
            << " edges; GCN accuracy train=" << FormatDouble(tr.train_accuracy, 3)
            << " val=" << FormatDouble(tr.val_accuracy, 3)
            << " test=" << FormatDouble(tr.test_accuracy, 3) << "\n";

  const Tensor adjacency = data.graph.DenseAdjacency();
  const int64_t node = split.test.front();
  const int64_t label = tr.final_logits.ArgMaxRow(node);
  std::cout << "explaining prediction " << label << " for node " << node
            << " (degree " << data.graph.Degree(node) << ")\n";

  // Per-query mask optimization (transductive).
  GnnExplainer gnn_explainer(&model, &data.features, GnnExplainerConfig{});
  Explanation by_mask = gnn_explainer.Explain(adjacency, node, label);

  // One trained MLP explains any instance (inductive).
  PgExplainerConfig pg_cfg;
  pg_cfg.epochs = 40;
  PgExplainer pg_explainer(&model, &data.features, pg_cfg);
  std::vector<int64_t> instances(
      split.train.begin(),
      split.train.begin() +
          std::min<ptrdiff_t>(16, static_cast<ptrdiff_t>(split.train.size())));
  pg_explainer.Train(adjacency, instances, PredictLabels(tr.final_logits));
  Explanation by_mlp = pg_explainer.Explain(adjacency, node, label);

  auto show = [](const char* name, const Explanation& e) {
    std::cout << "\n" << name << " — top-5 edges:\n";
    for (size_t i = 0; i < e.ranked_edges.size() && i < 5; ++i)
      std::cout << "  (" << e.ranked_edges[i].edge.u << ","
                << e.ranked_edges[i].edge.v << ")  w="
                << FormatDouble(e.ranked_edges[i].weight, 3) << "\n";
  };
  show("GNNExplainer", by_mask);
  show("PGExplainer", by_mlp);

  // Sanity: keeping only the GNNExplainer subgraph should preserve the
  // prediction.
  Tensor kept(data.num_nodes(), data.num_nodes());
  for (const Edge& e : by_mask.TopEdges(20)) {
    kept.at(e.u, e.v) = 1.0;
    kept.at(e.v, e.u) = 1.0;
  }
  const Tensor sub_logits = model.LogitsFromRaw(kept, data.features);
  std::cout << "\nprediction on explanation subgraph alone: "
            << sub_logits.ArgMaxRow(node) << " (original " << label << ")\n";
  return 0;
}
