// Joint-attack trade-off demo: sweeps GEAttack's λ on one dataset and
// prints the attack-success / detectability frontier — a miniature of the
// paper's Figure 4 that runs in under a minute.
//
// Also demonstrates the ablation switch `keep_penalty_on_added`
// (DESIGN.md §4): keeping the mask penalty on already-added edges.
//
// Build & run:  ./build/examples/joint_attack_demo

#include <iostream>

#include "src/core/geattack.h"
#include "src/eval/pipeline.h"
#include "src/eval/report.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/datasets.h"
#include "src/nn/trainer.h"

int main() {
  using namespace geattack;
  Rng rng(11);
  GraphData data = MakeDataset(DatasetId::kCiteseer, /*scale=*/0.1, &rng);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainResult tr;
  Gcn model = TrainNewGcn(data, split, TrainConfig{}, &rng, &tr);
  AttackContext ctx = MakeAttackContext(data, model);
  auto victims = SelectTargetNodes(
      data, tr.final_logits, split.test,
      {.top_margin = 2, .bottom_margin = 2, .random = 2}, &rng);
  auto targets = PrepareTargets(ctx, victims, &rng);
  if (targets.empty()) {
    std::cout << "no flippable victims; try another seed\n";
    return 1;
  }
  std::cout << "evaluating " << targets.size() << " victims on "
            << DatasetName(DatasetId::kCiteseer) << " stand-in ("
            << data.num_nodes() << " nodes)\n";

  GnnExplainerConfig icfg;
  icfg.epochs = 50;
  GnnExplainer inspector(&model, &data.features, icfg);

  TablePrinter table({"lambda", "variant", "ASR-T", "F1@15", "NDCG@15"});
  for (double lambda : {0.0, 0.5, 2.0, 5.0}) {
    for (bool keep : {false, true}) {
      GeAttackConfig cfg;
      cfg.lambda = lambda;
      cfg.keep_penalty_on_added = keep;
      Rng eval_rng(3);
      const JointAttackOutcome o =
          EvaluateAttack(ctx, GeAttack(cfg), targets, inspector, EvalConfig{},
                         &eval_rng);
      table.AddRow({FormatDouble(lambda, 1),
                    keep ? "keep-penalty" : "paper (zero B)",
                    FormatDouble(100 * o.asr_t, 1),
                    FormatDouble(100 * o.detection.f1, 1),
                    FormatDouble(100 * o.detection.ndcg, 1)});
      if (lambda == 0.0) break;  // Variants only differ when λ > 0.
    }
  }
  table.Print(std::cout);
  std::cout << "\nλ=0 is the pure graph attack (Eq. 4); increasing λ trades "
               "attack success for stealth (Fig. 4).\n";
  return 0;
}
