// Tests for the synthetic dataset generators and presets.

#include "src/graph/generators.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "src/graph/datasets.h"

namespace geattack {
namespace {

CitationGraphConfig SmallConfig() {
  CitationGraphConfig cfg;
  cfg.num_nodes = 200;
  cfg.num_edges = 500;
  cfg.num_classes = 4;
  cfg.feature_dim = 64;
  return cfg;
}

TEST(GeneratorsTest, NodeAndEdgeCounts) {
  Rng rng(1);
  GraphData data = GenerateCitationGraph(SmallConfig(), &rng);
  EXPECT_EQ(data.num_nodes(), 200);
  // Edge target hit within tolerance (isolated-node patching may add a few).
  EXPECT_GE(data.graph.num_edges(), 450);
  EXPECT_LE(data.graph.num_edges(), 560);
  EXPECT_EQ(data.feature_dim(), 64);
  EXPECT_EQ(data.num_classes, 4);
  EXPECT_TRUE(data.graph.CheckInvariants());
}

TEST(GeneratorsTest, LabelsBalanced) {
  Rng rng(2);
  GraphData data = GenerateCitationGraph(SmallConfig(), &rng);
  std::vector<int64_t> counts(4, 0);
  for (int64_t y : data.labels) {
    ASSERT_GE(y, 0);
    ASSERT_LT(y, 4);
    ++counts[ZU(y)];
  }
  for (int64_t c : counts) EXPECT_EQ(c, 50);
}

TEST(GeneratorsTest, HomophilyApproximatelyMet) {
  Rng rng(3);
  CitationGraphConfig cfg = SmallConfig();
  cfg.homophily = 0.8;
  GraphData data = GenerateCitationGraph(cfg, &rng);
  int64_t same = 0, total = 0;
  for (const Edge& e : data.graph.Edges()) {
    ++total;
    if (data.labels[ZU(e.u)] == data.labels[ZU(e.v)]) ++same;
  }
  const double ratio = static_cast<double>(same) / static_cast<double>(total);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 0.9);
}

TEST(GeneratorsTest, FeaturesClassInformative) {
  Rng rng(4);
  CitationGraphConfig cfg = SmallConfig();
  GraphData data = GenerateCitationGraph(cfg, &rng);
  // Topic words of a node's own class should be on far more often than
  // other classes' topic words.
  const int64_t words = cfg.feature_dim / cfg.num_classes >= cfg.words_per_class
                            ? cfg.words_per_class
                            : cfg.feature_dim / cfg.num_classes;
  double own = 0, other = 0;
  int64_t own_n = 0, other_n = 0;
  for (int64_t i = 0; i < data.num_nodes(); ++i) {
    for (int64_t k = 0; k < cfg.num_classes; ++k) {
      for (int64_t j = k * words; j < (k + 1) * words; ++j) {
        if (k == data.labels[ZU(i)]) {
          own += data.features.at(i, j);
          ++own_n;
        } else {
          other += data.features.at(i, j);
          ++other_n;
        }
      }
    }
  }
  EXPECT_GT(own / static_cast<double>(own_n),
            5.0 * other / static_cast<double>(other_n));
}

TEST(GeneratorsTest, NoIsolatedNodes) {
  Rng rng(5);
  GraphData data = GenerateCitationGraph(SmallConfig(), &rng);
  for (int64_t i = 0; i < data.num_nodes(); ++i)
    EXPECT_GT(data.graph.Degree(i), 0) << "node " << i;
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng rng1(77), rng2(77);
  GraphData a = GenerateCitationGraph(SmallConfig(), &rng1);
  GraphData b = GenerateCitationGraph(SmallConfig(), &rng2);
  EXPECT_EQ(a.graph.Edges(), b.graph.Edges());
  EXPECT_LE(a.features.MaxAbsDiff(b.features), 0.0);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(GeneratorsTest, KeepLargestConnectedComponentConsistent) {
  Rng rng(6);
  GraphData data = GenerateCitationGraph(SmallConfig(), &rng);
  GraphData lcc = KeepLargestConnectedComponent(data);
  EXPECT_LE(lcc.num_nodes(), data.num_nodes());
  EXPECT_GE(lcc.num_nodes(), data.num_nodes() / 2);  // Mostly connected.
  auto comp = lcc.graph.ConnectedComponents();
  EXPECT_TRUE(std::all_of(comp.begin(), comp.end(),
                          [](int64_t c) { return c == 0; }));
  EXPECT_EQ(lcc.features.rows(), lcc.num_nodes());
  EXPECT_EQ(static_cast<int64_t>(lcc.labels.size()), lcc.num_nodes());
}

TEST(GeneratorsTest, ErdosRenyiDensity) {
  Rng rng(7);
  Graph g = GenerateErdosRenyi(100, 0.1, &rng);
  const double expected = 0.1 * 100 * 99 / 2;
  EXPECT_GT(g.num_edges(), expected * 0.7);
  EXPECT_LT(g.num_edges(), expected * 1.3);
}

TEST(SplitTest, FractionsAndDisjointness) {
  Rng rng(8);
  GraphData data = GenerateCitationGraph(SmallConfig(), &rng);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  const int64_t n = data.num_nodes();
  EXPECT_EQ(static_cast<int64_t>(split.train.size() + split.val.size() +
                                 split.test.size()),
            n);
  const double dn = static_cast<double>(n);
  EXPECT_NEAR(static_cast<double>(split.train.size()) / dn, 0.1, 0.03);
  EXPECT_NEAR(static_cast<double>(split.val.size()) / dn, 0.1, 0.03);
  std::set<int64_t> seen;
  for (auto* part : {&split.train, &split.val, &split.test})
    for (int64_t i : *part) EXPECT_TRUE(seen.insert(i).second);
}

TEST(SplitTest, EveryClassInTrain) {
  Rng rng(9);
  GraphData data = GenerateCitationGraph(SmallConfig(), &rng);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  std::set<int64_t> classes;
  for (int64_t i : split.train) classes.insert(data.labels[ZU(i)]);
  EXPECT_EQ(static_cast<int64_t>(classes.size()), data.num_classes);
}

TEST(DatasetsTest, PaperStatsMatchTable3) {
  EXPECT_EQ(PaperStats(DatasetId::kCiteseer).nodes, 2110);
  EXPECT_EQ(PaperStats(DatasetId::kCiteseer).edges, 3668);
  EXPECT_EQ(PaperStats(DatasetId::kCora).classes, 7);
  EXPECT_EQ(PaperStats(DatasetId::kAcm).features, 1870);
}

TEST(DatasetsTest, PresetScalesNodes) {
  auto full = PresetConfig(DatasetId::kCora, 1.0);
  auto half = PresetConfig(DatasetId::kCora, 0.5);
  EXPECT_EQ(full.num_nodes, 2485);
  EXPECT_NEAR(static_cast<double>(half.num_nodes), 2485 * 0.5, 2);
  EXPECT_EQ(full.num_classes, 7);
  EXPECT_EQ(half.num_classes, 7);
}

TEST(DatasetsTest, MakeDatasetConnected) {
  Rng rng(10);
  GraphData data = MakeDataset(DatasetId::kCiteseer, 0.1, &rng);
  auto comp = data.graph.ConnectedComponents();
  for (int64_t c : comp) EXPECT_EQ(c, 0);
  EXPECT_EQ(data.num_classes, 6);
  EXPECT_GT(data.num_nodes(), 100);
}

TEST(DatasetsTest, NamesAreStable) {
  EXPECT_EQ(DatasetName(DatasetId::kCiteseer), "CITESEER");
  EXPECT_EQ(DatasetName(DatasetId::kCora), "CORA");
  EXPECT_EQ(DatasetName(DatasetId::kAcm), "ACM");
}

}  // namespace
}  // namespace geattack
