// Bit-exactness tests for the batched multi-target path: the stacked-RHS
// forward over a BatchedSubgraphView's shared union pattern must reproduce
// k independent per-target SparseAttackForward runs bit for bit — values,
// first-order candidate gradients, and the second-order hypergradient —
// because the greedy attack picks (and the bench/CI equivalence gates)
// compare at exact-argmin granularity.

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "src/attack/attack.h"
#include "src/eval/pipeline.h"
#include "src/graph/generators.h"
#include "src/graph/subgraph.h"
#include "src/nn/sparse_forward.h"
#include "src/nn/trainer.h"
#include "tests/test_util.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  std::unique_ptr<Gcn> model;
  Tensor xw1;
  std::vector<int64_t> targets;
  std::vector<std::vector<int64_t>> candidates;
};

Fixture* SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(777);
    CitationGraphConfig cfg;
    cfg.num_nodes = 70;
    cfg.num_edges = 180;
    cfg.num_classes = 3;
    cfg.feature_dim = 24;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    Split split = MakeSplit(f->data, 0.1, 0.1, &rng);
    TrainConfig tc;
    tc.epochs = 30;
    f->model = std::make_unique<Gcn>(TrainNewGcn(f->data, split, tc, &rng));
    f->xw1 = f->data.features.MatMul(f->model->w1());
    // Three targets of degree >= 2, each with a few direct-add candidates.
    for (int64_t v = 0; v < f->data.num_nodes() && f->targets.size() < 3;
         ++v) {
      if (f->data.graph.Degree(v) < 2) continue;
      std::vector<int64_t> cands;
      for (int64_t j = 0; j < f->data.num_nodes() && cands.size() < 5; ++j)
        if (j != v && !f->data.graph.HasEdge(v, j)) cands.push_back(j);
      f->targets.push_back(v);
      f->candidates.push_back(std::move(cands));
    }
    return f;
  }();
  return fixture;
}

/// Per-target reference: standalone view + forward at candidate values `w`,
/// returning (logits, gradient of NllRow at the target w.r.t. w).
struct Reference {
  SubgraphView view;
  Tensor logits;
  Tensor grad;
};

Reference StandaloneRun(const Fixture* f, size_t t, int hops,
                        const Tensor& w_tensor, int64_t label) {
  Reference ref;
  ref.view = BuildSubgraphView(f->data.graph, f->targets[t], hops,
                               f->candidates[t]);
  const SparseAttackForward sf =
      MakeSparseAttackForward(ref.view, *f->model, f->xw1);
  Var w = Var::Leaf(w_tensor, /*requires_grad=*/true, "w");
  Var logits = SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, w));
  Var loss = NllRow(logits, ref.view.target_local, label);
  ref.logits = logits.value();
  ref.grad = GradOne(loss, w).value();
  return ref;
}

void ExpectStackedMatchesStandalone(int hops, const Tensor& w_pattern) {
  Fixture* f = SharedFixture();
  const size_t k = f->targets.size();
  ASSERT_GE(k, 3u);

  const BatchedSubgraphView bview = BuildBatchedSubgraphView(
      f->data.graph, f->targets, hops, f->candidates);
  const StackedAttackForward ssf =
      MakeStackedAttackForward(bview, *f->model, f->xw1);

  // Per-target candidate values: the shared pattern scaled per target so
  // the columns differ.
  std::vector<Tensor> w_tensors;
  std::vector<int64_t> labels;
  for (size_t t = 0; t < k; ++t) {
    Tensor w(f->candidates[t].size() ? static_cast<int64_t>(
                                           f->candidates[t].size())
                                     : 0,
             1);
    for (int64_t i = 0; i < w.rows(); ++i)
      w.at(i, 0) = w_pattern.at(i % w_pattern.rows(), 0) *
                   (1.0 + 0.25 * static_cast<double>(t));
    w_tensors.push_back(w);
    labels.push_back(static_cast<int64_t>(t) % 3);
  }

  // Stacked run: one wide forward, one backward over the summed losses.
  std::vector<Var> ws, columns, losses;
  for (size_t t = 0; t < k; ++t) {
    ws.push_back(Var::Leaf(w_tensors[t], /*requires_grad=*/true, "w"));
    columns.push_back(RawValuesFromCandidates(ssf.per_target[t], ws[t]));
  }
  Var stacked = StackedGcnLogitsVar(ssf, columns);
  Var total;
  for (size_t t = 0; t < k; ++t) {
    Var loss = NllRow(StackedLogitsBlock(ssf, stacked, static_cast<int64_t>(t)),
                      ssf.per_target[t].view->target_local, labels[t]);
    losses.push_back(loss);
    total = t == 0 ? loss : Add(total, loss);
  }
  const std::vector<Var> grads = Grad(total, ws);

  // The fused assembly (StackedRawValues, the production batched path) must
  // agree bit for bit with the per-column composition.
  std::vector<Var> ws2;
  for (size_t t = 0; t < k; ++t)
    ws2.push_back(Var::Leaf(w_tensors[t], /*requires_grad=*/true, "w"));
  Var stacked2 =
      StackedGcnLogitsVarFromValues(ssf, StackedRawValues(ssf, ws2));
  {
    const Tensor& a = stacked.value();
    const Tensor& b = stacked2.value();
    ASSERT_EQ(a.rows(), b.rows());
    for (int64_t i = 0; i < a.rows(); ++i)
      for (int64_t j = 0; j < a.cols(); ++j)
        EXPECT_EQ(a.at(i, j), b.at(i, j)) << "fused " << i << "," << j;
  }
  Var total2;
  for (size_t t = 0; t < k; ++t) {
    Var loss =
        NllRow(StackedLogitsBlock(ssf, stacked2, static_cast<int64_t>(t)),
               ssf.per_target[t].view->target_local, labels[t]);
    total2 = t == 0 ? loss : Add(total2, loss);
  }
  const std::vector<Var> grads2 = Grad(total2, ws2);
  for (size_t t = 0; t < k; ++t) {
    const Tensor& ga = grads[t].value();
    const Tensor& gb = grads2[t].value();
    for (int64_t i = 0; i < ga.rows(); ++i)
      EXPECT_EQ(ga.at(i, 0), gb.at(i, 0)) << "fused grad " << t << "," << i;
  }

  for (size_t t = 0; t < k; ++t) {
    const Reference ref = StandaloneRun(f, t, hops, w_tensors[t], labels[t]);
    const SubgraphView& pt = *ssf.per_target[t].view;
    const Tensor block =
        StackedLogitsBlock(ssf, stacked, static_cast<int64_t>(t)).value();
    // Compare every row of the standalone ball through the two local maps;
    // bitwise (EXPECT_EQ on doubles), not approximate.
    for (int64_t l = 0; l < ref.view.num_nodes(); ++l) {
      const int64_t g = ref.view.nodes[static_cast<size_t>(l)];
      const int64_t ul = bview.global_to_local[static_cast<size_t>(g)];
      ASSERT_GE(ul, 0);
      for (int64_t c = 0; c < block.cols(); ++c)
        EXPECT_EQ(block.at(ul, c), ref.logits.at(l, c))
            << "target " << t << " node " << g << " col " << c;
    }
    EXPECT_EQ(pt.target_local,
              bview.global_to_local[static_cast<size_t>(f->targets[t])]);
    const Tensor& gw = grads[t].value();
    ASSERT_EQ(gw.rows(), ref.grad.rows());
    for (int64_t i = 0; i < gw.rows(); ++i)
      EXPECT_EQ(gw.at(i, 0), ref.grad.at(i, 0))
          << "target " << t << " candidate " << i;
  }
}

TEST(BatchedForwardTest, FullViewStackedForwardBitEqual) {
  Rng rng(31);
  const Tensor w_pattern = rng.UniformTensor(5, 1, 0.1, 0.9);
  ExpectStackedMatchesStandalone(/*hops=*/-1, w_pattern);
}

TEST(BatchedForwardTest, TwoHopStackedForwardBitEqual) {
  // hops = 2 (the GCN depth): per-target balls differ, the union is larger
  // than each, and the out-of-ball zero rows must not perturb any in-ball
  // bit.
  Rng rng(32);
  const Tensor w_pattern = rng.UniformTensor(5, 1, 0.1, 0.9);
  ExpectStackedMatchesStandalone(/*hops=*/2, w_pattern);
}

TEST(BatchedForwardTest, ZeroCandidateValuesBitEqual) {
  // w = 0 — the state every greedy outer iteration scores from.
  ExpectStackedMatchesStandalone(/*hops=*/-1, Tensor::Zeros(5, 1));
}

TEST(BatchedForwardTest, CommittedCandidatesStayBitEqual) {
  // Committing a pick mutates only the per-target base values; the stacked
  // forward must track the standalone one through commits.
  Fixture* f = SharedFixture();
  const BatchedSubgraphView bview = BuildBatchedSubgraphView(
      f->data.graph, f->targets, /*hops=*/-1, f->candidates);
  StackedAttackForward ssf =
      MakeStackedAttackForward(bview, *f->model, f->xw1);

  SubgraphView view0 = BuildSubgraphView(f->data.graph, f->targets[0],
                                         /*hops=*/-1, f->candidates[0]);
  SparseAttackForward sf0 =
      MakeSparseAttackForward(view0, *f->model, f->xw1);
  CommitCandidate(&sf0, 1);
  CommitCandidate(&ssf.per_target[0], 1);

  const int64_t m0 = static_cast<int64_t>(f->candidates[0].size());
  std::vector<Var> columns;
  for (size_t t = 0; t < f->targets.size(); ++t) {
    const int64_t m = static_cast<int64_t>(f->candidates[t].size());
    columns.push_back(RawValuesFromCandidates(
        ssf.per_target[t], Constant(Tensor::Zeros(m, 1), "w0")));
  }
  Var stacked = StackedGcnLogitsVar(ssf, columns);
  Var ref = SparseGcnLogitsVar(
      sf0, RawValuesFromCandidates(sf0, Constant(Tensor::Zeros(m0, 1), "w0")));
  const Tensor block = StackedLogitsBlock(ssf, stacked, 0).value();
  for (int64_t l = 0; l < ref.rows(); ++l)
    for (int64_t c = 0; c < ref.cols(); ++c)
      EXPECT_EQ(block.at(l, c), ref.value().at(l, c)) << l << "," << c;
}

TEST(BatchedForwardTest, StackedHypergradientMatchesFiniteDifferences) {
  // The bilevel GEAttack path through the stacked forward: an inner
  // mask-descent step under create_graph, then d(outer)/dw — exercising
  // second-order gradients of GcnNormValuesStacked / SpMMValuesStacked.
  Fixture* f = SharedFixture();
  const BatchedSubgraphView bview = BuildBatchedSubgraphView(
      f->data.graph, f->targets, /*hops=*/2, f->candidates);
  const StackedAttackForward ssf =
      MakeStackedAttackForward(bview, *f->model, f->xw1);
  const int64_t m0 = static_cast<int64_t>(f->candidates[0].size());
  const int64_t m1 = static_cast<int64_t>(f->candidates[1].size());
  Rng rng(17);
  const Tensor mask0_a = rng.NormalTensor(
      ssf.per_target[0].view->num_slots(), 1, 0.0, 0.05);
  const Tensor mask0_b = rng.NormalTensor(
      ssf.per_target[1].view->num_slots(), 1, 0.0, 0.05);
  const Tensor w1_fixed = rng.UniformTensor(m1, 1, 0.2, 0.8);

  auto fn = [&](const Var& w) -> Var {
    // Two targets stacked; the gradcheck differentiates target 0's w while
    // target 1 rides along with constant candidate values.
    Var w_b = Constant(w1_fixed, "w1");
    Var mu_a = Var::Leaf(mask0_a, /*requires_grad=*/true, "M0a");
    Var mu_b = Var::Leaf(mask0_b, /*requires_grad=*/true, "M0b");
    for (int step = 0; step < 2; ++step) {
      std::vector<Var> columns;
      Var masked_a =
          Mul(UndirectedValuesFromCandidates(ssf.per_target[0], w),
              Sigmoid(mu_a));
      Var masked_b =
          Mul(UndirectedValuesFromCandidates(ssf.per_target[1], w_b),
              Sigmoid(mu_b));
      columns.push_back(DirectedFromUndirected(ssf.per_target[0], masked_a));
      columns.push_back(DirectedFromUndirected(ssf.per_target[1], masked_b));
      columns.resize(ssf.per_target.size(),
                     Constant(ssf.per_target.back().base_values, "base"));
      Var stacked = StackedGcnLogitsVar(ssf, columns);
      Var inner =
          Add(NllRow(StackedLogitsBlock(ssf, stacked, 0),
                     ssf.per_target[0].view->target_local, 0),
              NllRow(StackedLogitsBlock(ssf, stacked, 1),
                     ssf.per_target[1].view->target_local, 1));
      const std::vector<Var> p =
          Grad(inner, {mu_a, mu_b}, {.create_graph = true});
      mu_a = Sub(mu_a, MulScalar(p[0], 0.15));
      mu_b = Sub(mu_b, MulScalar(p[1], 0.15));
    }
    std::vector<Var> columns;
    columns.push_back(
        RawValuesFromCandidates(ssf.per_target[0], w));
    columns.push_back(RawValuesFromCandidates(ssf.per_target[1], w_b));
    columns.resize(ssf.per_target.size(),
                   Constant(ssf.per_target.back().base_values, "base"));
    Var stacked = StackedGcnLogitsVar(ssf, columns);
    Var attack = NllRow(StackedLogitsBlock(ssf, stacked, 0),
                        ssf.per_target[0].view->target_local, 0);
    Var mu_cand = SpMM(ssf.per_target[0].view->cand_slot_take, mu_a);
    return Add(attack, MulScalar(Sum(mu_cand), 2.0));
  };
  Rng wr(13);
  const Tensor w0 = wr.UniformTensor(m0, 1, 0.2, 0.8);
  geattack::testing::ExpectGradientsMatch(fn, w0, 5e-5);
}

TEST(BatchedSubgraphTest, GroupingPartitionsTargets) {
  Fixture* f = SharedFixture();
  std::vector<int64_t> nodes;
  for (int64_t v = 0; v < f->data.num_nodes() && nodes.size() < 10; v += 3)
    nodes.push_back(v);
  for (int64_t max_group : {1, 2, 4}) {
    const auto groups =
        GroupTargetsBySharedNeighbors(f->data.graph, nodes, max_group);
    std::set<int64_t> seen;
    for (const auto& g : groups) {
      EXPECT_GE(static_cast<int64_t>(g.size()), 1);
      EXPECT_LE(static_cast<int64_t>(g.size()), max_group);
      for (int64_t i : g) EXPECT_TRUE(seen.insert(i).second);
    }
    EXPECT_EQ(seen.size(), nodes.size());
    // Deterministic: a second call returns the same grouping.
    EXPECT_EQ(groups,
              GroupTargetsBySharedNeighbors(f->data.graph, nodes, max_group));
  }
}

TEST(BatchedSubgraphTest, SharedCandidatePairsCollapse) {
  // Two targets proposing the same edge (each is the other's candidate)
  // must share one slot pair without corrupting either per-target view.
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  int64_t a = -1, b = -1;
  for (int64_t u = 0; u < g.num_nodes() && a < 0; ++u)
    for (int64_t v = u + 1; v < g.num_nodes() && a < 0; ++v)
      if (!g.HasEdge(u, v) && g.Degree(u) >= 1 && g.Degree(v) >= 1) {
        a = u;
        b = v;
      }
  ASSERT_GE(a, 0);
  const BatchedSubgraphView bview =
      BuildBatchedSubgraphView(g, {a, b}, /*hops=*/-1, {{b}, {a}});
  ASSERT_TRUE(bview.pattern->CheckInvariants());
  const auto& va = bview.per_target[0];
  const auto& vb = bview.per_target[1];
  // Both views address the same two directed nnz slots.
  EXPECT_EQ(va.slot_nnz[static_cast<size_t>(va.num_edges())],
            vb.slot_nnz[static_cast<size_t>(vb.num_edges())]);
}

}  // namespace
}  // namespace geattack
