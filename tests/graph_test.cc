// Unit tests for the Graph structure and GCN normalization.

#include "src/graph/graph.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/random.h"
#include "tests/test_util.h"

namespace geattack {
namespace {

Graph PathGraph(int64_t n) {
  Graph g(n);
  for (int64_t i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

TEST(EdgeTest, CanonicalOrder) {
  Edge e(5, 2);
  EXPECT_EQ(e.u, 2);
  EXPECT_EQ(e.v, 5);
  EXPECT_EQ(e, Edge(2, 5));
  EXPECT_LT(Edge(1, 2), Edge(1, 3));
  EXPECT_LT(Edge(1, 9), Edge(2, 3));
}

TEST(GraphTest, AddRemoveEdge) {
  Graph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(1, 0));  // Duplicate (undirected).
  EXPECT_FALSE(g.AddEdge(2, 2));  // Self loop rejected.
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.RemoveEdge(0, 1));
  EXPECT_FALSE(g.RemoveEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, DegreesAndNeighbors) {
  Graph g = PathGraph(4);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 2);
  EXPECT_EQ(g.Neighbors(1).count(0), 1u);
  EXPECT_EQ(g.Neighbors(1).count(2), 1u);
}

TEST(GraphTest, EdgesCanonical) {
  Graph g = PathGraph(3);
  auto edges = g.Edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], Edge(0, 1));
  EXPECT_EQ(edges[1], Edge(1, 2));
}

TEST(GraphTest, DenseAdjacencySymmetricZeroDiagonal) {
  Graph g = PathGraph(5);
  Tensor a = g.DenseAdjacency();
  EXPECT_LE(a.MaxAbsDiff(a.Transposed()), 0.0);
  for (int64_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a.at(i, i), 0.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 8.0);  // 4 edges * 2.
}

TEST(GraphTest, FromDenseRoundTrip) {
  Rng rng(3);
  Graph g(8);
  for (int i = 0; i < 10; ++i)
    g.AddEdge(rng.UniformInt(0, 7), rng.UniformInt(0, 7));
  Graph h = Graph::FromDense(g.DenseAdjacency());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (int64_t u = 0; u < 8; ++u)
    for (int64_t v = 0; v < 8; ++v)
      EXPECT_EQ(g.HasEdge(u, v), h.HasEdge(u, v)) << u << "," << v;
}

TEST(GraphTest, KHopNeighborhood) {
  Graph g = PathGraph(6);
  auto one_hop = g.KHopNeighborhood(2, 1);
  EXPECT_EQ(one_hop, (std::vector<int64_t>{1, 2, 3}));
  auto two_hop = g.KHopNeighborhood(2, 2);
  EXPECT_EQ(two_hop, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  auto zero_hop = g.KHopNeighborhood(2, 0);
  EXPECT_EQ(zero_hop, (std::vector<int64_t>{2}));
}

TEST(GraphTest, ConnectedComponents) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  auto comp = g.ConnectedComponents();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(GraphTest, LargestConnectedComponent) {
  Graph g(7);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);  // Component of size 4.
  g.AddEdge(4, 5);  // Component of size 2; node 6 isolated.
  std::vector<int64_t> mapping;
  Graph lcc = g.LargestConnectedComponent(&mapping);
  EXPECT_EQ(lcc.num_nodes(), 4);
  EXPECT_EQ(lcc.num_edges(), 3);
  EXPECT_EQ(mapping, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_TRUE(lcc.CheckInvariants());
}

TEST(GraphTest, CheckInvariantsHolds) {
  Rng rng(5);
  Graph g(30);
  for (int i = 0; i < 60; ++i)
    g.AddEdge(rng.UniformInt(0, 29), rng.UniformInt(0, 29));
  EXPECT_TRUE(g.CheckInvariants());
}

TEST(NormalizeAdjacencyTest, SymmetricAndRowStructure) {
  Graph g = PathGraph(4);
  Tensor norm = NormalizeAdjacency(g.DenseAdjacency());
  EXPECT_LE(norm.MaxAbsDiff(norm.Transposed()), 1e-12);
  // Path graph: node 0 has degree 1 (+self = 2), node 1 degree 2 (+self = 3).
  EXPECT_NEAR(norm.at(0, 0), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(norm.at(0, 1), 1.0 / std::sqrt(6.0), 1e-12);
  EXPECT_NEAR(norm.at(1, 1), 1.0 / 3.0, 1e-12);
}

TEST(NormalizeAdjacencyTest, IsolatedGraphGivesIdentity) {
  Tensor a(3, 3);
  Tensor norm = NormalizeAdjacency(a);
  EXPECT_LE(norm.MaxAbsDiff(Tensor::Identity(3)), 1e-12);
}

TEST(NormalizeAdjacencyTest, VarMatchesTensorPath) {
  Rng rng(9);
  Tensor a = rng.UniformTensor(6, 6, 0, 1).Map(
      [](double v) { return v > 0.6 ? 1.0 : 0.0; });
  // Symmetrize, zero diagonal.
  a = a.BroadcastBinary(a, [](double x, double) { return x; });
  Tensor sym(6, 6);
  for (int64_t i = 0; i < 6; ++i)
    for (int64_t j = 0; j < 6; ++j)
      sym.at(i, j) = i == j ? 0.0 : std::max(a.at(i, j), a.at(j, i));
  Tensor fixed = NormalizeAdjacency(sym);
  Var v = NormalizeAdjacencyVar(Constant(sym));
  EXPECT_LE(v.value().MaxAbsDiff(fixed), 1e-12);
}

TEST(NormalizeAdjacencyTest, GradientMatchesFiniteDifferences) {
  Rng rng(21);
  Tensor a = rng.UniformTensor(5, 5, 0.1, 0.9);
  auto fn = [&rng](const Var& adj) {
    Rng local(77);
    Var x = Constant(local.NormalTensor(adj.rows(), 3, 0, 1));
    return Sum(Mul(MatMul(NormalizeAdjacencyVar(adj), x),
                   MatMul(NormalizeAdjacencyVar(adj), x)));
  };
  geattack::testing::ExpectGradientsMatch(fn, a, 2e-5);
}

// ----- CSR views and incremental updates. -----------------------------------

Graph RandomGraph(int64_t n, double p, uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = i + 1; j < n; ++j)
      if (rng.Bernoulli(p)) g.AddEdge(i, j);
  return g;
}

TEST(GraphCsrTest, CsrAdjacencyMatchesDense) {
  Graph g = RandomGraph(12, 0.3, 31);
  CsrMatrix csr = g.CsrAdjacency();
  EXPECT_TRUE(csr.pattern()->CheckInvariants());
  EXPECT_EQ(csr.nnz(), 2 * g.num_edges());
  EXPECT_LE(csr.ToDense().MaxAbsDiff(g.DenseAdjacency()), 0.0);
}

TEST(GraphCsrTest, NormalizeAdjacencyCsrMatchesDense) {
  Graph g = RandomGraph(15, 0.25, 32);
  Tensor dense = NormalizeAdjacency(g.DenseAdjacency());
  CsrMatrix sparse = NormalizeAdjacencyCsr(g);
  EXPECT_LE(sparse.ToDense().MaxAbsDiff(dense), 1e-12);
}

TEST(GraphCsrTest, ApplyEdgeFlipsMatchesRebuild) {
  Graph g = RandomGraph(10, 0.3, 33);
  const CsrMatrix base = g.CsrAdjacency();

  // Pick two absent edges to add and two present edges to remove.
  std::vector<Edge> added, removed;
  for (int64_t i = 0; i < 10 && added.size() < 2; ++i)
    for (int64_t j = i + 1; j < 10 && added.size() < 2; ++j)
      if (!g.HasEdge(i, j)) added.emplace_back(i, j);
  const std::vector<Edge> edges = g.Edges();
  ASSERT_GE(edges.size(), 2u);
  removed.push_back(edges.front());
  removed.push_back(edges.back());

  const CsrMatrix patched = ApplyEdgeFlips(base, added, removed);
  EXPECT_TRUE(patched.pattern()->CheckInvariants());

  for (const Edge& e : added) g.AddEdge(e.u, e.v);
  for (const Edge& e : removed) g.RemoveEdge(e.u, e.v);
  EXPECT_LE(patched.ToDense().MaxAbsDiff(g.DenseAdjacency()), 0.0);
}

TEST(GraphCsrTest, ApplyEdgeFlipsEmptyIsIdentity) {
  Graph g = RandomGraph(8, 0.4, 34);
  const CsrMatrix base = g.CsrAdjacency();
  const CsrMatrix same = ApplyEdgeFlips(base, {}, {});
  EXPECT_LE(same.ToDense().MaxAbsDiff(base.ToDense()), 0.0);
}

}  // namespace
}  // namespace geattack
