// Tests for GNNExplainer and PGExplainer: the explanations must be
// deterministic, confined to the computation subgraph, and must surface
// influential (adversarial) edges — the paper's §3 premise.

#include <algorithm>

#include "gtest/gtest.h"
#include "src/attack/attack.h"
#include "src/attack/fga.h"
#include "src/eval/metrics.h"
#include "src/eval/pipeline.h"
#include "src/explain/gnn_explainer.h"
#include "src/explain/pg_explainer.h"
#include "src/graph/generators.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  Split split;
  Gcn model;
  Tensor adjacency;
  Tensor logits;
};

Fixture MakeFixture(uint64_t seed) {
  Rng rng(seed);
  CitationGraphConfig cfg;
  cfg.num_nodes = 120;
  cfg.num_edges = 320;
  cfg.num_classes = 3;
  cfg.feature_dim = 48;
  GraphData data =
      KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainConfig tc;
  tc.hidden_dim = 16;
  Gcn model = TrainNewGcn(data, split, tc, &rng);
  Tensor adjacency = data.graph.DenseAdjacency();
  Tensor logits = model.LogitsFromRaw(adjacency, data.features);
  return {std::move(data), std::move(split), std::move(model),
          std::move(adjacency), std::move(logits)};
}

GnnExplainerConfig FastExplainerConfig() {
  GnnExplainerConfig cfg;
  cfg.epochs = 60;
  return cfg;
}

TEST(GnnExplainerTest, RankedEdgesWithinComputationSubgraph) {
  // The graph-native explainer ranks exactly the computation-subgraph
  // edges (edges outside the receptive field have zero influence).
  Fixture f = MakeFixture(1);
  GnnExplainer explainer(&f.model, &f.data.features, FastExplainerConfig());
  const int64_t node = f.split.test[0];
  Explanation e =
      explainer.Explain(f.adjacency, node, f.logits.ArgMaxRow(node));
  ASSERT_FALSE(e.ranked_edges.empty());
  const auto subgraph = f.data.graph.KHopNeighborhood(node, 2);
  for (const ScoredEdge& se : e.ranked_edges) {
    EXPECT_TRUE(std::binary_search(subgraph.begin(), subgraph.end(),
                                   se.edge.u));
    EXPECT_TRUE(std::binary_search(subgraph.begin(), subgraph.end(),
                                   se.edge.v));
    EXPECT_GE(se.weight, 0.0);
    EXPECT_LE(se.weight, 1.0);
  }
  // Ranking is sorted descending.
  for (size_t i = 1; i < e.ranked_edges.size(); ++i)
    EXPECT_GE(e.ranked_edges[i - 1].weight, e.ranked_edges[i].weight);
}

TEST(GnnExplainerTest, DeterministicGivenSeed) {
  Fixture f = MakeFixture(2);
  GnnExplainer a(&f.model, &f.data.features, FastExplainerConfig());
  GnnExplainer b(&f.model, &f.data.features, FastExplainerConfig());
  const int64_t node = f.split.test[1];
  const int64_t label = f.logits.ArgMaxRow(node);
  Explanation ea = a.Explain(f.adjacency, node, label);
  Explanation eb = b.Explain(f.adjacency, node, label);
  ASSERT_EQ(ea.ranked_edges.size(), eb.ranked_edges.size());
  for (size_t i = 0; i < ea.ranked_edges.size(); ++i) {
    EXPECT_EQ(ea.ranked_edges[i].edge, eb.ranked_edges[i].edge);
    EXPECT_DOUBLE_EQ(ea.ranked_edges[i].weight, eb.ranked_edges[i].weight);
  }
}

TEST(GnnExplainerTest, DetectsFgaAdversarialEdges) {
  // §3 premise: attack a node with FGA-T, then the explainer should rank
  // the adversarial edges highly.
  Fixture f = MakeFixture(3);
  Rng rng(33);
  AttackContext ctx = MakeAttackContext(f.data, f.model);
  auto targets = SelectTargetNodes(f.data, f.logits, f.split.test,
                                   {.top_margin = 3, .bottom_margin = 3,
                                    .random = 4},
                                   &rng);
  auto prepared = PrepareTargets(ctx, targets, &rng);
  ASSERT_GE(prepared.size(), 3u);

  GnnExplainer explainer(&f.model, &f.data.features, FastExplainerConfig());
  const FgaAttack fga(/*targeted=*/true);
  double total_ndcg = 0.0;
  int64_t evaluated = 0;
  for (const auto& t : prepared) {
    AttackRequest req{t.node, t.target_label, t.budget};
    AttackResult result = fga.Attack(ctx, req, &rng);
    if (result.added_edges.empty()) continue;
    const Tensor logits =
        f.model.LogitsFromRaw(result.adjacency, f.data.features);
    Explanation e = explainer.Explain(result.adjacency, t.node,
                                      logits.ArgMaxRow(t.node));
    DetectionMetrics d = ComputeDetection(e, result.added_edges, 20, 15);
    total_ndcg += d.ndcg;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 0);
  // On average the gradient attack's edges must be clearly visible.
  EXPECT_GT(total_ndcg / static_cast<double>(evaluated), 0.25);
}

TEST(GnnExplainerTest, SparseEdgeListPathDetectsAdversarialEdges) {
  // The O(|E_sub|·h) graph-native path must behave like an inspector: its
  // mask ranks FGA-T's adversarial edges highly, within the k-hop subgraph.
  Fixture f = MakeFixture(3);
  Rng rng(34);
  AttackContext ctx = MakeAttackContext(f.data, f.model);
  auto targets = SelectTargetNodes(f.data, f.logits, f.split.test,
                                   {.top_margin = 3, .bottom_margin = 3,
                                    .random = 4},
                                   &rng);
  auto prepared = PrepareTargets(ctx, targets, &rng);
  ASSERT_GE(prepared.size(), 1u);
  if (prepared.size() > 4) prepared.resize(4);

  GnnExplainer explainer(&f.model, &f.data.features, FastExplainerConfig());
  const FgaAttack fga(/*targeted=*/true);
  double total_ndcg = 0.0;
  int64_t evaluated = 0;
  for (const auto& t : prepared) {
    AttackRequest req{t.node, t.target_label, t.budget};
    AttackResult result = fga.Attack(ctx, req, &rng);
    if (result.added_edges.empty()) continue;
    const Graph perturbed = Graph::FromDense(result.adjacency);
    const Tensor logits =
        f.model.LogitsFromGraph(perturbed, f.data.features);
    Explanation e = explainer.Explain(perturbed, t.node,
                                      logits.ArgMaxRow(t.node));
    // Subgraph-restricted ranking: every ranked edge is a real edge of the
    // target's 2-hop neighborhood.
    for (const ScoredEdge& se : e.ranked_edges)
      EXPECT_TRUE(perturbed.HasEdge(se.edge.u, se.edge.v));
    DetectionMetrics d = ComputeDetection(e, result.added_edges, 20, 15);
    total_ndcg += d.ndcg;
    ++evaluated;
  }
  ASSERT_GT(evaluated, 0);
  EXPECT_GT(total_ndcg / static_cast<double>(evaluated), 0.25);
}

TEST(PgExplainerTest, DenseTrainAdapterMatchesGraphTrain) {
  // The dense Train overload is a reference adapter (one implementation,
  // two surfaces), so the learned ψ — and hence the explanations — are
  // bit-identical to the graph-native Train.
  Fixture f = MakeFixture(4);
  std::vector<int64_t> instances(f.split.train.begin(),
                                 f.split.train.begin() + 5);
  const std::vector<int64_t> labels = PredictLabels(f.logits);

  PgExplainerConfig cfg;
  cfg.epochs = 10;
  PgExplainer dense(&f.model, &f.data.features, cfg);
  dense.Train(f.adjacency, instances, labels);
  PgExplainer sparse(&f.model, &f.data.features, cfg);
  sparse.Train(f.data.graph, instances, labels);

  EXPECT_EQ(dense.params().w1.MaxAbsDiff(sparse.params().w1), 0.0);
  EXPECT_EQ(dense.params().w2.MaxAbsDiff(sparse.params().w2), 0.0);

  const int64_t node = f.split.test[0];
  const int64_t label = f.logits.ArgMaxRow(node);
  Explanation de = dense.Explain(f.adjacency, node, label);
  Explanation se = sparse.Explain(f.data.graph, node, label);
  ASSERT_EQ(de.ranked_edges.size(), se.ranked_edges.size());
  for (size_t i = 0; i < de.ranked_edges.size(); ++i) {
    EXPECT_EQ(de.ranked_edges[i].edge, se.ranked_edges[i].edge);
    EXPECT_EQ(de.ranked_edges[i].weight, se.ranked_edges[i].weight);
  }
}

TEST(PgExplainerTest, TrainsAndExplains) {
  Fixture f = MakeFixture(4);
  PgExplainerConfig cfg;
  cfg.epochs = 20;
  PgExplainer explainer(&f.model, &f.data.features, cfg);
  std::vector<int64_t> instances(f.split.train.begin(),
                                 f.split.train.begin() + 8);
  std::vector<int64_t> labels = PredictLabels(f.logits);
  explainer.Train(f.adjacency, instances, labels);
  EXPECT_TRUE(explainer.trained());

  const int64_t node = f.split.test[0];
  Explanation e = explainer.Explain(f.adjacency, node,
                                    f.logits.ArgMaxRow(node));
  ASSERT_FALSE(e.ranked_edges.empty());
  for (const ScoredEdge& se : e.ranked_edges) {
    EXPECT_GE(se.weight, 0.0);
    EXPECT_LE(se.weight, 1.0);
  }
}

TEST(PgExplainerTest, InductiveAcrossNodesWithoutRetraining) {
  Fixture f = MakeFixture(5);
  PgExplainerConfig cfg;
  cfg.epochs = 15;
  PgExplainer explainer(&f.model, &f.data.features, cfg);
  std::vector<int64_t> instances(f.split.train.begin(),
                                 f.split.train.begin() + 6);
  explainer.Train(f.adjacency, instances, PredictLabels(f.logits));
  // Explaining several unseen nodes must work with the same parameters.
  for (int64_t node : {f.split.test[0], f.split.test[3], f.split.test[6]}) {
    Explanation e =
        explainer.Explain(f.adjacency, node, f.logits.ArgMaxRow(node));
    EXPECT_EQ(e.node, node);
  }
}

TEST(PgEdgeLogitsTest, ShapeAndGradientFlow) {
  Rng rng(6);
  Var hidden = Var::Leaf(rng.NormalTensor(10, 4, 0, 1), true, "H");
  std::vector<IndexPair> pairs = {{0, 1}, {1, 2}, {3, 4}};
  Var w1 = Var::Leaf(rng.GlorotTensor(12, 8), true);
  Var b1 = Var::Leaf(Tensor(1, 8), true);
  Var w2 = Var::Leaf(rng.GlorotTensor(8, 1), true);
  Var omega = PgEdgeLogits(hidden, pairs, 5, w1, b1, w2);
  EXPECT_EQ(omega.rows(), 3);
  EXPECT_EQ(omega.cols(), 1);
  auto grads = Grad(Sum(omega), {hidden, w1, w2});
  EXPECT_GT(grads[0].value().Norm(), 0.0);
  EXPECT_GT(grads[1].value().Norm(), 0.0);
  EXPECT_GT(grads[2].value().Norm(), 0.0);
}

TEST(ExplanationTest, TopEdgesAndRankOf) {
  Explanation e;
  e.ranked_edges = {{Edge(0, 1), 0.9}, {Edge(1, 2), 0.5}, {Edge(2, 3), 0.1}};
  auto top2 = e.TopEdges(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], Edge(0, 1));
  EXPECT_EQ(e.RankOf(Edge(2, 3)), 2);
  EXPECT_EQ(e.RankOf(Edge(5, 6)), -1);
  EXPECT_EQ(e.TopEdges(10).size(), 3u);
}

TEST(ExplanationTest, RankIndexMatchesLinearRankOf) {
  Explanation e;
  e.ranked_edges = {{Edge(4, 7), 0.9}, {Edge(1, 2), 0.5}, {Edge(0, 9), 0.5},
                    {Edge(2, 3), 0.1}};
  const RankIndex index(e);
  EXPECT_EQ(index.size(), 4);
  for (const ScoredEdge& se : e.ranked_edges)
    EXPECT_EQ(index.RankOf(se.edge), e.RankOf(se.edge));
  EXPECT_EQ(index.RankOf(Edge(5, 6)), -1);
  EXPECT_EQ(index.RankOf(Edge(0, 1)), -1);
}

TEST(ExplanationTest, SortStableDeterministicTies) {
  std::vector<ScoredEdge> edges = {{Edge(3, 4), 0.5}, {Edge(0, 1), 0.5},
                                   {Edge(1, 2), 0.7}};
  SortScoredEdges(&edges);
  EXPECT_EQ(edges[0].edge, Edge(1, 2));
  EXPECT_EQ(edges[1].edge, Edge(0, 1));  // Tie broken by canonical order.
  EXPECT_EQ(edges[2].edge, Edge(3, 4));
}

}  // namespace
}  // namespace geattack
