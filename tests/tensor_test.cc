// Unit tests for the dense Tensor class.

#include "src/tensor/tensor.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/tensor/csr.h"
#include "src/tensor/random.h"

namespace geattack {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t(3, 4, 2.5);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.size(), 12);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 2.5);
}

TEST(TensorTest, FromData) {
  Tensor t(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 2);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 4);
}

TEST(TensorTest, ScalarFactoryAndAccessor) {
  Tensor s = Tensor::Scalar(7.25);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_DOUBLE_EQ(s.scalar(), 7.25);
}

TEST(TensorTest, Identity) {
  Tensor eye = Tensor::Identity(3);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(eye.at(i, j), i == j ? 1.0 : 0.0);
}

TEST(TensorTest, OneHotRow) {
  Tensor h = Tensor::OneHotRow(4, 2);
  EXPECT_DOUBLE_EQ(h.at(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.0);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor b(2, 2, {5, 6, 7, 8});
  EXPECT_DOUBLE_EQ((a + b).at(1, 1), 12);
  EXPECT_DOUBLE_EQ((b - a).at(0, 0), 4);
  EXPECT_DOUBLE_EQ((a * b).at(0, 1), 12);
  EXPECT_DOUBLE_EQ((b / a).at(1, 0), 7.0 / 3.0);
  EXPECT_DOUBLE_EQ((-a).at(0, 0), -1);
}

TEST(TensorTest, CompoundAssign) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {1, 1, 1});
  a += b;
  EXPECT_DOUBLE_EQ(a.at(0, 2), 4);
  a -= b;
  EXPECT_DOUBLE_EQ(a.at(0, 2), 3);
}

TEST(TensorTest, ScalarOps) {
  Tensor a(1, 2, {1, 2});
  EXPECT_DOUBLE_EQ(a.AddScalar(10).at(0, 1), 12);
  EXPECT_DOUBLE_EQ(a.MulScalar(3).at(0, 0), 3);
}

TEST(TensorTest, MatMul) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = a.MatMul(b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154);
}

TEST(TensorTest, MatMulIdentity) {
  Rng rng(1);
  Tensor a = rng.NormalTensor(5, 5, 0, 1);
  EXPECT_LE(a.MatMul(Tensor::Identity(5)).MaxAbsDiff(a), 1e-12);
  EXPECT_LE(Tensor::Identity(5).MatMul(a).MaxAbsDiff(a), 1e-12);
}

TEST(TensorTest, Transpose) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor t = a.Transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 1), 6);
  EXPECT_LE(t.Transposed().MaxAbsDiff(a), 1e-15);
}

TEST(TensorTest, Reductions) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(a.Sum(), 21);
  EXPECT_DOUBLE_EQ(a.Max(), 6);
  EXPECT_DOUBLE_EQ(a.Min(), 1);
  Tensor rs = a.RowSum();
  EXPECT_DOUBLE_EQ(rs.at(0, 0), 6);
  EXPECT_DOUBLE_EQ(rs.at(1, 0), 15);
  Tensor cs = a.ColSum();
  EXPECT_DOUBLE_EQ(cs.at(0, 0), 5);
  EXPECT_DOUBLE_EQ(cs.at(0, 2), 9);
  Tensor rm = a.RowMax();
  EXPECT_DOUBLE_EQ(rm.at(0, 0), 3);
  EXPECT_DOUBLE_EQ(rm.at(1, 0), 6);
  EXPECT_EQ(a.ArgMaxRow(0), 2);
}

TEST(TensorTest, SigmoidBounds) {
  Tensor a(1, 3, {-1000, 0, 1000});
  Tensor s = a.Sigmoid();
  EXPECT_NEAR(s.at(0, 0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 0.5);
  EXPECT_NEAR(s.at(0, 2), 1.0, 1e-12);
  EXPECT_TRUE(s.AllFinite());
}

TEST(TensorTest, ReluExpLogPow) {
  Tensor a(1, 4, {-2, -0.5, 0.5, 2});
  Tensor r = a.Relu();
  EXPECT_DOUBLE_EQ(r.at(0, 0), 0);
  EXPECT_DOUBLE_EQ(r.at(0, 3), 2);
  EXPECT_NEAR(a.Exp().at(0, 3), std::exp(2.0), 1e-12);
  Tensor pos(1, 2, {1.0, std::exp(1.0)});
  EXPECT_NEAR(pos.Log().at(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(a.Pow(2).at(0, 0), 4.0, 1e-12);
}

TEST(TensorTest, BroadcastCompatible) {
  Tensor a(3, 4);
  EXPECT_TRUE(a.BroadcastCompatible(Tensor(3, 4)));
  EXPECT_TRUE(a.BroadcastCompatible(Tensor(3, 1)));
  EXPECT_TRUE(a.BroadcastCompatible(Tensor(1, 4)));
  EXPECT_TRUE(a.BroadcastCompatible(Tensor(1, 1)));
  EXPECT_FALSE(a.BroadcastCompatible(Tensor(4, 3)));
  EXPECT_FALSE(a.BroadcastCompatible(Tensor(2, 4)));
}

TEST(TensorTest, BroadcastBinaryColumnVector) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor col(2, 1, {10, 100});
  Tensor r = a.BroadcastBinary(col, [](double x, double y) { return x + y; });
  EXPECT_DOUBLE_EQ(r.at(0, 2), 13);
  EXPECT_DOUBLE_EQ(r.at(1, 0), 104);
}

TEST(TensorTest, BroadcastBinaryRowVector) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor row(1, 3, {10, 20, 30});
  Tensor r = a.BroadcastBinary(row, [](double x, double y) { return x * y; });
  EXPECT_DOUBLE_EQ(r.at(0, 0), 10);
  EXPECT_DOUBLE_EQ(r.at(1, 2), 180);
}

TEST(TensorTest, FillDiagonalAndRow) {
  Tensor a = Tensor::Ones(3, 3);
  a.FillDiagonal(0.0);
  EXPECT_DOUBLE_EQ(a.Sum(), 6.0);
  Tensor r = a.Row(1);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_DOUBLE_EQ(r.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(r.at(0, 0), 1.0);
}

TEST(TensorTest, NormAndFinite) {
  Tensor a(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_TRUE(a.AllFinite());
  Tensor bad(1, 1, {std::numeric_limits<double>::infinity()});
  EXPECT_FALSE(bad.AllFinite());
}

TEST(TensorTest, DebugString) {
  Tensor a(1, 2, {1, 2});
  EXPECT_EQ(a.ShapeString(), "Tensor(1x2)");
  EXPECT_NE(a.DebugString().find("1, 2"), std::string::npos);
}

TEST(RngTest, Determinism) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LT(v, 3);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(3);
  auto idx = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(idx.size(), 20u);
  std::sort(idx.begin(), idx.end());
  EXPECT_TRUE(std::adjacent_find(idx.begin(), idx.end()) == idx.end());
  for (auto i : idx) EXPECT_TRUE(i >= 0 && i < 50);
}

TEST(RngTest, SampleWeightedRespectsZeros) {
  Rng rng(5);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.SampleWeighted(w), 1);
}

TEST(RngTest, GlorotWithinLimit) {
  Rng rng(9);
  Tensor w = rng.GlorotTensor(30, 20);
  const double limit = std::sqrt(6.0 / 50.0);
  EXPECT_LE(w.Max(), limit);
  EXPECT_GE(w.Min(), -limit);
}

TEST(RngTest, WeightedSamplerMatchesLinearScanDistribution) {
  std::vector<double> w = {0.0, 3.0, 0.0, 1.0};
  WeightedSampler sampler(w);
  Rng rng(11);
  std::vector<int64_t> counts(w.size(), 0);
  for (int i = 0; i < 4000; ++i) ++counts[ZU(sampler.Sample(&rng))];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 4000.0, 0.75, 0.03);
}

// ----- Sparse CSR matrix. ---------------------------------------------------

Tensor RandomSparseDense(int64_t rows, int64_t cols, uint64_t seed,
                         double density = 0.3) {
  Rng rng(seed);
  Tensor a(rows, cols);
  for (int64_t i = 0; i < a.size(); ++i)
    if (rng.Bernoulli(density)) a[i] = rng.Normal(0, 1);
  return a;
}

TEST(CsrTest, FromDenseRoundTrip) {
  Tensor a = RandomSparseDense(7, 5, 1);
  CsrMatrix m = CsrMatrix::FromDense(a);
  EXPECT_TRUE(m.pattern()->CheckInvariants());
  EXPECT_EQ(m.rows(), 7);
  EXPECT_EQ(m.cols(), 5);
  EXPECT_LE(m.ToDense().MaxAbsDiff(a), 0.0);
}

TEST(CsrTest, AtLooksUpStoredAndMissingEntries) {
  Tensor a(3, 3, {0, 2, 0, 0, 0, -1, 4, 0, 0});
  CsrMatrix m = CsrMatrix::FromDense(a);
  EXPECT_EQ(m.nnz(), 3);
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(m.At(i, j), a.at(i, j));
}

TEST(CsrTest, TransposedMatchesDenseTranspose) {
  Tensor a = RandomSparseDense(6, 4, 2);
  CsrMatrix t = CsrMatrix::FromDense(a).Transposed();
  EXPECT_TRUE(t.pattern()->CheckInvariants());
  EXPECT_LE(t.ToDense().MaxAbsDiff(a.Transposed()), 0.0);
}

TEST(CsrTest, SpmmMatchesDenseMatMul) {
  Tensor a = RandomSparseDense(8, 6, 3);
  Tensor b = Rng(4).NormalTensor(6, 5, 0, 1);
  CsrMatrix m = CsrMatrix::FromDense(a);
  EXPECT_LE(m.SpMM(b).MaxAbsDiff(a.MatMul(b)), 1e-12);
}

TEST(CsrTest, RowSumsMatchDense) {
  Tensor a = RandomSparseDense(5, 5, 5);
  CsrMatrix m = CsrMatrix::FromDense(a);
  EXPECT_LE(m.RowSums().MaxAbsDiff(a.RowSum()), 1e-12);
}

TEST(CsrTest, GcnNormalizeMatchesDenseFormula) {
  // Symmetric 0/1 adjacency with zero diagonal.
  Rng rng(6);
  const int64_t n = 9;
  Tensor a(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = i + 1; j < n; ++j)
      if (rng.Bernoulli(0.3)) a.at(i, j) = a.at(j, i) = 1.0;

  // Dense reference: D̃^{-1/2}(A + I)D̃^{-1/2}.
  Tensor self = a;
  self.FillDiagonal(1.0);
  Tensor dinv = self.RowSum().Pow(-0.5);
  Tensor expected(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      expected.at(i, j) = dinv.at(i, 0) * self.at(i, j) * dinv.at(j, 0);

  CsrMatrix norm = GcnNormalizeCsr(CsrMatrix::FromDense(a));
  EXPECT_TRUE(norm.pattern()->CheckInvariants());
  EXPECT_LE(norm.ToDense().MaxAbsDiff(expected), 1e-12);
  EXPECT_TRUE(norm.AllFinite());
}

TEST(CsrTest, GcnNormalizeMergesExistingDiagonal) {
  Tensor a(2, 2, {0.5, 1.0, 1.0, 0.0});
  CsrMatrix norm = GcnNormalizeCsr(CsrMatrix::FromDense(a));
  // Row degrees of A + I: (2.5, 2.0).
  const double d0 = 1.0 / std::sqrt(2.5), d1 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(norm.At(0, 0), d0 * 1.5 * d0, 1e-12);
  EXPECT_NEAR(norm.At(0, 1), d0 * 1.0 * d1, 1e-12);
  EXPECT_NEAR(norm.At(1, 1), d1 * 1.0 * d1, 1e-12);
}

TEST(CsrTest, SpmmRawWideOperandMatchesDense) {
  // Exercises the cache-blocked path (k > one column tile) against the
  // dense product; long rows hit the 2-way entry unroll + tail.
  Tensor a = RandomSparseDense(9, 40, 7, 0.5);
  Tensor b = Rng(8).NormalTensor(40, 130, 0, 1);
  CsrMatrix m = CsrMatrix::FromDense(a);
  EXPECT_LE(SpmmRaw(*m.pattern(), m.values(), b).MaxAbsDiff(a.MatMul(b)),
            1e-10);
}

TEST(CsrTest, SpmmRawF32MatchesDoubleWithinStoragePrecision) {
  Tensor a = RandomSparseDense(12, 10, 9, 0.4);
  Tensor b = Rng(10).NormalTensor(10, 7, 0, 1);
  CsrMatrix m = CsrMatrix::FromDense(a);
  const Tensor exact = SpmmRaw(*m.pattern(), m.values(), b);
  const Tensor f32 = SpmmRawF32(*m.pattern(), ValuesToF32(m.values()), b);
  // Values are rounded to float storage (~1e-7 relative); the accumulation
  // stays double, so the result only carries the storage rounding.
  EXPECT_LE(f32.MaxAbsDiff(exact), 1e-5);
  EXPECT_GT(f32.MaxAbsDiff(exact), 0.0);  // It really is a f32 store.
}

TEST(CsrTest, GcnNormSpmmRawMatchesUnfusedComputation) {
  // Symmetric positive-value square matrix with self loops so degrees stay
  // positive; the fused kernel must match rowsum -> pow -> scale -> SpMM
  // bit for bit.
  Rng rng(11);
  const int64_t n = 8;
  Tensor a(n, n);
  for (int64_t i = 0; i < n; ++i) {
    a.at(i, i) = rng.Uniform(0.5, 1.5);
    for (int64_t j = i + 1; j < n; ++j)
      if (rng.Bernoulli(0.4)) a.at(i, j) = a.at(j, i) = rng.Uniform(0.2, 1.0);
  }
  CsrMatrix m = CsrMatrix::FromDense(a);
  Tensor out_deg = rng.UniformTensor(n, 1, 0.0, 0.7);
  Tensor b = rng.NormalTensor(n, 5, 0, 1);

  std::vector<double> norm(m.values().size());
  std::vector<double> dinv(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double d = 0.0;
    for (int64_t e = m.pattern()->row_ptr[ZU(i)];
         e < m.pattern()->row_ptr[ZU(i + 1)]; ++e)
      d += m.values()[ZU(e)];
    d += out_deg.at(i, 0);
    dinv[ZU(i)] = std::pow(d, -0.5);
  }
  for (int64_t i = 0; i < n; ++i)
    for (int64_t e = m.pattern()->row_ptr[ZU(i)];
         e < m.pattern()->row_ptr[ZU(i + 1)]; ++e)
      norm[ZU(e)] = (m.values()[ZU(e)] * dinv[ZU(i)]) *
                    dinv[ZU(m.pattern()->col_idx[ZU(e)])];

  const Tensor fused =
      GcnNormSpmmRaw(*m.pattern(), m.values(), out_deg.data().data(), b);
  const Tensor unfused = SpmmRaw(*m.pattern(), norm, b);
  EXPECT_EQ(fused.MaxAbsDiff(unfused), 0.0);
}

}  // namespace
}  // namespace geattack
