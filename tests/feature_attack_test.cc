// Tests for the feature-perturbation extension attack.

#include "src/attack/feature_attack.h"

#include <memory>

#include "gtest/gtest.h"
#include "src/eval/pipeline.h"
#include "src/graph/generators.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  Split split;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
};

Fixture* SharedFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    Rng rng(21);
    CitationGraphConfig cfg;
    cfg.num_nodes = 130;
    cfg.num_edges = 340;
    cfg.num_classes = 3;
    cfg.feature_dim = 48;
    fx->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    fx->split = MakeSplit(fx->data, 0.1, 0.1, &rng);
    fx->model = std::make_unique<Gcn>(
        TrainNewGcn(fx->data, fx->split, TrainConfig{}, &rng));
    fx->ctx = MakeAttackContext(fx->data, *fx->model);
    Tensor logits = fx->model->LogitsFromRaw(fx->ctx.clean_adjacency,
                                             fx->data.features);
    auto nodes = SelectTargetNodes(
        fx->data, logits, fx->split.test,
        {.top_margin = 2, .bottom_margin = 2, .random = 2}, &rng);
    fx->targets = PrepareTargets(fx->ctx, nodes, &rng);
    return fx;
  }();
  return f;
}

TEST(FeatureAttackTest, OnlyTouchesTargetRowWithinBudget) {
  Fixture* f = SharedFixture();
  ASSERT_FALSE(f->targets.empty());
  const auto& t = f->targets[0];
  FeatureAttack attack;
  AttackRequest req{t.node, t.target_label, /*budget=*/5};
  FeatureAttackResult result = attack.Attack(f->ctx, req);
  EXPECT_LE(result.flipped.size(), 5u);
  int64_t changed_rows = 0;
  for (int64_t i = 0; i < f->data.num_nodes(); ++i) {
    double diff = 0.0;
    for (int64_t j = 0; j < f->data.feature_dim(); ++j)
      diff += std::abs(result.features.at(i, j) -
                       f->data.features.at(i, j));
    if (diff > 0) {
      ++changed_rows;
      EXPECT_EQ(i, t.node);
    }
  }
  EXPECT_LE(changed_rows, 1);
  // Features stay binary.
  for (int64_t j = 0; j < f->data.feature_dim(); ++j) {
    const double v = result.features.at(t.node, j);
    EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(FeatureAttackTest, FlipsPredictionWithEnoughBudget) {
  Fixture* f = SharedFixture();
  FeatureAttack attack;
  int64_t success = 0, total = 0;
  for (const auto& t : f->targets) {
    ++total;
    AttackRequest req{t.node, t.target_label,
                      /*budget=*/f->data.feature_dim() / 3};
    FeatureAttackResult result = attack.Attack(f->ctx, req);
    const Tensor logits =
        f->model->LogitsFromRaw(f->ctx.clean_adjacency, result.features);
    if (logits.ArgMaxRow(t.node) == t.target_label) ++success;
  }
  ASSERT_GT(total, 0);
  // Bag-of-words features drive the GCN strongly: generous budgets should
  // flip most targets.
  EXPECT_GE(static_cast<double>(success) / static_cast<double>(total), 0.5);
}

TEST(FeatureAttackTest, ZeroBudgetIsNoop) {
  Fixture* f = SharedFixture();
  const auto& t = f->targets[0];
  FeatureAttack attack;
  AttackRequest req{t.node, t.target_label, 0};
  FeatureAttackResult result = attack.Attack(f->ctx, req);
  EXPECT_TRUE(result.flipped.empty());
  EXPECT_LE(result.features.MaxAbsDiff(f->data.features), 0.0);
}

TEST(FeatureAttackTest, MonotoneBudgetNeverFlipsSameBitTwice) {
  Fixture* f = SharedFixture();
  const auto& t = f->targets[0];
  FeatureAttack attack;
  AttackRequest req{t.node, t.target_label, 12};
  FeatureAttackResult result = attack.Attack(f->ctx, req);
  std::set<int64_t> unique(result.flipped.begin(), result.flipped.end());
  EXPECT_EQ(unique.size(), result.flipped.size());
}

}  // namespace
}  // namespace geattack
