// Live-graph churn tests, pinning the tentpole contracts of the
// epoch-versioned service (src/service/graph_snapshot.h,
// src/service/attack_service.h):
//
//   * churn admission is all-or-nothing — one malformed entry rejects the
//     whole batch with kInvalidArgument and ZERO mutation;
//   * ApplyChurn's incrementally maintained snapshot is bit-identical,
//     field by field, to a context built from scratch on the churned graph
//     (and GcnRenormalizeAfterFlips to a fresh GcnNormalizeCsr directly);
//   * an in-flight wave finishes on its dispatch snapshot — picks equal an
//     offline driver replay against the OLD epoch, while post-churn work
//     matches the NEW epoch;
//   * ball-overlap invalidation: churn outside a queued target's augmented
//     ball keeps its pin AND its picks (old == new epoch, verified by
//     replaying on both), churn inside the ball re-pins it;
//   * WAL recovery is byte-identical: a fresh service replaying the journal
//     serves every completed result bit-for-bit, and a torn tail turns
//     exactly the lost ticket back into pending work that recomputes to the
//     same bits.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/attack/driver.h"
#include "src/attack/fault_injection.h"
#include "src/attack/fga.h"
#include "src/core/geattack.h"
#include "src/eval/pipeline.h"
#include "src/eval/protocol.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/nn/trainer.h"
#include "src/service/attack_service.h"
#include "src/service/graph_snapshot.h"
#include "src/tensor/csr.h"
#include "src/tensor/random.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
  std::vector<AttackRequest> requests;
};

Fixture* SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(913);
    CitationGraphConfig cfg;
    cfg.num_nodes = 90;
    cfg.num_edges = 240;
    cfg.num_classes = 3;
    cfg.feature_dim = 32;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    Split split = MakeSplit(f->data, 0.1, 0.1, &rng);
    TrainConfig tc;
    tc.epochs = 40;
    f->model = std::make_unique<Gcn>(TrainNewGcn(f->data, split, tc, &rng));
    f->ctx = MakeAttackContext(f->data, *f->model);
    const Tensor logits =
        f->model->LogitsFromRaw(f->ctx.clean_adjacency, f->data.features);
    auto nodes = SelectTargetNodes(
        f->data, logits, split.test,
        {.top_margin = 4, .bottom_margin = 4, .random = 4}, &rng);
    f->targets = PrepareTargets(f->ctx, nodes, &rng);
    for (const PreparedTarget& t : f->targets)
      f->requests.push_back(
          {t.node, t.target_label, std::min<int64_t>(t.budget, 2)});
    return f;
  }();
  return fixture;
}

/// Non-owning shared_ptr over a test-scoped attack.
std::shared_ptr<const TargetedAttack> NoOwn(const TargetedAttack* attack) {
  return std::shared_ptr<const TargetedAttack>(
      std::shared_ptr<const TargetedAttack>(), attack);
}

void ExpectSameEdges(const AttackResult& got, const AttackResult& want,
                     const std::string& where) {
  ASSERT_EQ(got.added_edges.size(), want.added_edges.size()) << where;
  for (size_t e = 0; e < want.added_edges.size(); ++e)
    EXPECT_EQ(got.added_edges[e], want.added_edges[e]) << where << " edge "
                                                       << e;
}

/// Bitwise CSR equality: pattern vectors and value doubles must be the
/// exact same bits, not merely close.
void ExpectSameCsr(const CsrMatrix& got, const CsrMatrix& want,
                   const std::string& where) {
  ASSERT_FALSE(got.empty()) << where;
  ASSERT_FALSE(want.empty()) << where;
  EXPECT_EQ(got.pattern()->rows, want.pattern()->rows) << where;
  EXPECT_EQ(got.pattern()->cols, want.pattern()->cols) << where;
  EXPECT_EQ(got.pattern()->row_ptr, want.pattern()->row_ptr) << where;
  EXPECT_EQ(got.pattern()->col_idx, want.pattern()->col_idx) << where;
  EXPECT_EQ(got.values(), want.values()) << where;
}

/// Replays one completed ServiceResult offline from its recorded seed and
/// effective budget against an explicit context — the reconciliation path
/// that lets a caller check WHICH epoch a result was computed at.
AttackResult ReplayOne(const AttackContext& ctx, const TargetedAttack& attack,
                       int64_t target_node, int64_t target_label,
                       const ServiceResult& r) {
  AttackRequest request;
  request.target_node = target_node;
  request.target_label = target_label;
  request.budget = r.effective_budget;
  AttackDriverConfig cfg;
  cfg.request_seeds = {r.seed};
  const std::vector<AttackResult> out =
      RunMultiTargetAttack(ctx, attack, {request}, cfg);
  EXPECT_EQ(out.size(), 1u);
  return out.empty() ? AttackResult{} : out[0];
}

/// Blocks until the dispatcher has picked up the parked slow wave.
void WaitUntilWaveInFlight(const AttackService& service) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const ServiceStats st = service.stats();
    if (st.in_flight > 0 && st.queue_depth == 0) return;
    if (std::chrono::steady_clock::now() > give_up) {
      ADD_FAILURE() << "dispatcher never picked up the parked wave";
      return;
    }
    std::this_thread::yield();
  }
}

/// First `count` absent (u, v) pairs — valid churn additions.
std::vector<Edge> AbsentEdges(const Graph& g, size_t count) {
  std::vector<Edge> out;
  for (int64_t u = 0; u < g.num_nodes() && out.size() < count; ++u)
    for (int64_t v = u + 1; v < g.num_nodes() && out.size() < count; ++v)
      if (!g.HasEdge(u, v)) out.emplace_back(u, v);
  return out;
}

/// `count` present edges with pairwise-disjoint endpoints of degree >= 2,
/// so removing all of them never strands a node.
std::vector<Edge> RemovableEdges(const Graph& g, size_t count) {
  std::vector<Edge> out;
  std::vector<char> used(static_cast<size_t>(g.num_nodes()), 0);
  for (int64_t u = 0; u < g.num_nodes() && out.size() < count; ++u) {
    if (used[static_cast<size_t>(u)] != 0 || g.Degree(u) < 2) continue;
    for (int64_t v = u + 1; v < g.num_nodes(); ++v) {
      if (used[static_cast<size_t>(v)] == 0 && g.HasEdge(u, v) &&
          g.Degree(v) >= 2) {
        out.emplace_back(u, v);
        used[static_cast<size_t>(u)] = 1;
        used[static_cast<size_t>(v)] = 1;
        break;
      }
    }
  }
  return out;
}

ChurnBatch BatchOf(const std::vector<Edge>& adds,
                   const std::vector<Edge>& rems) {
  ChurnBatch batch;
  for (const Edge& e : adds) batch.added.push_back({e.u, e.v, 1.0});
  for (const Edge& e : rems) batch.removed.push_back({e.u, e.v, 1.0});
  return batch;
}

// ---------------------------------------------------------------------------
// All-or-nothing churn admission.
// ---------------------------------------------------------------------------

TEST(ChurnValidationTest, MalformedBatchesRejectAtomicallyWithZeroMutation) {
  Fixture* f = SharedFixture();
  const FgaAttack inner(/*targeted=*/true);
  AttackServiceConfig cfg;
  cfg.base_seed = 11;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&inner),
                                    /*dense_context=*/true).ok());
  const auto before = service.CurrentSnapshot("g");
  ASSERT_NE(before, nullptr);
  const int64_t n = f->data.num_nodes();
  const std::vector<Edge> absent = AbsentEdges(f->data.graph, 2);
  const std::vector<Edge> present = RemovableEdges(f->data.graph, 1);
  ASSERT_EQ(absent.size(), 2u);
  ASSERT_EQ(present.size(), 1u);
  const Edge ok_add = absent[0];
  const Edge other_add = absent[1];
  const Edge ok_rem = present[0];

  ChurnBatch valid;
  valid.added = {{ok_add.u, ok_add.v, 1.0}};
  EXPECT_EQ(service.UpdateGraph("missing", valid).status.code(),
            StatusCode::kNotFound);

  const auto expect_rejected = [&service](const std::string& what,
                                          const ChurnBatch& batch) {
    const ChurnResult cr = service.UpdateGraph("g", batch);
    EXPECT_EQ(cr.status.code(), StatusCode::kInvalidArgument) << what;
    EXPECT_EQ(cr.epoch, -1) << what;
    EXPECT_EQ(cr.requeued, 0) << what;
  };
  expect_rejected("empty batch", ChurnBatch{});
  {
    ChurnBatch b;
    b.added = {{n, 0, 1.0}};
    expect_rejected("endpoint out of range", b);
  }
  {
    ChurnBatch b;
    b.added = {{-1, 3, 1.0}};
    expect_rejected("negative endpoint", b);
  }
  {
    ChurnBatch b;
    b.added = {{4, 4, 1.0}};
    expect_rejected("self loop", b);
  }
  {
    ChurnBatch b;  // Same undirected pair twice (flipped orientation).
    b.added = {{ok_add.u, ok_add.v, 1.0}, {ok_add.v, ok_add.u, 1.0}};
    expect_rejected("duplicate pair", b);
  }
  {
    ChurnBatch b;
    b.added = {{ok_add.u, ok_add.v, 1.0}};
    b.removed = {{ok_add.u, ok_add.v, 1.0}};
    expect_rejected("pair both added and removed", b);
  }
  {
    ChurnBatch b;
    b.added = {{ok_rem.u, ok_rem.v, 1.0}};
    expect_rejected("add of a present edge", b);
  }
  {
    ChurnBatch b;
    b.removed = {{ok_add.u, ok_add.v, 1.0}};
    expect_rejected("remove of an absent edge", b);
  }
  {
    ChurnBatch b;
    b.added = {{ok_add.u, ok_add.v, 0.5}};
    expect_rejected("non-unit weight", b);
  }
  {
    ChurnBatch b;
    b.added = {{ok_add.u, ok_add.v, std::nan("")}};
    expect_rejected("non-finite weight", b);
  }
  {
    // The atomicity pin: perfectly valid entries FOLLOWED by one malformed
    // one — nothing from the valid prefix may leak into the graph.
    ChurnBatch b;
    b.added = {{ok_add.u, ok_add.v, 1.0},
               {other_add.u, other_add.v, 1.0},
               {7, 7, 1.0}};
    b.removed = {{ok_rem.u, ok_rem.v, 1.0}};
    expect_rejected("valid prefix then malformed", b);
  }

  // Zero mutation: still epoch 0, still the very same snapshot object, no
  // half-applied entries.
  EXPECT_EQ(service.CurrentEpoch("g"), 0);
  EXPECT_EQ(service.CurrentSnapshot("g").get(), before.get());
  EXPECT_FALSE(before->data.graph.HasEdge(ok_add.u, ok_add.v));
  EXPECT_TRUE(before->data.graph.HasEdge(ok_rem.u, ok_rem.v));
  EXPECT_EQ(service.stats().churn_batches, 0);

  // A well-formed batch sails through and publishes epoch 1.
  const ChurnResult okr = service.UpdateGraph("g", valid);
  ASSERT_TRUE(okr.status.ok()) << okr.status.ToString();
  EXPECT_EQ(okr.epoch, 1);
  EXPECT_EQ(service.CurrentEpoch("g"), 1);
  EXPECT_TRUE(service.CurrentSnapshot("g")->data.graph.HasEdge(ok_add.u,
                                                               ok_add.v));
  EXPECT_EQ(service.stats().churn_batches, 1);

  service.Stop();
  ChurnBatch after_stop;
  after_stop.added = {{other_add.u, other_add.v, 1.0}};
  EXPECT_EQ(service.UpdateGraph("g", after_stop).status.code(),
            StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Incremental maintenance == fresh rebuild, to the bit.
// ---------------------------------------------------------------------------

TEST(RenormalizeTest, FlipBatchBitIdenticalToFreshNormalize) {
  Fixture* f = SharedFixture();
  const std::vector<Edge> adds = AbsentEdges(f->data.graph, 3);
  const std::vector<Edge> rems = RemovableEdges(f->data.graph, 2);
  ASSERT_EQ(adds.size(), 3u);
  ASSERT_EQ(rems.size(), 2u);

  Graph churned = f->data.graph;
  for (const Edge& e : adds) ASSERT_TRUE(churned.AddEdge(e.u, e.v));
  for (const Edge& e : rems) ASSERT_TRUE(churned.RemoveEdge(e.u, e.v));

  const CsrMatrix fresh = GcnNormalizeCsr(churned.CsrAdjacency());
  const CsrMatrix incremental = GcnRenormalizeAfterFlips(
      f->ctx.clean_norm_csr, f->ctx.clean_degp1, adds, rems);
  ExpectSameCsr(incremental, fresh, "renormalize-after-flips");
}

TEST(SnapshotTest, ApplyChurnMatchesFreshContextBitIdentical) {
  Fixture* f = SharedFixture();
  const FgaAttack inner(/*targeted=*/true);
  const std::vector<Edge> adds = AbsentEdges(f->data.graph, 3);
  const std::vector<Edge> rems = RemovableEdges(f->data.graph, 2);
  ASSERT_EQ(adds.size(), 3u);
  ASSERT_EQ(rems.size(), 2u);
  const ChurnBatch batch = BatchOf(adds, rems);

  GraphData churned = f->data;
  for (const Edge& e : adds) ASSERT_TRUE(churned.graph.AddEdge(e.u, e.v));
  for (const Edge& e : rems) ASSERT_TRUE(churned.graph.RemoveEdge(e.u, e.v));

  for (const bool dense : {true, false}) {
    const std::string where = dense ? "dense" : "sparse";
    const auto prev =
        MakeGraphSnapshot("v", f->data, *f->model, NoOwn(&inner), dense);
    ASSERT_TRUE(ValidateChurnBatch(prev->data.graph, batch).ok());
    const auto next = ApplyChurn(prev, batch);
    EXPECT_EQ(next->epoch, 1) << where;
    EXPECT_EQ(next->version, "v") << where;
    EXPECT_EQ(next->model.get(), prev->model.get()) << where;
    EXPECT_EQ(next->attack.get(), prev->attack.get()) << where;

    // Every derived field must be the exact bits a from-scratch context
    // build on the churned graph produces.
    const AttackContext fresh = dense
                                    ? MakeAttackContext(churned, *f->model)
                                    : MakeSparseAttackContext(churned,
                                                              *f->model);
    ExpectSameCsr(next->ctx.clean_csr, fresh.clean_csr, where + " clean_csr");
    ExpectSameCsr(next->ctx.clean_norm_csr, fresh.clean_norm_csr,
                  where + " clean_norm_csr");
    EXPECT_EQ(next->ctx.clean_degp1.data(), fresh.clean_degp1.data())
        << where << " clean_degp1";
    if (dense) {
      ASSERT_EQ(next->ctx.clean_adjacency.rows(),
                fresh.clean_adjacency.rows()) << where;
      EXPECT_EQ(next->ctx.clean_adjacency.data(),
                fresh.clean_adjacency.data()) << where << " clean_adjacency";
    } else {
      EXPECT_EQ(next->ctx.clean_adjacency.rows(), 0) << where;
    }

    // The Graph mirror advanced — and the PREVIOUS epoch did not move.
    for (const Edge& e : adds) {
      EXPECT_TRUE(next->data.graph.HasEdge(e.u, e.v)) << where;
      EXPECT_FALSE(prev->data.graph.HasEdge(e.u, e.v)) << where;
    }
    for (const Edge& e : rems) {
      EXPECT_FALSE(next->data.graph.HasEdge(e.u, e.v)) << where;
      EXPECT_TRUE(prev->data.graph.HasEdge(e.u, e.v)) << where;
    }
    EXPECT_EQ(prev->epoch, 0) << where;
  }
}

// ---------------------------------------------------------------------------
// Epoch pinning: in-flight waves finish on their dispatch snapshot.
// ---------------------------------------------------------------------------

TEST(LiveEpochTest, InFlightWaveFinishesOnItsDispatchSnapshot) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 2u);
  const FgaAttack inner(/*targeted=*/true);
  FaultInjectingAttack attack(&inner);
  attack.InjectAt(f->requests[0].target_node,
                  {FaultKind::kDelay, /*delay_ms=*/250.0});

  AttackServiceConfig cfg;
  cfg.base_seed = 7001;
  cfg.num_threads = 1;
  cfg.wave_size = 1;
  cfg.queue_capacity = 8;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&attack),
                                    /*dense_context=*/true).ok());

  AttackServiceRequest parked;
  parked.graph = "g";
  parked.target_node = f->requests[0].target_node;
  parked.target_label = f->requests[0].target_label;
  parked.budget = f->requests[0].budget;
  const Admission a0 = service.Submit(parked);
  ASSERT_TRUE(a0.status.ok()) << a0.status.ToString();
  WaitUntilWaveInFlight(service);

  AttackServiceRequest queued = parked;
  queued.target_node = f->requests[1].target_node;
  queued.target_label = f->requests[1].target_label;
  queued.budget = f->requests[1].budget;
  const Admission a1 = service.Submit(queued);
  ASSERT_TRUE(a1.status.ok()) << a1.status.ToString();

  // Churn lands while the parked wave is mid-flight.  The default
  // churn_ball_hops = -1 is the conservative whole-graph ball, so the one
  // QUEUED request re-pins; the RUNNING one must not.
  const std::vector<Edge> adds = AbsentEdges(f->data.graph, 2);
  ASSERT_EQ(adds.size(), 2u);
  const ChurnResult cr = service.UpdateGraph("g", BatchOf(adds, {}));
  ASSERT_TRUE(cr.status.ok()) << cr.status.ToString();
  EXPECT_EQ(cr.epoch, 1);
  EXPECT_EQ(cr.requeued, 1);
  service.Drain();

  GraphData churned = f->data;
  for (const Edge& e : adds) ASSERT_TRUE(churned.graph.AddEdge(e.u, e.v));
  const AttackContext fresh = MakeAttackContext(churned, *f->model);

  // The parked target ran on its dispatch snapshot: epoch 0 bits.
  const ServiceResult r0 = service.Take(a0.ticket);
  ASSERT_TRUE(r0.result.status.ok()) << r0.result.status.ToString();
  EXPECT_EQ(r0.epoch, 0);
  EXPECT_EQ(r0.attempts, 1);
  EXPECT_EQ(r0.seed, TargetSeed(cfg.base_seed, 0));
  ExpectSameEdges(r0.result,
                  ReplayOne(f->ctx, inner, parked.target_node,
                            parked.target_label, r0),
                  "parked wave on epoch 0");

  // The bumped queued target ran on the churned snapshot: epoch 1 bits.
  const ServiceResult r1 = service.Take(a1.ticket);
  ASSERT_TRUE(r1.result.status.ok()) << r1.result.status.ToString();
  EXPECT_EQ(r1.epoch, 1);
  EXPECT_EQ(r1.seed, TargetSeed(cfg.base_seed, 1));
  ExpectSameEdges(r1.result,
                  ReplayOne(fresh, inner, queued.target_node,
                            queued.target_label, r1),
                  "bumped target on epoch 1");

  EXPECT_EQ(service.CurrentEpoch("g"), 1);
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.churn_batches, 1);
  EXPECT_EQ(st.requeued_stale, 1);
}

// ---------------------------------------------------------------------------
// Ball-overlap invalidation (churn_ball_hops >= 0).
// ---------------------------------------------------------------------------

// Two disjoint 20-node rings.  Component A (nodes 0..19) carries labels 0
// and 1; component B (nodes 20..39) is all label 2.  A target in A with
// target_label 1 has every candidate inside A, so its 2-hop augmented ball
// never reaches B — B-side churn provably cannot move its picks.
struct TwoComponentScenario {
  GraphData data;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;  // Sparse epoch-0 reference context.
};

TwoComponentScenario MakeTwoComponentScenario() {
  TwoComponentScenario s;
  const int64_t n = 40;
  s.data.graph = Graph(n);
  for (int64_t i = 0; i < 20; ++i)
    s.data.graph.AddEdge(i, (i + 1) % 20);
  for (int64_t i = 20; i < 40; ++i)
    s.data.graph.AddEdge(i, i == 39 ? 20 : i + 1);
  Rng rng(4242);
  s.data.features = rng.NormalTensor(n, 8, 0.0, 1.0);
  s.data.labels.assign(static_cast<size_t>(n), 0);
  for (int64_t i = 10; i < 20; ++i) s.data.labels[static_cast<size_t>(i)] = 1;
  for (int64_t i = 20; i < 40; ++i) s.data.labels[static_cast<size_t>(i)] = 2;
  s.data.num_classes = 3;
  GcnConfig gc;
  gc.in_dim = 8;
  gc.hidden_dim = 16;
  gc.num_classes = 3;
  s.model = std::make_unique<Gcn>(gc, &rng);
  s.ctx = MakeSparseAttackContext(s.data, *s.model);
  return s;
}

/// Runs the parked-wave + queued-target + churn script against the
/// two-ring scenario with churn_ball_hops = 2 and a hops-2 GEAttack, and
/// returns (ChurnResult, queued target's ServiceResult).  The queued
/// target is node 0 (label 0) attacking toward label 1, accepted at
/// index 1.
std::pair<ChurnResult, ServiceResult> RunBallScript(
    const TwoComponentScenario& s, const GeAttack& geattack,
    const ChurnBatch& churn, uint64_t base_seed) {
  FaultInjectingAttack attack(&geattack);
  const int64_t parked_node = 2;
  attack.InjectAt(parked_node, {FaultKind::kDelay, /*delay_ms=*/250.0});

  AttackServiceConfig cfg;
  cfg.base_seed = base_seed;
  cfg.num_threads = 1;
  cfg.wave_size = 1;
  cfg.queue_capacity = 8;
  cfg.churn_ball_hops = 2;  // == GeAttackConfig::hops, the proof's floor.
  AttackService service(cfg);
  GEA_CHECK(service.RegisterGraph("g", s.data, *s.model, NoOwn(&attack),
                                  /*dense_context=*/false).ok());

  AttackServiceRequest parked;
  parked.graph = "g";
  parked.target_node = parked_node;
  parked.target_label = 1;
  parked.budget = 1;
  const Admission a0 = service.Submit(parked);
  EXPECT_TRUE(a0.status.ok()) << a0.status.ToString();
  WaitUntilWaveInFlight(service);

  AttackServiceRequest queued = parked;
  queued.target_node = 0;
  const Admission a1 = service.Submit(queued);
  EXPECT_TRUE(a1.status.ok()) << a1.status.ToString();

  const ChurnResult cr = service.UpdateGraph("g", churn);
  EXPECT_TRUE(cr.status.ok()) << cr.status.ToString();
  service.Drain();
  const ServiceResult parked_result = service.Take(a0.ticket);
  EXPECT_EQ(parked_result.epoch, 0);  // In-flight wave: dispatch snapshot.
  ServiceResult queued_result = service.Take(a1.ticket);
  EXPECT_EQ(service.stats().requeued_stale, cr.requeued);
  return {cr, std::move(queued_result)};
}

TEST(BallInvalidationTest, ChurnOutsideBallKeepsPinAndPicks) {
  const TwoComponentScenario s = MakeTwoComponentScenario();
  GeAttackConfig gcfg;
  gcfg.hops = 2;
  const GeAttack geattack(gcfg);

  // A chord inside component B: both endpoints carry label 2 and sit
  // outside node 0's 2-hop augmented ball (which is confined to A).
  ChurnBatch far;
  far.added = {{20, 22, 1.0}};
  const auto [cr, rq] = RunBallScript(s, geattack, far, /*base_seed=*/6101);
  EXPECT_EQ(cr.epoch, 1);
  EXPECT_EQ(cr.requeued, 0);  // Provably unaffected: pin kept.
  ASSERT_TRUE(rq.result.status.ok()) << rq.result.status.ToString();
  EXPECT_EQ(rq.epoch, 0);
  EXPECT_EQ(rq.seed, TargetSeed(6101, 1));

  // The picks equal an offline replay on the epoch-0 context...
  ExpectSameEdges(rq.result, ReplayOne(s.ctx, geattack, 0, 1, rq),
                  "unbumped target vs epoch-0 replay");
  // ...AND on a fresh context of the churned graph — the invalidation
  // proof made bits: outside the ball, old and new epochs agree exactly.
  GraphData churned = s.data;
  ASSERT_TRUE(churned.graph.AddEdge(20, 22));
  const AttackContext fresh = MakeSparseAttackContext(churned, *s.model);
  ExpectSameEdges(rq.result, ReplayOne(fresh, geattack, 0, 1, rq),
                  "unbumped target vs churned-epoch replay");
}

TEST(BallInvalidationTest, ChurnInsideBallRequeuesOntoNewEpoch) {
  const TwoComponentScenario s = MakeTwoComponentScenario();
  GeAttackConfig gcfg;
  gcfg.hops = 2;
  const GeAttack geattack(gcfg);

  // Node 15 is one of node 0's label-1 candidates — distance 1 in the
  // augmented graph, squarely inside the ball — so this churn MUST bump.
  ChurnBatch near;
  near.added = {{5, 15, 1.0}};
  const auto [cr, rq] = RunBallScript(s, geattack, near, /*base_seed=*/6113);
  EXPECT_EQ(cr.epoch, 1);
  EXPECT_EQ(cr.requeued, 1);
  ASSERT_TRUE(rq.result.status.ok()) << rq.result.status.ToString();
  EXPECT_EQ(rq.epoch, 1);
  EXPECT_EQ(rq.seed, TargetSeed(6113, 1));

  GraphData churned = s.data;
  ASSERT_TRUE(churned.graph.AddEdge(5, 15));
  const AttackContext fresh = MakeSparseAttackContext(churned, *s.model);
  ExpectSameEdges(rq.result, ReplayOne(fresh, geattack, 0, 1, rq),
                  "bumped target vs churned-epoch replay");
}

// ---------------------------------------------------------------------------
// WAL recovery: byte-identical replay, exactly-once, torn-tail re-run.
// ---------------------------------------------------------------------------

void ExpectSameServiceResult(const ServiceResult& got,
                             const ServiceResult& want,
                             const std::string& where, bool replayed) {
  EXPECT_EQ(got.result.status.code(), want.result.status.code()) << where;
  ExpectSameEdges(got.result, want.result, where);
  EXPECT_EQ(got.accepted_index, want.accepted_index) << where;
  EXPECT_EQ(got.attempts, want.attempts) << where;
  EXPECT_EQ(got.seed, want.seed) << where;
  EXPECT_EQ(got.effective_budget, want.effective_budget) << where;
  EXPECT_EQ(got.epoch, want.epoch) << where;
  // No clock bits in recovery state: replayed results report zero latency.
  if (replayed) {
    EXPECT_EQ(got.latency_ms, 0.0) << where;
  }
}

TEST(WalRecoveryTest, ReplayIsByteIdenticalAndTornTailRecomputes) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 6u);
  const FgaAttack inner(/*targeted=*/true);
  const std::string path = testing::TempDir() + "geattack_service_wal.txt";
  std::remove(path.c_str());

  AttackServiceConfig cfg;
  cfg.base_seed = 9103;
  cfg.num_threads = 2;
  cfg.wave_size = 4;
  cfg.queue_capacity = 64;
  cfg.journal_path = path;

  const std::vector<Edge> adds = AbsentEdges(f->data.graph, 2);
  ASSERT_EQ(adds.size(), 2u);
  const ChurnBatch batch = BatchOf(adds, {});

  const auto submit = [&f](AttackService* service, size_t i) {
    AttackServiceRequest req;
    req.graph = "g";
    req.target_node = f->requests[i].target_node;
    req.target_label = f->requests[i].target_label;
    req.budget = f->requests[i].budget;
    const Admission a = service->Submit(req);
    EXPECT_TRUE(a.status.ok()) << a.status.ToString();
    EXPECT_EQ(a.ticket, static_cast<int64_t>(i));
    return a.ticket;
  };

  // --- The original run: 3 targets on epoch 0, churn, 3 on epoch 1. ---
  std::vector<ServiceResult> original(6);
  {
    AttackService service(cfg);
    ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&inner),
                                      /*dense_context=*/true).ok());
    const RecoveryReport blank = service.Recover();
    ASSERT_TRUE(blank.status.ok()) << blank.status.ToString();
    EXPECT_EQ(blank.churn_batches, 0);
    EXPECT_EQ(blank.replayed_results, 0);
    EXPECT_EQ(blank.pending, 0);

    for (size_t i = 0; i < 3; ++i) submit(&service, i);
    service.Drain();
    const ChurnResult cr = service.UpdateGraph("g", batch);
    ASSERT_TRUE(cr.status.ok()) << cr.status.ToString();
    EXPECT_EQ(cr.epoch, 1);
    for (size_t i = 3; i < 6; ++i) submit(&service, i);
    service.Drain();
    for (size_t i = 0; i < 6; ++i) {
      original[i] = service.Take(static_cast<int64_t>(i));
      EXPECT_EQ(original[i].epoch, i < 3 ? 0 : 1) << "ticket " << i;
    }
  }

  // --- Crash + recover: everything must come back from records alone. ---
  {
    AttackService service(cfg);
    ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&inner),
                                      /*dense_context=*/true).ok());
    const RecoveryReport rec = service.Recover();
    ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
    EXPECT_EQ(rec.churn_batches, 1);
    EXPECT_EQ(rec.replayed_results, 6);
    EXPECT_EQ(rec.pending, 0);
    EXPECT_EQ(service.CurrentEpoch("g"), 1);
    for (size_t i = 0; i < 6; ++i)
      ExpectSameServiceResult(service.Take(static_cast<int64_t>(i)),
                              original[i],
                              "replayed ticket " + std::to_string(i),
                              /*replayed=*/true);
    const ServiceStats st = service.stats();
    EXPECT_EQ(st.replayed_results, 6);
    EXPECT_EQ(st.accepted, 6);
    EXPECT_EQ(st.accepted, st.completed_ok + st.failed + st.timed_out +
                               st.skipped + st.shed + st.queue_depth +
                               st.in_flight);
  }

  // --- Torn tail: chop the LAST completion record mid-line.  Exactly that
  // ticket must come back as pending and recompute to the same bits. ---
  std::string text;
  {
    std::ifstream in(path);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const size_t cut = text.rfind("\nt ");
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, cut + 4);
  }
  {
    AttackService service(cfg);
    ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&inner),
                                      /*dense_context=*/true).ok());
    const RecoveryReport rec = service.Recover();
    ASSERT_TRUE(rec.status.ok()) << rec.status.ToString();
    EXPECT_EQ(rec.replayed_results, 5);
    ASSERT_EQ(rec.pending, 1);
    const int64_t lost = rec.pending_tickets[0];
    service.Drain();  // Re-runs only the lost ticket, on its recorded seed.
    for (int64_t i = 0; i < 6; ++i)
      ExpectSameServiceResult(service.Take(i),
                              original[static_cast<size_t>(i)],
                              "post-torn-tail ticket " + std::to_string(i),
                              /*replayed=*/i != lost);
    EXPECT_EQ(service.stats().replayed_results, 5);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geattack
