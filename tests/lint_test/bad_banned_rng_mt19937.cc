// Fixture: raw engine outside src/tensor/random.h must be flagged.
#include <random>

namespace geattack {

double NoisyScore(double base) {
  std::mt19937_64 gen(42);  // bypasses the seeded Rng / TargetSeed streams
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return base + dist(gen);
}

}  // namespace geattack
