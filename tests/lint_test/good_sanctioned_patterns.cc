// Fixture: the sanctioned versions of everything the checker bans.  Must
// produce zero findings.
#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace geattack {

class Rng;  // the seeded wrapper from src/tensor/random.h

// Membership tests against unordered containers are fine — only iteration
// is hash-ordered.
bool HasEdge(const std::unordered_set<int64_t>& edges, int64_t key) {
  return edges.count(key) > 0;
}

// Iterating a sorted container is deterministic.
int64_t BusiestNode(const std::map<int64_t, int64_t>& degree) {
  int64_t best = -1;
  int64_t best_deg = -1;
  for (const auto& [node, deg] : degree) {
    if (deg > best_deg) {
      best = node;
      best_deg = deg;
    }
  }
  return best;
}

// Order-independent folds over unordered containers may be suppressed with
// an audit note naming the check.
int64_t CountLarge(const std::unordered_map<int64_t, int64_t>& sizes) {
  int64_t count = 0;
  // lint-ok: unordered-iteration (pure count; no order-dependent tie-break)
  for (const auto& [node, sz] : sizes) {
    if (sz > 10) ++count;
  }
  return count;
}

// A once_flag-guarded cache is the sanctioned lazy-init pattern.
class GuardedCache {
 public:
  const std::vector<int64_t>& Get() const {
    std::call_once(once_, [this] { cache_.assign(128, 0); });
    return cache_;
  }

 private:
  mutable std::once_flag once_;
  mutable std::vector<int64_t> cache_;
};

}  // namespace geattack
