// Fixture: hash-order iteration producing a result (first-wins argmax).
#include <cstdint>
#include <unordered_map>

namespace geattack {

int64_t BusiestNode(const std::unordered_map<int64_t, int64_t>& degree_in) {
  std::unordered_map<int64_t, int64_t> degree = degree_in;
  int64_t best = -1;
  int64_t best_deg = -1;
  // First-wins tie-break: the answer depends on bucket order.
  for (const auto& [node, deg] : degree) {
    if (deg > best_deg) {
      best = node;
      best_deg = deg;
    }
  }
  return best;
}

}  // namespace geattack
