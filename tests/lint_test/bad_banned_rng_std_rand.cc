// Fixture: C-library rand shares hidden global state across threads.
#include <cstdlib>

namespace geattack {

int PickSlot(int n) {
  return std::rand() % n;
}

}  // namespace geattack
