// Fixture: per-function fast-math licenses FP reassociation.
namespace geattack {

#pragma GCC optimize("fast-math")
double Dot(const double* a, const double* b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace geattack
