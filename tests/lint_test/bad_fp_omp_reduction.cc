// Fixture: OpenMP FP reductions accumulate in thread-arrival order.
#include <vector>

namespace geattack {

double SumAll(const std::vector<double>& v) {
  double sum = 0.0;
  const long n = static_cast<long>(v.size());
#pragma omp parallel for reduction(+ : sum)
  for (long i = 0; i < n; ++i) sum += v[static_cast<size_t>(i)];
  return sum;
}

}  // namespace geattack
