// Fixture: std::random_device seeds are nondeterministic by construction.
#include <random>

namespace geattack {

uint64_t FreshSeed() {
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) | rd();
}

}  // namespace geattack
