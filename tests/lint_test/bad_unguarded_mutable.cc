// Fixture: lazily-filled shared cache with no call_once guard.  Two attack
// workers hitting Get() concurrently race on cache_/cached_.
#include <cstdint>
#include <vector>

namespace geattack {

class DegreeCache {
 public:
  const std::vector<int64_t>& Get() const {
    if (!cached_) {
      cache_.assign(128, 0);
      cached_ = true;
    }
    return cache_;
  }

 private:
  mutable std::vector<int64_t> cache_;
  mutable bool cached_ = false;
};

}  // namespace geattack
