// Tests of the SubgraphView candidate-edge layer and the sparse
// differentiable forward built on it: structural invariants, exact
// agreement with the dense normalization/forward, and the incremental
// CSR re-normalization and Nettack trial-row helpers.

#include "src/graph/subgraph.h"

#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "src/attack/attack.h"
#include "src/eval/pipeline.h"
#include "src/graph/generators.h"
#include "src/nn/linearized_gcn.h"
#include "src/nn/sparse_forward.h"
#include "src/nn/trainer.h"
#include "tests/test_util.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  std::unique_ptr<Gcn> model;
  Tensor xw1;
};

Fixture* SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(77);
    CitationGraphConfig cfg;
    cfg.num_nodes = 80;
    cfg.num_edges = 200;
    cfg.num_classes = 3;
    cfg.feature_dim = 24;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    Split split = MakeSplit(f->data, 0.1, 0.1, &rng);
    TrainConfig tc;
    tc.epochs = 30;
    f->model = std::make_unique<Gcn>(TrainNewGcn(f->data, split, tc, &rng));
    f->xw1 = f->data.features.MatMul(f->model->w1());
    return f;
  }();
  return fixture;
}

std::vector<int64_t> SomeCandidates(const Graph& g, int64_t target,
                                    size_t max_count) {
  std::vector<int64_t> candidates;
  for (int64_t j = 0; j < g.num_nodes() && candidates.size() < max_count;
       ++j) {
    if (j == target || g.HasEdge(target, j)) continue;
    candidates.push_back(j);
  }
  return candidates;
}

TEST(SubgraphViewTest, FullViewStructure) {
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const int64_t target = 0;
  const auto candidates = SomeCandidates(g, target, 5);
  const SubgraphView view = BuildSubgraphView(g, target, -1, candidates);

  EXPECT_TRUE(view.full());
  EXPECT_EQ(view.num_nodes(), g.num_nodes());
  EXPECT_EQ(view.num_edges(), g.num_edges());
  EXPECT_EQ(view.num_candidates(), static_cast<int64_t>(candidates.size()));
  EXPECT_TRUE(view.pattern->CheckInvariants());
  // nnz = 2 edges + 2 candidates + diagonal.
  EXPECT_EQ(view.pattern->nnz(),
            2 * g.num_edges() + 2 * view.num_candidates() + g.num_nodes());
  // Full view: no out-of-view edges.
  for (int64_t i = 0; i < view.num_nodes(); ++i)
    EXPECT_EQ(view.out_degree.at(i, 0), 0.0);
  // Every undirected slot has exactly two directed positions.
  for (const auto& [a, b] : view.slot_nnz) {
    EXPECT_GE(a, 0);
    EXPECT_GE(b, 0);
    EXPECT_NE(a, b);
  }
  // EdgeSlot round-trips edges and candidates.
  for (int64_t s = 0; s < view.num_edges(); ++s) {
    const IndexPair& e = view.edges_local[static_cast<size_t>(s)];
    EXPECT_EQ(view.EdgeSlot(e.u, e.v), s);
    EXPECT_EQ(view.EdgeSlot(e.v, e.u), s);
  }
  for (int64_t k = 0; k < view.num_candidates(); ++k) {
    EXPECT_EQ(view.EdgeSlot(view.target_local,
                            view.candidates_local[static_cast<size_t>(k)]),
              view.num_edges() + k);
  }
}

TEST(SubgraphViewTest, KHopBallAndOutDegrees) {
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const int64_t target = 3;
  const auto candidates = SomeCandidates(g, target, 4);
  const SubgraphView view = BuildSubgraphView(g, target, 2, candidates);

  // Node set: the 2-hop ball around the target in the augmented graph.
  Graph augmented = g;
  for (int64_t c : candidates) augmented.AddEdge(target, c);
  const auto expected = augmented.KHopNeighborhood(target, 2);
  ASSERT_EQ(view.nodes.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(view.nodes[i], expected[i]);

  // out_degree + internal degree == global degree.
  for (int64_t l = 0; l < view.num_nodes(); ++l) {
    const int64_t global = view.nodes[static_cast<size_t>(l)];
    int64_t internal = 0;
    for (const IndexPair& e : view.edges_local)
      if (e.u == l || e.v == l) ++internal;
    EXPECT_EQ(view.out_degree.at(l, 0) + static_cast<double>(internal),
              g.Degree(global));
  }
}

TEST(SparseForwardTest, MatchesDenseNormalizationAndLogits) {
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const int64_t target = 1;
  const auto candidates = SomeCandidates(g, target, 6);
  const SubgraphView view = BuildSubgraphView(g, target, -1, candidates);
  const SparseAttackForward sf =
      MakeSparseAttackForward(view, *f->model, f->xw1);

  // Relax two candidates to fractional values; the rest stay 0.
  Tensor w = Tensor::Zeros(view.num_candidates(), 1);
  w.at(0, 0) = 0.7;
  w.at(2, 0) = 0.3;
  Tensor dense_adj = g.DenseAdjacency();
  dense_adj.at(target, candidates[0]) = 0.7;
  dense_adj.at(candidates[0], target) = 0.7;
  dense_adj.at(target, candidates[2]) = 0.3;
  dense_adj.at(candidates[2], target) = 0.3;

  const Var wv = Var::Leaf(w);
  const Var logits =
      SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, wv));
  const Tensor dense_logits =
      f->model->LogitsFromRaw(dense_adj, f->data.features);
  // Local node l maps to global view.nodes[l] (identity on a full view).
  EXPECT_LE(logits.value().MaxAbsDiff(dense_logits), 1e-9);
}

TEST(SparseForwardTest, KHopViewExactAtTargetRow) {
  // A 2-hop view (the GCN's depth) with out-degree correction reproduces
  // the dense logits *row* of the target exactly.
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const int64_t target = 5;
  const auto candidates = SomeCandidates(g, target, 3);
  const SubgraphView view = BuildSubgraphView(g, target, 2, candidates);
  const SparseAttackForward sf =
      MakeSparseAttackForward(view, *f->model, f->xw1);

  Tensor w = Tensor::Zeros(view.num_candidates(), 1);
  w.at(1, 0) = 0.5;
  Tensor dense_adj = g.DenseAdjacency();
  dense_adj.at(target, candidates[1]) = 0.5;
  dense_adj.at(candidates[1], target) = 0.5;

  const Var logits =
      SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, Var::Leaf(w)));
  const Tensor dense_logits =
      f->model->LogitsFromRaw(dense_adj, f->data.features);
  for (int64_t c = 0; c < dense_logits.cols(); ++c)
    EXPECT_NEAR(logits.value().at(view.target_local, c),
                dense_logits.at(target, c), 1e-9);
}

TEST(SparseForwardTest, CommitCandidateMatchesDiscreteEdge) {
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const int64_t target = 2;
  const auto candidates = SomeCandidates(g, target, 4);
  const SubgraphView view = BuildSubgraphView(g, target, -1, candidates);
  SparseAttackForward sf = MakeSparseAttackForward(view, *f->model, f->xw1);
  CommitCandidate(&sf, 1);

  Graph perturbed = g;
  perturbed.AddEdge(target, candidates[1]);
  const Var logits = SparseGcnLogitsVar(
      sf, RawValuesFromCandidates(
              sf, Var::Leaf(Tensor::Zeros(view.num_candidates(), 1))));
  const Tensor expected =
      f->model->LogitsFromGraph(perturbed, f->data.features);
  EXPECT_LE(logits.value().MaxAbsDiff(expected), 1e-9);
}

TEST(SparseForwardTest, CandidateGradientMatchesDenseAdjacencyGradient) {
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const int64_t target = 4;
  const auto candidates = SomeCandidates(g, target, 8);
  const SubgraphView view = BuildSubgraphView(g, target, -1, candidates);
  const SparseAttackForward sf =
      MakeSparseAttackForward(view, *f->model, f->xw1);

  Var w = Var::Leaf(Tensor::Zeros(view.num_candidates(), 1), true, "w");
  Var loss = NllRow(SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, w)),
                    view.target_local, 1);
  const Tensor gw = GradOne(loss, w).value();

  const GcnForwardContext fwd = MakeForwardContext(*f->model,
                                                   f->data.features);
  Var adj = Var::Leaf(g.DenseAdjacency(), true, "A");
  Var dense_loss = TargetedAttackLoss(fwd, adj, target, 1);
  const Tensor q = GradOne(dense_loss, adj).value();
  for (size_t k = 0; k < candidates.size(); ++k) {
    const double dense_score =
        q.at(target, candidates[k]) + q.at(candidates[k], target);
    EXPECT_NEAR(gw.at(static_cast<int64_t>(k), 0), dense_score, 1e-9);
  }
}

TEST(SparseForwardTest, SecondOrderThroughNormalizedValues) {
  // Double backward through the normalized candidate-value forward (the
  // machinery the GEAttack hypergradient rides on).
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const int64_t target = 4;
  const auto candidates = SomeCandidates(g, target, 3);
  const SubgraphView view = BuildSubgraphView(g, target, 2, candidates);
  const SparseAttackForward sf =
      MakeSparseAttackForward(view, *f->model, f->xw1);
  auto fn = [&](const Var& w) {
    return NllRow(SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, w)),
                  view.target_local, 1);
  };
  Rng rng(5);
  Tensor w0 = rng.UniformTensor(view.num_candidates(), 1, 0.1, 0.9);
  geattack::testing::ExpectGradientsMatch(fn, w0, 2e-5);
  geattack::testing::ExpectSecondOrderMatch(fn, w0, 5e-4);
}

TEST(RenormalizeTest, MatchesFullNormalizationAfterAdds) {
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const CsrMatrix clean = g.CsrAdjacency();
  const CsrMatrix norm_clean = GcnNormalizeCsr(clean);
  Tensor degp1(g.num_nodes(), 1);
  for (int64_t i = 0; i < g.num_nodes(); ++i)
    degp1.at(i, 0) = static_cast<double>(g.Degree(i)) + 1.0;

  // A batch of additions sharing endpoints (deltas > 1 on node 0).
  std::vector<Edge> added;
  for (int64_t j = 0; j < g.num_nodes() && added.size() < 3; ++j)
    if (j != 0 && !g.HasEdge(0, j)) added.emplace_back(0, j);
  ASSERT_EQ(added.size(), 3u);

  const CsrMatrix incremental =
      GcnRenormalizeAfterAdds(norm_clean, degp1, added);
  const CsrMatrix full =
      GcnNormalizeCsr(ApplyEdgeFlips(clean, added, /*removed=*/{}));
  ASSERT_EQ(incremental.nnz(), full.nnz());
  double max_diff = 0.0;
  for (size_t e = 0; e < full.values().size(); ++e)
    max_diff = std::max(max_diff,
                        std::abs(incremental.values()[e] - full.values()[e]));
  EXPECT_LE(max_diff, 1e-12);
}

TEST(LinearizedTrialRowTest, MatchesDenseTrialNormalization) {
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const LinearizedGcn surrogate(*f->model, f->data.features);
  const CsrMatrix norm = NormalizeAdjacencyCsr(g);
  std::vector<double> degp1(static_cast<size_t>(g.num_nodes()));
  for (int64_t i = 0; i < g.num_nodes(); ++i)
    degp1[static_cast<size_t>(i)] = static_cast<double>(g.Degree(i)) + 1.0;

  const int64_t v = 7;
  const Tensor dense = g.DenseAdjacency();
  int64_t checked = 0;
  for (int64_t j = 0; j < g.num_nodes() && checked < 5; ++j) {
    if (j == v || g.HasEdge(v, j)) continue;
    ++checked;
    Tensor trial = dense;
    AddEdgeDense(&trial, v, j);
    const Tensor expected = surrogate.LogitsRow(trial, v);
    const Tensor got = surrogate.LogitsRowWithEdgeAdded(norm, degp1, v, j);
    EXPECT_LE(got.MaxAbsDiff(expected), 1e-9) << "candidate " << j;
  }
  EXPECT_EQ(checked, 5);
}

}  // namespace
}  // namespace geattack
