// Fault-containment tests: a poisoned target (throw / NaN / stall) must
// fail alone — every other target's picks stay bit-identical to a run
// without the fault, at any thread count and batch grouping; deadlines are
// honored cooperatively; a killed journaled run resumes to byte-identical
// results; malformed input files come back as structured load errors.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/attack/driver.h"
#include "src/attack/fault_injection.h"
#include "src/attack/fga.h"
#include "src/attack/journal.h"
#include "src/eval/pipeline.h"
#include "src/eval/protocol.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
  std::vector<AttackRequest> requests;
};

Fixture* SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(913);
    CitationGraphConfig cfg;
    cfg.num_nodes = 90;
    cfg.num_edges = 240;
    cfg.num_classes = 3;
    cfg.feature_dim = 32;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    Split split = MakeSplit(f->data, 0.1, 0.1, &rng);
    TrainConfig tc;
    tc.epochs = 40;
    f->model = std::make_unique<Gcn>(TrainNewGcn(f->data, split, tc, &rng));
    f->ctx = MakeAttackContext(f->data, *f->model);
    const Tensor logits =
        f->model->LogitsFromRaw(f->ctx.clean_adjacency, f->data.features);
    auto nodes = SelectTargetNodes(
        f->data, logits, split.test,
        {.top_margin = 3, .bottom_margin = 3, .random = 2}, &rng);
    f->targets = PrepareTargets(f->ctx, nodes, &rng);
    for (const PreparedTarget& t : f->targets)
      f->requests.push_back(
          {t.node, t.target_label, std::min<int64_t>(t.budget, 2)});
    return f;
  }();
  return fixture;
}

void ExpectSameEdges(const AttackResult& got, const AttackResult& want,
                     const std::string& where) {
  ASSERT_EQ(got.added_edges.size(), want.added_edges.size()) << where;
  for (size_t e = 0; e < want.added_edges.size(); ++e)
    EXPECT_EQ(got.added_edges[e], want.added_edges[e]) << where << " edge "
                                                       << e;
}

// ---------------------------------------------------------------------------
// Per-target failure isolation.
// ---------------------------------------------------------------------------

void ExpectPoisonedTargetIsolated(FaultKind kind) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 3u);
  const size_t poisoned = f->requests.size() / 2;
  const FgaAttack inner(/*targeted=*/true);

  AttackDriverConfig baseline_config;
  baseline_config.base_seed = 21;
  const std::vector<AttackResult> baseline =
      RunMultiTargetAttack(f->ctx, inner, f->requests, baseline_config);
  for (const AttackResult& r : baseline) ASSERT_TRUE(r.status.ok());

  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[poisoned].target_node, {kind, 0.0});
  for (int threads : {1, 2, 4}) {
    for (int batch : {1, 2}) {
      AttackDriverConfig config;
      config.base_seed = 21;
      config.num_threads = threads;
      config.batch_targets = batch;
      const std::vector<AttackResult> results =
          RunMultiTargetAttack(f->ctx, faulty, f->requests, config);
      ASSERT_EQ(results.size(), baseline.size());
      for (size_t i = 0; i < results.size(); ++i) {
        const std::string where = "threads=" + std::to_string(threads) +
                                  " batch=" + std::to_string(batch) +
                                  " target " + std::to_string(i);
        if (i == poisoned) {
          EXPECT_EQ(results[i].status.code(), StatusCode::kError) << where;
          EXPECT_TRUE(results[i].added_edges.empty()) << where;
        } else {
          EXPECT_TRUE(results[i].status.ok())
              << where << ": " << results[i].status.ToString();
          ExpectSameEdges(results[i], baseline[i], where);
        }
      }
    }
  }
}

TEST(FaultIsolationTest, ThrownExceptionPoisonsOnlyItsTarget) {
  ExpectPoisonedTargetIsolated(FaultKind::kThrow);
}

TEST(FaultIsolationTest, NaNScorePoisonsOnlyItsTarget) {
  ExpectPoisonedTargetIsolated(FaultKind::kNaN);
}

TEST(FaultIsolationTest, NaNPoisonedModelTripsWireInsteadOfSilentEmptyPick) {
  // A NaN in the weights makes every gradient score NaN.  NaN never wins a
  // comparison, so without the tripwire the attack would silently return an
  // empty pick marked ok; with it, the driver reports a kError result.
  Fixture* f = SharedFixture();
  Gcn poisoned_model = *f->model;
  poisoned_model.mutable_w1()[0] = std::numeric_limits<double>::quiet_NaN();
  const AttackContext poisoned_ctx =
      MakeAttackContext(f->data, poisoned_model);
  const FgaAttack attack(/*targeted=*/true);
  const std::vector<AttackRequest> one(1, f->requests[0]);
  const std::vector<AttackResult> results =
      RunMultiTargetAttack(poisoned_ctx, attack, one, {});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kError);
  EXPECT_NE(results[0].status.message().find("non-finite"), std::string::npos)
      << results[0].status.ToString();
}

TEST(FaultIsolationTest, InvalidRequestsRejectedWithoutPerturbingSurvivors) {
  Fixture* f = SharedFixture();
  const FgaAttack attack(/*targeted=*/true);
  AttackDriverConfig config;
  config.base_seed = 33;
  const std::vector<AttackResult> baseline =
      RunMultiTargetAttack(f->ctx, attack, f->requests, config);

  // Invalid requests appended after the valid ones keep the valid request
  // indices (hence their TargetSeed streams) unchanged.
  const int64_t n = f->data.num_nodes();
  std::vector<AttackRequest> requests = f->requests;
  requests.push_back({n + 5, 0, 1});   // node out of range
  requests.push_back({-1, 0, 1});      // node negative
  requests.push_back({2, 99, 1});      // label out of range
  requests.push_back({2, -2, 1});      // label below the -1 sentinel
  requests.push_back({2, 0, -1});      // negative budget
  const std::vector<AttackResult> results =
      RunMultiTargetAttack(f->ctx, attack, requests, config);
  ASSERT_EQ(results.size(), requests.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(results[i].status.ok());
    ExpectSameEdges(results[i], baseline[i], "target " + std::to_string(i));
  }
  for (size_t i = baseline.size(); i < results.size(); ++i) {
    EXPECT_EQ(results[i].status.code(), StatusCode::kInvalidArgument)
        << "request " << i;
    EXPECT_TRUE(results[i].added_edges.empty());
  }
}

TEST(FaultIsolationTest, PredictAtNodeReturnsSentinelOutOfRange) {
  Fixture* f = SharedFixture();
  GnnExplainerConfig ecfg;
  ecfg.epochs = 2;
  const GnnExplainer explainer(f->model.get(), &f->data.features, ecfg);
  const ProtocolContext pctx = MakeProtocolContext(f->ctx, explainer);
  EXPECT_EQ(PredictAtNode(pctx, f->data.graph, -1), -1);
  EXPECT_EQ(PredictAtNode(pctx, f->data.graph, f->data.num_nodes() + 7), -1);
  EXPECT_GE(PredictAtNode(pctx, f->data.graph, 0), 0);
}

// ---------------------------------------------------------------------------
// Deadlines & cancellation.
// ---------------------------------------------------------------------------

TEST(DeadlineTest, TargetDeadlineTimesOutStalledTargetOnly) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 3u);
  const size_t stalled = f->requests.size() / 2;
  const FgaAttack inner(/*targeted=*/true);

  AttackDriverConfig baseline_config;
  baseline_config.base_seed = 55;
  const std::vector<AttackResult> baseline =
      RunMultiTargetAttack(f->ctx, inner, f->requests, baseline_config);

  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[stalled].target_node,
                  {FaultKind::kDelay, 120.0});
  for (int threads : {1, 2}) {
    AttackDriverConfig config;
    config.base_seed = 55;
    config.num_threads = threads;
    config.target_deadline_ms = 25.0;
    const std::vector<AttackResult> results =
        RunMultiTargetAttack(f->ctx, faulty, f->requests, config);
    ASSERT_EQ(results.size(), baseline.size());
    for (size_t i = 0; i < results.size(); ++i) {
      const std::string where =
          "threads=" + std::to_string(threads) + " target " +
          std::to_string(i);
      if (i == stalled) {
        // 120 ms stall >> 25 ms deadline: the first loop-top poll cancels
        // before any pick is committed.
        EXPECT_EQ(results[i].status.code(), StatusCode::kTimedOut) << where;
        EXPECT_TRUE(results[i].added_edges.empty()) << where;
      } else {
        // Fast targets finish well inside the deadline: their polls all
        // return false, so they take identical branches — identical picks.
        EXPECT_TRUE(results[i].status.ok())
            << where << ": " << results[i].status.ToString();
        ExpectSameEdges(results[i], baseline[i], where);
      }
    }
  }
}

TEST(DeadlineTest, RunDeadlineSkipsTargetsThatNeverStarted) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 3u);
  const FgaAttack inner(/*targeted=*/true);
  FaultInjectingAttack faulty(&inner);
  // Stall the FIRST scheduled target past the whole-run deadline; with one
  // worker the remaining targets deterministically start after it expired.
  faulty.InjectAt(f->requests[0].target_node, {FaultKind::kDelay, 120.0});

  AttackDriverConfig config;
  config.base_seed = 56;
  config.num_threads = 1;
  config.run_deadline_ms = 30.0;
  const std::vector<AttackResult> results =
      RunMultiTargetAttack(f->ctx, faulty, f->requests, config);
  ASSERT_EQ(results.size(), f->requests.size());
  // The stalled target was in flight when the run deadline passed: the
  // per-target token chains to the run token, so it times out.
  EXPECT_EQ(results[0].status.code(), StatusCode::kTimedOut);
  for (size_t i = 1; i < results.size(); ++i)
    EXPECT_EQ(results[i].status.code(), StatusCode::kSkipped) << "target "
                                                              << i;
}

TEST(DeadlineTest, PreExpiredCallerTokenSkipsBeforeAnyStreamIsConsumed) {
  // A request whose caller-provided token is already expired at submission
  // is doomed: running it would burn compute just to throw the result away.
  // The driver hands it back kSkipped *before* constructing its Rng or
  // calling the attack — so a doomed request never perturbs a survivor, at
  // any thread count and batch grouping.
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 3u);
  const FgaAttack inner(/*targeted=*/true);
  AttackDriverConfig baseline_config;
  baseline_config.base_seed = 57;
  const std::vector<AttackResult> baseline =
      RunMultiTargetAttack(f->ctx, inner, f->requests, baseline_config);

  const size_t doomed = f->requests.size() / 2;
  CancellationToken cancelled;
  cancelled.Cancel();
  std::vector<AttackRequest> requests = f->requests;
  requests[doomed].cancel = &cancelled;
  for (int threads : {1, 2, 4}) {
    for (int batch : {1, 2}) {
      AttackDriverConfig config;
      config.base_seed = 57;
      config.num_threads = threads;
      config.batch_targets = batch;
      FaultInjectingAttack counted(&inner);
      const std::vector<AttackResult> results =
          RunMultiTargetAttack(f->ctx, counted, requests, config);
      const std::string at = "threads=" + std::to_string(threads) +
                             " batch=" + std::to_string(batch);
      // Never attempted: the attack itself was not even called for it.
      EXPECT_EQ(counted.attack_calls(),
                static_cast<int64_t>(requests.size()) - 1)
          << at;
      ASSERT_EQ(results.size(), baseline.size());
      for (size_t i = 0; i < results.size(); ++i) {
        const std::string where = at + " target " + std::to_string(i);
        if (i == doomed) {
          EXPECT_EQ(results[i].status.code(), StatusCode::kSkipped) << where;
          EXPECT_TRUE(results[i].added_edges.empty()) << where;
        } else {
          EXPECT_TRUE(results[i].status.ok())
              << where << ": " << results[i].status.ToString();
          ExpectSameEdges(results[i], baseline[i], where);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint journal: kill-and-resume equals uninterrupted.
// ---------------------------------------------------------------------------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void WriteFileOrDie(const std::string& path, const std::string& contents) {
  std::ofstream os(path);
  os << contents;
  ASSERT_TRUE(os.good()) << path;
}

void ExpectSameResults(const std::vector<AttackResult>& got,
                       const std::vector<AttackResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const std::string where = "target " + std::to_string(i);
    EXPECT_EQ(got[i].status.code(), want[i].status.code()) << where;
    EXPECT_EQ(got[i].status.message(), want[i].status.message()) << where;
    ExpectSameEdges(got[i], want[i], where);
    EXPECT_EQ(got[i].adjacency.MaxAbsDiff(want[i].adjacency), 0.0) << where;
  }
}

TEST(JournalTest, KilledRunResumesToIdenticalResults) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 4u);
  const std::string path = testing::TempDir() + "geattack_fault_journal.txt";
  std::remove(path.c_str());
  const FgaAttack inner(/*targeted=*/true);

  AttackDriverConfig config;
  config.base_seed = 77;
  config.num_threads = 2;
  config.journal_path = path;

  FaultInjectingAttack first_run(&inner);
  const std::vector<AttackResult> uninterrupted =
      RunMultiTargetAttack(f->ctx, first_run, f->requests, config);
  EXPECT_EQ(first_run.attack_calls(),
            static_cast<int64_t>(f->requests.size()));

  // Simulate a kill: keep the header + the first two complete records, then
  // append a torn record (the write that was in flight when the process
  // died).
  const std::string full = ReadFileOrDie(path);
  size_t cut = 0;
  for (int record = 0; record < 2; ++record) {
    cut = full.find(" ;\n", cut);
    ASSERT_NE(cut, std::string::npos);
    cut += 3;
  }
  WriteFileOrDie(path, full.substr(0, cut) + "r 3 0 2 1");

  FaultInjectingAttack resumed_run(&inner);
  const std::vector<AttackResult> resumed =
      RunMultiTargetAttack(f->ctx, resumed_run, f->requests, config);
  // Only the targets whose records were lost are recomputed...
  EXPECT_EQ(resumed_run.attack_calls(),
            static_cast<int64_t>(f->requests.size()) - 2);
  // ...and the merged results are identical to the uninterrupted run,
  // including the journal file itself converging back to a full journal.
  ExpectSameResults(resumed, uninterrupted);

  FaultInjectingAttack replay_run(&inner);
  const std::vector<AttackResult> replayed =
      RunMultiTargetAttack(f->ctx, replay_run, f->requests, config);
  EXPECT_EQ(replay_run.attack_calls(), 0);
  ExpectSameResults(replayed, uninterrupted);
  std::remove(path.c_str());
}

TEST(JournalTest, JournaledFailureReplaysWithoutRecomputing) {
  Fixture* f = SharedFixture();
  const std::string path = testing::TempDir() + "geattack_fault_journal2.txt";
  std::remove(path.c_str());
  const FgaAttack inner(/*targeted=*/true);
  const size_t poisoned = 0;

  AttackDriverConfig config;
  config.base_seed = 78;
  config.journal_path = path;

  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[poisoned].target_node, {FaultKind::kThrow, 0.0});
  const std::vector<AttackResult> first =
      RunMultiTargetAttack(f->ctx, faulty, f->requests, config);
  EXPECT_EQ(first[poisoned].status.code(), StatusCode::kError);

  // Resume with a fault-free attack: the journaled error is replayed as-is
  // (message bytes included) and nothing is recomputed.
  FaultInjectingAttack clean(&inner);
  const std::vector<AttackResult> second =
      RunMultiTargetAttack(f->ctx, clean, f->requests, config);
  EXPECT_EQ(clean.attack_calls(), 0);
  ExpectSameResults(second, first);

  // A different base_seed invalidates the journal: everything is recomputed
  // (and the fault-free attack now succeeds on the formerly poisoned
  // target).
  AttackDriverConfig reseeded = config;
  reseeded.base_seed = 79;
  const std::vector<AttackResult> third =
      RunMultiTargetAttack(f->ctx, clean, f->requests, reseeded);
  EXPECT_EQ(clean.attack_calls(), static_cast<int64_t>(f->requests.size()));
  EXPECT_TRUE(third[poisoned].status.ok());
  std::remove(path.c_str());
}

TEST(JournalTest, BitFlipInsideCompleteRecordSurfacesAsDataLoss) {
  // A torn tail is the normal kill artifact and truncates silently; a
  // *complete* record whose bytes changed after the fsync is different —
  // the CRC catches it, the load reports structured kDataLoss, and the
  // resumed run recomputes the dropped targets instead of trusting a
  // wrong-but-plausible replay.
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 3u);
  const std::string path = testing::TempDir() + "geattack_crc_journal.txt";
  std::remove(path.c_str());
  const FgaAttack attack(/*targeted=*/true);

  AttackDriverConfig config;
  config.base_seed = 81;
  config.num_threads = 1;  // Deterministic record order: 0, 1, 2, ...
  config.journal_path = path;
  const std::vector<AttackResult> uninterrupted =
      RunMultiTargetAttack(f->ctx, attack, f->requests, config);

  // Flip the request-index digit of the SECOND record ("r 1 ..." -> "r 0
  // ..."): the record still parses — the index is in range, every field is
  // well-formed — so only the CRC can tell it was tampered with.
  std::string text = ReadFileOrDie(path);
  const size_t first_end = text.find(" ;\n");
  ASSERT_NE(first_end, std::string::npos);
  const size_t second = text.find("r 1 ", first_end);
  ASSERT_NE(second, std::string::npos);
  text[second + 2] = '0';
  WriteFileOrDie(path, text);

  const int64_t n = static_cast<int64_t>(f->requests.size());
  const JournalLoadResult loaded = LoadAttackJournal(path, 81, n);
  EXPECT_TRUE(loaded.header_ok);
  EXPECT_EQ(loaded.status.code(), StatusCode::kDataLoss)
      << loaded.status.ToString();
  // Replay stops BEFORE the corrupt record: only the first survives, and
  // the resume offset points at the corrupt tail so it gets truncated.
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].request_index, 0);

  // Resume: everything from the flipped record on is recomputed, and the
  // merged results converge back to the uninterrupted run byte for byte.
  FaultInjectingAttack counted(&attack);
  const std::vector<AttackResult> resumed =
      RunMultiTargetAttack(f->ctx, counted, f->requests, config);
  EXPECT_EQ(counted.attack_calls(), n - 1);
  ExpectSameResults(resumed, uninterrupted);

  // The rewritten journal is whole again: a third run replays everything.
  FaultInjectingAttack replay(&attack);
  const std::vector<AttackResult> replayed =
      RunMultiTargetAttack(f->ctx, replay, f->requests, config);
  EXPECT_EQ(replay.attack_calls(), 0);
  ExpectSameResults(replayed, uninterrupted);
  std::remove(path.c_str());
}

/// Downgrades a freshly written v3 journal to the v1 format a pre-CRC build
/// would have left behind ("v1" header, no "c <crc>" trailers), keeping
/// only the first `keep_records` records as if the run was killed mid-way.
std::string DowngradeToV1(const std::string& text, int keep_records) {
  std::string out = text;
  const size_t v3 = out.find("geajournal v3");
  EXPECT_NE(v3, std::string::npos);
  out.replace(v3, 13, "geajournal v1");
  size_t cut = 0;
  for (int record = 0; record < keep_records; ++record) {
    cut = out.find(" ;\n", cut);
    EXPECT_NE(cut, std::string::npos);
    cut += 3;
  }
  out = out.substr(0, cut);
  size_t crc_at;
  while ((crc_at = out.find("\nc ")) != std::string::npos) {
    const size_t term = out.find(" ;\n", crc_at);
    EXPECT_NE(term, std::string::npos);
    out.replace(crc_at, term + 3 - crc_at, "\n;\n");
  }
  return out;
}

TEST(JournalTest, LegacyV1JournalLoadsAndMigratesToV3OnResume) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 4u);
  const std::string path = testing::TempDir() + "geattack_v1_journal.txt";
  std::remove(path.c_str());
  const FgaAttack attack(/*targeted=*/true);

  AttackDriverConfig config;
  config.base_seed = 82;
  config.num_threads = 1;
  config.journal_path = path;
  const std::vector<AttackResult> uninterrupted =
      RunMultiTargetAttack(f->ctx, attack, f->requests, config);

  WriteFileOrDie(path, DowngradeToV1(ReadFileOrDie(path), 2));

  const int64_t n = static_cast<int64_t>(f->requests.size());
  const JournalLoadResult loaded = LoadAttackJournal(path, 82, n);
  EXPECT_TRUE(loaded.header_ok);
  EXPECT_TRUE(loaded.legacy);
  EXPECT_TRUE(loaded.status.ok()) << loaded.status.ToString();
  EXPECT_EQ(loaded.records.size(), 2u);

  // Resume replays the two v1 records, recomputes the rest, and rewrites
  // the file as v3 so the CRC protection covers the migrated records too.
  FaultInjectingAttack counted(&attack);
  const std::vector<AttackResult> resumed =
      RunMultiTargetAttack(f->ctx, counted, f->requests, config);
  EXPECT_EQ(counted.attack_calls(), n - 2);
  ExpectSameResults(resumed, uninterrupted);
  EXPECT_EQ(ReadFileOrDie(path).compare(0, 13, "geajournal v3"), 0);

  FaultInjectingAttack replay(&attack);
  const std::vector<AttackResult> replayed =
      RunMultiTargetAttack(f->ctx, replay, f->requests, config);
  EXPECT_EQ(replay.attack_calls(), 0);
  ExpectSameResults(replayed, uninterrupted);
  std::remove(path.c_str());
}

TEST(JournalTest, V2JournalResumesInPlaceWithoutRewrite) {
  // v2 differs from v3 only in the header byte — `r` records are
  // grammar-identical and CRC'd — so a v2 journal is NOT legacy: the
  // driver appends under the existing header instead of rewriting.
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 4u);
  const std::string path = testing::TempDir() + "geattack_v2_journal.txt";
  std::remove(path.c_str());
  const FgaAttack attack(/*targeted=*/true);

  AttackDriverConfig config;
  config.base_seed = 85;
  config.num_threads = 1;
  config.journal_path = path;
  const std::vector<AttackResult> uninterrupted =
      RunMultiTargetAttack(f->ctx, attack, f->requests, config);

  // Downgrade the header to v2 and keep two records, as a killed pre-v3
  // build would have left it.
  std::string text = ReadFileOrDie(path);
  const size_t v3 = text.find("geajournal v3");
  ASSERT_NE(v3, std::string::npos);
  text.replace(v3, 13, "geajournal v2");
  size_t cut = 0;
  for (int record = 0; record < 2; ++record) {
    cut = text.find(" ;\n", cut);
    ASSERT_NE(cut, std::string::npos);
    cut += 3;
  }
  WriteFileOrDie(path, text.substr(0, cut));

  const int64_t n = static_cast<int64_t>(f->requests.size());
  const JournalLoadResult loaded = LoadAttackJournal(path, 85, n);
  EXPECT_TRUE(loaded.header_ok);
  EXPECT_FALSE(loaded.legacy);
  EXPECT_EQ(loaded.records.size(), 2u);

  FaultInjectingAttack counted(&attack);
  const std::vector<AttackResult> resumed =
      RunMultiTargetAttack(f->ctx, counted, f->requests, config);
  EXPECT_EQ(counted.attack_calls(), n - 2);
  ExpectSameResults(resumed, uninterrupted);
  // Still v2: resume-in-place never rewrites a CRC-capable journal.
  EXPECT_EQ(ReadFileOrDie(path).compare(0, 13, "geajournal v2"), 0);
  std::remove(path.c_str());
}

TEST(JournalTest, MigrationInterruptedMidRewriteIsAtomic) {
  // The v1 -> v3 migration rewrites into `<path>.rewrite.tmp` and
  // rename(2)s it over the journal.  A kill at ANY point therefore leaves
  // one of exactly two states — the intact v1 file (plus a stale tmp the
  // next migration truncates) before the rename, or the complete v3 file
  // after it — never a half-rewritten hybrid.  This test pins both sides
  // of the rename.
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 4u);
  const std::string path = testing::TempDir() + "geattack_mid_rewrite.txt";
  const std::string tmp = path + ".rewrite.tmp";
  std::remove(path.c_str());
  std::remove(tmp.c_str());
  const FgaAttack attack(/*targeted=*/true);

  AttackDriverConfig config;
  config.base_seed = 86;
  config.num_threads = 1;
  config.journal_path = path;
  const std::vector<AttackResult> uninterrupted =
      RunMultiTargetAttack(f->ctx, attack, f->requests, config);
  const std::string v3_text = ReadFileOrDie(path);
  const std::string v1_text = DowngradeToV1(v3_text, 2);

  // --- Killed BEFORE the rename: intact v1 + a half-written tmp. ---
  WriteFileOrDie(path, v1_text);
  WriteFileOrDie(tmp, v3_text.substr(0, v3_text.size() / 2));

  const int64_t n = static_cast<int64_t>(f->requests.size());
  // The journal itself is untouched by the crashed migration: it still
  // loads as a healthy two-record v1 file (the loader never looks at tmp).
  const JournalLoadResult before = LoadAttackJournal(path, 86, n);
  EXPECT_TRUE(before.header_ok);
  EXPECT_TRUE(before.legacy);
  EXPECT_TRUE(before.status.ok()) << before.status.ToString();
  EXPECT_EQ(before.records.size(), 2u);

  // Resume: the retried migration truncates the stale tmp, completes the
  // rename, and the run converges byte-identically.
  FaultInjectingAttack counted(&attack);
  const std::vector<AttackResult> resumed =
      RunMultiTargetAttack(f->ctx, counted, f->requests, config);
  EXPECT_EQ(counted.attack_calls(), n - 2);
  ExpectSameResults(resumed, uninterrupted);
  EXPECT_EQ(ReadFileOrDie(path).compare(0, 13, "geajournal v3"), 0);
  // The rename consumed the tmp file.
  EXPECT_FALSE(std::ifstream(tmp).good());

  // --- Killed AFTER the rename (before any post-migration append): the
  // journal is a complete v3 file holding the migrated records. ---
  size_t cut = 0;
  for (int record = 0; record < 2; ++record) {
    cut = v3_text.find(" ;\n", cut);
    ASSERT_NE(cut, std::string::npos);
    cut += 3;
  }
  WriteFileOrDie(path, v3_text.substr(0, cut));
  const JournalLoadResult after = LoadAttackJournal(path, 86, n);
  EXPECT_TRUE(after.header_ok);
  EXPECT_FALSE(after.legacy);
  EXPECT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(after.records.size(), 2u);

  FaultInjectingAttack counted_after(&attack);
  const std::vector<AttackResult> resumed_after =
      RunMultiTargetAttack(f->ctx, counted_after, f->requests, config);
  EXPECT_EQ(counted_after.attack_calls(), n - 2);
  ExpectSameResults(resumed_after, uninterrupted);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// EvaluateAttack aggregation.
// ---------------------------------------------------------------------------

TEST(EvaluateAttackFaultTest, AggregatesOnlyOkTargets) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->targets.size(), 3u);
  GnnExplainerConfig icfg;
  icfg.epochs = 5;
  GnnExplainer inspector(f->model.get(), &f->data.features, icfg);
  const FgaAttack inner(/*targeted=*/true);

  const size_t poisoned = f->targets.size() / 2;
  std::vector<PreparedTarget> survivors = f->targets;
  survivors.erase(survivors.begin() + static_cast<std::ptrdiff_t>(poisoned));

  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->targets[poisoned].node, {FaultKind::kThrow, 0.0});

  // attack_threads 0 (legacy serial loop) and 2 (driver) must both isolate
  // the poisoned target and aggregate only the survivors.  FGA-T draws
  // nothing from the RNG, so the survivors-only reference run is the exact
  // expected aggregate.
  for (int threads : {0, 2}) {
    EvalConfig cfg;
    cfg.attack_threads = threads;
    Rng r1(42), r2(42);
    const JointAttackOutcome expected = EvaluateAttack(
        f->ctx, inner, survivors, inspector, cfg, &r1);
    const JointAttackOutcome got = EvaluateAttack(
        f->ctx, faulty, f->targets, inspector, cfg, &r2);
    EXPECT_EQ(got.num_failed, 1) << "threads=" << threads;
    EXPECT_EQ(got.num_timed_out, 0) << "threads=" << threads;
    EXPECT_EQ(got.num_skipped, 0) << "threads=" << threads;
    EXPECT_EQ(got.num_targets, expected.num_targets) << "threads=" << threads;
    EXPECT_EQ(got.asr, expected.asr) << "threads=" << threads;
    EXPECT_EQ(got.asr_t, expected.asr_t) << "threads=" << threads;
    EXPECT_EQ(got.detection.precision, expected.detection.precision);
    EXPECT_EQ(got.detection.recall, expected.detection.recall);
    EXPECT_EQ(got.detection.f1, expected.detection.f1);
    EXPECT_EQ(got.detection.ndcg, expected.detection.ndcg);
  }
}

// ---------------------------------------------------------------------------
// Malformed-file corpus: structured load errors, never trust-the-bytes.
// ---------------------------------------------------------------------------

std::string CorpusPath(const std::string& name) {
  return std::string(GEATTACK_SOURCE_DIR) + "/tests/io_corpus/" + name;
}

TEST(IoCorpusTest, GoodFixtureLoads) {
  GraphData data;
  const Status s = LoadGraphDataFromFile(CorpusPath("good_minimal.txt"), &data);
  ASSERT_TRUE(s) << s.ToString();
  EXPECT_EQ(data.num_nodes(), 3);
  EXPECT_EQ(data.graph.num_edges(), 2);
  EXPECT_EQ(data.num_classes, 2);
  EXPECT_EQ(data.features.at(2, 0), 0.5);
}

TEST(IoCorpusTest, MalformedFixturesFailWithDataLoss) {
  const std::vector<std::string> corpus = {
      "empty.txt",
      "bad_magic.txt",
      "truncated_header.txt",
      "bad_counts.txt",
      "truncated_labels.txt",
      "label_out_of_range.txt",
      "edge_out_of_range.txt",
      "self_loop.txt",
      "duplicate_edge.txt",
      "feature_out_of_range.txt",
      "nonfinite_feature.txt",
      "unknown_token.txt",
      "missing_end.txt",
      "edge_count_mismatch.txt",
  };
  for (const std::string& name : corpus) {
    GraphData data;
    const Status s = LoadGraphDataFromFile(CorpusPath(name), &data);
    EXPECT_EQ(s.code(), StatusCode::kDataLoss)
        << name << ": " << s.ToString();
    EXPECT_FALSE(s.message().empty()) << name;
  }
}

TEST(IoCorpusTest, MissingFileIsAnError) {
  GraphData data;
  const Status s =
      LoadGraphDataFromFile(CorpusPath("does_not_exist.txt"), &data);
  EXPECT_EQ(s.code(), StatusCode::kError);
  EXPECT_NE(s.message().find("cannot open"), std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace geattack
