// Property-based gradient checks: every composite expression used by the
// models/attacks is verified against central finite differences, at first
// and second order, over a parameterized sweep of shapes and seeds.

#include <cmath>
#include <string>

#include "gtest/gtest.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/random.h"
#include "src/tensor/tensor.h"
#include "tests/test_util.h"

namespace geattack {
namespace {

using ::geattack::testing::ExpectGradientsMatch;
using ::geattack::testing::ExpectSecondOrderMatch;
using ::geattack::testing::ScalarFn;

struct GradCase {
  std::string name;
  ScalarFn fn;
  int64_t rows;
  int64_t cols;
  double lo;          // Input sampling range.
  double hi;
  bool second_order;  // Also check the double-backward path.
};

class GradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckTest, FirstOrderMatchesFiniteDifferences) {
  const GradCase& c = GetParam();
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    Tensor x = rng.UniformTensor(c.rows, c.cols, c.lo, c.hi);
    ExpectGradientsMatch(c.fn, x, 2e-5);
  }
}

TEST_P(GradCheckTest, SecondOrderMatchesFiniteDifferences) {
  const GradCase& c = GetParam();
  if (!c.second_order) GTEST_SKIP() << "second order not meaningful here";
  Rng rng(7);
  Tensor x = rng.UniformTensor(c.rows, c.cols, c.lo, c.hi);
  ExpectSecondOrderMatch(c.fn, x, 5e-4);
}

Var QuadraticForm(const Var& x) {
  // sum(x W x^T) for a fixed W.
  Rng rng(100);
  Var w = Constant(rng.NormalTensor(x.cols(), x.cols(), 0, 1));
  return Sum(MatMul(MatMul(x, w), Transpose(x)));
}

Var SigmoidMaskLoss(const Var& m) {
  // The explainer-style masked objective: -log softmax((A ⊙ σ(m)) X W)[0, 1].
  Rng rng(200);
  const int64_t n = m.rows();
  Tensor a = rng.UniformTensor(n, n, 0, 1).Map([](double v) {
    return v > 0.5 ? 1.0 : 0.0;
  });
  a.FillDiagonal(0.0);
  Var av = Constant(a);
  Var x = Constant(rng.NormalTensor(n, 3, 0, 1));
  Var w = Constant(rng.NormalTensor(3, 2, 0, 1));
  Var masked = Mul(av, Sigmoid(m));
  Var logits = MatMul(MatMul(masked, x), w);
  return NllRow(logits, 0, 1);
}

Var NormalizedAdjacencyLoss(const Var& a) {
  // Differentiable GCN normalization: sum((D^{-1/2} (A+I) D^{-1/2}) X).
  const int64_t n = a.rows();
  Var self = Add(a, Constant(Tensor::Identity(n)));
  Var deg = RowSum(self);
  Var dinv = Pow(deg, -0.5);
  Var norm = Mul(Mul(self, dinv), Transpose(dinv));
  Rng rng(300);
  Var x = Constant(rng.NormalTensor(n, 2, 0, 1));
  return Sum(MatMul(norm, x));
}

Var TwoLayerGcnLoss(const Var& a) {
  // Full differentiable 2-layer GCN wrt the adjacency — the exact structure
  // FGA/GEAttack differentiate in the outer loop.
  const int64_t n = a.rows();
  Var self = Add(a, Constant(Tensor::Identity(n)));
  Var deg = RowSum(self);
  Var dinv = Pow(deg, -0.5);
  Var norm = Mul(Mul(self, dinv), Transpose(dinv));
  Rng rng(400);
  Var x = Constant(rng.NormalTensor(n, 4, 0, 1));
  Var w1 = Constant(rng.GlorotTensor(4, 3));
  Var w2 = Constant(rng.GlorotTensor(3, 2));
  Var h = Relu(MatMul(MatMul(norm, x), w1));
  Var logits = MatMul(MatMul(norm, h), w2);
  return NllRow(logits, 0, 1);
}

/// A fixed small sparse pattern (and matching test operands) shared by the
/// SpMM gradient checks.
std::shared_ptr<const CsrPattern> SpmmTestPattern() {
  // 4x4 with 7 stored entries, including an empty-ish row structure.
  auto p = std::make_shared<CsrPattern>();
  p->rows = p->cols = 4;
  p->row_ptr = {0, 2, 4, 5, 7};
  p->col_idx = {0, 2, 1, 3, 2, 0, 3};
  return p;
}

Var SpmmConstQuadratic(const Var& b) {
  // sum((A·b)²) with a constant sparse A — the training-path structure
  // where the gradient flows into the dense operand only.
  Rng rng(600);
  const int64_t n = b.rows();
  Tensor dense(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      if (rng.Bernoulli(0.4)) dense.at(i, j) = rng.Normal(0, 1);
  CsrMatrix a = CsrMatrix::FromDense(dense);
  Var y = SpMM(a, b);
  return Sum(Mul(y, y));
}

Var SpmmValuesQuadratic(const Var& values) {
  // sum((A·B)²) where the sparse *entries* are the differentiated input —
  // the sparse analogue of the attack's adjacency gradient.
  auto p = SpmmTestPattern();
  Rng rng(601);
  Var b = Constant(rng.NormalTensor(p->cols, 3, 0, 1));
  Var y = SpMMValues(p, values, b);
  return Sum(Mul(y, y));
}

Var SpmmValuesThroughDense(const Var& b) {
  // Same expression differentiated through the dense operand instead.
  auto p = SpmmTestPattern();
  Rng rng(602);
  Var values = Constant(rng.NormalTensor(p->nnz(), 1, 0, 1));
  Var y = SpMMValues(p, values, b);
  return Sum(Mul(y, y));
}

/// A small symmetric square pattern with strictly positive row sums under
/// positive values — the shape class GcnNormSpMM is defined on (degrees
/// must stay positive for d̃^{-1/2}).
std::shared_ptr<const CsrPattern> NormSpmmTestPattern() {
  // 4x4 symmetric structure with diagonal slots: edges (0,1), (0,2), (1,3),
  // (2,3) plus all self loops -> 12 stored entries.
  auto p = std::make_shared<CsrPattern>();
  p->rows = p->cols = 4;
  p->row_ptr = {0, 3, 6, 9, 12};
  p->col_idx = {0, 1, 2, 0, 1, 3, 0, 2, 3, 1, 2, 3};
  return p;
}

Var GcnNormSpmmLoss(const Var& values) {
  // sum((GcnNormSpMM(v)·B)²) through the fused node — differentiating the
  // sparse entries, including the degree-normalization coupling.
  auto p = NormSpmmTestPattern();
  Rng rng(700);
  Var b = Constant(rng.NormalTensor(p->cols, 3, 0, 1));
  Var od = Constant(rng.UniformTensor(p->rows, 1, 0.1, 0.6));
  Var y = GcnNormSpMM(p, values, b, od);
  return Sum(Mul(y, y));
}

Var GcnNormValuesSharedLoss(const Var& values) {
  // The sparse two-layer structure: ONE fused normalization node shared by
  // two SpMMValues products — the exact graph SparseGcnLogitsVar builds.
  auto p = NormSpmmTestPattern();
  Rng rng(705);
  Var od = Constant(rng.UniformTensor(p->rows, 1, 0.1, 0.6));
  Var norm = GcnNormValues(p, values, od);
  Var b1 = Constant(rng.NormalTensor(p->cols, 3, 0, 1));
  Var h = Relu(SpMMValues(p, norm, b1));
  Var y = SpMMValues(p, norm, h);
  return Sum(Mul(y, y));
}

Var GcnNormSpmmThroughDense(const Var& b) {
  // Same expression differentiated through the dense operand.
  auto p = NormSpmmTestPattern();
  Rng rng(701);
  Var values = Constant(rng.UniformTensor(p->nnz(), 1, 0.4, 1.2));
  Var y = GcnNormSpMM(p, values, b);
  return Sum(Mul(y, y));
}

Var UnrolledInnerLoop(const Var& a) {
  // One full GEAttack-style hypergradient structure: two gradient-descent
  // steps on a mask whose loss depends on `a`, then a readout of the mask.
  const int64_t n = a.rows();
  Rng rng(500);
  Var m = Var::Leaf(rng.NormalTensor(n, n, 0, 0.1), true);
  Var x = Constant(rng.NormalTensor(n, 2, 0, 1));
  for (int t = 0; t < 2; ++t) {
    Var masked = Mul(a, Sigmoid(m));
    Var loss = Sum(Mul(MatMul(masked, x), MatMul(masked, x)));
    Var gm = GradOne(loss, m, {.create_graph = true});
    m = Sub(m, MulScalar(gm, 0.05));
  }
  return Sum(Mul(m, m));
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, GradCheckTest,
    ::testing::Values(
        GradCase{"sum_square", [](const Var& x) { return Sum(Mul(x, x)); },
                 3, 4, -2, 2, true},
        GradCase{"sigmoid_sum",
                 [](const Var& x) { return Sum(Sigmoid(x)); }, 2, 5, -3, 3,
                 true},
        GradCase{"exp_sum", [](const Var& x) { return Sum(Exp(x)); }, 3, 3,
                 -1, 1, true},
        GradCase{"log_sum", [](const Var& x) { return Sum(Log(x)); }, 2, 3,
                 0.5, 2.0, true},
        GradCase{"pow_neg_half",
                 [](const Var& x) { return Sum(Pow(x, -0.5)); }, 2, 2, 0.5,
                 2.0, true},
        GradCase{"relu_weighted",
                 [](const Var& x) {
                   return Sum(Mul(Relu(x), ConstantScalar(2.0)));
                 },
                 3, 3, -2, 2, false},
        GradCase{"div",
                 [](const Var& x) {
                   return Sum(Div(ConstantScalar(1.0), x));
                 },
                 2, 2, 0.5, 2.0, true},
        GradCase{"rowsum_product",
                 [](const Var& x) { return Sum(Mul(x, RowSum(x))); }, 3, 4,
                 -1, 1, true},
        GradCase{"colsum_product",
                 [](const Var& x) { return Sum(Mul(x, ColSum(x))); }, 3, 4,
                 -1, 1, true},
        GradCase{"transpose_mix",
                 [](const Var& x) {
                   return Sum(MatMul(x, Transpose(x)));
                 },
                 3, 4, -1, 1, true},
        GradCase{"at_entry",
                 [](const Var& x) { return Mul(At(x, 1, 2), At(x, 0, 0)); },
                 3, 4, -1, 1, true},
        GradCase{"select_row",
                 [](const Var& x) {
                   return Sum(Mul(SelectRow(x, 1), SelectRow(x, 1)));
                 },
                 3, 4, -1, 1, true},
        GradCase{"log_softmax_nll",
                 [](const Var& x) { return NllRow(x, 1, 0); }, 3, 4, -2, 2,
                 true},
        GradCase{"softmax_entropy",
                 [](const Var& x) {
                   Var p = SoftmaxRows(x);
                   return Neg(Sum(Mul(p, Log(p))));
                 },
                 2, 3, -2, 2, false},
        GradCase{"quadratic_form", QuadraticForm, 2, 3, -1, 1, true},
        GradCase{"spmm_const_quadratic", SpmmConstQuadratic, 4, 3, -1, 1,
                 true},
        GradCase{"spmm_values_quadratic", SpmmValuesQuadratic, 7, 1, -1, 1,
                 true},
        GradCase{"spmm_values_through_dense", SpmmValuesThroughDense, 4, 3,
                 -1, 1, true},
        GradCase{"gcn_norm_spmm_values", GcnNormSpmmLoss, 12, 1, 0.4, 1.2,
                 true},
        GradCase{"gcn_norm_values_shared", GcnNormValuesSharedLoss, 12, 1,
                 0.4, 1.2, false},
        GradCase{"gcn_norm_spmm_through_dense", GcnNormSpmmThroughDense, 4, 3,
                 -1, 1, true},
        GradCase{"sigmoid_mask_loss", SigmoidMaskLoss, 4, 4, -2, 2, true},
        GradCase{"normalized_adjacency", NormalizedAdjacencyLoss, 4, 4, 0.1,
                 0.9, true},
        GradCase{"two_layer_gcn", TwoLayerGcnLoss, 4, 4, 0.1, 0.9, false},
        GradCase{"unrolled_inner_loop", UnrolledInnerLoop, 3, 3, 0.1, 0.9,
                 false}),
    [](const ::testing::TestParamInfo<GradCase>& param_info) {
      return param_info.param.name;
    });

// The hypergradient that GEAttack actually needs: d/dA of a readout of a
// mask obtained by unrolled gradient descent, verified numerically.
TEST(HypergradientTest, MatchesFiniteDifferences) {
  Rng rng(123);
  const int64_t n = 4;
  Tensor a0 = rng.UniformTensor(n, n, 0.2, 0.8);
  auto fn = [](const Var& a) { return UnrolledInnerLoop(a); };
  ExpectGradientsMatch(fn, a0, 5e-5);
}

// Gradients through both SpMMValues operands at once: the joint (values, b)
// gradient equals the two single-operand finite-difference gradients.
TEST(SpmmGradTest, JointGradientsMatchFiniteDifferences) {
  auto p = SpmmTestPattern();
  Rng rng(603);
  Tensor v0 = rng.NormalTensor(p->nnz(), 1, 0, 1);
  Tensor b0 = rng.NormalTensor(p->cols, 3, 0, 1);

  Var v = Var::Leaf(v0, /*requires_grad=*/true, "values");
  Var b = Var::Leaf(b0, /*requires_grad=*/true, "b");
  Var y = SpMMValues(p, v, b);
  Var loss = Sum(Mul(y, y));
  auto grads = Grad(loss, {v, b});

  auto loss_of_values = [&](const Var& vv) {
    Var yy = SpMMValues(p, vv, Constant(b0));
    return Sum(Mul(yy, yy));
  };
  auto loss_of_b = [&](const Var& bb) {
    Var yy = SpMMValues(p, Constant(v0), bb);
    return Sum(Mul(yy, yy));
  };
  EXPECT_LE(grads[0].value().MaxAbsDiff(
                geattack::testing::NumericalGradient(loss_of_values, v0)),
            2e-5);
  EXPECT_LE(grads[1].value().MaxAbsDiff(
                geattack::testing::NumericalGradient(loss_of_b, b0)),
            2e-5);
}

TEST(GcnNormSpmmTest, ForwardMatchesUnfusedCompositionBitwise) {
  // The fused kernel must be *bit-identical* to the separate
  // rowsum/pow/gather/scale/SpMM nodes it replaces — the attack
  // equivalence gates compare greedy argmin picks and tolerate no drift.
  auto p = NormSpmmTestPattern();
  Rng rng(702);
  const Tensor v0 = rng.UniformTensor(p->nnz(), 1, 0.4, 1.2);
  const Tensor b0 = rng.NormalTensor(p->cols, 3, 0, 1);
  const Tensor od0 = rng.UniformTensor(p->rows, 1, 0.1, 0.5);
  Var v = Constant(v0), b = Constant(b0), od = Constant(od0);
  Var fused = GcnNormSpMM(p, v, b, od);

  Var ones = Constant(Tensor::Ones(p->rows, 1));
  Var deg = Add(SpMMValues(p, v, ones), od);
  Var dinv = Pow(deg, -0.5);
  Var dr = SpmmValueGrad(p, dinv, ones);
  Var dc = SpmmValueGrad(p, ones, dinv);
  Var unfused = SpMMValues(p, Mul(Mul(v, dr), dc), b);
  EXPECT_EQ(fused.value().MaxAbsDiff(unfused.value()), 0.0);
}

TEST(GcnNormSpmmTest, OutDegreeGradientMatchesFiniteDifferences) {
  auto p = NormSpmmTestPattern();
  Rng rng(703);
  const Tensor v0 = rng.UniformTensor(p->nnz(), 1, 0.4, 1.2);
  const Tensor b0 = rng.NormalTensor(p->cols, 2, 0, 1);
  auto fn = [&](const Var& od) -> Var {
    Var y = GcnNormSpMM(p, Constant(v0), Constant(b0), od);
    return Sum(Mul(y, y));
  };
  const Tensor od0 = Rng(704).UniformTensor(p->rows, 1, 0.2, 0.8);
  geattack::testing::ExpectGradientsMatch(fn, od0, 2e-5);
}

TEST(SpmmGradTest, PermuteRowsGradientIsInversePermutation) {
  auto perm = std::make_shared<std::vector<int64_t>>(
      std::vector<int64_t>{2, 0, 3, 1});
  Rng rng(604);
  Tensor x0 = rng.NormalTensor(4, 1, 0, 1);
  auto fn = [&perm](const Var& x) {
    Var y = PermuteRows(x, perm);
    Rng local(605);
    Var w = Constant(local.NormalTensor(4, 1, 0, 1));
    return Sum(Mul(y, Mul(y, w)));
  };
  ExpectGradientsMatch(fn, x0, 2e-5);
}

}  // namespace
}  // namespace geattack
