// Tests for the GradExplainer, the inspector defense loop, and the
// serialization module.

#include <memory>
#include <sstream>

#include "gtest/gtest.h"
#include "src/attack/fga.h"
#include "src/core/geattack.h"
#include "src/defense/inspector_defense.h"
#include "src/eval/pipeline.h"
#include "src/explain/grad_explainer.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  Split split;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
};

Fixture* SharedFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    Rng rng(31);
    CitationGraphConfig cfg;
    cfg.num_nodes = 150;
    cfg.num_edges = 400;
    cfg.num_classes = 3;
    cfg.feature_dim = 48;
    fx->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    fx->split = MakeSplit(fx->data, 0.1, 0.1, &rng);
    fx->model = std::make_unique<Gcn>(
        TrainNewGcn(fx->data, fx->split, TrainConfig{}, &rng));
    fx->ctx = MakeAttackContext(fx->data, *fx->model);
    Tensor logits = fx->model->LogitsFromRaw(fx->ctx.clean_adjacency,
                                             fx->data.features);
    auto nodes = SelectTargetNodes(
        fx->data, logits, fx->split.test,
        {.top_margin = 3, .bottom_margin = 3, .random = 3}, &rng);
    fx->targets = PrepareTargets(fx->ctx, nodes, &rng);
    return fx;
  }();
  return f;
}

TEST(GradExplainerTest, RanksLoadBearingAdversarialEdgeHighly) {
  Fixture* f = SharedFixture();
  ASSERT_FALSE(f->targets.empty());
  Rng rng(1);
  const auto& t = f->targets[0];
  AttackRequest req{t.node, t.target_label, t.budget};
  const AttackResult result =
      FgaAttack(/*targeted=*/true).Attack(f->ctx, req, &rng);
  ASSERT_FALSE(result.added_edges.empty());

  GradExplainer explainer(f->model.get(), &f->data.features);
  const Tensor logits =
      f->model->LogitsFromRaw(result.adjacency, f->data.features);
  const Explanation e = explainer.Explain(result.adjacency, t.node,
                                          logits.ArgMaxRow(t.node));
  // At least one adversarial edge within the top-10 saliency ranking.
  bool found = false;
  for (const Edge& edge : result.added_edges)
    if (e.RankOf(edge) >= 0 && e.RankOf(edge) < 10) found = true;
  EXPECT_TRUE(found);
}

TEST(GradExplainerTest, ZeroGradientOutsideReceptiveField) {
  Fixture* f = SharedFixture();
  GradExplainer explainer(f->model.get(), &f->data.features);
  const int64_t node = f->targets[0].node;
  const Explanation e =
      explainer.Explain(f->ctx.clean_adjacency, node,
                        f->data.labels[ZU(node)]);
  // All ranked edges lie within the 2-hop subgraph by construction.
  const auto subgraph = f->data.graph.KHopNeighborhood(node, 2);
  for (const ScoredEdge& se : e.ranked_edges) {
    EXPECT_TRUE(std::binary_search(subgraph.begin(), subgraph.end(),
                                   se.edge.u));
    EXPECT_TRUE(std::binary_search(subgraph.begin(), subgraph.end(),
                                   se.edge.v));
  }
}

TEST(InspectorDefenseTest, RecoversFromGradientAttack) {
  Fixture* f = SharedFixture();
  GradExplainer inspector(f->model.get(), &f->data.features);
  Rng rng(2);
  int64_t recovered = 0, attacked = 0;
  for (const auto& t : f->targets) {
    AttackRequest req{t.node, t.target_label, t.budget};
    const AttackResult result =
        FgaAttack(/*targeted=*/true).Attack(f->ctx, req, &rng);
    const Tensor logits =
        f->model->LogitsFromRaw(result.adjacency, f->data.features);
    if (logits.ArgMaxRow(t.node) != t.target_label) continue;
    ++attacked;
    InspectorDefenseConfig cfg;
    cfg.prune_top = 2 * t.budget;  // Analyst budget: up to all incident edges.
    const DefenseOutcome d = InspectAndPrune(
        *f->model, f->data.features, inspector, result.adjacency, t.node,
        cfg, &result.added_edges);
    if (d.prediction_after == t.true_label) ++recovered;
  }
  ASSERT_GT(attacked, 0);
  // The paper's premise: pruning the top-ranked edges usually restores the
  // prediction when the attack is explainer-oblivious.
  EXPECT_GE(static_cast<double>(recovered) / static_cast<double>(attacked),
            0.5);
}

TEST(InspectorDefenseTest, PrunesOnlyIncidentEdgesWithinLimit) {
  Fixture* f = SharedFixture();
  GradExplainer inspector(f->model.get(), &f->data.features);
  const auto& t = f->targets[0];
  InspectorDefenseConfig cfg;
  cfg.prune_top = 2;
  const DefenseOutcome d =
      InspectAndPrune(*f->model, f->data.features, inspector,
                      f->ctx.clean_adjacency, t.node, cfg);
  EXPECT_LE(d.pruned_edges.size(), 2u);
  for (const Edge& e : d.pruned_edges)
    EXPECT_TRUE(e.u == t.node || e.v == t.node);
  // Pruned adjacency stays symmetric with edges actually removed.
  for (const Edge& e : d.pruned_edges) {
    EXPECT_DOUBLE_EQ(d.pruned_adjacency.at(e.u, e.v), 0.0);
    EXPECT_DOUBLE_EQ(d.pruned_adjacency.at(e.v, e.u), 0.0);
  }
}

TEST(IoTest, GraphDataRoundTrip) {
  Fixture* f = SharedFixture();
  std::stringstream ss;
  ASSERT_TRUE(SaveGraphData(f->data, ss));
  GraphData loaded;
  ASSERT_TRUE(LoadGraphData(ss, &loaded));
  EXPECT_EQ(loaded.num_nodes(), f->data.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), f->data.graph.num_edges());
  EXPECT_EQ(loaded.labels, f->data.labels);
  EXPECT_EQ(loaded.num_classes, f->data.num_classes);
  EXPECT_LE(loaded.features.MaxAbsDiff(f->data.features), 0.0);
  EXPECT_EQ(loaded.graph.Edges(), f->data.graph.Edges());
}

TEST(IoTest, GraphDataRejectsCorruptStreams) {
  GraphData loaded;
  std::stringstream bad_magic("not a dataset\n1 2 3\n");
  EXPECT_FALSE(LoadGraphData(bad_magic, &loaded));
  std::stringstream truncated("geadata v1\n5 1 2 4\nlabels 0 1");
  EXPECT_FALSE(LoadGraphData(truncated, &loaded));
  std::stringstream bad_label("geadata v1\n2 0 2 4\nlabels 0 7\nend\n");
  EXPECT_FALSE(LoadGraphData(bad_label, &loaded));
}

TEST(IoTest, GcnRoundTripPreservesLogits) {
  Fixture* f = SharedFixture();
  std::stringstream ss;
  ASSERT_TRUE(SaveGcn(*f->model, ss));
  Rng rng(77);
  Gcn loaded(f->model->config(), &rng);  // Different random init.
  ASSERT_TRUE(LoadGcn(ss, &loaded));
  const Tensor a = f->model->LogitsFromRaw(f->ctx.clean_adjacency,
                                           f->data.features);
  const Tensor b =
      loaded.LogitsFromRaw(f->ctx.clean_adjacency, f->data.features);
  EXPECT_LE(a.MaxAbsDiff(b), 1e-12);
}

TEST(IoTest, GcnRejectsArchitectureMismatch) {
  Fixture* f = SharedFixture();
  std::stringstream ss;
  ASSERT_TRUE(SaveGcn(*f->model, ss));
  Rng rng(78);
  GcnConfig other = f->model->config();
  other.hidden_dim += 1;
  Gcn wrong(other, &rng);
  EXPECT_FALSE(LoadGcn(ss, &wrong));
}

TEST(IoTest, FileRoundTrip) {
  Fixture* f = SharedFixture();
  const std::string path = ::testing::TempDir() + "/geattack_data.txt";
  ASSERT_TRUE(SaveGraphDataToFile(f->data, path));
  GraphData loaded;
  ASSERT_TRUE(LoadGraphDataFromFile(path, &loaded));
  EXPECT_EQ(loaded.graph.Edges(), f->data.graph.Edges());
  EXPECT_FALSE(LoadGraphDataFromFile(path + ".missing", &loaded));
}

}  // namespace
}  // namespace geattack
