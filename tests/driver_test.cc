// Determinism tests for the multi-target thread-pool driver: for every
// attacker, the parallel edge picks must be bit-identical to the serial
// (num_threads = 1, batch_targets = 1) reference at 2/4/8 workers AND at
// target-group sizes 1/2/4 — the per-target RNG streams, the
// reassociation-free kernels, and the value-level target isolation of the
// stacked batched path make both scheduling and grouping invisible.

#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "src/attack/driver.h"
#include "src/attack/fga.h"
#include "src/attack/fga_te.h"
#include "src/attack/ig_attack.h"
#include "src/attack/nettack.h"
#include "src/core/geattack.h"
#include "src/core/geattack_pg.h"
#include "src/eval/pipeline.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/generators.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
  std::vector<AttackRequest> requests;
};

Fixture* SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(654);
    CitationGraphConfig cfg;
    cfg.num_nodes = 90;
    cfg.num_edges = 240;
    cfg.num_classes = 3;
    cfg.feature_dim = 32;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    Split split = MakeSplit(f->data, 0.1, 0.1, &rng);
    TrainConfig tc;
    tc.epochs = 40;
    f->model = std::make_unique<Gcn>(TrainNewGcn(f->data, split, tc, &rng));
    f->ctx = MakeAttackContext(f->data, *f->model);
    const Tensor logits =
        f->model->LogitsFromRaw(f->ctx.clean_adjacency, f->data.features);
    auto nodes = SelectTargetNodes(
        f->data, logits, split.test,
        {.top_margin = 4, .bottom_margin = 4, .random = 4}, &rng);
    f->targets = PrepareTargets(f->ctx, nodes, &rng);
    for (const PreparedTarget& t : f->targets) {
      // Budget 2 keeps each greedy loop short while still exercising the
      // commit/renormalize machinery across outer iterations.
      f->requests.push_back(
          {t.node, t.target_label, std::min<int64_t>(t.budget, 2)});
    }
    return f;
  }();
  return fixture;
}

void ExpectIdenticalAcrossThreadCounts(const TargetedAttack& attack,
                                       uint64_t seed) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 3u);
  AttackDriverConfig serial_config;
  serial_config.num_threads = 1;
  serial_config.base_seed = seed;
  const std::vector<AttackResult> serial =
      RunMultiTargetAttack(f->ctx, attack, f->requests, serial_config);
  for (int threads : {2, 4, 8}) {
    for (int batch : {1, 2, 4}) {
      AttackDriverConfig config;
      config.num_threads = threads;
      config.base_seed = seed;
      config.batch_targets = batch;
      const std::vector<AttackResult> parallel =
          RunMultiTargetAttack(f->ctx, attack, f->requests, config);
      ASSERT_EQ(parallel.size(), serial.size())
          << "threads=" << threads << " batch=" << batch;
      for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(parallel[i].added_edges.size(),
                  serial[i].added_edges.size())
            << attack.name() << " target " << i << " threads=" << threads
            << " batch=" << batch;
        for (size_t e = 0; e < serial[i].added_edges.size(); ++e)
          EXPECT_EQ(parallel[i].added_edges[e], serial[i].added_edges[e])
              << attack.name() << " target " << i << " edge " << e
              << " threads=" << threads << " batch=" << batch;
      }
    }
  }
}

TEST(DriverDeterminismTest, FgaTargeted) {
  ExpectIdenticalAcrossThreadCounts(FgaAttack(/*targeted=*/true), 11);
}

TEST(DriverDeterminismTest, FgaTargetedAndEvasive) {
  GnnExplainerConfig cfg;
  cfg.epochs = 10;
  ExpectIdenticalAcrossThreadCounts(FgaTeAttack(cfg, /*subgraph_size=*/10),
                                    12);
}

TEST(DriverDeterminismTest, IgAttack) {
  IgAttackConfig cfg;
  cfg.steps = 3;
  cfg.shortlist = 10;
  ExpectIdenticalAcrossThreadCounts(IgAttack(cfg), 13);
}

TEST(DriverDeterminismTest, Nettack) {
  ExpectIdenticalAcrossThreadCounts(Nettack(), 14);
}

TEST(DriverDeterminismTest, GeAttack) {
  // Random mask init ON: this is the case where determinism genuinely
  // depends on the per-target RNG streams, not just on kernel order.
  GeAttackConfig cfg;
  cfg.inner_steps = 2;
  cfg.use_sparse = true;
  ExpectIdenticalAcrossThreadCounts(GeAttack(cfg), 15);
}

TEST(DriverDeterminismTest, GeAttackPg) {
  Fixture* f = SharedFixture();
  PgExplainerConfig pg_cfg;
  pg_cfg.epochs = 8;
  PgExplainer pg(f->model.get(), &f->data.features, pg_cfg);
  std::vector<int64_t> instances;
  for (int64_t v = 0; v < 6; ++v) instances.push_back(v);
  const Tensor logits =
      f->model->LogitsFromRaw(f->ctx.clean_adjacency, f->data.features);
  pg.Train(f->ctx.clean_adjacency, instances, PredictLabels(logits));
  ExpectIdenticalAcrossThreadCounts(GeAttackPg(&pg), 16);
}

TEST(DriverTest, TargetSeedStreamsAreDistinct) {
  // Same base seed, different targets — and adjacent base seeds — must all
  // land on distinct stream seeds.
  std::set<uint64_t> seen;
  for (uint64_t base : {0ull, 1ull, 77ull})
    for (int64_t t = 0; t < 64; ++t) seen.insert(TargetSeed(base, t));
  EXPECT_EQ(seen.size(), 3u * 64u);
}

TEST(DriverTest, EvaluateAttackThreadedMatchesSerialDriver) {
  // The pipeline wiring: attack_threads = 1 (serial driver),
  // attack_threads = 4, and attack_threads = 4 with target batching must
  // all produce the same outcome numbers from the same caller seed.
  Fixture* f = SharedFixture();
  GnnExplainerConfig icfg;
  icfg.epochs = 10;
  GnnExplainer inspector(f->model.get(), &f->data.features, icfg);
  const FgaAttack attack(/*targeted=*/true);

  EvalConfig serial_cfg;
  serial_cfg.attack_threads = 1;
  EvalConfig threaded_cfg = serial_cfg;
  threaded_cfg.attack_threads = 4;
  EvalConfig batched_cfg = threaded_cfg;
  batched_cfg.batch_targets = 4;

  Rng r1(42), r2(42), r3(42);
  const JointAttackOutcome a = EvaluateAttack(f->ctx, attack, f->targets,
                                              inspector, serial_cfg, &r1);
  const JointAttackOutcome b = EvaluateAttack(f->ctx, attack, f->targets,
                                              inspector, threaded_cfg, &r2);
  const JointAttackOutcome c = EvaluateAttack(f->ctx, attack, f->targets,
                                              inspector, batched_cfg, &r3);
  EXPECT_EQ(a.num_targets, b.num_targets);
  EXPECT_EQ(a.asr, b.asr);
  EXPECT_EQ(a.asr_t, b.asr_t);
  EXPECT_EQ(a.detection.precision, b.detection.precision);
  EXPECT_EQ(a.detection.recall, b.detection.recall);
  EXPECT_EQ(a.detection.f1, b.detection.f1);
  EXPECT_EQ(a.detection.ndcg, b.detection.ndcg);
  EXPECT_EQ(a.num_targets, c.num_targets);
  EXPECT_EQ(a.asr, c.asr);
  EXPECT_EQ(a.asr_t, c.asr_t);
  EXPECT_EQ(a.detection.precision, c.detection.precision);
  EXPECT_EQ(a.detection.recall, c.detection.recall);
  EXPECT_EQ(a.detection.f1, c.detection.f1);
  EXPECT_EQ(a.detection.ndcg, c.detection.ndcg);
}

}  // namespace
}  // namespace geattack
