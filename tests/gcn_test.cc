// Tests for the GCN model, trainer, Adam, and linearized surrogate.

#include "src/nn/gcn.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/eval/pipeline.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/nn/adam.h"
#include "src/nn/linearized_gcn.h"
#include "src/nn/trainer.h"
#include "tests/test_util.h"

namespace geattack {
namespace {

GraphData TestData(uint64_t seed = 1) {
  Rng rng(seed);
  CitationGraphConfig cfg;
  cfg.num_nodes = 150;
  cfg.num_edges = 400;
  cfg.num_classes = 3;
  cfg.feature_dim = 48;
  return KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
}

TEST(GcnTest, ShapesAndDeterminism) {
  GraphData data = TestData();
  Rng rng(2);
  Gcn model({data.feature_dim(), 8, data.num_classes}, &rng);
  Tensor norm = NormalizeAdjacency(data.graph.DenseAdjacency());
  Tensor logits = model.Logits(norm, data.features);
  EXPECT_EQ(logits.rows(), data.num_nodes());
  EXPECT_EQ(logits.cols(), data.num_classes);
  EXPECT_TRUE(logits.AllFinite());
  EXPECT_LE(logits.MaxAbsDiff(model.Logits(norm, data.features)), 0.0);
}

TEST(GcnTest, LogitsVarMatchesTensorPath) {
  GraphData data = TestData();
  Rng rng(3);
  Gcn model({data.feature_dim(), 8, data.num_classes}, &rng);
  Tensor adj = data.graph.DenseAdjacency();
  Tensor direct = model.LogitsFromRaw(adj, data.features);
  GcnForwardContext ctx = MakeForwardContext(model, data.features);
  Var logits = GcnLogitsVar(ctx, Constant(adj));
  EXPECT_LE(logits.value().MaxAbsDiff(direct), 1e-9);
}

TEST(GcnTest, CrossEntropyRowsMatchesManualNll) {
  GraphData data = TestData();
  Rng rng(4);
  Gcn model({data.feature_dim(), 8, data.num_classes}, &rng);
  Tensor norm = NormalizeAdjacency(data.graph.DenseAdjacency());
  Var logits = Constant(model.Logits(norm, data.features));
  std::vector<int64_t> nodes = {0, 5, 9};
  Var ce = CrossEntropyRows(logits, nodes, data.labels);
  double manual = 0.0;
  for (int64_t node : nodes)
    manual += NllRow(logits, node, data.labels[ZU(node)]).value().scalar();
  manual /= static_cast<double>(nodes.size());
  EXPECT_NEAR(ce.value().scalar(), manual, 1e-10);
}

TEST(GcnTest, MarginSignMatchesCorrectness) {
  GraphData data = TestData();
  Rng rng(5);
  Gcn model({data.feature_dim(), 8, data.num_classes}, &rng);
  Tensor norm = NormalizeAdjacency(data.graph.DenseAdjacency());
  Tensor logits = model.Logits(norm, data.features);
  for (int64_t node : {0, 1, 2, 3, 4}) {
    const int64_t pred = logits.ArgMaxRow(node);
    const double margin_pred = ClassificationMargin(logits, node, pred);
    EXPECT_GE(margin_pred, 0.0);
    const int64_t other = (pred + 1) % data.num_classes;
    EXPECT_LE(ClassificationMargin(logits, node, other), 0.0);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize (x - 3)^2 + (y + 1)^2.
  Tensor param(1, 2, {10.0, -10.0});
  Adam adam({.lr = 0.2});
  adam.Register(&param);
  for (int i = 0; i < 300; ++i) {
    Tensor grad(1, 2,
                {2.0 * (param.at(0, 0) - 3.0), 2.0 * (param.at(0, 1) + 1.0)});
    adam.Step({grad});
  }
  EXPECT_NEAR(param.at(0, 0), 3.0, 1e-2);
  EXPECT_NEAR(param.at(0, 1), -1.0, 1e-2);
}

TEST(AdamTest, WeightDecayShrinksWeights) {
  Tensor param(1, 1, {5.0});
  Adam adam({.lr = 0.1, .weight_decay = 1.0});
  adam.Register(&param);
  for (int i = 0; i < 200; ++i) adam.Step({Tensor(1, 1, {0.0})});
  EXPECT_NEAR(param.scalar(), 0.0, 0.05);
}

TEST(TrainerTest, ReachesHighAccuracyOnSyntheticCitation) {
  GraphData data = TestData(11);
  Rng rng(12);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainResult result;
  Gcn model = TrainNewGcn(data, split, TrainConfig{}, &rng, &result);
  // Homophilous informative-feature graph: a GCN should classify well, as
  // it does on the paper's real citation datasets.
  EXPECT_GT(result.test_accuracy, 0.75) << "epochs=" << result.epochs_run;
  EXPECT_GT(result.train_accuracy, 0.85);
}

TEST(TrainerTest, TrainingImprovesOverInit) {
  GraphData data = TestData(13);
  Rng rng(14);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  GcnConfig cfg{data.feature_dim(), 16, data.num_classes};
  Gcn model(cfg, &rng);
  Tensor norm = NormalizeAdjacency(data.graph.DenseAdjacency());
  const double before =
      Accuracy(model.Logits(norm, data.features), data.labels, split.test);
  TrainResult result = TrainGcn(data, split, TrainConfig{}, &model);
  EXPECT_GT(result.test_accuracy, before + 0.2);
}

TEST(TrainerTest, EarlyStoppingBoundsEpochs) {
  GraphData data = TestData(15);
  Rng rng(16);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainConfig cfg;
  cfg.epochs = 1000;
  cfg.patience = 10;
  TrainResult result;
  TrainNewGcn(data, split, cfg, &rng, &result);
  EXPECT_LT(result.epochs_run, 1000);
}

TEST(LinearizedGcnTest, LogitsRowMatchesFullLogits) {
  GraphData data = TestData(17);
  Rng rng(18);
  Gcn model({data.feature_dim(), 8, data.num_classes}, &rng);
  LinearizedGcn lin(model, data.features);
  Tensor adj = data.graph.DenseAdjacency();
  Tensor full = lin.Logits(adj);
  for (int64_t node : {0, 3, 7}) {
    Tensor row = lin.LogitsRow(adj, node);
    for (int64_t c = 0; c < data.num_classes; ++c)
      EXPECT_NEAR(row.at(0, c), full.at(node, c), 1e-9);
  }
}

TEST(LinearizedGcnTest, CorrelatesWithNonlinearModel) {
  GraphData data = TestData(19);
  Rng rng(20);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  Gcn model = TrainNewGcn(data, split, TrainConfig{}, &rng);
  LinearizedGcn lin(model, data.features);
  Tensor adj = data.graph.DenseAdjacency();
  Tensor full = model.LogitsFromRaw(adj, data.features);
  Tensor sur = lin.Logits(adj);
  // The surrogate should agree with the trained GCN on most predictions.
  int64_t agree = 0;
  for (int64_t i = 0; i < data.num_nodes(); ++i)
    if (full.ArgMaxRow(i) == sur.ArgMaxRow(i)) ++agree;
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(data.num_nodes()),
            0.7);
}

TEST(DegreeTestTest, TypicalAdditionAccepted) {
  Rng rng(21);
  GraphData data = TestData(21);
  DegreeDistributionTest test(data.graph);
  // Adding one edge between two medium-degree nodes barely moves the
  // power-law fit: must be unnoticeable.
  int64_t u = -1, v = -1;
  for (int64_t i = 0; i < data.num_nodes() && (u < 0 || v < 0); ++i) {
    if (data.graph.Degree(i) >= 2 && data.graph.Degree(i) <= 4) {
      (u < 0 ? u : v) = i;
    }
  }
  ASSERT_GE(u, 0);
  ASSERT_GE(v, 0);
  EXPECT_TRUE(test.EdgeAdditionUnnoticeable(data.graph, u, v));
}

// ----- Sparse (CSR) forward path. -------------------------------------------

TEST(SparseGcnTest, SparseLogitsMatchDense) {
  GraphData data = TestData(40);
  Rng rng(41);
  Gcn model({data.feature_dim(), 8, data.num_classes}, &rng);
  Tensor dense = model.Logits(NormalizeAdjacency(data.graph.DenseAdjacency()),
                              data.features);
  Tensor sparse =
      model.Logits(NormalizeAdjacencyCsr(data.graph), data.features);
  EXPECT_LE(sparse.MaxAbsDiff(dense), 1e-5);
  EXPECT_LE(model.LogitsFromGraph(data.graph, data.features)
                .MaxAbsDiff(dense),
            1e-5);
}

TEST(SparseGcnTest, SparseHiddenMatchesDense) {
  GraphData data = TestData(42);
  Rng rng(43);
  Gcn model({data.feature_dim(), 8, data.num_classes}, &rng);
  Tensor norm_dense = NormalizeAdjacency(data.graph.DenseAdjacency());
  EXPECT_LE(model.Hidden(NormalizeAdjacencyCsr(data.graph), data.features)
                .MaxAbsDiff(model.Hidden(norm_dense, data.features)),
            1e-9);
}

TEST(SparseGcnTest, SparseTrainerMatchesDenseTrainer) {
  GraphData data = TestData(44);
  Rng rng(45);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);

  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.patience = 0;  // Deterministic epoch count on both paths.

  Rng rng_sparse(46), rng_dense(46);
  cfg.use_sparse = true;
  TrainResult sparse_result;
  Gcn sparse_model =
      TrainNewGcn(data, split, cfg, &rng_sparse, &sparse_result);
  cfg.use_sparse = false;
  TrainResult dense_result;
  Gcn dense_model = TrainNewGcn(data, split, cfg, &rng_dense, &dense_result);

  // Same math, same seeds: weights and logits agree to accumulated roundoff.
  EXPECT_LE(sparse_model.w1().MaxAbsDiff(dense_model.w1()), 1e-6);
  EXPECT_LE(sparse_model.w2().MaxAbsDiff(dense_model.w2()), 1e-6);
  EXPECT_LE(sparse_result.final_logits.MaxAbsDiff(dense_result.final_logits),
            1e-5);
  EXPECT_NEAR(sparse_result.test_accuracy, dense_result.test_accuracy, 1e-9);
}

TEST(SparseGcnTest, PerturbedLogitsSparseMatchesDense) {
  GraphData data = TestData(49);
  Rng rng(50);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainConfig cfg;
  cfg.epochs = 20;
  Gcn model = TrainNewGcn(data, split, cfg, &rng);
  AttackContext ctx = MakeAttackContext(data, model);

  // A hand-built "attack result": three added edges around node 0.
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  for (int64_t v = 1; v < data.num_nodes() && result.added_edges.size() < 3;
       ++v) {
    if (!data.graph.HasEdge(0, v)) {
      AddEdgeDense(&result.adjacency, 0, v);
      result.added_edges.emplace_back(0, v);
    }
  }
  ASSERT_EQ(result.added_edges.size(), 3u);

  Tensor dense = PerturbedLogits(ctx, result, /*sparse=*/false);
  Tensor sparse = PerturbedLogits(ctx, result, /*sparse=*/true);
  EXPECT_LE(sparse.MaxAbsDiff(dense), 1e-5);

  // The float32 value-storage eval variant only carries the ~1e-7 relative
  // storage rounding on top of the double path — and predictions agree.
  Tensor f32 = PerturbedLogits(ctx, result, /*sparse=*/true,
                               /*f32_values=*/true);
  EXPECT_LE(f32.MaxAbsDiff(sparse), 1e-4);
  for (int64_t i = 0; i < sparse.rows(); ++i)
    EXPECT_EQ(f32.ArgMaxRow(i), sparse.ArgMaxRow(i));
}

TEST(SparseGcnTest, LinearizedSparseLogitsMatchDense) {
  GraphData data = TestData(47);
  Rng rng(48);
  Gcn model({data.feature_dim(), 8, data.num_classes}, &rng);
  LinearizedGcn lin(model, data.features);
  Tensor adj = data.graph.DenseAdjacency();
  CsrMatrix norm = NormalizeAdjacencyCsr(data.graph);
  EXPECT_LE(lin.LogitsFromNormalized(norm).MaxAbsDiff(lin.Logits(adj)), 1e-9);
  for (int64_t node : {int64_t{0}, data.num_nodes() / 2}) {
    EXPECT_LE(lin.LogitsRowFromNormalized(norm, node)
                  .MaxAbsDiff(lin.LogitsRow(adj, node)),
              1e-9);
  }
}

}  // namespace
}  // namespace geattack
