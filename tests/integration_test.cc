// End-to-end integration tests: the full Table-1 protocol at miniature
// scale, asserting the paper's qualitative orderings rather than absolute
// numbers.

#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "src/attack/fga.h"
#include "src/attack/nettack.h"
#include "src/attack/rna.h"
#include "src/core/geattack.h"
#include "src/eval/pipeline.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/datasets.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct PipelineRun {
  std::map<std::string, JointAttackOutcome> outcomes;
  double test_accuracy = 0.0;
};

PipelineRun RunPipeline(uint64_t seed) {
  PipelineRun run;
  Rng rng(seed);
  GraphData data = MakeDataset(DatasetId::kCiteseer, 0.1, &rng);
  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainResult tr;
  Gcn model = TrainNewGcn(data, split, TrainConfig{}, &rng, &tr);
  run.test_accuracy = tr.test_accuracy;
  AttackContext ctx = MakeAttackContext(data, model);
  auto nodes = SelectTargetNodes(data, tr.final_logits, split.test,
                                 {.top_margin = 4, .bottom_margin = 4,
                                  .random = 4},
                                 &rng);
  auto targets = PrepareTargets(ctx, nodes, &rng);
  GnnExplainerConfig icfg;
  icfg.epochs = 40;
  GnnExplainer inspector(&model, &data.features, icfg);

  std::vector<std::unique_ptr<TargetedAttack>> attackers;
  attackers.push_back(std::make_unique<RandomAttack>());
  attackers.push_back(std::make_unique<FgaAttack>(true));
  attackers.push_back(std::make_unique<Nettack>());
  attackers.push_back(std::make_unique<GeAttack>());
  // attack_threads = 1 routes the attack phase through the multi-target
  // driver's per-target TargetSeed streams: each target's draws depend only
  // on (base seed, target index), not on how many draws earlier attacks
  // consumed — the seed-robust anchoring GEAttack's sparse default (whose
  // per-edge M⁰ consumes a different draw count than the dense n x n init)
  // requires.
  EvalConfig eval_cfg;
  eval_cfg.attack_threads = 1;
  for (const auto& attacker : attackers) {
    Rng eval_rng(seed * 3 + 1);
    run.outcomes[attacker->name()] = EvaluateAttack(
        ctx, *attacker, targets, inspector, eval_cfg, &eval_rng);
  }
  return run;
}

// Shared across assertions (expensive); built once.
const PipelineRun& SharedRun() {
  static const PipelineRun* run = new PipelineRun(RunPipeline(99));
  return *run;
}

TEST(IntegrationTest, VictimModelIsCompetent) {
  // The substrate premise: the GCN must be worth attacking.
  EXPECT_GT(SharedRun().test_accuracy, 0.7);
}

TEST(IntegrationTest, TargetsWereEvaluated) {
  for (const auto& [name, o] : SharedRun().outcomes)
    EXPECT_GE(o.num_targets, 3) << name;
}

TEST(IntegrationTest, GradientAttacksBeatRandom) {
  const auto& o = SharedRun().outcomes;
  EXPECT_GE(o.at("FGA-T").asr_t + 1e-9, o.at("RNA").asr_t);
  EXPECT_GE(o.at("GEAttack").asr_t + 1e-9, o.at("RNA").asr_t);
}

TEST(IntegrationTest, StrongAttackersSucceed) {
  const auto& o = SharedRun().outcomes;
  EXPECT_GE(o.at("FGA-T").asr_t, 0.75);
  EXPECT_GE(o.at("GEAttack").asr_t, 0.75);
  EXPECT_GE(o.at("Nettack").asr, 0.5);
}

TEST(IntegrationTest, ExplainerDetectsNonEvasiveAttacks) {
  // The §3 premise at pipeline level: FGA-T's edges are visible.
  EXPECT_GT(SharedRun().outcomes.at("FGA-T").detection.ndcg, 0.2);
}

TEST(IntegrationTest, GeAttackNoMoreDetectableThanFgaT) {
  const auto& o = SharedRun().outcomes;
  EXPECT_LE(o.at("GEAttack").detection.ndcg,
            o.at("FGA-T").detection.ndcg + 1e-9);
  EXPECT_LE(o.at("GEAttack").detection.f1,
            o.at("FGA-T").detection.f1 + 1e-9);
}

}  // namespace
}  // namespace geattack
