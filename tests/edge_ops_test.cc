// Tests for the edge-indexed and column-block autodiff ops that power
// PGExplainer (ScatterEdges/GatherEdges, HConcat/SliceCols), and for the
// reporting helpers.

#include <sstream>

#include "gtest/gtest.h"
#include "src/eval/report.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/random.h"
#include "tests/test_util.h"

namespace geattack {
namespace {

TEST(ScatterEdgesTest, WritesSymmetrically) {
  Var values = Constant(Tensor(2, 1, {3.0, 5.0}));
  std::vector<IndexPair> pairs = {{0, 1}, {2, 3}};
  Var m = ScatterEdges(values, pairs, 4);
  EXPECT_DOUBLE_EQ(m.value().at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.value().at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.value().at(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(m.value().at(3, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.value().Sum(), 16.0);
}

TEST(ScatterEdgesTest, DuplicatePairsAccumulate) {
  Var values = Constant(Tensor(2, 1, {1.0, 2.0}));
  std::vector<IndexPair> pairs = {{0, 1}, {0, 1}};
  Var m = ScatterEdges(values, pairs, 3);
  EXPECT_DOUBLE_EQ(m.value().at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.value().at(1, 0), 3.0);
}

TEST(GatherEdgesTest, AdjointOfScatter) {
  Rng rng(1);
  Tensor a = rng.NormalTensor(4, 4, 0, 1);
  std::vector<IndexPair> pairs = {{0, 2}, {1, 3}};
  Var g = GatherEdges(Constant(a), pairs);
  EXPECT_DOUBLE_EQ(g.value().at(0, 0), a.at(0, 2) + a.at(2, 0));
  EXPECT_DOUBLE_EQ(g.value().at(1, 0), a.at(1, 3) + a.at(3, 1));
}

TEST(ScatterEdgesTest, GradientMatchesFiniteDifferences) {
  std::vector<IndexPair> pairs = {{0, 1}, {1, 2}, {0, 3}};
  auto fn = [&pairs](const Var& v) {
    Var m = ScatterEdges(v, pairs, 4);
    return Sum(Mul(m, m));
  };
  Rng rng(2);
  geattack::testing::ExpectGradientsMatch(fn, rng.NormalTensor(3, 1, 0, 1));
  geattack::testing::ExpectSecondOrderMatch(fn, rng.NormalTensor(3, 1, 0, 1));
}

TEST(GatherEdgesTest, GradientMatchesFiniteDifferences) {
  std::vector<IndexPair> pairs = {{0, 1}, {2, 2}};
  auto fn = [&pairs](const Var& a) {
    Var g = GatherEdges(a, pairs);
    return Sum(Mul(g, g));
  };
  Rng rng(3);
  geattack::testing::ExpectGradientsMatch(fn, rng.NormalTensor(3, 3, 0, 1));
}

TEST(HConcatTest, ValuesAndShape) {
  Var a = Constant(Tensor(2, 2, {1, 2, 3, 4}));
  Var b = Constant(Tensor(2, 1, {9, 8}));
  Var c = HConcat(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_DOUBLE_EQ(c.value().at(0, 2), 9.0);
  EXPECT_DOUBLE_EQ(c.value().at(1, 0), 3.0);
}

TEST(SliceColsTest, InverseOfConcat) {
  Rng rng(4);
  Tensor at = rng.NormalTensor(3, 2, 0, 1);
  Tensor bt = rng.NormalTensor(3, 4, 0, 1);
  Var c = HConcat(Constant(at), Constant(bt));
  EXPECT_LE(SliceCols(c, 0, 2).value().MaxAbsDiff(at), 0.0);
  EXPECT_LE(SliceCols(c, 2, 4).value().MaxAbsDiff(bt), 0.0);
}

TEST(HConcatTest, GradientSplitsCorrectly) {
  Rng rng(5);
  Tensor at = rng.NormalTensor(2, 2, 0, 1);
  Tensor bt = rng.NormalTensor(2, 3, 0, 1);
  Var a = Var::Leaf(at, true);
  Var b = Var::Leaf(bt, true);
  // y = sum(concat(a,b)^2) => dy/da = 2a, dy/db = 2b.
  Var c = HConcat(a, b);
  Var y = Sum(Mul(c, c));
  auto grads = Grad(y, {a, b});
  EXPECT_LE(grads[0].value().MaxAbsDiff(at.MulScalar(2.0)), 1e-12);
  EXPECT_LE(grads[1].value().MaxAbsDiff(bt.MulScalar(2.0)), 1e-12);
}

TEST(SliceColsTest, GradientMatchesFiniteDifferences) {
  auto fn = [](const Var& x) {
    Var s = SliceCols(x, 1, 2);
    return Sum(Mul(s, s));
  };
  Rng rng(6);
  geattack::testing::ExpectGradientsMatch(fn, rng.NormalTensor(3, 4, 0, 1));
  geattack::testing::ExpectSecondOrderMatch(fn, rng.NormalTensor(3, 4, 0, 1));
}

TEST(SeedAggregateTest, CellFormatsPercent) {
  SeedAggregate agg;
  agg.Add(0.9911);
  agg.Add(0.9911);
  EXPECT_EQ(agg.Cell(), "99.11±0.00");
}

TEST(SeedAggregateTest, StddevAcrossSeeds) {
  SeedAggregate agg;
  agg.Add(0.5);
  agg.Add(0.7);
  EXPECT_NEAR(agg.mean(), 0.6, 1e-12);
  EXPECT_GT(agg.stddev(), 0.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"A", "LongHeader"});
  t.AddRow({"x", "1"});
  t.AddRow({"yyyy", "2"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("LongHeader"), std::string::npos);
  EXPECT_NE(out.find("yyyy"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(FormatDoubleTest, Digits) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
}

}  // namespace
}  // namespace geattack
