// Shared helpers for the test suites: finite-difference gradient checking
// against the autodiff engine, including second-order checks.

#ifndef GEATTACK_TESTS_TEST_UTIL_H_
#define GEATTACK_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>

#include "gtest/gtest.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/tensor.h"

namespace geattack {
namespace testing {

/// A scalar-valued function of a single tensor input, expressed on the
/// autodiff graph.  The function must return a (1,1) Var.
using ScalarFn = std::function<Var(const Var&)>;

/// Central-difference numerical gradient of `fn` at `x`.
inline Tensor NumericalGradient(const ScalarFn& fn, const Tensor& x,
                                double eps = 1e-5) {
  Tensor g(x.rows(), x.cols());
  Tensor xp = x;
  for (int64_t i = 0; i < x.size(); ++i) {
    const double orig = xp[i];
    xp[i] = orig + eps;
    const double fplus = fn(Var::Leaf(xp)).value().scalar();
    xp[i] = orig - eps;
    const double fminus = fn(Var::Leaf(xp)).value().scalar();
    xp[i] = orig;
    g[i] = (fplus - fminus) / (2.0 * eps);
  }
  return g;
}

/// Asserts that the autodiff gradient of `fn` at `x` matches central
/// differences within `tol` (absolute, on the max-norm).
inline void ExpectGradientsMatch(const ScalarFn& fn, const Tensor& x,
                                 double tol = 1e-6, double eps = 1e-5) {
  Var xv = Var::Leaf(x, /*requires_grad=*/true, "x");
  Var y = fn(xv);
  ASSERT_EQ(y.rows(), 1);
  ASSERT_EQ(y.cols(), 1);
  Tensor analytic = GradOne(y, xv).value();
  Tensor numeric = NumericalGradient(fn, x, eps);
  EXPECT_LE(analytic.MaxAbsDiff(numeric), tol)
      << "analytic=" << analytic.DebugString()
      << "\nnumeric=" << numeric.DebugString();
}

/// Asserts that a *second-order* quantity matches finite differences: checks
/// d/dx [sum(grad fn(x))] against central differences of sum(grad fn(x)).
inline void ExpectSecondOrderMatch(const ScalarFn& fn, const Tensor& x,
                                   double tol = 1e-5, double eps = 1e-5) {
  auto grad_sum = [&fn](const Var& v) -> Var {
    Var y = fn(v);
    Var g = GradOne(y, v, {.create_graph = true});
    return Sum(g);
  };
  Var xv = Var::Leaf(x, /*requires_grad=*/true, "x");
  Var s = grad_sum(xv);
  Tensor analytic = GradOne(s, xv).value();
  auto scalar_grad_sum = [&](const Var& v) -> Var {
    // Re-wrap with requires_grad so the inner Grad works on copies.
    Var leaf = Var::Leaf(v.value(), /*requires_grad=*/true);
    return grad_sum(leaf);
  };
  Tensor numeric = NumericalGradient(scalar_grad_sum, x, eps);
  EXPECT_LE(analytic.MaxAbsDiff(numeric), tol)
      << "analytic=" << analytic.DebugString()
      << "\nnumeric=" << numeric.DebugString();
}

}  // namespace testing
}  // namespace geattack

#endif  // GEATTACK_TESTS_TEST_UTIL_H_
