// Tests for the attack baselines, including parameterized property tests of
// the invariants every attacker must respect (DESIGN.md §6).

#include <memory>

#include "gtest/gtest.h"
#include "src/attack/attack.h"
#include "src/attack/fga.h"
#include "src/attack/fga_te.h"
#include "src/attack/ig_attack.h"
#include "src/attack/nettack.h"
#include "src/attack/rna.h"
#include "src/core/geattack.h"
#include "src/eval/pipeline.h"
#include "src/graph/generators.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct AttackFixture {
  GraphData data;
  Split split;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
};

// Shared across tests (expensive to build); intentionally leaked.
AttackFixture* SharedFixture() {
  static AttackFixture* fixture = [] {
    auto* f = new AttackFixture();
    Rng rng(42);
    CitationGraphConfig cfg;
    cfg.num_nodes = 140;
    cfg.num_edges = 360;
    cfg.num_classes = 3;
    cfg.feature_dim = 48;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    f->split = MakeSplit(f->data, 0.1, 0.1, &rng);
    f->model = std::make_unique<Gcn>(
        TrainNewGcn(f->data, f->split, TrainConfig{}, &rng));
    f->ctx = MakeAttackContext(f->data, *f->model);
    Tensor logits = f->model->LogitsFromRaw(f->ctx.clean_adjacency,
                                            f->data.features);
    auto nodes = SelectTargetNodes(
        f->data, logits, f->split.test,
        {.top_margin = 3, .bottom_margin = 3, .random = 4}, &rng);
    f->targets = PrepareTargets(f->ctx, nodes, &rng);
    return f;
  }();
  return fixture;
}

std::unique_ptr<TargetedAttack> MakeAttack(const std::string& name) {
  if (name == "RNA") return std::make_unique<RandomAttack>();
  if (name == "FGA") return std::make_unique<FgaAttack>(false);
  if (name == "FGA-T") return std::make_unique<FgaAttack>(true);
  if (name == "FGA-T&E") {
    GnnExplainerConfig cfg;
    cfg.epochs = 30;
    return std::make_unique<FgaTeAttack>(cfg);
  }
  if (name == "Nettack") return std::make_unique<Nettack>();
  if (name == "IG-Attack") {
    IgAttackConfig cfg;
    cfg.steps = 3;
    cfg.shortlist = 16;
    return std::make_unique<IgAttack>(cfg);
  }
  if (name == "GEAttack") return std::make_unique<GeAttack>();
  return nullptr;
}

class AttackPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AttackPropertyTest, RespectsInvariants) {
  AttackFixture* f = SharedFixture();
  ASSERT_GE(f->targets.size(), 3u);
  auto attack = MakeAttack(GetParam());
  ASSERT_NE(attack, nullptr);
  Rng rng(7);

  for (size_t i = 0; i < 3; ++i) {
    const PreparedTarget& t = f->targets[i];
    AttackRequest req{t.node, t.target_label, t.budget};
    AttackResult result = attack->Attack(f->ctx, req, &rng);

    // Budget respected.
    EXPECT_LE(static_cast<int64_t>(result.added_edges.size()), t.budget);
    // Symmetric, zero-diagonal, add-only, direct.
    const Tensor& a = result.adjacency;
    EXPECT_LE(a.MaxAbsDiff(a.Transposed()), 0.0);
    int64_t changed = 0;
    for (int64_t u = 0; u < a.rows(); ++u) {
      EXPECT_DOUBLE_EQ(a.at(u, u), 0.0);
      for (int64_t v2 = u + 1; v2 < a.cols(); ++v2) {
        const double before = f->ctx.clean_adjacency.at(u, v2);
        const double after = a.at(u, v2);
        EXPECT_GE(after, before);  // Add-only.
        if (after != before) {
          ++changed;
          EXPECT_TRUE(u == t.node || v2 == t.node);  // Direct attack.
        }
      }
    }
    EXPECT_EQ(changed, static_cast<int64_t>(result.added_edges.size()));
    // Every reported edge is new and incident to the target.
    for (const Edge& e : result.added_edges) {
      EXPECT_DOUBLE_EQ(f->ctx.clean_adjacency.at(e.u, e.v), 0.0);
      EXPECT_TRUE(e.u == t.node || e.v == t.node);
    }
  }
}

TEST_P(AttackPropertyTest, DeterministicGivenRngState) {
  AttackFixture* f = SharedFixture();
  auto attack = MakeAttack(GetParam());
  const PreparedTarget& t = f->targets[0];
  AttackRequest req{t.node, t.target_label, t.budget};
  Rng rng1(9), rng2(9);
  AttackResult a = attack->Attack(f->ctx, req, &rng1);
  AttackResult b = attack->Attack(f->ctx, req, &rng2);
  EXPECT_EQ(a.added_edges.size(), b.added_edges.size());
  for (size_t i = 0; i < a.added_edges.size(); ++i)
    EXPECT_EQ(a.added_edges[i], b.added_edges[i]);
}

INSTANTIATE_TEST_SUITE_P(AllAttackers, AttackPropertyTest,
                         ::testing::Values("RNA", "FGA", "FGA-T", "FGA-T&E",
                                           "Nettack", "IG-Attack",
                                           "GEAttack"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string n = i.param;
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

double MeasureAsrT(const TargetedAttack& attack, int64_t max_targets = 6) {
  AttackFixture* f = SharedFixture();
  Rng rng(11);
  int64_t success = 0, total = 0;
  for (const auto& t : f->targets) {
    if (total >= max_targets) break;
    ++total;
    AttackRequest req{t.node, t.target_label, t.budget};
    AttackResult result = attack.Attack(f->ctx, req, &rng);
    if (PredictsLabel(*f->model, result.adjacency, f->data.features, t.node,
                      t.target_label))
      ++success;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(success) / static_cast<double>(total);
}

TEST(FgaTTest, HighTargetedSuccessRate) {
  EXPECT_GE(MeasureAsrT(FgaAttack(/*targeted=*/true)), 0.8);
}

TEST(NettackTest, HighTargetedSuccessRate) {
  EXPECT_GE(MeasureAsrT(Nettack()), 0.6);
}

TEST(IgAttackTest, HighTargetedSuccessRate) {
  IgAttackConfig cfg;
  cfg.steps = 3;
  cfg.shortlist = 16;
  EXPECT_GE(MeasureAsrT(IgAttack(cfg)), 0.6);
}

TEST(RnaTest, WeakerThanGradientAttacks) {
  // RNA's ASR-T should not beat FGA-T (it is the weakest attacker).
  const double rna = MeasureAsrT(RandomAttack());
  const double fga_t = MeasureAsrT(FgaAttack(true));
  EXPECT_LE(rna, fga_t + 1e-9);
}

TEST(RnaTest, OnlyConnectsTargetLabelNodes) {
  AttackFixture* f = SharedFixture();
  Rng rng(13);
  const PreparedTarget& t = f->targets[0];
  AttackRequest req{t.node, t.target_label, t.budget};
  AttackResult result = RandomAttack().Attack(f->ctx, req, &rng);
  for (const Edge& e : result.added_edges) {
    const int64_t other = e.u == t.node ? e.v : e.u;
    EXPECT_EQ(f->data.labels[ZU(other)], t.target_label);
  }
}

TEST(NettackTest, DegreeTestCanRejectCandidates) {
  // With an extreme threshold every candidate is rejected: no edges added.
  AttackFixture* f = SharedFixture();
  NettackConfig cfg;
  cfg.degree_test_threshold = -1.0;  // Impossible to satisfy.
  Nettack nettack(cfg);
  Rng rng(15);
  const PreparedTarget& t = f->targets[0];
  AttackRequest req{t.node, t.target_label, t.budget};
  AttackResult result = nettack.Attack(f->ctx, req, &rng);
  EXPECT_TRUE(result.added_edges.empty());
}

TEST(DirectAddCandidatesTest, ExcludesNeighborsAndSelf) {
  AttackFixture* f = SharedFixture();
  const int64_t v = f->targets[0].node;
  auto candidates =
      DirectAddCandidates(f->ctx.clean_adjacency, v, f->data.labels, -1);
  for (int64_t j : candidates) {
    EXPECT_NE(j, v);
    EXPECT_DOUBLE_EQ(f->ctx.clean_adjacency.at(v, j), 0.0);
  }
  const int64_t expected = f->data.num_nodes() - 1 - f->data.graph.Degree(v);
  EXPECT_EQ(static_cast<int64_t>(candidates.size()), expected);
}

TEST(PrepareTargetsTest, AssignsWrongLabelsAndDegreeBudgets) {
  AttackFixture* f = SharedFixture();
  for (const auto& t : f->targets) {
    EXPECT_NE(t.target_label, t.true_label);
    EXPECT_GE(t.target_label, 0);
    EXPECT_LT(t.target_label, f->data.num_classes);
    EXPECT_EQ(t.budget, std::max<int64_t>(1, f->data.graph.Degree(t.node)));
  }
}

}  // namespace
}  // namespace geattack
