// Attack-service tests: admission control over the bounded queue, structured
// rejections, retry/backoff on distinct documented seed streams, priority
// shedding and budget degradation under overload, cancellation, and the
// open-loop fault soak — all pinned to the bit-identity contract: every
// completed request's picks must equal an offline RunMultiTargetAttack
// replay (admission-order reference for first attempts, recorded seed and
// effective budget for retried/degraded ones), at any thread count, queue
// bound and wave packing.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/attack/driver.h"
#include "src/attack/fault_injection.h"
#include "src/attack/fga.h"
#include "src/eval/pipeline.h"
#include "src/eval/protocol.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/nn/trainer.h"
#include "src/service/attack_service.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
  std::vector<AttackRequest> requests;
};

Fixture* SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(913);
    CitationGraphConfig cfg;
    cfg.num_nodes = 90;
    cfg.num_edges = 240;
    cfg.num_classes = 3;
    cfg.feature_dim = 32;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    Split split = MakeSplit(f->data, 0.1, 0.1, &rng);
    TrainConfig tc;
    tc.epochs = 40;
    f->model = std::make_unique<Gcn>(TrainNewGcn(f->data, split, tc, &rng));
    f->ctx = MakeAttackContext(f->data, *f->model);
    const Tensor logits =
        f->model->LogitsFromRaw(f->ctx.clean_adjacency, f->data.features);
    auto nodes = SelectTargetNodes(
        f->data, logits, split.test,
        {.top_margin = 4, .bottom_margin = 4, .random = 4}, &rng);
    f->targets = PrepareTargets(f->ctx, nodes, &rng);
    for (const PreparedTarget& t : f->targets)
      f->requests.push_back(
          {t.node, t.target_label, std::min<int64_t>(t.budget, 2)});
    return f;
  }();
  return fixture;
}

/// Non-owning shared_ptr over a test-scoped attack (every test body keeps
/// its attack alive past the service, so the service need not own it).
std::shared_ptr<const TargetedAttack> NoOwn(const TargetedAttack* attack) {
  return std::shared_ptr<const TargetedAttack>(
      std::shared_ptr<const TargetedAttack>(), attack);
}

void ExpectSameEdges(const AttackResult& got, const AttackResult& want,
                     const std::string& where) {
  ASSERT_EQ(got.added_edges.size(), want.added_edges.size()) << where;
  for (size_t e = 0; e < want.added_edges.size(); ++e)
    EXPECT_EQ(got.added_edges[e], want.added_edges[e]) << where << " edge "
                                                       << e;
}

/// The offline reference for service completions: the plain driver over the
/// accepted requests in admission order with the service's base seed.
std::vector<AttackResult> OfflineReference(
    const AttackContext& ctx, const TargetedAttack& attack,
    const std::vector<AttackRequest>& requests, uint64_t base_seed,
    int threads) {
  AttackDriverConfig cfg;
  cfg.base_seed = base_seed;
  cfg.num_threads = threads;
  return RunMultiTargetAttack(ctx, attack, requests, cfg);
}

/// Replays one completed ServiceResult offline from its recorded seed and
/// effective budget — the documented reconciliation path for retried and
/// degraded completions.
AttackResult ReplayOne(const AttackContext& ctx, const TargetedAttack& attack,
                       int64_t target_node, int64_t target_label,
                       const ServiceResult& r) {
  AttackRequest request;
  request.target_node = target_node;
  request.target_label = target_label;
  request.budget = r.effective_budget;
  AttackDriverConfig cfg;
  cfg.request_seeds = {r.seed};
  const std::vector<AttackResult> out =
      RunMultiTargetAttack(ctx, attack, {request}, cfg);
  EXPECT_EQ(out.size(), 1u);
  return out.empty() ? AttackResult{} : out[0];
}

/// Blocks until the dispatcher has picked up the parked slow wave (queue
/// empty, wave in flight) so subsequent submissions pile up in the bounded
/// queue deterministically.
void WaitUntilWaveInFlight(const AttackService& service) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    const ServiceStats st = service.stats();
    if (st.in_flight > 0 && st.queue_depth == 0) return;
    if (std::chrono::steady_clock::now() > give_up) {
      ADD_FAILURE() << "dispatcher never picked up the parked wave";
      return;
    }
    std::this_thread::yield();
  }
}

/// Fails (throws) only the FIRST Attack() call that reaches the configured
/// node, then delegates untouched — the transient-fault model for
/// retry-to-success tests.  State is shared and mutex-guarded because the
/// const Attack override can run concurrently on driver workers.
class FlakyAttack : public TargetedAttack {
 public:
  FlakyAttack(const TargetedAttack* inner, int64_t flaky_node)
      : inner_(inner),
        flaky_node_(flaky_node),
        state_(std::make_shared<State>()) {}

  std::string name() const override { return "flaky(" + inner_->name() + ")"; }

  AttackResult Attack(const AttackContext& ctx, const AttackRequest& request,
                      Rng* rng) const override {
    if (request.target_node == flaky_node_) {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (!state_->fired) {
        state_->fired = true;
        throw std::runtime_error("flaky: transient fault on first call");
      }
    }
    return inner_->Attack(ctx, request, rng);
  }

 private:
  struct State {
    std::mutex mu;
    bool fired = false;
  };
  const TargetedAttack* inner_;
  int64_t flaky_node_;
  std::shared_ptr<State> state_;
};

// ---------------------------------------------------------------------------
// The per-attempt seed stream.
// ---------------------------------------------------------------------------

TEST(AttemptSeedTest, FirstAttemptMatchesOfflineStreamAndRetriesDiverge) {
  // Attempt 0 IS the offline driver's stream for the same position — that
  // equality is what makes un-retried service completions bit-identical to
  // RunMultiTargetAttack for free.
  for (uint64_t base : {uint64_t{0}, uint64_t{21}, uint64_t{0xDEADBEEF}})
    for (int64_t k : {int64_t{0}, int64_t{1}, int64_t{977}})
      EXPECT_EQ(AttemptSeed(base, k, 0), TargetSeed(base, k));

  // Retries land in the documented derived stream.
  EXPECT_EQ(AttemptSeed(33, 5, 2), TargetSeed(TargetSeed(33, 5), 2));

  // Spot-check disjointness across (index, attempt): 16 indices x 4
  // attempts under one base must give 64 distinct seeds.
  std::vector<uint64_t> seeds;
  for (int64_t k = 0; k < 16; ++k)
    for (int attempt = 0; attempt < 4; ++attempt)
      seeds.push_back(AttemptSeed(417, k, attempt));
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
}

// ---------------------------------------------------------------------------
// Determinism: service == offline driver at any knob setting.
// ---------------------------------------------------------------------------

TEST(ServiceDeterminismTest, FirstAttemptPicksMatchOfflineDriverEverywhere) {
  Fixture* f = SharedFixture();
  const size_t n = f->requests.size();
  ASSERT_GE(n, 3u);
  const FgaAttack inner(/*targeted=*/true);
  const uint64_t kBase = 417;
  const std::vector<AttackResult> reference =
      OfflineReference(f->ctx, inner, f->requests, kBase, /*threads=*/2);
  for (const AttackResult& r : reference) ASSERT_TRUE(r.status.ok());

  for (int threads : {1, 2, 4}) {
    for (int64_t wave : {int64_t{1}, int64_t{3}, int64_t{8}}) {
      AttackServiceConfig cfg;
      cfg.base_seed = kBase;
      cfg.num_threads = threads;
      cfg.wave_size = wave;
      cfg.queue_capacity = 64;
      AttackService service(cfg);
      ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&inner),
                                    /*dense_context=*/true).ok());

      std::vector<int64_t> tickets;
      for (size_t i = 0; i < n; ++i) {
        AttackServiceRequest req;
        req.graph = "g";
        req.target_node = f->requests[i].target_node;
        req.target_label = f->requests[i].target_label;
        req.budget = f->requests[i].budget;
        const Admission a = service.Submit(req);
        ASSERT_TRUE(a.status.ok()) << a.status.ToString();
        tickets.push_back(a.ticket);
      }
      service.Drain();

      const std::string knobs = "threads=" + std::to_string(threads) +
                                " wave=" + std::to_string(wave);
      for (size_t i = 0; i < n; ++i) {
        const ServiceResult r = service.Take(tickets[i]);
        const std::string where = knobs + " target " + std::to_string(i);
        EXPECT_TRUE(r.result.status.ok())
            << where << ": " << r.result.status.ToString();
        EXPECT_EQ(r.accepted_index, static_cast<int64_t>(i)) << where;
        EXPECT_EQ(r.attempts, 1) << where;
        EXPECT_EQ(r.seed, TargetSeed(kBase, static_cast<int64_t>(i))) << where;
        EXPECT_EQ(r.effective_budget, f->requests[i].budget) << where;
        EXPECT_GE(r.latency_ms, 0.0) << where;
        ExpectSameEdges(r.result, reference[i], where);
      }
      const ServiceStats st = service.stats();
      EXPECT_EQ(st.accepted, static_cast<int64_t>(n)) << knobs;
      EXPECT_EQ(st.completed_ok, static_cast<int64_t>(n)) << knobs;
      EXPECT_EQ(st.retried, 0) << knobs;
      EXPECT_EQ(st.shed, 0) << knobs;
    }
  }
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(ServiceAdmissionTest, StructuredRejectionsAndUnknownTickets) {
  Fixture* f = SharedFixture();
  const FgaAttack inner(/*targeted=*/true);
  AttackServiceConfig cfg;
  cfg.base_seed = 5;
  cfg.min_feasible_deadline_ms = 50.0;
  AttackService service(cfg);

  // Registration validation.
  EXPECT_EQ(service.RegisterGraph("", f->data, *f->model, NoOwn(&inner)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.RegisterGraph("g", f->data, *f->model, nullptr).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&inner),
                                    /*dense_context=*/true).ok());
  EXPECT_EQ(service.RegisterGraph("g", f->data, *f->model, NoOwn(&inner),
                                    /*dense_context=*/true).code(),
            StatusCode::kInvalidArgument);  // Versions are immutable.

  AttackServiceRequest base;
  base.graph = "g";
  base.target_node = f->requests[0].target_node;
  base.target_label = f->requests[0].target_label;
  base.budget = f->requests[0].budget;

  AttackServiceRequest ghost = base;
  ghost.graph = "ghost";
  const Admission not_found = service.Submit(ghost);
  EXPECT_EQ(not_found.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(not_found.ticket, -1);

  AttackServiceRequest bad_node = base;
  bad_node.target_node = f->data.num_nodes() + 7;
  EXPECT_EQ(service.Submit(bad_node).status.code(),
            StatusCode::kInvalidArgument);
  bad_node.target_node = -1;
  EXPECT_EQ(service.Submit(bad_node).status.code(),
            StatusCode::kInvalidArgument);

  AttackServiceRequest bad_budget = base;
  bad_budget.budget = -3;
  EXPECT_EQ(service.Submit(bad_budget).status.code(),
            StatusCode::kInvalidArgument);

  AttackServiceRequest bad_label = base;
  bad_label.target_label = -5;
  EXPECT_EQ(service.Submit(bad_label).status.code(),
            StatusCode::kInvalidArgument);

  // A deadline below the feasibility floor is rejected up front, with the
  // overload code — it could never finish, so queueing it would only steal
  // a slot.
  AttackServiceRequest infeasible = base;
  infeasible.deadline_ms = 10.0;
  EXPECT_EQ(service.Submit(infeasible).status.code(),
            StatusCode::kResourceExhausted);

  // A generous deadline passes the floor.
  AttackServiceRequest feasible = base;
  feasible.deadline_ms = 5000.0;
  const Admission ok = service.Submit(feasible);
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.submitted, 7);
  EXPECT_EQ(st.accepted, 1);
  EXPECT_EQ(st.rejected_invalid, 5);  // kNotFound + 4 validation rejects.
  EXPECT_EQ(st.rejected_infeasible, 1);

  // Rejections issue no ticket, and unknown tickets are structured too.
  EXPECT_EQ(service.Take(-1).result.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(service.Take(9999).result.status.code(), StatusCode::kNotFound);

  service.Drain();
  const ServiceResult taken = service.Take(ok.ticket);
  EXPECT_TRUE(taken.result.status.ok()) << taken.result.status.ToString();
  // A ticket is consumable exactly once.
  EXPECT_EQ(service.Take(ok.ticket).result.status.code(),
            StatusCode::kNotFound);
}

TEST(ServiceAdmissionTest, BoundedQueueRejectsAtCapacityAndRecovers) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 4u);
  const FgaAttack inner(/*targeted=*/true);
  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[0].target_node, {FaultKind::kDelay, 150.0});

  const uint64_t kBase = 63;
  AttackServiceConfig cfg;
  cfg.base_seed = kBase;
  cfg.queue_capacity = 2;
  cfg.wave_size = 1;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&faulty),
                                    /*dense_context=*/true).ok());

  auto submit = [&](size_t i) {
    AttackServiceRequest req;
    req.graph = "g";
    req.target_node = f->requests[i].target_node;
    req.target_label = f->requests[i].target_label;
    req.budget = f->requests[i].budget;
    return service.Submit(req);
  };

  // Park the dispatcher on the slow target, then fill the queue.
  const Admission slow = submit(0);
  ASSERT_TRUE(slow.status.ok());
  WaitUntilWaveInFlight(service);
  const Admission a = submit(1);
  const Admission b = submit(2);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  const Admission overflow = submit(3);
  EXPECT_EQ(overflow.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(overflow.ticket, -1);
  EXPECT_EQ(service.stats().rejected_queue_full, 1);

  // After the queue drains the service admits again — rejection is
  // backpressure, not a terminal state.
  service.Drain();
  const Admission again = submit(3);
  ASSERT_TRUE(again.status.ok()) << again.status.ToString();
  service.Drain();

  // Everything accepted matches the offline driver over the accepted
  // sequence (the rejected submission never consumed a stream, so the
  // re-submission simply took the next accepted index).
  const std::vector<AttackRequest> accepted = {
      f->requests[0], f->requests[1], f->requests[2], f->requests[3]};
  const std::vector<AttackResult> reference =
      OfflineReference(f->ctx, inner, accepted, kBase, /*threads=*/1);
  const std::vector<int64_t> tickets = {slow.ticket, a.ticket, b.ticket,
                                        again.ticket};
  for (size_t i = 0; i < tickets.size(); ++i) {
    const ServiceResult r = service.Take(tickets[i]);
    const std::string where = "accepted " + std::to_string(i);
    EXPECT_TRUE(r.result.status.ok())
        << where << ": " << r.result.status.ToString();
    EXPECT_EQ(r.accepted_index, static_cast<int64_t>(i)) << where;
    ExpectSameEdges(r.result, reference[i], where);
  }
}

// ---------------------------------------------------------------------------
// Cancellation.
// ---------------------------------------------------------------------------

TEST(ServiceCancelTest, QueuedCancellationSkipsWithoutConsumingStream) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 3u);
  const FgaAttack inner(/*targeted=*/true);
  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[0].target_node, {FaultKind::kDelay, 150.0});

  const uint64_t kBase = 77;
  AttackServiceConfig cfg;
  cfg.base_seed = kBase;
  cfg.queue_capacity = 8;
  cfg.wave_size = 1;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&faulty),
                                    /*dense_context=*/true).ok());

  auto submit = [&](size_t i) {
    AttackServiceRequest req;
    req.graph = "g";
    req.target_node = f->requests[i].target_node;
    req.target_label = f->requests[i].target_label;
    req.budget = f->requests[i].budget;
    return service.Submit(req);
  };

  const Admission slow = submit(0);
  ASSERT_TRUE(slow.status.ok());
  WaitUntilWaveInFlight(service);
  const Admission doomed = submit(1);
  const Admission survivor = submit(2);
  ASSERT_TRUE(doomed.status.ok());
  ASSERT_TRUE(survivor.status.ok());
  service.Cancel(doomed.ticket);
  service.Drain();

  // The cancelled-in-queue request skipped without consuming a single draw:
  // its neighbor still matches the offline reference at its OWN accepted
  // position, which would be impossible if streams shifted.
  const std::vector<AttackRequest> accepted = {f->requests[0], f->requests[1],
                                               f->requests[2]};
  const std::vector<AttackResult> reference =
      OfflineReference(f->ctx, inner, accepted, kBase, /*threads=*/1);

  const ServiceResult skipped = service.Take(doomed.ticket);
  EXPECT_EQ(skipped.result.status.code(), StatusCode::kSkipped)
      << skipped.result.status.ToString();
  EXPECT_EQ(skipped.attempts, 0);
  EXPECT_TRUE(skipped.result.added_edges.empty());

  const ServiceResult kept = service.Take(survivor.ticket);
  EXPECT_TRUE(kept.result.status.ok()) << kept.result.status.ToString();
  EXPECT_EQ(kept.attempts, 1);
  ExpectSameEdges(kept.result, reference[2], "survivor");

  const ServiceResult first = service.Take(slow.ticket);
  EXPECT_TRUE(first.result.status.ok()) << first.result.status.ToString();
  ExpectSameEdges(first.result, reference[0], "slow");

  EXPECT_EQ(service.stats().skipped, 1);
}

// ---------------------------------------------------------------------------
// Retry with backoff.
// ---------------------------------------------------------------------------

TEST(ServiceRetryTest, DeterministicFaultExhaustsAttemptsWithDistinctStreams) {
  Fixture* f = SharedFixture();
  const size_t n = f->requests.size();
  ASSERT_GE(n, 3u);
  const size_t poisoned = 2;
  const FgaAttack inner(/*targeted=*/true);
  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[poisoned].target_node, {FaultKind::kThrow, 0.0});

  const uint64_t kBase = 518;
  AttackServiceConfig cfg;
  cfg.base_seed = kBase;
  cfg.queue_capacity = 64;
  cfg.wave_size = 4;
  cfg.max_attempts = 3;
  cfg.retry_backoff_ms = 0.1;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&faulty),
                                    /*dense_context=*/true).ok());

  std::vector<int64_t> tickets;
  for (size_t i = 0; i < n; ++i) {
    AttackServiceRequest req;
    req.graph = "g";
    req.target_node = f->requests[i].target_node;
    req.target_label = f->requests[i].target_label;
    req.budget = f->requests[i].budget;
    const Admission a = service.Submit(req);
    ASSERT_TRUE(a.status.ok());
    tickets.push_back(a.ticket);
  }
  service.Drain();

  const std::vector<AttackResult> reference =
      OfflineReference(f->ctx, inner, f->requests, kBase, /*threads=*/2);
  for (size_t i = 0; i < n; ++i) {
    const ServiceResult r = service.Take(tickets[i]);
    const std::string where = "target " + std::to_string(i);
    if (i == poisoned) {
      // The fault is deterministic, so every attempt failed — but each
      // attempt drew from its own stream (a retry that replayed attempt
      // 0's draws would be guaranteed to reproduce a *seed-dependent*
      // failure, defeating the point of retrying).
      EXPECT_EQ(r.result.status.code(), StatusCode::kError) << where;
      EXPECT_EQ(r.attempts, 3) << where;
      EXPECT_EQ(r.seed, AttemptSeed(kBase, static_cast<int64_t>(i), 2))
          << where;
      EXPECT_NE(AttemptSeed(kBase, static_cast<int64_t>(i), 1),
                TargetSeed(kBase, static_cast<int64_t>(i)));
    } else {
      EXPECT_TRUE(r.result.status.ok())
          << where << ": " << r.result.status.ToString();
      EXPECT_EQ(r.attempts, 1) << where;
      ExpectSameEdges(r.result, reference[i], where);
    }
  }
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.retried, 2);
  EXPECT_EQ(st.failed, 1);
  EXPECT_EQ(st.completed_ok, static_cast<int64_t>(n) - 1);
}

TEST(ServiceRetryTest, TransientFaultRetriesToSuccessAndReplaysOffline) {
  Fixture* f = SharedFixture();
  const size_t n = f->requests.size();
  ASSERT_GE(n, 3u);
  const size_t flaky_pos = 1;
  const FgaAttack inner(/*targeted=*/true);
  const FlakyAttack flaky(&inner, f->requests[flaky_pos].target_node);

  const uint64_t kBase = 2027;
  AttackServiceConfig cfg;
  cfg.base_seed = kBase;
  cfg.queue_capacity = 64;
  cfg.wave_size = 4;
  cfg.max_attempts = 2;
  cfg.retry_backoff_ms = 0.1;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&flaky),
                                    /*dense_context=*/true).ok());

  std::vector<int64_t> tickets;
  for (size_t i = 0; i < n; ++i) {
    AttackServiceRequest req;
    req.graph = "g";
    req.target_node = f->requests[i].target_node;
    req.target_label = f->requests[i].target_label;
    req.budget = f->requests[i].budget;
    const Admission a = service.Submit(req);
    ASSERT_TRUE(a.status.ok());
    tickets.push_back(a.ticket);
  }
  service.Drain();

  const std::vector<AttackResult> reference =
      OfflineReference(f->ctx, inner, f->requests, kBase, /*threads=*/2);
  for (size_t i = 0; i < n; ++i) {
    const ServiceResult r = service.Take(tickets[i]);
    const std::string where = "target " + std::to_string(i);
    EXPECT_TRUE(r.result.status.ok())
        << where << ": " << r.result.status.ToString();
    if (i == flaky_pos) {
      // One transient failure, then success on the documented retry
      // stream; the recorded seed replays to the exact same picks offline.
      EXPECT_EQ(r.attempts, 2) << where;
      EXPECT_EQ(r.seed, AttemptSeed(kBase, static_cast<int64_t>(i), 1))
          << where;
      const AttackResult replay =
          ReplayOne(f->ctx, inner, f->requests[i].target_node,
                    f->requests[i].target_label, r);
      ASSERT_TRUE(replay.status.ok()) << replay.status.ToString();
      ExpectSameEdges(r.result, replay, where + " replay");
    } else {
      EXPECT_EQ(r.attempts, 1) << where;
      ExpectSameEdges(r.result, reference[i], where);
    }
  }
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.retried, 1);
  EXPECT_EQ(st.failed, 0);
  EXPECT_EQ(st.completed_ok, static_cast<int64_t>(n));
}

// ---------------------------------------------------------------------------
// Overload: shedding and degradation.
// ---------------------------------------------------------------------------

TEST(ServiceOverloadTest, ShedsLowestPriorityFirstSurvivorsIdentical) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 5u);
  const FgaAttack inner(/*targeted=*/true);
  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[0].target_node, {FaultKind::kDelay, 150.0});

  const uint64_t kBase = 903;
  AttackServiceConfig cfg;
  cfg.base_seed = kBase;
  cfg.queue_capacity = 16;
  cfg.wave_size = 4;
  cfg.shed_watermark = 4;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&faulty),
                                    /*dense_context=*/true).ok());

  AttackServiceRequest slow_req;
  slow_req.graph = "g";
  slow_req.target_node = f->requests[0].target_node;
  slow_req.target_label = f->requests[0].target_label;
  slow_req.budget = f->requests[0].budget;
  const Admission slow = service.Submit(slow_req);
  ASSERT_TRUE(slow.status.ok());
  WaitUntilWaveInFlight(service);

  // Six requests pile up behind the parked wave: two marked low priority
  // (shed first), four normal.  Watermark 4 means exactly two get shed.
  std::vector<int64_t> tickets;
  std::vector<AttackRequest> accepted = {f->requests[0]};
  for (int j = 0; j < 6; ++j) {
    const size_t pick =
        1 + static_cast<size_t>(j) % (f->requests.size() - 1);
    AttackServiceRequest req;
    req.graph = "g";
    req.target_node = f->requests[pick].target_node;
    req.target_label = f->requests[pick].target_label;
    req.budget = f->requests[pick].budget;
    req.priority = j < 2 ? -1 : 0;
    const Admission a = service.Submit(req);
    ASSERT_TRUE(a.status.ok());
    tickets.push_back(a.ticket);
    accepted.push_back({req.target_node, req.target_label, req.budget});
  }
  service.Drain();

  const std::vector<AttackResult> reference =
      OfflineReference(f->ctx, inner, accepted, kBase, /*threads=*/1);
  for (int j = 0; j < 6; ++j) {
    const ServiceResult r = service.Take(tickets[static_cast<size_t>(j)]);
    const std::string where = "queued " + std::to_string(j);
    if (j < 2) {
      // Shed — structured, never silently dropped, no stream consumed.
      EXPECT_EQ(r.result.status.code(), StatusCode::kResourceExhausted)
          << where << ": " << r.result.status.ToString();
      EXPECT_EQ(r.attempts, 0) << where;
      EXPECT_TRUE(r.result.added_edges.empty()) << where;
    } else {
      EXPECT_TRUE(r.result.status.ok())
          << where << ": " << r.result.status.ToString();
      // Survivors keep their own accepted-index streams: identical to the
      // offline reference that still includes the shed positions.
      ExpectSameEdges(r.result, reference[static_cast<size_t>(j) + 1], where);
    }
  }
  const ServiceResult first = service.Take(slow.ticket);
  EXPECT_TRUE(first.result.status.ok());
  ExpectSameEdges(first.result, reference[0], "slow");

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.shed, 2);
  EXPECT_EQ(st.completed_ok, 5);
}

TEST(ServiceOverloadTest, DegradedWavesCapBudgetAndReplayOffline) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 5u);
  const FgaAttack inner(/*targeted=*/true);
  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[0].target_node, {FaultKind::kDelay, 150.0});

  const uint64_t kBase = 6401;
  AttackServiceConfig cfg;
  cfg.base_seed = kBase;
  cfg.queue_capacity = 16;
  cfg.wave_size = 2;
  cfg.degrade_watermark = 2;
  cfg.degraded_budget_cap = 1;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&faulty),
                                    /*dense_context=*/true).ok());

  auto make_req = [&](size_t pick) {
    AttackServiceRequest req;
    req.graph = "g";
    req.target_node = f->requests[pick].target_node;
    req.target_label = f->requests[pick].target_label;
    req.budget = 2;  // Big enough for the degraded cap of 1 to bite.
    return req;
  };

  const Admission slow = service.Submit(make_req(0));
  ASSERT_TRUE(slow.status.ok());
  WaitUntilWaveInFlight(service);

  // Five requests queue up: two waves of two dispatch above the watermark
  // (degraded, budget capped to 1), the final singleton dispatches below it
  // (full budget).
  std::vector<int64_t> tickets;
  std::vector<size_t> picks;
  for (int j = 0; j < 5; ++j) {
    const size_t pick =
        1 + static_cast<size_t>(j) % (f->requests.size() - 1);
    const Admission a = service.Submit(make_req(pick));
    ASSERT_TRUE(a.status.ok());
    tickets.push_back(a.ticket);
    picks.push_back(pick);
  }
  service.Drain();

  int64_t capped = 0;
  for (size_t j = 0; j < tickets.size(); ++j) {
    const ServiceResult r = service.Take(tickets[j]);
    const std::string where = "queued " + std::to_string(j);
    ASSERT_TRUE(r.result.status.ok())
        << where << ": " << r.result.status.ToString();
    EXPECT_LE(static_cast<int64_t>(r.result.added_edges.size()),
              r.effective_budget)
        << where;
    if (r.effective_budget < 2) {
      EXPECT_EQ(r.effective_budget, 1) << where;
      ++capped;
    }
    // Degraded or not, the recorded (seed, effective budget) pair replays
    // offline to the exact same picks — degradation trades answer size,
    // never reproducibility.
    const AttackResult replay =
        ReplayOne(f->ctx, inner, f->requests[picks[j]].target_node,
                  f->requests[picks[j]].target_label, r);
    ASSERT_TRUE(replay.status.ok()) << replay.status.ToString();
    ExpectSameEdges(r.result, replay, where + " replay");
  }
  EXPECT_EQ(capped, 4);
  const ServiceResult first = service.Take(slow.ticket);
  EXPECT_TRUE(first.result.status.ok());
  EXPECT_EQ(first.effective_budget, 2);  // Dispatched below the watermark.
  EXPECT_EQ(service.stats().degraded_waves, 2);
}

// ---------------------------------------------------------------------------
// Lifecycle.
// ---------------------------------------------------------------------------

TEST(ServiceLifecycleTest, StopFinalizesQueuedAsStructuredRejection) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->requests.size(), 3u);
  const FgaAttack inner(/*targeted=*/true);
  FaultInjectingAttack faulty(&inner);
  faulty.InjectAt(f->requests[0].target_node, {FaultKind::kDelay, 150.0});

  AttackServiceConfig cfg;
  cfg.base_seed = 11;
  cfg.queue_capacity = 8;
  cfg.wave_size = 1;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&faulty),
                                    /*dense_context=*/true).ok());

  auto submit = [&](size_t i) {
    AttackServiceRequest req;
    req.graph = "g";
    req.target_node = f->requests[i].target_node;
    req.target_label = f->requests[i].target_label;
    req.budget = f->requests[i].budget;
    return service.Submit(req);
  };

  const Admission running = submit(0);
  ASSERT_TRUE(running.status.ok());
  WaitUntilWaveInFlight(service);
  const Admission q1 = submit(1);
  const Admission q2 = submit(2);
  ASSERT_TRUE(q1.status.ok());
  ASSERT_TRUE(q2.status.ok());
  service.Stop();

  // The in-flight wave completes normally; queued work is finalized with a
  // structured rejection so every Take() unblocks — nothing is dropped.
  EXPECT_TRUE(service.Take(running.ticket).result.status.ok());
  const ServiceResult r1 = service.Take(q1.ticket);
  const ServiceResult r2 = service.Take(q2.ticket);
  EXPECT_EQ(r1.result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r2.result.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(r1.attempts, 0);

  // Submissions after Stop are rejected, not queued into the void.
  EXPECT_EQ(submit(1).status.code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// The open-loop fault soak (the PR's headline robustness scenario).
// ---------------------------------------------------------------------------

TEST(ServiceSoakTest, OpenLoopFaultSoakLosesNothingAtAnyThreadCount) {
  Fixture* f = SharedFixture();
  const size_t num_targets = f->targets.size();
  ASSERT_GE(num_targets, 5u);
  const FgaAttack inner(/*targeted=*/true);
  const int64_t delay_node = f->requests[0].target_node;
  const int64_t flaky_node = f->requests[1].target_node;
  const int64_t throw_node = f->requests[2].target_node;
  const int64_t nan_node = f->requests[3].target_node;
  constexpr int kSubmissions = 40;

  for (int threads : {1, 2, 4}) {
    // Fresh fault chain per thread count (the flaky fault is one-shot).
    const FlakyAttack flaky(&inner, flaky_node);
    FaultInjectingAttack faulty(&flaky);
    faulty.InjectAt(delay_node, {FaultKind::kDelay, 20.0});
    faulty.InjectAt(throw_node, {FaultKind::kThrow, 0.0});
    faulty.InjectAt(nan_node, {FaultKind::kNaN, 0.0});

    const uint64_t base = 9000 + static_cast<uint64_t>(threads);
    AttackServiceConfig cfg;
    cfg.base_seed = base;
    cfg.num_threads = threads;
    cfg.queue_capacity = 6;
    cfg.wave_size = 4;
    cfg.max_attempts = 2;
    cfg.retry_backoff_ms = 0.2;
    AttackService service(cfg);
    ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&faulty),
                                    /*dense_context=*/true).ok());
    const std::string knobs = "threads=" + std::to_string(threads);

    // Open-loop submission: a fixed arrival schedule that does not wait for
    // completions.  The delay-node requests throttle the dispatcher far
    // below the offered rate, so the bounded queue must overflow and reject.
    struct Submitted {
      int64_t ticket = -1;
      size_t pick = 0;
      bool cancelled = false;
    };
    std::vector<Submitted> live;
    std::vector<AttackRequest> accepted;
    int64_t rejected = 0;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSubmissions; ++i) {
      const size_t pick = static_cast<size_t>(i) % num_targets;
      AttackServiceRequest req;
      req.graph = "g";
      req.target_node = f->requests[pick].target_node;
      req.target_label = f->requests[pick].target_label;
      req.budget = f->requests[pick].budget;
      const Admission a = service.Submit(req);
      if (a.status.ok()) {
        Submitted s;
        s.ticket = a.ticket;
        s.pick = pick;
        // Cancel a few clean-node submissions right away (never the fault
        // nodes — their outcomes are pinned below).
        if (i % 9 == 4 && pick >= 4) {
          service.Cancel(a.ticket);
          s.cancelled = true;
        }
        live.push_back(s);
        accepted.push_back(
            {req.target_node, req.target_label, req.budget});
      } else {
        EXPECT_EQ(a.status.code(), StatusCode::kResourceExhausted) << knobs;
        EXPECT_EQ(a.ticket, -1) << knobs;
        ++rejected;
      }
      // Pace arrivals at ~0.3 ms regardless of service progress.
      const auto next =
          start + std::chrono::microseconds(300) * (i + 1);
      while (std::chrono::steady_clock::now() < next)
        std::this_thread::yield();
    }
    service.Drain();

    ServiceStats st = service.stats();
    EXPECT_EQ(st.submitted, kSubmissions) << knobs;
    EXPECT_EQ(st.accepted, static_cast<int64_t>(accepted.size())) << knobs;
    EXPECT_GT(st.rejected_queue_full, 0) << knobs;
    EXPECT_EQ(st.rejected_queue_full, rejected) << knobs;
    EXPECT_EQ(st.queue_depth, 0) << knobs;
    EXPECT_EQ(st.in_flight, 0) << knobs;
    // Conservation: every accepted request reached exactly one terminal
    // bucket — nothing lost, nothing double-counted.
    EXPECT_EQ(st.accepted, st.completed_ok + st.failed + st.timed_out +
                               st.skipped + st.shed)
        << knobs;
    EXPECT_EQ(st.shed, 0) << knobs;  // Watermark disabled in this run.
    EXPECT_GE(st.retried, 1) << knobs;  // Throw/NaN/flaky all retry once.
    EXPECT_LE(st.max_queue_depth, cfg.queue_capacity) << knobs;

    // The offline reference strips the fault decorators: for every request
    // the service completed ok, the picks must match the plain attack run
    // at the same accepted position (or, for the retried flaky completion,
    // the recorded-seed replay).
    const std::vector<AttackResult> reference =
        OfflineReference(f->ctx, inner, accepted, base, threads);
    std::vector<bool> seen(accepted.size(), false);
    int64_t retried_ok = 0;
    for (const Submitted& s : live) {
      const ServiceResult r = service.Take(s.ticket);
      const std::string where =
          knobs + " ticket " + std::to_string(s.ticket);
      ASSERT_NE(r.result.status.code(), StatusCode::kNotFound) << where;
      ASSERT_GE(r.accepted_index, 0) << where;
      ASSERT_LT(r.accepted_index, static_cast<int64_t>(accepted.size()))
          << where;
      // No duplicated results: each accepted index is delivered once.
      EXPECT_FALSE(seen[static_cast<size_t>(r.accepted_index)]) << where;
      seen[static_cast<size_t>(r.accepted_index)] = true;

      const int64_t node = f->requests[s.pick].target_node;
      switch (r.result.status.code()) {
        case StatusCode::kOk:
          if (r.attempts <= 1) {
            EXPECT_EQ(r.seed, TargetSeed(base, r.accepted_index)) << where;
            ExpectSameEdges(
                r.result, reference[static_cast<size_t>(r.accepted_index)],
                where);
          } else {
            // Retry-to-success: only the flaky node's first call can do
            // this, and the recorded seed replays it exactly.
            EXPECT_EQ(node, flaky_node) << where;
            EXPECT_EQ(r.seed, AttemptSeed(base, r.accepted_index, 1))
                << where;
            const AttackResult replay = ReplayOne(
                f->ctx, inner, node, f->requests[s.pick].target_label, r);
            ASSERT_TRUE(replay.status.ok()) << where;
            ExpectSameEdges(r.result, replay, where + " replay");
            ++retried_ok;
          }
          break;
        case StatusCode::kError:
          // Deterministic faults exhaust both attempts and stay contained.
          EXPECT_TRUE(node == throw_node || node == nan_node) << where;
          EXPECT_EQ(r.attempts, cfg.max_attempts) << where;
          EXPECT_TRUE(r.result.added_edges.empty()) << where;
          break;
        case StatusCode::kSkipped:
          // Cancelled while queued: no attempt, no stream consumed.
          EXPECT_TRUE(s.cancelled) << where;
          EXPECT_EQ(r.attempts, 0) << where;
          EXPECT_TRUE(r.result.added_edges.empty()) << where;
          break;
        case StatusCode::kTimedOut:
          // Cancelled mid-run: partial picks are allowed but never
          // compared — the caller sees the structured code.
          EXPECT_TRUE(s.cancelled) << where;
          break;
        default:
          ADD_FAILURE() << where << ": unexpected terminal status "
                        << r.result.status.ToString();
      }
      // A ticket is consumable exactly once.
      EXPECT_EQ(service.Take(s.ticket).result.status.code(),
                StatusCode::kNotFound)
          << where;
    }
    // No lost results: every accepted index was delivered.
    EXPECT_EQ(std::count(seen.begin(), seen.end(), true),
              static_cast<int64_t>(accepted.size()))
        << knobs;
    EXPECT_LE(retried_ok, 1) << knobs;  // The flaky fault fires once.
  }
}

// ---------------------------------------------------------------------------
// The service-backed evaluation pipeline.
// ---------------------------------------------------------------------------

TEST(PipelineServiceTest, EvaluateAttackOnServiceMatchesDriverPath) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->targets.size(), 3u);
  const FgaAttack inner(/*targeted=*/true);
  GnnExplainerConfig icfg;
  icfg.epochs = 5;
  GnnExplainer inspector(f->model.get(), &f->data.features, icfg);

  // EvaluateAttack's driver path draws its base seed as the first engine
  // word of the caller's rng; give the service the same seed so the two
  // paths attack from identical streams.
  Rng probe(4242);
  const uint64_t base = probe.engine()();

  AttackServiceConfig scfg;
  scfg.base_seed = base;
  scfg.num_threads = 2;
  scfg.wave_size = 4;
  scfg.queue_capacity = 64;
  AttackService service(scfg);
  ASSERT_TRUE(service.RegisterGraph("snapshot-1", f->data, *f->model,
                                    NoOwn(&inner), /*dense_context=*/true).ok());

  EvalConfig ecfg;
  const JointAttackOutcome svc = EvaluateAttackOnService(
      f->ctx, &service, "snapshot-1", f->targets, inspector, ecfg);

  Rng rng(4242);
  EvalConfig dcfg;
  dcfg.attack_threads = 1;
  const JointAttackOutcome drv =
      EvaluateAttack(f->ctx, inner, f->targets, inspector, dcfg, &rng);

  EXPECT_EQ(svc.num_targets, drv.num_targets);
  EXPECT_EQ(svc.num_failed, drv.num_failed);
  EXPECT_EQ(svc.num_shed, 0);
  EXPECT_DOUBLE_EQ(svc.asr, drv.asr);
  EXPECT_DOUBLE_EQ(svc.asr_t, drv.asr_t);
  EXPECT_DOUBLE_EQ(svc.detection.precision, drv.detection.precision);
  EXPECT_DOUBLE_EQ(svc.detection.recall, drv.detection.recall);
  EXPECT_DOUBLE_EQ(svc.detection.f1, drv.detection.f1);
  EXPECT_DOUBLE_EQ(svc.detection.ndcg, drv.detection.ndcg);
}

// ---------------------------------------------------------------------------
// Shutdown races (the TSan job runs this binary under -fsanitize=thread).
// ---------------------------------------------------------------------------

TEST(ServiceRaceTest, StopRacesSubmitChurnAndTake) {
  Fixture* f = SharedFixture();
  const FgaAttack inner(/*targeted=*/true);
  AttackServiceConfig cfg;
  cfg.base_seed = 5077;
  cfg.num_threads = 2;
  cfg.wave_size = 2;
  cfg.queue_capacity = 16;
  AttackService service(cfg);
  ASSERT_TRUE(service.RegisterGraph("g", f->data, *f->model, NoOwn(&inner),
                                    /*dense_context=*/true).ok());

  // A chord the churner toggles on and off; any absent pair works.
  int64_t chord_u = -1;
  int64_t chord_v = -1;
  const int64_t n = f->data.num_nodes();
  for (int64_t u = 0; u < n && chord_u < 0; ++u)
    for (int64_t v = u + 1; v < n; ++v)
      if (!f->data.graph.HasEdge(u, v)) {
        chord_u = u;
        chord_v = v;
        break;
      }
  ASSERT_GE(chord_u, 0);

  std::mutex tickets_mu;
  std::vector<int64_t> tickets;
  std::atomic<bool> submit_done{false};

  std::thread submitter([&] {
    for (int i = 0; i < 48; ++i) {
      const AttackRequest& r =
          f->requests[static_cast<size_t>(i) % f->requests.size()];
      AttackServiceRequest req;
      req.graph = "g";
      req.target_node = r.target_node;
      req.target_label = r.target_label;
      req.budget = r.budget;
      const Admission a = service.Submit(req);
      if (a.status.ok()) {
        std::lock_guard<std::mutex> lock(tickets_mu);
        tickets.push_back(a.ticket);
      }
      std::this_thread::yield();
    }
    submit_done = true;
  });

  std::thread churner([&] {
    bool present = false;
    for (int i = 0; i < 24; ++i) {
      ChurnBatch batch;
      if (present)
        batch.removed.push_back({chord_u, chord_v, 1.0});
      else
        batch.added.push_back({chord_u, chord_v, 1.0});
      // Rejections (e.g. after Stop lands) are fine; only track the toggle
      // on acceptance so the next batch stays valid.
      const ChurnResult cr = service.UpdateGraph("g", batch);
      if (cr.status.ok()) present = !present;
      std::this_thread::yield();
    }
  });

  std::thread taker([&] {
    size_t taken = 0;
    for (;;) {
      int64_t ticket = -1;
      {
        std::lock_guard<std::mutex> lock(tickets_mu);
        if (taken < tickets.size()) ticket = tickets[taken];
      }
      if (ticket >= 0) {
        // Blocks until the ticket finalizes — post-Stop, queued entries
        // finalize as structured kResourceExhausted, so this always returns.
        const ServiceResult r = service.Take(ticket);
        EXPECT_NE(r.result.status.code(), StatusCode::kNotFound);
        ++taken;
        continue;
      }
      if (submit_done.load()) {
        std::lock_guard<std::mutex> lock(tickets_mu);
        if (taken >= tickets.size()) return;
        continue;
      }
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  service.Stop();
  submitter.join();
  churner.join();
  taker.join();

  // Quiescent now: the conservation identity must balance to the ticket.
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.queue_depth, 0);
  EXPECT_EQ(st.in_flight, 0);
  EXPECT_EQ(st.accepted, st.completed_ok + st.failed + st.timed_out +
                             st.skipped + st.shed + st.queue_depth +
                             st.in_flight);
  {
    std::lock_guard<std::mutex> lock(tickets_mu);
    EXPECT_LE(static_cast<int64_t>(tickets.size()), st.accepted);
  }
}

}  // namespace
}  // namespace geattack
