// Unit tests for the autodiff engine: op semantics, graph mechanics, and
// first/second-order differentiation on hand-computable cases.

#include "src/tensor/autodiff.h"

#include <cmath>

#include "gtest/gtest.h"
#include "src/tensor/random.h"
#include "src/tensor/tensor.h"

namespace geattack {
namespace {

TEST(AutodiffTest, LeafAndConstant) {
  Var x = Var::Leaf(Tensor::Scalar(3.0), true);
  EXPECT_TRUE(x.requires_grad());
  Var c = ConstantScalar(5.0);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_DOUBLE_EQ(c.value().scalar(), 5.0);
}

TEST(AutodiffTest, AddValues) {
  Var a = Constant(Tensor(1, 2, {1, 2}));
  Var b = Constant(Tensor(1, 2, {10, 20}));
  EXPECT_DOUBLE_EQ(Add(a, b).value().at(0, 1), 22);
}

TEST(AutodiffTest, AddBroadcastEitherSide) {
  Var a = Constant(Tensor(2, 2, {1, 2, 3, 4}));
  Var col = Constant(Tensor(2, 1, {10, 20}));
  // Broadcast operand second and first.
  EXPECT_DOUBLE_EQ(Add(a, col).value().at(1, 1), 24);
  EXPECT_DOUBLE_EQ(Add(col, a).value().at(1, 1), 24);
}

TEST(AutodiffTest, SimpleGradAdd) {
  Var x = Var::Leaf(Tensor::Scalar(3.0), true);
  Var y = Add(x, ConstantScalar(2.0));
  Tensor g = GradOne(y, x).value();
  EXPECT_DOUBLE_EQ(g.scalar(), 1.0);
}

TEST(AutodiffTest, GradMulByConstant) {
  Var x = Var::Leaf(Tensor::Scalar(3.0), true);
  Var y = Mul(x, ConstantScalar(4.0));
  EXPECT_DOUBLE_EQ(GradOne(y, x).value().scalar(), 4.0);
}

TEST(AutodiffTest, GradSquare) {
  Var x = Var::Leaf(Tensor::Scalar(3.0), true);
  Var y = Mul(x, x);
  EXPECT_DOUBLE_EQ(GradOne(y, x).value().scalar(), 6.0);
}

TEST(AutodiffTest, GradPolynomialChain) {
  // y = (2x + 1)^2 => dy/dx = 2*(2x+1)*2 = 8x + 4; at x=1.5 -> 16.
  Var x = Var::Leaf(Tensor::Scalar(1.5), true);
  Var t = AddScalar(MulScalar(x, 2.0), 1.0);
  Var y = Mul(t, t);
  EXPECT_DOUBLE_EQ(GradOne(y, x).value().scalar(), 16.0);
}

TEST(AutodiffTest, GradAccumulatesAcrossUses) {
  // y = x*a + x*b; dy/dx = a + b.
  Var x = Var::Leaf(Tensor::Scalar(2.0), true);
  Var y = Add(Mul(x, ConstantScalar(3.0)), Mul(x, ConstantScalar(4.0)));
  EXPECT_DOUBLE_EQ(GradOne(y, x).value().scalar(), 7.0);
}

TEST(AutodiffTest, GradUnusedInputIsZero) {
  Var x = Var::Leaf(Tensor::Scalar(2.0), true);
  Var z = Var::Leaf(Tensor(2, 3, 1.0), true);
  Var y = Mul(x, x);
  Tensor gz = GradOne(y, z).value();
  EXPECT_EQ(gz.rows(), 2);
  EXPECT_EQ(gz.cols(), 3);
  EXPECT_DOUBLE_EQ(gz.Norm(), 0.0);
}

TEST(AutodiffTest, GradMatMul) {
  // y = sum(A B). dy/dA = ones * B^T, dy/dB = A^T * ones.
  Tensor at(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor bt(3, 2, {1, 0, 0, 1, 1, 1});
  Var a = Var::Leaf(at, true);
  Var b = Var::Leaf(bt, true);
  Var y = Sum(MatMul(a, b));
  auto grads = Grad(y, {a, b});
  Tensor expected_ga = Tensor::Ones(2, 2).MatMul(bt.Transposed());
  Tensor expected_gb = at.Transposed().MatMul(Tensor::Ones(2, 2));
  EXPECT_LE(grads[0].value().MaxAbsDiff(expected_ga), 1e-12);
  EXPECT_LE(grads[1].value().MaxAbsDiff(expected_gb), 1e-12);
}

TEST(AutodiffTest, GradSigmoidAtZero) {
  Var x = Var::Leaf(Tensor::Scalar(0.0), true);
  Var y = Sigmoid(x);
  EXPECT_NEAR(GradOne(y, x).value().scalar(), 0.25, 1e-12);
}

TEST(AutodiffTest, GradReluMask) {
  Var x = Var::Leaf(Tensor(1, 3, {-1, 0.5, 2}), true);
  Var y = Sum(Relu(x));
  Tensor g = GradOne(y, x).value();
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.at(0, 2), 1.0);
}

TEST(AutodiffTest, GradExpLog) {
  Var x = Var::Leaf(Tensor::Scalar(2.0), true);
  EXPECT_NEAR(GradOne(Exp(x), x).value().scalar(), std::exp(2.0), 1e-12);
  EXPECT_NEAR(GradOne(Log(x), x).value().scalar(), 0.5, 1e-12);
}

TEST(AutodiffTest, GradPow) {
  Var x = Var::Leaf(Tensor::Scalar(4.0), true);
  // d/dx x^{-1/2} = -1/2 x^{-3/2} = -1/16.
  EXPECT_NEAR(GradOne(Pow(x, -0.5), x).value().scalar(), -1.0 / 16.0, 1e-12);
}

TEST(AutodiffTest, GradTransposeRoundTrip) {
  Var x = Var::Leaf(Tensor(2, 3, {1, 2, 3, 4, 5, 6}), true);
  Var y = Sum(Mul(Transpose(x), Transpose(x)));
  Tensor g = GradOne(y, x).value();
  // d/dx sum(x^2) = 2x regardless of transposition.
  EXPECT_LE(g.MaxAbsDiff(x.value().MulScalar(2.0)), 1e-12);
}

TEST(AutodiffTest, GradRowSumBroadcast) {
  // y = sum(x * rowsum(x)): exercised (n,1) broadcast in both directions.
  Var x = Var::Leaf(Tensor(2, 2, {1, 2, 3, 4}), true);
  Var y = Sum(Mul(x, RowSum(x)));
  // f = sum_i (sum_j x_ij)^2 -> df/dx_ij = 2 * rowsum_i.
  Tensor g = GradOne(y, x).value();
  EXPECT_DOUBLE_EQ(g.at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(g.at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(g.at(1, 0), 14.0);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 14.0);
}

TEST(AutodiffTest, AtAndScatter) {
  Var x = Var::Leaf(Tensor(2, 2, {1, 2, 3, 4}), true);
  Var y = At(x, 1, 0);
  EXPECT_DOUBLE_EQ(y.value().scalar(), 3.0);
  Tensor g = GradOne(y, x).value();
  EXPECT_DOUBLE_EQ(g.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(g.Sum(), 1.0);
}

TEST(AutodiffTest, SelectRowGrad) {
  Var x = Var::Leaf(Tensor(3, 2, {1, 2, 3, 4, 5, 6}), true);
  Var y = Sum(Mul(SelectRow(x, 1), SelectRow(x, 1)));
  Tensor g = GradOne(y, x).value();
  EXPECT_DOUBLE_EQ(g.at(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(g.at(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.at(2, 1), 0.0);
}

TEST(AutodiffTest, ScatterRowValue) {
  Var r = Constant(Tensor(1, 3, {7, 8, 9}));
  Var m = ScatterRow(r, 4, 2);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_DOUBLE_EQ(m.value().at(2, 1), 8.0);
  EXPECT_DOUBLE_EQ(m.value().Sum(), 24.0);
}

TEST(AutodiffTest, DetachStopsGradient) {
  Var x = Var::Leaf(Tensor::Scalar(3.0), true);
  Var y = Mul(Detach(Mul(x, x)), x);  // y = const(9) * x.
  EXPECT_DOUBLE_EQ(GradOne(y, x).value().scalar(), 9.0);
}

TEST(AutodiffTest, LogSoftmaxMatchesDirectComputation) {
  Tensor logits(2, 3, {1, 2, 3, -1, 0, 1});
  Var x = Constant(logits);
  Tensor ls = LogSoftmaxRows(x).value();
  for (int64_t i = 0; i < 2; ++i) {
    double denom = 0;
    for (int64_t j = 0; j < 3; ++j) denom += std::exp(logits.at(i, j));
    for (int64_t j = 0; j < 3; ++j)
      EXPECT_NEAR(ls.at(i, j), logits.at(i, j) - std::log(denom), 1e-12);
  }
}

TEST(AutodiffTest, LogSoftmaxStableForLargeLogits) {
  Var x = Constant(Tensor(1, 2, {1000.0, 999.0}));
  Tensor ls = LogSoftmaxRows(x).value();
  EXPECT_TRUE(ls.AllFinite());
  EXPECT_NEAR(std::exp(ls.at(0, 0)) + std::exp(ls.at(0, 1)), 1.0, 1e-9);
}

TEST(AutodiffTest, SoftmaxRowsSumToOne) {
  Rng rng(11);
  Var x = Constant(rng.NormalTensor(5, 4, 0, 3));
  Tensor sm = SoftmaxRows(x).value();
  Tensor rs = sm.RowSum();
  for (int64_t i = 0; i < 5; ++i) EXPECT_NEAR(rs.at(i, 0), 1.0, 1e-9);
}

TEST(AutodiffTest, NllRowGradIsSoftmaxMinusOneHot) {
  Tensor logits(1, 3, {0.5, 1.5, -0.5});
  Var x = Var::Leaf(logits, true);
  Var loss = NllRow(x, 0, 1);
  Tensor g = GradOne(loss, x).value();
  Tensor sm = Constant(logits).value();  // Compute softmax by hand.
  double denom = 0;
  for (int64_t j = 0; j < 3; ++j) denom += std::exp(logits.at(0, j));
  for (int64_t j = 0; j < 3; ++j) {
    double expected = std::exp(logits.at(0, j)) / denom - (j == 1 ? 1.0 : 0.0);
    EXPECT_NEAR(g.at(0, j), expected, 1e-10);
  }
}

TEST(AutodiffTest, SecondOrderCube) {
  // y = x^3: dy/dx = 3x^2, d2y/dx2 = 6x.
  Var x = Var::Leaf(Tensor::Scalar(2.0), true);
  Var y = Mul(Mul(x, x), x);
  Var g = GradOne(y, x, {.create_graph = true});
  EXPECT_DOUBLE_EQ(g.value().scalar(), 12.0);
  Var g2 = GradOne(g, x);
  EXPECT_DOUBLE_EQ(g2.value().scalar(), 12.0);  // 6x = 12.
}

TEST(AutodiffTest, ThirdOrder) {
  // y = x^4: y''' = 24x. Exercises grad-of-grad-of-grad.
  Var x = Var::Leaf(Tensor::Scalar(1.5), true);
  Var x2 = Mul(x, x);
  Var y = Mul(x2, x2);
  Var g1 = GradOne(y, x, {.create_graph = true});
  Var g2 = GradOne(g1, x, {.create_graph = true});
  Var g3 = GradOne(g2, x);
  EXPECT_NEAR(g3.value().scalar(), 24.0 * 1.5, 1e-9);
}

TEST(AutodiffTest, SecondOrderSigmoid) {
  // σ''(0) = σ'(0)(1-2σ(0)) = 0.25 * 0 = 0.
  Var x = Var::Leaf(Tensor::Scalar(0.0), true);
  Var y = Sigmoid(x);
  Var g = GradOne(y, x, {.create_graph = true});
  Var g2 = GradOne(g, x);
  EXPECT_NEAR(g2.value().scalar(), 0.0, 1e-12);
}

TEST(AutodiffTest, DetachedGradHasNoGraph) {
  Var x = Var::Leaf(Tensor::Scalar(3.0), true);
  Var y = Mul(x, x);
  Var g = GradOne(y, x, {.create_graph = false});
  EXPECT_FALSE(g.requires_grad());
}

TEST(AutodiffTest, GradWrtInteriorNode) {
  // z = x^2, y = 3z. dy/dz = 3 even though z is not a leaf.
  Var x = Var::Leaf(Tensor::Scalar(2.0), true);
  Var z = Mul(x, x);
  Var y = MulScalar(z, 3.0);
  EXPECT_DOUBLE_EQ(GradOne(y, z).value().scalar(), 3.0);
  EXPECT_DOUBLE_EQ(GradOne(y, x).value().scalar(), 12.0);
}

TEST(AutodiffTest, UnrolledGradientDescentDependsOnParameter) {
  // The GEAttack inner-loop structure in miniature: minimize
  // L(m, a) = (m - a)^2 by k gradient steps from m0, then differentiate the
  // final m_k with respect to a.  m_k = m0 (1-2η)^k + a (1 - (1-2η)^k), so
  // d m_k / d a = 1 - (1-2η)^k.
  const double eta = 0.1, m0 = 0.0, a0 = 5.0;
  const int k = 4;
  Var a = Var::Leaf(Tensor::Scalar(a0), true);
  Var m = Var::Leaf(Tensor::Scalar(m0), true);
  for (int t = 0; t < k; ++t) {
    Var diff = Sub(m, a);
    Var loss = Mul(diff, diff);
    Var gm = GradOne(loss, m, {.create_graph = true});
    m = Sub(m, MulScalar(gm, eta));
  }
  const double shrink = std::pow(1.0 - 2 * eta, k);
  EXPECT_NEAR(m.value().scalar(), m0 * shrink + a0 * (1 - shrink), 1e-12);
  Var dm_da = GradOne(m, a);
  EXPECT_NEAR(dm_da.value().scalar(), 1 - shrink, 1e-12);
}

TEST(AutodiffTest, NodeCountMonotone) {
  int64_t before = NodeCount();
  Var x = Var::Leaf(Tensor::Scalar(1.0), true);
  Var y = Mul(x, x);
  (void)y;
  EXPECT_GT(NodeCount(), before);
}

}  // namespace
}  // namespace geattack
