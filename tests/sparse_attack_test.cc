// Dense-vs-sparse agreement tests for the attack loops: the candidate-edge
// paths must pick the same adversarial edges (or reach the same attack loss
// within 1e-6) as the historical dense n x n relaxations, and the
// second-order candidate-value hypergradient must match finite differences.

#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "src/attack/fga.h"
#include "src/attack/ig_attack.h"
#include "src/attack/nettack.h"
#include "src/core/geattack.h"
#include "src/core/geattack_pg.h"
#include "src/eval/pipeline.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/generators.h"
#include "src/graph/subgraph.h"
#include "src/nn/sparse_forward.h"
#include "src/nn/trainer.h"
#include "tests/test_util.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
};

Fixture* SharedFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(321);
    CitationGraphConfig cfg;
    cfg.num_nodes = 90;
    cfg.num_edges = 240;
    cfg.num_classes = 3;
    cfg.feature_dim = 32;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    Split split = MakeSplit(f->data, 0.1, 0.1, &rng);
    TrainConfig tc;
    tc.epochs = 40;
    f->model = std::make_unique<Gcn>(TrainNewGcn(f->data, split, tc, &rng));
    f->ctx = MakeAttackContext(f->data, *f->model);
    Tensor logits = f->model->LogitsFromRaw(f->ctx.clean_adjacency,
                                            f->data.features);
    auto nodes = SelectTargetNodes(
        f->data, logits, split.test,
        {.top_margin = 2, .bottom_margin = 2, .random = 2}, &rng);
    f->targets = PrepareTargets(f->ctx, nodes, &rng);
    return f;
  }();
  return fixture;
}

void ExpectSameEdges(const AttackResult& a, const AttackResult& b,
                     const char* what) {
  ASSERT_EQ(a.added_edges.size(), b.added_edges.size()) << what;
  for (size_t i = 0; i < a.added_edges.size(); ++i)
    EXPECT_EQ(a.added_edges[i], b.added_edges[i]) << what << " edge " << i;
}

/// -log softmax(logits)[node, label] of the post-attack victim — the attack
/// loss both paths minimize; used as the agreement fallback metric.
double AttackLoss(const Fixture* f, const AttackResult& result,
                  int64_t node, int64_t label) {
  const Tensor logits = PerturbedLogits(f->ctx, result, /*sparse=*/true);
  double maxv = logits.at(node, 0);
  for (int64_t c = 1; c < logits.cols(); ++c)
    maxv = std::max(maxv, logits.at(node, c));
  double denom = 0.0;
  for (int64_t c = 0; c < logits.cols(); ++c)
    denom += std::exp(logits.at(node, c) - maxv);
  return -(logits.at(node, label) - maxv - std::log(denom));
}

TEST(SparseAttackEquivalenceTest, FgaTargetedPicksIdenticalEdges) {
  Fixture* f = SharedFixture();
  ASSERT_GE(f->targets.size(), 3u);
  const FgaAttack dense(/*targeted=*/true, /*use_sparse=*/false);
  const FgaAttack sparse(/*targeted=*/true, /*use_sparse=*/true);
  for (size_t i = 0; i < 3; ++i) {
    const PreparedTarget& t = f->targets[i];
    AttackRequest req{t.node, t.target_label, t.budget};
    Rng r1(1), r2(1);
    const AttackResult a = dense.Attack(f->ctx, req, &r1);
    const AttackResult b = sparse.Attack(f->ctx, req, &r2);
    ExpectSameEdges(a, b, "FGA-T");
    EXPECT_NEAR(AttackLoss(f, a, t.node, t.target_label),
                AttackLoss(f, b, t.node, t.target_label), 1e-6);
  }
}

TEST(SparseAttackEquivalenceTest, FgaUntargetedPicksIdenticalEdges) {
  Fixture* f = SharedFixture();
  const FgaAttack dense(/*targeted=*/false, /*use_sparse=*/false);
  const FgaAttack sparse(/*targeted=*/false, /*use_sparse=*/true);
  const PreparedTarget& t = f->targets[0];
  AttackRequest req{t.node, /*target_label=*/-1, t.budget};
  Rng r1(2), r2(2);
  ExpectSameEdges(dense.Attack(f->ctx, req, &r1),
                  sparse.Attack(f->ctx, req, &r2), "FGA");
}

TEST(SparseAttackEquivalenceTest, IgAttackPicksIdenticalEdges) {
  Fixture* f = SharedFixture();
  IgAttackConfig cfg;
  cfg.steps = 3;
  cfg.shortlist = 12;
  IgAttackConfig dense_cfg = cfg;
  dense_cfg.use_sparse = false;
  const IgAttack dense(dense_cfg);
  const IgAttack sparse(cfg);
  for (size_t i = 0; i < 2; ++i) {
    const PreparedTarget& t = f->targets[i];
    AttackRequest req{t.node, t.target_label, t.budget};
    Rng r1(3), r2(3);
    const AttackResult a = dense.Attack(f->ctx, req, &r1);
    const AttackResult b = sparse.Attack(f->ctx, req, &r2);
    ExpectSameEdges(a, b, "IG-Attack");
  }
}

TEST(SparseAttackEquivalenceTest, NettackPicksIdenticalEdges) {
  Fixture* f = SharedFixture();
  NettackConfig cfg;
  NettackConfig dense_cfg = cfg;
  dense_cfg.use_sparse = false;
  const Nettack dense(dense_cfg);
  const Nettack sparse(cfg);
  for (size_t i = 0; i < 3; ++i) {
    const PreparedTarget& t = f->targets[i];
    AttackRequest req{t.node, t.target_label, t.budget};
    Rng r1(4), r2(4);
    ExpectSameEdges(dense.Attack(f->ctx, req, &r1),
                    sparse.Attack(f->ctx, req, &r2), "Nettack");
  }
}

TEST(SparseAttackEquivalenceTest, GeAttackPicksIdenticalEdges) {
  // With mask_init_scale = 0 both paths are deterministic and the sparse
  // bilevel loop (per-edge mask, η/2 step, candidate penalty vector) is a
  // faithful re-parameterization of the dense one — identical greedy picks
  // and final attack loss.
  Fixture* f = SharedFixture();
  GeAttackConfig cfg;
  cfg.mask_init_scale = 0.0;
  cfg.inner_steps = 3;
  GeAttackConfig sparse_cfg = cfg;
  sparse_cfg.use_sparse = true;
  const GeAttack dense(cfg);
  const GeAttack sparse(sparse_cfg);
  for (size_t i = 0; i < 2; ++i) {
    const PreparedTarget& t = f->targets[i];
    AttackRequest req{t.node, t.target_label, t.budget};
    Rng r1(5), r2(5);
    const AttackResult a = dense.Attack(f->ctx, req, &r1);
    const AttackResult b = sparse.Attack(f->ctx, req, &r2);
    ExpectSameEdges(a, b, "GEAttack");
    EXPECT_NEAR(AttackLoss(f, a, t.node, t.target_label),
                AttackLoss(f, b, t.node, t.target_label), 1e-6);
  }
}

TEST(SparseAttackEquivalenceTest, GeAttackPgPicksIdenticalEdges) {
  Fixture* f = SharedFixture();
  PgExplainerConfig pg_cfg;
  pg_cfg.epochs = 8;
  PgExplainer pg(f->model.get(), &f->data.features, pg_cfg);
  std::vector<int64_t> instances;
  for (int64_t v = 0; v < 6; ++v) instances.push_back(v);
  const Tensor logits = f->model->LogitsFromRaw(f->ctx.clean_adjacency,
                                                f->data.features);
  pg.Train(f->ctx.clean_adjacency, instances, PredictLabels(logits));

  GeAttackPgConfig cfg;
  GeAttackPgConfig dense_cfg = cfg;
  dense_cfg.use_sparse = false;
  const GeAttackPg dense(&pg, dense_cfg);
  const GeAttackPg sparse(&pg, cfg);
  const PreparedTarget& t = f->targets[0];
  AttackRequest req{t.node, t.target_label, t.budget};
  Rng r1(6), r2(6);
  const AttackResult a = dense.Attack(f->ctx, req, &r1);
  const AttackResult b = sparse.Attack(f->ctx, req, &r2);
  ExpectSameEdges(a, b, "GEAttack-PG");
}

TEST(SparseAttackTest, RunsOnSparseOnlyContext) {
  // No dense clean adjacency at all: the candidate-edge paths must still
  // attack, and the result carries only the edge list.
  Fixture* f = SharedFixture();
  const AttackContext sparse_ctx =
      MakeSparseAttackContext(f->data, *f->model);
  const PreparedTarget& t = f->targets[0];
  AttackRequest req{t.node, t.target_label, t.budget};
  Rng rng(7);
  GeAttackConfig cfg;
  cfg.use_sparse = true;
  const AttackResult result = GeAttack(cfg).Attack(sparse_ctx, req, &rng);
  EXPECT_EQ(result.adjacency.rows(), 0);
  EXPECT_GE(result.added_edges.size(), 1u);
  for (const Edge& e : result.added_edges) {
    EXPECT_TRUE(e.u == t.node || e.v == t.node);
    EXPECT_FALSE(f->data.graph.HasEdge(e.u, e.v));
  }
  // The incremental eval path scores it without ever densifying.
  const Tensor logits = PerturbedLogits(sparse_ctx, result, /*sparse=*/true);
  EXPECT_EQ(logits.rows(), f->data.num_nodes());
}

TEST(SparseAttackTest, CandidateHypergradientMatchesFiniteDifferences) {
  // First-order check of the *hypergradient*: the outer objective contains
  // an inner mask-descent step, so d(total)/dw rides the second-order path
  // through SpMMValues (SpmmValueGrad of SpmmValueGrad).
  Fixture* f = SharedFixture();
  const Graph& g = f->data.graph;
  const int64_t v = f->targets[0].node;
  const int64_t label = f->targets[0].target_label;
  std::vector<int64_t> candidates;
  for (int64_t j = 0; j < g.num_nodes() && candidates.size() < 4; ++j)
    if (j != v && !g.HasEdge(v, j)) candidates.push_back(j);
  const SubgraphView view = BuildSubgraphView(g, v, 2, candidates);
  const SparseAttackForward sf = MakeSparseAttackForward(
      view, *f->model, f->data.features.MatMul(f->model->w1()));
  Rng rng(11);
  const Tensor mask0 =
      rng.NormalTensor(view.num_slots(), 1, 0.0, 0.05);

  auto fn = [&](const Var& w) -> Var {
    Var mu = Var::Leaf(mask0, /*requires_grad=*/true, "M0");
    for (int t = 0; t < 2; ++t) {
      Var a_und = UndirectedValuesFromCandidates(sf, w);
      Var masked = Mul(a_und, Sigmoid(mu));
      Var values = DirectedFromUndirected(sf, masked);
      Var inner = NllRow(SparseGcnLogitsVar(sf, values), view.target_local,
                         label);
      Var p = GradOne(inner, mu, {.create_graph = true});
      mu = Sub(mu, MulScalar(p, 0.15));
    }
    Var attack = NllRow(
        SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, w)),
        view.target_local, label);
    Var mu_cand = SpMM(view.cand_slot_take, mu);
    return Add(attack, MulScalar(Sum(mu_cand), 2.0));
  };
  Rng wr(13);
  const Tensor w0 = wr.UniformTensor(view.num_candidates(), 1, 0.2, 0.8);
  geattack::testing::ExpectGradientsMatch(fn, w0, 5e-5);
}

}  // namespace
}  // namespace geattack
