// Bit-identity suites for the graph-native protocol surfaces.
//
// Every dense overload in the explain/defend protocol is a reference
// adapter (`Graph::FromDense` + delegate) over the graph-native primary.
// These tests pin that contract: explainer rankings (weights AND tie-break
// order) and DefenseOutcomes must be exactly identical — not close — across
// the two surfaces, for all three explainers and both defense modes, on
// clean and attacked graphs.  If someone ever re-introduces a second dense
// implementation, the drift fails here first.

#include <algorithm>

#include "gtest/gtest.h"
#include "src/attack/fga.h"
#include "src/defense/inspector_defense.h"
#include "src/eval/pipeline.h"
#include "src/eval/protocol.h"
#include "src/explain/gnn_explainer.h"
#include "src/explain/grad_explainer.h"
#include "src/explain/pg_explainer.h"
#include "src/graph/generators.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct Fixture {
  GraphData data;
  Split split;
  Gcn model;
  AttackContext ctx;          // Dense + sparse.
  PreparedTarget target;      // One FGA-flippable victim.
  AttackResult attacked;      // FGA-T result at `target` (dense + edges).
  Graph perturbed;            // Clean graph + attacked.added_edges.
  int64_t predicted = -1;     // Post-attack prediction at the target.
};

Fixture* SharedFixture() {
  static Fixture* f = [] {
    Rng rng(11);
    CitationGraphConfig cfg;
    cfg.num_nodes = 120;
    cfg.num_edges = 320;
    cfg.num_classes = 3;
    cfg.feature_dim = 48;
    GraphData data =
        KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    Split split = MakeSplit(data, 0.1, 0.1, &rng);
    TrainConfig tc;
    tc.hidden_dim = 16;
    Gcn model = TrainNewGcn(data, split, tc, &rng);
    auto* fx = new Fixture{std::move(data),     std::move(split),
                           std::move(model),    AttackContext{},
                           PreparedTarget{},    AttackResult{},
                           Graph(0),            -1};
    fx->ctx = MakeAttackContext(fx->data, fx->model);

    const auto prepared = PrepareTargets(fx->ctx, fx->split.test, &rng);
    GEA_CHECK(!prepared.empty());
    fx->target = prepared.front();

    const FgaAttack fga(/*targeted=*/true);
    AttackRequest req{fx->target.node, fx->target.target_label,
                      fx->target.budget};
    Rng attack_rng(21);
    fx->attacked = fga.Attack(fx->ctx, req, &attack_rng);
    fx->perturbed = fx->data.graph;
    for (const Edge& e : fx->attacked.added_edges)
      fx->perturbed.AddEdge(e.u, e.v);
    fx->predicted = fx->model
                        .LogitsFromRaw(fx->attacked.adjacency,
                                       fx->data.features)
                        .ArgMaxRow(fx->target.node);
    return fx;
  }();
  return f;
}

/// Exact ranking equality: same edges in the same order with bitwise-equal
/// weights (ties included — the adapters must not even reorder ties).
void ExpectIdenticalRanking(const Explanation& a, const Explanation& b) {
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.label, b.label);
  ASSERT_EQ(a.ranked_edges.size(), b.ranked_edges.size());
  for (size_t i = 0; i < a.ranked_edges.size(); ++i) {
    EXPECT_EQ(a.ranked_edges[i].edge, b.ranked_edges[i].edge) << "rank " << i;
    EXPECT_EQ(a.ranked_edges[i].weight, b.ranked_edges[i].weight)
        << "rank " << i;
  }
}

void CheckExplainerBitIdentity(const Explainer& explainer) {
  Fixture* f = SharedFixture();
  // Clean graph, true label.
  ExpectIdenticalRanking(
      explainer.Explain(f->ctx.clean_adjacency, f->target.node,
                        f->target.true_label),
      explainer.Explain(f->data.graph, f->target.node, f->target.true_label));
  // Attacked graph, post-attack prediction (the §5.1 inspect step).
  ExpectIdenticalRanking(
      explainer.Explain(f->attacked.adjacency, f->target.node, f->predicted),
      explainer.Explain(f->perturbed, f->target.node, f->predicted));
}

TEST(ProtocolNativeTest, GnnExplainerDenseAdapterBitIdentical) {
  Fixture* f = SharedFixture();
  GnnExplainerConfig cfg;
  cfg.epochs = 60;
  CheckExplainerBitIdentity(GnnExplainer(&f->model, &f->data.features, cfg));
}

TEST(ProtocolNativeTest, PgExplainerDenseAdapterBitIdentical) {
  Fixture* f = SharedFixture();
  PgExplainerConfig cfg;
  cfg.epochs = 20;
  PgExplainer explainer(&f->model, &f->data.features, cfg);
  const Tensor logits =
      f->model.LogitsFromRaw(f->ctx.clean_adjacency, f->data.features);
  std::vector<int64_t> instances(
      f->split.train.begin(),
      f->split.train.begin() +
          std::min<ptrdiff_t>(12,
                              static_cast<ptrdiff_t>(f->split.train.size())));
  explainer.Train(f->data.graph, instances, PredictLabels(logits));
  CheckExplainerBitIdentity(explainer);
}

TEST(ProtocolNativeTest, GradExplainerDenseAdapterBitIdentical) {
  Fixture* f = SharedFixture();
  CheckExplainerBitIdentity(GradExplainer(&f->model, &f->data.features));
}

/// DefenseOutcome equality across the dense adapter and the graph-native
/// primary, on the attacked graph with the true adversarial edges known.
void CheckDefenseBitIdentity(const Explainer& explainer, bool iterative) {
  Fixture* f = SharedFixture();
  InspectorDefenseConfig cfg;
  cfg.prune_top = 3;
  cfg.iterative = iterative;

  const DefenseOutcome dense = InspectAndPrune(
      f->model, f->data.features, explainer, f->attacked.adjacency,
      f->target.node, cfg, &f->attacked.added_edges);
  const ProtocolContext pctx = MakeProtocolContext(f->ctx, explainer);
  const DefenseOutcome native =
      InspectAndPrune(pctx, f->perturbed, f->target.node, cfg,
                      &f->attacked.added_edges);

  EXPECT_EQ(dense.pruned_edges, native.pruned_edges);
  EXPECT_EQ(dense.prediction_before, native.prediction_before);
  EXPECT_EQ(dense.prediction_after, native.prediction_after);
  EXPECT_EQ(dense.true_adversarial_pruned, native.true_adversarial_pruned);
  // The dense adapter materializes the pruned adjacency; the graph-native
  // path never builds anything n x n.
  EXPECT_TRUE(native.pruned_adjacency.empty());
  ASSERT_FALSE(dense.pruned_adjacency.empty());
  for (const Edge& e : dense.pruned_edges) {
    EXPECT_EQ(dense.pruned_adjacency.at(e.u, e.v), 0.0);
    EXPECT_EQ(dense.pruned_adjacency.at(e.v, e.u), 0.0);
  }
}

TEST(ProtocolNativeTest, DefenseBitIdenticalGnnIterative) {
  Fixture* f = SharedFixture();
  GnnExplainerConfig cfg;
  cfg.epochs = 40;
  CheckDefenseBitIdentity(GnnExplainer(&f->model, &f->data.features, cfg),
                          /*iterative=*/true);
}

TEST(ProtocolNativeTest, DefenseBitIdenticalGnnOneShot) {
  Fixture* f = SharedFixture();
  GnnExplainerConfig cfg;
  cfg.epochs = 40;
  CheckDefenseBitIdentity(GnnExplainer(&f->model, &f->data.features, cfg),
                          /*iterative=*/false);
}

TEST(ProtocolNativeTest, DefenseBitIdenticalPgBothModes) {
  Fixture* f = SharedFixture();
  PgExplainerConfig cfg;
  cfg.epochs = 20;
  PgExplainer explainer(&f->model, &f->data.features, cfg);
  const Tensor logits =
      f->model.LogitsFromRaw(f->ctx.clean_adjacency, f->data.features);
  std::vector<int64_t> instances(
      f->split.train.begin(),
      f->split.train.begin() +
          std::min<ptrdiff_t>(12,
                              static_cast<ptrdiff_t>(f->split.train.size())));
  explainer.Train(f->data.graph, instances, PredictLabels(logits));
  CheckDefenseBitIdentity(explainer, /*iterative=*/true);
  CheckDefenseBitIdentity(explainer, /*iterative=*/false);
}

TEST(ProtocolNativeTest, DefenseBitIdenticalGradBothModes) {
  Fixture* f = SharedFixture();
  const GradExplainer explainer(&f->model, &f->data.features);
  CheckDefenseBitIdentity(explainer, /*iterative=*/true);
  CheckDefenseBitIdentity(explainer, /*iterative=*/false);
}

TEST(ProtocolNativeTest, PredictAtNodeMatchesFullForward) {
  Fixture* f = SharedFixture();
  const GradExplainer explainer(&f->model, &f->data.features);
  const ProtocolContext pctx = MakeProtocolContext(f->ctx, explainer);
  const Tensor full =
      f->model.LogitsFromGraph(f->data.graph, f->data.features);
  for (size_t i = 0; i < f->split.test.size() && i < 12; ++i) {
    const int64_t node = f->split.test[i];
    EXPECT_EQ(PredictAtNode(pctx, f->data.graph, node), full.ArgMaxRow(node))
        << "node " << node;
  }
  // And on the perturbed graph at the target.
  const Tensor perturbed_full =
      f->model.LogitsFromRaw(f->attacked.adjacency, f->data.features);
  EXPECT_EQ(PredictAtNode(pctx, f->perturbed, f->target.node),
            perturbed_full.ArgMaxRow(f->target.node));
}

TEST(ProtocolNativeTest, ProtocolContextSharesXw1Fold) {
  Fixture* f = SharedFixture();
  const GradExplainer explainer(&f->model, &f->data.features);
  const ProtocolContext pctx = MakeProtocolContext(f->ctx, explainer);
  const Tensor expected = f->data.features.MatMul(f->model.w1());
  EXPECT_EQ(pctx.xw1().MaxAbsDiff(expected), 0.0);
  // Copies share the cached fold (same underlying state).
  const ProtocolContext copy = pctx;
  EXPECT_EQ(&copy.xw1(), &pctx.xw1());
}

TEST(ProtocolNativeTest, EvaluateAttackDefendAggregates) {
  Fixture* f = SharedFixture();
  GnnExplainerConfig ecfg;
  ecfg.epochs = 40;
  const GnnExplainer explainer(&f->model, &f->data.features, ecfg);
  const FgaAttack fga(/*targeted=*/true);
  const auto targets =
      std::vector<PreparedTarget>{f->target};

  EvalConfig cfg;
  cfg.defend = true;
  cfg.defense.prune_top = 3;
  Rng rng(31);
  const JointAttackOutcome outcome =
      EvaluateAttack(f->ctx, fga, targets, explainer, cfg, &rng);
  EXPECT_EQ(outcome.num_targets, 1);
  EXPECT_GE(outcome.mean_pruned_edges, 0.0);
  EXPECT_LE(outcome.mean_true_adversarial_pruned, outcome.mean_pruned_edges);
  EXPECT_GE(outcome.defense_recovery, 0.0);
  EXPECT_LE(outcome.defense_recovery, 1.0);

  // The defend phase must not perturb the attack/detection numbers: same
  // seeds without defending give identical asr/detection.
  EvalConfig no_defend = cfg;
  no_defend.defend = false;
  Rng rng2(31);
  const JointAttackOutcome plain =
      EvaluateAttack(f->ctx, fga, targets, explainer, no_defend, &rng2);
  EXPECT_EQ(outcome.asr, plain.asr);
  EXPECT_EQ(outcome.asr_t, plain.asr_t);
  EXPECT_EQ(outcome.detection.ndcg, plain.detection.ndcg);
}

}  // namespace
}  // namespace geattack
