// Tests of the paper's core claims on the GEAttack implementation:
//   1. GEAttack attacks as successfully as the strongest baselines (ASR-T);
//   2. its adversarial edges are ranked lower by GNNExplainer than FGA-T's
//      (the joint-attack headline, Table 1);
//   3. λ = 0 degrades GEAttack to the pure graph attack of Eq. (4);
//   4. the hypergradient machinery matches the algorithmic spec.

#include "src/core/geattack.h"

#include <memory>

#include "gtest/gtest.h"
#include "src/attack/fga.h"
#include "src/core/geattack_pg.h"
#include "src/eval/pipeline.h"
#include "src/explain/gnn_explainer.h"
#include "src/explain/pg_explainer.h"
#include "src/graph/generators.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

struct JointFixture {
  GraphData data;
  Split split;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  std::vector<PreparedTarget> targets;
  Tensor clean_logits;
};

JointFixture* SharedFixture() {
  static JointFixture* fixture = [] {
    auto* f = new JointFixture();
    Rng rng(1234);
    CitationGraphConfig cfg;
    cfg.num_nodes = 160;
    cfg.num_edges = 420;
    cfg.num_classes = 3;
    cfg.feature_dim = 64;
    f->data = KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
    f->split = MakeSplit(f->data, 0.1, 0.1, &rng);
    f->model = std::make_unique<Gcn>(
        TrainNewGcn(f->data, f->split, TrainConfig{}, &rng));
    f->ctx = MakeAttackContext(f->data, *f->model);
    f->clean_logits = f->model->LogitsFromRaw(f->ctx.clean_adjacency,
                                              f->data.features);
    auto nodes = SelectTargetNodes(
        f->data, f->clean_logits, f->split.test,
        {.top_margin = 4, .bottom_margin = 4, .random = 4}, &rng);
    f->targets = PrepareTargets(f->ctx, nodes, &rng);
    return f;
  }();
  return fixture;
}

GnnExplainerConfig InspectorConfig() {
  GnnExplainerConfig cfg;
  cfg.epochs = 60;
  return cfg;
}

TEST(GeAttackTest, HighTargetedSuccessRate) {
  JointFixture* f = SharedFixture();
  ASSERT_GE(f->targets.size(), 5u);
  GeAttack attack;
  Rng rng(1);
  int64_t success = 0;
  for (const auto& t : f->targets) {
    AttackRequest req{t.node, t.target_label, t.budget};
    AttackResult result = attack.Attack(f->ctx, req, &rng);
    if (PredictsLabel(*f->model, result.adjacency, f->data.features, t.node,
                      t.target_label))
      ++success;
  }
  EXPECT_GE(static_cast<double>(success) /
                static_cast<double>(f->targets.size()),
            0.8);
}

TEST(GeAttackTest, LessDetectableThanFgaT) {
  // The headline joint-attack claim (Table 1): GEAttack's NDCG/F1 under the
  // GNNExplainer inspector is lower than FGA-T's.
  JointFixture* f = SharedFixture();
  GnnExplainer inspector(f->model.get(), &f->data.features,
                         InspectorConfig());
  EvalConfig eval;
  Rng rng(2);
  const JointAttackOutcome ge =
      EvaluateAttack(f->ctx, GeAttack(), f->targets, inspector, eval, &rng);
  Rng rng2(2);
  const JointAttackOutcome fga = EvaluateAttack(
      f->ctx, FgaAttack(/*targeted=*/true), f->targets, inspector, eval,
      &rng2);
  // Both attack well...
  EXPECT_GE(ge.asr_t, 0.8);
  EXPECT_GE(fga.asr_t, 0.8);
  // ...but GEAttack's edges are substantially harder to spot.
  EXPECT_LT(ge.detection.ndcg, fga.detection.ndcg);
  EXPECT_LT(ge.detection.f1, fga.detection.f1 + 1e-9);
}

TEST(GeAttackTest, LambdaZeroMatchesPureGraphAttackSelection) {
  // With λ = 0 the objective collapses to Eq. (4); edge choices should be
  // gradient-driven only and give the same ASR-T as FGA-T.
  JointFixture* f = SharedFixture();
  GeAttackConfig cfg;
  cfg.lambda = 0.0;
  GeAttack attack(cfg);
  Rng rng(3);
  int64_t success = 0;
  for (const auto& t : f->targets) {
    AttackRequest req{t.node, t.target_label, t.budget};
    AttackResult result = attack.Attack(f->ctx, req, &rng);
    if (PredictsLabel(*f->model, result.adjacency, f->data.features, t.node,
                      t.target_label))
      ++success;
  }
  EXPECT_GE(static_cast<double>(success) /
                static_cast<double>(f->targets.size()),
            0.8);
}

TEST(GeAttackTest, LargeLambdaReducesDetectionFurther) {
  // Fig. 4 trend: larger λ pushes detection down (possibly at some ASR
  // cost).  Compare a small-λ and a large-λ run on the same targets.
  JointFixture* f = SharedFixture();
  GnnExplainer inspector(f->model.get(), &f->data.features,
                         InspectorConfig());
  EvalConfig eval;
  GeAttackConfig small;
  small.lambda = 0.001;
  GeAttackConfig large;
  large.lambda = 200.0;
  Rng rng1(4), rng2(4);
  const auto lo =
      EvaluateAttack(f->ctx, GeAttack(small), f->targets, inspector, eval,
                     &rng1);
  const auto hi =
      EvaluateAttack(f->ctx, GeAttack(large), f->targets, inspector, eval,
                     &rng2);
  EXPECT_LE(hi.detection.ndcg, lo.detection.ndcg + 0.05);
}

TEST(GeAttackTest, BudgetZeroIsNoop) {
  JointFixture* f = SharedFixture();
  GeAttack attack;
  Rng rng(5);
  const auto& t = f->targets[0];
  AttackRequest req{t.node, t.target_label, /*budget=*/0};
  AttackResult result = attack.Attack(f->ctx, req, &rng);
  EXPECT_TRUE(result.added_edges.empty());
  EXPECT_LE(result.adjacency.MaxAbsDiff(f->ctx.clean_adjacency), 0.0);
}

TEST(GeAttackPgTest, AttacksAndEvadesPgExplainer) {
  // Table 2: the same bilevel scheme applies to PGExplainer.
  JointFixture* f = SharedFixture();
  PgExplainerConfig pg_cfg;
  pg_cfg.epochs = 15;
  PgExplainer pg(f->model.get(), &f->data.features, pg_cfg);
  std::vector<int64_t> instances(f->split.train.begin(),
                                 f->split.train.begin() + 8);
  pg.Train(f->ctx.clean_adjacency, instances,
           PredictLabels(f->clean_logits));

  EvalConfig eval;
  Rng rng1(6), rng2(6);
  const auto ge = EvaluateAttack(f->ctx, GeAttackPg(&pg), f->targets, pg,
                                 eval, &rng1);
  const auto fga = EvaluateAttack(f->ctx, FgaAttack(/*targeted=*/true),
                                  f->targets, pg, eval, &rng2);
  EXPECT_GE(ge.asr_t, 0.7);
  // GEAttack-PG should not be easier to catch than the explainer-oblivious
  // FGA-T under the PGExplainer inspector.
  EXPECT_LE(ge.detection.ndcg, fga.detection.ndcg + 0.05);
}

TEST(DetectionMetricsTest, PerfectAndEmptyCases) {
  Explanation e;
  e.ranked_edges = {{Edge(0, 1), 0.9}, {Edge(1, 2), 0.8}, {Edge(2, 3), 0.7}};
  // All adversarial edges at the top: recall 1, ndcg 1.
  DetectionMetrics d = ComputeDetection(e, {Edge(0, 1), Edge(1, 2)}, 20, 15);
  EXPECT_NEAR(d.recall, 1.0, 1e-12);
  EXPECT_NEAR(d.ndcg, 1.0, 1e-12);
  EXPECT_NEAR(d.precision, 2.0 / 15.0, 1e-12);
  // No adversarial edges: all zeros.
  DetectionMetrics zero = ComputeDetection(e, {}, 20, 15);
  EXPECT_EQ(zero.f1, 0.0);
  // Adversarial edge below the top-L cut is not detected.
  Explanation long_e;
  for (int i = 0; i < 30; ++i)
    long_e.ranked_edges.push_back({Edge(i, i + 1), 1.0 - 0.01 * i});
  DetectionMetrics cut = ComputeDetection(long_e, {Edge(29, 30)}, 20, 15);
  EXPECT_EQ(cut.recall, 0.0);
}

TEST(DetectionMetricsTest, RankPositionAffectsNdcgOnly) {
  Explanation top, bottom;
  for (int i = 0; i < 15; ++i) {
    top.ranked_edges.push_back({Edge(i, i + 1), 1.0 - 0.01 * i});
    bottom.ranked_edges.push_back({Edge(i, i + 1), 1.0 - 0.01 * i});
  }
  // Adversarial edge ranked 1st vs ranked 15th.
  DetectionMetrics d_top = ComputeDetection(top, {Edge(0, 1)}, 20, 15);
  DetectionMetrics d_bot = ComputeDetection(bottom, {Edge(14, 15)}, 20, 15);
  EXPECT_DOUBLE_EQ(d_top.precision, d_bot.precision);
  EXPECT_DOUBLE_EQ(d_top.recall, d_bot.recall);
  EXPECT_GT(d_top.ndcg, d_bot.ndcg);
}

TEST(RunningStatsTest, MeanAndStd) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.138089935299395, 1e-9);  // Sample stddev.
}

TEST(SelectTargetNodesTest, OnlyCorrectlyClassified) {
  JointFixture* f = SharedFixture();
  Rng rng(8);
  auto nodes = SelectTargetNodes(f->data, f->clean_logits, f->split.test,
                                 {.top_margin = 5, .bottom_margin = 5,
                                  .random = 5},
                                 &rng);
  EXPECT_LE(nodes.size(), 15u);
  for (int64_t node : nodes)
    EXPECT_EQ(f->clean_logits.ArgMaxRow(node), f->data.labels[ZU(node)]);
}

}  // namespace
}  // namespace geattack
