// Reproduces Figure 4: the λ trade-off between the graph attack and the
// GNNExplainer attack on CORA — ASR-T, F1@15, NDCG@15 as λ sweeps from
// "pure graph attack" to "pure explainer attack".
//
// λ grid note (DESIGN.md §4): gradient magnitudes scale inversely with
// graph size, so this reproduction's λ axis is shifted relative to the
// paper's {0.001 … 1000}; the *shape* — flat ASR-T until a knee, then a
// collapse, with detection decreasing in λ — is the reproduced result.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace geattack;
  using namespace geattack::bench;
  BenchKnobs knobs = BenchKnobs::FromEnv();
  // Figures default to a single seed (tables carry the ±std columns).
  knobs.seeds = EnvInt("GEATTACK_BENCH_SEEDS", 1);
  knobs.Describe(std::cout, "Figure 4 — effect of lambda on CORA");

  const std::vector<double> lambdas = {0.001, 0.01, 0.1, 0.5, 1.0,
                                       2.0,   5.0,  10.0, 20.0, 50.0};
  std::vector<MetricColumns> columns(lambdas.size());
  for (uint64_t seed = 0; seed < static_cast<uint64_t>(knobs.seeds); ++seed) {
    auto world =
        MakeWorld(DatasetId::kCora, knobs.scale, seed, knobs.targets);
    GnnExplainer inspector(world->model.get(), &world->data.features,
                           InspectorConfig(seed));
    for (size_t i = 0; i < lambdas.size(); ++i) {
      GeAttackConfig cfg;
      cfg.lambda = lambdas[i];
      GeAttack attack(cfg);
      Rng rng(seed * 11 + 1);
      columns[i].Add(EvaluateAttack(world->ctx, attack, world->targets,
                                    inspector, EvalConfig{}, &rng));
    }
  }

  TablePrinter table({"lambda", "ASR-T", "F1@15", "NDCG@15"});
  for (size_t i = 0; i < lambdas.size(); ++i) {
    table.AddRow({FormatDouble(lambdas[i], 3), columns[i].asr_t.Cell(),
                  columns[i].f1.Cell(), columns[i].ndcg.Cell()});
  }
  table.Print(std::cout);
  return 0;
}
