// Reproduces Figure 2: attack success rate (ASR) of Nettack by target-node
// degree on CITESEER and CORA (preliminary study, §3).

#include <iostream>

#include "bench/degree_sweep.h"

int main() {
  using namespace geattack;
  using namespace geattack::bench;
  BenchKnobs knobs = BenchKnobs::FromEnv();
  // Figures default to a single seed (tables carry the ±std columns).
  knobs.seeds = EnvInt("GEATTACK_BENCH_SEEDS", 1);
  knobs.Describe(std::cout, "Figure 2 — Nettack ASR by target degree");

  const int64_t max_degree = 5;
  for (DatasetId id : {DatasetId::kCiteseer, DatasetId::kCora}) {
    auto cells = NettackDegreeSweep(
        id, knobs, max_degree, /*per_degree=*/4,
        [](const World& w) -> std::unique_ptr<Explainer> {
          return std::make_unique<GnnExplainer>(
              w.model.get(), &w.data.features, InspectorConfig());
        });
    std::cout << "\n" << DatasetName(id) << "\n";
    TablePrinter table({"Degree", "Targets", "ASR"});
    for (const auto& c : cells) {
      table.AddRow({std::to_string(c.degree), std::to_string(c.num_targets),
                    FormatDouble(c.asr, 3)});
    }
    table.Print(std::cout);
  }
  return 0;
}
