// End-to-end attack-loop benchmark: dense n x n relaxation vs. the sparse
// candidate-edge path, per-target, for GEAttack (bilevel, hypergradient)
// and FGA-T (single-level gradient).  This is the perf-trajectory point for
// the attack stack, complementing bench_micro's kernel-level numbers.
//
//   ./bench_attack                 full harness; writes BENCH_attack.json
//                                  (override: --json=PATH).  Sizes
//                                  n ∈ {1k, 5k, 20k}; the 20k scenario
//                                  (override: GEATTACK_BENCH_ATTACK_LARGE_N)
//                                  is sparse-only — the dense bilevel loop
//                                  cannot even allocate there.
//   ./bench_attack --quick         CI-sized sizes (n ∈ {300, 800}), small
//                                  budgets; same JSON schema.
//
// Both modes end with a "scaling" section that runs the full §5.1 loop —
// attack → explain → defend — sparse end-to-end at 100k nodes (plus a 1M row
// in full mode, with save/load timing) under a DenseAllocGuard: any n×n
// tensor allocation sneaking back into the protocol aborts the bench, so
// the CI quick gate hard-fails dense regressions.  Rows record per-phase
// latency and process peak RSS.
//
// Each size also measures multi-target throughput (targets/sec) through the
// thread-pool driver: the serial (1-thread) driver vs GEATTACK_BENCH_ATTACK_
// THREADS workers (default 4) vs the batched task type
// (GEATTACK_BENCH_ATTACK_BATCH grouped targets per stacked task on
// GEATTACK_BENCH_ATTACK_BATCH_THREADS workers, defaults 2/2 — see the
// operating-point note in RunHarness), with a hard gate that both the
// parallel and the batched edge picks are identical to the serial ones.
//
// Both modes end with a dense-vs-sparse equivalence gate at the smallest
// size: FGA-T and GEAttack (mask_init_scale = 0) must each pick identical
// edges or reach the same final attack loss within 1e-6 (the loss fallback
// tolerates compiler-dependent roundoff flipping a near-tied argmin; the
// unit tests additionally pin identical picks on fixed seeds).  The process
// exits nonzero if either gate fails, so CI catches drift.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/attack/driver.h"
#include "src/service/attack_service.h"
#include "src/attack/fault_injection.h"
#include "src/attack/fga.h"
#include "src/core/geattack.h"
#include "src/defense/inspector_defense.h"
#include "src/eval/pipeline.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Scenario {
  GraphData data;
  Gcn model;
  AttackContext ctx;        // Dense + sparse, or sparse-only when large.
  PreparedTarget target;    // First prepared target (single-target rows).
  std::vector<PreparedTarget> targets;  // Multi-target throughput pool.
  bool dense_ok = false;
};

Scenario MakeScenario(int64_t n, bool dense_ok, int64_t feature_dim,
                      int64_t budget_cap, int64_t num_targets) {
  Rng rng(9000 + static_cast<uint64_t>(n));
  CitationGraphConfig cfg;
  cfg.num_nodes = n;
  cfg.num_edges = 3 * n;
  cfg.num_classes = 5;
  cfg.feature_dim = feature_dim;
  Scenario s{KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng)),
             Gcn({feature_dim, 16, 5}, &rng),
             AttackContext{},
             PreparedTarget{},
             {},
             dense_ok};
  Split split = MakeSplit(s.data, 0.1, 0.1, &rng);
  TrainConfig tc;
  tc.epochs = n >= 10000 ? 3 : (n >= 2000 ? 8 : 20);
  tc.patience = 0;
  s.model = TrainNewGcn(s.data, split, tc, &rng);
  s.ctx = dense_ok ? MakeAttackContext(s.data, s.model)
                   : MakeSparseAttackContext(s.data, s.model);

  // Targets: correctly-classified test nodes of degree >= 2 that the
  // untargeted FGA probe can flip (the paper's target-label protocol).
  const Tensor logits = s.model.LogitsFromGraph(s.data.graph,
                                                s.data.features);
  for (int64_t node : split.test) {
    if (static_cast<int64_t>(s.targets.size()) >= num_targets) break;
    if (s.data.graph.Degree(node) < 2) continue;
    if (logits.ArgMaxRow(node) != s.data.labels[ZU(node)]) continue;
    auto prepared = PrepareTargets(s.ctx, {node}, &rng, /*sparse=*/true);
    if (prepared.empty()) continue;
    prepared[0].budget = std::min(prepared[0].budget, budget_cap);
    s.targets.push_back(prepared[0]);
  }
  if (!s.targets.empty()) s.target = s.targets.front();
  return s;
}

struct TimedRun {
  double ms = -1.0;  // < 0: skipped (dense infeasible at this size).
  AttackResult result;
};

/// Best-of-`reps` timing (identical results each rep — attacks are
/// deterministic given the seed).  The cheap sparse configurations use
/// reps > 1 to shave scheduler noise; the dense references stay at 1 rep
/// because a single run already takes minutes.
TimedRun TimeAttack(const Scenario& s, const TargetedAttack& attack,
                    uint64_t seed, int reps = 1) {
  TimedRun run;
  AttackRequest req{s.target.node, s.target.target_label, s.target.budget};
  for (int r = 0; r < reps; ++r) {
    Rng rng(seed);
    const double t0 = NowMs();
    run.result = attack.Attack(s.ctx, req, &rng);
    const double elapsed = NowMs() - t0;
    if (r == 0 || elapsed < run.ms) run.ms = elapsed;
  }
  return run;
}

struct Row {
  int64_t n = 0;
  int64_t edges = 0;
  int64_t budget = 0;
  int64_t inner_steps = 0;  // 0 for FGA.
  double dense_ms = -1.0;
  double sparse_ms = 0.0;
};

struct EquivalenceRow {
  int64_t n = 0;
  std::string attack;
  bool identical_edges = false;
  double loss_delta = 0.0;
};

struct MultiTargetRow {
  int64_t n = 0;
  int64_t targets = 0;
  int threads = 0;
  double serial_ms = 0.0;    // Driver, num_threads = 1.
  double threaded_ms = 0.0;  // Driver, num_threads = threads.
  bool identical = false;    // Parallel picks == serial picks (gate).
  // Batched task type: num_threads = batched_threads, groups of
  // batch_targets through the stacked-RHS path.
  int batched_threads = 0;
  int batch_targets = 0;
  double batched_ms = 0.0;
  bool batched_identical = false;  // Batched picks == serial picks (gate).
  // Per-target statuses of the serial reference run — a healthy bench run
  // has zero of either (gated).
  int64_t failed = 0;
  int64_t timed_out = 0;
};

// Fault-containment gate: one poisoned-target pass and one
// deadline-limited pass through the driver; the faulted target must come
// back kError / kTimedOut and every survivor must keep the exact
// fault-free picks.
struct FaultRow {
  int64_t n = 0;
  int64_t targets = 0;
  bool poisoned_isolated = false;
  bool deadline_isolated = false;
};

int64_t CountStatus(const std::vector<AttackResult>& results,
                    StatusCode code) {
  int64_t count = 0;
  for (const AttackResult& r : results)
    if (r.status.code() == code) ++count;
  return count;
}

/// -log softmax[target_label] of the post-attack victim via the sparse
/// incremental eval path.
double FinalAttackLoss(const Scenario& s, const AttackResult& result) {
  const Tensor logits = PerturbedLogits(s.ctx, result, /*sparse=*/true);
  const int64_t v = s.target.node;
  double maxv = logits.at(v, 0);
  for (int64_t c = 1; c < logits.cols(); ++c)
    maxv = std::max(maxv, logits.at(v, c));
  double denom = 0.0;
  for (int64_t c = 0; c < logits.cols(); ++c)
    denom += std::exp(logits.at(v, c) - maxv);
  return -(logits.at(v, s.target.target_label) - maxv - std::log(denom));
}

bool SameEdges(const AttackResult& a, const AttackResult& b) {
  if (a.added_edges.size() != b.added_edges.size()) return false;
  for (size_t i = 0; i < a.added_edges.size(); ++i)
    if (!(a.added_edges[i] == b.added_edges[i])) return false;
  return true;
}

void WriteNullableMs(std::ostream& os, const char* key, double ms) {
  os << "\"" << key << "\":";
  if (ms < 0.0) {
    os << "null";
  } else {
    os << ms;
  }
}

void WriteRows(std::ostream& os, const std::vector<Row>& rows,
               bool with_inner) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"n\":" << r.n << ",\"edges\":" << r.edges
       << ",\"budget\":" << r.budget;
    if (with_inner) os << ",\"inner_steps\":" << r.inner_steps;
    os << ",";
    WriteNullableMs(os, "dense_ms", r.dense_ms);
    os << ",\"sparse_ms\":" << r.sparse_ms << ",";
    WriteNullableMs(os, "speedup",
                    r.dense_ms < 0.0 || r.sparse_ms <= 0.0
                        ? -1.0
                        : r.dense_ms / r.sparse_ms);
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
}

/// Process peak resident set (VmHWM) in MiB; -1 if /proc is unavailable.
double PeakRssMb() {
  std::ifstream st("/proc/self/status");
  std::string line;
  while (std::getline(st, line))
    if (line.rfind("VmHWM:", 0) == 0)
      return std::atof(line.c_str() + 6) / 1024.0;
  return -1.0;
}

// ---------------------------------------------------------------------------
// Service overload section: open-loop arrivals against the bounded-queue
// AttackService (src/service/attack_service.h) at offered loads of 0.5x /
// 1x / 2x / 4x the measured closed-loop capacity.  Each row records p50/p99
// latency, shed/reject counts and goodput — the degradation curve.  The 4x
// row is an overload burst and is CI-gated: the service must shed (bounded
// queue doing its job) AND every completed request's picks must be
// bit-identical to the offline driver over the accepted set in admission
// order (overload must degrade capacity, never correctness).
// ---------------------------------------------------------------------------

struct ServiceRow {
  double multiplier = 0.0;   // Offered load / measured capacity.
  double offered_tps = 0.0;
  int64_t submitted = 0;
  int64_t accepted = 0;
  int64_t rejected = 0;      // Admission rejects (queue full).
  int64_t shed = 0;          // Accepted, then shed by the dispatcher.
  int64_t retried = 0;
  int64_t completed = 0;
  double p50_ms = 0.0;       // Admission-to-finalize latency percentiles
  double p99_ms = 0.0;       // over completed requests.
  double wall_ms = 0.0;
  double goodput_tps = 0.0;  // Completed per second of wall clock.
  bool identical = true;     // Completed picks == offline reference (gate).
};

struct ServiceSection {
  int64_t n = 0;
  double capacity_tps = 0.0;
  int64_t queue_capacity = 0;
  int64_t shed_watermark = 0;
  std::vector<ServiceRow> rows;
  bool gate_ok = true;  // Stays true when the section is skipped.
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

ServiceSection RunServiceSection(const Scenario& s, bool quick) {
  ServiceSection section;
  section.n = s.data.num_nodes();
  section.queue_capacity = 8;
  section.shed_watermark = 6;
  const FgaAttack attack(/*targeted=*/true, /*use_sparse=*/true);
  const uint64_t base_seed = 7100;
  const int service_threads = 2;

  // Measured capacity: warm the shared context caches, then time a
  // closed-loop driver pass over the target pool.  The service cannot beat
  // its own engine, so offered load is set relative to this.
  std::vector<AttackRequest> pool;
  for (const PreparedTarget& t : s.targets)
    pool.push_back({t.node, t.target_label, t.budget});
  AttackDriverConfig closed_cfg;
  closed_cfg.num_threads = service_threads;
  closed_cfg.base_seed = base_seed;
  RunMultiTargetAttack(s.ctx, attack, pool, closed_cfg);  // Warmup.
  const double closed_t0 = NowMs();
  RunMultiTargetAttack(s.ctx, attack, pool, closed_cfg);
  const double closed_ms = NowMs() - closed_t0;
  section.capacity_tps =
      closed_ms > 0.0
          ? 1000.0 * static_cast<double>(pool.size()) / closed_ms
          : 1000.0;

  const int64_t num_requests = quick ? 32 : 64;
  for (const double multiplier : {0.5, 1.0, 2.0, 4.0}) {
    AttackServiceConfig cfg;
    cfg.base_seed = base_seed;
    cfg.num_threads = service_threads;
    cfg.queue_capacity = section.queue_capacity;
    cfg.wave_size = 4;
    cfg.max_attempts = 2;
    cfg.retry_backoff_ms = 1.0;
    cfg.shed_watermark = section.shed_watermark;
    AttackService service(cfg);
    GEA_CHECK(service
                  .RegisterGraph("bench", s.data, s.model,
                                 std::shared_ptr<const TargetedAttack>(
                                     std::shared_ptr<const TargetedAttack>(),
                                     &attack),
                                 s.dense_ok)
                  .ok());

    ServiceRow row;
    row.multiplier = multiplier;
    row.offered_tps = multiplier * section.capacity_tps;
    const double gap_ms =
        row.offered_tps > 0.0 ? 1000.0 / row.offered_tps : 0.0;
    // The 4x row is an overload BURST: it front-loads 2x the queue bound
    // back-to-back (the arrival pattern admission control exists for)
    // before settling into the sustained rate.  Sub-saturation rows pace
    // every arrival.
    const int64_t burst =
        multiplier >= 4.0 ? 2 * section.queue_capacity : 0;

    std::vector<int64_t> tickets;
    std::vector<AttackRequest> accepted_requests;  // Admission order.
    const double wall_t0 = NowMs();
    double next_submit = wall_t0;
    for (int64_t i = 0; i < num_requests; ++i) {
      if (i >= burst) {
        // Deadline-paced (not sleep-paced): sub-millisecond gaps stay
        // accurate, so the offered rate is what the row claims.
        next_submit += gap_ms;
        while (NowMs() < next_submit) std::this_thread::yield();
      }
      const PreparedTarget& t =
          s.targets[ZU(i) % s.targets.size()];
      AttackServiceRequest request;
      request.graph = "bench";
      request.target_node = t.node;
      request.target_label = t.target_label;
      request.budget = t.budget;
      ++row.submitted;
      const Admission admission = service.Submit(request);
      if (admission.status.ok()) {
        tickets.push_back(admission.ticket);
        accepted_requests.push_back({t.node, t.target_label, t.budget});
      } else {
        ++row.rejected;
      }
    }
    service.Drain();
    row.wall_ms = NowMs() - wall_t0;
    const ServiceStats stats = service.stats();
    row.accepted = stats.accepted;
    row.shed = stats.shed;
    row.retried = stats.retried;

    std::vector<ServiceResult> outcomes;
    outcomes.reserve(tickets.size());
    for (const int64_t ticket : tickets)
      outcomes.push_back(service.Take(ticket));

    // Offline reference: the accepted set in admission order under the
    // same base seed — accepted_index k IS driver position k, so the plain
    // driver replays every first-attempt stream (see AttemptSeed).
    const std::vector<AttackResult> reference =
        RunMultiTargetAttack(s.ctx, attack, accepted_requests, closed_cfg);

    std::vector<double> latencies;
    for (size_t k = 0; k < outcomes.size(); ++k) {
      const ServiceResult& r = outcomes[k];
      if (!r.result.status.ok()) continue;
      ++row.completed;
      latencies.push_back(r.latency_ms);
      if (r.attempts <= 1) {
        row.identical = row.identical && SameEdges(r.result, reference[k]);
      } else {
        // A retried completion ran on its documented per-attempt stream:
        // replay exactly that recorded seed offline.
        AttackDriverConfig retry_cfg;
        retry_cfg.num_threads = 1;
        retry_cfg.request_seeds = {r.seed};
        const std::vector<AttackResult> replay = RunMultiTargetAttack(
            s.ctx, attack, {accepted_requests[k]}, retry_cfg);
        row.identical = row.identical && SameEdges(r.result, replay[0]);
      }
    }
    row.p50_ms = Percentile(latencies, 0.5);
    row.p99_ms = Percentile(latencies, 0.99);
    row.goodput_tps = row.wall_ms > 0.0
                          ? 1000.0 * static_cast<double>(row.completed) /
                                row.wall_ms
                          : 0.0;

    section.gate_ok =
        section.gate_ok && row.identical && row.completed > 0;
    if (multiplier >= 4.0)
      section.gate_ok = section.gate_ok && row.shed > 0;
    std::cerr << "[bench_attack] service x" << multiplier << ": offered "
              << row.offered_tps << " tps, completed " << row.completed
              << ", rejected " << row.rejected << ", shed " << row.shed
              << ", p50 " << row.p50_ms << " ms, p99 " << row.p99_ms
              << " ms, identical=" << (row.identical ? "yes" : "NO")
              << "\n";
    section.rows.push_back(row);
  }
  std::cerr << "[bench_attack] service overload gate: "
            << (section.gate_ok ? "PASS" : "FAIL") << "\n";
  return section;
}

// ---------------------------------------------------------------------------
// Live-churn section: epoch maintenance cost and correctness under fire.
// Two measurements at the smallest size:
//
//   1. Maintenance micro: building epoch k+1 from epoch k via ApplyChurn
//      (incremental CSR flip + exact GcnRenormalizeAfterFlips) vs building
//      the same context from scratch, with a bit-equality gate between the
//      two — the incremental path must be faster AND byte-identical.
//   2. Service under churn: submissions interleaved with UpdateGraph
//      batches; every completed result is replayed offline on a fresh
//      context built for ITS recorded epoch and must match bit-for-bit
//      (churn must never blur which graph a result answered for).
//
// Both gates roll into the bench's overall equivalence_gate.
// ---------------------------------------------------------------------------

struct ChurnSection {
  int64_t n = 0;
  int64_t batch_edges = 0;
  int64_t rounds = 0;
  int64_t ball_hops = -1;        // Invalidation radius (-1 = bump all).
  double incremental_ms = 0.0;   // Sum of ApplyChurn epoch builds.
  double full_rebuild_ms = 0.0;  // Sum of from-scratch context builds.
  double speedup = 0.0;
  int64_t epochs = 0;
  int64_t bumped_targets = 0;  // Queued requests re-pinned across the run.
  int64_t completed = 0;
  bool gate_ok = true;  // Stays true when the section is skipped.
};

/// Deterministic churn plan: `rounds` batches of `batch_edges` absent
/// chords each, scanned in (u, v) order off a working copy so every batch
/// stays valid after the previous ones applied.
std::vector<ChurnBatch> PlanChurn(const Graph& graph, int64_t rounds,
                                  int64_t batch_edges) {
  Graph work = graph;
  std::vector<ChurnBatch> plan;
  int64_t u = 0;
  int64_t v = 1;
  for (int64_t r = 0; r < rounds; ++r) {
    ChurnBatch batch;
    while (static_cast<int64_t>(batch.added.size()) < batch_edges) {
      if (v >= work.num_nodes()) {
        ++u;
        v = u + 1;
      }
      GEA_CHECK(u < work.num_nodes() - 1);
      if (!work.HasEdge(u, v)) {
        batch.added.push_back({u, v, 1.0});
        work.AddEdge(u, v);
      }
      ++v;
    }
    plan.push_back(std::move(batch));
  }
  return plan;
}

ChurnSection RunChurnSection(const Scenario& s, bool quick) {
  ChurnSection sec;
  sec.n = s.data.num_nodes();
  sec.batch_edges = quick ? 8 : 16;
  sec.rounds = quick ? 3 : 6;
  const FgaAttack attack(/*targeted=*/true, /*use_sparse=*/true);
  const uint64_t base_seed = 7300;

  const std::vector<ChurnBatch> plan =
      PlanChurn(s.data.graph, sec.rounds, sec.batch_edges);

  // Epoch-k graphs, for the rebuild baseline and the per-epoch replay gate.
  std::vector<GraphData> epoch_data;
  epoch_data.push_back(s.data);
  for (const ChurnBatch& batch : plan) {
    GraphData next = epoch_data.back();
    for (const ChurnEdge& e : batch.added) next.graph.AddEdge(e.u, e.v);
    epoch_data.push_back(std::move(next));
  }
  const auto fresh_ctx = [&](int64_t epoch) {
    return s.dense_ok
               ? MakeAttackContext(epoch_data[ZU(epoch)], s.model)
               : MakeSparseAttackContext(epoch_data[ZU(epoch)], s.model);
  };

  // ----- Maintenance micro: incremental epoch vs from-scratch rebuild. ----
  auto snap = MakeGraphSnapshot(
      "bench", s.data, s.model,
      std::shared_ptr<const TargetedAttack>(
          std::shared_ptr<const TargetedAttack>(), &attack),
      s.dense_ok);
  for (int64_t r = 0; r < sec.rounds; ++r) {
    double t0 = NowMs();
    snap = ApplyChurn(snap, plan[ZU(r)]);
    sec.incremental_ms += NowMs() - t0;
    // Service-equivalent full rebuild: a snapshot owns its data, so the
    // baseline pays the same copy-then-flip ApplyChurn pays, then builds
    // the whole context from scratch instead of incrementally.
    t0 = NowMs();
    GraphData rebuilt = epoch_data[ZU(r)];
    for (const ChurnEdge& e : plan[ZU(r)].added)
      rebuilt.graph.AddEdge(e.u, e.v);
    for (const ChurnEdge& e : plan[ZU(r)].removed)
      rebuilt.graph.RemoveEdge(e.u, e.v);
    const AttackContext fresh =
        s.dense_ok ? MakeAttackContext(rebuilt, s.model)
                   : MakeSparseAttackContext(rebuilt, s.model);
    sec.full_rebuild_ms += NowMs() - t0;
    // The maintenance contract, re-checked at bench scale: the incremental
    // epoch is bit-identical to the fresh build (values AND structure).
    sec.gate_ok =
        sec.gate_ok &&
        snap->ctx.clean_norm_csr.values() == fresh.clean_norm_csr.values() &&
        snap->ctx.clean_csr.pattern()->col_idx ==
            fresh.clean_csr.pattern()->col_idx;
  }
  sec.epochs = snap->epoch;
  sec.speedup = sec.incremental_ms > 0.0
                    ? sec.full_rebuild_ms / sec.incremental_ms
                    : 0.0;

  // ----- The service under fire: submit, churn, repeat; per-epoch gate. ---
  AttackServiceConfig cfg;
  cfg.base_seed = base_seed;
  cfg.num_threads = 2;
  cfg.wave_size = 2;
  cfg.queue_capacity = 64;
  sec.ball_hops = cfg.churn_ball_hops;
  AttackService service(cfg);
  GEA_CHECK(service
                .RegisterGraph("bench", s.data, s.model,
                               std::shared_ptr<const TargetedAttack>(
                                   std::shared_ptr<const TargetedAttack>(),
                                   &attack),
                               s.dense_ok)
                .ok());

  const int64_t per_round = quick ? 4 : 8;
  std::vector<int64_t> tickets;
  std::vector<AttackRequest> submitted;
  for (int64_t r = 0; r < sec.rounds; ++r) {
    for (int64_t i = 0; i < per_round; ++i) {
      const PreparedTarget& t =
          s.targets[ZU(r * per_round + i) % s.targets.size()];
      AttackServiceRequest request;
      request.graph = "bench";
      request.target_node = t.node;
      request.target_label = t.target_label;
      request.budget = t.budget;
      const Admission admission = service.Submit(request);
      GEA_CHECK(admission.status.ok());
      tickets.push_back(admission.ticket);
      submitted.push_back({t.node, t.target_label, t.budget});
    }
    const ChurnResult cr = service.UpdateGraph("bench", plan[ZU(r)]);
    GEA_CHECK(cr.status.ok());
    sec.bumped_targets += cr.requeued;
  }
  service.Drain();

  std::map<int64_t, AttackContext> epoch_ctx;
  for (size_t k = 0; k < tickets.size(); ++k) {
    const ServiceResult r = service.Take(tickets[k]);
    if (!r.result.status.ok()) {
      sec.gate_ok = false;
      continue;
    }
    ++sec.completed;
    auto it = epoch_ctx.find(r.epoch);
    if (it == epoch_ctx.end())
      it = epoch_ctx.emplace(r.epoch, fresh_ctx(r.epoch)).first;
    // Replay the recorded final-attempt seed on a fresh context built for
    // the result's epoch: picks must match bit-for-bit.
    AttackDriverConfig replay_cfg;
    replay_cfg.num_threads = 1;
    replay_cfg.request_seeds = {r.seed};
    const std::vector<AttackResult> replay =
        RunMultiTargetAttack(it->second, attack, {submitted[k]}, replay_cfg);
    sec.gate_ok = sec.gate_ok && SameEdges(r.result, replay[0]);
  }
  std::cerr << "[bench_attack] churn: " << sec.rounds << " x "
            << sec.batch_edges << "-edge batches, incremental "
            << sec.incremental_ms << " ms vs rebuild " << sec.full_rebuild_ms
            << " ms (x" << sec.speedup << "), bumped " << sec.bumped_targets
            << " queued targets, per-epoch replay gate "
            << (sec.gate_ok ? "PASS" : "FAIL") << "\n";
  return sec;
}

// ---------------------------------------------------------------------------
// Hidden crash-recovery child (driven by tools/crash_harness.py): a
// deterministic submit → drain → churn script over a WAL-journaled service.
// The harness SIGKILLs this process at random points and relaunches it;
// every relaunch recovers from the journal, skips the already-durable
// prefix of the script, and runs only the remainder — so the published
// result file must be byte-identical to an uninterrupted run no matter
// where the kill landed.  Output is published atomically (tmp + rename):
// the harness never reads a torn file.
// ---------------------------------------------------------------------------

int RunCrashChild(const std::string& journal_path,
                  const std::string& out_path, uint64_t seed) {
  Scenario s = MakeScenario(160, /*dense_ok=*/false, /*feature_dim=*/32,
                            /*budget_cap=*/2, /*num_targets=*/6);
  GEA_CHECK(s.targets.size() >= 4);
  const size_t num_targets = s.targets.size();
  const FgaAttack attack(/*targeted=*/true, /*use_sparse=*/true);

  AttackServiceConfig cfg;
  cfg.base_seed = seed;
  cfg.num_threads = 1;
  cfg.wave_size = 2;
  cfg.queue_capacity = 64;
  cfg.max_attempts = 1;  // The byte-identity scope: no retries, no
                         // deadlines, no shedding (no clock bits).
  cfg.journal_path = journal_path;
  AttackService service(cfg);
  GEA_CHECK(service
                .RegisterGraph("g", s.data, s.model,
                               std::shared_ptr<const TargetedAttack>(
                                   std::shared_ptr<const TargetedAttack>(),
                                   &attack),
                               /*dense_context=*/false)
                .ok());
  const RecoveryReport rep = service.Recover();
  GEA_CHECK(rep.status.ok());
  // Every admission and every churn batch is fsync'd before its call
  // returns, so the durable prefix of the script is exactly what the WAL
  // says happened: skip it and run the rest.
  const size_t done_submits =
      rep.completed_tickets.size() + rep.pending_tickets.size();
  const int64_t done_churns = rep.churn_batches;

  const std::vector<ChurnBatch> plan = PlanChurn(s.data.graph, 2, 3);

  size_t next_submit = 0;
  int64_t next_churn = 0;
  const auto submit_step = [&] {
    const size_t i = next_submit++;
    if (i < done_submits) return;  // Durably admitted before the crash.
    const PreparedTarget& t = s.targets[i % s.targets.size()];
    AttackServiceRequest request;
    request.graph = "g";
    request.target_node = t.node;
    request.target_label = t.target_label;
    request.budget = t.budget;
    const Admission admission = service.Submit(request);
    GEA_CHECK(admission.status.ok());
    GEA_CHECK(admission.ticket == static_cast<int64_t>(i));
  };
  const auto churn_step = [&] {
    const int64_t j = next_churn++;
    if (j < done_churns) return;  // Epoch already rebuilt from the WAL.
    const ChurnResult cr = service.UpdateGraph("g", plan[ZU(j)]);
    GEA_CHECK(cr.status.ok());
  };

  // The script: half the targets on epoch 0, churn, the rest on epoch 1,
  // churn again so recovery must also restore a trailing epoch nobody
  // computed on.
  const size_t half = num_targets / 2;
  for (size_t i = 0; i < half; ++i) submit_step();
  service.Drain();
  churn_step();
  for (size_t i = half; i < num_targets; ++i) submit_step();
  service.Drain();
  churn_step();
  service.Drain();

  const std::string tmp_path = out_path + ".crash_tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    GEA_CHECK(out.good());
    for (size_t i = 0; i < num_targets; ++i) {
      const ServiceResult r = service.Take(static_cast<int64_t>(i));
      out << i << ' ' << r.accepted_index << ' ' << r.attempts << ' '
          << r.seed << ' ' << r.effective_budget << ' ' << r.epoch << ' '
          << static_cast<int>(r.result.status.code()) << ' '
          << r.result.added_edges.size();
      for (const Edge& e : r.result.added_edges)
        out << ' ' << e.u << ' ' << e.v;
      out << '\n';
    }
    GEA_CHECK(out.good());
  }
  GEA_CHECK(std::rename(tmp_path.c_str(), out_path.c_str()) == 0);
  std::cerr << "[bench_attack] crash child: " << num_targets
            << " tickets published (" << done_submits << " submits, "
            << done_churns << " churns recovered)\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Scaling section: the full §5.1 protocol — attack → explain → defend — at
// 100k (quick + full) and 1M (full) nodes, sparse end-to-end.  The protocol
// steps run under a DenseAllocGuard armed at 64·n elements: anything
// n-proportional (X·W₁ folds, logit columns) passes with a wide margin,
// while a single n×n tensor sneaking back into the loop aborts the bench —
// the CI quick gate hard-fails on dense regressions.

struct ScalingRow {
  int64_t n = 0;
  int64_t edges = 0;
  double generate_ms = 0.0;
  double train_ms = 0.0;
  double save_ms = -1.0;  // < 0: skipped.
  double load_ms = -1.0;
  double attack_ms = 0.0;
  double explain_ms = 0.0;
  double defend_ms = 0.0;  // Iterative inspector incl. RankIndex lookups.
  int64_t pruned_edges = 0;
  int64_t true_adversarial_pruned = 0;
  /// Largest single dense allocation (elements) observed while the guard
  /// was armed around the protocol steps.
  int64_t guard_largest_alloc = 0;
  double peak_rss_mb = -1.0;
  bool ok = false;
};

ScalingRow RunScalingRow(int64_t n, bool quick, bool io_round_trip) {
  ScalingRow row;
  Rng rng(77000 + static_cast<uint64_t>(n));
  CitationGraphConfig cfg;
  cfg.num_nodes = n;
  cfg.num_edges = 3 * n;
  cfg.num_classes = 5;
  cfg.feature_dim = 32;  // Bag-of-words stays sparse at bench scale.

  double t0 = NowMs();
  GraphData data =
      KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
  row.generate_ms = NowMs() - t0;
  row.n = data.num_nodes();
  row.edges = data.graph.num_edges();
  std::cerr << "[bench_attack] scaling n=" << row.n << " (" << row.edges
            << " edges): generated in " << row.generate_ms << " ms\n";

  Split split = MakeSplit(data, 0.1, 0.1, &rng);
  TrainConfig tc;
  tc.epochs = quick ? 2 : 3;
  tc.patience = 0;
  t0 = NowMs();
  Gcn model = TrainNewGcn(data, split, tc, &rng);
  row.train_ms = NowMs() - t0;

  if (io_round_trip) {
    const char* tmp = std::getenv("TMPDIR");
    const std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                             "/geattack_scaling_" + std::to_string(n) +
                             ".txt";
    t0 = NowMs();
    const bool saved = SaveGraphDataToFile(data, path).ok();
    row.save_ms = NowMs() - t0;
    GraphData loaded;
    t0 = NowMs();
    const bool load_ok = saved && LoadGraphDataFromFile(path, &loaded).ok();
    row.load_ms = NowMs() - t0;
    std::remove(path.c_str());
    if (!load_ok || loaded.graph.num_edges() != data.graph.num_edges() ||
        loaded.features.MaxAbsDiff(data.features) != 0.0) {
      std::cerr << "[bench_attack] scaling n=" << row.n
                << ": IO round-trip FAILED\n";
      return row;
    }
    std::cerr << "[bench_attack] scaling save " << row.save_ms << " ms, load "
              << row.load_ms << " ms\n";
  }

  AttackContext ctx = MakeSparseAttackContext(data, model);
  const Tensor logits = model.LogitsFromGraph(data.graph, data.features);
  PreparedTarget target;
  for (int64_t node : split.test) {
    if (data.graph.Degree(node) < 2) continue;
    if (logits.ArgMaxRow(node) != data.labels[ZU(node)]) continue;
    auto prepared = PrepareTargets(ctx, {node}, &rng, /*sparse=*/true);
    if (prepared.empty()) continue;
    prepared[0].budget = std::min<int64_t>(prepared[0].budget, 2);
    target = prepared[0];
    break;
  }
  if (target.node < 0) {
    std::cerr << "[bench_attack] scaling n=" << row.n
              << ": no flippable target\n";
    return row;
  }

  GnnExplainerConfig ecfg;
  ecfg.epochs = quick ? 30 : 100;
  const GnnExplainer explainer(&model, &data.features, ecfg);
  const ProtocolContext pctx = MakeProtocolContext(ctx, explainer);
  Graph work = data.graph;
  {
    // The whole per-target protocol runs inside the tripwire.
    DenseAllocGuard guard(64 * row.n);

    GeAttackConfig ge;
    ge.inner_steps = 2;
    ge.use_sparse = true;
    AttackRequest req{target.node, target.target_label, target.budget};
    Rng attack_rng(4242);
    t0 = NowMs();
    const AttackResult result = GeAttack(ge).Attack(ctx, req, &attack_rng);
    row.attack_ms = NowMs() - t0;

    for (const Edge& e : result.added_edges) work.AddEdge(e.u, e.v);
    t0 = NowMs();
    const int64_t predicted = PredictAtNode(pctx, work, target.node);
    const Explanation explanation =
        explainer.Explain(work, target.node, predicted);
    row.explain_ms = NowMs() - t0;
    (void)explanation;

    InspectorDefenseConfig dcfg;
    dcfg.prune_top = 2;
    dcfg.iterative = true;
    t0 = NowMs();
    const DefenseOutcome defense = InspectAndPruneInPlace(
        pctx, &work, target.node, dcfg, &result.added_edges);
    row.defend_ms = NowMs() - t0;
    row.pruned_edges = static_cast<int64_t>(defense.pruned_edges.size());
    row.true_adversarial_pruned = defense.true_adversarial_pruned;
    row.guard_largest_alloc = DenseAllocGuard::largest_observed();
  }
  row.peak_rss_mb = PeakRssMb();
  row.ok = true;
  std::cerr << "[bench_attack] scaling protocol: attack " << row.attack_ms
            << " ms, explain " << row.explain_ms << " ms, defend "
            << row.defend_ms << " ms (pruned " << row.pruned_edges << ", "
            << row.true_adversarial_pruned
            << " adversarial), largest dense alloc "
            << row.guard_largest_alloc << " elements, peak RSS "
            << row.peak_rss_mb << " MB\n";
  return row;
}

int RunHarness(const std::string& json_path, bool quick) {
  const int64_t large_n = [] {
    const char* v = std::getenv("GEATTACK_BENCH_ATTACK_LARGE_N");
    return (v != nullptr && std::atoll(v) > 0) ? std::atoll(v)
                                               : int64_t{20000};
  }();
  const std::vector<int64_t> sizes =
      quick ? std::vector<int64_t>{300, 800}
            : std::vector<int64_t>{1000, 5000, large_n};
  // Beyond this the dense bilevel loop's live autodiff graph (hundreds of
  // n x n tensors under create_graph) stops fitting in memory.
  const int64_t dense_max_n = quick ? 800 : 5000;
  const int64_t feature_dim = quick ? 64 : 128;
  const int64_t budget_cap = quick ? 2 : 3;
  const int64_t num_targets = quick ? 4 : 8;
  const int threads = [] {
    const char* v = std::getenv("GEATTACK_BENCH_ATTACK_THREADS");
    return (v != nullptr && std::atoi(v) > 0) ? std::atoi(v) : 4;
  }();
  // The batched row runs batch=2 on 2 workers in both modes: quick doubles
  // as the CI equivalence gate (hard-fail on any non-identical pick), and
  // on the single-core bench container pairs over a small pool is the
  // batched operating point that stays ahead of the 4-worker unbatched
  // pool (larger groups inflate the in-flight working set, which a single
  // core pays for in cache misses; real multi-core machines can raise
  // both knobs via the env overrides).
  const int batch_targets = [] {
    const char* v = std::getenv("GEATTACK_BENCH_ATTACK_BATCH");
    return (v != nullptr && std::atoi(v) > 0) ? std::atoi(v) : 2;
  }();
  const int batched_threads = [] {
    const char* v = std::getenv("GEATTACK_BENCH_ATTACK_BATCH_THREADS");
    return (v != nullptr && std::atoi(v) > 0) ? std::atoi(v) : 2;
  }();

  std::vector<Row> geattack_rows, fga_rows;
  std::vector<EquivalenceRow> equivalence;
  std::vector<MultiTargetRow> multi_rows;
  FaultRow fault_row;
  ServiceSection service_section;
  ChurnSection churn_section;
  bool gate_ok = true;

  for (int64_t n : sizes) {
    const bool dense_ok = n <= dense_max_n;
    std::cerr << "[bench_attack] n=" << n << ": building scenario...\n";
    Scenario s = MakeScenario(n, dense_ok, feature_dim, budget_cap,
                              num_targets);
    if (s.target.node < 0) {
      std::cerr << "[bench_attack] n=" << n << ": no flippable target\n";
      continue;
    }
    std::cerr << "[bench_attack] n=" << s.data.num_nodes() << " target "
              << s.target.node << " budget " << s.target.budget << "\n";

    GeAttackConfig ge;
    // T = 5 is affordable everywhere on the sparse path; the dense bilevel
    // graph at 5k only fits with a shallower inner loop, and the ratio is
    // measured at identical configs.
    ge.inner_steps = quick ? 2 : (n >= 2000 ? 2 : 5);
    GeAttackConfig ge_sparse = ge;
    ge_sparse.use_sparse = true;
    GeAttackConfig ge_dense = ge;
    ge_dense.use_sparse = false;

    Row grow;
    grow.n = s.data.num_nodes();
    grow.edges = s.data.graph.num_edges();
    grow.budget = s.target.budget;
    grow.inner_steps = ge.inner_steps;
    const int sparse_reps = quick ? 2 : (n >= 10000 ? 2 : 3);
    grow.sparse_ms = TimeAttack(s, GeAttack(ge_sparse), 101, sparse_reps).ms;
    std::cerr << "[bench_attack] GEAttack sparse " << grow.sparse_ms
              << " ms/target\n";
    if (dense_ok) {
      grow.dense_ms = TimeAttack(s, GeAttack(ge_dense), 101).ms;
      std::cerr << "[bench_attack] GEAttack dense " << grow.dense_ms
                << " ms/target\n";
    }
    geattack_rows.push_back(grow);

    Row frow;
    frow.n = grow.n;
    frow.edges = grow.edges;
    frow.budget = grow.budget;
    frow.sparse_ms =
        TimeAttack(s, FgaAttack(true, /*use_sparse=*/true), 102,
                   sparse_reps).ms;
    std::cerr << "[bench_attack] FGA-T sparse " << frow.sparse_ms
              << " ms/target\n";
    if (dense_ok) {
      frow.dense_ms =
          TimeAttack(s, FgaAttack(true, /*use_sparse=*/false), 102).ms;
      std::cerr << "[bench_attack] FGA-T dense " << frow.dense_ms
                << " ms/target\n";
    }
    fga_rows.push_back(frow);

    // ----- Multi-target throughput: serial driver vs thread pool, same
    // seeds, identical-picks gate. -----
    if (static_cast<int64_t>(s.targets.size()) >= 2) {
      const GeAttack mt_attack(ge_sparse);
      std::vector<AttackRequest> requests;
      for (const PreparedTarget& t : s.targets)
        requests.push_back({t.node, t.target_label, t.budget});

      MultiTargetRow mrow;
      mrow.n = grow.n;
      mrow.targets = static_cast<int64_t>(requests.size());
      mrow.threads = threads;
      // Best-of-2 timing per mode (results are deterministic, so reps are
      // identical) — single-shot multi-target walls on the shared bench
      // host swing by ~10%, more than the batched-vs-threaded margins.
      const int mt_reps = 2;
      auto timed = [&](const AttackDriverConfig& cfg,
                       std::vector<AttackResult>* out) {
        double best = -1.0;
        for (int r = 0; r < mt_reps; ++r) {
          const double t0 = NowMs();
          *out = RunMultiTargetAttack(s.ctx, mt_attack, requests, cfg);
          const double elapsed = NowMs() - t0;
          if (best < 0.0 || elapsed < best) best = elapsed;
        }
        return best;
      };
      AttackDriverConfig serial_cfg;
      serial_cfg.num_threads = 1;
      serial_cfg.base_seed = 909;
      std::vector<AttackResult> serial;
      mrow.serial_ms = timed(serial_cfg, &serial);
      mrow.failed = CountStatus(serial, StatusCode::kError) +
                    CountStatus(serial, StatusCode::kInvalidArgument);
      mrow.timed_out = CountStatus(serial, StatusCode::kTimedOut);
      gate_ok = gate_ok && mrow.failed == 0 && mrow.timed_out == 0;
      AttackDriverConfig par_cfg = serial_cfg;
      par_cfg.num_threads = threads;
      std::vector<AttackResult> parallel;
      mrow.threaded_ms = timed(par_cfg, &parallel);
      mrow.identical = serial.size() == parallel.size();
      for (size_t i = 0; mrow.identical && i < serial.size(); ++i)
        mrow.identical = SameEdges(serial[i], parallel[i]);
      gate_ok = gate_ok && mrow.identical;

      // Batched task type: shared BatchedSubgraphView + stacked-RHS scoring
      // per group, same per-target streams — picks must stay identical.
      AttackDriverConfig batched_cfg = serial_cfg;
      batched_cfg.num_threads = batched_threads;
      batched_cfg.batch_targets = batch_targets;
      mrow.batched_threads = batched_threads;
      mrow.batch_targets = batch_targets;
      std::vector<AttackResult> batched;
      mrow.batched_ms = timed(batched_cfg, &batched);
      mrow.batched_identical = serial.size() == batched.size();
      for (size_t i = 0; mrow.batched_identical && i < serial.size(); ++i)
        mrow.batched_identical = SameEdges(serial[i], batched[i]);
      gate_ok = gate_ok && mrow.batched_identical;

      std::cerr << "[bench_attack] multi-target GEAttack x" << mrow.targets
                << ": serial " << mrow.serial_ms << " ms, " << threads
                << " threads " << mrow.threaded_ms << " ms, batched("
                << batched_threads << "t x" << batch_targets << ") "
                << mrow.batched_ms << " ms, identical="
                << (mrow.identical ? "yes" : "NO") << "/"
                << (mrow.batched_identical ? "yes" : "NO") << "\n";
      multi_rows.push_back(mrow);
    }

    // ----- Equivalence gate at the smallest size. -----
    if (n == sizes.front()) {
      {
        EquivalenceRow row;
        row.n = grow.n;
        row.attack = "FGA-T";
        const TimedRun a = TimeAttack(s, FgaAttack(true, false), 103);
        const TimedRun b = TimeAttack(s, FgaAttack(true, true), 103);
        row.identical_edges = SameEdges(a.result, b.result);
        row.loss_delta = std::abs(FinalAttackLoss(s, a.result) -
                                  FinalAttackLoss(s, b.result));
        gate_ok = gate_ok && (row.identical_edges || row.loss_delta < 1e-6);
        equivalence.push_back(row);
      }
      {
        EquivalenceRow row;
        row.n = grow.n;
        row.attack = "GEAttack";
        GeAttackConfig eq = ge;
        eq.mask_init_scale = 0.0;  // Both paths deterministic + comparable.
        GeAttackConfig eq_sparse = eq;
        eq_sparse.use_sparse = true;
        eq.use_sparse = false;
        const TimedRun a = TimeAttack(s, GeAttack(eq), 104);
        const TimedRun b = TimeAttack(s, GeAttack(eq_sparse), 104);
        row.identical_edges = SameEdges(a.result, b.result);
        row.loss_delta = std::abs(FinalAttackLoss(s, a.result) -
                                  FinalAttackLoss(s, b.result));
        gate_ok = gate_ok && (row.identical_edges || row.loss_delta < 1e-6);
        equivalence.push_back(row);
      }
      std::cerr << "[bench_attack] equivalence gate: "
                << (gate_ok ? "PASS" : "FAIL") << "\n";
    }

    // ----- Fault-containment gate at the smallest size: survivors of a
    // poisoned target and of a deadline-limited stall must keep the exact
    // fault-free picks (the driver's isolation contract, hard-gated). -----
    if (n == sizes.front() && s.targets.size() >= 2) {
      const FgaAttack ft_attack(/*targeted=*/true, /*use_sparse=*/true);
      std::vector<AttackRequest> requests;
      for (const PreparedTarget& t : s.targets)
        requests.push_back({t.node, t.target_label, t.budget});
      AttackDriverConfig cfg;
      cfg.base_seed = 909;
      cfg.num_threads = 2;
      const std::vector<AttackResult> clean =
          RunMultiTargetAttack(s.ctx, ft_attack, requests, cfg);

      fault_row.n = grow.n;
      fault_row.targets = static_cast<int64_t>(requests.size());
      const size_t mid = requests.size() / 2;
      auto survivors_identical = [&](const std::vector<AttackResult>& got,
                                     StatusCode expect_mid) {
        if (got.size() != clean.size()) return false;
        if (got[mid].status.code() != expect_mid) return false;
        for (size_t i = 0; i < got.size(); ++i) {
          if (i == mid) continue;
          if (!got[i].status.ok() || !SameEdges(got[i], clean[i]))
            return false;
        }
        return true;
      };

      FaultInjectingAttack poisoned(&ft_attack);
      poisoned.InjectAt(requests[mid].target_node,
                        {FaultKind::kThrow, 0.0});
      fault_row.poisoned_isolated = survivors_identical(
          RunMultiTargetAttack(s.ctx, poisoned, requests, cfg),
          StatusCode::kError);

      FaultInjectingAttack stalled(&ft_attack);
      stalled.InjectAt(requests[mid].target_node,
                       {FaultKind::kDelay, 300.0});
      AttackDriverConfig deadline_cfg = cfg;
      deadline_cfg.target_deadline_ms = 60.0;
      fault_row.deadline_isolated = survivors_identical(
          RunMultiTargetAttack(s.ctx, stalled, requests, deadline_cfg),
          StatusCode::kTimedOut);

      gate_ok = gate_ok && fault_row.poisoned_isolated &&
                fault_row.deadline_isolated;
      std::cerr << "[bench_attack] fault-containment gate: poisoned "
                << (fault_row.poisoned_isolated ? "PASS" : "FAIL")
                << ", deadline "
                << (fault_row.deadline_isolated ? "PASS" : "FAIL") << "\n";
    }

    // ----- Service overload section at the smallest size: open-loop
    // arrivals, degradation curve, 4x-burst gate (shed > 0, completed
    // picks identical to the offline driver). -----
    if (n == sizes.front() && s.targets.size() >= 2) {
      service_section = RunServiceSection(s, quick);
      gate_ok = gate_ok && service_section.gate_ok;

      // ----- Live-churn section: epoch maintenance micro + service under
      // interleaved churn, per-epoch bit-identity gates. -----
      churn_section = RunChurnSection(s, quick);
      gate_ok = gate_ok && churn_section.gate_ok;
    }
  }

  // ----- Scaling: the sparse protocol at 100k (quick + full) and 1M
  // (full only), dense-alloc-guarded. -----
  std::vector<ScalingRow> scaling;
  {
    std::vector<int64_t> scaling_sizes{100000};
    if (!quick) scaling_sizes.push_back(1000000);
    for (int64_t sn : scaling_sizes) {
      scaling.push_back(RunScalingRow(sn, quick, /*io_round_trip=*/true));
      gate_ok = gate_ok && scaling.back().ok;
    }
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot open " << json_path << " for writing\n";
    return 1;
  }
  out << "{\n  \"bench\": \"attack\",\n  \"openmp\": "
#ifdef _OPENMP
      << "true"
#else
      << "false"
#endif
      << ",\n  \"quick\": " << (quick ? "true" : "false")
      << ",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"attack_threads\": " << threads
      << ",\n  \"geattack_per_target\": [\n";
  WriteRows(out, geattack_rows, /*with_inner=*/true);
  out << "  ],\n  \"fga_per_target\": [\n";
  WriteRows(out, fga_rows, /*with_inner=*/false);
  out << "  ],\n  \"multi_target\": [\n";
  for (size_t i = 0; i < multi_rows.size(); ++i) {
    const MultiTargetRow& m = multi_rows[i];
    const double t = static_cast<double>(m.targets);
    const double serial_tps =
        m.serial_ms > 0.0 ? 1000.0 * t / m.serial_ms : 0.0;
    const double threaded_tps =
        m.threaded_ms > 0.0 ? 1000.0 * t / m.threaded_ms : 0.0;
    out << "    {\"n\":" << m.n << ",\"targets\":" << m.targets
        << ",\"threads\":" << m.threads << ",\"serial_ms\":" << m.serial_ms
        << ",\"threaded_ms\":" << m.threaded_ms
        << ",\"serial_targets_per_sec\":" << serial_tps
        << ",\"threaded_targets_per_sec\":" << threaded_tps
        << ",\"speedup\":"
        << (m.threaded_ms > 0.0 ? m.serial_ms / m.threaded_ms : 0.0)
        << ",\"failed\":" << m.failed << ",\"timed_out\":" << m.timed_out
        << ",\"identical\":" << (m.identical ? "true" : "false") << "}"
        << (i + 1 < multi_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"multi_target_batched\": [\n";
  for (size_t i = 0; i < multi_rows.size(); ++i) {
    const MultiTargetRow& m = multi_rows[i];
    const double t = static_cast<double>(m.targets);
    const double serial_tps =
        m.serial_ms > 0.0 ? 1000.0 * t / m.serial_ms : 0.0;
    const double threaded_tps =
        m.threaded_ms > 0.0 ? 1000.0 * t / m.threaded_ms : 0.0;
    const double batched_tps =
        m.batched_ms > 0.0 ? 1000.0 * t / m.batched_ms : 0.0;
    out << "    {\"n\":" << m.n << ",\"targets\":" << m.targets
        << ",\"threads\":" << m.batched_threads
        << ",\"batch_targets\":" << m.batch_targets
        << ",\"batched_ms\":" << m.batched_ms
        << ",\"serial_targets_per_sec\":" << serial_tps
        << ",\"threaded_targets_per_sec\":" << threaded_tps
        << ",\"batched_targets_per_sec\":" << batched_tps
        << ",\"speedup_vs_serial\":"
        << (m.batched_ms > 0.0 ? m.serial_ms / m.batched_ms : 0.0)
        << ",\"speedup_vs_threaded\":"
        << (m.batched_ms > 0.0 ? m.threaded_ms / m.batched_ms : 0.0)
        << ",\"identical\":" << (m.batched_identical ? "true" : "false")
        << "}" << (i + 1 < multi_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"fault_containment\": {\"n\":" << fault_row.n
      << ",\"targets\":" << fault_row.targets
      << ",\"poisoned_survivors_identical\":"
      << (fault_row.poisoned_isolated ? "true" : "false")
      << ",\"deadline_survivors_identical\":"
      << (fault_row.deadline_isolated ? "true" : "false")
      << "},\n  \"service\": {\"n\":" << service_section.n
      << ",\"capacity_targets_per_sec\":" << service_section.capacity_tps
      << ",\"queue_capacity\":" << service_section.queue_capacity
      << ",\"shed_watermark\":" << service_section.shed_watermark
      << ",\"gate\":"
      << (service_section.gate_ok ? "\"pass\"" : "\"fail\"")
      << ",\"rows\": [\n";
  for (size_t i = 0; i < service_section.rows.size(); ++i) {
    const ServiceRow& r = service_section.rows[i];
    out << "    {\"multiplier\":" << r.multiplier
        << ",\"offered_targets_per_sec\":" << r.offered_tps
        << ",\"submitted\":" << r.submitted << ",\"accepted\":" << r.accepted
        << ",\"rejected\":" << r.rejected << ",\"shed\":" << r.shed
        << ",\"retried\":" << r.retried << ",\"completed\":" << r.completed
        << ",\"p50_ms\":" << r.p50_ms << ",\"p99_ms\":" << r.p99_ms
        << ",\"goodput_targets_per_sec\":" << r.goodput_tps
        << ",\"identical\":" << (r.identical ? "true" : "false") << "}"
        << (i + 1 < service_section.rows.size() ? "," : "") << "\n";
  }
  out << "  ]},\n  \"churn\": {\"n\":" << churn_section.n
      << ",\"batch_edges\":" << churn_section.batch_edges
      << ",\"rounds\":" << churn_section.rounds
      << ",\"churn_ball_hops\":" << churn_section.ball_hops
      << ",\"incremental_ms\":" << churn_section.incremental_ms
      << ",\"full_rebuild_ms\":" << churn_section.full_rebuild_ms
      << ",\"speedup\":" << churn_section.speedup
      << ",\"epochs\":" << churn_section.epochs
      << ",\"bumped_targets\":" << churn_section.bumped_targets
      << ",\"completed\":" << churn_section.completed << ",\"gate\":"
      << (churn_section.gate_ok ? "\"pass\"" : "\"fail\"")
      << "},\n  \"equivalence\": [\n";
  for (size_t i = 0; i < equivalence.size(); ++i) {
    const EquivalenceRow& e = equivalence[i];
    out << "    {\"n\":" << e.n << ",\"attack\":\"" << e.attack
        << "\",\"identical_edges\":" << (e.identical_edges ? "true" : "false")
        << ",\"loss_delta\":" << e.loss_delta << "}"
        << (i + 1 < equivalence.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"scaling\": [\n";
  for (size_t i = 0; i < scaling.size(); ++i) {
    const ScalingRow& r = scaling[i];
    out << "    {\"n\":" << r.n << ",\"edges\":" << r.edges
        << ",\"generate_ms\":" << r.generate_ms
        << ",\"train_ms\":" << r.train_ms << ",";
    WriteNullableMs(out, "save_ms", r.save_ms);
    out << ",";
    WriteNullableMs(out, "load_ms", r.load_ms);
    out << ",\"attack_ms\":" << r.attack_ms
        << ",\"explain_ms\":" << r.explain_ms
        << ",\"defend_ms\":" << r.defend_ms
        << ",\"pruned_edges\":" << r.pruned_edges
        << ",\"true_adversarial_pruned\":" << r.true_adversarial_pruned
        << ",\"guard_largest_alloc\":" << r.guard_largest_alloc
        << ",\"peak_rss_mb\":" << r.peak_rss_mb
        << ",\"ok\":" << (r.ok ? "true" : "false") << "}"
        << (i + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"equivalence_gate\": " << (gate_ok ? "\"pass\"" : "\"fail\"")
      << "\n}\n";
  std::cerr << "[bench_attack] wrote " << json_path << "\n";
  return gate_ok ? 0 : 1;
}

}  // namespace
}  // namespace geattack

int main(int argc, char** argv) {
  std::string json_path = "BENCH_attack.json";
  bool quick = false;
  bool crash_child = false;
  std::string journal_path;
  std::string out_path;
  uint64_t crash_seed = 1234;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--crash-child") {
      crash_child = true;
    } else if (arg.rfind("--journal=", 0) == 0) {
      journal_path = arg.substr(10);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--seed=", 0) == 0) {
      crash_seed = std::strtoull(arg.substr(7).c_str(), nullptr, 10);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (crash_child) {
    if (journal_path.empty() || out_path.empty()) {
      std::cerr << "--crash-child requires --journal=PATH and --out=PATH\n";
      return 2;
    }
    return geattack::RunCrashChild(journal_path, out_path, crash_seed);
  }
  return geattack::RunHarness(json_path, quick);
}
