// Reproduces Table 2: the joint attack with PGExplainer as the inspector on
// CITESEER (§5.3).  GEAttack here is the GEAttack-PG variant that
// differentiates through PGExplainer's parameter updates.

#include <iostream>
#include <map>

#include "bench/bench_util.h"

namespace geattack {
namespace bench {
namespace {

void Run(const BenchKnobs& knobs) {
  std::map<std::string, MetricColumns> columns;
  for (uint64_t seed = 0; seed < static_cast<uint64_t>(knobs.seeds); ++seed) {
    auto world = MakeWorld(DatasetId::kCiteseer, knobs.scale, seed,
                           knobs.targets);
    // Train the inductive explainer once per world on clean predictions.
    PgExplainerConfig pg_cfg;
    pg_cfg.epochs = 40;
    pg_cfg.seed = seed;
    PgExplainer inspector(world->model.get(), &world->data.features, pg_cfg);
    std::vector<int64_t> instances(
        world->split.train.begin(),
        world->split.train.begin() +
            std::min<ptrdiff_t>(
                16, static_cast<ptrdiff_t>(world->split.train.size())));
    inspector.Train(world->ctx.clean_adjacency, instances,
                    PredictLabels(world->clean_logits));

    for (const std::string& name : AttackerNames()) {
      std::unique_ptr<TargetedAttack> attacker;
      if (name == "GEAttack") {
        attacker = std::make_unique<GeAttackPg>(&inspector);
      } else {
        attacker = MakeAttacker(name);
      }
      Rng rng(seed * 37 + 3);
      columns[name].Add(EvaluateAttack(world->ctx, *attacker, world->targets,
                                       inspector, EvalConfig{}, &rng));
    }
  }

  TablePrinter table({"Metrics (%)", "FGA", "RNA", "FGA-T", "Nettack",
                      "IG-Attack", "FGA-T&E", "GEAttack"});
  auto row = [&](const std::string& metric,
                 SeedAggregate MetricColumns::*field) {
    std::vector<std::string> cells{metric};
    for (const std::string& name : AttackerNames()) {
      if (metric == "ASR-T" && name == "FGA") {
        cells.push_back("-");
        continue;
      }
      cells.push_back((columns[name].*field).Cell());
    }
    table.AddRow(cells);
  };
  std::cout << "\nCITESEER (PGExplainer inspector)\n";
  row("ASR", &MetricColumns::asr);
  row("ASR-T", &MetricColumns::asr_t);
  row("Precision", &MetricColumns::precision);
  row("Recall", &MetricColumns::recall);
  row("F1", &MetricColumns::f1);
  row("NDCG", &MetricColumns::ndcg);
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace geattack

int main() {
  using namespace geattack::bench;
  const BenchKnobs knobs = BenchKnobs::FromEnv();
  knobs.Describe(std::cout,
                 "Table 2 — jointly attacking GNN and PGExplainer");
  Run(knobs);
  return 0;
}
