// Reproduces Figure 5: effect of the explanation subgraph size L on the
// detection rate of GEAttack's edges (Precision/Recall/F1/NDCG @15) on
// CORA.  Detection first rises with L (more adversarial edges clear the
// subgraph cut) then saturates around L ≈ 20.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace geattack;
  using namespace geattack::bench;
  BenchKnobs knobs = BenchKnobs::FromEnv();
  // Figures default to a single seed (tables carry the ±std columns).
  knobs.seeds = EnvInt("GEATTACK_BENCH_SEEDS", 1);
  knobs.Describe(std::cout, "Figure 5 — effect of subgraph size L on CORA");

  const std::vector<int64_t> sizes = {5, 10, 20, 40, 60, 80, 100};
  std::vector<MetricColumns> columns(sizes.size());
  for (uint64_t seed = 0; seed < static_cast<uint64_t>(knobs.seeds); ++seed) {
    auto world =
        MakeWorld(DatasetId::kCora, knobs.scale, seed, knobs.targets);
    GnnExplainer inspector(world->model.get(), &world->data.features,
                           InspectorConfig(seed));
    const GeAttack attack;
    // One attack+explanation per target; re-scored at every L (the ranking
    // is L-independent, only the truncation changes).
    Rng rng(seed * 17 + 1);
    for (const PreparedTarget& t : world->targets) {
      AttackRequest req{t.node, t.target_label, t.budget};
      const AttackResult result = attack.Attack(world->ctx, req, &rng);
      const Tensor logits = world->model->LogitsFromRaw(
          result.adjacency, world->data.features);
      const Explanation e = inspector.Explain(result.adjacency, t.node,
                                              logits.ArgMaxRow(t.node));
      for (size_t i = 0; i < sizes.size(); ++i) {
        const DetectionMetrics d =
            ComputeDetection(e, result.added_edges, sizes[i], 15);
        JointAttackOutcome o;
        o.detection = d;
        columns[i].Add(o);
      }
    }
  }

  TablePrinter table({"L", "Precision@15", "Recall@15", "F1@15", "NDCG@15"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow({std::to_string(sizes[i]), columns[i].precision.Cell(),
                  columns[i].recall.Cell(), columns[i].f1.Cell(),
                  columns[i].ndcg.Cell()});
  }
  table.Print(std::cout);
  return 0;
}
