// Shared setup for the experiment-reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper on the
// synthetic dataset stand-ins (DESIGN.md §2/§3).  Scale knobs are read from
// the environment so the same binaries can run a quick smoke pass or a
// full-size reproduction:
//   GEATTACK_BENCH_SCALE    dataset size fraction of Table 3 (default 0.12)
//   GEATTACK_BENCH_SEEDS    number of repeated runs (default 2)
//   GEATTACK_BENCH_TARGETS  victim nodes per run (default 8)

#ifndef GEATTACK_BENCH_BENCH_UTIL_H_
#define GEATTACK_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/fga.h"
#include "src/attack/fga_te.h"
#include "src/attack/ig_attack.h"
#include "src/attack/nettack.h"
#include "src/attack/rna.h"
#include "src/core/geattack.h"
#include "src/core/geattack_pg.h"
#include "src/eval/pipeline.h"
#include "src/eval/report.h"
#include "src/explain/gnn_explainer.h"
#include "src/explain/pg_explainer.h"
#include "src/graph/datasets.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace bench {

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const int64_t parsed = std::atoll(v);
  return parsed > 0 ? parsed : fallback;
}

struct BenchKnobs {
  double scale = 0.12;
  int64_t seeds = 2;
  int64_t targets = 8;

  static BenchKnobs FromEnv() {
    BenchKnobs k;
    k.scale = BenchScaleFromEnv(k.scale);
    k.seeds = EnvInt("GEATTACK_BENCH_SEEDS", k.seeds);
    k.targets = EnvInt("GEATTACK_BENCH_TARGETS", k.targets);
    return k;
  }

  void Describe(std::ostream& os, const std::string& what) const {
    os << "# " << what << "\n"
       << "# synthetic stand-ins at scale=" << scale << ", seeds=" << seeds
       << ", targets/run=" << targets
       << " (override via GEATTACK_BENCH_{SCALE,SEEDS,TARGETS})\n";
  }
};

/// One fully prepared experiment world: data, trained model, targets.
struct World {
  GraphData data;
  Split split;
  std::unique_ptr<Gcn> model;
  AttackContext ctx;
  Tensor clean_logits;
  std::vector<PreparedTarget> targets;
  TrainResult train_result;
};

inline std::unique_ptr<World> MakeWorld(DatasetId id, double scale,
                                        uint64_t seed, int64_t num_targets) {
  auto w = std::make_unique<World>();
  Rng rng(seed * 9176423ull + 17ull);
  w->data = MakeDataset(id, scale, &rng);
  w->split = MakeSplit(w->data, 0.1, 0.1, &rng);
  w->model = std::make_unique<Gcn>(
      TrainNewGcn(w->data, w->split, TrainConfig{}, &rng, &w->train_result));
  w->ctx = MakeAttackContext(w->data, *w->model);
  w->clean_logits =
      w->model->LogitsFromRaw(w->ctx.clean_adjacency, w->data.features);
  TargetSelectionConfig sel;
  sel.top_margin = num_targets / 4;
  sel.bottom_margin = num_targets / 4;
  sel.random = num_targets - 2 * (num_targets / 4);
  auto nodes = SelectTargetNodes(w->data, w->clean_logits, w->split.test, sel,
                                 &rng);
  w->targets = PrepareTargets(w->ctx, nodes, &rng);
  return w;
}

/// GNNExplainer inspector with the evaluation defaults (§A.2).
inline GnnExplainerConfig InspectorConfig(uint64_t seed = 0) {
  GnnExplainerConfig cfg;
  cfg.epochs = 50;
  cfg.seed = seed;
  return cfg;
}

/// The attacker line-up of Table 1/2, in paper column order.
inline std::vector<std::string> AttackerNames() {
  return {"FGA", "RNA", "FGA-T", "Nettack", "IG-Attack", "FGA-T&E",
          "GEAttack"};
}

/// Instantiates an attacker by its table name (GNNExplainer-targeting
/// GEAttack; use MakePgAttacker for the Table 2 variant).
inline std::unique_ptr<TargetedAttack> MakeAttacker(const std::string& name) {
  if (name == "RNA") return std::make_unique<RandomAttack>();
  if (name == "FGA") return std::make_unique<FgaAttack>(false);
  if (name == "FGA-T") return std::make_unique<FgaAttack>(true);
  if (name == "FGA-T&E") {
    GnnExplainerConfig cfg;
    cfg.epochs = 30;
    return std::make_unique<FgaTeAttack>(cfg);
  }
  if (name == "Nettack") return std::make_unique<Nettack>();
  if (name == "IG-Attack") {
    IgAttackConfig cfg;
    cfg.steps = 5;
    cfg.shortlist = 24;
    return std::make_unique<IgAttack>(cfg);
  }
  if (name == "GEAttack") return std::make_unique<GeAttack>();
  std::cerr << "unknown attacker " << name << "\n";
  std::abort();
}

/// Per-attacker aggregate of the six table metrics across seeds.
struct MetricColumns {
  SeedAggregate asr, asr_t, precision, recall, f1, ndcg;

  void Add(const JointAttackOutcome& o) {
    asr.Add(o.asr);
    asr_t.Add(o.asr_t);
    precision.Add(o.detection.precision);
    recall.Add(o.detection.recall);
    f1.Add(o.detection.f1);
    ndcg.Add(o.detection.ndcg);
  }
};

}  // namespace bench
}  // namespace geattack

#endif  // GEATTACK_BENCH_BENCH_UTIL_H_
