// Microbenchmarks (google-benchmark) of the kernels the attacks stress:
// dense matmul, GCN forward, adjacency-gradient backward, explainer inner
// step, and the full GEAttack hypergradient.  Not a paper table — these
// quantify the substrate so performance regressions are visible.

#include <benchmark/benchmark.h>

#include "src/attack/attack.h"
#include "src/core/geattack.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/generators.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

GraphData& BenchData() {
  static GraphData data = [] {
    Rng rng(5);
    CitationGraphConfig cfg;
    cfg.num_nodes = 300;
    cfg.num_edges = 700;
    cfg.num_classes = 4;
    cfg.feature_dim = 256;
    return KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
  }();
  return data;
}

Gcn& BenchModel() {
  static Gcn model = [] {
    Rng rng(6);
    GraphData& data = BenchData();
    Split split = MakeSplit(data, 0.1, 0.1, &rng);
    TrainConfig cfg;
    cfg.epochs = 60;
    return TrainNewGcn(data, split, cfg, &rng);
  }();
  return model;
}

void BM_DenseMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = rng.NormalTensor(n, n, 0, 1);
  Tensor b = rng.NormalTensor(n, n, 0, 1);
  for (auto _ : state) benchmark::DoNotOptimize(a.MatMul(b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(128)->Arg(256)->Arg(512);

void BM_NormalizeAdjacency(benchmark::State& state) {
  Tensor adj = BenchData().graph.DenseAdjacency();
  for (auto _ : state) benchmark::DoNotOptimize(NormalizeAdjacency(adj));
}
BENCHMARK(BM_NormalizeAdjacency);

void BM_GcnForward(benchmark::State& state) {
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  Tensor norm = NormalizeAdjacency(data.graph.DenseAdjacency());
  for (auto _ : state)
    benchmark::DoNotOptimize(model.Logits(norm, data.features));
}
BENCHMARK(BM_GcnForward);

void BM_AdjacencyGradient(benchmark::State& state) {
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  const GcnForwardContext ctx = MakeForwardContext(model, data.features);
  Tensor adj = data.graph.DenseAdjacency();
  for (auto _ : state) {
    Var a = Var::Leaf(adj, true);
    Var loss = TargetedAttackLoss(ctx, a, 0, 1);
    benchmark::DoNotOptimize(GradOne(loss, a).value());
  }
}
BENCHMARK(BM_AdjacencyGradient);

void BM_ExplainerInnerStep(benchmark::State& state) {
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  const GcnForwardContext ctx = MakeForwardContext(model, data.features);
  Rng rng(2);
  Tensor adj = data.graph.DenseAdjacency();
  Tensor mask0 = rng.NormalTensor(adj.rows(), adj.cols(), 0, 0.1);
  for (auto _ : state) {
    Var a = Constant(adj);
    Var m = Var::Leaf(mask0, true);
    Var loss = GnnExplainer::ExplainerLoss(ctx, a, m, 0, 1);
    benchmark::DoNotOptimize(GradOne(loss, m).value());
  }
}
BENCHMARK(BM_ExplainerInnerStep);

void BM_GeAttackHypergradient(benchmark::State& state) {
  // One full outer iteration's gradient: T differentiable inner steps plus
  // the backward through them.
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  const GcnForwardContext ctx = MakeForwardContext(model, data.features);
  Rng rng(3);
  Tensor adj = data.graph.DenseAdjacency();
  Tensor mask0 = rng.NormalTensor(adj.rows(), adj.cols(), 0, 0.1);
  const int64_t T = state.range(0);
  for (auto _ : state) {
    Var a = Var::Leaf(adj, true);
    Var m = Var::Leaf(mask0, true);
    for (int64_t t = 0; t < T; ++t) {
      Var loss = GnnExplainer::ExplainerLoss(ctx, a, m, 0, 1);
      Var p = GradOne(loss, m, {.create_graph = true});
      m = Sub(m, MulScalar(p, 0.3));
    }
    Var total = Add(TargetedAttackLoss(ctx, a, 0, 1),
                    MulScalar(Sum(SelectRow(m, 0)), 2.0));
    benchmark::DoNotOptimize(GradOne(total, a).value());
  }
}
BENCHMARK(BM_GeAttackHypergradient)->Arg(1)->Arg(3)->Arg(5);

}  // namespace
}  // namespace geattack

BENCHMARK_MAIN();
