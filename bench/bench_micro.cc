// Microbenchmarks of the kernels the attacks stress, in two modes:
//
//   ./bench_micro                 dense-vs-sparse timing harness; writes
//                                 BENCH_micro.json (override: --json=PATH)
//                                 so successive PRs accumulate a perf
//                                 trajectory.  Includes a large generated
//                                 graph (default 20k nodes, override via
//                                 GEATTACK_BENCH_MICRO_LARGE_N) where the
//                                 dense path is infeasible and only the CSR
//                                 path runs.
//   ./bench_micro --gbench [...]  the original google-benchmark suite
//                                 (dense matmul, GCN forward, adjacency
//                                 gradient, explainer step, hypergradient).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/attack/attack.h"
#include "src/core/geattack.h"
#include "src/explain/gnn_explainer.h"
#include "src/graph/generators.h"
#include "src/nn/trainer.h"

namespace geattack {
namespace {

GraphData& BenchData() {
  static GraphData data = [] {
    Rng rng(5);
    CitationGraphConfig cfg;
    cfg.num_nodes = 300;
    cfg.num_edges = 700;
    cfg.num_classes = 4;
    cfg.feature_dim = 256;
    return KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
  }();
  return data;
}

Gcn& BenchModel() {
  static Gcn model = [] {
    Rng rng(6);
    GraphData& data = BenchData();
    Split split = MakeSplit(data, 0.1, 0.1, &rng);
    TrainConfig cfg;
    cfg.epochs = 60;
    return TrainNewGcn(data, split, cfg, &rng);
  }();
  return model;
}

void BM_DenseMatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = rng.NormalTensor(n, n, 0, 1);
  Tensor b = rng.NormalTensor(n, n, 0, 1);
  for (auto _ : state) benchmark::DoNotOptimize(a.MatMul(b));
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseMatMul)->Arg(128)->Arg(256)->Arg(512);

void BM_NormalizeAdjacency(benchmark::State& state) {
  Tensor adj = BenchData().graph.DenseAdjacency();
  for (auto _ : state) benchmark::DoNotOptimize(NormalizeAdjacency(adj));
}
BENCHMARK(BM_NormalizeAdjacency);

void BM_GcnForward(benchmark::State& state) {
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  Tensor norm = NormalizeAdjacency(data.graph.DenseAdjacency());
  for (auto _ : state)
    benchmark::DoNotOptimize(model.Logits(norm, data.features));
}
BENCHMARK(BM_GcnForward);

void BM_SparseGcnForward(benchmark::State& state) {
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  CsrMatrix norm = NormalizeAdjacencyCsr(data.graph);
  for (auto _ : state)
    benchmark::DoNotOptimize(model.Logits(norm, data.features));
}
BENCHMARK(BM_SparseGcnForward);

void BM_AdjacencyGradient(benchmark::State& state) {
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  const GcnForwardContext ctx = MakeForwardContext(model, data.features);
  Tensor adj = data.graph.DenseAdjacency();
  for (auto _ : state) {
    Var a = Var::Leaf(adj, true);
    Var loss = TargetedAttackLoss(ctx, a, 0, 1);
    benchmark::DoNotOptimize(GradOne(loss, a).value());
  }
}
BENCHMARK(BM_AdjacencyGradient);

void BM_ExplainerInnerStep(benchmark::State& state) {
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  const GcnForwardContext ctx = MakeForwardContext(model, data.features);
  Rng rng(2);
  Tensor adj = data.graph.DenseAdjacency();
  Tensor mask0 = rng.NormalTensor(adj.rows(), adj.cols(), 0, 0.1);
  for (auto _ : state) {
    Var a = Constant(adj);
    Var m = Var::Leaf(mask0, true);
    Var loss = GnnExplainer::ExplainerLoss(ctx, a, m, 0, 1);
    benchmark::DoNotOptimize(GradOne(loss, m).value());
  }
}
BENCHMARK(BM_ExplainerInnerStep);

void BM_GeAttackHypergradient(benchmark::State& state) {
  // One full outer iteration's gradient: T differentiable inner steps plus
  // the backward through them.
  GraphData& data = BenchData();
  Gcn& model = BenchModel();
  const GcnForwardContext ctx = MakeForwardContext(model, data.features);
  Rng rng(3);
  Tensor adj = data.graph.DenseAdjacency();
  Tensor mask0 = rng.NormalTensor(adj.rows(), adj.cols(), 0, 0.1);
  const int64_t T = state.range(0);
  for (auto _ : state) {
    Var a = Var::Leaf(adj, true);
    Var m = Var::Leaf(mask0, true);
    for (int64_t t = 0; t < T; ++t) {
      Var loss = GnnExplainer::ExplainerLoss(ctx, a, m, 0, 1);
      Var p = GradOne(loss, m, {.create_graph = true});
      m = Sub(m, MulScalar(p, 0.3));
    }
    Var total = Add(TargetedAttackLoss(ctx, a, 0, 1),
                    MulScalar(Sum(SelectRow(m, 0)), 2.0));
    benchmark::DoNotOptimize(GradOne(total, a).value());
  }
}
BENCHMARK(BM_GeAttackHypergradient)->Arg(1)->Arg(3)->Arg(5);

// ---------------------------------------------------------------------------
// Dense-vs-sparse JSON harness.
// ---------------------------------------------------------------------------

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-of-`reps` wall time of `fn`, in milliseconds.
template <typename Fn>
double TimeMs(Fn&& fn, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double t0 = NowMs();
    fn();
    const double elapsed = NowMs() - t0;
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

GraphData MakeScaledGraph(int64_t n, uint64_t seed) {
  Rng rng(seed);
  CitationGraphConfig cfg;
  cfg.num_nodes = n;
  cfg.num_edges = 3 * n;
  cfg.num_classes = 5;
  cfg.feature_dim = 128;
  return KeepLargestConnectedComponent(GenerateCitationGraph(cfg, &rng));
}

struct ForwardRow {
  int64_t n = 0;
  int64_t edges = 0;
  double dense_ms = -1.0;  // < 0 means skipped (infeasible densely).
  double sparse_ms = 0.0;
  // Pre-normalized CSR forwards: double vs float32 value storage
  // (inference-only; the f32 path is opt-in everywhere).
  double prenorm_ms = 0.0;
  double prenorm_f32_ms = 0.0;
};

struct TrainRow {
  int64_t n = 0;
  int64_t epochs = 0;
  double dense_ms = -1.0;
  double sparse_ms = 0.0;
};

void WriteNullableMs(std::ostream& os, const char* key, double ms) {
  os << "\"" << key << "\":";
  if (ms < 0.0) {
    os << "null";
  } else {
    os << ms;
  }
}

int RunJsonHarness(const std::string& json_path) {
  const int64_t large_n = [] {
    const char* v = std::getenv("GEATTACK_BENCH_MICRO_LARGE_N");
    return (v != nullptr && std::atoll(v) > 0) ? std::atoll(v)
                                               : int64_t{20000};
  }();
  // Above this the n x n dense tensors (several live at once during
  // normalization) stop fitting in memory, which is the point of the CSR
  // path: the dense columns are reported as null.
  const int64_t dense_max_n = 5000;

  std::vector<ForwardRow> forward;
  std::vector<TrainRow> train;

  for (int64_t n : std::vector<int64_t>{1000, 2000, 5000, large_n}) {
    std::cerr << "[bench_micro] n=" << n << ": generating graph...\n";
    GraphData data = MakeScaledGraph(n, /*seed=*/9000 + static_cast<uint64_t>(n));
    Rng rng(17);
    Gcn model({data.feature_dim(), 16, data.num_classes}, &rng);
    const bool dense_ok = n <= dense_max_n;
    const int reps = n <= 2000 ? 3 : 1;

    ForwardRow f;
    f.n = data.num_nodes();
    f.edges = data.graph.num_edges();
    f.sparse_ms = TimeMs(
        [&] {
          benchmark::DoNotOptimize(
              model.Logits(NormalizeAdjacencyCsr(data.graph), data.features));
        },
        reps);
    if (dense_ok) {
      f.dense_ms = TimeMs(
          [&] {
            benchmark::DoNotOptimize(model.Logits(
                NormalizeAdjacency(data.graph.DenseAdjacency()),
                data.features));
          },
          reps);
    }
    {
      // Kernel-only comparison on a prebuilt normalized CSR: double values
      // vs float32 value storage (the eval-path option).  The f32
      // conversion happens once outside the timed region so both lambdas
      // time exactly the two SpMM passes.
      const CsrMatrix norm = NormalizeAdjacencyCsr(data.graph);
      const std::vector<float> f32 = ValuesToF32(norm.values());
      f.prenorm_ms = TimeMs(
          [&] {
            benchmark::DoNotOptimize(model.Logits(norm, data.features));
          },
          reps);
      f.prenorm_f32_ms = TimeMs(
          [&] {
            benchmark::DoNotOptimize(
                model.LogitsF32(*norm.pattern(), f32, data.features));
          },
          reps);
    }
    forward.push_back(f);
    std::cerr << "[bench_micro] n=" << f.n << " forward: sparse "
              << f.sparse_ms << " ms (prenorm " << f.prenorm_ms << " ms, f32 "
              << f.prenorm_f32_ms << " ms), dense "
              << (dense_ok ? std::to_string(f.dense_ms) + " ms"
                           : std::string("skipped"))
              << "\n";

    // Train timings on the small and the large scenario only.
    if (n == 1000 || n == large_n) {
      Split split = MakeSplit(data, 0.1, 0.1, &rng);
      TrainConfig cfg;
      cfg.epochs = n == large_n ? 3 : 5;
      cfg.patience = 0;

      TrainRow t;
      t.n = data.num_nodes();
      t.epochs = cfg.epochs;
      t.sparse_ms = TimeMs(
          [&] {
            Rng train_rng(23);
            cfg.use_sparse = true;
            benchmark::DoNotOptimize(
                TrainNewGcn(data, split, cfg, &train_rng));
          },
          1);
      if (dense_ok) {
        t.dense_ms = TimeMs(
            [&] {
              Rng train_rng(23);
              cfg.use_sparse = false;
              benchmark::DoNotOptimize(
                  TrainNewGcn(data, split, cfg, &train_rng));
            },
            1);
      }
      train.push_back(t);
      std::cerr << "[bench_micro] n=" << t.n << " train x" << t.epochs
                << ": sparse " << t.sparse_ms << " ms, dense "
                << (dense_ok ? std::to_string(t.dense_ms) + " ms"
                             : std::string("skipped"))
                << "\n";
    }
  }

  std::ofstream out(json_path);
  if (!out) {
    std::cerr << "cannot open " << json_path << " for writing\n";
    return 1;
  }
  out << "{\n  \"bench\": \"micro\",\n  \"openmp\": "
#ifdef _OPENMP
      << "true"
#else
      << "false"
#endif
      << ",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n  \"forward\": [\n";
  for (size_t i = 0; i < forward.size(); ++i) {
    const ForwardRow& f = forward[i];
    out << "    {\"n\":" << f.n << ",\"edges\":" << f.edges << ",";
    WriteNullableMs(out, "dense_ms", f.dense_ms);
    out << ",\"sparse_ms\":" << f.sparse_ms
        << ",\"prenorm_ms\":" << f.prenorm_ms
        << ",\"prenorm_f32_ms\":" << f.prenorm_f32_ms << ",";
    WriteNullableMs(out, "speedup",
                    f.dense_ms < 0.0 || f.sparse_ms <= 0.0
                        ? -1.0
                        : f.dense_ms / f.sparse_ms);
    out << "}" << (i + 1 < forward.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"train\": [\n";
  for (size_t i = 0; i < train.size(); ++i) {
    const TrainRow& t = train[i];
    out << "    {\"n\":" << t.n << ",\"epochs\":" << t.epochs << ",";
    WriteNullableMs(out, "dense_ms", t.dense_ms);
    out << ",\"sparse_ms\":" << t.sparse_ms << ",";
    WriteNullableMs(out, "speedup",
                    t.dense_ms < 0.0 || t.sparse_ms <= 0.0
                        ? -1.0
                        : t.dense_ms / t.sparse_ms);
    out << "}" << (i + 1 < train.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cerr << "[bench_micro] wrote " << json_path << "\n";
  return 0;
}

}  // namespace
}  // namespace geattack

int main(int argc, char** argv) {
  std::string json_path = "BENCH_micro.json";
  bool gbench = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gbench") {
      gbench = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!gbench) return geattack::RunJsonHarness(json_path);

  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
