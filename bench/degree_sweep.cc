#include "bench/degree_sweep.h"

namespace geattack {
namespace bench {

std::vector<DegreeCell> NettackDegreeSweep(
    DatasetId id, const BenchKnobs& knobs, int64_t max_degree,
    int64_t per_degree,
    const std::function<std::unique_ptr<Explainer>(const World&)>&
        make_inspector) {
  std::vector<DegreeCell> cells(static_cast<size_t>(max_degree));
  for (int64_t d = 1; d <= max_degree; ++d)
    cells[static_cast<size_t>(d - 1)].degree = d;

  for (uint64_t seed = 0; seed < static_cast<uint64_t>(knobs.seeds); ++seed) {
    auto world = MakeWorld(id, knobs.scale, seed, /*num_targets=*/4);
    auto inspector = make_inspector(*world);
    const Nettack nettack;
    Rng rng(seed * 101 + 5);

    for (int64_t d = 1; d <= max_degree; ++d) {
      // Candidate victims: correctly classified test nodes of degree d.
      std::vector<int64_t> victims;
      for (int64_t node : world->split.test) {
        if (world->data.graph.Degree(node) != d) continue;
        if (world->clean_logits.ArgMaxRow(node) !=
            world->data.labels[ZU(node)])
          continue;
        victims.push_back(node);
      }
      rng.Shuffle(&victims);
      if (static_cast<int64_t>(victims.size()) > per_degree)
        victims.resize(static_cast<size_t>(per_degree));
      const auto prepared = PrepareTargets(world->ctx, victims, &rng);

      DegreeCell& cell = cells[static_cast<size_t>(d - 1)];
      for (const PreparedTarget& t : prepared) {
        AttackRequest req{t.node, t.target_label, t.budget};
        const AttackResult result = nettack.Attack(world->ctx, req, &rng);
        const Tensor logits = world->model->LogitsFromRaw(
            result.adjacency, world->data.features);
        const int64_t predicted = logits.ArgMaxRow(t.node);
        cell.asr += predicted != t.true_label ? 1.0 : 0.0;
        const Explanation e =
            inspector->Explain(result.adjacency, t.node, predicted);
        const DetectionMetrics dm =
            ComputeDetection(e, result.added_edges, 20, 15);
        cell.detection.precision += dm.precision;
        cell.detection.recall += dm.recall;
        cell.detection.f1 += dm.f1;
        cell.detection.ndcg += dm.ndcg;
        ++cell.num_targets;
      }
    }
  }

  for (DegreeCell& cell : cells) {
    if (cell.num_targets == 0) continue;
    const double n = static_cast<double>(cell.num_targets);
    cell.asr /= n;
    cell.detection.precision /= n;
    cell.detection.recall /= n;
    cell.detection.f1 /= n;
    cell.detection.ndcg /= n;
  }
  return cells;
}

}  // namespace bench
}  // namespace geattack
