// Reproduces Table 3: dataset statistics (largest connected component).
// Prints the paper's published statistics next to the synthetic stand-in's
// measured statistics at the configured scale.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace geattack;
  using namespace geattack::bench;
  const BenchKnobs knobs = BenchKnobs::FromEnv();
  knobs.Describe(std::cout, "Table 3 — dataset statistics (LCC)");

  TablePrinter table({"Datasets", "Nodes", "Edges", "Classes", "Features",
                      "(paper N)", "(paper E)", "(paper C)", "(paper F)"});
  for (DatasetId id :
       {DatasetId::kCiteseer, DatasetId::kCora, DatasetId::kAcm}) {
    Rng rng(1);
    const GraphData data = MakeDataset(id, knobs.scale, &rng);
    const DatasetStats paper = PaperStats(id);
    table.AddRow({DatasetName(id), std::to_string(data.num_nodes()),
                  std::to_string(data.graph.num_edges()),
                  std::to_string(data.num_classes),
                  std::to_string(data.feature_dim()),
                  std::to_string(paper.nodes), std::to_string(paper.edges),
                  std::to_string(paper.classes),
                  std::to_string(paper.features)});
  }
  table.Print(std::cout);
  return 0;
}
