// Reproduces Figure 8: effect of λ on the detection rate
// (Precision/Recall/F1/NDCG @15) on CITESEER.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace geattack;
  using namespace geattack::bench;
  BenchKnobs knobs = BenchKnobs::FromEnv();
  // Figures default to a single seed (tables carry the ±std columns).
  knobs.seeds = EnvInt("GEATTACK_BENCH_SEEDS", 1);
  knobs.Describe(std::cout, "Figure 8 — effect of lambda on CITESEER");

  const std::vector<double> lambdas = {0.001, 0.01, 0.1, 0.5, 1.0,
                                       2.0,   5.0,  10.0, 20.0, 50.0};
  std::vector<MetricColumns> columns(lambdas.size());
  for (uint64_t seed = 0; seed < static_cast<uint64_t>(knobs.seeds); ++seed) {
    auto world =
        MakeWorld(DatasetId::kCiteseer, knobs.scale, seed, knobs.targets);
    GnnExplainer inspector(world->model.get(), &world->data.features,
                           InspectorConfig(seed));
    for (size_t i = 0; i < lambdas.size(); ++i) {
      GeAttackConfig cfg;
      cfg.lambda = lambdas[i];
      GeAttack attack(cfg);
      Rng rng(seed * 13 + 1);
      columns[i].Add(EvaluateAttack(world->ctx, attack, world->targets,
                                    inspector, EvalConfig{}, &rng));
    }
  }

  TablePrinter table(
      {"lambda", "Precision@15", "Recall@15", "F1@15", "NDCG@15"});
  for (size_t i = 0; i < lambdas.size(); ++i) {
    table.AddRow({FormatDouble(lambdas[i], 3), columns[i].precision.Cell(),
                  columns[i].recall.Cell(), columns[i].f1.Cell(),
                  columns[i].ndcg.Cell()});
  }
  table.Print(std::cout);
  return 0;
}
