// Shared per-degree evaluation used by Figs. 2, 3 and 7: attack nodes of a
// given clean degree with Nettack and measure attack success plus how well
// an inspector (GNNExplainer or PGExplainer) surfaces the planted edges.

#ifndef GEATTACK_BENCH_DEGREE_SWEEP_H_
#define GEATTACK_BENCH_DEGREE_SWEEP_H_

#include <functional>
#include <vector>

#include "bench/bench_util.h"

namespace geattack {
namespace bench {

struct DegreeCell {
  int64_t degree = 0;
  int64_t num_targets = 0;
  double asr = 0.0;
  DetectionMetrics detection;
};

/// Runs Nettack against up to `per_degree` correctly-classified test nodes
/// of each clean degree in [1, max_degree], inspecting each perturbed graph
/// with `make_inspector(world)`'s explainer.  Mirrors the preliminary-study
/// protocol of §3 (40 nodes per degree in the paper; scaled here).
std::vector<DegreeCell> NettackDegreeSweep(
    DatasetId id, const BenchKnobs& knobs, int64_t max_degree,
    int64_t per_degree,
    const std::function<std::unique_ptr<Explainer>(const World&)>&
        make_inspector);

}  // namespace bench
}  // namespace geattack

#endif  // GEATTACK_BENCH_DEGREE_SWEEP_H_
