// Reproduces Table 1: joint attack comparison on CITESEER / CORA / ACM with
// the GNNExplainer inspector.  For each attacker: ASR, ASR-T, and the
// detection rate of its adversarial edges (Precision/Recall/F1/NDCG @15
// within the top-20 explanation subgraph), mean±std over seeds.

#include <iostream>
#include <map>

#include "bench/bench_util.h"

namespace geattack {
namespace bench {
namespace {

void RunDataset(DatasetId id, const BenchKnobs& knobs) {
  std::map<std::string, MetricColumns> columns;
  for (uint64_t seed = 0; seed < static_cast<uint64_t>(knobs.seeds); ++seed) {
    auto world = MakeWorld(id, knobs.scale, seed, knobs.targets);
    GnnExplainer inspector(world->model.get(), &world->data.features,
                           InspectorConfig(seed));
    for (const std::string& name : AttackerNames()) {
      auto attacker = MakeAttacker(name);
      Rng rng(seed * 31 + 7);
      // Plain FGA ignores the target label (untargeted); its ASR-T column
      // is rendered "-" below, as in the paper.
      const JointAttackOutcome outcome =
          EvaluateAttack(world->ctx, *attacker, world->targets, inspector,
                         EvalConfig{}, &rng);
      columns[name].Add(outcome);
    }
  }

  TablePrinter table({"Metrics (%)", "FGA", "RNA", "FGA-T", "Nettack",
                      "IG-Attack", "FGA-T&E", "GEAttack"});
  auto row = [&](const std::string& metric,
                 SeedAggregate MetricColumns::*field) {
    std::vector<std::string> cells{metric};
    for (const std::string& name : AttackerNames()) {
      if (metric == "ASR-T" && name == "FGA") {
        cells.push_back("-");
        continue;
      }
      cells.push_back((columns[name].*field).Cell());
    }
    table.AddRow(cells);
  };
  std::cout << "\n" << DatasetName(id) << "\n";
  row("ASR", &MetricColumns::asr);
  row("ASR-T", &MetricColumns::asr_t);
  row("Precision", &MetricColumns::precision);
  row("Recall", &MetricColumns::recall);
  row("F1", &MetricColumns::f1);
  row("NDCG", &MetricColumns::ndcg);
  table.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace geattack

int main() {
  using namespace geattack;
  using namespace geattack::bench;
  const BenchKnobs knobs = BenchKnobs::FromEnv();
  knobs.Describe(std::cout,
                 "Table 1 — jointly attacking GNN and GNNExplainer");
  for (DatasetId id :
       {DatasetId::kCiteseer, DatasetId::kCora, DatasetId::kAcm}) {
    RunDataset(id, knobs);
  }
  return 0;
}
