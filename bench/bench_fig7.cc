// Reproduces Figure 7: PGExplainer as the inspector for Nettack's edges by
// target degree — ASR, F1@15, NDCG@15 on CITESEER and CORA (§5.3 /
// appendix B).

#include <iostream>

#include "bench/degree_sweep.h"

int main() {
  using namespace geattack;
  using namespace geattack::bench;
  BenchKnobs knobs = BenchKnobs::FromEnv();
  // Figures default to a single seed (tables carry the ±std columns).
  knobs.seeds = EnvInt("GEATTACK_BENCH_SEEDS", 1);
  knobs.Describe(std::cout,
                 "Figure 7 — PGExplainer detection of Nettack by degree");

  const int64_t max_degree = 5;
  for (DatasetId id : {DatasetId::kCiteseer, DatasetId::kCora}) {
    auto cells = NettackDegreeSweep(
        id, knobs, max_degree, /*per_degree=*/4,
        [](const World& w) -> std::unique_ptr<Explainer> {
          PgExplainerConfig cfg;
          cfg.epochs = 40;
          auto pg = std::make_unique<PgExplainer>(w.model.get(),
                                                  &w.data.features, cfg);
          std::vector<int64_t> instances(
              w.split.train.begin(),
              w.split.train.begin() +
                  std::min<ptrdiff_t>(
                      16, static_cast<ptrdiff_t>(w.split.train.size())));
          pg->Train(w.ctx.clean_adjacency, instances,
                    PredictLabels(w.clean_logits));
          return pg;
        });
    std::cout << "\n" << DatasetName(id) << "\n";
    TablePrinter table({"Degree", "Targets", "ASR", "F1@15", "NDCG@15"});
    for (const auto& c : cells) {
      table.AddRow({std::to_string(c.degree), std::to_string(c.num_targets),
                    FormatDouble(c.asr, 3), FormatDouble(c.detection.f1, 3),
                    FormatDouble(c.detection.ndcg, 3)});
    }
    table.Print(std::cout);
  }
  return 0;
}
