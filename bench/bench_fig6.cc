// Reproduces Figure 6: effect of the number of inner explainer-mimicry
// iterations T on GEAttack's detectability (F1/NDCG @15) on CORA and ACM.
// Small T (≤ 5) already provides sufficient hypergradient signal.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace geattack;
  using namespace geattack::bench;
  BenchKnobs knobs = BenchKnobs::FromEnv();
  // Figures default to a single seed (tables carry the ±std columns).
  knobs.seeds = EnvInt("GEATTACK_BENCH_SEEDS", 1);
  knobs.Describe(std::cout, "Figure 6 — effect of inner iterations T");

  const std::vector<int64_t> ts = {1, 2, 3, 4, 5, 7, 10};
  for (DatasetId id : {DatasetId::kCora, DatasetId::kAcm}) {
    std::vector<MetricColumns> columns(ts.size());
    for (uint64_t seed = 0; seed < static_cast<uint64_t>(knobs.seeds);
         ++seed) {
      auto world = MakeWorld(id, knobs.scale, seed, knobs.targets);
      GnnExplainer inspector(world->model.get(), &world->data.features,
                             InspectorConfig(seed));
      for (size_t i = 0; i < ts.size(); ++i) {
        GeAttackConfig cfg;
        cfg.inner_steps = ts[i];
        GeAttack attack(cfg);
        Rng rng(seed * 19 + 1);
        columns[i].Add(EvaluateAttack(world->ctx, attack, world->targets,
                                      inspector, EvalConfig{}, &rng));
      }
    }
    std::cout << "\n" << DatasetName(id) << "\n";
    TablePrinter table({"T", "ASR-T", "F1@15", "NDCG@15"});
    for (size_t i = 0; i < ts.size(); ++i) {
      table.AddRow({std::to_string(ts[i]), columns[i].asr_t.Cell(),
                    columns[i].f1.Cell(), columns[i].ndcg.Cell()});
    }
    table.Print(std::cout);
  }
  return 0;
}
