#include "src/nn/sparse_forward.h"

namespace geattack {

SparseAttackForward MakeSparseAttackForward(const SubgraphView& view,
                                            const Gcn& model,
                                            const Tensor& xw1_full) {
  GEA_CHECK(xw1_full.rows() ==
            static_cast<int64_t>(view.global_to_local.size()));
  SparseAttackForward sf;
  sf.view = &view;
  const int64_t ns = view.num_nodes();
  Tensor xw1_sub(ns, xw1_full.cols());
  for (int64_t l = 0; l < ns; ++l) {
    const int64_t g = view.nodes[static_cast<size_t>(l)];
    for (int64_t j = 0; j < xw1_full.cols(); ++j)
      xw1_sub.at(l, j) = xw1_full.at(g, j);
  }
  sf.xw1 = Constant(std::move(xw1_sub), "xw1_sub");
  sf.w2 = Constant(model.w2(), "w2");
  sf.out_deg = Constant(view.out_degree, "out_deg");
  sf.base_values = view.base_values;
  sf.und_base = view.und_base;
  return sf;
}

Var RawValuesFromCandidates(const SparseAttackForward& sf, const Var& w) {
  GEA_CHECK(sf.view != nullptr && w.defined());
  GEA_CHECK(w.rows() == sf.view->num_candidates() && w.cols() == 1);
  Var base = Constant(sf.base_values, "base_values");
  if (sf.view->num_candidates() == 0) return base;
  return Add(base, SpMM(sf.view->cand_expand, w));
}

Var UndirectedValuesFromCandidates(const SparseAttackForward& sf,
                                   const Var& w) {
  GEA_CHECK(sf.view != nullptr && w.defined());
  GEA_CHECK(w.rows() == sf.view->num_candidates() && w.cols() == 1);
  Var base = Constant(sf.und_base, "und_base");
  if (sf.view->num_candidates() == 0) return base;
  return Add(base, SpMM(sf.view->cand_slot_pad, w));
}

Var DirectedFromUndirected(const SparseAttackForward& sf, const Var& und) {
  GEA_CHECK(sf.view != nullptr && und.defined());
  GEA_CHECK(und.rows() == sf.view->num_slots() && und.cols() == 1);
  // Diagonal slots carry a constant 1.0 (the +I of normalization); every
  // off-diagonal slot comes from its undirected value.
  Tensor diag(sf.view->pattern->nnz(), 1);
  for (int64_t e : sf.view->diag_nnz) diag.at(e, 0) = 1.0;
  return Add(Constant(std::move(diag), "diag"),
             SpMM(sf.view->slot_expand, und));
}

Var NormalizeSparseValues(const SparseAttackForward& sf, const Var& values) {
  GEA_CHECK(sf.view != nullptr && values.defined());
  GEA_CHECK(values.rows() == sf.view->pattern->nnz() && values.cols() == 1);
  // One fused node (single kernel pass) instead of the historical
  // rowsum/pow/gather/scale chain; bit-identical values, same gradients.
  return GcnNormValues(sf.view->pattern, values, sf.out_deg);
}

Var SparseGcnLogitsVar(const SparseAttackForward& sf, const Var& raw_values) {
  // The two layers share ONE fused normalization node, so the backward
  // chain is built once and the accumulated ∂L/∂Ã from both SpMMs flows
  // through it a single time — that sharing (not just the kernel fusion)
  // is what makes the bilevel hypergradient loop cheaper.  Forward values
  // are bit-identical to the historical composition.
  GEA_CHECK(sf.view != nullptr && raw_values.defined());
  Var norm = NormalizeSparseValues(sf, raw_values);
  Var h = Relu(SpMMValues(sf.view->pattern, norm, sf.xw1));
  return SpMMValues(sf.view->pattern, norm, MatMul(h, sf.w2));
}

void CommitCandidate(SparseAttackForward* sf, int64_t cand_index) {
  GEA_CHECK(sf != nullptr && sf->view != nullptr);
  GEA_CHECK(cand_index >= 0 && cand_index < sf->view->num_candidates());
  const auto& slots =
      sf->view->slot_nnz[static_cast<size_t>(sf->view->num_edges() +
                                             cand_index)];
  sf->base_values.at(slots.first, 0) = 1.0;
  sf->base_values.at(slots.second, 0) = 1.0;
  sf->und_base.at(sf->view->num_edges() + cand_index, 0) = 1.0;
}

}  // namespace geattack
