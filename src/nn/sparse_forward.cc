#include "src/nn/sparse_forward.h"

namespace geattack {

SparseAttackForward MakeSparseAttackForward(const SubgraphView& view,
                                            const Gcn& model,
                                            const Tensor& xw1_full) {
  GEA_CHECK(xw1_full.rows() ==
            static_cast<int64_t>(view.global_to_local.size()));
  SparseAttackForward sf;
  sf.view = &view;
  const int64_t ns = view.num_nodes();
  Tensor xw1_sub(ns, xw1_full.cols());
  for (int64_t l = 0; l < ns; ++l) {
    const int64_t g = view.nodes[static_cast<size_t>(l)];
    for (int64_t j = 0; j < xw1_full.cols(); ++j)
      xw1_sub.at(l, j) = xw1_full.at(g, j);
  }
  sf.xw1 = Constant(std::move(xw1_sub), "xw1_sub");
  sf.w2 = Constant(model.w2(), "w2");
  sf.out_deg = Constant(view.out_degree, "out_deg");
  sf.base_values = view.base_values;
  sf.und_base = view.und_base;
  return sf;
}

Var RawValuesFromCandidates(const SparseAttackForward& sf, const Var& w) {
  GEA_CHECK(sf.view != nullptr && w.defined());
  GEA_CHECK(w.rows() == sf.view->num_candidates() && w.cols() == 1);
  Var base = Constant(sf.base_values, "base_values");
  if (sf.view->num_candidates() == 0) return base;
  return Add(base, SpMM(sf.view->cand_expand, w));
}

Var UndirectedValuesFromCandidates(const SparseAttackForward& sf,
                                   const Var& w) {
  GEA_CHECK(sf.view != nullptr && w.defined());
  GEA_CHECK(w.rows() == sf.view->num_candidates() && w.cols() == 1);
  Var base = Constant(sf.und_base, "und_base");
  if (sf.view->num_candidates() == 0) return base;
  return Add(base, SpMM(sf.view->cand_slot_pad, w));
}

Var DirectedFromUndirected(const SparseAttackForward& sf, const Var& und) {
  GEA_CHECK(sf.view != nullptr && und.defined());
  GEA_CHECK(und.rows() == sf.view->num_slots() && und.cols() == 1);
  // Diagonal slots carry a constant 1.0 (the +I of normalization); every
  // off-diagonal slot comes from its undirected value.
  Tensor diag(sf.view->pattern->nnz(), 1);
  for (int64_t e : sf.view->diag_nnz) diag.at(e, 0) = 1.0;
  return Add(Constant(std::move(diag), "diag"),
             SpMM(sf.view->slot_expand, und));
}

Var NormalizeSparseValues(const SparseAttackForward& sf, const Var& values) {
  GEA_CHECK(sf.view != nullptr && values.defined());
  GEA_CHECK(values.rows() == sf.view->pattern->nnz() && values.cols() == 1);
  // One fused node (single kernel pass) instead of the historical
  // rowsum/pow/gather/scale chain; bit-identical values, same gradients.
  return GcnNormValues(sf.view->pattern, values, sf.out_deg);
}

Var SparseGcnLogitsVar(const SparseAttackForward& sf, const Var& raw_values) {
  // The two layers share ONE fused normalization node, so the backward
  // chain is built once and the accumulated ∂L/∂Ã from both SpMMs flows
  // through it a single time — that sharing (not just the kernel fusion)
  // is what makes the bilevel hypergradient loop cheaper.  Forward values
  // are bit-identical to the historical composition.
  GEA_CHECK(sf.view != nullptr && raw_values.defined());
  Var norm = NormalizeSparseValues(sf, raw_values);
  Var h = Relu(SpMMValues(sf.view->pattern, norm, sf.xw1));
  return SpMMValues(sf.view->pattern, norm, MatMul(h, sf.w2));
}

StackedAttackForward MakeStackedAttackForward(const BatchedSubgraphView& bview,
                                              const Gcn& model,
                                              const Tensor& xw1_full) {
  GEA_CHECK(xw1_full.rows() ==
            static_cast<int64_t>(bview.global_to_local.size()));
  StackedAttackForward sf;
  sf.bview = &bview;
  const int64_t k = bview.num_targets();
  const int64_t ns = bview.num_nodes();
  const int64_t h = xw1_full.cols();
  sf.hidden = h;
  sf.classes = model.w2().cols();

  // One gather of the union rows, tiled k times for the stacked layer-1 RHS.
  Tensor xw1_sub(ns, h);
  Tensor xw1_tiled(ns, k * h);
  for (int64_t l = 0; l < ns; ++l) {
    const int64_t g = bview.nodes[static_cast<size_t>(l)];
    for (int64_t j = 0; j < h; ++j) {
      const double v = xw1_full.at(g, j);
      xw1_sub.at(l, j) = v;
      for (int64_t t = 0; t < k; ++t) xw1_tiled.at(l, t * h + j) = v;
    }
  }
  sf.xw1 = Constant(std::move(xw1_sub), "xw1_union");
  sf.xw1_tiled = Constant(std::move(xw1_tiled), "xw1_tiled");
  sf.w2 = Constant(model.w2(), "w2");

  Tensor out_deg(ns, k);
  for (int64_t t = 0; t < k; ++t)
    for (int64_t l = 0; l < ns; ++l)
      out_deg.at(l, t) =
          bview.per_target[static_cast<size_t>(t)].out_degree.at(l, 0);
  sf.out_deg = Constant(std::move(out_deg), "out_deg_stacked");

  // Slot ownership: the clean + diagonal support of the column's base
  // values plus its candidate slots (whose base is 0 until committed).
  Tensor slot_mask(bview.pattern->nnz(), k);
  for (int64_t t = 0; t < k; ++t) {
    const SubgraphView& view = bview.per_target[static_cast<size_t>(t)];
    for (int64_t e = 0; e < bview.pattern->nnz(); ++e)
      slot_mask.at(e, t) = view.base_values.at(e, 0);
    for (int64_t c = 0; c < view.num_candidates(); ++c) {
      const auto& pair =
          view.slot_nnz[static_cast<size_t>(view.num_edges() + c)];
      slot_mask.at(pair.first, t) = 1.0;
      slot_mask.at(pair.second, t) = 1.0;
    }
  }
  sf.slot_mask = Constant(std::move(slot_mask), "slot_mask");

  sf.per_target.reserve(static_cast<size_t>(k));
  for (int64_t t = 0; t < k; ++t) {
    SparseAttackForward pt;
    pt.view = &bview.per_target[static_cast<size_t>(t)];
    pt.xw1 = sf.xw1;
    pt.w2 = sf.w2;
    pt.out_deg = Constant(pt.view->out_degree, "out_deg");
    pt.base_values = pt.view->base_values;
    pt.und_base = pt.view->und_base;
    sf.per_target.push_back(std::move(pt));
  }
  return sf;
}

namespace {

Var ScatterPairsColumn(const StackedAttackForward& sf, const Var& u,
                       int64_t t);

/// out[c] = g[pair_c.first, t] + g[pair_c.second, t] over target t's
/// candidate slot pairs — the O(m) adjoint of scattering w onto column t.
/// Bit-identical to the SpMM(cand_expandᵀ, g column) gather (both nnz
/// positions are visited in ascending order).
Var GatherPairsColumn(const StackedAttackForward& sf, const Var& g,
                      int64_t t) {
  const SubgraphView* view = sf.per_target[static_cast<size_t>(t)].view;
  const int64_t m = view->num_candidates();
  const int64_t k = sf.num_targets();
  Tensor out(m, 1);
  const double* gd = g.value().data().data();
  for (int64_t c = 0; c < m; ++c) {
    const auto& pair =
        view->slot_nnz[static_cast<size_t>(view->num_edges() + c)];
    out.at(c, 0) = gd[pair.first * k + t] + gd[pair.second * k + t];
  }
  const StackedAttackForward* sfp = &sf;
  return MakeOpNode(
      std::move(out), {g},
      [sfp, t](const Var& u) -> std::vector<Var> {
        return {ScatterPairsColumn(*sfp, u, t)};
      },
      "gather_pairs_column");
}

/// (nnz, k) zero matrix with u scattered onto target t's candidate slot
/// pairs — the adjoint of GatherPairsColumn.
Var ScatterPairsColumn(const StackedAttackForward& sf, const Var& u,
                       int64_t t) {
  const SubgraphView* view = sf.per_target[static_cast<size_t>(t)].view;
  const int64_t m = view->num_candidates();
  const int64_t k = sf.num_targets();
  Tensor out(sf.bview->pattern->nnz(), k);
  for (int64_t c = 0; c < m; ++c) {
    const auto& pair =
        view->slot_nnz[static_cast<size_t>(view->num_edges() + c)];
    out.at(pair.first, t) += u.value().at(c, 0);
    out.at(pair.second, t) += u.value().at(c, 0);
  }
  const StackedAttackForward* sfp = &sf;
  return MakeOpNode(
      std::move(out), {u},
      [sfp, t](const Var& g) -> std::vector<Var> {
        return {GatherPairsColumn(*sfp, g, t)};
      },
      "scatter_pairs_column");
}

}  // namespace

Var StackedRawValues(const StackedAttackForward& sf,
                     const std::vector<Var>& ws) {
  GEA_CHECK(sf.bview != nullptr);
  const int64_t k = sf.num_targets();
  GEA_CHECK(static_cast<int64_t>(ws.size()) == k && k >= 1);
  const int64_t nnz = sf.bview->pattern->nnz();
  Tensor out(nnz, k);
  std::vector<char> need(static_cast<size_t>(k), 0);
  for (int64_t t = 0; t < k; ++t) {
    const SparseAttackForward& pt = sf.per_target[static_cast<size_t>(t)];
    const Var& w = ws[static_cast<size_t>(t)];
    GEA_CHECK(w.defined() && w.rows() == pt.view->num_candidates() &&
              w.cols() == 1);
    need[static_cast<size_t>(t)] = w.requires_grad() ? 1 : 0;
    // base + scattered w, exactly like Add(base, SpMM(cand_expand, w)):
    // x + 0.0 == x bitwise, and candidate bases start at 0.0.
    const double* base = pt.base_values.data().data();
    for (int64_t e = 0; e < nnz; ++e) out.at(e, t) = base[e];
    for (int64_t c = 0; c < pt.view->num_candidates(); ++c) {
      const auto& pair =
          pt.view->slot_nnz[static_cast<size_t>(pt.view->num_edges() + c)];
      out.at(pair.first, t) += w.value().at(c, 0);
      out.at(pair.second, t) += w.value().at(c, 0);
    }
  }
  const StackedAttackForward* sfp = &sf;
  return MakeOpNode(
      std::move(out), ws,
      [sfp, need](const Var& g) -> std::vector<Var> {
        std::vector<Var> grads(need.size());
        for (size_t t = 0; t < need.size(); ++t)
          if (need[t])
            grads[t] = GatherPairsColumn(*sfp, g, static_cast<int64_t>(t));
        return grads;
      },
      "stacked_raw_values");
}

Var StackedGcnLogitsVarFromValues(const StackedAttackForward& sf,
                                  const Var& values) {
  GEA_CHECK(sf.bview != nullptr && values.defined());
  const int64_t k = sf.num_targets();
  const auto& pattern = sf.bview->pattern;
  GEA_CHECK(values.rows() == pattern->nnz() && values.cols() == k);
  // ONE stacked normalization node shared by both layers: the backward
  // chain is built once and ∂L/∂Ã from both SpMMs flows through it a
  // single time, exactly like the single-target SparseGcnLogitsVar.
  Var norm = GcnNormValuesStacked(pattern, values, sf.out_deg);
  Var h = Relu(SpMMValuesStacked(pattern, norm, sf.xw1_tiled, sf.slot_mask));
  Var hw = BlockDiagMatMul(h, sf.w2, k);
  return SpMMValuesStacked(pattern, norm, hw, sf.slot_mask);
}

Var StackedGcnLogitsVar(const StackedAttackForward& sf,
                        const std::vector<Var>& raw_columns) {
  GEA_CHECK(sf.bview != nullptr);
  const int64_t k = sf.num_targets();
  GEA_CHECK(static_cast<int64_t>(raw_columns.size()) == k && k >= 1);
  const auto& pattern = sf.bview->pattern;
  for (const Var& col : raw_columns) {
    GEA_CHECK(col.defined() && col.rows() == pattern->nnz() &&
              col.cols() == 1);
  }
  return StackedGcnLogitsVarFromValues(sf, StackCols(raw_columns));
}

Var StackedLogitsBlock(const StackedAttackForward& sf, const Var& stacked,
                       int64_t t) {
  GEA_CHECK(t >= 0 && t < sf.num_targets());
  return SliceCols(stacked, t * sf.classes, sf.classes);
}

void CommitCandidate(SparseAttackForward* sf, int64_t cand_index) {
  GEA_CHECK(sf != nullptr && sf->view != nullptr);
  GEA_CHECK(cand_index >= 0 && cand_index < sf->view->num_candidates());
  const auto& slots =
      sf->view->slot_nnz[static_cast<size_t>(sf->view->num_edges() +
                                             cand_index)];
  sf->base_values.at(slots.first, 0) = 1.0;
  sf->base_values.at(slots.second, 0) = 1.0;
  sf->und_base.at(sf->view->num_edges() + cand_index, 0) = 1.0;
}

}  // namespace geattack
