#include "src/nn/linearized_gcn.h"

#include <cmath>

namespace geattack {

LinearizedGcn::LinearizedGcn(const Gcn& model, const Tensor& features) {
  xw_ = features.MatMul(model.w1()).MatMul(model.w2());
}

Tensor LinearizedGcn::LogitsRow(const Tensor& adjacency, int64_t node) const {
  const Tensor norm = NormalizeAdjacency(adjacency);
  // [Ã²]_node,: = Ã_node,: · Ã ; then · XW.
  Tensor row = norm.Row(node).MatMul(norm);
  return row.MatMul(xw_);
}

Tensor LinearizedGcn::Logits(const Tensor& adjacency) const {
  const Tensor norm = NormalizeAdjacency(adjacency);
  return norm.MatMul(norm.MatMul(xw_));
}

Tensor LinearizedGcn::LogitsFromNormalized(const CsrMatrix& norm_adj) const {
  return norm_adj.SpMM(norm_adj.SpMM(xw_));
}

Tensor LinearizedGcn::LogitsRowFromNormalized(const CsrMatrix& norm_adj,
                                              int64_t node) const {
  GEA_CHECK(node >= 0 && node < norm_adj.rows());
  const CsrPattern& p = *norm_adj.pattern();
  const std::vector<double>& v = norm_adj.values();
  // Two-hop row: row2 = Ã_node,: · Ã, accumulated sparsely.
  std::vector<double> row2(ZU(norm_adj.cols()), 0.0);
  for (int64_t e = p.row_ptr[ZU(node)]; e < p.row_ptr[ZU(node + 1)]; ++e) {
    const int64_t j = p.col_idx[ZU(e)];
    const double w = v[ZU(e)];
    for (int64_t f = p.row_ptr[ZU(j)]; f < p.row_ptr[ZU(j + 1)]; ++f)
      row2[ZU(p.col_idx[ZU(f)])] += w * v[ZU(f)];
  }
  Tensor out(1, xw_.cols());
  for (int64_t k = 0; k < norm_adj.cols(); ++k) {
    const double w = row2[ZU(k)];
    if (w == 0.0) continue;
    for (int64_t c = 0; c < xw_.cols(); ++c)
      out.at(0, c) += w * xw_.at(k, c);
  }
  return out;
}

Tensor LinearizedGcn::LogitsRowWithEdgeAdded(const CsrMatrix& norm_adj,
                                             const std::vector<double>& degp1,
                                             int64_t v, int64_t jnew) const {
  GEA_CHECK(v >= 0 && v < norm_adj.rows());
  GEA_CHECK(jnew >= 0 && jnew < norm_adj.rows() && jnew != v);
  const CsrPattern& p = *norm_adj.pattern();
  const std::vector<double>& val = norm_adj.values();
  // Degree-rescaling factors of the two touched nodes; every stored
  // normalized entry (a, b) becomes val·f(a)·f(b).
  const double fv = std::sqrt(degp1[ZU(v)] /
                              (degp1[ZU(v)] + 1.0));
  const double fj = std::sqrt(degp1[ZU(jnew)] /
                              (degp1[ZU(jnew)] + 1.0));
  auto f = [&](int64_t i) { return i == v ? fv : (i == jnew ? fj : 1.0); };
  const double new_entry =
      1.0 / std::sqrt((degp1[ZU(v)] + 1.0) *
                      (degp1[ZU(jnew)] + 1.0));

  // row2 = Ã'_v,: · Ã' accumulated sparsely; Ã' = Ã rescaled + the trial
  // entries (v, jnew) and (jnew, v).
  std::vector<double> row2(ZU(norm_adj.cols()), 0.0);
  auto expand = [&](int64_t k, double w_vk) {
    for (int64_t e = p.row_ptr[ZU(k)]; e < p.row_ptr[ZU(k + 1)]; ++e) {
      const int64_t l = p.col_idx[ZU(e)];
      row2[ZU(l)] +=
          w_vk * val[ZU(e)] * f(k) * f(l);
    }
    // The trial edge extends row v with column jnew and row jnew with
    // column v.
    if (k == v) row2[ZU(jnew)] += w_vk * new_entry;
    if (k == jnew) row2[ZU(v)] += w_vk * new_entry;
  };
  for (int64_t e = p.row_ptr[ZU(v)]; e < p.row_ptr[ZU(v + 1)]; ++e) {
    const int64_t k = p.col_idx[ZU(e)];
    expand(k, val[ZU(e)] * fv * f(k));
  }
  expand(jnew, new_entry);

  Tensor out(1, xw_.cols());
  for (int64_t k = 0; k < norm_adj.cols(); ++k) {
    const double w = row2[ZU(k)];
    if (w == 0.0) continue;
    for (int64_t c = 0; c < xw_.cols(); ++c)
      out.at(0, c) += w * xw_.at(k, c);
  }
  return out;
}

namespace {

std::vector<int64_t> AllDegrees(const Graph& g) {
  std::vector<int64_t> d(ZU(g.num_nodes()));
  for (int64_t i = 0; i < g.num_nodes(); ++i) d[ZU(i)] = g.Degree(i);
  return d;
}

}  // namespace

DegreeDistributionTest::DegreeDistributionTest(const Graph& graph,
                                               int64_t d_min,
                                               double threshold)
    : d_min_(d_min), threshold_(threshold), clean_degrees_(AllDegrees(graph)) {
  clean_ll_ = LogLikelihoodAlpha(clean_degrees_, &clean_alpha_);
}

double DegreeDistributionTest::LogLikelihoodAlpha(
    const std::vector<int64_t>& degrees, double* alpha_out) const {
  // Power-law MLE over degrees >= d_min (Nettack, following Clauset et al.).
  int64_t n = 0;
  double sum_log = 0.0;
  for (int64_t d : degrees) {
    if (d >= d_min_) {
      ++n;
      sum_log += std::log(static_cast<double>(d));
    }
  }
  if (n == 0) {
    if (alpha_out != nullptr) *alpha_out = 0.0;
    return 0.0;
  }
  const double nd = static_cast<double>(n);
  const double alpha =
      nd / (sum_log - nd * std::log(static_cast<double>(d_min_) - 0.5)) + 1.0;
  const double ll = nd * std::log(alpha) +
                    nd * alpha * std::log(static_cast<double>(d_min_)) -
                    (alpha + 1.0) * sum_log;
  if (alpha_out != nullptr) *alpha_out = alpha;
  return ll;
}

bool DegreeDistributionTest::EdgeAdditionUnnoticeable(const Graph& current,
                                                      int64_t u,
                                                      int64_t v) const {
  std::vector<int64_t> degrees = AllDegrees(current);
  GEA_CHECK(u >= 0 && u < static_cast<int64_t>(degrees.size()));
  GEA_CHECK(v >= 0 && v < static_cast<int64_t>(degrees.size()));
  degrees[ZU(u)] += 1;
  degrees[ZU(v)] += 1;
  double alpha_new = 0.0;
  const double ll_new = LogLikelihoodAlpha(degrees, &alpha_new);

  // Combined-sample likelihood: clean + perturbed sequences fit together.
  std::vector<int64_t> combined = clean_degrees_;
  combined.insert(combined.end(), degrees.begin(), degrees.end());
  double alpha_comb = 0.0;
  const double ll_comb = LogLikelihoodAlpha(combined, &alpha_comb);

  const double ratio = -2.0 * ll_comb + 2.0 * (clean_ll_ + ll_new);
  return ratio < threshold_;
}

}  // namespace geattack
