// Linearized two-layer GCN surrogate used by Nettack.
//
// Nettack (Zügner et al., KDD'18) scores perturbations on a surrogate in
// which the nonlinearity is dropped:  Z = Ã² X W  with W = W₁W₂.  Logit
// differences on Z are cheap to evaluate for candidate edge flips, which is
// what makes Nettack's greedy search tractable.

#ifndef GEATTACK_SRC_NN_LINEARIZED_GCN_H_
#define GEATTACK_SRC_NN_LINEARIZED_GCN_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/nn/gcn.h"
#include "src/tensor/tensor.h"

namespace geattack {

/// The linearized surrogate.  Holds XW (features times collapsed weight) so
/// per-candidate scoring only touches adjacency rows.
class LinearizedGcn {
 public:
  /// Collapses the trained GCN: W = W₁·W₂.
  LinearizedGcn(const Gcn& model, const Tensor& features);

  /// Surrogate logits row for `node` under raw adjacency `adjacency`:
  /// [Ã²]_node,: · XW.  O(n²) per call.
  Tensor LogitsRow(const Tensor& adjacency, int64_t node) const;

  /// Full surrogate logits, O(n²·c).
  Tensor Logits(const Tensor& adjacency) const;

  /// Sparse surrogate logits: Ã·(Ã·XW), O(|E|·c).  Unlike the dense
  /// overloads above, these take an *already-normalized* CSR adjacency —
  /// the "FromNormalized" names make the differing precondition explicit —
  /// so one NormalizeAdjacencyCsr can be amortized over many calls.
  Tensor LogitsFromNormalized(const CsrMatrix& norm_adj) const;

  /// Sparse surrogate logits row: expands the two-hop neighborhood of
  /// `node` through the CSR rows, O(Σ_{j∈N(node)} deg(j) + n·c).
  Tensor LogitsRowFromNormalized(const CsrMatrix& norm_adj,
                                 int64_t node) const;

  /// Surrogate logits row for `node` after *hypothetically* adding the
  /// absent edge (node, j).  Since the 0/1 adjacency's normalized entries
  /// are 1/√(d̃_u·d̃_v), the trial edge only rescales entries incident to
  /// node or j by √(d̃/(d̃+1)); this walks the two-hop expansion applying
  /// those factors on the fly — O(two-hop volume) per candidate, no CSR is
  /// ever rebuilt.  `degp1` holds the current d̃ = degree + 1 per node
  /// (Nettack maintains it incrementally across greedy picks).
  Tensor LogitsRowWithEdgeAdded(const CsrMatrix& norm_adj,
                                const std::vector<double>& degp1,
                                int64_t node, int64_t j) const;

  int64_t num_classes() const { return xw_.cols(); }

 private:
  Tensor xw_;  // n x c.
};

/// Degree-distribution preservation test from the Nettack paper:
/// adding/removing edges must keep the power-law likelihood-ratio statistic
/// of the degree sequence below a χ²(1) threshold.  `DegreeTest` answers
/// whether flipping (u,v) on `graph` is unnoticeable.
class DegreeDistributionTest {
 public:
  /// Captures the clean graph's degree sequence.  `d_min` is the minimum
  /// degree included in the power-law fit (Nettack uses 2);
  /// `significance` is the χ² cutoff (Nettack uses 0.004 ≈ p<0.95 band).
  explicit DegreeDistributionTest(const Graph& graph, int64_t d_min = 2,
                                  double threshold = 0.004);

  /// True if adding edge (u,v) to the *current* degree sequence keeps the
  /// combined log-likelihood-ratio statistic below the threshold.
  bool EdgeAdditionUnnoticeable(const Graph& current, int64_t u,
                                int64_t v) const;

 private:
  double LogLikelihoodAlpha(const std::vector<int64_t>& degrees,
                            double* alpha_out) const;

  int64_t d_min_;
  double threshold_;
  std::vector<int64_t> clean_degrees_;
  double clean_ll_;
  double clean_alpha_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_NN_LINEARIZED_GCN_H_
