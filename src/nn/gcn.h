// Two-layer graph convolutional network (Kipf & Welling), the victim model
// of the paper:  f_θ(A, X) = softmax( Ã σ( Ã X W₁ ) W₂ ),  Ã the normalized
// adjacency (Eq. 1).
//
// Two forward paths are provided:
//   * a plain-Tensor path for inference/training-time evaluation, and
//   * a differentiable path (GcnForwardContext / GcnLogitsVar) used by the
//     attacks and explainers, where gradients flow into the (raw or masked)
//     adjacency.  The context caches X·W₁ as a constant — X and the trained
//     weights never change at attack time — so each forward costs O(n²·h)
//     instead of O(n·d·h), which is what makes the integrated-gradients and
//     bilevel GEAttack loops affordable.

#ifndef GEATTACK_SRC_NN_GCN_H_
#define GEATTACK_SRC_NN_GCN_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/random.h"
#include "src/tensor/tensor.h"

namespace geattack {

/// Architecture of the two-layer GCN.
struct GcnConfig {
  int64_t in_dim = 0;
  int64_t hidden_dim = 16;
  int64_t num_classes = 0;
};

/// The victim GCN.  Weights are plain Tensors; the trainer mutates them via
/// the accessors.
class Gcn {
 public:
  /// Glorot-initialized model.
  Gcn(const GcnConfig& config, Rng* rng);

  const GcnConfig& config() const { return config_; }
  const Tensor& w1() const { return w1_; }
  const Tensor& w2() const { return w2_; }
  Tensor& mutable_w1() { return w1_; }
  Tensor& mutable_w2() { return w2_; }

  /// Logits (pre-softmax) given an already-normalized adjacency.
  Tensor Logits(const Tensor& norm_adj, const Tensor& features) const;

  /// Sparse forward: logits given an already-normalized CSR adjacency.
  /// O(|E|·h) instead of O(n²·h) — the production inference path.
  Tensor Logits(const CsrMatrix& norm_adj, const Tensor& features) const;

  /// Inference-only sparse forward with float32-stored adjacency values
  /// (SpmmRawF32): halves the value-array traffic at ~1e-7 relative logit
  /// error.  Strictly for eval paths (e.g. PerturbedLogits scoring) — never
  /// for training or attack gradients, and off by default everywhere.
  /// Callers that reuse one adjacency across forwards should convert once
  /// with ValuesToF32 and use the (pattern, values) overload; this
  /// convenience wrapper converts per call.
  Tensor LogitsF32(const CsrMatrix& norm_adj, const Tensor& features) const;

  /// Float32 forward on pre-converted values (pattern order of `pattern`).
  Tensor LogitsF32(const CsrPattern& pattern, const std::vector<float>& values,
                   const Tensor& features) const;

  /// Logits given a raw 0/1 adjacency (normalizes internally).
  Tensor LogitsFromRaw(const Tensor& adjacency, const Tensor& features) const;

  /// Logits for `graph` via the sparse path (normalizes in CSR; never
  /// materializes a dense matrix).
  Tensor LogitsFromGraph(const Graph& graph, const Tensor& features) const;

  /// Post-ReLU first-layer representations (used by PGExplainer's edge
  /// embedder).
  Tensor Hidden(const Tensor& norm_adj, const Tensor& features) const;

  /// Sparse twin of Hidden.
  Tensor Hidden(const CsrMatrix& norm_adj, const Tensor& features) const;

 private:
  GcnConfig config_;
  Tensor w1_;
  Tensor w2_;
};

/// Attack/explainer-time forward state: the trained weights folded into
/// constants, with X·W₁ precomputed.
struct GcnForwardContext {
  Var xw1;  ///< X·W₁ as a (n, hidden) constant.
  Var w2;   ///< W₂ as a constant.
};

/// Builds the cached context for `model` on `features`.
GcnForwardContext MakeForwardContext(const Gcn& model, const Tensor& features);

/// Differentiable logits from a *raw* (unnormalized, possibly relaxed or
/// masked) adjacency Var: normalizes on-graph, then applies the cached
/// weights.  Gradients flow into `raw_adjacency`.
Var GcnLogitsVar(const GcnForwardContext& ctx, const Var& raw_adjacency);

/// Mean cross-entropy of `logits` rows `nodes` against `labels[node]`,
/// as a single graph op (one constant scatter matrix) — Eq. (1)'s loss.
Var CrossEntropyRows(const Var& logits, const std::vector<int64_t>& nodes,
                     const std::vector<int64_t>& labels);

/// Argmax prediction per node.
std::vector<int64_t> PredictLabels(const Tensor& logits);

/// Fraction of `nodes` whose argmax prediction equals `labels[node]`.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& nodes);

/// Classification margin of `node`: softmax probability of `label` minus the
/// best other class.  Positive = correctly classified with that much slack.
double ClassificationMargin(const Tensor& logits, int64_t node, int64_t label);

}  // namespace geattack

#endif  // GEATTACK_SRC_NN_GCN_H_
