#include "src/nn/gcn.h"

#include <cmath>

namespace geattack {

Gcn::Gcn(const GcnConfig& config, Rng* rng) : config_(config) {
  GEA_CHECK(rng != nullptr);
  GEA_CHECK(config.in_dim > 0 && config.hidden_dim > 0 &&
            config.num_classes > 0);
  w1_ = rng->GlorotTensor(config.in_dim, config.hidden_dim);
  w2_ = rng->GlorotTensor(config.hidden_dim, config.num_classes);
}

Tensor Gcn::Logits(const Tensor& norm_adj, const Tensor& features) const {
  Tensor h = norm_adj.MatMul(features.MatMul(w1_)).Relu();
  return norm_adj.MatMul(h.MatMul(w2_));
}

Tensor Gcn::Logits(const CsrMatrix& norm_adj, const Tensor& features) const {
  Tensor h = norm_adj.SpMM(features.MatMul(w1_)).Relu();
  return norm_adj.SpMM(h.MatMul(w2_));
}

Tensor Gcn::LogitsF32(const CsrMatrix& norm_adj,
                      const Tensor& features) const {
  GEA_CHECK(!norm_adj.empty());
  return LogitsF32(*norm_adj.pattern(), ValuesToF32(norm_adj.values()),
                   features);
}

Tensor Gcn::LogitsF32(const CsrPattern& pattern,
                      const std::vector<float>& values,
                      const Tensor& features) const {
  Tensor h = SpmmRawF32(pattern, values, features.MatMul(w1_)).Relu();
  return SpmmRawF32(pattern, values, h.MatMul(w2_));
}

Tensor Gcn::LogitsFromRaw(const Tensor& adjacency,
                          const Tensor& features) const {
  return Logits(NormalizeAdjacency(adjacency), features);
}

Tensor Gcn::LogitsFromGraph(const Graph& graph,
                            const Tensor& features) const {
  return Logits(NormalizeAdjacencyCsr(graph), features);
}

Tensor Gcn::Hidden(const Tensor& norm_adj, const Tensor& features) const {
  return norm_adj.MatMul(features.MatMul(w1_)).Relu();
}

Tensor Gcn::Hidden(const CsrMatrix& norm_adj, const Tensor& features) const {
  return norm_adj.SpMM(features.MatMul(w1_)).Relu();
}

GcnForwardContext MakeForwardContext(const Gcn& model,
                                     const Tensor& features) {
  GcnForwardContext ctx;
  ctx.xw1 = Constant(features.MatMul(model.w1()), "xw1");
  ctx.w2 = Constant(model.w2(), "w2");
  return ctx;
}

Var GcnLogitsVar(const GcnForwardContext& ctx, const Var& raw_adjacency) {
  Var norm = NormalizeAdjacencyVar(raw_adjacency);
  Var h = Relu(MatMul(norm, ctx.xw1));
  return MatMul(norm, MatMul(h, ctx.w2));
}

Var CrossEntropyRows(const Var& logits, const std::vector<int64_t>& nodes,
                     const std::vector<int64_t>& labels) {
  GEA_CHECK(!nodes.empty());
  Tensor scatter(logits.rows(), logits.cols());
  const double w = 1.0 / static_cast<double>(nodes.size());
  for (int64_t node : nodes) {
    GEA_CHECK(node >= 0 && node < logits.rows());
    const int64_t y = labels[ZU(node)];
    GEA_CHECK(y >= 0 && y < logits.cols());
    scatter.at(node, y) += w;
  }
  return Neg(Sum(Mul(LogSoftmaxRows(logits), Constant(scatter, "ce_mask"))));
}

std::vector<int64_t> PredictLabels(const Tensor& logits) {
  std::vector<int64_t> pred(ZU(logits.rows()));
  for (int64_t i = 0; i < logits.rows(); ++i) pred[ZU(i)] = logits.ArgMaxRow(i);
  return pred;
}

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels,
                const std::vector<int64_t>& nodes) {
  if (nodes.empty()) return 0.0;
  int64_t correct = 0;
  for (int64_t node : nodes)
    if (logits.ArgMaxRow(node) == labels[ZU(node)]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(nodes.size());
}

double ClassificationMargin(const Tensor& logits, int64_t node,
                            int64_t label) {
  GEA_CHECK(node >= 0 && node < logits.rows());
  GEA_CHECK(label >= 0 && label < logits.cols());
  // Softmax of the node's row.
  double maxv = logits.at(node, 0);
  for (int64_t c = 1; c < logits.cols(); ++c)
    maxv = std::max(maxv, logits.at(node, c));
  double denom = 0.0;
  for (int64_t c = 0; c < logits.cols(); ++c)
    denom += std::exp(logits.at(node, c) - maxv);
  auto prob = [&](int64_t c) {
    return std::exp(logits.at(node, c) - maxv) / denom;
  };
  double best_other = 0.0;
  for (int64_t c = 0; c < logits.cols(); ++c)
    if (c != label) best_other = std::max(best_other, prob(c));
  return prob(label) - best_other;
}

}  // namespace geattack
