// Adam optimizer over a set of Tensor parameters.

#ifndef GEATTACK_SRC_NN_ADAM_H_
#define GEATTACK_SRC_NN_ADAM_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

namespace geattack {

/// Adam hyperparameters (PyTorch defaults).
struct AdamConfig {
  double lr = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double weight_decay = 0.0;  ///< L2 added to the gradient (decoupled = no).
};

/// Adam over externally owned parameters.  Parameters are registered once;
/// Step() applies one update given the matching gradient list.
class Adam {
 public:
  explicit Adam(const AdamConfig& config) : config_(config) {}

  /// Registers a parameter; returns its slot index.
  int64_t Register(Tensor* param);

  /// One Adam step: grads[i] applies to the i-th registered parameter.
  void Step(const std::vector<Tensor>& grads);

  int64_t step_count() const { return t_; }

 private:
  AdamConfig config_;
  std::vector<Tensor*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t t_ = 0;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_NN_ADAM_H_
