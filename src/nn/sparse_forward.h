// Differentiable sparse GCN forward over a SubgraphView's candidate-edge
// values — the kernel of the sparse attack loops.
//
// The dense attack path relaxes the whole n x n adjacency to a Var; every
// outer iteration then costs O(n²·h) in time *and* memory, which caps the
// paper's bilevel attack at toy graphs.  Here the only free parameters are
// an (m,1) Var of candidate-edge values (and, for the explainer inner
// loops, an (S,1) Var of per-edge mask logits); the adjacency itself is a
// value vector over the view's static CSR pattern.  GCN normalization is
// re-expressed per slot,
//
//   Ã_e = a_e · d̃^{-1/2}[row_e] · d̃^{-1/2}[col_e],
//     d̃ = pattern row sums of a + out-of-view degree,
//
// by the fused GcnNormValues node, and the two-layer forward runs through
// SpMMValues — whose backward emits SpMMValues/SpmmValueGrad nodes, so the
// second-order hypergradient GEAttack needs is available exactly as on the
// dense path.  Everything costs O((|E_sub| + m)·h) per evaluation.
//
// Numerics match Gcn::LogitsFromRaw / GcnLogitsVar to roundoff whenever the
// view contains every node within GCN-depth hops of the target and the
// augmented edges (a full view always qualifies).

#ifndef GEATTACK_SRC_NN_SPARSE_FORWARD_H_
#define GEATTACK_SRC_NN_SPARSE_FORWARD_H_

#include "src/graph/subgraph.h"
#include "src/nn/gcn.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/tensor.h"

namespace geattack {

/// View-bound forward state: the trained weights folded into constants on
/// the view's local indices, plus the mutable committed base values.
/// Build once per target; `Commit*` applies greedy picks in place
/// (values-only — the pattern is never rebuilt).
struct SparseAttackForward {
  const SubgraphView* view = nullptr;
  Var xw1;      ///< (n_sub, h) constant: rows of X·W₁ for the view nodes.
  Var w2;       ///< (h, c) constant.
  Var out_deg;  ///< (n_sub, 1) constant: out-of-view degree correction.
  /// Committed per-nnz values: clean edges and diagonal 1.0, candidates 0.0
  /// until committed.
  Tensor base_values;  // (nnz, 1)
  /// Committed per-undirected-slot values (clean 1.0 / candidate 0.0).
  Tensor und_base;  // (S, 1)
};

/// Builds the forward state; `xw1_full` are the (n_global, h) rows of X·W₁
/// (cache it across targets — see CachedXw1 in src/attack/attack.h).
SparseAttackForward MakeSparseAttackForward(const SubgraphView& view,
                                            const Gcn& model,
                                            const Tensor& xw1_full);

/// Raw (A+I) slot values from relaxed candidate values `w` (m,1):
/// committed base plus w scattered onto each candidate's two slots.
Var RawValuesFromCandidates(const SparseAttackForward& sf, const Var& w);

/// Per-undirected-slot adjacency values from `w`: 1.0 on clean (and
/// committed) edges, w_k on candidate slot k.  Input to explainer masking.
Var UndirectedValuesFromCandidates(const SparseAttackForward& sf,
                                   const Var& w);

/// Expands (S,1) undirected edge values to the (nnz,1) raw value vector
/// (both directed slots per edge, 1.0 on the diagonal).
Var DirectedFromUndirected(const SparseAttackForward& sf, const Var& und);

/// Differentiable GCN normalization of raw slot values:
/// Ã_e = v_e · d̃^{-1/2}[r_e] · d̃^{-1/2}[c_e].
Var NormalizeSparseValues(const SparseAttackForward& sf, const Var& values);

/// Two-layer GCN logits over the view from *raw* (unnormalized) slot
/// values; normalizes on-graph, mirroring GcnLogitsVar.  One fused
/// GcnNormValues node (a single kernel pass replacing the historical
/// rowsum/gather/scale chain) is shared by both layers' SpMMValues, so the
/// normalization backward is built once; bit-identical forward values to
/// the unfused composition.
Var SparseGcnLogitsVar(const SparseAttackForward& sf, const Var& raw_values);

/// Marks candidate `cand_index` as a committed edge: its slots become 1.0
/// in both base vectors.  O(1).
void CommitCandidate(SparseAttackForward* sf, int64_t cand_index);

// ----- Stacked multi-target forward (batched attacks). ----------------------

/// Group-level forward state: ONE X·W₁ gather over the union nodes shared
/// by k per-target SparseAttackForwards (their value assembly and commit
/// machinery is exactly the single-target one — each runs on its own view
/// from BatchedSubgraphView), plus the stacked constants of the wide
/// forward.
struct StackedAttackForward {
  const BatchedSubgraphView* bview = nullptr;
  /// Per-target states over the shared union pattern; index matches
  /// bview->per_target.  Their xw1/w2/out_deg Vars alias the shared ones.
  std::vector<SparseAttackForward> per_target;
  Var xw1;        ///< (n_union, h) shared constant.
  Var xw1_tiled;  ///< (n_union, k·h): k copies side by side — layer-1 RHS.
  Var w2;         ///< (h, c) constant.
  Var out_deg;    ///< (n_union, k): per-target out-degree columns.
  /// (nnz, k) slot-ownership constant: 1.0 where column t may ever hold a
  /// nonzero value or have its gradient read (t's in-ball clean edges,
  /// diagonal, and candidate slots), 0.0 on foreign slots.  Lets the
  /// stacked backward skip per-column gradient work on slots the column
  /// never owns.
  Var slot_mask;
  int64_t hidden = 0;
  int64_t classes = 0;

  int64_t num_targets() const {
    return static_cast<int64_t>(per_target.size());
  }
};

/// Builds the stacked forward state for a target group.
StackedAttackForward MakeStackedAttackForward(const BatchedSubgraphView& bview,
                                              const Gcn& model,
                                              const Tensor& xw1_full);

/// The stacked twin of RawValuesFromCandidates: ONE (nnz, k) node holding
/// every target's committed base column with its candidate Var `ws[t]`
/// scattered onto its two directed slots — one pass instead of k
/// Constant/scatter/Add chains, with O(m_t) per-target gathers in the
/// backward.  Column t is bit-identical to
/// RawValuesFromCandidates(sf.per_target[t], ws[t]).
Var StackedRawValues(const StackedAttackForward& sf,
                     const std::vector<Var>& ws);

/// The wide two-layer GCN forward: `raw_columns[t]` is target t's (nnz,1)
/// raw value column (e.g. RawValuesFromCandidates(sf.per_target[t], w_t)).
/// Returns the (n_union, k·c) stacked logits whose block t is bit-identical
/// to SparseGcnLogitsVar(per-target) on t's ball rows.  One stacked
/// normalization node is shared by both layers (the PR-4 lesson) and one
/// kernel pass per layer serves every target.
Var StackedGcnLogitsVar(const StackedAttackForward& sf,
                        const std::vector<Var>& raw_columns);

/// StackedGcnLogitsVar from an already-stacked (nnz, k) values Var (e.g.
/// the output of StackedRawValues).
Var StackedGcnLogitsVarFromValues(const StackedAttackForward& sf,
                                  const Var& values);

/// Target t's (n_union, c) logits block of a StackedGcnLogitsVar output.
Var StackedLogitsBlock(const StackedAttackForward& sf, const Var& stacked,
                       int64_t t);

}  // namespace geattack

#endif  // GEATTACK_SRC_NN_SPARSE_FORWARD_H_
