#include "src/nn/trainer.h"

namespace geattack {

TrainResult TrainGcn(const GraphData& data, const Split& split,
                     const TrainConfig& config, Gcn* model) {
  GEA_CHECK(model != nullptr);
  GEA_CHECK(!split.train.empty());
  // Sparse path: normalized adjacency in CSR, epochs cost O(|E|·h).  The
  // dense adjacency is only ever materialized on the dense path, so sparse
  // training works on graphs where an n x n Tensor would not even allocate.
  const auto norm_csr =
      config.use_sparse ? std::make_shared<const CsrMatrix>(
                              NormalizeAdjacencyCsr(data.graph))
                        : nullptr;
  const Tensor norm_adj =
      config.use_sparse ? Tensor()
                        : NormalizeAdjacency(data.graph.DenseAdjacency());
  const Var norm_adj_v =
      config.use_sparse ? Var() : Constant(norm_adj, "norm_adj");
  const Var x = Constant(data.features, "X");
  auto propagate = [&](const Var& h) {
    // The normalized adjacency is symmetric: its backward reuses norm_csr.
    return config.use_sparse ? SpMM(norm_csr, h, /*a_symmetric=*/true)
                             : MatMul(norm_adj_v, h);
  };

  AdamConfig adam_cfg;
  adam_cfg.lr = config.lr;
  adam_cfg.weight_decay = config.weight_decay;
  Adam adam(adam_cfg);
  adam.Register(&model->mutable_w1());
  adam.Register(&model->mutable_w2());

  TrainResult result;
  Tensor best_w1 = model->w1();
  Tensor best_w2 = model->w2();
  double best_val = -1.0;
  int64_t since_best = 0;

  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    Var w1 = Var::Leaf(model->w1(), /*requires_grad=*/true, "w1");
    Var w2 = Var::Leaf(model->w2(), /*requires_grad=*/true, "w2");
    Var h = Relu(propagate(MatMul(x, w1)));
    Var logits = propagate(MatMul(h, w2));
    Var loss = CrossEntropyRows(logits, split.train, data.labels);
    auto grads = Grad(loss, {w1, w2});
    adam.Step({grads[0].value(), grads[1].value()});
    ++result.epochs_run;

    const double val_acc =
        split.val.empty()
            ? Accuracy(logits.value(), data.labels, split.train)
            : Accuracy(logits.value(), data.labels, split.val);
    if (val_acc > best_val) {
      best_val = val_acc;
      best_w1 = model->w1();
      best_w2 = model->w2();
      since_best = 0;
    } else if (config.patience > 0 && ++since_best >= config.patience) {
      break;
    }
  }

  model->mutable_w1() = best_w1;
  model->mutable_w2() = best_w2;
  result.final_logits = config.use_sparse
                            ? model->Logits(*norm_csr, data.features)
                            : model->Logits(norm_adj, data.features);
  result.train_accuracy = Accuracy(result.final_logits, data.labels, split.train);
  result.val_accuracy = split.val.empty()
                            ? result.train_accuracy
                            : Accuracy(result.final_logits, data.labels, split.val);
  result.test_accuracy = Accuracy(result.final_logits, data.labels, split.test);
  return result;
}

Gcn TrainNewGcn(const GraphData& data, const Split& split,
                const TrainConfig& config, Rng* rng, TrainResult* result) {
  GcnConfig gcn_cfg;
  gcn_cfg.in_dim = data.feature_dim();
  gcn_cfg.hidden_dim = config.hidden_dim;
  gcn_cfg.num_classes = data.num_classes;
  Gcn model(gcn_cfg, rng);
  TrainResult r = TrainGcn(data, split, config, &model);
  if (result != nullptr) *result = r;
  return model;
}

}  // namespace geattack
