// Training loop for the victim GCN.

#ifndef GEATTACK_SRC_NN_TRAINER_H_
#define GEATTACK_SRC_NN_TRAINER_H_

#include <cstdint>

#include "src/graph/graph.h"
#include "src/nn/adam.h"
#include "src/nn/gcn.h"
#include "src/tensor/random.h"

namespace geattack {

/// Training hyperparameters (paper §A.1 / Kipf & Welling defaults).
struct TrainConfig {
  int64_t epochs = 200;
  double lr = 0.01;
  double weight_decay = 5e-4;
  int64_t hidden_dim = 16;
  /// Early stopping patience on validation accuracy; 0 disables.
  int64_t patience = 50;
  /// Use the sparse CSR forward (O(|E|·h) per epoch).  The dense path is
  /// kept for comparison benchmarks; both compute the same math.
  bool use_sparse = true;
};

/// Result of TrainGcn.
struct TrainResult {
  double train_accuracy = 0.0;
  double val_accuracy = 0.0;
  double test_accuracy = 0.0;
  int64_t epochs_run = 0;
  Tensor final_logits;  ///< Logits on the clean graph at the best epoch.
};

/// Trains a fresh 2-layer GCN on `data` with `split`, keeping the
/// best-validation weights.  The returned model is the fixed f_θ that every
/// attack and explainer in this library operates on (evasion setting: the
/// model is never retrained after the attack).
TrainResult TrainGcn(const GraphData& data, const Split& split,
                     const TrainConfig& config, Gcn* model);

/// Convenience: builds, trains and returns a model in one call.
Gcn TrainNewGcn(const GraphData& data, const Split& split,
                const TrainConfig& config, Rng* rng,
                TrainResult* result = nullptr);

}  // namespace geattack

#endif  // GEATTACK_SRC_NN_TRAINER_H_
