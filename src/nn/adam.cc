#include "src/nn/adam.h"

#include <cmath>

namespace geattack {

int64_t Adam::Register(Tensor* param) {
  GEA_CHECK(param != nullptr);
  params_.push_back(param);
  m_.emplace_back(param->rows(), param->cols());
  v_.emplace_back(param->rows(), param->cols());
  return static_cast<int64_t>(params_.size()) - 1;
}

void Adam::Step(const std::vector<Tensor>& grads) {
  GEA_CHECK(grads.size() == params_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));
  for (size_t p = 0; p < params_.size(); ++p) {
    Tensor& param = *params_[p];
    GEA_CHECK(param.same_shape(grads[p]));
    Tensor& m = m_[p];
    Tensor& v = v_[p];
    for (int64_t i = 0; i < param.size(); ++i) {
      double g = grads[p][i] + config_.weight_decay * param[i];
      m[i] = config_.beta1 * m[i] + (1.0 - config_.beta1) * g;
      v[i] = config_.beta2 * v[i] + (1.0 - config_.beta2) * g * g;
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      param[i] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace geattack
