#include "src/base/status.h"

namespace geattack {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kError:
      return "error";
    case StatusCode::kTimedOut:
      return "timed_out";
    case StatusCode::kSkipped:
      return "skipped";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kNotFound:
      return "not_found";
  }
  return "unknown";
}

bool IsRetryableStatus(StatusCode code) {
  return code == StatusCode::kError || code == StatusCode::kTimedOut;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace geattack
