// Status and cooperative-cancellation primitives for fault-contained runs.
//
// Design rule (see CONTRIBUTING.md "Status vs GEA_CHECK"): GEA_CHECK stays
// for programmer errors — invariants the library itself must uphold.
// Everything the outside world can get wrong — malformed input files,
// out-of-range requests, pathological numerics, deadlines — reports through
// Status, so one bad target or file yields a diagnosable per-item failure
// instead of aborting a 10k-target driver run.

#ifndef GEATTACK_SRC_BASE_STATUS_H_
#define GEATTACK_SRC_BASE_STATUS_H_

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace geattack {

/// Stable outcome codes.  The numeric values are part of the attack-journal
/// on-disk format ("geajournal v1"/"v2") — append new codes, never renumber.
enum class StatusCode : int64_t {
  kOk = 0,
  kError = 1,            ///< Exception or non-finite blowup inside a task.
  kTimedOut = 2,         ///< Deadline/cancellation hit; result may be partial.
  kSkipped = 3,          ///< Never attempted (e.g. run deadline hit first).
  kInvalidArgument = 4,  ///< Request rejected by validation.
  kDataLoss = 5,         ///< Malformed or truncated input bytes.
  kResourceExhausted = 6,  ///< Rejected or shed by service overload policy.
  kNotFound = 7,           ///< Named resource (graph version) not registered.
};

/// Short stable name of a code ("ok", "error", "timed_out", ...).
const char* StatusCodeName(StatusCode code);

/// Retryability classification used by the attack service's retry policy.
/// Only kError and kTimedOut are retryable: they can be transient (a
/// numeric blowup from a racing cosmic-ray of a bug, a deadline that was
/// too tight under momentary load), and a retry draws from a *distinct*
/// documented seed stream so the re-run is still deterministic.  Everything
/// else is final by construction: kInvalidArgument and kNotFound will fail
/// identically forever, kResourceExhausted must go back through admission
/// (the caller decides whether the work is still worth queueing), kSkipped
/// means the deadline is already gone, and kDataLoss needs repair, not
/// repetition.
bool IsRetryableStatus(StatusCode code);

/// A lightweight success-or-diagnostic value.  Default-constructed is ok;
/// failures carry a code plus a human-readable message.  Convertible to
/// bool in boolean contexts (`if (status)`, `a && b`) so call sites that
/// only care about success read naturally.
class Status {
 public:
  Status() = default;

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  bool ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return ok(); }

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    return Status(StatusCode::kError, std::move(message));
  }
  static Status TimedOut(std::string message) {
    return Status(StatusCode::kTimedOut, std::move(message));
  }
  static Status Skipped(std::string message) {
    return Status(StatusCode::kSkipped, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Rebuilds a status from its stable code (journal replay).
  static Status FromCode(StatusCode code, std::string message) {
    return code == StatusCode::kOk ? Status()
                                   : Status(code, std::move(message));
  }

  /// "ok", or "<code-name>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Thrown by the finite-score tripwires in the attack pick loops.  The
/// multi-target driver catches it (with every other exception) and turns
/// the offending target into a kError result while the other targets'
/// picks stay bit-identical.
class NonFiniteError : public std::runtime_error {
 public:
  explicit NonFiniteError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Returns `v` unchanged when finite; throws NonFiniteError otherwise.
/// Every score an attack loop would compare for a committed pick runs
/// through this.  NaN never wins a `<`/`>` comparison, so without the
/// tripwire a poisoned gradient silently yields an *empty* attack; with it
/// the target fails loudly and in isolation.  Finite runs take the same
/// branch as before the tripwire existed, so picks are unchanged.
inline double CheckFiniteScore(double v, const char* what) {
  if (!std::isfinite(v))
    throw NonFiniteError(std::string("non-finite ") + what);
  return v;
}

/// Cooperative cancellation: a steady-clock deadline plus a manual cancel
/// flag, optionally chained to a parent token (the driver chains per-target
/// tokens to the whole-run token).  Attack loops poll Expired() at
/// greedy-round / inner-mask-step granularity — no signals, no thread
/// interruption, and the poll reads no attack state, so *what* a target
/// computes when it does not expire is bit-identical with or without a
/// token attached.
///
/// Thread-safety: Cancel()/Expired() are safe from any thread;
/// SetDeadlineAfterMs must happen-before any concurrent Expired() (the
/// driver arms tokens before handing them to attack code).
class CancellationToken {
 public:
  CancellationToken() = default;
  /// Chains to up to two parents: the driver uses one slot for the
  /// whole-run token and the other for a caller-provided per-request token
  /// (the attack service arms one per submission with the request's
  /// absolute deadline), so either expiring cancels the target.
  explicit CancellationToken(const CancellationToken* parent,
                             const CancellationToken* parent2 = nullptr)
      : parent_(parent), parent2_(parent2) {}
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms the deadline `ms` milliseconds from now; ms <= 0 disarms.
  void SetDeadlineAfterMs(double ms) {
    if (ms <= 0.0) {
      armed_ = false;
      return;
    }
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
    armed_ = true;
  }

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called, the armed deadline passed, or any
  /// parent expired.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (armed_ && std::chrono::steady_clock::now() >= deadline_) return true;
    if (parent_ != nullptr && parent_->Expired()) return true;
    return parent2_ != nullptr && parent2_->Expired();
  }

 private:
  const CancellationToken* parent_ = nullptr;
  const CancellationToken* parent2_ = nullptr;
  bool armed_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<bool> cancelled_{false};
};

}  // namespace geattack

#endif  // GEATTACK_SRC_BASE_STATUS_H_
