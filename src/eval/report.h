// Tabular reporting helpers: mean±std cells and aligned table printing, so
// every bench binary emits rows formatted like the paper's tables.

#ifndef GEATTACK_SRC_EVAL_REPORT_H_
#define GEATTACK_SRC_EVAL_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/eval/metrics.h"

namespace geattack {

/// Accumulates one metric across seeds and renders "mean±std" (in percent,
/// like the paper's tables).
class SeedAggregate {
 public:
  void Add(double v) { stats_.Add(v); }
  double mean() const { return stats_.mean(); }
  double stddev() const { return stats_.stddev(); }
  /// "99.11±0.01"-style cell (values scaled by 100).
  std::string Cell() const;

 private:
  RunningStats stats_;
};

/// Simple aligned-column table writer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  /// Renders with padded columns and a header separator.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string FormatDouble(double v, int digits = 2);

}  // namespace geattack

#endif  // GEATTACK_SRC_EVAL_REPORT_H_
