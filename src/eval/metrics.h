// Evaluation metrics (paper §A.2).
//
// Two families:
//  * attack success: ASR (any wrong label) and ASR-T (the specific target
//    label) over the evaluated targets;
//  * detection rate of the adversarial edges in the explainer's output:
//    Precision@K, Recall@K, F1@K over the top-K of the explanation ranking
//    (after truncating the ranking to the top-L subgraph), and NDCG@K which
//    also accounts for the rank positions.  Higher = easier for an
//    inspector to spot the attack; the joint attacker wants these low.

#ifndef GEATTACK_SRC_EVAL_METRICS_H_
#define GEATTACK_SRC_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/explain/explanation.h"

namespace geattack {

/// Detection scores of one explanation against the planted edges.
struct DetectionMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double ndcg = 0.0;
};

/// Computes detection metrics of `adversarial_edges` within `explanation`:
/// the ranking is truncated to the top-`subgraph_size` (L) explanation
/// subgraph, then Precision/Recall/F1/NDCG are taken at `k` (K).
DetectionMetrics ComputeDetection(const Explanation& explanation,
                                  const std::vector<Edge>& adversarial_edges,
                                  int64_t subgraph_size, int64_t k);

/// Running mean and sample standard deviation.
class RunningStats {
 public:
  void Add(double v);
  int64_t count() const { return count_; }
  double mean() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EVAL_METRICS_H_
