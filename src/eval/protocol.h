// ProtocolContext — the shared state bundle of the §5.1 protocol steps.
//
// Every step of the attack-then-inspect-then-defend loop needs the same
// things: the trained victim, its features, the inspecting explainer, and
// the X·W₁ fold they all gather rows from.  Instead of re-plumbing
// (model, features, explainer, adjacency, node, config) through every
// explain/defend/eval call, callers build one ProtocolContext and pass it.
// Copies are cheap (the state is shared), and the concrete state layout
// lives in protocol.cc, out of the public header.

#ifndef GEATTACK_SRC_EVAL_PROTOCOL_H_
#define GEATTACK_SRC_EVAL_PROTOCOL_H_

#include <cstdint>
#include <memory>

#include "src/explain/explanation.h"
#include "src/nn/gcn.h"

namespace geattack {

struct AttackContext;

/// Fixed per-experiment protocol state: trained model + features +
/// inspector explainer, plus lazily-built shared caches.  Graph state is
/// deliberately NOT part of the context — protocol steps take the current
/// (possibly perturbed or pruned) Graph explicitly, so one context serves
/// every graph revision of the loop.
class ProtocolContext {
 public:
  /// `model`, `features` and `explainer` must outlive the context.
  ProtocolContext(const Gcn* model, const Tensor* features,
                  const Explainer* explainer);

  const Gcn& model() const;
  const Tensor& features() const;
  const Explainer& explainer() const;

  /// The (n, h) X·W₁ fold, built on first use and shared by every copy of
  /// this context (thread-safe).
  const Tensor& xw1() const;

 private:
  friend ProtocolContext MakeProtocolContext(const AttackContext& ctx,
                                             const Explainer& explainer);

  struct State;  // Layout hidden in protocol.cc.
  std::shared_ptr<State> state_;
};

/// ProtocolContext over an AttackContext's model/features, seeded with the
/// attack context's already-cached X·W₁ fold so the protocol steps never
/// re-fold.
ProtocolContext MakeProtocolContext(const AttackContext& ctx,
                                    const Explainer& explainer);

/// Model prediction at `node` on `graph` via a GCN-depth ball-local sparse
/// forward: O(|E_ball|·h) instead of a full-graph forward.  Exact w.r.t.
/// the full forward up to floating-point roundoff (the 2-hop ball carries
/// true-degree normalization for the 2-layer GCN).  The protocol's cheap
/// re-predict after edge-list deltas.  An out-of-range `node` returns -1
/// (never a valid label) instead of aborting.
int64_t PredictAtNode(const ProtocolContext& ctx, const Graph& graph,
                      int64_t node);

}  // namespace geattack

#endif  // GEATTACK_SRC_EVAL_PROTOCOL_H_
