#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace geattack {

DetectionMetrics ComputeDetection(const Explanation& explanation,
                                  const std::vector<Edge>& adversarial_edges,
                                  int64_t subgraph_size, int64_t k) {
  DetectionMetrics m;
  if (adversarial_edges.empty() || k <= 0) return m;
  const std::set<Edge> adv(adversarial_edges.begin(),
                           adversarial_edges.end());

  // The inspector sees the top-L subgraph; metrics are @K within it.
  const std::vector<Edge> subgraph = explanation.TopEdges(subgraph_size);
  const int64_t kk =
      std::min<int64_t>(k, static_cast<int64_t>(subgraph.size()));

  int64_t hits = 0;
  double dcg = 0.0;
  for (int64_t rank = 0; rank < kk; ++rank) {
    if (adv.count(subgraph[static_cast<size_t>(rank)])) {
      ++hits;
      dcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
    }
  }
  m.precision = static_cast<double>(hits) / static_cast<double>(k);
  m.recall = static_cast<double>(hits) /
             static_cast<double>(adversarial_edges.size());
  if (m.precision + m.recall > 0)
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);

  const int64_t ideal_hits =
      std::min<int64_t>(static_cast<int64_t>(adversarial_edges.size()), k);
  double idcg = 0.0;
  for (int64_t rank = 0; rank < ideal_hits; ++rank)
    idcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
  if (idcg > 0) m.ndcg = dcg / idcg;
  return m;
}

void RunningStats::Add(double v) {
  ++count_;
  sum_ += v;
  sum_sq_ += v * v;
}

double RunningStats::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double RunningStats::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0 ? std::sqrt(var) : 0.0;
}

}  // namespace geattack
