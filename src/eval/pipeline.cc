#include "src/eval/pipeline.h"

#include <algorithm>
#include <set>

#include "src/attack/driver.h"
#include "src/attack/fga.h"

namespace geattack {

std::vector<int64_t> SelectTargetNodes(const GraphData& data,
                                       const Tensor& clean_logits,
                                       const std::vector<int64_t>& test_nodes,
                                       const TargetSelectionConfig& config,
                                       Rng* rng) {
  GEA_CHECK(rng != nullptr);
  // Only correctly classified nodes are meaningful victims.
  std::vector<std::pair<double, int64_t>> by_margin;
  for (int64_t node : test_nodes) {
    if (clean_logits.ArgMaxRow(node) != data.labels[ZU(node)]) continue;
    by_margin.emplace_back(
        ClassificationMargin(clean_logits, node, data.labels[ZU(node)]), node);
  }
  std::sort(by_margin.begin(), by_margin.end());

  std::set<int64_t> chosen;
  const int64_t m = static_cast<int64_t>(by_margin.size());
  for (int64_t i = 0; i < std::min(config.bottom_margin, m); ++i)
    chosen.insert(by_margin[ZU(i)].second);
  for (int64_t i = 0; i < std::min(config.top_margin, m); ++i)
    chosen.insert(by_margin[ZU(m - 1 - i)].second);

  // Random fill from the remaining correctly-classified pool.
  std::vector<int64_t> pool;
  for (const auto& [margin, node] : by_margin)
    if (!chosen.count(node)) pool.push_back(node);
  rng->Shuffle(&pool);
  for (int64_t i = 0;
       i < config.random && i < static_cast<int64_t>(pool.size()); ++i)
    chosen.insert(pool[ZU(i)]);

  return {chosen.begin(), chosen.end()};
}

Tensor PerturbedLogits(const AttackContext& ctx, const AttackResult& result,
                       bool sparse, bool f32_values) {
  if (!sparse) {
    return ctx.model->LogitsFromRaw(result.adjacency, ctx.data->features);
  }
  // One normalized clean CSR is shared across every target; each target
  // only patches the values incident to its added edges.
  const CsrMatrix perturbed = GcnRenormalizeAfterAdds(
      ctx.clean_norm_csr, ctx.clean_degp1, result.added_edges);
  return f32_values ? ctx.model->LogitsF32(perturbed, ctx.data->features)
                    : ctx.model->Logits(perturbed, ctx.data->features);
}

std::vector<PreparedTarget> PrepareTargets(const AttackContext& ctx,
                                           const std::vector<int64_t>& nodes,
                                           Rng* rng, bool sparse) {
  GEA_CHECK(rng != nullptr);
  const FgaAttack fga(/*targeted=*/false);
  std::vector<PreparedTarget> prepared;
  for (int64_t node : nodes) {
    PreparedTarget t;
    t.node = node;
    t.true_label = ctx.data->labels[ZU(node)];
    t.budget = std::max<int64_t>(1, ctx.data->graph.Degree(node));

    AttackRequest request;
    request.target_node = node;
    request.target_label = -1;
    request.budget = t.budget;
    const AttackResult probe = fga.Attack(ctx, request, rng);
    const Tensor logits = PerturbedLogits(ctx, probe, sparse);
    const int64_t flipped = logits.ArgMaxRow(node);
    if (flipped == t.true_label) continue;  // FGA failed; drop (§5.1).
    t.target_label = flipped;
    prepared.push_back(t);
  }
  return prepared;
}

JointAttackOutcome EvaluateAttack(const AttackContext& ctx,
                                  const TargetedAttack& attack,
                                  const std::vector<PreparedTarget>& targets,
                                  const Explainer& explainer,
                                  const EvalConfig& eval_config, Rng* rng) {
  JointAttackOutcome outcome;
  if (targets.empty()) return outcome;
  RunningStats asr, asr_t, precision, recall, f1, ndcg;
  RunningStats recovery, pruned_count, true_pruned;

  const ProtocolContext pctx = MakeProtocolContext(ctx, explainer);
  // One working graph, patched and restored per target: the inspect/defend
  // phase never touches `result.adjacency`, so a sparse context (edge-list
  // results only) runs the full protocol with nothing n x n in sight.
  Graph work = ctx.data->graph;

  // Scores one target's attack outcome (logits, detection, defense) into
  // the stats.
  auto inspect = [&](const PreparedTarget& t, const AttackResult& result) {
    const Tensor logits = PerturbedLogits(ctx, result, eval_config.sparse,
                                          eval_config.f32_values);
    const int64_t predicted = logits.ArgMaxRow(t.node);
    asr.Add(predicted != t.true_label ? 1.0 : 0.0);
    asr_t.Add(predicted == t.target_label ? 1.0 : 0.0);

    for (const Edge& e : result.added_edges) work.AddEdge(e.u, e.v);

    // Inspect: explain the model's (post-attack) prediction at the target
    // and score how visible the adversarial edges are.
    const Explanation explanation = explainer.Explain(work, t.node, predicted);
    const DetectionMetrics d =
        ComputeDetection(explanation, result.added_edges,
                         eval_config.subgraph_size, eval_config.k);
    precision.Add(d.precision);
    recall.Add(d.recall);
    f1.Add(d.f1);
    ndcg.Add(d.ndcg);

    if (eval_config.defend) {
      const DefenseOutcome defense = InspectAndPruneInPlace(
          pctx, &work, t.node, eval_config.defense, &result.added_edges);
      recovery.Add(defense.prediction_after == t.true_label ? 1.0 : 0.0);
      pruned_count.Add(static_cast<double>(defense.pruned_edges.size()));
      true_pruned.Add(static_cast<double>(defense.true_adversarial_pruned));
      // Undo the pruning before undoing the attack.
      for (const Edge& e : defense.pruned_edges) work.AddEdge(e.u, e.v);
    }

    for (const Edge& e : result.added_edges) work.RemoveEdge(e.u, e.v);
  };

  // Routes one result to the stats or the failure tallies.  Only ok results
  // are inspected: a failed result carries no (or a partial) perturbed
  // graph, and feeding it to the means would let one crashed target bend
  // every aggregate.
  auto tally = [&](const PreparedTarget& t, const AttackResult& result) {
    switch (result.status.code()) {
      case StatusCode::kOk:
        inspect(t, result);
        break;
      case StatusCode::kTimedOut:
        ++outcome.num_timed_out;
        break;
      case StatusCode::kSkipped:
        ++outcome.num_skipped;
        break;
      default:
        ++outcome.num_failed;
        break;
    }
  };

  if (eval_config.attack_threads >= 1) {
    // Thread-pool driver: independent per-target streams seeded off one
    // draw from `rng`, so the whole evaluation still replays from the
    // caller's single seed.  Buffering every result is inherent to the
    // fan-out (and bounded: sparse contexts carry edge lists only).
    std::vector<AttackRequest> requests;
    requests.reserve(targets.size());
    for (const PreparedTarget& t : targets)
      requests.push_back({t.node, t.target_label, t.budget});
    AttackDriverConfig driver_config;
    driver_config.num_threads = eval_config.attack_threads;
    driver_config.batch_targets = eval_config.batch_targets;
    driver_config.base_seed = rng->engine()();
    driver_config.target_deadline_ms = eval_config.target_deadline_ms;
    driver_config.run_deadline_ms = eval_config.run_deadline_ms;
    driver_config.journal_path = eval_config.journal_path;
    const std::vector<AttackResult> results =
        RunMultiTargetAttack(ctx, attack, requests, driver_config);
    for (size_t i = 0; i < targets.size(); ++i) tally(targets[i], results[i]);
  } else {
    // Legacy serial loop on the shared rng stream, one live result at a
    // time (a dense-context AttackResult holds an n x n adjacency).  The
    // fault-containment wrapping changes nothing on a clean run: tokens
    // default disarmed (every Cancelled() poll is false, so the attack
    // takes identical branches) and rng consumption is untouched, which
    // keeps the fixed-seed integration pins bit-identical.
    CancellationToken run_token;
    run_token.SetDeadlineAfterMs(eval_config.run_deadline_ms);
    for (const PreparedTarget& t : targets) {
      AttackResult result;
      if (t.node < 0 || t.node >= ctx.data->num_nodes() || t.target_label < -1 ||
          t.target_label >= ctx.data->num_classes || t.budget < 0) {
        result.status = Status::InvalidArgument(
            "invalid prepared target (node " + std::to_string(t.node) + ")");
      } else if (run_token.Expired()) {
        result.status =
            Status::Skipped("run deadline exceeded before target started");
      } else {
        CancellationToken token(&run_token);
        token.SetDeadlineAfterMs(eval_config.target_deadline_ms);
        AttackRequest request{t.node, t.target_label, t.budget};
        request.cancel = &token;
        try {
          result = attack.Attack(ctx, request, rng);
        } catch (const std::exception& e) {
          result = AttackResult();
          result.status = Status::Error("target " + std::to_string(t.node) +
                                        ": " + e.what());
        } catch (...) {
          result = AttackResult();
          result.status =
              Status::Error("target " + std::to_string(t.node) +
                            ": unknown exception");
        }
      }
      tally(t, result);
    }
  }

  outcome.asr = asr.mean();
  outcome.asr_t = asr_t.mean();
  outcome.detection.precision = precision.mean();
  outcome.detection.recall = recall.mean();
  outcome.detection.f1 = f1.mean();
  outcome.detection.ndcg = ndcg.mean();
  outcome.num_targets = static_cast<int64_t>(targets.size()) -
                        outcome.num_failed - outcome.num_timed_out -
                        outcome.num_skipped;
  if (eval_config.defend) {
    outcome.defense_recovery = recovery.mean();
    outcome.mean_pruned_edges = pruned_count.mean();
    outcome.mean_true_adversarial_pruned = true_pruned.mean();
  }
  return outcome;
}

AttackContext MakeSparseAttackContext(const GraphData& data,
                                      const Gcn& model) {
  AttackContext ctx;
  ctx.data = &data;
  ctx.model = &model;
  ctx.clean_csr = data.graph.CsrAdjacency();
  ctx.clean_norm_csr = GcnNormalizeCsr(ctx.clean_csr);
  ctx.clean_degp1 = Tensor(data.num_nodes(), 1);
  for (int64_t i = 0; i < data.num_nodes(); ++i)
    ctx.clean_degp1.at(i, 0) = static_cast<double>(data.graph.Degree(i)) + 1.0;
  return ctx;
}

AttackContext MakeAttackContext(const GraphData& data, const Gcn& model) {
  AttackContext ctx = MakeSparseAttackContext(data, model);
  ctx.clean_adjacency = data.graph.DenseAdjacency();
  return ctx;
}

}  // namespace geattack
