#include "src/eval/pipeline.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/attack/driver.h"
#include "src/attack/fga.h"

namespace geattack {

std::vector<int64_t> SelectTargetNodes(const GraphData& data,
                                       const Tensor& clean_logits,
                                       const std::vector<int64_t>& test_nodes,
                                       const TargetSelectionConfig& config,
                                       Rng* rng) {
  GEA_CHECK(rng != nullptr);
  // Only correctly classified nodes are meaningful victims.
  std::vector<std::pair<double, int64_t>> by_margin;
  for (int64_t node : test_nodes) {
    if (clean_logits.ArgMaxRow(node) != data.labels[ZU(node)]) continue;
    by_margin.emplace_back(
        ClassificationMargin(clean_logits, node, data.labels[ZU(node)]), node);
  }
  std::sort(by_margin.begin(), by_margin.end());

  std::set<int64_t> chosen;
  const int64_t m = static_cast<int64_t>(by_margin.size());
  for (int64_t i = 0; i < std::min(config.bottom_margin, m); ++i)
    chosen.insert(by_margin[ZU(i)].second);
  for (int64_t i = 0; i < std::min(config.top_margin, m); ++i)
    chosen.insert(by_margin[ZU(m - 1 - i)].second);

  // Random fill from the remaining correctly-classified pool.
  std::vector<int64_t> pool;
  for (const auto& [margin, node] : by_margin)
    if (!chosen.count(node)) pool.push_back(node);
  rng->Shuffle(&pool);
  for (int64_t i = 0;
       i < config.random && i < static_cast<int64_t>(pool.size()); ++i)
    chosen.insert(pool[ZU(i)]);

  return {chosen.begin(), chosen.end()};
}

Tensor PerturbedLogits(const AttackContext& ctx, const AttackResult& result,
                       bool sparse, bool f32_values) {
  if (!sparse) {
    return ctx.model->LogitsFromRaw(result.adjacency, ctx.data->features);
  }
  // One normalized clean CSR is shared across every target; each target
  // only patches the values incident to its added edges.
  const CsrMatrix perturbed = GcnRenormalizeAfterAdds(
      ctx.clean_norm_csr, ctx.clean_degp1, result.added_edges);
  return f32_values ? ctx.model->LogitsF32(perturbed, ctx.data->features)
                    : ctx.model->Logits(perturbed, ctx.data->features);
}

std::vector<PreparedTarget> PrepareTargets(const AttackContext& ctx,
                                           const std::vector<int64_t>& nodes,
                                           Rng* rng, bool sparse) {
  GEA_CHECK(rng != nullptr);
  const FgaAttack fga(/*targeted=*/false);
  std::vector<PreparedTarget> prepared;
  for (int64_t node : nodes) {
    PreparedTarget t;
    t.node = node;
    t.true_label = ctx.data->labels[ZU(node)];
    t.budget = std::max<int64_t>(1, ctx.data->graph.Degree(node));

    AttackRequest request;
    request.target_node = node;
    request.target_label = -1;
    request.budget = t.budget;
    const AttackResult probe = fga.Attack(ctx, request, rng);
    const Tensor logits = PerturbedLogits(ctx, probe, sparse);
    const int64_t flipped = logits.ArgMaxRow(node);
    if (flipped == t.true_label) continue;  // FGA failed; drop (§5.1).
    t.target_label = flipped;
    prepared.push_back(t);
  }
  return prepared;
}

namespace {

/// Shared result-to-outcome aggregation used by both the driver-backed and
/// the service-backed evaluation entries: inspects ok results (logits,
/// detection, optional defense) and routes everything else to the failure
/// tallies.  Only ok results are inspected — a failed result carries no
/// (or a partial) perturbed graph, and feeding it to the means would let
/// one crashed target bend every aggregate.
class OutcomeAggregator {
 public:
  OutcomeAggregator(const AttackContext& ctx, const Explainer& explainer,
                    const EvalConfig& eval_config)
      : ctx_(ctx),
        explainer_(explainer),
        eval_config_(eval_config),
        pctx_(MakeProtocolContext(ctx, explainer)),
        // One working graph, patched and restored per target: the
        // inspect/defend phase never touches `result.adjacency`, so a
        // sparse context (edge-list results only) runs the full protocol
        // with nothing n x n in sight.
        work_(ctx.data->graph) {}

  void Tally(const PreparedTarget& t, const AttackResult& result) {
    switch (result.status.code()) {
      case StatusCode::kOk:
        Inspect(t, result);
        break;
      case StatusCode::kTimedOut:
        ++outcome_.num_timed_out;
        break;
      case StatusCode::kSkipped:
        ++outcome_.num_skipped;
        break;
      case StatusCode::kResourceExhausted:
        ++outcome_.num_shed;
        break;
      default:
        ++outcome_.num_failed;
        break;
    }
  }

  JointAttackOutcome Finish(int64_t total_targets) {
    outcome_.asr = asr_.mean();
    outcome_.asr_t = asr_t_.mean();
    outcome_.detection.precision = precision_.mean();
    outcome_.detection.recall = recall_.mean();
    outcome_.detection.f1 = f1_.mean();
    outcome_.detection.ndcg = ndcg_.mean();
    outcome_.num_targets = total_targets - outcome_.num_failed -
                           outcome_.num_timed_out - outcome_.num_skipped -
                           outcome_.num_shed;
    if (eval_config_.defend) {
      outcome_.defense_recovery = recovery_.mean();
      outcome_.mean_pruned_edges = pruned_count_.mean();
      outcome_.mean_true_adversarial_pruned = true_pruned_.mean();
    }
    return outcome_;
  }

 private:
  /// Scores one target's attack outcome (logits, detection, defense) into
  /// the stats.
  void Inspect(const PreparedTarget& t, const AttackResult& result) {
    const Tensor logits = PerturbedLogits(ctx_, result, eval_config_.sparse,
                                          eval_config_.f32_values);
    const int64_t predicted = logits.ArgMaxRow(t.node);
    asr_.Add(predicted != t.true_label ? 1.0 : 0.0);
    asr_t_.Add(predicted == t.target_label ? 1.0 : 0.0);

    for (const Edge& e : result.added_edges) work_.AddEdge(e.u, e.v);

    // Inspect: explain the model's (post-attack) prediction at the target
    // and score how visible the adversarial edges are.
    const Explanation explanation =
        explainer_.Explain(work_, t.node, predicted);
    const DetectionMetrics d =
        ComputeDetection(explanation, result.added_edges,
                         eval_config_.subgraph_size, eval_config_.k);
    precision_.Add(d.precision);
    recall_.Add(d.recall);
    f1_.Add(d.f1);
    ndcg_.Add(d.ndcg);

    if (eval_config_.defend) {
      const DefenseOutcome defense = InspectAndPruneInPlace(
          pctx_, &work_, t.node, eval_config_.defense, &result.added_edges);
      recovery_.Add(defense.prediction_after == t.true_label ? 1.0 : 0.0);
      pruned_count_.Add(static_cast<double>(defense.pruned_edges.size()));
      true_pruned_.Add(static_cast<double>(defense.true_adversarial_pruned));
      // Undo the pruning before undoing the attack.
      for (const Edge& e : defense.pruned_edges) work_.AddEdge(e.u, e.v);
    }

    for (const Edge& e : result.added_edges) work_.RemoveEdge(e.u, e.v);
  }

  const AttackContext& ctx_;
  const Explainer& explainer_;
  const EvalConfig& eval_config_;
  const ProtocolContext pctx_;
  Graph work_;
  JointAttackOutcome outcome_;
  RunningStats asr_, asr_t_, precision_, recall_, f1_, ndcg_;
  RunningStats recovery_, pruned_count_, true_pruned_;
};

}  // namespace

JointAttackOutcome EvaluateAttack(const AttackContext& ctx,
                                  const TargetedAttack& attack,
                                  const std::vector<PreparedTarget>& targets,
                                  const Explainer& explainer,
                                  const EvalConfig& eval_config, Rng* rng) {
  if (targets.empty()) return {};
  OutcomeAggregator aggregate(ctx, explainer, eval_config);
  auto tally = [&aggregate](const PreparedTarget& t,
                            const AttackResult& result) {
    aggregate.Tally(t, result);
  };

  if (eval_config.attack_threads >= 1) {
    // Thread-pool driver: independent per-target streams seeded off one
    // draw from `rng`, so the whole evaluation still replays from the
    // caller's single seed.  Buffering every result is inherent to the
    // fan-out (and bounded: sparse contexts carry edge lists only).
    std::vector<AttackRequest> requests;
    requests.reserve(targets.size());
    for (const PreparedTarget& t : targets)
      requests.push_back({t.node, t.target_label, t.budget});
    AttackDriverConfig driver_config;
    driver_config.num_threads = eval_config.attack_threads;
    driver_config.batch_targets = eval_config.batch_targets;
    driver_config.base_seed = rng->engine()();
    driver_config.target_deadline_ms = eval_config.target_deadline_ms;
    driver_config.run_deadline_ms = eval_config.run_deadline_ms;
    driver_config.journal_path = eval_config.journal_path;
    const std::vector<AttackResult> results =
        RunMultiTargetAttack(ctx, attack, requests, driver_config);
    for (size_t i = 0; i < targets.size(); ++i) tally(targets[i], results[i]);
  } else {
    // Legacy serial loop on the shared rng stream, one live result at a
    // time (a dense-context AttackResult holds an n x n adjacency).  The
    // fault-containment wrapping changes nothing on a clean run: tokens
    // default disarmed (every Cancelled() poll is false, so the attack
    // takes identical branches) and rng consumption is untouched, which
    // keeps the fixed-seed integration pins bit-identical.
    CancellationToken run_token;
    run_token.SetDeadlineAfterMs(eval_config.run_deadline_ms);
    for (const PreparedTarget& t : targets) {
      AttackResult result;
      if (t.node < 0 || t.node >= ctx.data->num_nodes() || t.target_label < -1 ||
          t.target_label >= ctx.data->num_classes || t.budget < 0) {
        result.status = Status::InvalidArgument(
            "invalid prepared target (node " + std::to_string(t.node) + ")");
      } else if (run_token.Expired()) {
        result.status =
            Status::Skipped("run deadline exceeded before target started");
      } else {
        CancellationToken token(&run_token);
        token.SetDeadlineAfterMs(eval_config.target_deadline_ms);
        AttackRequest request{t.node, t.target_label, t.budget};
        request.cancel = &token;
        try {
          result = attack.Attack(ctx, request, rng);
        } catch (const std::exception& e) {
          result = AttackResult();
          result.status = Status::Error("target " + std::to_string(t.node) +
                                        ": " + e.what());
        } catch (...) {
          result = AttackResult();
          result.status =
              Status::Error("target " + std::to_string(t.node) +
                            ": unknown exception");
        }
      }
      tally(t, result);
    }
  }

  return aggregate.Finish(static_cast<int64_t>(targets.size()));
}

JointAttackOutcome EvaluateAttackOnService(
    const AttackContext& ctx, AttackService* service,
    const std::string& graph_version,
    const std::vector<PreparedTarget>& targets, const Explainer& explainer,
    const EvalConfig& eval_config, double request_deadline_ms,
    int32_t priority) {
  GEA_CHECK(service != nullptr);
  if (targets.empty()) return {};
  OutcomeAggregator aggregate(ctx, explainer, eval_config);

  // Submit everything up front — the service's bounded queue is sized for
  // open-loop arrivals, so a patient closed-loop caller waits for the
  // backlog to drain and retries once instead of treating "queue full" as
  // terminal.  Anything still rejected after that (or shed later under
  // overload) comes back as structured kResourceExhausted and lands in
  // num_shed.
  std::vector<int64_t> tickets(targets.size(), -1);
  std::vector<Status> rejections(targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    AttackServiceRequest request;
    request.graph = graph_version;
    request.target_node = targets[i].node;
    request.target_label = targets[i].target_label;
    request.budget = targets[i].budget;
    request.priority = priority;
    request.deadline_ms = request_deadline_ms;
    Admission admission = service->Submit(request);
    if (admission.status.code() == StatusCode::kResourceExhausted) {
      service->Drain();
      admission = service->Submit(request);
    }
    if (admission.status.ok())
      tickets[i] = admission.ticket;
    else
      rejections[i] = admission.status;
  }

  // Staleness is judged against the epoch current at COLLECTION time: a
  // caller churning the graph while this evaluation runs sees exactly how
  // many results predate the newest epoch (they are still exact for their
  // own pinned epoch, so they aggregate normally).
  int64_t num_stale = 0;
  for (size_t i = 0; i < targets.size(); ++i) {
    AttackResult result;
    if (tickets[i] >= 0) {
      ServiceResult taken = service->Take(tickets[i]);
      if (taken.epoch >= 0 &&
          taken.epoch != service->CurrentEpoch(graph_version))
        ++num_stale;
      result = std::move(taken.result);
    } else {
      result.status = rejections[i];
    }
    aggregate.Tally(targets[i], result);
  }
  JointAttackOutcome outcome =
      aggregate.Finish(static_cast<int64_t>(targets.size()));
  outcome.num_stale = num_stale;
  return outcome;
}

AttackContext MakeSparseAttackContext(const GraphData& data,
                                      const Gcn& model) {
  AttackContext ctx;
  ctx.data = &data;
  ctx.model = &model;
  ctx.clean_csr = data.graph.CsrAdjacency();
  ctx.clean_norm_csr = GcnNormalizeCsr(ctx.clean_csr);
  ctx.clean_degp1 = Tensor(data.num_nodes(), 1);
  for (int64_t i = 0; i < data.num_nodes(); ++i)
    ctx.clean_degp1.at(i, 0) = static_cast<double>(data.graph.Degree(i)) + 1.0;
  return ctx;
}

AttackContext MakeAttackContext(const GraphData& data, const Gcn& model) {
  AttackContext ctx = MakeSparseAttackContext(data, model);
  ctx.clean_adjacency = data.graph.DenseAdjacency();
  return ctx;
}

}  // namespace geattack
