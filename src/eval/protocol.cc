#include "src/eval/protocol.h"

#include <mutex>

#include "src/attack/attack.h"
#include "src/graph/subgraph.h"
#include "src/nn/sparse_forward.h"

namespace geattack {

struct ProtocolContext::State {
  const Gcn* model = nullptr;
  const Tensor* features = nullptr;
  const Explainer* explainer = nullptr;
  std::once_flag xw1_once;
  Tensor xw1;
};

ProtocolContext::ProtocolContext(const Gcn* model, const Tensor* features,
                                 const Explainer* explainer)
    : state_(std::make_shared<State>()) {
  GEA_CHECK(model != nullptr && features != nullptr && explainer != nullptr);
  state_->model = model;
  state_->features = features;
  state_->explainer = explainer;
}

const Gcn& ProtocolContext::model() const { return *state_->model; }
const Tensor& ProtocolContext::features() const { return *state_->features; }
const Explainer& ProtocolContext::explainer() const {
  return *state_->explainer;
}

const Tensor& ProtocolContext::xw1() const {
  std::call_once(state_->xw1_once, [&] {
    state_->xw1 = state_->features->MatMul(state_->model->w1());
  });
  return state_->xw1;
}

ProtocolContext MakeProtocolContext(const AttackContext& ctx,
                                    const Explainer& explainer) {
  ProtocolContext pctx(ctx.model, &ctx.data->features, &explainer);
  // Seed the fold from the attack context's cache (shared, not recomputed).
  std::call_once(pctx.state_->xw1_once,
                 [&] { pctx.state_->xw1 = CachedXw1(ctx); });
  return pctx;
}

int64_t PredictAtNode(const ProtocolContext& ctx, const Graph& graph,
                      int64_t node) {
  // Out-of-range nodes are a caller-data problem, not a programmer
  // invariant: return the documented -1 sentinel instead of aborting.
  if (node < 0 || node >= graph.num_nodes()) return -1;
  // 2 hops = the GCN depth: the ball forward is exact at the target row.
  const SubgraphView view =
      BuildSubgraphView(graph, node, /*hops=*/2, /*candidates=*/{});
  const SparseAttackForward sf =
      MakeSparseAttackForward(view, ctx.model(), ctx.xw1());
  const Var logits =
      SparseGcnLogitsVar(sf, Constant(view.base_values, "a"));
  return logits.value().ArgMaxRow(view.target_local);
}

}  // namespace geattack
