#include "src/eval/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace geattack {

std::string SeedAggregate::Cell() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << 100.0 * mean() << "±"
     << std::setprecision(2) << 100.0 * stddev();
  return os.str();
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

}  // namespace geattack
