// Experiment orchestration: target selection, target-label assignment, and
// the joint attack-then-inspect evaluation protocol of §5.1.
//
// Protocol per dataset and seed:
//   1. generate data, split 10/10/80, train the GCN;
//   2. select victim targets among correctly-classified test nodes:
//      10 with the highest classification margin, 10 with the lowest,
//      the rest random (IG-Attack's protocol, §5.1);
//   3. assign each target a *specific* incorrect label by running plain
//      (untargeted) FGA; nodes FGA cannot flip are dropped;
//   4. per attacker: perturb (budget Δ = degree), record ASR / ASR-T, then
//      run the explainer on the perturbed graph at the target and score the
//      detectability of the added edges (P/R/F1/NDCG @ K within the top-L
//      subgraph).

#ifndef GEATTACK_SRC_EVAL_PIPELINE_H_
#define GEATTACK_SRC_EVAL_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/attack/attack.h"
#include "src/defense/inspector_defense.h"
#include "src/service/attack_service.h"
#include "src/eval/metrics.h"
#include "src/eval/protocol.h"
#include "src/explain/explanation.h"
#include "src/graph/graph.h"
#include "src/nn/gcn.h"
#include "src/tensor/random.h"

namespace geattack {

/// How many victim nodes of each kind to select (paper: 10/10/20).
struct TargetSelectionConfig {
  int64_t top_margin = 10;
  int64_t bottom_margin = 10;
  int64_t random = 20;
};

/// Correctly-classified test nodes picked by margin extremes plus random
/// fill, per the paper's protocol.  Returns fewer if the test set is small.
std::vector<int64_t> SelectTargetNodes(const GraphData& data,
                                       const Tensor& clean_logits,
                                       const std::vector<int64_t>& test_nodes,
                                       const TargetSelectionConfig& config,
                                       Rng* rng);

/// A victim node with its assigned specific target label and budget.
struct PreparedTarget {
  int64_t node = -1;
  int64_t true_label = -1;
  int64_t target_label = -1;  ///< ŷ from the preparatory FGA run.
  int64_t budget = 0;         ///< Δ = clean degree (≥ 1).
};

/// Assigns target labels by running untargeted FGA per node (§5.1); nodes
/// that FGA fails to flip are excluded.  With `sparse`, post-attack logits
/// are computed on the O(|E|) CSR path.
std::vector<PreparedTarget> PrepareTargets(const AttackContext& ctx,
                                           const std::vector<int64_t>& nodes,
                                           Rng* rng, bool sparse = false);

/// Victim logits on an attack's perturbed graph.  Dense mode normalizes and
/// multiplies the n x n adjacency (O(n²·h)); sparse mode applies
/// `result.added_edges` to the clean CSR adjacency incrementally and runs
/// the SpMM forward (O(|E|·h)).  Both agree to floating-point roundoff.
/// `f32_values` additionally stores the sparse adjacency values as float32
/// (SpmmRawF32) — inference-only, ~1e-7 relative logit error, off by
/// default so every gradient/equivalence path stays double.
Tensor PerturbedLogits(const AttackContext& ctx, const AttackResult& result,
                       bool sparse, bool f32_values = false);

/// Aggregated outcome of one attacker over a set of prepared targets.
/// ASR / detection / defense means aggregate ONLY over targets whose attack
/// finished ok; failed, timed-out and skipped targets are counted below and
/// excluded from every mean (a crashed target must not drag asr toward 0).
struct JointAttackOutcome {
  double asr = 0.0;    ///< Fraction flipped to any wrong label.
  double asr_t = 0.0;  ///< Fraction flipped to the specific target label.
  DetectionMetrics detection;  ///< Mean over successfully evaluated targets.
  int64_t num_targets = 0;  ///< Targets whose attack finished ok.
  /// Targets whose attack faulted (exception / non-finite blowup) or whose
  /// request failed validation.
  int64_t num_failed = 0;
  int64_t num_timed_out = 0;  ///< Deadline hit mid-attack (partial result).
  int64_t num_skipped = 0;    ///< Run deadline passed before the target ran.
  /// Requests rejected at admission or shed by the attack service's
  /// overload policy (service-backed evaluation only; structured
  /// kResourceExhausted outcomes).
  int64_t num_shed = 0;
  /// Results computed at a snapshot epoch older than the graph's current
  /// epoch at collection time (service-backed evaluation under live churn
  /// only).  Stale results are still exact for THEIR epoch and are
  /// aggregated normally — this counter just surfaces how much of the
  /// evaluation predates the newest churn.
  int64_t num_stale = 0;
  // ----- Defense aggregates, populated only when EvalConfig::defend. -----
  /// Fraction of targets whose post-defense prediction returned to the true
  /// label (the paper's recovery notion).
  double defense_recovery = 0.0;
  double mean_pruned_edges = 0.0;  ///< Mean edges removed per target.
  /// Mean count of pruned edges that were truly adversarial per target.
  double mean_true_adversarial_pruned = 0.0;
};

/// Evaluation knobs (paper §A.2: L = 20, K = 15).
struct EvalConfig {
  int64_t subgraph_size = 20;  ///< L.
  int64_t k = 15;              ///< K.
  /// Compute post-attack victim logits on the sparse CSR path.
  bool sparse = false;
  /// Store post-attack adjacency values as float32 for the sparse logits
  /// (inference-only; see PerturbedLogits).  Off by default.
  bool f32_values = false;
  /// Attack-phase parallelism.  0 keeps the legacy serial loop in which
  /// every attack consumes draws from the shared `rng` stream (the
  /// fixed-seed pins of integration_test ride on that exact sequence).
  /// >= 1 routes the attacks through the multi-target driver
  /// (src/attack/driver.h) with one independent per-target RNG stream
  /// seeded off `rng` — bit-identical results for any thread count, so 1
  /// is the serial reference and N is the same answer, faster.
  int attack_threads = 0;
  /// Target-group size for the driver's batched task type (used when
  /// attack_threads >= 1): groups of up to this many targets share one
  /// subgraph view and are scored through stacked wide forwards by
  /// attackers that support it.  1 = per-target tasks.  Results are
  /// bit-identical for any value (see AttackDriverConfig::batch_targets).
  int batch_targets = 1;
  /// Per-target attack deadline in milliseconds (<= 0 = none), honored on
  /// both the serial loop and the driver (AttackDriverConfig::
  /// target_deadline_ms).  An expired target keeps its partial picks and is
  /// counted in num_timed_out instead of the means.
  double target_deadline_ms = 0.0;
  /// Whole-run attack-phase deadline in milliseconds (<= 0 = none); targets
  /// starting after it are counted in num_skipped without running.
  double run_deadline_ms = 0.0;
  /// Non-empty enables the driver's checkpoint journal (attack_threads >= 1
  /// only; see AttackDriverConfig::journal_path).
  std::string journal_path;
  /// Run the inspector defense (InspectAndPrune, graph-native) on every
  /// attacked target after the explain step and aggregate recovery stats
  /// into the outcome.  Off by default — the §5.1 tables do not defend.
  bool defend = false;
  /// Defense knobs used when `defend` is set.
  InspectorDefenseConfig defense;
};

/// Runs `attack` on every prepared target and inspects each perturbed graph
/// with `explainer`.  With `eval_config.attack_threads >= 1` the attack
/// phase fans out over the thread-pool driver (see EvalConfig).
///
/// The inspect (and optional defend) phase is graph-native end-to-end: one
/// working Graph is patched with each result's `added_edges`, explained /
/// defended, and restored — so the whole protocol runs from a
/// MakeSparseAttackContext without any n×n tensor.
JointAttackOutcome EvaluateAttack(const AttackContext& ctx,
                                  const TargetedAttack& attack,
                                  const std::vector<PreparedTarget>& targets,
                                  const Explainer& explainer,
                                  const EvalConfig& eval_config, Rng* rng);

/// Service-backed twin of EvaluateAttack: submits every prepared target to
/// `service` against the registered graph `graph_version` (which must have
/// been registered from the same data and model as `ctx` — the inspect
/// phase reads `ctx` directly), takes each result, and aggregates the same
/// JointAttackOutcome.  Under live churn, results whose snapshot epoch is
/// older than the version's current epoch at collection time are counted
/// in num_stale (and still aggregated — they are exact for their epoch).
/// Differences from the driver path:
///
///   * admission is bounded — when the service's queue is full the
///     submission loop waits for it to drain and retries once; a request
///     still rejected (or shed under overload) lands in num_shed instead
///     of poisoning the means;
///   * `request_deadline_ms` / `priority` flow into every submission, so a
///     whole evaluation can run as low-priority background load against a
///     service that is also serving interactive callers;
///   * per-request retry/backoff and degradation are governed by the
///     service's own config, not EvalConfig (EvalConfig::attack_threads
///     and the deadline knobs are ignored on this path).
///
/// Determinism: targets that complete on their first attempt with an
/// undegraded budget carry picks bit-identical to EvaluateAttack with
/// attack_threads >= 1 over the same accepted sequence and base seed (see
/// AttemptSeed in src/service/attack_service.h).
JointAttackOutcome EvaluateAttackOnService(
    const AttackContext& ctx, AttackService* service,
    const std::string& graph_version,
    const std::vector<PreparedTarget>& targets, const Explainer& explainer,
    const EvalConfig& eval_config, double request_deadline_ms = 0.0,
    int32_t priority = 0);

/// Builds an AttackContext view over `data` and `model`: dense + CSR clean
/// adjacencies plus the shared normalized clean CSR and degree cache that
/// batched multi-target evaluation reuses across targets.
AttackContext MakeAttackContext(const GraphData& data, const Gcn& model);

/// Sparse-only twin for graphs too large to densify: clean_adjacency stays
/// empty, attacks must run their candidate-edge paths, and AttackResults
/// carry only added_edges (use PerturbedLogits(..., sparse=true)).
AttackContext MakeSparseAttackContext(const GraphData& data, const Gcn& model);

}  // namespace geattack

#endif  // GEATTACK_SRC_EVAL_PIPELINE_H_
