// Explanation output shared by GNNExplainer and PGExplainer.
//
// An explanation for a node's prediction is a ranking of the edges of the
// node's computation subgraph by importance weight; the top-L edges form the
// explanation subgraph G_S shown to an inspector (paper §3).

#ifndef GEATTACK_SRC_EXPLAIN_EXPLANATION_H_
#define GEATTACK_SRC_EXPLAIN_EXPLANATION_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace geattack {

/// An edge with its learned importance weight.
struct ScoredEdge {
  Edge edge;
  double weight = 0.0;
};

/// A ranked explanation of one node's prediction.
struct Explanation {
  int64_t node = -1;        ///< The explained (target) node.
  int64_t label = -1;       ///< The prediction being explained.
  /// All computation-subgraph edges, sorted by weight descending (ties
  /// broken by canonical edge order for determinism).
  std::vector<ScoredEdge> ranked_edges;

  /// The top-L explanation subgraph edges (fewer if the ranking is shorter).
  std::vector<Edge> TopEdges(int64_t limit) const;

  /// 0-based rank of `edge` in the ranking, or -1 if absent.
  int64_t RankOf(const Edge& edge) const;
};

/// Sorts scored edges by weight descending with deterministic tie-breaks.
void SortScoredEdges(std::vector<ScoredEdge>* edges);

/// Common interface so attacks/evaluation can be explainer-agnostic.
class Explainer {
 public:
  virtual ~Explainer() = default;

  /// Explains model prediction `label` for `node` on the graph given by the
  /// dense `adjacency`.
  virtual Explanation Explain(const Tensor& adjacency, int64_t node,
                              int64_t label) const = 0;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EXPLAIN_EXPLANATION_H_
