// Explanation output shared by GNNExplainer and PGExplainer.
//
// An explanation for a node's prediction is a ranking of the edges of the
// node's computation subgraph by importance weight; the top-L edges form the
// explanation subgraph G_S shown to an inspector (paper §3).
//
// The explainer interface is graph-native: the primary entrypoint takes a
// `Graph` and every explainer implements it over the sparse SubgraphView /
// CSR machinery, so explaining scales with the size of the target's
// computation subgraph, never with n².  A dense-adjacency overload remains
// as a thin reference adapter for small-graph callers; it converts and
// delegates, so there is one implementation behind two surfaces.

#ifndef GEATTACK_SRC_EXPLAIN_EXPLANATION_H_
#define GEATTACK_SRC_EXPLAIN_EXPLANATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/graph/graph.h"

namespace geattack {

/// An edge with its learned importance weight.
struct ScoredEdge {
  Edge edge;
  double weight = 0.0;
};

/// A ranked explanation of one node's prediction.
struct Explanation {
  int64_t node = -1;        ///< The explained (target) node.
  int64_t label = -1;       ///< The prediction being explained.
  /// All computation-subgraph edges, sorted by weight descending (ties
  /// broken by canonical edge order for determinism).
  std::vector<ScoredEdge> ranked_edges;

  /// The top-L explanation subgraph edges (fewer if the ranking is shorter).
  std::vector<Edge> TopEdges(int64_t limit) const;

  /// 0-based rank of `edge` in the ranking, or -1 if absent.  Linear scan —
  /// callers that query many edges against one explanation (the inspector
  /// defense loop) should build a RankIndex instead.
  int64_t RankOf(const Edge& edge) const;
};

/// Edge → rank lookup over one explanation's ranking: O(|ranked| log
/// |ranked|) to build, O(log |ranked|) per query — the index map the
/// inspector's iterative prune loop uses instead of Explanation::RankOf's
/// O(|ranked|) scan per edge.
class RankIndex {
 public:
  explicit RankIndex(const Explanation& explanation);

  /// 0-based rank of `edge`, or -1 if absent from the ranking.
  int64_t RankOf(const Edge& edge) const;

  int64_t size() const { return static_cast<int64_t>(by_edge_.size()); }

 private:
  std::vector<std::pair<Edge, int64_t>> by_edge_;  // Sorted by edge.
};

/// Sorts scored edges by weight descending with deterministic tie-breaks.
void SortScoredEdges(std::vector<ScoredEdge>* edges);

/// Common interface so attacks/evaluation can be explainer-agnostic.
///
/// The graph-native overload is the PRIMARY entrypoint and the only one
/// implementations provide; it runs on sparse state end-to-end.  The dense
/// overload is a non-virtual reference adapter that converts the adjacency
/// once and delegates — kept so paper-sized examples and the bit-identity
/// test suites can speak dense, but never a second implementation.
class Explainer {
 public:
  virtual ~Explainer() = default;

  /// Explains model prediction `label` for `node` on `graph`.  Sparse,
  /// primary: cost scales with the target's computation subgraph.
  virtual Explanation Explain(const Graph& graph, int64_t node,
                              int64_t label) const = 0;

  /// Dense reference adapter: `Graph::FromDense(adjacency)` + the
  /// graph-native path above.  Bit-identical to it by construction.
  Explanation Explain(const Tensor& adjacency, int64_t node,
                      int64_t label) const;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EXPLAIN_EXPLANATION_H_
