#include "src/explain/explanation.h"

#include <algorithm>

namespace geattack {

void SortScoredEdges(std::vector<ScoredEdge>* edges) {
  std::sort(edges->begin(), edges->end(),
            [](const ScoredEdge& a, const ScoredEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.edge < b.edge;
            });
}

std::vector<Edge> Explanation::TopEdges(int64_t limit) const {
  std::vector<Edge> top;
  const int64_t k =
      std::min<int64_t>(limit, static_cast<int64_t>(ranked_edges.size()));
  top.reserve(ZU(k));
  for (int64_t i = 0; i < k; ++i) top.push_back(ranked_edges[ZU(i)].edge);
  return top;
}

int64_t Explanation::RankOf(const Edge& edge) const {
  for (size_t i = 0; i < ranked_edges.size(); ++i)
    if (ranked_edges[i].edge == edge) return static_cast<int64_t>(i);
  return -1;
}

}  // namespace geattack
