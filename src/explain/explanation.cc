#include "src/explain/explanation.h"

#include <algorithm>

namespace geattack {

void SortScoredEdges(std::vector<ScoredEdge>* edges) {
  std::sort(edges->begin(), edges->end(),
            [](const ScoredEdge& a, const ScoredEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.edge < b.edge;
            });
}

std::vector<Edge> Explanation::TopEdges(int64_t limit) const {
  std::vector<Edge> top;
  const int64_t k =
      std::min<int64_t>(limit, static_cast<int64_t>(ranked_edges.size()));
  top.reserve(ZU(k));
  for (int64_t i = 0; i < k; ++i) top.push_back(ranked_edges[ZU(i)].edge);
  return top;
}

int64_t Explanation::RankOf(const Edge& edge) const {
  for (size_t i = 0; i < ranked_edges.size(); ++i)
    if (ranked_edges[i].edge == edge) return static_cast<int64_t>(i);
  return -1;
}

RankIndex::RankIndex(const Explanation& explanation) {
  by_edge_.reserve(explanation.ranked_edges.size());
  for (size_t i = 0; i < explanation.ranked_edges.size(); ++i)
    by_edge_.emplace_back(explanation.ranked_edges[i].edge,
                          static_cast<int64_t>(i));
  std::sort(by_edge_.begin(), by_edge_.end(),
            [](const std::pair<Edge, int64_t>& a,
               const std::pair<Edge, int64_t>& b) {
              return a.first < b.first;
            });
}

int64_t RankIndex::RankOf(const Edge& edge) const {
  const auto it = std::lower_bound(
      by_edge_.begin(), by_edge_.end(), edge,
      [](const std::pair<Edge, int64_t>& a, const Edge& e) {
        return a.first < e;
      });
  if (it == by_edge_.end() || !(it->first == edge)) return -1;
  return it->second;
}

Explanation Explainer::Explain(const Tensor& adjacency, int64_t node,
                               int64_t label) const {
  return Explain(Graph::FromDense(adjacency), node, label);
}

}  // namespace geattack
