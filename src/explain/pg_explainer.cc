#include "src/explain/pg_explainer.h"

#include <unordered_set>

#include "src/nn/adam.h"

namespace geattack {

namespace {

/// Row-selector constant: (m, n) matrix with S[e, pick(e)] = 1, so S·H
/// gathers hidden rows for each edge slot.
Tensor RowSelector(const std::vector<int64_t>& picks, int64_t n) {
  Tensor s(static_cast<int64_t>(picks.size()), n);
  for (size_t e = 0; e < picks.size(); ++e) {
    GEA_CHECK(picks[e] >= 0 && picks[e] < n);
    s.at(static_cast<int64_t>(e), picks[e]) = 1.0;
  }
  return s;
}

}  // namespace

std::vector<IndexPair> ComputationSubgraphPairs(const Graph& graph,
                                                int64_t node, int hops) {
  const auto nodes = graph.KHopNeighborhood(node, hops);
  const std::unordered_set<int64_t> in_subgraph(nodes.begin(), nodes.end());
  std::vector<IndexPair> pairs;
  for (const Edge& e : graph.Edges())
    if (in_subgraph.count(e.u) && in_subgraph.count(e.v))
      pairs.push_back({e.u, e.v});
  return pairs;
}

Var PgEdgeLogits(const Var& hidden, const std::vector<IndexPair>& pairs,
                 int64_t target, const Var& w1, const Var& b1,
                 const Var& w2) {
  GEA_CHECK(hidden.defined());
  const int64_t n = hidden.rows();
  std::vector<int64_t> us, vs, ts;
  us.reserve(pairs.size());
  vs.reserve(pairs.size());
  ts.assign(pairs.size(), target);
  for (const auto& p : pairs) {
    us.push_back(p.u);
    vs.push_back(p.v);
  }
  Var hu = MatMul(Constant(RowSelector(us, n), "sel_u"), hidden);
  Var hv = MatMul(Constant(RowSelector(vs, n), "sel_v"), hidden);
  Var ht = MatMul(Constant(RowSelector(ts, n), "sel_t"), hidden);
  Var e = HConcat(HConcat(hu, hv), ht);  // (m, 3h).
  Var hidden_layer = Relu(Add(MatMul(e, w1), b1));
  return MatMul(hidden_layer, w2);  // (m, 1) pre-sigmoid weights.
}

PgExplainer::PgExplainer(const Gcn* model, const Tensor* features,
                         const PgExplainerConfig& config)
    : model_(model), features_(features), config_(config) {
  GEA_CHECK(model != nullptr && features != nullptr);
  Rng rng(config.seed * 7919ull + 13ull);
  const int64_t h3 = 3 * model->config().hidden_dim;
  params_.w1 = rng.GlorotTensor(h3, config.mlp_hidden);
  params_.b1 = Tensor(1, config.mlp_hidden);
  params_.w2 = rng.GlorotTensor(config.mlp_hidden, 1);
}

void PgExplainer::Train(const Tensor& adjacency,
                        const std::vector<int64_t>& instances,
                        const std::vector<int64_t>& labels) {
  GEA_CHECK(!instances.empty());
  const int64_t n = adjacency.rows();
  const Tensor norm = NormalizeAdjacency(adjacency);
  const Var hidden = Constant(model_->Hidden(norm, *features_), "H");
  const Var adj = Constant(adjacency, "A");
  const GcnForwardContext ctx = MakeForwardContext(*model_, *features_);
  const Graph graph = Graph::FromDense(adjacency);

  // Precompute per-instance subgraph pairs once.
  std::vector<std::vector<IndexPair>> pairs_of;
  pairs_of.reserve(instances.size());
  for (int64_t v : instances)
    pairs_of.push_back(ComputationSubgraphPairs(graph, v, config_.hops));

  Adam adam({.lr = config_.lr});
  adam.Register(&params_.w1);
  adam.Register(&params_.b1);
  adam.Register(&params_.w2);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    Var w1 = Var::Leaf(params_.w1, true, "pg_w1");
    Var b1 = Var::Leaf(params_.b1, true, "pg_b1");
    Var w2 = Var::Leaf(params_.w2, true, "pg_w2");
    Var total;
    for (size_t k = 0; k < instances.size(); ++k) {
      const int64_t v = instances[k];
      const auto& pairs = pairs_of[k];
      if (pairs.empty()) continue;
      Var omega = PgEdgeLogits(hidden, pairs, v, w1, b1, w2);
      Var gate = Sigmoid(omega);
      // Masked graph = A with subgraph edges re-weighted by the gate:
      // A + scatter(gate - 1) zeroes out down-weighted edges only.
      Var masked = Add(adj, ScatterEdges(AddScalar(gate, -1.0), pairs, n));
      Var logits = GcnLogitsVar(ctx, masked);
      Var loss = NllRow(logits, v, labels[v]);
      // Both regularizers are normalized per edge so they do not swamp the
      // single-instance NLL on large subgraphs.
      if (config_.size_coeff > 0)
        loss = Add(loss, MulScalar(Sum(gate), config_.size_coeff /
                                                  static_cast<double>(
                                                      pairs.size())));
      if (config_.entropy_coeff > 0) {
        Var gc = AddScalar(MulScalar(gate, 0.998), 0.001);
        Var om = AddScalar(Neg(gc), 1.0);
        Var ent = Neg(Add(Mul(gc, Log(gc)), Mul(om, Log(om))));
        loss = Add(loss, MulScalar(Sum(ent), config_.entropy_coeff /
                                                static_cast<double>(
                                                    pairs.size())));
      }
      total = total.defined() ? Add(total, loss) : loss;
    }
    if (!total.defined()) break;
    auto grads = Grad(total, {w1, b1, w2});
    adam.Step({grads[0].value(), grads[1].value(), grads[2].value()});
  }
  trained_ = true;
}

Explanation PgExplainer::Explain(const Tensor& adjacency, int64_t node,
                                 int64_t label) const {
  const Tensor norm = NormalizeAdjacency(adjacency);
  const Var hidden = Constant(model_->Hidden(norm, *features_), "H");
  const Graph graph = Graph::FromDense(adjacency);
  std::vector<IndexPair> pairs;
  if (config_.restrict_to_subgraph) {
    pairs = ComputationSubgraphPairs(graph, node, config_.hops);
  } else {
    for (const Edge& e : graph.Edges()) pairs.push_back({e.u, e.v});
  }

  Explanation explanation;
  explanation.node = node;
  explanation.label = label;
  if (pairs.empty()) return explanation;

  Var omega = PgEdgeLogits(hidden, pairs, node, Constant(params_.w1),
                           Constant(params_.b1), Constant(params_.w2));
  Tensor gate = omega.value().Sigmoid();
  for (size_t e = 0; e < pairs.size(); ++e) {
    explanation.ranked_edges.push_back(
        {Edge(pairs[e].u, pairs[e].v), gate.at(static_cast<int64_t>(e), 0)});
  }
  SortScoredEdges(&explanation.ranked_edges);
  return explanation;
}

}  // namespace geattack
