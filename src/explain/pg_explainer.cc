#include "src/explain/pg_explainer.h"

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <utility>

#include "src/graph/subgraph.h"
#include "src/nn/adam.h"
#include "src/nn/sparse_forward.h"

namespace geattack {

namespace {

/// Sparse row gather: S·H with S the (m, n) selector S[e, pick(e)] = 1,
/// realized as a constant CSR so the product (and its backward) costs
/// O(m·h) instead of the dense selector's O(m·n·h).
Var GatherRows(const Var& hidden, const std::vector<int64_t>& picks) {
  const int64_t n = hidden.rows();
  auto p = std::make_shared<CsrPattern>();
  p->rows = static_cast<int64_t>(picks.size());
  p->cols = n;
  p->row_ptr.reserve(picks.size() + 1);
  p->row_ptr.push_back(0);
  for (int64_t pick : picks) {
    GEA_CHECK(pick >= 0 && pick < n);
    p->col_idx.push_back(pick);
    p->row_ptr.push_back(static_cast<int64_t>(p->col_idx.size()));
  }
  auto sel = std::make_shared<const CsrMatrix>(
      std::move(p), std::vector<double>(picks.size(), 1.0));
  return SpMM(sel, hidden);
}

}  // namespace

std::vector<IndexPair> ComputationSubgraphPairs(const Graph& graph,
                                                int64_t node, int hops) {
  const auto nodes = graph.KHopNeighborhood(node, hops);
  const std::unordered_set<int64_t> in_subgraph(nodes.begin(), nodes.end());
  std::vector<IndexPair> pairs;
  for (int64_t u : nodes) {
    for (int64_t v : graph.Neighbors(u)) {
      if (v <= u || !in_subgraph.count(v)) continue;
      pairs.push_back({u, v});
    }
  }
  // Canonical (u < v global) edge order, matching Graph::Edges().
  std::sort(pairs.begin(), pairs.end(), [](const IndexPair& a,
                                           const IndexPair& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  return pairs;
}

Var PgEdgeLogits(const Var& hidden, const std::vector<IndexPair>& pairs,
                 int64_t target, const Var& w1, const Var& b1,
                 const Var& w2) {
  GEA_CHECK(hidden.defined());
  std::vector<int64_t> us, vs, ts;
  us.reserve(pairs.size());
  vs.reserve(pairs.size());
  ts.assign(pairs.size(), target);
  for (const auto& p : pairs) {
    us.push_back(p.u);
    vs.push_back(p.v);
  }
  Var hu = GatherRows(hidden, us);
  Var hv = GatherRows(hidden, vs);
  Var ht = GatherRows(hidden, ts);
  Var e = HConcat(HConcat(hu, hv), ht);  // (m, 3h).
  Var hidden_layer = Relu(Add(MatMul(e, w1), b1));
  return MatMul(hidden_layer, w2);  // (m, 1) pre-sigmoid weights.
}

PgExplainer::PgExplainer(const Gcn* model, const Tensor* features,
                         const PgExplainerConfig& config)
    : model_(model), features_(features), config_(config) {
  GEA_CHECK(model != nullptr && features != nullptr);
  Rng rng(config.seed * 7919ull + 13ull);
  const int64_t h3 = 3 * model->config().hidden_dim;
  params_.w1 = rng.GlorotTensor(h3, config.mlp_hidden);
  params_.b1 = Tensor(1, config.mlp_hidden);
  params_.w2 = rng.GlorotTensor(config.mlp_hidden, 1);
}

void PgExplainer::Train(const Tensor& adjacency,
                        const std::vector<int64_t>& instances,
                        const std::vector<int64_t>& labels) {
  Train(Graph::FromDense(adjacency), instances, labels);
}

void PgExplainer::Train(const Graph& graph,
                        const std::vector<int64_t>& instances,
                        const std::vector<int64_t>& labels) {
  GEA_CHECK(!instances.empty());
  const CsrMatrix norm = NormalizeAdjacencyCsr(graph);
  const Var hidden = Constant(model_->Hidden(norm, *features_), "H");
  const Tensor xw1_full = features_->MatMul(model_->w1());

  // Per-instance views: the induced edges of the k-hop ball are exactly the
  // computation-subgraph pairs, so the gate vector doubles as the
  // undirected slot values; out-of-ball edges stay unmasked constants.
  struct Instance {
    SubgraphView view;
    SparseAttackForward sf;
    std::vector<IndexPair> pairs_global;
  };
  std::vector<Instance> prepared;
  prepared.reserve(instances.size());
  for (int64_t v : instances) {
    Instance inst;
    inst.view = BuildSubgraphView(graph, v, config_.hops, /*candidates=*/{});
    inst.sf = MakeSparseAttackForward(inst.view, *model_, xw1_full);
    for (const IndexPair& e : inst.view.edges_local)
      inst.pairs_global.push_back(
          {inst.view.nodes[ZU(e.u)],
           inst.view.nodes[ZU(e.v)]});
    prepared.push_back(std::move(inst));
  }
  // The views moved into the vector; re-point each forward at its view.
  for (Instance& inst : prepared) inst.sf.view = &inst.view;

  Adam adam({.lr = config_.lr});
  adam.Register(&params_.w1);
  adam.Register(&params_.b1);
  adam.Register(&params_.w2);

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    Var w1 = Var::Leaf(params_.w1, true, "pg_w1");
    Var b1 = Var::Leaf(params_.b1, true, "pg_b1");
    Var w2 = Var::Leaf(params_.w2, true, "pg_w2");
    Var total;
    for (size_t k = 0; k < prepared.size(); ++k) {
      const Instance& inst = prepared[k];
      const int64_t v = instances[k];
      const int64_t p = static_cast<int64_t>(inst.pairs_global.size());
      if (p == 0) continue;
      Var omega = PgEdgeLogits(hidden, inst.pairs_global, v, w1, b1, w2);
      Var gate = Sigmoid(omega);
      Var values = DirectedFromUndirected(inst.sf, gate);
      Var logits = SparseGcnLogitsVar(inst.sf, values);
      Var loss = NllRow(logits, inst.view.target_local, labels[ZU(v)]);
      // Both regularizers are normalized per edge so they do not swamp the
      // single-instance NLL on large subgraphs.
      if (config_.size_coeff > 0)
        loss = Add(loss, MulScalar(Sum(gate), config_.size_coeff /
                                                  static_cast<double>(p)));
      if (config_.entropy_coeff > 0) {
        Var gc = AddScalar(MulScalar(gate, 0.998), 0.001);
        Var om = AddScalar(Neg(gc), 1.0);
        Var ent = Neg(Add(Mul(gc, Log(gc)), Mul(om, Log(om))));
        loss = Add(loss, MulScalar(Sum(ent), config_.entropy_coeff /
                                                 static_cast<double>(p)));
      }
      total = total.defined() ? Add(total, loss) : loss;
    }
    if (!total.defined()) break;
    auto grads = Grad(total, {w1, b1, w2});
    adam.Step({grads[0].value(), grads[1].value(), grads[2].value()});
  }
  trained_ = true;
}

Explanation PgExplainer::Explain(const Graph& graph, int64_t node,
                                 int64_t label) const {
  const CsrMatrix norm = NormalizeAdjacencyCsr(graph);
  const Var hidden = Constant(model_->Hidden(norm, *features_), "H");
  std::vector<IndexPair> pairs;
  if (config_.restrict_to_subgraph) {
    pairs = ComputationSubgraphPairs(graph, node, config_.hops);
  } else {
    for (const Edge& e : graph.Edges()) pairs.push_back({e.u, e.v});
  }

  Explanation explanation;
  explanation.node = node;
  explanation.label = label;
  if (pairs.empty()) return explanation;

  Var omega = PgEdgeLogits(hidden, pairs, node, Constant(params_.w1),
                           Constant(params_.b1), Constant(params_.w2));
  Tensor gate = omega.value().Sigmoid();
  for (size_t e = 0; e < pairs.size(); ++e) {
    explanation.ranked_edges.push_back(
        {Edge(pairs[e].u, pairs[e].v), gate.at(static_cast<int64_t>(e), 0)});
  }
  SortScoredEdges(&explanation.ranked_edges);
  return explanation;
}

}  // namespace geattack
