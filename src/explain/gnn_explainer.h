// GNNExplainer (Ying et al., NeurIPS'19) for the structural setting of the
// paper (Eq. 2/3): learn an adjacency mask M_A maximizing the mutual
// information between the masked prediction and the model's prediction, i.e.
// minimize  -log f_θ(A ⊙ σ(M_A), X)[v, ŷ]  (+ size/entropy regularizers of
// the reference implementation).  Edges are then ranked by the learned mask
// weight; the top-L form the explanation subgraph an inspector examines.

#ifndef GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_
#define GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_

#include <cstdint>

#include "src/explain/explanation.h"
#include "src/nn/gcn.h"
#include "src/tensor/random.h"

namespace geattack {

/// GNNExplainer hyperparameters (defaults follow the author implementation
/// the paper references in §A.2).
struct GnnExplainerConfig {
  int64_t epochs = 100;
  double lr = 0.05;
  /// Coefficient on the mask-size penalty Σ σ(M) over edges.
  double size_coeff = 0.005;
  /// Coefficient on the elementwise mask entropy (pushes mask to 0/1).
  double entropy_coeff = 0.1;
  /// Receptive field: 2 hops for the 2-layer GCN.
  int hops = 2;
  /// When true, only computation-subgraph edges are ranked.  The paper's
  /// protocol ranks the whole masked adjacency ("top-L edges with the
  /// largest values"), so the default keeps every graph edge in the
  /// ranking — edges outside the receptive field keep near-initialization
  /// weights and act as the noise floor an attacker can hide under.
  bool restrict_to_subgraph = false;
  /// Mask initialization scale and seed.
  double init_scale = 0.1;
  uint64_t seed = 0;
};

/// Learns per-query adjacency masks for a fixed trained GCN.
class GnnExplainer : public Explainer {
 public:
  /// `model` and `features` must outlive the explainer.
  GnnExplainer(const Gcn* model, const Tensor* features,
               const GnnExplainerConfig& config);

  /// Optimizes a symmetric adjacency mask for `node`'s prediction `label`
  /// on `adjacency` and returns the ranked computation-subgraph edges.
  Explanation Explain(const Tensor& adjacency, int64_t node,
                      int64_t label) const override;

  /// The explainer's loss L_Explainer (Eq. 2, structure-only form of Eq. 3)
  /// as an autodiff expression.  Exposed so GEAttack can mimic the mask
  /// optimization while keeping the dependence on the (relaxed) adjacency.
  /// `adjacency` may be any Var (raw or relaxed); `mask` is the symmetric
  /// pre-sigmoid mask Var.
  static Var ExplainerLoss(const GcnForwardContext& ctx, const Var& adjacency,
                           const Var& mask, int64_t node, int64_t label);

  const GnnExplainerConfig& config() const { return config_; }

 private:
  const Gcn* model_;
  const Tensor* features_;
  GnnExplainerConfig config_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_
