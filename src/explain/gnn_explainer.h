// GNNExplainer (Ying et al., NeurIPS'19) for the structural setting of the
// paper (Eq. 2/3): learn an adjacency mask M_A maximizing the mutual
// information between the masked prediction and the model's prediction, i.e.
// minimize  -log f_θ(A ⊙ σ(M_A), X)[v, ŷ]  (+ size/entropy regularizers of
// the reference implementation).  Edges are then ranked by the learned mask
// weight; the top-L form the explanation subgraph an inspector examines.

#ifndef GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_
#define GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_

#include <cstdint>

#include "src/explain/explanation.h"
#include "src/nn/gcn.h"
#include "src/tensor/random.h"

namespace geattack {

/// GNNExplainer hyperparameters (defaults follow the author implementation
/// the paper references in §A.2).
struct GnnExplainerConfig {
  int64_t epochs = 100;
  double lr = 0.05;
  /// Coefficient on the mask-size penalty Σ σ(M) over edges.
  double size_coeff = 0.005;
  /// Coefficient on the elementwise mask entropy (pushes mask to 0/1).
  double entropy_coeff = 0.1;
  /// Receptive field: 2 hops for the 2-layer GCN.
  int hops = 2;
  /// When true, only computation-subgraph edges are ranked.  The paper's
  /// protocol ranks the whole masked adjacency ("top-L edges with the
  /// largest values"), so the default keeps every graph edge in the
  /// ranking — edges outside the receptive field keep near-initialization
  /// weights and act as the noise floor an attacker can hide under.
  bool restrict_to_subgraph = false;
  /// Mask initialization scale and seed.
  double init_scale = 0.1;
  uint64_t seed = 0;
  /// When true, Explain() runs the edge-list path (ExplainGraph): the mask
  /// lives on the k-hop subgraph's edges and every epoch costs
  /// O(|E_sub|·h) instead of O(n²·h).  Implies subgraph-restricted
  /// ranking.  Off by default so the dense inspector numerics stay put.
  bool sparse = false;
};

/// Learns per-query adjacency masks for a fixed trained GCN.
class GnnExplainer : public Explainer {
 public:
  /// `model` and `features` must outlive the explainer.
  GnnExplainer(const Gcn* model, const Tensor* features,
               const GnnExplainerConfig& config);

  /// Optimizes a symmetric adjacency mask for `node`'s prediction `label`
  /// on `adjacency` and returns the ranked computation-subgraph edges.
  Explanation Explain(const Tensor& adjacency, int64_t node,
                      int64_t label) const override;

  /// Sparse edge-list twin of Explain: the mask is one logit per edge of
  /// `node`'s k-hop subgraph (SubgraphView), optimized through the CSR
  /// forward, so one epoch costs O(|E_sub|·h).  Never densifies; this is
  /// the path that explains multi-10k-node graphs.  `xw1_full` lets a
  /// caller that already folded X·W₁ (e.g. CachedXw1 on an AttackContext)
  /// skip the O(n·d·h) refold this query would otherwise pay.
  Explanation ExplainGraph(const Graph& graph, int64_t node, int64_t label,
                           const Tensor* xw1_full = nullptr) const;

  /// The explainer's loss L_Explainer (Eq. 2, structure-only form of Eq. 3)
  /// as an autodiff expression.  Exposed so GEAttack can mimic the mask
  /// optimization while keeping the dependence on the (relaxed) adjacency.
  /// `adjacency` may be any Var (raw or relaxed); `mask` is the symmetric
  /// pre-sigmoid mask Var.
  static Var ExplainerLoss(const GcnForwardContext& ctx, const Var& adjacency,
                           const Var& mask, int64_t node, int64_t label);

  const GnnExplainerConfig& config() const { return config_; }

 private:
  const Gcn* model_;
  const Tensor* features_;
  GnnExplainerConfig config_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_
