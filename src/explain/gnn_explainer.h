// GNNExplainer (Ying et al., NeurIPS'19) for the structural setting of the
// paper (Eq. 2/3): learn an adjacency mask M_A maximizing the mutual
// information between the masked prediction and the model's prediction, i.e.
// minimize  -log f_θ(A ⊙ σ(M_A), X)[v, ŷ]  (+ size/entropy regularizers of
// the reference implementation).  Edges are then ranked by the learned mask
// weight; the top-L form the explanation subgraph an inspector examines.
//
// The implementation is graph-native (see Explainer in explanation.h): the
// mask is one logit per edge of the target's k-hop SubgraphView and every
// epoch costs O(|E_sub|·h) through the CSR forward — never O(n²·h).  The
// ranking covers the computation-subgraph edges; edges outside the
// receptive field have exactly zero influence on the explained prediction,
// so the retired dense path's near-initialization weights on them were pure
// noise.

#ifndef GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_
#define GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_

#include <cstdint>
#include <mutex>

#include "src/explain/explanation.h"
#include "src/nn/gcn.h"
#include "src/tensor/random.h"

namespace geattack {

/// GNNExplainer hyperparameters (defaults follow the author implementation
/// the paper references in §A.2).
struct GnnExplainerConfig {
  int64_t epochs = 100;
  double lr = 0.05;
  /// Coefficient on the mask-size penalty Σ σ(M) over edges.
  double size_coeff = 0.005;
  /// Coefficient on the elementwise mask entropy (pushes mask to 0/1).
  double entropy_coeff = 0.1;
  /// Receptive field: 2 hops for the 2-layer GCN.
  int hops = 2;
  /// Mask initialization scale and seed.
  double init_scale = 0.1;
  uint64_t seed = 0;
};

/// Learns per-query adjacency masks for a fixed trained GCN.
class GnnExplainer : public Explainer {
 public:
  /// `model` and `features` must outlive the explainer.
  GnnExplainer(const Gcn* model, const Tensor* features,
               const GnnExplainerConfig& config);

  using Explainer::Explain;

  /// Optimizes a per-edge mask over `node`'s k-hop SubgraphView through the
  /// sparse CSR forward and returns the ranked computation-subgraph edges.
  /// One epoch costs O(|E_sub|·h); nothing densifies.  X·W₁ is folded once
  /// per explainer instance and reused across queries.
  Explanation Explain(const Graph& graph, int64_t node,
                      int64_t label) const override;

  /// Explain with a caller-provided X·W₁ fold (e.g. CachedXw1 on an
  /// AttackContext) so repeated queries share one O(n·d·h) fold even across
  /// explainer instances.  `xw1_full == nullptr` uses the instance cache.
  Explanation ExplainGraph(const Graph& graph, int64_t node, int64_t label,
                           const Tensor* xw1_full = nullptr) const;

  /// The explainer's loss L_Explainer (Eq. 2, structure-only form of Eq. 3)
  /// as an autodiff expression.  Exposed so GEAttack can mimic the mask
  /// optimization while keeping the dependence on the (relaxed) adjacency.
  /// `adjacency` may be any Var (raw or relaxed); `mask` is the symmetric
  /// pre-sigmoid mask Var.
  static Var ExplainerLoss(const GcnForwardContext& ctx, const Var& adjacency,
                           const Var& mask, int64_t node, int64_t label);

  const GnnExplainerConfig& config() const { return config_; }

 private:
  /// The instance's lazily-built X·W₁ fold (a function of the fixed model
  /// and features only, so it is query-independent).
  const Tensor& CachedXw1() const;

  const Gcn* model_;
  const Tensor* features_;
  GnnExplainerConfig config_;
  mutable std::once_flag xw1_once_;
  mutable Tensor xw1_cache_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EXPLAIN_GNN_EXPLAINER_H_
