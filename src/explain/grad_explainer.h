// Gradient-saliency explainer (baseline explainer).
//
// The cheapest possible edge-attribution method: rank edges by the
// magnitude of the prediction-loss gradient with respect to the adjacency,
// |∂(-log f(A,X)[v,ŷ])/∂A[i,j]|.  One backward pass, no optimization.
// Related-work explainers (Grad/Grad-CAM style saliency) reduce to this on
// graph structure; it serves as a floor for the learned explainers and as a
// fast inspector in the defense module.

#ifndef GEATTACK_SRC_EXPLAIN_GRAD_EXPLAINER_H_
#define GEATTACK_SRC_EXPLAIN_GRAD_EXPLAINER_H_

#include "src/explain/explanation.h"
#include "src/nn/gcn.h"

namespace geattack {

/// Saliency configuration.
struct GradExplainerConfig {
  /// Restrict ranking to the 2-hop computation subgraph (edges outside it
  /// have exactly zero gradient for a 2-layer GCN, so this only trims
  /// zero-weight tail entries).
  int hops = 2;
  bool restrict_to_subgraph = true;
};

/// One-backward-pass edge saliency.
class GradExplainer : public Explainer {
 public:
  GradExplainer(const Gcn* model, const Tensor* features,
                const GradExplainerConfig& config = {});

  Explanation Explain(const Tensor& adjacency, int64_t node,
                      int64_t label) const override;

 private:
  const Gcn* model_;
  const Tensor* features_;
  GradExplainerConfig config_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EXPLAIN_GRAD_EXPLAINER_H_
