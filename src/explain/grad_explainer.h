// Gradient-saliency explainer (baseline explainer).
//
// The cheapest possible edge-attribution method: rank edges by the
// magnitude of the prediction-loss gradient with respect to the adjacency,
// |∂(-log f(A,X)[v,ŷ])/∂A[i,j]|.  One backward pass, no optimization.
// Related-work explainers (Grad/Grad-CAM style saliency) reduce to this on
// graph structure; it serves as a floor for the learned explainers and as a
// fast inspector in the defense module.
//
// Graph-native (see Explainer in explanation.h): the backward runs over the
// target's k-hop SubgraphView with one gradient slot per undirected edge,
// O(|E_sub|·h) total.  The per-edge slot gradient equals the dense
// g(u,v) + g(v,u) sum, and edges outside the receptive field have exactly
// zero gradient for a 2-layer GCN, so the subgraph ranking loses nothing.

#ifndef GEATTACK_SRC_EXPLAIN_GRAD_EXPLAINER_H_
#define GEATTACK_SRC_EXPLAIN_GRAD_EXPLAINER_H_

#include <mutex>

#include "src/explain/explanation.h"
#include "src/nn/gcn.h"

namespace geattack {

/// Saliency configuration.
struct GradExplainerConfig {
  /// Receptive field: 2 hops for the 2-layer GCN (edges outside it have
  /// exactly zero gradient, so the ranking covers everything non-trivial).
  int hops = 2;
};

/// One-backward-pass edge saliency.
class GradExplainer : public Explainer {
 public:
  GradExplainer(const Gcn* model, const Tensor* features,
                const GradExplainerConfig& config = {});

  using Explainer::Explain;

  /// Ranks `node`'s computation-subgraph edges by |∂NLL/∂a_e| from one
  /// sparse backward over the k-hop SubgraphView.
  Explanation Explain(const Graph& graph, int64_t node,
                      int64_t label) const override;

 private:
  /// Lazily-built X·W₁ fold (query-independent).
  const Tensor& CachedXw1() const;

  const Gcn* model_;
  const Tensor* features_;
  GradExplainerConfig config_;
  mutable std::once_flag xw1_once_;
  mutable Tensor xw1_cache_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EXPLAIN_GRAD_EXPLAINER_H_
