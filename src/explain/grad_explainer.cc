#include "src/explain/grad_explainer.h"

#include <cmath>
#include <unordered_set>

namespace geattack {

GradExplainer::GradExplainer(const Gcn* model, const Tensor* features,
                             const GradExplainerConfig& config)
    : model_(model), features_(features), config_(config) {
  GEA_CHECK(model != nullptr && features != nullptr);
}

Explanation GradExplainer::Explain(const Tensor& adjacency, int64_t node,
                                   int64_t label) const {
  const GcnForwardContext ctx = MakeForwardContext(*model_, *features_);
  Var adj = Var::Leaf(adjacency, /*requires_grad=*/true, "A");
  Var loss = NllRow(GcnLogitsVar(ctx, adj), node, label);
  const Tensor g = GradOne(loss, adj).value();

  const Graph graph = Graph::FromDense(adjacency);
  std::unordered_set<int64_t> in_subgraph;
  if (config_.restrict_to_subgraph) {
    const auto nodes = graph.KHopNeighborhood(node, config_.hops);
    in_subgraph.insert(nodes.begin(), nodes.end());
  }

  Explanation explanation;
  explanation.node = node;
  explanation.label = label;
  for (const Edge& e : graph.Edges()) {
    if (config_.restrict_to_subgraph &&
        (!in_subgraph.count(e.u) || !in_subgraph.count(e.v)))
      continue;
    const double saliency = std::fabs(g.at(e.u, e.v) + g.at(e.v, e.u));
    explanation.ranked_edges.push_back({e, saliency});
  }
  SortScoredEdges(&explanation.ranked_edges);
  return explanation;
}

}  // namespace geattack
