#include "src/explain/grad_explainer.h"

#include <cmath>

#include "src/graph/subgraph.h"
#include "src/nn/sparse_forward.h"

namespace geattack {

GradExplainer::GradExplainer(const Gcn* model, const Tensor* features,
                             const GradExplainerConfig& config)
    : model_(model), features_(features), config_(config) {
  GEA_CHECK(model != nullptr && features != nullptr);
}

const Tensor& GradExplainer::CachedXw1() const {
  std::call_once(xw1_once_,
                 [&] { xw1_cache_ = features_->MatMul(model_->w1()); });
  return xw1_cache_;
}

Explanation GradExplainer::Explain(const Graph& graph, int64_t node,
                                   int64_t label) const {
  GEA_CHECK(node >= 0 && node < graph.num_nodes());
  const SubgraphView view =
      BuildSubgraphView(graph, node, config_.hops, /*candidates=*/{});
  const SparseAttackForward sf =
      MakeSparseAttackForward(view, *model_, CachedXw1());

  Explanation explanation;
  explanation.node = node;
  explanation.label = label;
  if (view.num_edges() == 0) return explanation;

  // One undirected value slot per subgraph edge; its gradient aggregates
  // both directed adjacency entries, matching the dense |g(u,v) + g(v,u)|.
  Var und = Var::Leaf(view.und_base, /*requires_grad=*/true, "a");
  Var values = DirectedFromUndirected(sf, und);
  Var loss = NllRow(SparseGcnLogitsVar(sf, values), view.target_local, label);
  const Tensor g = GradOne(loss, und).value();

  for (int64_t s = 0; s < view.num_edges(); ++s) {
    const IndexPair& e = view.edges_local[static_cast<size_t>(s)];
    const Edge global(view.nodes[static_cast<size_t>(e.u)],
                      view.nodes[static_cast<size_t>(e.v)]);
    explanation.ranked_edges.push_back({global, std::fabs(g.at(s, 0))});
  }
  SortScoredEdges(&explanation.ranked_edges);
  return explanation;
}

}  // namespace geattack
