// PGExplainer (Luo et al., NeurIPS'20): a parameterized explainer that
// learns, once, an MLP g_ψ mapping edge representations to importance
// weights, then explains any instance inductively.
//
// For node-classification, the edge representation of (i,j) when explaining
// node v is [h_i ; h_j ; h_v] with h the trained GCN's hidden embeddings;
// the learned weight is ω_ij = MLP_ψ([h_i; h_j; h_v]) and the explanation
// mask is σ(ω).  Training maximizes prediction preservation over a set of
// instances with size/entropy regularizers (we use the deterministic
// relaxation; the concrete-distribution sampling of the original only adds
// gradient noise and is unnecessary at this scale).
//
// Graph-native (see Explainer in explanation.h): training runs per-instance
// masked forwards on k-hop SubgraphViews (O(|E_sub|·h) per instance-epoch)
// and explaining scores edges from CSR embeddings — nothing densifies.  The
// dense Train overload is a reference adapter that converts and delegates.

#ifndef GEATTACK_SRC_EXPLAIN_PG_EXPLAINER_H_
#define GEATTACK_SRC_EXPLAIN_PG_EXPLAINER_H_

#include <cstdint>
#include <vector>

#include "src/explain/explanation.h"
#include "src/nn/gcn.h"
#include "src/tensor/random.h"

namespace geattack {

/// PGExplainer hyperparameters.
struct PgExplainerConfig {
  int64_t epochs = 40;
  double lr = 0.02;
  int64_t mlp_hidden = 32;
  /// Per-edge-normalized mask-size penalty.
  double size_coeff = 0.05;
  /// Per-edge-normalized mask entropy penalty.
  double entropy_coeff = 0.1;
  int hops = 2;
  uint64_t seed = 0;
  /// When true (default), Explain() ranks the computation-subgraph edges —
  /// PGExplainer's usage for node classification.  Set false to rank every
  /// graph edge (the MLP scores any edge given the target's embedding).
  bool restrict_to_subgraph = true;
};

/// MLP parameters of the explainer (exposed so GEAttack-PG can differentiate
/// through the explainer's training updates).
struct PgParams {
  Tensor w1;  // (3h, mlp_hidden)
  Tensor b1;  // (1, mlp_hidden)
  Tensor w2;  // (mlp_hidden, 1)
};

/// Edges of `node`'s `hops`-hop computation subgraph as symmetric index
/// pairs — the edge set PGExplainer scores for one instance.
std::vector<IndexPair> ComputationSubgraphPairs(const Graph& graph,
                                                int64_t node, int hops);

/// Pre-sigmoid edge weights ω for `pairs` when explaining `target`, as an
/// autodiff expression:  ω = ReLU(E W₁ + b₁) W₂ with E row e equal to
/// [hidden_u ; hidden_v ; hidden_target].  `hidden` may depend on a relaxed
/// adjacency Var, and the parameters may be leaves or graph nodes — this is
/// the building block both for explainer training and for the joint attack.
Var PgEdgeLogits(const Var& hidden, const std::vector<IndexPair>& pairs,
                 int64_t target, const Var& w1, const Var& b1, const Var& w2);

/// The trained, inductive explainer.
class PgExplainer : public Explainer {
 public:
  /// `model` and `features` must outlive the explainer.
  PgExplainer(const Gcn* model, const Tensor* features,
              const PgExplainerConfig& config);

  /// Trains ψ on `instances` (nodes whose predictions should be preserved)
  /// over the clean `graph`.  `labels[v]` is the model prediction to
  /// preserve for instance v.  Sparse, primary: embeddings come from the
  /// CSR forward and each instance's masked loss runs on its k-hop
  /// SubgraphView.
  void Train(const Graph& graph, const std::vector<int64_t>& instances,
             const std::vector<int64_t>& labels);

  /// Dense reference adapter for Train: converts and delegates.
  void Train(const Tensor& adjacency, const std::vector<int64_t>& instances,
             const std::vector<int64_t>& labels);

  using Explainer::Explain;

  /// Ranks the computation-subgraph edges of `node` by σ(ω) from CSR
  /// embeddings.  Inductive: no per-query optimization, so this works
  /// directly on perturbed graphs.
  Explanation Explain(const Graph& graph, int64_t node,
                      int64_t label) const override;

  const PgParams& params() const { return params_; }
  const PgExplainerConfig& config() const { return config_; }
  bool trained() const { return trained_; }

 private:
  const Gcn* model_;
  const Tensor* features_;
  PgExplainerConfig config_;
  PgParams params_;
  bool trained_ = false;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_EXPLAIN_PG_EXPLAINER_H_
