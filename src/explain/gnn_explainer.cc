#include "src/explain/gnn_explainer.h"

#include <cmath>

#include "src/graph/subgraph.h"
#include "src/nn/adam.h"
#include "src/nn/sparse_forward.h"

namespace geattack {

GnnExplainer::GnnExplainer(const Gcn* model, const Tensor* features,
                           const GnnExplainerConfig& config)
    : model_(model), features_(features), config_(config) {
  GEA_CHECK(model != nullptr && features != nullptr);
}

const Tensor& GnnExplainer::CachedXw1() const {
  std::call_once(xw1_once_,
                 [&] { xw1_cache_ = features_->MatMul(model_->w1()); });
  return xw1_cache_;
}

Var GnnExplainer::ExplainerLoss(const GcnForwardContext& ctx,
                                const Var& adjacency, const Var& mask,
                                int64_t node, int64_t label) {
  // Symmetrize the free mask so the masked graph stays undirected.
  Var sym = MulScalar(Add(mask, Transpose(mask)), 0.5);
  Var masked = Mul(adjacency, Sigmoid(sym));
  Var logits = GcnLogitsVar(ctx, masked);
  return NllRow(logits, node, label);
}

Explanation GnnExplainer::ExplainGraph(const Graph& graph, int64_t node,
                                       int64_t label,
                                       const Tensor* xw1_full) const {
  GEA_CHECK(node >= 0 && node < graph.num_nodes());
  const SubgraphView view =
      BuildSubgraphView(graph, node, config_.hops, /*candidates=*/{});
  if (xw1_full == nullptr) xw1_full = &CachedXw1();
  const SparseAttackForward sf =
      MakeSparseAttackForward(view, *model_, *xw1_full);
  const int64_t num_edges = view.num_edges();

  Explanation explanation;
  explanation.node = node;
  explanation.label = label;
  if (num_edges == 0) return explanation;

  // Per-query deterministic initialization, one logit per subgraph edge
  // (the per-edge twin of the retired dense n x n draw).
  Rng rng(config_.seed * 1000003ull + static_cast<uint64_t>(node));
  Tensor mask_tensor = rng.NormalTensor(num_edges, 1, 0.0, config_.init_scale);

  const double n_global = static_cast<double>(graph.num_nodes());
  Adam adam({.lr = config_.lr});
  adam.Register(&mask_tensor);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    Var mu = Var::Leaf(mask_tensor, /*requires_grad=*/true, "M");
    Var s = Sigmoid(mu);  // Per-edge mask weight.
    Var values = DirectedFromUndirected(sf, s);
    Var loss = NllRow(SparseGcnLogitsVar(sf, values), view.target_local,
                      label);
    // Regularizers as in the reference implementation; the factor 2 matches
    // its sum over both directed slots of each edge.
    if (config_.size_coeff > 0)
      loss = Add(loss, MulScalar(Sum(s), 2.0 * config_.size_coeff));
    if (config_.entropy_coeff > 0) {
      Var sc = AddScalar(MulScalar(s, 0.998), 0.001);
      Var one_minus = AddScalar(Neg(sc), 1.0);
      Var ent = Neg(Add(Mul(sc, Log(sc)), Mul(one_minus, Log(one_minus))));
      loss = Add(loss,
                 MulScalar(Sum(ent), 2.0 * config_.entropy_coeff / n_global));
    }
    Var grad = GradOne(loss, mu);
    adam.Step({grad.value()});
  }

  for (int64_t s = 0; s < num_edges; ++s) {
    const IndexPair& e = view.edges_local[static_cast<size_t>(s)];
    const Edge global(view.nodes[static_cast<size_t>(e.u)],
                      view.nodes[static_cast<size_t>(e.v)]);
    const double w = 1.0 / (1.0 + std::exp(-mask_tensor.at(s, 0)));
    explanation.ranked_edges.push_back({global, w});
  }
  SortScoredEdges(&explanation.ranked_edges);
  return explanation;
}

Explanation GnnExplainer::Explain(const Graph& graph, int64_t node,
                                  int64_t label) const {
  return ExplainGraph(graph, node, label, /*xw1_full=*/nullptr);
}

}  // namespace geattack
