// Reverse-mode automatic differentiation with higher-order gradients.
//
// GEAttack (Algorithm 1 of the paper) needs to differentiate through T
// gradient-descent steps of GNNExplainer: the adjacency mask M_A^T is a
// function of the perturbed adjacency Â via the inner updates
//     M_A^t = M_A^{t-1} - η ∇_{M_A^{t-1}} L_Explainer(f_θ, Â, M_A^{t-1}, ...),
// and the outer loop needs ∇_Â of a loss that contains M_A^T.  The authors
// rely on PyTorch's create_graph=True double backward; this module rebuilds
// that capability.
//
// Design: a Var is a handle to a Node in a dynamically built computation
// graph.  Each Node stores its Tensor value, its parents, and a backward
// closure that — given the upstream gradient *as a Var* — returns the
// gradient contributions to each parent *as Vars built from the same ops*.
// Because backward emits ordinary graph nodes, the output of Grad() is
// itself differentiable, and gradients of any order come for free.
//
// All ops are free functions (Add, MatMul, Sigmoid, ...).  Broadcasting
// follows Tensor::BroadcastCompatible: a (n,1), (1,c) or (1,1) operand
// broadcasts against an (n,c) one; the corresponding backward reduces with
// RowSum/ColSum/Sum so gradients keep the operand's shape.

#ifndef GEATTACK_SRC_TENSOR_AUTODIFF_H_
#define GEATTACK_SRC_TENSOR_AUTODIFF_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/csr.h"
#include "src/tensor/tensor.h"

namespace geattack {

class Node;

/// Shared handle to a node of the computation graph.  Copying a Var aliases
/// the node.  A default-constructed Var is null; ops check for null inputs.
class Var {
 public:
  Var() = default;
  explicit Var(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  /// Creates a leaf holding `value`.  If `requires_grad`, Grad() can
  /// differentiate with respect to it.
  static Var Leaf(Tensor value, bool requires_grad = false,
                  std::string name = "");

  bool defined() const { return node_ != nullptr; }
  Node* node() const { return node_.get(); }
  const std::shared_ptr<Node>& ptr() const { return node_; }

  /// The tensor value at this node.
  const Tensor& value() const;
  int64_t rows() const { return value().rows(); }
  int64_t cols() const { return value().cols(); }
  bool requires_grad() const;

 private:
  std::shared_ptr<Node> node_;
};

/// A node of the computation graph.  Users interact through Var and the op
/// functions; Node is exposed for the engine and for tests.
class Node {
 public:
  using BackwardFn = std::function<std::vector<Var>(const Var& grad_out)>;

  Node(Tensor value, bool requires_grad, std::string op_name);

  const Tensor& value() const { return value_; }
  bool requires_grad() const { return requires_grad_; }
  int64_t id() const { return id_; }
  const std::string& op_name() const { return op_name_; }
  const std::vector<std::shared_ptr<Node>>& parents() const {
    return parents_;
  }

  void set_parents(std::vector<std::shared_ptr<Node>> parents) {
    parents_ = std::move(parents);
  }
  void set_backward(BackwardFn fn) { backward_ = std::move(fn); }
  const BackwardFn& backward() const { return backward_; }

 private:
  Tensor value_;
  bool requires_grad_;
  int64_t id_;  // Monotonically increasing creation index; parents < child.
  std::string op_name_;
  std::vector<std::shared_ptr<Node>> parents_;
  BackwardFn backward_;
};

// ----- Graph construction helpers. -----------------------------------------

/// Wraps a computed value, its parents, and a backward closure into a graph
/// node: requires_grad is inherited from the parents, and the backward is
/// attached only when some parent needs gradients.  The construction policy
/// every built-in op uses — out-of-module ops (e.g. the stacked attack
/// forward in src/nn/sparse_forward.cc) must build nodes through this too,
/// so the policy lives in exactly one place.
Var MakeOpNode(Tensor value, std::vector<Var> parents,
               Node::BackwardFn backward, std::string op_name);

/// Leaf constant (requires_grad = false).
Var Constant(Tensor value, std::string name = "const");
/// Scalar constant.
Var ConstantScalar(double v);

// ----- Elementwise / broadcasting arithmetic. --------------------------------

/// a + b; one operand may broadcast against the other.
Var Add(const Var& a, const Var& b);
/// a - b.
Var Sub(const Var& a, const Var& b);
/// Hadamard product; one operand may broadcast against the other.
Var Mul(const Var& a, const Var& b);
/// a / b (elementwise; b may broadcast).
Var Div(const Var& a, const Var& b);
/// -a.
Var Neg(const Var& a);
/// a + s.
Var AddScalar(const Var& a, double s);
/// a * s.
Var MulScalar(const Var& a, double s);

// ----- Elementwise nonlinearities. ------------------------------------------

Var Sigmoid(const Var& a);
Var Relu(const Var& a);
Var Exp(const Var& a);
Var Log(const Var& a);
/// Elementwise power with constant exponent.
Var Pow(const Var& a, double e);

// ----- Linear algebra. --------------------------------------------------------

Var MatMul(const Var& a, const Var& b);
Var Transpose(const Var& a);

// ----- Reductions / selection. ------------------------------------------------

/// Sum of all elements -> (1,1).
Var Sum(const Var& a);
/// Row-wise sum -> (rows,1).
Var RowSum(const Var& a);
/// Column-wise sum -> (1,cols).
Var ColSum(const Var& a);
/// Element (i,j) -> (1,1).
Var At(const Var& a, int64_t i, int64_t j);
/// Row i -> (1,cols).
Var SelectRow(const Var& a, int64_t i);
/// Embeds a (1,cols) Var as row i of a rows x cols zero matrix.
Var ScatterRow(const Var& a, int64_t rows, int64_t i);

/// Cuts the graph: returns a new leaf with a copy of a's value and
/// requires_grad = false.
Var Detach(const Var& a);

// ----- Edge-indexed ops (explainer masks). -----------------------------------

/// Pairs of (row, col) indices into an n x n matrix; each pair is written
/// symmetrically.
struct IndexPair {
  int64_t u;
  int64_t v;
};

/// Scatters an (m,1) vector of per-edge values into an n x n zero matrix,
/// writing values[e] at both (u_e, v_e) and (v_e, u_e).  Backward gathers
/// g[u]+g[v] per edge.  Duplicate pairs accumulate.
Var ScatterEdges(const Var& values, const std::vector<IndexPair>& pairs,
                 int64_t n);

/// Gathers a[u_e, v_e] + a[v_e, u_e] per pair into an (m,1) vector — the
/// adjoint of ScatterEdges.
Var GatherEdges(const Var& a, const std::vector<IndexPair>& pairs);

// ----- Sparse (CSR) kernels. --------------------------------------------------

/// Sparse × dense product with a *constant* CSR left operand: A·b.  The
/// gradient flows into `b` only (d/db = Aᵀ·g); use SpMMValues when the
/// sparse entries themselves need gradients.  This is the O(|E|·k) training
/// and inference kernel.  With `a_symmetric` (e.g. the GCN-normalized
/// adjacency) the backward reuses `a` itself — no transpose is ever built,
/// which matters in epoch loops.
Var SpMM(std::shared_ptr<const CsrMatrix> a, const Var& b,
         bool a_symmetric = false);

/// Convenience overload; copies `a` into a shared handle.
Var SpMM(const CsrMatrix& a, const Var& b);

/// Sparse × dense product A·b where A has fixed sparsity `pattern` and
/// differentiable entries `values`, an (nnz,1) Var in pattern order.
/// Gradients flow into both `values` (∂/∂v_e = Σ_j g[r_e,j]·b[c_e,j] — the
/// per-edge adjacency gradient attacks need) and `b` (Aᵀ·g).  Backward
/// emits SpMMValues / SpmmValueGrad / PermuteRows nodes, so gradients of any
/// order are available, matching the bilevel GEAttack requirement.
Var SpMMValues(std::shared_ptr<const CsrPattern> pattern, const Var& values,
               const Var& b);

/// out[e] = Σ_j g[r_e,j]·b[c_e,j] as an (nnz,1) vector — the adjoint of
/// SpMMValues with respect to its values operand (a sparse-masked g·bᵀ).
Var SpmmValueGrad(std::shared_ptr<const CsrPattern> pattern, const Var& g,
                  const Var& b);

/// Reorders the rows of an (m,c) Var by a fixed index map:
/// out[i,:] = a[perm[i],:].  `perm` must be a permutation of [0, m).
Var PermuteRows(const Var& a, std::shared_ptr<const std::vector<int64_t>> perm);

// ----- Column-stacked sparse ops (batched multi-target attacks). ------------
//
// k independent sparse problems sharing ONE pattern: `values` carries one
// value column per problem ((nnz,k)) and dense operands carry k blocks side
// by side ((rows, k·b)).  Block t of every op is bit-identical to the
// corresponding narrow op on column t alone — per-column gradients never
// mix, which is what keeps batched attack targets exactly independent.
// Backwards are composed from the stacked ops themselves, so gradients of
// any order are available (the batched GEAttack hypergradient rides through
// unchanged).

/// out[:, t·b:(t+1)·b] = A(values[:,t]) · b[:, t·b:(t+1)·b] in one kernel
/// pass over the shared pattern (SpmmStackedRaw).  Gradients flow into both
/// `values` and `b`.  `values_mask` (optional, a non-differentiable (nnz,k)
/// 0/1 constant) is the slot-ownership mask of `values`: entries outside it
/// are promised to be 0.0 forever, and the backward then skips computing
/// the values-gradient there (those entries are only ever consumed
/// multiplied by the zero values or sliced away per column, so the skip is
/// result-invisible — it just makes per-column gradient work proportional
/// to the column's own slot count).
Var SpMMValuesStacked(std::shared_ptr<const CsrPattern> pattern,
                      const Var& values, const Var& b,
                      const Var& values_mask = Var());

/// out[e,t] = Σ_j g[r_e, t·m+j] · b[c_e, t·m+j] as an (nnz,k) matrix — the
/// adjoint of SpMMValuesStacked with respect to its values operand.  `k`
/// (the block count) cannot be inferred from the operand shapes.  With
/// `mask` the masked-out entries are 0.0 and their dot products are never
/// evaluated (see SpMMValuesStacked).
Var SpmmValueGradStacked(std::shared_ptr<const CsrPattern> pattern,
                         const Var& g, const Var& b, int64_t k,
                         const Var& mask = Var());

/// Column-stacked GcnNormValues: normalizes each value column with its own
/// out-degree column (`out_deg` is (n,k); undefined = zeros).  One node /
/// kernel pass for all k columns; column t bit-identical to
/// GcnNormValues(pattern, values[:,t], out_deg[:,t]).
Var GcnNormValuesStacked(std::shared_ptr<const CsrPattern> pattern,
                         const Var& values, const Var& out_deg = Var());

/// Fused GCN normalization over a square pattern with differentiable
/// entries `values` ((nnz,1), pattern order): returns the (nnz,1)
/// normalized values Ã_e = v_e·d̃^{-1/2}[r_e]·d̃^{-1/2}[c_e] with
/// d̃ = pattern row sums + out_deg, as ONE node (GcnNormValuesRaw kernel)
/// instead of the five rowsum/pow/gather/scale nodes.  Use this when the
/// normalized values feed several products (the two-layer GCN) so the
/// backward chain is built once and the accumulated ∂L/∂Ã flows through it
/// a single time; use GcnNormSpMM when normalize+SpMM happen exactly once.
/// Double-backward-safe; bit-identical forward to the unfused composition.
Var GcnNormValues(std::shared_ptr<const CsrPattern> pattern, const Var& values,
                  const Var& out_deg = Var());

/// Fused GCN-normalize + SpMM over a square pattern with differentiable
/// entries `values` ((nnz,1), pattern order):
///   d̃_i = Σ_{e ∈ row i} v_e + out_deg_i,
///   Ã_e = v_e · d̃^{-1/2}[r_e] · d̃^{-1/2}[c_e],
///   out = Ã·b,
/// in one kernel pass (GcnNormSpmmRaw) instead of the five separate
/// rowsum/pow/gather/scale/SpMMValues nodes — the forward of the sparse
/// candidate-edge attack path.  `out_deg` is an optional (n,1) out-of-view
/// degree correction (undefined = zeros); gradients flow into `values`, `b`,
/// and `out_deg`.  The backward is composed from SpMMValues/SpmmValueGrad/
/// PermuteRows/Pow nodes, so gradients of any order are available and
/// GEAttack's hypergradient rides through it unchanged.  Bit-identical
/// forward values to the unfused composition.
Var GcnNormSpMM(std::shared_ptr<const CsrPattern> pattern, const Var& values,
                const Var& b, const Var& out_deg = Var());

// ----- Column-block ops (edge-feature assembly). ------------------------------

/// Horizontal concatenation [a | b]; rows must match.
Var HConcat(const Var& a, const Var& b);

/// N-ary horizontal concatenation [p₀ | p₁ | … ] as ONE node: a single
/// copy forward and one SliceCols per part backward, instead of the
/// O(N²) copy pyramid a chain of binary HConcats builds.  The column
/// assembly of the stacked multi-target forward.
Var StackCols(const std::vector<Var>& parts);

/// Block-diagonal product: with a (rows, k·h) and a (h, c) right factor,
/// block t of the (rows, k·c) output is a[:, t·h:(t+1)·h] · b.  One node
/// and kernel pass for all k blocks; each block is bit-identical to
/// MatMul(SliceCols(a, t·h, h), b) (same i-k-j accumulation order and
/// zero-skip as Tensor::MatMul).  Gradients flow into both operands.
Var BlockDiagMatMul(const Var& a, const Var& b, int64_t k);

/// Columns [start, start+len) of a.
Var SliceCols(const Var& a, int64_t start, int64_t len);

// ----- Composite helpers (built from the ops above, so fully
// differentiable to any order). ------------------------------------------------

/// Numerically stable log-softmax over each row.
Var LogSoftmaxRows(const Var& a);
/// Softmax over each row.
Var SoftmaxRows(const Var& a);
/// Negative log-likelihood of class `label` for row `row` of `logits`:
/// -log softmax(logits)[row, label].  This is the ℓ(·,·) of Eq. (1)/(4).
Var NllRow(const Var& logits, int64_t row, int64_t label);

// ----- Differentiation. ---------------------------------------------------------

struct GradOptions {
  /// When true, the returned gradients carry a computation graph and can be
  /// differentiated again (PyTorch's create_graph).  When false they are
  /// detached leaves.
  bool create_graph = false;
};

/// Gradients of `output` (any shape; seeded with ones) with respect to each
/// of `inputs`.  Inputs need not be leaves: the gradient at an interior node
/// is the sum of upstream contributions flowing into it.  Inputs that do not
/// influence `output` get a zero gradient of their shape.
std::vector<Var> Grad(const Var& output, const std::vector<Var>& inputs,
                      const GradOptions& options = {});

/// Convenience overload for a single input.
Var GradOne(const Var& output, const Var& input,
            const GradOptions& options = {});

/// Number of graph nodes created so far (diagnostics/tests).
int64_t NodeCount();

}  // namespace geattack

#endif  // GEATTACK_SRC_TENSOR_AUTODIFF_H_
