#include "src/tensor/autodiff.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace geattack {

namespace {

std::atomic<int64_t> g_node_counter{0};

}  // namespace

Node::Node(Tensor value, bool requires_grad, std::string op_name)
    : value_(std::move(value)),
      requires_grad_(requires_grad),
      id_(g_node_counter.fetch_add(1)),
      op_name_(std::move(op_name)) {}

Var Var::Leaf(Tensor value, bool requires_grad, std::string name) {
  return Var(std::make_shared<Node>(std::move(value), requires_grad,
                                    name.empty() ? "leaf" : std::move(name)));
}

const Tensor& Var::value() const {
  GEA_CHECK(node_ != nullptr);
  return node_->value();
}

bool Var::requires_grad() const {
  GEA_CHECK(node_ != nullptr);
  return node_->requires_grad();
}

int64_t NodeCount() { return g_node_counter.load(); }

namespace {

bool AnyRequiresGrad(const std::vector<Var>& parents) {
  for (const Var& p : parents)
    if (p.defined() && p.requires_grad()) return true;
  return false;
}

/// Creates an op node with the given parents and backward closure.
Var MakeOp(Tensor value, std::vector<Var> parents, Node::BackwardFn backward,
           std::string op_name) {
  const bool rg = AnyRequiresGrad(parents);
  auto node = std::make_shared<Node>(std::move(value), rg, std::move(op_name));
  std::vector<std::shared_ptr<Node>> parent_nodes;
  parent_nodes.reserve(parents.size());
  for (const Var& p : parents) parent_nodes.push_back(p.ptr());
  node->set_parents(std::move(parent_nodes));
  if (rg) node->set_backward(std::move(backward));
  return Var(node);
}

/// Reduces `g` (whose shape matches the broadcast result) back to the shape
/// of the broadcast operand, by summing over broadcast dimensions.  Built
/// from differentiable ops so double backward works.
Var ReduceTo(const Var& g, int64_t rows, int64_t cols) {
  if (g.rows() == rows && g.cols() == cols) return g;
  if (rows == 1 && cols == 1) return Sum(g);
  if (cols == 1) {
    GEA_CHECK(rows == g.rows());
    return RowSum(g);
  }
  GEA_CHECK(rows == 1 && cols == g.cols());
  return ColSum(g);
}

}  // namespace

Var MakeOpNode(Tensor value, std::vector<Var> parents,
               Node::BackwardFn backward, std::string op_name) {
  return MakeOp(std::move(value), std::move(parents), std::move(backward),
                std::move(op_name));
}

Var Constant(Tensor value, std::string name) {
  return Var::Leaf(std::move(value), /*requires_grad=*/false, std::move(name));
}

Var ConstantScalar(double v) { return Constant(Tensor::Scalar(v), "scalar"); }

Var Add(const Var& a, const Var& b) {
  GEA_CHECK(a.defined() && b.defined());
  if (!a.value().BroadcastCompatible(b.value())) {
    // Commutative: allow the broadcast operand on either side.
    GEA_CHECK(b.value().BroadcastCompatible(a.value()));
    return Add(b, a);
  }
  // Same-shape fast path: identical arithmetic to BroadcastBinary without
  // the per-element std::function dispatch (this op dominates the
  // elementwise traffic of the attack backwards).
  const bool same = a.rows() == b.rows() && a.cols() == b.cols();
  Tensor out = same ? a.value() + b.value()
                    : a.value().BroadcastBinary(
                          b.value(),
                          [](double x, double y) { return x + y; });
  const int64_t br = b.rows(), bc = b.cols();
  return MakeOp(
      std::move(out), {a, b},
      [br, bc](const Var& g) -> std::vector<Var> {
        return {g, ReduceTo(g, br, bc)};
      },
      "add");
}

Var Sub(const Var& a, const Var& b) { return Add(a, Neg(b)); }

Var Mul(const Var& a, const Var& b) {
  GEA_CHECK(a.defined() && b.defined());
  if (!a.value().BroadcastCompatible(b.value())) {
    GEA_CHECK(b.value().BroadcastCompatible(a.value()));
    return Mul(b, a);
  }
  // Same-shape fast path (see Add).
  const bool same = a.rows() == b.rows() && a.cols() == b.cols();
  Tensor out = same ? a.value() * b.value()
                    : a.value().BroadcastBinary(
                          b.value(),
                          [](double x, double y) { return x * y; });
  const int64_t br = b.rows(), bc = b.cols();
  // Backward closures build gradient Vars eagerly, so skip the work for
  // parents the engine will never read (requires_grad is fixed at
  // construction; Grad() ignores entries of non-requiring parents).
  const bool need_a = a.requires_grad(), need_b = b.requires_grad();
  return MakeOp(
      std::move(out), {a, b},
      [a, b, br, bc, need_a, need_b](const Var& g) -> std::vector<Var> {
        // d/da = g ⊙ b (b broadcasts onto g's shape);
        // d/db = reduce(g ⊙ a) to b's shape.
        Var ga = need_a ? Mul(g, b) : Var();
        Var gb = need_b ? ReduceTo(Mul(g, a), br, bc) : Var();
        return {ga, gb};
      },
      "mul");
}

Var Div(const Var& a, const Var& b) { return Mul(a, Pow(b, -1.0)); }

Var Neg(const Var& a) { return MulScalar(a, -1.0); }

Var AddScalar(const Var& a, double s) {
  GEA_CHECK(a.defined());
  return MakeOp(
      a.value().AddScalar(s), {a},
      [](const Var& g) -> std::vector<Var> { return {g}; }, "add_scalar");
}

Var MulScalar(const Var& a, double s) {
  GEA_CHECK(a.defined());
  return MakeOp(
      a.value().MulScalar(s), {a},
      [s](const Var& g) -> std::vector<Var> { return {MulScalar(g, s)}; },
      "mul_scalar");
}

Var Sigmoid(const Var& a) {
  GEA_CHECK(a.defined());
  return MakeOp(
      a.value().Sigmoid(), {a},
      [a](const Var& g) -> std::vector<Var> {
        // σ'(x) = σ(x)(1-σ(x)); recomputed through ops so that the result
        // remains differentiable (needed for double backward).
        Var s = Sigmoid(a);
        Var one_minus = AddScalar(Neg(s), 1.0);
        return {Mul(g, Mul(s, one_minus))};
      },
      "sigmoid");
}

Var Relu(const Var& a) {
  GEA_CHECK(a.defined());
  return MakeOp(
      a.value().Relu(), {a},
      [a](const Var& g) -> std::vector<Var> {
        // The indicator 1[x>0] is locally constant: its own derivative is 0
        // almost everywhere, so a constant mask is the exact Jacobian.
        Tensor mask = a.value().Map([](double v) { return v > 0 ? 1.0 : 0.0; });
        return {Mul(g, Constant(std::move(mask), "relu_mask"))};
      },
      "relu");
}

Var Exp(const Var& a) {
  GEA_CHECK(a.defined());
  return MakeOp(
      a.value().Exp(), {a},
      [a](const Var& g) -> std::vector<Var> { return {Mul(g, Exp(a))}; },
      "exp");
}

Var Log(const Var& a) {
  GEA_CHECK(a.defined());
  return MakeOp(
      a.value().Log(), {a},
      [a](const Var& g) -> std::vector<Var> { return {Mul(g, Pow(a, -1.0))}; },
      "log");
}

Var Pow(const Var& a, double e) {
  GEA_CHECK(a.defined());
  return MakeOp(
      a.value().Pow(e), {a},
      [a, e](const Var& g) -> std::vector<Var> {
        return {Mul(g, MulScalar(Pow(a, e - 1.0), e))};
      },
      "pow");
}

Var MatMul(const Var& a, const Var& b) {
  GEA_CHECK(a.defined() && b.defined());
  const bool need_a = a.requires_grad(), need_b = b.requires_grad();
  return MakeOp(
      a.value().MatMul(b.value()), {a, b},
      [a, b, need_a, need_b](const Var& g) -> std::vector<Var> {
        return {need_a ? MatMul(g, Transpose(b)) : Var(),
                need_b ? MatMul(Transpose(a), g) : Var()};
      },
      "matmul");
}

Var Transpose(const Var& a) {
  GEA_CHECK(a.defined());
  return MakeOp(
      a.value().Transposed(), {a},
      [](const Var& g) -> std::vector<Var> { return {Transpose(g)}; },
      "transpose");
}

Var Sum(const Var& a) {
  GEA_CHECK(a.defined());
  const int64_t r = a.rows(), c = a.cols();
  return MakeOp(
      Tensor::Scalar(a.value().Sum()), {a},
      [r, c](const Var& g) -> std::vector<Var> {
        // Broadcast the scalar gradient to the input shape.
        return {Mul(Constant(Tensor::Ones(r, c), "ones"), g)};
      },
      "sum");
}

Var RowSum(const Var& a) {
  GEA_CHECK(a.defined());
  const int64_t r = a.rows(), c = a.cols();
  return MakeOp(
      a.value().RowSum(), {a},
      [r, c](const Var& g) -> std::vector<Var> {
        return {Mul(Constant(Tensor::Ones(r, c), "ones"), g)};
      },
      "row_sum");
}

Var ColSum(const Var& a) {
  GEA_CHECK(a.defined());
  const int64_t r = a.rows(), c = a.cols();
  return MakeOp(
      a.value().ColSum(), {a},
      [r, c](const Var& g) -> std::vector<Var> {
        return {Mul(Constant(Tensor::Ones(r, c), "ones"), g)};
      },
      "col_sum");
}

namespace {

/// Internal: embeds a (1,1) Var at position (i,j) of a rows x cols zero
/// matrix.  Inverse of At; each is the other's backward.
Var ScatterAt(const Var& a, int64_t rows, int64_t cols, int64_t i, int64_t j) {
  GEA_CHECK(a.defined());
  GEA_CHECK(a.rows() == 1 && a.cols() == 1);
  Tensor out(rows, cols);
  out.at(i, j) = a.value().scalar();
  return MakeOp(
      std::move(out), {a},
      [i, j](const Var& g) -> std::vector<Var> { return {At(g, i, j)}; },
      "scatter_at");
}

}  // namespace

Var At(const Var& a, int64_t i, int64_t j) {
  GEA_CHECK(a.defined());
  const int64_t r = a.rows(), c = a.cols();
  GEA_CHECK(i >= 0 && i < r && j >= 0 && j < c);
  return MakeOp(
      Tensor::Scalar(a.value().at(i, j)), {a},
      [r, c, i, j](const Var& g) -> std::vector<Var> {
        return {ScatterAt(g, r, c, i, j)};
      },
      "at");
}

Var SelectRow(const Var& a, int64_t i) {
  GEA_CHECK(a.defined());
  const int64_t r = a.rows();
  GEA_CHECK(i >= 0 && i < r);
  return MakeOp(
      a.value().Row(i), {a},
      [r, i](const Var& g) -> std::vector<Var> {
        return {ScatterRow(g, r, i)};
      },
      "select_row");
}

Var ScatterRow(const Var& a, int64_t rows, int64_t i) {
  GEA_CHECK(a.defined());
  GEA_CHECK(a.rows() == 1);
  GEA_CHECK(i >= 0 && i < rows);
  Tensor out(rows, a.cols());
  for (int64_t j = 0; j < a.cols(); ++j) out.at(i, j) = a.value().at(0, j);
  return MakeOp(
      std::move(out), {a},
      [i](const Var& g) -> std::vector<Var> { return {SelectRow(g, i)}; },
      "scatter_row");
}

Var Detach(const Var& a) {
  GEA_CHECK(a.defined());
  return Constant(a.value(), "detach");
}

Var ScatterEdges(const Var& values, const std::vector<IndexPair>& pairs,
                 int64_t n) {
  GEA_CHECK(values.defined());
  GEA_CHECK(values.cols() == 1);
  GEA_CHECK(values.rows() == static_cast<int64_t>(pairs.size()));
  Tensor out(n, n);
  for (size_t e = 0; e < pairs.size(); ++e) {
    const auto& [u, v] = pairs[e];
    GEA_CHECK(u >= 0 && u < n && v >= 0 && v < n);
    out.at(u, v) += values.value().at(static_cast<int64_t>(e), 0);
    if (u != v) out.at(v, u) += values.value().at(static_cast<int64_t>(e), 0);
  }
  return MakeOp(
      std::move(out), {values},
      [pairs](const Var& g) -> std::vector<Var> {
        return {GatherEdges(g, pairs)};
      },
      "scatter_edges");
}

Var GatherEdges(const Var& a, const std::vector<IndexPair>& pairs) {
  GEA_CHECK(a.defined());
  GEA_CHECK(a.rows() == a.cols());
  const int64_t n = a.rows();
  Tensor out(static_cast<int64_t>(pairs.size()), 1);
  for (size_t e = 0; e < pairs.size(); ++e) {
    const auto& [u, v] = pairs[e];
    GEA_CHECK(u >= 0 && u < n && v >= 0 && v < n);
    out.at(static_cast<int64_t>(e), 0) =
        u == v ? a.value().at(u, v) : a.value().at(u, v) + a.value().at(v, u);
  }
  return MakeOp(
      std::move(out), {a},
      [pairs, n](const Var& g) -> std::vector<Var> {
        return {ScatterEdges(g, pairs, n)};
      },
      "gather_edges");
}

Var SpMM(std::shared_ptr<const CsrMatrix> a, const Var& b, bool a_symmetric) {
  GEA_CHECK(b.defined());
  GEA_CHECK(a != nullptr && !a->empty());
  // Precompute Aᵀ for the backward only when a gradient will flow; a
  // symmetric operand is its own transpose, so epoch loops over a fixed
  // normalized adjacency never materialize one.
  std::shared_ptr<const CsrMatrix> at;
  if (b.requires_grad())
    at = a_symmetric ? a : std::make_shared<CsrMatrix>(a->Transposed());
  return MakeOp(
      a->SpMM(b.value()), {b},
      [at, a_symmetric](const Var& g) -> std::vector<Var> {
        return {SpMM(at, g, a_symmetric)};
      },
      "spmm");
}

Var SpMM(const CsrMatrix& a, const Var& b) {
  return SpMM(std::make_shared<CsrMatrix>(a), b);
}

Var SpMMValues(std::shared_ptr<const CsrPattern> pattern, const Var& values,
               const Var& b) {
  GEA_CHECK(pattern != nullptr);
  GEA_CHECK(values.defined() && b.defined());
  GEA_CHECK(values.cols() == 1 && values.rows() == pattern->nnz());
  Tensor out = SpmmRaw(*pattern, values.value().data(), b.value());
  const bool need_v = values.requires_grad(), need_b = b.requires_grad();
  return MakeOp(
      std::move(out), {values, b},
      [pattern, values, b, need_v, need_b](const Var& g) -> std::vector<Var> {
        const CsrTranspose& t = pattern->Transpose();  // Cached after 1st.
        auto perm = std::shared_ptr<const std::vector<int64_t>>(
            pattern, &t.src_index);
        Var grad_values = need_v ? SpmmValueGrad(pattern, g, b) : Var();
        Var grad_b =
            need_b ? SpMMValues(t.pattern, PermuteRows(values, perm), g)
                   : Var();
        return {grad_values, grad_b};
      },
      "spmm_values");
}

Var SpmmValueGrad(std::shared_ptr<const CsrPattern> pattern, const Var& g,
                  const Var& b) {
  GEA_CHECK(pattern != nullptr);
  GEA_CHECK(g.defined() && b.defined());
  GEA_CHECK(g.rows() == pattern->rows && b.rows() == pattern->cols);
  GEA_CHECK(g.cols() == b.cols());
  const int64_t k = g.cols();
  Tensor out(pattern->nnz(), 1);
  const double* gd = g.value().data().data();
  const double* bd = b.value().data().data();
  double* o = out.mutable_data().data();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64)
#endif
  for (int64_t i = 0; i < pattern->rows; ++i) {
    const double* grow = gd + i * k;
    for (int64_t e = pattern->row_ptr[ZU(i)];
         e < pattern->row_ptr[ZU(i + 1)]; ++e) {
      const double* brow = bd + pattern->col_idx[ZU(e)] * k;
      double s = 0.0;
      for (int64_t j = 0; j < k; ++j) s += grow[j] * brow[j];
      o[e] = s;
    }
  }
  const bool need_g = g.requires_grad(), need_b = b.requires_grad();
  return MakeOp(
      std::move(out), {g, b},
      [pattern, g, b, need_g, need_b](const Var& u) -> std::vector<Var> {
        const CsrTranspose& t = pattern->Transpose();  // Cached after 1st.
        auto perm = std::shared_ptr<const std::vector<int64_t>>(
            pattern, &t.src_index);
        Var grad_g = need_g ? SpMMValues(pattern, u, b) : Var();
        Var grad_b =
            need_b ? SpMMValues(t.pattern, PermuteRows(u, perm), g) : Var();
        return {grad_g, grad_b};
      },
      "spmm_value_grad");
}

Var SpMMValuesStacked(std::shared_ptr<const CsrPattern> pattern,
                      const Var& values, const Var& b,
                      const Var& values_mask) {
  GEA_CHECK(pattern != nullptr);
  GEA_CHECK(values.defined() && b.defined());
  const int64_t k = values.cols();
  GEA_CHECK(k >= 1 && values.rows() == pattern->nnz());
  GEA_CHECK(b.rows() == pattern->cols && b.cols() % k == 0);
  if (values_mask.defined()) {
    GEA_CHECK(!values_mask.requires_grad());
    GEA_CHECK(values_mask.rows() == pattern->nnz() &&
              values_mask.cols() == k);
  }
  Tensor out = SpmmStackedRaw(*pattern, values.value(), b.value());
  const bool need_v = values.requires_grad(), need_b = b.requires_grad();
  return MakeOp(
      std::move(out), {values, b},
      [pattern, values, b, k, values_mask, need_v,
       need_b](const Var& g) -> std::vector<Var> {
        const CsrTranspose& t = pattern->Transpose();  // Cached after 1st.
        auto perm = std::shared_ptr<const std::vector<int64_t>>(
            pattern, &t.src_index);
        Var grad_values =
            need_v ? SpmmValueGradStacked(pattern, g, b, k, values_mask)
                   : Var();
        Var grad_b = need_b ? SpMMValuesStacked(
                                  t.pattern, PermuteRows(values, perm), g)
                            : Var();
        return {grad_values, grad_b};
      },
      "spmm_values_stacked");
}

Var SpmmValueGradStacked(std::shared_ptr<const CsrPattern> pattern,
                         const Var& g, const Var& b, int64_t k,
                         const Var& mask) {
  GEA_CHECK(pattern != nullptr);
  GEA_CHECK(g.defined() && b.defined());
  GEA_CHECK(g.rows() == pattern->rows && b.rows() == pattern->cols);
  GEA_CHECK(g.cols() == b.cols());
  GEA_CHECK(k >= 1 && g.cols() % k == 0);
  if (mask.defined()) {
    GEA_CHECK(!mask.requires_grad());
    GEA_CHECK(mask.rows() == pattern->nnz() && mask.cols() == k);
  }
  Tensor out = SpmmValueGradStackedRaw(
      *pattern, g.value(), b.value(), k,
      mask.defined() ? mask.value().data().data() : nullptr);
  const bool need_g = g.requires_grad(), need_b = b.requires_grad();
  return MakeOp(
      std::move(out), {g, b},
      [pattern, g, b, mask, need_g, need_b](const Var& u) -> std::vector<Var> {
        const CsrTranspose& t = pattern->Transpose();  // Cached after 1st.
        auto perm = std::shared_ptr<const std::vector<int64_t>>(
            pattern, &t.src_index);
        // The forward is mask ∘ VG(g, b), so the adjoint masks the upstream
        // before it re-enters the stacked products.
        Var um = mask.defined() ? Mul(u, mask) : u;
        Var grad_g = need_g ? SpMMValuesStacked(pattern, um, b, mask) : Var();
        Var grad_b = need_b ? SpMMValuesStacked(t.pattern,
                                                PermuteRows(um, perm), g)
                            : Var();
        return {grad_g, grad_b};
      },
      "spmm_value_grad_stacked");
}

namespace {

/// Symbolic rebuild of the GCN normalization chain over a square pattern —
/// the shared backward machinery of GcnNormValues / GcnNormSpMM.  All
/// gathers and scatters are expressed through the pattern itself:
/// SpmmValueGrad(p, x, 1) gathers x[r_e], SpmmValueGrad(p, 1, x) gathers
/// x[c_e], SpMMValues(p, y, 1) row-scatters Σ_{r_e=i} y_e, and the
/// transposed pattern column-scatters.  Every piece is an existing
/// differentiable op, so closures using this are double-backward-safe by
/// construction.
struct NormChain {
  std::shared_ptr<const std::vector<int64_t>> perm;
  std::shared_ptr<const CsrPattern> t_pattern;
  Var ones, deg, dinv, dr, dc;
};

NormChain BuildNormChain(const std::shared_ptr<const CsrPattern>& pattern,
                         const Var& values, const Var& od) {
  const CsrTranspose& t = pattern->Transpose();  // Cached after 1st use.
  NormChain c;
  c.perm =
      std::shared_ptr<const std::vector<int64_t>>(pattern, &t.src_index);
  c.t_pattern = t.pattern;
  c.ones = Constant(Tensor::Ones(pattern->rows, 1), "ones");
  c.deg = Add(SpMMValues(pattern, values, c.ones), od);
  c.dinv = Pow(c.deg, -0.5);
  c.dr = SpmmValueGrad(pattern, c.dinv, c.ones);  // d̃^{-1/2}[r_e].
  c.dc = SpmmValueGrad(pattern, c.ones, c.dinv);  // d̃^{-1/2}[c_e].
  return c;
}

/// Gradient of the normalized values w.r.t. (values, deg) given ∂L/∂Ã_e:
/// the degree feedback ∂L/∂s_i is scattered from both endpoints, chained
/// through s = d̃^{-1/2}, and gathered back to the owning row (d̃_i sums
/// exactly the values of row i).  `gv` is skipped unless `need_v`.
void NormChainGrads(const std::shared_ptr<const CsrPattern>& pattern,
                    const NormChain& c, const Var& values, const Var& gnorm,
                    bool need_v, Var* gv, Var* gdeg) {
  Var gvdc = Mul(Mul(gnorm, values), c.dc);
  Var gvdr = Mul(Mul(gnorm, values), c.dr);
  Var gs = Add(SpMMValues(pattern, gvdc, c.ones),
               SpMMValues(c.t_pattern, PermuteRows(gvdr, c.perm), c.ones));
  *gdeg = Mul(gs, MulScalar(Pow(c.deg, -1.5), -0.5));
  if (need_v) {
    // Direct term ∂Ã_e/∂v_e = s_r·s_c plus the degree feedback.
    *gv = Add(Mul(gnorm, Mul(c.dr, c.dc)),
              SpmmValueGrad(pattern, *gdeg, c.ones));
  }
}

}  // namespace

Var GcnNormValues(std::shared_ptr<const CsrPattern> pattern, const Var& values,
                  const Var& out_deg) {
  GEA_CHECK(pattern != nullptr);
  GEA_CHECK(pattern->rows == pattern->cols);
  GEA_CHECK(values.defined());
  GEA_CHECK(values.cols() == 1 && values.rows() == pattern->nnz());
  const int64_t n = pattern->rows;
  Var od = out_deg.defined() ? out_deg : Constant(Tensor::Zeros(n, 1), "od0");
  GEA_CHECK(od.rows() == n && od.cols() == 1);
  Tensor out = GcnNormValuesRaw(*pattern, values.value().data(),
                                od.value().data().data());
  const bool need_v = values.requires_grad();
  const bool need_od = od.requires_grad();
  return MakeOp(
      std::move(out), {values, od},
      [pattern, values, od, need_v,
       need_od](const Var& gnorm) -> std::vector<Var> {
        const NormChain c = BuildNormChain(pattern, values, od);
        Var gv, gdeg;
        NormChainGrads(pattern, c, values, gnorm, need_v, &gv, &gdeg);
        return {gv, need_od ? gdeg : Var()};
      },
      "gcn_norm_values");
}

Var GcnNormSpMM(std::shared_ptr<const CsrPattern> pattern, const Var& values,
                const Var& b, const Var& out_deg) {
  GEA_CHECK(pattern != nullptr);
  GEA_CHECK(pattern->rows == pattern->cols);
  GEA_CHECK(values.defined() && b.defined());
  GEA_CHECK(values.cols() == 1 && values.rows() == pattern->nnz());
  GEA_CHECK(b.rows() == pattern->cols);
  const int64_t n = pattern->rows;
  Var od = out_deg.defined() ? out_deg : Constant(Tensor::Zeros(n, 1), "od0");
  GEA_CHECK(od.rows() == n && od.cols() == 1);
  Tensor out = GcnNormSpmmRaw(*pattern, values.value().data(),
                              od.value().data().data(), b.value());
  const bool need_v = values.requires_grad();
  const bool need_b = b.requires_grad();
  const bool need_od = od.requires_grad();
  return MakeOp(
      std::move(out), {values, b, od},
      [pattern, values, b, od, need_v, need_b,
       need_od](const Var& g) -> std::vector<Var> {
        const NormChain c = BuildNormChain(pattern, values, od);
        Var gv, gdeg;
        if (need_v || need_od) {
          Var gnorm = SpmmValueGrad(pattern, g, b);  // ∂L/∂Ã_e.
          NormChainGrads(pattern, c, values, gnorm, need_v, &gv, &gdeg);
        }
        Var gb;
        if (need_b) {
          Var norm = Mul(Mul(values, c.dr), c.dc);
          gb = SpMMValues(c.t_pattern, PermuteRows(norm, c.perm), g);
        }
        return {gv, gb, need_od ? gdeg : Var()};
      },
      "gcn_norm_spmm");
}

namespace {

/// Column-stacked twin of BuildNormChain/NormChainGrads: the same symbolic
/// normalization chain, expressed through the stacked ops so one pass
/// serves all k columns while column t stays bit-identical to the narrow
/// chain on (values[:,t], od[:,t]).
struct StackedNormChain {
  std::shared_ptr<const std::vector<int64_t>> perm;
  std::shared_ptr<const CsrPattern> t_pattern;
  Var ones, deg, dinv, dr, dc;
};

StackedNormChain BuildStackedNormChain(
    const std::shared_ptr<const CsrPattern>& pattern, const Var& values,
    const Var& od, int64_t k) {
  const CsrTranspose& t = pattern->Transpose();  // Cached after 1st use.
  StackedNormChain c;
  c.perm =
      std::shared_ptr<const std::vector<int64_t>>(pattern, &t.src_index);
  c.t_pattern = t.pattern;
  c.ones = Constant(Tensor::Ones(pattern->rows, k), "ones");
  c.deg = Add(SpMMValuesStacked(pattern, values, c.ones), od);
  c.dinv = Pow(c.deg, -0.5);
  c.dr = SpmmValueGradStacked(pattern, c.dinv, c.ones, k);  // d̃^{-1/2}[r_e].
  c.dc = SpmmValueGradStacked(pattern, c.ones, c.dinv, k);  // d̃^{-1/2}[c_e].
  return c;
}

void StackedNormChainGrads(const std::shared_ptr<const CsrPattern>& pattern,
                           const StackedNormChain& c, const Var& values,
                           const Var& gnorm, int64_t k, bool need_v, Var* gv,
                           Var* gdeg) {
  Var gvdc = Mul(Mul(gnorm, values), c.dc);
  Var gvdr = Mul(Mul(gnorm, values), c.dr);
  Var gs = Add(SpMMValuesStacked(pattern, gvdc, c.ones),
               SpMMValuesStacked(c.t_pattern, PermuteRows(gvdr, c.perm),
                                 c.ones));
  *gdeg = Mul(gs, MulScalar(Pow(c.deg, -1.5), -0.5));
  if (need_v) {
    *gv = Add(Mul(gnorm, Mul(c.dr, c.dc)),
              SpmmValueGradStacked(pattern, *gdeg, c.ones, k));
  }
}

}  // namespace

Var GcnNormValuesStacked(std::shared_ptr<const CsrPattern> pattern,
                         const Var& values, const Var& out_deg) {
  GEA_CHECK(pattern != nullptr);
  GEA_CHECK(pattern->rows == pattern->cols);
  GEA_CHECK(values.defined());
  const int64_t k = values.cols();
  GEA_CHECK(k >= 1 && values.rows() == pattern->nnz());
  const int64_t n = pattern->rows;
  Var od = out_deg.defined() ? out_deg : Constant(Tensor::Zeros(n, k), "od0");
  GEA_CHECK(od.rows() == n && od.cols() == k);
  Tensor out = GcnNormValuesStackedRaw(*pattern, values.value(), od.value());
  const bool need_v = values.requires_grad();
  const bool need_od = od.requires_grad();
  return MakeOp(
      std::move(out), {values, od},
      [pattern, values, od, k, need_v,
       need_od](const Var& gnorm) -> std::vector<Var> {
        const StackedNormChain c =
            BuildStackedNormChain(pattern, values, od, k);
        Var gv, gdeg;
        StackedNormChainGrads(pattern, c, values, gnorm, k, need_v, &gv,
                              &gdeg);
        return {gv, need_od ? gdeg : Var()};
      },
      "gcn_norm_values_stacked");
}

Var PermuteRows(const Var& a,
                std::shared_ptr<const std::vector<int64_t>> perm) {
  GEA_CHECK(a.defined());
  GEA_CHECK(perm != nullptr);
  const int64_t m = a.rows();
  const int64_t c = a.cols();
  GEA_CHECK(static_cast<int64_t>(perm->size()) == m);
  Tensor out(m, c);
  auto inverse = std::make_shared<std::vector<int64_t>>(perm->size());
  {
    const double* src_data = a.value().data().data();
    double* dst = out.mutable_data().data();
    for (int64_t i = 0; i < m; ++i) {
      const int64_t src = (*perm)[ZU(i)];
      GEA_CHECK(src >= 0 && src < m);
      const double* row = src_data + src * c;
      double* drow = dst + i * c;
      for (int64_t j = 0; j < c; ++j) drow[j] = row[j];
      (*inverse)[ZU(src)] = i;
    }
  }
  return MakeOp(
      std::move(out), {a},
      [inverse](const Var& g) -> std::vector<Var> {
        return {PermuteRows(g, inverse)};
      },
      "permute_rows");
}

namespace {

/// Internal: embeds `a` into a zero matrix with `total_cols` columns at
/// column offset `start` — the adjoint of SliceCols.
Var PadCols(const Var& a, int64_t total_cols, int64_t start) {
  GEA_CHECK(a.defined());
  GEA_CHECK(start >= 0 && start + a.cols() <= total_cols);
  Tensor out(a.rows(), total_cols);
  for (int64_t i = 0; i < a.rows(); ++i)
    for (int64_t j = 0; j < a.cols(); ++j)
      out.at(i, start + j) = a.value().at(i, j);
  const int64_t len = a.cols();
  return MakeOp(
      std::move(out), {a},
      [start, len](const Var& g) -> std::vector<Var> {
        return {SliceCols(g, start, len)};
      },
      "pad_cols");
}

}  // namespace

Var HConcat(const Var& a, const Var& b) {
  GEA_CHECK(a.defined() && b.defined());
  GEA_CHECK(a.rows() == b.rows());
  const int64_t ac = a.cols(), bc = b.cols();
  Tensor out(a.rows(), ac + bc);
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < ac; ++j) out.at(i, j) = a.value().at(i, j);
    for (int64_t j = 0; j < bc; ++j) out.at(i, ac + j) = b.value().at(i, j);
  }
  return MakeOp(
      std::move(out), {a, b},
      [ac, bc](const Var& g) -> std::vector<Var> {
        return {SliceCols(g, 0, ac), SliceCols(g, ac, bc)};
      },
      "hconcat");
}

Var StackCols(const std::vector<Var>& parts) {
  GEA_CHECK(!parts.empty());
  if (parts.size() == 1) return parts[0];
  const int64_t rows = parts[0].rows();
  int64_t total = 0;
  for (const Var& p : parts) {
    GEA_CHECK(p.defined() && p.rows() == rows);
    total += p.cols();
  }
  Tensor out(rows, total);
  std::vector<int64_t> offsets, lens;
  {
    int64_t off = 0;
    double* o = out.mutable_data().data();
    for (const Var& p : parts) {
      const int64_t c = p.cols();
      const double* src = p.value().data().data();
      for (int64_t i = 0; i < rows; ++i)
        for (int64_t j = 0; j < c; ++j) o[i * total + off + j] = src[i * c + j];
      offsets.push_back(off);
      lens.push_back(c);
      off += c;
    }
  }
  return MakeOp(
      std::move(out), parts,
      [offsets, lens](const Var& g) -> std::vector<Var> {
        std::vector<Var> grads;
        grads.reserve(offsets.size());
        for (size_t i = 0; i < offsets.size(); ++i)
          grads.push_back(SliceCols(g, offsets[i], lens[i]));
        return grads;
      },
      "stack_cols");
}

Var BlockDiagMatMul(const Var& a, const Var& b, int64_t k) {
  GEA_CHECK(a.defined() && b.defined());
  GEA_CHECK(k >= 1 && a.cols() % k == 0);
  const int64_t h = a.cols() / k;
  GEA_CHECK(b.rows() == h);
  const int64_t rows = a.rows(), c = b.cols();
  Tensor out(rows, k * c);
  {
    const double* ad = a.value().data().data();
    const double* bd = b.value().data().data();
    double* o = out.mutable_data().data();
    // Per block: the exact i-k-j order (and zero-skip) of Tensor::MatMul,
    // so each block is bit-identical to the narrow product.
    for (int64_t i = 0; i < rows; ++i) {
      const double* ai = ad + i * k * h;
      double* ci = o + i * k * c;
      for (int64_t t = 0; t < k; ++t) {
        const double* at = ai + t * h;
        double* ct = ci + t * c;
        for (int64_t kk = 0; kk < h; ++kk) {
          const double av = at[kk];
          if (av == 0.0) continue;
          const double* bk = bd + kk * c;
          for (int64_t j = 0; j < c; ++j) ct[j] += av * bk[j];
        }
      }
    }
  }
  const bool need_a = a.requires_grad(), need_b = b.requires_grad();
  return MakeOp(
      std::move(out), {a, b},
      [a, b, k, h, c, need_a, need_b](const Var& g) -> std::vector<Var> {
        Var ga = need_a ? BlockDiagMatMul(g, Transpose(b), k) : Var();
        Var gb;
        if (need_b) {
          for (int64_t t = 0; t < k; ++t) {
            Var gt = MatMul(Transpose(SliceCols(a, t * h, h)),
                            SliceCols(g, t * c, c));
            gb = t == 0 ? gt : Add(gb, gt);
          }
        }
        return {ga, gb};
      },
      "block_diag_matmul");
}

Var SliceCols(const Var& a, int64_t start, int64_t len) {
  GEA_CHECK(a.defined());
  GEA_CHECK(start >= 0 && len >= 0 && start + len <= a.cols());
  Tensor out(a.rows(), len);
  for (int64_t i = 0; i < a.rows(); ++i)
    for (int64_t j = 0; j < len; ++j) out.at(i, j) = a.value().at(i, start + j);
  const int64_t total = a.cols();
  return MakeOp(
      std::move(out), {a},
      [start, total](const Var& g) -> std::vector<Var> {
        return {PadCols(g, total, start)};
      },
      "slice_cols");
}

Var LogSoftmaxRows(const Var& a) {
  GEA_CHECK(a.defined());
  // Subtracting the detached row max leaves the value unchanged and the
  // gradient exact while preventing overflow in Exp.
  Var m = Constant(a.value().RowMax(), "rowmax");
  Var z = Sub(a, m);
  Var lse = Log(RowSum(Exp(z)));
  return Sub(z, lse);
}

Var SoftmaxRows(const Var& a) { return Exp(LogSoftmaxRows(a)); }

Var NllRow(const Var& logits, int64_t row, int64_t label) {
  return Neg(At(LogSoftmaxRows(logits), row, label));
}

std::vector<Var> Grad(const Var& output, const std::vector<Var>& inputs,
                      const GradOptions& options) {
  GEA_CHECK(output.defined());

  // Collect the set of ancestor nodes of `output` that require grad,
  // pruning branches with no grad-requiring nodes.
  std::unordered_set<Node*> relevant;
  relevant.reserve(1024);  // Attack graphs run to thousands of nodes;
                           // growing from the default bucket count spends
                           // more time rehashing than walking.
  {
    std::vector<Node*> stack{output.node()};
    std::unordered_set<Node*> visited;
    visited.reserve(1024);
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n == nullptr || !visited.insert(n).second) continue;
      if (!n->requires_grad()) continue;
      relevant.insert(n);
      for (const auto& p : n->parents()) stack.push_back(p.get());
    }
  }

  // Accumulated gradient per node, and the shared_ptr owner for each node so
  // we can wrap parents back into Vars.
  std::unordered_map<Node*, Var> grads;
  grads.reserve(relevant.size());
  grads.emplace(output.node(),
                Constant(Tensor::Ones(output.rows(), output.cols()), "seed"));

  // Process in reverse creation order: a node's id is strictly greater than
  // all of its parents' ids, so descending id order is a reverse
  // topological order of the forward graph.
  std::vector<Node*> order(relevant.begin(), relevant.end());
  std::sort(order.begin(), order.end(),
            [](Node* x, Node* y) { return x->id() > y->id(); });

  for (Node* n : order) {
    auto it = grads.find(n);
    if (it == grads.end()) continue;  // Not on a path from output.
    const Var& g = it->second;
    if (!n->backward()) continue;  // Leaf.
    std::vector<Var> parent_grads = n->backward()(g);
    GEA_CHECK(parent_grads.size() == n->parents().size());
    for (size_t k = 0; k < parent_grads.size(); ++k) {
      Node* p = n->parents()[k].get();
      if (p == nullptr || !p->requires_grad()) continue;
      if (!relevant.count(p)) continue;
      GEA_CHECK(parent_grads[k].defined());
      auto pit = grads.find(p);
      if (pit == grads.end()) {
        grads.emplace(p, parent_grads[k]);
      } else {
        pit->second = Add(pit->second, parent_grads[k]);
      }
    }
  }

  std::vector<Var> result;
  result.reserve(inputs.size());
  for (const Var& in : inputs) {
    GEA_CHECK(in.defined());
    auto it = grads.find(in.node());
    Var g;
    if (it == grads.end()) {
      g = Constant(Tensor::Zeros(in.rows(), in.cols()), "zero_grad");
    } else {
      g = options.create_graph ? it->second : Detach(it->second);
    }
    result.push_back(g);
  }
  return result;
}

Var GradOne(const Var& output, const Var& input, const GradOptions& options) {
  return Grad(output, {input}, options)[0];
}

}  // namespace geattack
