#include "src/tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <ostream>
#include <sstream>

namespace geattack {

namespace {

// DenseAllocGuard state: a process-wide element-count ceiling (0 = disarmed)
// and the largest allocation seen while armed.  Relaxed atomics suffice —
// the guard gates a deterministic bench region, not a synchronization edge.
std::atomic<int64_t> g_alloc_limit{0};
std::atomic<int64_t> g_alloc_largest{0};

}  // namespace

namespace internal {

void CheckFailed(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "GEA_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

void NoteTensorAlloc(int64_t elements) {
  const int64_t limit = g_alloc_limit.load(std::memory_order_relaxed);
  if (limit <= 0) return;
  int64_t prev = g_alloc_largest.load(std::memory_order_relaxed);
  while (elements > prev &&
         !g_alloc_largest.compare_exchange_weak(prev, elements,
                                                std::memory_order_relaxed)) {
  }
  if (elements >= limit) {
    std::fprintf(stderr,
                 "DenseAllocGuard: %lld-element Tensor allocation breaches "
                 "the armed limit of %lld elements\n",
                 static_cast<long long>(elements),
                 static_cast<long long>(limit));
    std::abort();
  }
}

}  // namespace internal

DenseAllocGuard::DenseAllocGuard(int64_t limit_elements) {
  GEA_CHECK(limit_elements > 0);
  GEA_CHECK(g_alloc_limit.load(std::memory_order_relaxed) == 0);  // No nesting.
  g_alloc_largest.store(0, std::memory_order_relaxed);
  g_alloc_limit.store(limit_elements, std::memory_order_relaxed);
}

DenseAllocGuard::~DenseAllocGuard() {
  g_alloc_limit.store(0, std::memory_order_relaxed);
}

int64_t DenseAllocGuard::largest_observed() {
  return g_alloc_largest.load(std::memory_order_relaxed);
}

Tensor::Tensor(int64_t rows, int64_t cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), fill) {
  GEA_CHECK(rows >= 0 && cols >= 0);
  internal::NoteTensorAlloc(rows * cols);
}

Tensor::Tensor(int64_t rows, int64_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  GEA_CHECK(static_cast<int64_t>(data_.size()) == rows * cols);
  internal::NoteTensorAlloc(rows * cols);
}

Tensor Tensor::Scalar(double v) { return Tensor(1, 1, {v}); }

Tensor Tensor::Identity(int64_t n) {
  Tensor t(n, n);
  for (int64_t i = 0; i < n; ++i) t.data_[ZU(i * n + i)] = 1.0;
  return t;
}

Tensor Tensor::Ones(int64_t rows, int64_t cols) {
  return Tensor(rows, cols, 1.0);
}

Tensor Tensor::Zeros(int64_t rows, int64_t cols) {
  return Tensor(rows, cols, 0.0);
}

Tensor Tensor::OneHotRow(int64_t n, int64_t index) {
  GEA_CHECK(index >= 0 && index < n);
  Tensor t(1, n);
  t.data_[ZU(index)] = 1.0;
  return t;
}

double Tensor::scalar() const {
  GEA_CHECK(rows_ == 1 && cols_ == 1);
  return data_[0];
}

Tensor Tensor::operator+(const Tensor& o) const {
  GEA_CHECK(same_shape(o));
  Tensor r = *this;
  for (int64_t i = 0; i < size(); ++i) r.data_[ZU(i)] += o.data_[ZU(i)];
  return r;
}

Tensor Tensor::operator-(const Tensor& o) const {
  GEA_CHECK(same_shape(o));
  Tensor r = *this;
  for (int64_t i = 0; i < size(); ++i) r.data_[ZU(i)] -= o.data_[ZU(i)];
  return r;
}

Tensor Tensor::operator*(const Tensor& o) const {
  GEA_CHECK(same_shape(o));
  Tensor r = *this;
  for (int64_t i = 0; i < size(); ++i) r.data_[ZU(i)] *= o.data_[ZU(i)];
  return r;
}

Tensor Tensor::operator/(const Tensor& o) const {
  GEA_CHECK(same_shape(o));
  Tensor r = *this;
  for (int64_t i = 0; i < size(); ++i) r.data_[ZU(i)] /= o.data_[ZU(i)];
  return r;
}

Tensor Tensor::operator-() const { return MulScalar(-1.0); }

Tensor& Tensor::operator+=(const Tensor& o) {
  GEA_CHECK(same_shape(o));
  for (int64_t i = 0; i < size(); ++i) data_[ZU(i)] += o.data_[ZU(i)];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& o) {
  GEA_CHECK(same_shape(o));
  for (int64_t i = 0; i < size(); ++i) data_[ZU(i)] -= o.data_[ZU(i)];
  return *this;
}

Tensor Tensor::AddScalar(double s) const {
  Tensor r = *this;
  for (auto& v : r.data_) v += s;
  return r;
}

Tensor Tensor::MulScalar(double s) const {
  Tensor r = *this;
  for (auto& v : r.data_) v *= s;
  return r;
}

Tensor Tensor::Map(const std::function<double(double)>& f) const {
  Tensor r = *this;
  for (auto& v : r.data_) v = f(v);
  return r;
}

Tensor Tensor::Sigmoid() const {
  Tensor r = *this;
  for (auto& v : r.data_) {
    // Numerically stable split on sign.
    if (v >= 0) {
      v = 1.0 / (1.0 + std::exp(-v));
    } else {
      const double e = std::exp(v);
      v = e / (1.0 + e);
    }
  }
  return r;
}

Tensor Tensor::Relu() const {
  Tensor r = *this;
  for (auto& v : r.data_) v = v > 0 ? v : 0.0;
  return r;
}

Tensor Tensor::Exp() const {
  Tensor r = *this;
  for (auto& v : r.data_) v = std::exp(v);
  return r;
}

Tensor Tensor::Log() const {
  Tensor r = *this;
  for (auto& v : r.data_) v = std::log(v);
  return r;
}

Tensor Tensor::Pow(double e) const {
  Tensor r = *this;
  for (auto& v : r.data_) v = std::pow(v, e);
  return r;
}

Tensor Tensor::Sqrt() const {
  Tensor r = *this;
  for (auto& v : r.data_) v = std::sqrt(v);
  return r;
}

Tensor Tensor::Abs() const {
  Tensor r = *this;
  for (auto& v : r.data_) v = std::fabs(v);
  return r;
}

Tensor Tensor::MatMul(const Tensor& o) const {
  GEA_CHECK(cols_ == o.rows_);
  Tensor r(rows_, o.cols_);
  const int64_t m = rows_, k = cols_, n = o.cols_;
  const double* a = data_.data();
  const double* b = o.data_.data();
  double* c = r.data_.data();
  // i-k-j loop order: streams through b and c rows, cache friendly for the
  // dense sizes used here (hundreds to a few thousands).
  for (int64_t i = 0; i < m; ++i) {
    const double* ai = a + i * k;
    double* ci = c + i * n;
    for (int64_t kk = 0; kk < k; ++kk) {
      const double av = ai[kk];
      if (av == 0.0) continue;  // Adjacency matrices are sparse in practice.
      const double* bk = b + kk * n;
      for (int64_t j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
  }
  return r;
}

Tensor Tensor::Transposed() const {
  Tensor r(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i)
    for (int64_t j = 0; j < cols_; ++j)
      r.data_[ZU(j * rows_ + i)] = data_[ZU(i * cols_ + j)];
  return r;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Tensor::Max() const {
  GEA_CHECK(!empty());
  return *std::max_element(data_.begin(), data_.end());
}

double Tensor::Min() const {
  GEA_CHECK(!empty());
  return *std::min_element(data_.begin(), data_.end());
}

Tensor Tensor::RowSum() const {
  Tensor r(rows_, 1);
  for (int64_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < cols_; ++j) s += data_[ZU(i * cols_ + j)];
    r.data_[ZU(i)] = s;
  }
  return r;
}

Tensor Tensor::ColSum() const {
  Tensor r(1, cols_);
  for (int64_t i = 0; i < rows_; ++i)
    for (int64_t j = 0; j < cols_; ++j)
      r.data_[ZU(j)] += data_[ZU(i * cols_ + j)];
  return r;
}

Tensor Tensor::RowMax() const {
  GEA_CHECK(cols_ > 0);
  Tensor r(rows_, 1);
  for (int64_t i = 0; i < rows_; ++i) {
    double m = -std::numeric_limits<double>::infinity();
    for (int64_t j = 0; j < cols_; ++j)
      m = std::max(m, data_[ZU(i * cols_ + j)]);
    r.data_[ZU(i)] = m;
  }
  return r;
}

int64_t Tensor::ArgMaxRow(int64_t r) const {
  GEA_CHECK(r >= 0 && r < rows_ && cols_ > 0);
  int64_t best = 0;
  for (int64_t j = 1; j < cols_; ++j)
    if (data_[ZU(r * cols_ + j)] > data_[ZU(r * cols_ + best)]) best = j;
  return best;
}

bool Tensor::BroadcastCompatible(const Tensor& o) const {
  if (same_shape(o)) return true;
  if (o.rows_ == rows_ && o.cols_ == 1) return true;
  if (o.rows_ == 1 && o.cols_ == cols_) return true;
  if (o.rows_ == 1 && o.cols_ == 1) return true;
  return false;
}

Tensor Tensor::BroadcastBinary(
    const Tensor& o, const std::function<double(double, double)>& f) const {
  GEA_CHECK(BroadcastCompatible(o));
  Tensor r(rows_, cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = 0; j < cols_; ++j) {
      const int64_t oi = o.rows_ == 1 ? 0 : i;
      const int64_t oj = o.cols_ == 1 ? 0 : j;
      r.data_[ZU(i * cols_ + j)] =
          f(data_[ZU(i * cols_ + j)], o.data_[ZU(oi * o.cols_ + oj)]);
    }
  }
  return r;
}

void Tensor::FillDiagonal(double v) {
  GEA_CHECK(rows_ == cols_);
  for (int64_t i = 0; i < rows_; ++i) data_[ZU(i * cols_ + i)] = v;
}

Tensor Tensor::Row(int64_t r) const {
  GEA_CHECK(r >= 0 && r < rows_);
  Tensor t(1, cols_);
  std::copy(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_,
            t.data_.begin());
  return t;
}

double Tensor::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool Tensor::AllFinite() const {
  for (double v : data_)
    if (!std::isfinite(v)) return false;
  return true;
}

double Tensor::MaxAbsDiff(const Tensor& o) const {
  GEA_CHECK(same_shape(o));
  double m = 0.0;
  for (int64_t i = 0; i < size(); ++i)
    m = std::max(m, std::fabs(data_[ZU(i)] - o.data_[ZU(i)]));
  return m;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_ << ")";
  return os.str();
}

std::string Tensor::DebugString() const {
  std::ostringstream os;
  os << ShapeString() << " [";
  for (int64_t i = 0; i < rows_; ++i) {
    if (i) os << "; ";
    for (int64_t j = 0; j < cols_; ++j) {
      if (j) os << ", ";
      os << at(i, j);
    }
  }
  os << "]";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  return os << t.DebugString();
}

}  // namespace geattack
