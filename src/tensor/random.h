// Seeded random-number utilities shared by the whole library.
//
// Every stochastic component (dataset generation, weight init, mask init,
// random attack, target sampling) takes an explicit Rng so that experiments
// are reproducible from a single seed, as required by the mean±std protocol
// of the paper's Table 1/2.

#ifndef GEATTACK_SRC_TENSOR_RANDOM_H_
#define GEATTACK_SRC_TENSOR_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "src/tensor/tensor.h"

namespace geattack {

/// A seeded pseudo-random generator with the handful of distributions the
/// library needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled by `stddev`.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Tensor with iid uniform entries in [lo, hi).
  Tensor UniformTensor(int64_t rows, int64_t cols, double lo, double hi);

  /// Tensor with iid normal entries.
  Tensor NormalTensor(int64_t rows, int64_t cols, double mean, double stddev);

  /// Glorot/Xavier-uniform initialization for a rows x cols weight matrix.
  Tensor GlorotTensor(int64_t rows, int64_t cols);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n).
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  /// O(n) per draw; build a WeightedSampler for repeated draws.
  int64_t SampleWeighted(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Repeated weighted sampling in O(log n) per draw via binary search over
/// the prefix sums — the generator-scale replacement for the linear-scan
/// Rng::SampleWeighted.
class WeightedSampler {
 public:
  /// Weights must be non-negative with a positive sum.
  explicit WeightedSampler(const std::vector<double>& weights);

  /// Samples an index in [0, size) with probability proportional to its
  /// weight, consuming one uniform draw from `rng`.
  int64_t Sample(Rng* rng) const;

  int64_t size() const { return static_cast<int64_t>(cumulative_.size()); }

 private:
  std::vector<double> cumulative_;  // Inclusive prefix sums.
};

}  // namespace geattack

#endif  // GEATTACK_SRC_TENSOR_RANDOM_H_
