// Dense row-major 2-D tensor used throughout the library.
//
// Every value in this reproduction (adjacency matrices, feature matrices,
// GCN weights, explainer masks) is a dense matrix of doubles.  The graphs in
// the paper's evaluation fit comfortably in dense form, and dense storage
// keeps the autodiff engine (src/tensor/autodiff.h) simple and predictable.
//
// Tensors are value types: copy is deep, move is cheap.  Shapes are checked
// on every operation; a shape mismatch is a programming error and aborts via
// GEA_CHECK.

#ifndef GEATTACK_SRC_TENSOR_TENSOR_H_
#define GEATTACK_SRC_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace geattack {

// Lightweight CHECK macro: prints the failed condition and aborts.  Used for
// shape/programming errors which are never recoverable.
#define GEA_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::geattack::internal::CheckFailed(#cond, __FILE__, __LINE__);       \
    }                                                                     \
  } while (0)

namespace internal {
[[noreturn]] void CheckFailed(const char* cond, const char* file, int line);
/// Dense-allocation tripwire hook, called by every allocating Tensor
/// constructor with the element count (see DenseAllocGuard).
void NoteTensorAlloc(int64_t elements);
}  // namespace internal

/// Index cast for std::vector subscripts.  The library indexes with int64_t
/// (negative values are programming errors, caught by GEA_CHECK or by
/// _GLIBCXX_ASSERTIONS in Debug builds); std::vector wants size_t.  ZU makes
/// that no-op cast explicit so -Wsign-conversion builds stay clean without
/// spelling static_cast through every kernel subscript.
constexpr std::size_t ZU(int64_t i) { return static_cast<std::size_t>(i); }

/// RAII tripwire proving a code region allocates nothing dense-quadratic:
/// while armed, any Tensor allocation of `limit_elements` or more elements
/// aborts with a diagnostic.  The scaling bench arms it around the sparse
/// 100k attack→explain→defend smoke so a regression that sneaks an n×n
/// tensor back into the protocol hard-fails the gate instead of silently
/// eating O(n²) memory.  Process-wide and non-nestable; bench/test use only.
class DenseAllocGuard {
 public:
  explicit DenseAllocGuard(int64_t limit_elements);
  ~DenseAllocGuard();
  DenseAllocGuard(const DenseAllocGuard&) = delete;
  DenseAllocGuard& operator=(const DenseAllocGuard&) = delete;

  /// Largest single Tensor allocation (elements) observed since the guard
  /// was armed.  Valid while armed.
  static int64_t largest_observed();
};

/// A dense row-major matrix of doubles.  A (1,1) tensor doubles as a scalar.
class Tensor {
 public:
  /// Creates an empty (0,0) tensor.
  Tensor() = default;

  /// Creates a rows x cols tensor filled with `fill`.
  Tensor(int64_t rows, int64_t cols, double fill = 0.0);

  /// Creates a tensor from explicit row-major data; data.size() must equal
  /// rows*cols.
  Tensor(int64_t rows, int64_t cols, std::vector<double> data);

  /// Creates a (1,1) scalar tensor.
  static Tensor Scalar(double v);
  /// Identity matrix of size n.
  static Tensor Identity(int64_t n);
  /// All-ones matrix.
  static Tensor Ones(int64_t rows, int64_t cols);
  /// All-zeros matrix.
  static Tensor Zeros(int64_t rows, int64_t cols);
  /// One-hot row vector of length `n` with a 1 at `index`.
  static Tensor OneHotRow(int64_t n, int64_t index);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  bool same_shape(const Tensor& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  double& at(int64_t r, int64_t c) {
    GEA_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[ZU(r * cols_ + c)];
  }
  double at(int64_t r, int64_t c) const {
    GEA_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[ZU(r * cols_ + c)];
  }
  /// Unchecked flat access (row-major).
  double& operator[](int64_t i) { return data_[ZU(i)]; }
  double operator[](int64_t i) const { return data_[ZU(i)]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Returns the value of a (1,1) tensor.
  double scalar() const;

  // ----- Elementwise arithmetic (allocating; shapes must match exactly). ---
  Tensor operator+(const Tensor& o) const;
  Tensor operator-(const Tensor& o) const;
  Tensor operator*(const Tensor& o) const;  ///< Hadamard product.
  Tensor operator/(const Tensor& o) const;
  Tensor operator-() const;

  Tensor& operator+=(const Tensor& o);
  Tensor& operator-=(const Tensor& o);

  // ----- Scalar arithmetic. ----------------------------------------------
  Tensor AddScalar(double s) const;
  Tensor MulScalar(double s) const;

  // ----- Elementwise maps. -------------------------------------------------
  Tensor Map(const std::function<double(double)>& f) const;
  Tensor Sigmoid() const;
  Tensor Relu() const;
  Tensor Exp() const;
  Tensor Log() const;
  Tensor Pow(double e) const;
  Tensor Sqrt() const;
  Tensor Abs() const;

  // ----- Linear algebra. ---------------------------------------------------
  /// Matrix product (this: m x k, o: k x n) -> m x n.
  Tensor MatMul(const Tensor& o) const;
  Tensor Transposed() const;

  // ----- Reductions. -------------------------------------------------------
  double Sum() const;
  double Max() const;
  double Min() const;
  /// Row-wise sum -> (rows,1).
  Tensor RowSum() const;
  /// Column-wise sum -> (1,cols).
  Tensor ColSum() const;
  /// Row-wise max -> (rows,1).
  Tensor RowMax() const;
  /// Index of the max element in row r.
  int64_t ArgMaxRow(int64_t r) const;

  // ----- Broadcasting helpers. ---------------------------------------------
  /// True if `o` broadcasts against this tensor's shape: equal shape, or o is
  /// (rows,1), (1,cols) or (1,1).
  bool BroadcastCompatible(const Tensor& o) const;
  /// Elementwise binary op with broadcasting of `o` (per
  /// BroadcastCompatible); `f(a, b)` combines this-element and o-element.
  Tensor BroadcastBinary(const Tensor& o,
                         const std::function<double(double, double)>& f) const;

  // ----- Structure helpers used by the graph code. --------------------------
  /// Sets the main diagonal to `v` (square tensors only).
  void FillDiagonal(double v);
  /// Returns row r as a (1,cols) tensor.
  Tensor Row(int64_t r) const;
  /// Frobenius norm.
  double Norm() const;
  /// True if all finite.
  bool AllFinite() const;
  /// Max |a-b| over elements; shapes must match.
  double MaxAbsDiff(const Tensor& o) const;

  /// Human-readable short description, e.g. "Tensor(3x4)".
  std::string ShapeString() const;
  /// Full contents (small tensors only; intended for tests/debugging).
  std::string DebugString() const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace geattack

#endif  // GEATTACK_SRC_TENSOR_TENSOR_H_
