#include "src/tensor/csr.h"

#include <algorithm>
#include <cmath>

namespace geattack {

bool CsrPattern::CheckInvariants() const {
  if (rows < 0 || cols < 0) return false;
  if (static_cast<int64_t>(row_ptr.size()) != rows + 1) return false;
  if (row_ptr.front() != 0) return false;
  if (row_ptr.back() != nnz()) return false;
  for (int64_t i = 0; i < rows; ++i) {
    if (row_ptr[ZU(i)] > row_ptr[ZU(i + 1)]) return false;
    for (int64_t e = row_ptr[ZU(i)]; e < row_ptr[ZU(i + 1)]; ++e) {
      if (col_idx[ZU(e)] < 0 || col_idx[ZU(e)] >= cols) return false;
      if (e > row_ptr[ZU(i)] && col_idx[ZU(e)] <= col_idx[ZU(e - 1)])
        return false;
    }
  }
  return true;
}

const CsrTranspose& CsrPattern::Transpose() const {
  std::call_once(transpose_once_,
                 [this] { transpose_ = TransposePattern(*this); });
  return transpose_;
}

CsrTranspose TransposePattern(const CsrPattern& p) {
  auto t = std::make_shared<CsrPattern>();
  t->rows = p.cols;
  t->cols = p.rows;
  t->row_ptr.assign(ZU(p.cols) + 1, 0);
  t->col_idx.resize(ZU(p.nnz()));
  CsrTranspose out;
  out.src_index.resize(ZU(p.nnz()));

  // Counting sort by column.
  for (int64_t c : p.col_idx) ++t->row_ptr[ZU(c + 1)];
  for (int64_t c = 0; c < p.cols; ++c)
    t->row_ptr[ZU(c + 1)] += t->row_ptr[ZU(c)];
  std::vector<int64_t> cursor(t->row_ptr.begin(), t->row_ptr.end() - 1);
  for (int64_t r = 0; r < p.rows; ++r) {
    for (int64_t e = p.row_ptr[ZU(r)]; e < p.row_ptr[ZU(r + 1)]; ++e) {
      const int64_t dst = cursor[ZU(p.col_idx[ZU(e)])]++;
      t->col_idx[ZU(dst)] = r;  // Rows visited in order => sorted within row.
      out.src_index[ZU(dst)] = e;
    }
  }
  out.pattern = std::move(t);
  return out;
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define GEA_RESTRICT __restrict__
#else
#define GEA_RESTRICT
#endif

/// Shared CSR × dense accumulation core.  `value(e, i)` yields the entry
/// value for nnz position e in row i, so the plain, float32-storage, and
/// fused-normalization kernels all run through one tuned loop nest.
///
/// Determinism contract: for every output element (i, j) the products are
/// accumulated in ascending-e order into a single accumulator, exactly like
/// the naive kernel — the column tiling only reorders *independent* j
/// ranges and the `omp simd` runs over j (independent accumulators), so no
/// floating-point reassociation ever happens.  The attack equivalence gates
/// and the fixed-seed test pins rely on this.
template <typename ValueFn>
void SpmmAccumulate(const CsrPattern& pattern, const Tensor& dense,
                    double* GEA_RESTRICT o, const ValueFn& value) {
  const int64_t k = dense.cols();
  const double* GEA_RESTRICT b = dense.data().data();
  const int64_t* GEA_RESTRICT row_ptr = pattern.row_ptr.data();
  const int64_t* GEA_RESTRICT col = pattern.col_idx.data();
  // 64 doubles = one 512-byte output tile per row: it stays resident in L1
  // while the kernel streams the (much larger) dense rows through it.
  constexpr int64_t kColTile = 64;
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64)
#endif
  for (int64_t i = 0; i < pattern.rows; ++i) {
    const int64_t e0 = row_ptr[ZU(i)];
    const int64_t e1 = row_ptr[ZU(i + 1)];
    if (k == 1) {
      // Vector fast path — the (·,1) degree/gather products the sparse
      // attack forward issues constantly.  Sorted columns mean contiguous
      // runs of b hits; a single sequential accumulator keeps the naive
      // summation order.
      double s = 0.0;
      for (int64_t e = e0; e < e1; ++e) s += value(e, i) * b[col[e]];
      o[i] = s;
      continue;
    }
    double* GEA_RESTRICT row_out = o + i * k;
    for (int64_t j0 = 0; j0 < k; j0 += kColTile) {
      const int64_t j1 = j0 + kColTile < k ? j0 + kColTile : k;
      int64_t e = e0;
      for (; e + 1 < e1; e += 2) {
        // Two entries per pass (their updates stay as separate statements,
        // preserving per-element order); adjacent sorted columns make the
        // two dense rows prefetch-friendly.
        const double v0 = value(e, i);
        const double v1 = value(e + 1, i);
        const double* GEA_RESTRICT b0 = b + col[e] * k;
        const double* GEA_RESTRICT b1 = b + col[e + 1] * k;
#ifdef _OPENMP
#pragma omp simd
#endif
        for (int64_t j = j0; j < j1; ++j) {
          row_out[j] += v0 * b0[j];
          row_out[j] += v1 * b1[j];
        }
      }
      if (e < e1) {
        const double v0 = value(e, i);
        const double* GEA_RESTRICT b0 = b + col[e] * k;
#ifdef _OPENMP
#pragma omp simd
#endif
        for (int64_t j = j0; j < j1; ++j) row_out[j] += v0 * b0[j];
      }
    }
  }
}

}  // namespace

Tensor SpmmRaw(const CsrPattern& pattern, const std::vector<double>& values,
               const Tensor& dense) {
  GEA_CHECK(static_cast<int64_t>(values.size()) == pattern.nnz());
  GEA_CHECK(pattern.cols == dense.rows());
  Tensor out(pattern.rows, dense.cols());
  const double* GEA_RESTRICT v = values.data();
  SpmmAccumulate(pattern, dense, out.mutable_data().data(),
                 [v](int64_t e, int64_t) { return v[e]; });
  return out;
}

Tensor SpmmRawF32(const CsrPattern& pattern, const std::vector<float>& values,
                  const Tensor& dense) {
  GEA_CHECK(static_cast<int64_t>(values.size()) == pattern.nnz());
  GEA_CHECK(pattern.cols == dense.rows());
  Tensor out(pattern.rows, dense.cols());
  const float* GEA_RESTRICT v = values.data();
  SpmmAccumulate(pattern, dense, out.mutable_data().data(),
                 [v](int64_t e, int64_t) { return static_cast<double>(v[e]); });
  return out;
}

std::vector<float> ValuesToF32(const std::vector<double>& values) {
  std::vector<float> f(values.size());
  for (size_t e = 0; e < values.size(); ++e)
    f[e] = static_cast<float>(values[e]);
  return f;
}

Tensor SpmmStackedRaw(const CsrPattern& pattern, const Tensor& values,
                      const Tensor& dense) {
  const int64_t k = values.cols();
  GEA_CHECK(k >= 1);
  GEA_CHECK(values.rows() == pattern.nnz());
  GEA_CHECK(pattern.cols == dense.rows());
  GEA_CHECK(dense.cols() % k == 0);
  const int64_t b = dense.cols() / k;
  const int64_t kb = dense.cols();
  Tensor out(pattern.rows, kb);
  const double* GEA_RESTRICT v = values.data().data();
  const double* GEA_RESTRICT bd = dense.data().data();
  const int64_t* GEA_RESTRICT row_ptr = pattern.row_ptr.data();
  const int64_t* GEA_RESTRICT col = pattern.col_idx.data();
  double* GEA_RESTRICT o = out.mutable_data().data();
  // The (k·b)-wide output row is the tile: at attack sizes (k <= 8 blocks of
  // a 16-wide hidden layer) it is at most a few KB and stays L1-resident
  // while the dense rows stream.  e is the outer loop, so each output
  // element still accumulates in ascending-e order — the determinism
  // contract of SpmmAccumulate.
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64)
#endif
  for (int64_t i = 0; i < pattern.rows; ++i) {
    double* GEA_RESTRICT row_out = o + i * kb;
    for (int64_t e = row_ptr[ZU(i)]; e < row_ptr[ZU(i + 1)]; ++e) {
      const double* GEA_RESTRICT ve = v + e * k;
      const double* GEA_RESTRICT brow = bd + col[e] * kb;
      for (int64_t t = 0; t < k; ++t) {
        const double vt = ve[t];
        // Exact-zero columns are skipped: a stacked pattern carries every
        // batched target's candidate slots, so most entries are zero in
        // most columns (foreign slots).  Adding ±0·b[j] never changes an
        // IEEE accumulator that started at +0 (+0 + ±0 = +0, x + ±0 = x),
        // so the skip is bit-invisible — and it is what keeps the batched
        // work per column proportional to that target's OWN slot count.
        if (vt == 0.0) continue;
        const int64_t j0 = t * b;
#ifdef _OPENMP
#pragma omp simd
#endif
        for (int64_t j = j0; j < j0 + b; ++j) row_out[j] += vt * brow[j];
      }
    }
  }
  return out;
}

Tensor SpmmValueGradStackedRaw(const CsrPattern& pattern, const Tensor& g,
                               const Tensor& b, int64_t k,
                               const double* mask) {
  GEA_CHECK(k >= 1);
  GEA_CHECK(g.rows() == pattern.rows && b.rows() == pattern.cols);
  GEA_CHECK(g.cols() == b.cols());
  GEA_CHECK(g.cols() % k == 0);
  const int64_t m = g.cols() / k;
  const int64_t km = g.cols();
  Tensor out(pattern.nnz(), k);
  const double* GEA_RESTRICT gd = g.data().data();
  const double* GEA_RESTRICT bd = b.data().data();
  double* GEA_RESTRICT o = out.mutable_data().data();
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 64)
#endif
  for (int64_t i = 0; i < pattern.rows; ++i) {
    const double* GEA_RESTRICT grow = gd + i * km;
    const int64_t e_end = pattern.row_ptr[ZU(i + 1)];
    for (int64_t e = pattern.row_ptr[ZU(i)]; e < e_end; ++e) {
      const double* GEA_RESTRICT brow = bd + pattern.col_idx[ZU(e)] * km;
      for (int64_t t = 0; t < k; ++t) {
        if (mask != nullptr && mask[e * k + t] == 0.0) {
          o[e * k + t] = 0.0;
          continue;
        }
        double s = 0.0;
        const int64_t j0 = t * m;
        for (int64_t j = j0; j < j0 + m; ++j) s += grow[j] * brow[j];
        o[e * k + t] = s;
      }
    }
  }
  return out;
}

namespace {

/// d̃^{-1/2} per node for (pattern row sums of values) + out_deg, matching
/// the unfused SpMMValues-rowsum + Add + Pow composition bit for bit
/// (ascending-e sums, out_deg added last, std::pow(·, -0.5)).
std::vector<double> NormDinv(const CsrPattern& pattern,
                             const std::vector<double>& values,
                             const double* out_deg) {
  const int64_t n = pattern.rows;
  std::vector<double> dinv(ZU(n));
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t i = 0; i < n; ++i) {
    double d = 0.0;
    for (int64_t e = pattern.row_ptr[ZU(i)]; e < pattern.row_ptr[ZU(i + 1)];
         ++e)
      d += values[ZU(e)];
    if (out_deg != nullptr) d += out_deg[i];
    dinv[ZU(i)] = std::pow(d, -0.5);
  }
  return dinv;
}

}  // namespace

Tensor GcnNormValuesRaw(const CsrPattern& pattern,
                        const std::vector<double>& values,
                        const double* out_deg) {
  GEA_CHECK(pattern.rows == pattern.cols);
  GEA_CHECK(static_cast<int64_t>(values.size()) == pattern.nnz());
  const std::vector<double> dinv = NormDinv(pattern, values, out_deg);
  Tensor out(pattern.nnz(), 1);
  const double* GEA_RESTRICT v = values.data();
  const int64_t* GEA_RESTRICT col = pattern.col_idx.data();
  const double* GEA_RESTRICT s = dinv.data();
  double* GEA_RESTRICT o = out.mutable_data().data();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t i = 0; i < pattern.rows; ++i) {
    const double si = s[i];
    for (int64_t e = pattern.row_ptr[ZU(i)]; e < pattern.row_ptr[ZU(i + 1)];
         ++e)
      o[e] = (v[e] * si) * s[col[e]];
  }
  return out;
}

Tensor GcnNormValuesStackedRaw(const CsrPattern& pattern, const Tensor& values,
                               const Tensor& out_deg) {
  GEA_CHECK(pattern.rows == pattern.cols);
  const int64_t k = values.cols();
  GEA_CHECK(k >= 1);
  GEA_CHECK(values.rows() == pattern.nnz());
  GEA_CHECK(out_deg.rows() == pattern.rows && out_deg.cols() == k);
  const int64_t n = pattern.rows;
  // Per-column d̃^{-1/2}, matching NormDinv column by column: ascending-e row
  // sums, out_deg added last, std::pow(·, -0.5).
  Tensor dinv(n, k);
  const double* GEA_RESTRICT v = values.data().data();
  const double* GEA_RESTRICT od = out_deg.data().data();
  double* GEA_RESTRICT s = dinv.mutable_data().data();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t t = 0; t < k; ++t) {
      double d = 0.0;
      for (int64_t e = pattern.row_ptr[ZU(i)];
           e < pattern.row_ptr[ZU(i + 1)]; ++e)
        d += v[e * k + t];
      d += od[i * k + t];
      s[i * k + t] = std::pow(d, -0.5);
    }
  }
  Tensor out(pattern.nnz(), k);
  const int64_t* GEA_RESTRICT col = pattern.col_idx.data();
  double* GEA_RESTRICT o = out.mutable_data().data();
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int64_t i = 0; i < pattern.rows; ++i) {
    const double* GEA_RESTRICT si = s + i * k;
    for (int64_t e = pattern.row_ptr[ZU(i)]; e < pattern.row_ptr[ZU(i + 1)];
         ++e) {
      const double* GEA_RESTRICT sc = s + col[e] * k;
      for (int64_t t = 0; t < k; ++t)
        o[e * k + t] = (v[e * k + t] * si[t]) * sc[t];
    }
  }
  return out;
}

Tensor GcnNormSpmmRaw(const CsrPattern& pattern,
                      const std::vector<double>& values, const double* out_deg,
                      const Tensor& dense) {
  GEA_CHECK(pattern.rows == pattern.cols);
  GEA_CHECK(static_cast<int64_t>(values.size()) == pattern.nnz());
  GEA_CHECK(pattern.cols == dense.rows());
  const int64_t n = pattern.rows;
  // Pass 1: d̃^{-1/2} per node; pass 2 accumulates with the normalized
  // value (v_e·s_r)·s_c computed on the fly — no (nnz,1) intermediates are
  // ever materialized.
  const std::vector<double> dinv = NormDinv(pattern, values, out_deg);
  Tensor out(n, dense.cols());
  const double* GEA_RESTRICT v = values.data();
  const int64_t* GEA_RESTRICT col = pattern.col_idx.data();
  const double* GEA_RESTRICT s = dinv.data();
  SpmmAccumulate(pattern, dense, out.mutable_data().data(),
                 [v, col, s](int64_t e, int64_t i) {
                   return (v[e] * s[i]) * s[col[e]];
                 });
  return out;
}

CsrMatrix::CsrMatrix(std::shared_ptr<const CsrPattern> pattern,
                     std::vector<double> values)
    : pattern_(std::move(pattern)), values_(std::move(values)) {
  GEA_CHECK(pattern_ != nullptr);
  GEA_CHECK(static_cast<int64_t>(values_.size()) == pattern_->nnz());
}

CsrMatrix CsrMatrix::FromDense(const Tensor& dense, double tol) {
  auto pattern = std::make_shared<CsrPattern>();
  pattern->rows = dense.rows();
  pattern->cols = dense.cols();
  pattern->row_ptr.reserve(ZU(dense.rows()) + 1);
  pattern->row_ptr.push_back(0);
  std::vector<double> values;
  for (int64_t i = 0; i < dense.rows(); ++i) {
    for (int64_t j = 0; j < dense.cols(); ++j) {
      const double v = dense.at(i, j);
      if (std::abs(v) > tol) {
        pattern->col_idx.push_back(j);
        values.push_back(v);
      }
    }
    pattern->row_ptr.push_back(static_cast<int64_t>(pattern->col_idx.size()));
  }
  return CsrMatrix(std::move(pattern), std::move(values));
}

double CsrMatrix::At(int64_t r, int64_t c) const {
  GEA_CHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
  const auto begin = pattern_->col_idx.begin() + pattern_->row_ptr[ZU(r)];
  const auto end = pattern_->col_idx.begin() + pattern_->row_ptr[ZU(r + 1)];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[ZU(it - pattern_->col_idx.begin())];
}

Tensor CsrMatrix::ToDense() const {
  Tensor out(rows(), cols());
  for (int64_t i = 0; i < rows(); ++i)
    for (int64_t e = pattern_->row_ptr[ZU(i)];
         e < pattern_->row_ptr[ZU(i + 1)]; ++e)
      out.at(i, pattern_->col_idx[ZU(e)]) += values_[ZU(e)];
  return out;
}

Tensor CsrMatrix::SpMM(const Tensor& dense) const {
  GEA_CHECK(pattern_ != nullptr);
  return SpmmRaw(*pattern_, values_, dense);
}

CsrMatrix CsrMatrix::Transposed() const {
  GEA_CHECK(pattern_ != nullptr);
  const CsrTranspose& t = pattern_->Transpose();
  std::vector<double> values(values_.size());
  for (size_t e = 0; e < values.size(); ++e)
    values[e] = values_[ZU(t.src_index[e])];
  return CsrMatrix(t.pattern, std::move(values));
}

Tensor CsrMatrix::RowSums() const {
  Tensor out(rows(), 1);
  for (int64_t i = 0; i < rows(); ++i) {
    double s = 0.0;
    for (int64_t e = pattern_->row_ptr[ZU(i)];
         e < pattern_->row_ptr[ZU(i + 1)]; ++e)
      s += values_[ZU(e)];
    out.at(i, 0) = s;
  }
  return out;
}

double CsrMatrix::SumValues() const {
  double s = 0.0;
  for (double v : values_) s += v;
  return s;
}

bool CsrMatrix::AllFinite() const {
  for (double v : values_)
    if (!std::isfinite(v)) return false;
  return true;
}

CsrMatrix GcnNormalizeCsr(const CsrMatrix& adjacency) {
  GEA_CHECK(!adjacency.empty());
  GEA_CHECK(adjacency.rows() == adjacency.cols());
  const CsrPattern& p = *adjacency.pattern();
  const std::vector<double>& av = adjacency.values();
  const int64_t n = p.rows;

  // Degrees of A + I.
  std::vector<double> dinv(ZU(n));
  for (int64_t i = 0; i < n; ++i) {
    double d = 1.0;  // Self loop.
    for (int64_t e = p.row_ptr[ZU(i)]; e < p.row_ptr[ZU(i + 1)]; ++e)
      d += av[ZU(e)];
    GEA_CHECK(d > 0.0);
    dinv[ZU(i)] = 1.0 / std::sqrt(d);
  }

  // Build (A + I) row by row, inserting the diagonal in sorted position
  // (or merging into it when already present), scaled by dinv on both sides.
  auto out = std::make_shared<CsrPattern>();
  out->rows = out->cols = n;
  out->row_ptr.reserve(ZU(n) + 1);
  out->row_ptr.push_back(0);
  out->col_idx.reserve(p.col_idx.size() + ZU(n));
  std::vector<double> values;
  values.reserve(p.col_idx.size() + ZU(n));

  for (int64_t i = 0; i < n; ++i) {
    const double di = dinv[ZU(i)];
    bool diag_emitted = false;
    for (int64_t e = p.row_ptr[ZU(i)]; e < p.row_ptr[ZU(i + 1)]; ++e) {
      const int64_t j = p.col_idx[ZU(e)];
      double v = av[ZU(e)];
      if (!diag_emitted && j >= i) {
        if (j == i) {
          v += 1.0;
        } else {
          out->col_idx.push_back(i);
          values.push_back(di * 1.0 * di);
        }
        diag_emitted = true;
      }
      out->col_idx.push_back(j);
      values.push_back(di * v * dinv[ZU(j)]);
    }
    if (!diag_emitted) {
      out->col_idx.push_back(i);
      values.push_back(di * di);
    }
    out->row_ptr.push_back(static_cast<int64_t>(out->col_idx.size()));
  }
  return CsrMatrix(std::move(out), std::move(values));
}

}  // namespace geattack
