// Sparse CSR matrix support — the O(|E|) execution path.
//
// The dense Tensor substrate caps the library at toy graphs: a GCN forward
// on a dense n x n adjacency costs O(n²·h) regardless of how sparse the
// graph is.  CsrMatrix stores only the nonzeros, so SpMM-based forwards cost
// O(|E|·h) and multi-10k-node graphs become feasible.  The sparsity
// *structure* (CsrPattern) is immutable and shared via shared_ptr between
// matrices, their transposes, and the autodiff SpMM nodes
// (src/tensor/autodiff.h), which differentiate through the entry values
// while the structure stays fixed.
//
// The row-parallel SpMM kernel uses OpenMP when compiled with it and falls
// back to a serial loop otherwise.

#ifndef GEATTACK_SRC_TENSOR_CSR_H_
#define GEATTACK_SRC_TENSOR_CSR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/tensor/tensor.h"

namespace geattack {

struct CsrPattern;

/// The structure of Aᵀ plus, for each entry of Aᵀ in its pattern order, the
/// index of the matching entry of A — i.e. the permutation that maps A's
/// value array onto Aᵀ's.  Shared by CsrMatrix::Transposed and the autodiff
/// SpMM backward.
struct CsrTranspose {
  std::shared_ptr<const CsrPattern> pattern;
  std::vector<int64_t> src_index;
};

/// Immutable sparsity structure of a CSR matrix.  Column indices are
/// strictly increasing within each row; row_ptr has rows+1 entries with
/// row_ptr[0] == 0 and row_ptr[rows] == nnz.  Populate the public fields
/// once, then treat the pattern as frozen (the transpose cache relies on
/// it).
struct CsrPattern {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int64_t> row_ptr;
  std::vector<int64_t> col_idx;

  int64_t nnz() const { return static_cast<int64_t>(col_idx.size()); }
  /// Validates the invariants above (debug helper; O(nnz)).
  bool CheckInvariants() const;

  /// Transpose structure, built on first use and cached (thread-safe) —
  /// training loops and SpMM backwards hit this once per step, not once
  /// per construction.
  const CsrTranspose& Transpose() const;

 private:
  mutable std::once_flag transpose_once_;
  mutable CsrTranspose transpose_;
};

/// Computes the transpose structure of `p` by counting sort, O(nnz + cols).
/// Prefer CsrPattern::Transpose(), which caches the result.
CsrTranspose TransposePattern(const CsrPattern& p);

/// Raw row-parallel CSR × dense kernel: returns A·dense where A is given by
/// (pattern, values).  dense must have pattern.cols rows.  The inner loop is
/// cache-blocked over dense columns and vectorized (restrict-qualified
/// pointers + OpenMP simd) while keeping the exact per-output accumulation
/// order of the naive kernel, so results are bit-identical across builds and
/// tile sizes.
Tensor SpmmRaw(const CsrPattern& pattern, const std::vector<double>& values,
               const Tensor& dense);

/// Float32 value-storage twin of SpmmRaw: the per-entry adjacency values are
/// stored (and read) as floats, halving the value-array memory traffic, while
/// the dense operand and the accumulators stay double.  Inference-only — the
/// ~1e-7 relative rounding on the stored values is fine for eval logits but
/// must never feed training/attack gradients or the bit-exactness gates.
Tensor SpmmRawF32(const CsrPattern& pattern, const std::vector<float>& values,
                  const Tensor& dense);

/// Converts a value array to float32 storage for SpmmRawF32.
std::vector<float> ValuesToF32(const std::vector<double>& values);

/// The normalization half of GcnNormSpmmRaw as a standalone kernel: returns
/// the (nnz,1) normalized values Ã_e = v_e·d̃^{-1/2}[r_e]·d̃^{-1/2}[c_e]
/// with d̃ = pattern row sums + out_deg, in one pass (no degree/gather
/// intermediates).  Bit-identical to the unfused composition.
Tensor GcnNormValuesRaw(const CsrPattern& pattern,
                        const std::vector<double>& values,
                        const double* out_deg);

/// Column-stacked SpMM over one shared pattern — the wide-RHS kernel of the
/// batched multi-target attack path.  `values` holds k value columns
/// ((nnz, k), row-major): k sparse matrices sharing one sparsity structure.
/// `dense` holds k dense blocks side by side (cols = k·b), and block t of
/// the output is A(values[:,t]) · dense[:, t·b:(t+1)·b].  One pass over the
/// pattern serves every block, so row_ptr/col_idx traffic is paid once for
/// k products and the (k·b)-wide output row stays hot while dense rows
/// stream through.  Each output element accumulates its products in
/// ascending-e order exactly like SpmmRaw, so every block is bit-identical
/// to the corresponding narrow SpmmRaw call.
Tensor SpmmStackedRaw(const CsrPattern& pattern, const Tensor& values,
                      const Tensor& dense);

/// Column-stacked twin of the SpmmValueGrad kernel: with g and b both
/// (rows, k·m) block matrices, returns the (nnz, k) per-entry gradients
/// out[e][t] = Σ_j g[r_e, t·m+j] · b[c_e, t·m+j] — block t bit-identical to
/// SpmmValueGrad over g/b's t-th blocks.  `mask` (nullable, nnz·k in the
/// values layout) restricts the computation: entries with mask == 0 are
/// written as 0.0 without evaluating the dot product — the per-target
/// slot-ownership masking of the batched attack path (a target's gradient
/// is only ever read at its own slots).
Tensor SpmmValueGradStackedRaw(const CsrPattern& pattern, const Tensor& g,
                               const Tensor& b, int64_t k,
                               const double* mask = nullptr);

/// Column-stacked GcnNormValuesRaw: normalizes each of the k value columns
/// independently with its own out-degree column (out_deg is (rows, k)).
/// Column t is bit-identical to GcnNormValuesRaw(pattern, values[:,t],
/// out_deg[:,t]).
Tensor GcnNormValuesStackedRaw(const CsrPattern& pattern, const Tensor& values,
                               const Tensor& out_deg);

/// Fused GCN-normalize + SpMM kernel over a square pattern:
///   d̃_i = Σ_{e ∈ row i} v_e + out_deg_i,   Ã_e = v_e·d̃^{-1/2}[r_e]·d̃^{-1/2}[c_e],
///   out  = Ã·dense,
/// computed in one pass over the nonzeros instead of materializing the
/// degree, gather, and normalized-value intermediates.  `out_deg` (nullable,
/// length pattern.rows) adds out-of-view degree mass exactly like
/// SparseAttackForward's correction.  Bit-identical to the unfused
/// rowsum/pow/gather/scale/SpmmRaw composition.
Tensor GcnNormSpmmRaw(const CsrPattern& pattern,
                      const std::vector<double>& values, const double* out_deg,
                      const Tensor& dense);

/// A sparse matrix in CSR form: a shared immutable pattern plus a value per
/// stored entry.  Value semantics like Tensor: copy duplicates the values
/// but shares the pattern.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::shared_ptr<const CsrPattern> pattern,
            std::vector<double> values);

  /// Builds from a dense matrix, storing entries with |x| > tol.
  static CsrMatrix FromDense(const Tensor& dense, double tol = 0.0);

  int64_t rows() const { return pattern_ ? pattern_->rows : 0; }
  int64_t cols() const { return pattern_ ? pattern_->cols : 0; }
  int64_t nnz() const { return pattern_ ? pattern_->nnz() : 0; }
  bool empty() const { return pattern_ == nullptr; }

  const std::shared_ptr<const CsrPattern>& pattern() const { return pattern_; }
  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  /// Value at (r, c); 0.0 for entries outside the pattern.  O(log row_nnz).
  double At(int64_t r, int64_t c) const;

  /// Materializes the dense equivalent (tests / small matrices only).
  Tensor ToDense() const;

  /// Sparse × dense product: this (m x n) · dense (n x k) -> (m x k).
  /// Row-parallel via OpenMP.
  Tensor SpMM(const Tensor& dense) const;

  CsrMatrix Transposed() const;

  /// Row sums -> (rows, 1).
  Tensor RowSums() const;

  double SumValues() const;
  bool AllFinite() const;

 private:
  std::shared_ptr<const CsrPattern> pattern_;
  std::vector<double> values_;
};

/// Symmetric GCN normalization computed entirely in CSR:
/// Ã = D̃^{-1/2} (A + I) D̃^{-1/2} with D̃ the degree matrix of A + I — the
/// sparse twin of NormalizeAdjacency (src/graph/graph.h).  `adjacency` must
/// be square; a pre-existing diagonal entry is incremented rather than
/// duplicated.  O(nnz).
CsrMatrix GcnNormalizeCsr(const CsrMatrix& adjacency);

}  // namespace geattack

#endif  // GEATTACK_SRC_TENSOR_CSR_H_
