#include "src/tensor/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace geattack {

Tensor Rng::UniformTensor(int64_t rows, int64_t cols, double lo, double hi) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) t[i] = Uniform(lo, hi);
  return t;
}

Tensor Rng::NormalTensor(int64_t rows, int64_t cols, double mean,
                         double stddev) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.size(); ++i) t[i] = Normal(mean, stddev);
  return t;
}

Tensor Rng::GlorotTensor(int64_t rows, int64_t cols) {
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  return UniformTensor(rows, cols, -limit, limit);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  GEA_CHECK(k <= n);
  std::vector<int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  Shuffle(&idx);
  idx.resize(static_cast<size_t>(k));
  return idx;
}

int64_t Rng::SampleWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    GEA_CHECK(w >= 0.0);
    total += w;
  }
  GEA_CHECK(total > 0.0);
  double r = Uniform(0.0, total);
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

WeightedSampler::WeightedSampler(const std::vector<double>& weights) {
  cumulative_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    GEA_CHECK(w >= 0.0);
    total += w;
    cumulative_.push_back(total);
  }
  GEA_CHECK(total > 0.0);
}

int64_t WeightedSampler::Sample(Rng* rng) const {
  GEA_CHECK(rng != nullptr);
  const double r = rng->Uniform(0.0, cumulative_.back());
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), r);
  return std::min<int64_t>(static_cast<int64_t>(it - cumulative_.begin()),
                           size() - 1);
}

}  // namespace geattack
