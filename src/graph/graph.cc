#include "src/graph/graph.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

namespace geattack {

Graph::Graph(int64_t num_nodes) : adj_(ZU(num_nodes)) {
  GEA_CHECK(num_nodes >= 0);
}

Graph Graph::FromDense(const Tensor& adjacency) {
  GEA_CHECK(adjacency.rows() == adjacency.cols());
  Graph g(adjacency.rows());
  for (int64_t i = 0; i < adjacency.rows(); ++i) {
    for (int64_t j = i + 1; j < adjacency.cols(); ++j) {
      if (adjacency.at(i, j) > 0.5 || adjacency.at(j, i) > 0.5) {
        g.AddEdge(i, j);
      }
    }
  }
  return g;
}

bool Graph::AddEdge(int64_t u, int64_t v) {
  GEA_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  if (u == v) return false;
  if (adj_[ZU(u)].count(v)) return false;
  adj_[ZU(u)].insert(v);
  adj_[ZU(v)].insert(u);
  ++num_edges_;
  return true;
}

bool Graph::RemoveEdge(int64_t u, int64_t v) {
  GEA_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  if (!adj_[ZU(u)].count(v)) return false;
  adj_[ZU(u)].erase(v);
  adj_[ZU(v)].erase(u);
  --num_edges_;
  return true;
}

bool Graph::HasEdge(int64_t u, int64_t v) const {
  GEA_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes());
  return adj_[ZU(u)].count(v) > 0;
}

int64_t Graph::Degree(int64_t u) const {
  GEA_CHECK(u >= 0 && u < num_nodes());
  return static_cast<int64_t>(adj_[ZU(u)].size());
}

const std::set<int64_t>& Graph::Neighbors(int64_t u) const {
  GEA_CHECK(u >= 0 && u < num_nodes());
  return adj_[ZU(u)];
}

std::vector<Edge> Graph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(ZU(num_edges_));
  for (int64_t u = 0; u < num_nodes(); ++u)
    for (int64_t v : adj_[ZU(u)])
      if (u < v) edges.emplace_back(u, v);
  return edges;
}

Tensor Graph::DenseAdjacency() const {
  Tensor a(num_nodes(), num_nodes());
  for (int64_t u = 0; u < num_nodes(); ++u)
    for (int64_t v : adj_[ZU(u)]) a.at(u, v) = 1.0;
  return a;
}

CsrMatrix Graph::CsrAdjacency() const {
  const int64_t n = num_nodes();
  auto pattern = std::make_shared<CsrPattern>();
  pattern->rows = pattern->cols = n;
  pattern->row_ptr.reserve(ZU(n) + 1);
  pattern->row_ptr.push_back(0);
  pattern->col_idx.reserve(ZU(2 * num_edges_));
  for (int64_t u = 0; u < n; ++u) {
    pattern->col_idx.insert(pattern->col_idx.end(), adj_[ZU(u)].begin(),
                            adj_[ZU(u)].end());
    pattern->row_ptr.push_back(static_cast<int64_t>(pattern->col_idx.size()));
  }
  std::vector<double> values(pattern->col_idx.size(), 1.0);
  return CsrMatrix(std::move(pattern), std::move(values));
}

std::vector<int64_t> Graph::KHopNeighborhood(int64_t center, int hops) const {
  GEA_CHECK(center >= 0 && center < num_nodes());
  std::vector<int64_t> dist(ZU(num_nodes()), -1);
  std::queue<int64_t> q;
  dist[ZU(center)] = 0;
  q.push(center);
  std::vector<int64_t> result{center};
  while (!q.empty()) {
    int64_t u = q.front();
    q.pop();
    if (dist[ZU(u)] >= hops) continue;
    for (int64_t v : adj_[ZU(u)]) {
      if (dist[ZU(v)] < 0) {
        dist[ZU(v)] = dist[ZU(u)] + 1;
        result.push_back(v);
        q.push(v);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<int64_t> Graph::ConnectedComponents() const {
  std::vector<int64_t> comp(ZU(num_nodes()), -1);
  int64_t next = 0;
  for (int64_t s = 0; s < num_nodes(); ++s) {
    if (comp[ZU(s)] >= 0) continue;
    comp[ZU(s)] = next;
    std::queue<int64_t> q;
    q.push(s);
    while (!q.empty()) {
      int64_t u = q.front();
      q.pop();
      for (int64_t v : adj_[ZU(u)]) {
        if (comp[ZU(v)] < 0) {
          comp[ZU(v)] = next;
          q.push(v);
        }
      }
    }
    ++next;
  }
  return comp;
}

Graph Graph::LargestConnectedComponent(std::vector<int64_t>* mapping) const {
  std::vector<int64_t> comp = ConnectedComponents();
  std::unordered_map<int64_t, int64_t> sizes;
  for (int64_t c : comp) ++sizes[c];
  int64_t best = 0;
  int64_t best_size = -1;
  // lint-ok: unordered-iteration (max-size/min-id selection: ties break on
  // the smallest component id, so the result is independent of hash order)
  for (const auto& [c, s] : sizes) {
    if (s > best_size || (s == best_size && c < best)) {
      best = c;
      best_size = s;
    }
  }
  std::vector<int64_t> old_ids;
  std::vector<int64_t> new_id(ZU(num_nodes()), -1);
  for (int64_t u = 0; u < num_nodes(); ++u) {
    if (comp[ZU(u)] == best) {
      new_id[ZU(u)] = static_cast<int64_t>(old_ids.size());
      old_ids.push_back(u);
    }
  }
  Graph g(static_cast<int64_t>(old_ids.size()));
  for (int64_t u = 0; u < num_nodes(); ++u) {
    if (new_id[ZU(u)] < 0) continue;
    for (int64_t v : adj_[ZU(u)])
      if (u < v && new_id[ZU(v)] >= 0) g.AddEdge(new_id[ZU(u)], new_id[ZU(v)]);
  }
  if (mapping != nullptr) *mapping = std::move(old_ids);
  return g;
}

bool Graph::CheckInvariants() const {
  int64_t half_edges = 0;
  for (int64_t u = 0; u < num_nodes(); ++u) {
    if (adj_[ZU(u)].count(u)) return false;  // No self loops.
    for (int64_t v : adj_[ZU(u)]) {
      if (v < 0 || v >= num_nodes()) return false;
      if (!adj_[ZU(v)].count(u)) return false;  // Symmetry.
      ++half_edges;
    }
  }
  return half_edges == 2 * num_edges_;
}

Tensor NormalizeAdjacency(const Tensor& adjacency) {
  GEA_CHECK(adjacency.rows() == adjacency.cols());
  const int64_t n = adjacency.rows();
  Tensor self = adjacency;
  for (int64_t i = 0; i < n; ++i) self.at(i, i) += 1.0;
  Tensor deg = self.RowSum();
  Tensor dinv = deg.Pow(-0.5);
  Tensor out(n, n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      out.at(i, j) = dinv.at(i, 0) * self.at(i, j) * dinv.at(j, 0);
  return out;
}

Var NormalizeAdjacencyVar(const Var& adjacency) {
  GEA_CHECK(adjacency.defined());
  GEA_CHECK(adjacency.rows() == adjacency.cols());
  Var self =
      Add(adjacency, Constant(Tensor::Identity(adjacency.rows()), "I"));
  Var deg = RowSum(self);         // (n,1); >= 1 thanks to the self loop.
  Var dinv = Pow(deg, -0.5);      // (n,1).
  return Mul(Mul(self, dinv), Transpose(dinv));
}

CsrMatrix NormalizeAdjacencyCsr(const Graph& graph) {
  return GcnNormalizeCsr(graph.CsrAdjacency());
}

CsrMatrix ApplyEdgeFlips(const CsrMatrix& adjacency,
                         const std::vector<Edge>& added,
                         const std::vector<Edge>& removed) {
  GEA_CHECK(!adjacency.empty());
  GEA_CHECK(adjacency.rows() == adjacency.cols());
  const CsrPattern& p = *adjacency.pattern();
  const int64_t n = p.rows;

  // Expand the undirected flips into per-row sorted directed entry lists.
  auto expand = [n](const std::vector<Edge>& edges) {
    std::vector<std::pair<int64_t, int64_t>> dir;
    dir.reserve(edges.size() * 2);
    for (const Edge& e : edges) {
      GEA_CHECK(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n && e.u != e.v);
      dir.emplace_back(e.u, e.v);
      dir.emplace_back(e.v, e.u);
    }
    std::sort(dir.begin(), dir.end());
    // A repeated undirected edge would silently emit duplicate CSR columns.
    GEA_CHECK(std::adjacent_find(dir.begin(), dir.end()) == dir.end());
    return dir;
  };
  const auto add_dir = expand(added);
  const auto rem_dir = expand(removed);

  auto out = std::make_shared<CsrPattern>();
  out->rows = out->cols = n;
  out->row_ptr.reserve(ZU(n) + 1);
  out->row_ptr.push_back(0);
  out->col_idx.reserve(p.col_idx.size() + add_dir.size());
  std::vector<double> values;
  values.reserve(p.col_idx.size() + add_dir.size());

  size_t ai = 0, ri = 0;
  for (int64_t i = 0; i < n; ++i) {
    int64_t e = p.row_ptr[ZU(i)];
    const int64_t e_end = p.row_ptr[ZU(i + 1)];
    // Merge the existing row with this row's additions; drop removals.
    while (e < e_end || (ai < add_dir.size() && add_dir[ai].first == i)) {
      const bool take_add =
          ai < add_dir.size() && add_dir[ai].first == i &&
          (e >= e_end || add_dir[ai].second < p.col_idx[ZU(e)]);
      if (take_add) {
        out->col_idx.push_back(add_dir[ai].second);
        values.push_back(1.0);
        ++ai;
        continue;
      }
      const int64_t j = p.col_idx[ZU(e)];
      GEA_CHECK(!(ai < add_dir.size() && add_dir[ai].first == i &&
                  add_dir[ai].second == j));  // Added edge already present.
      if (ri < rem_dir.size() && rem_dir[ri].first == i &&
          rem_dir[ri].second == j) {
        ++ri;  // Removed: skip the entry.
      } else {
        out->col_idx.push_back(j);
        values.push_back(adjacency.values()[ZU(e)]);
      }
      ++e;
    }
    out->row_ptr.push_back(static_cast<int64_t>(out->col_idx.size()));
  }
  GEA_CHECK(ai == add_dir.size());  // Every addition landed in some row.
  GEA_CHECK(ri == rem_dir.size());  // Every removal matched an entry.
  return CsrMatrix(std::move(out), std::move(values));
}

CsrMatrix GcnRenormalizeAfterAdds(const CsrMatrix& norm_adjacency,
                                  const Tensor& degp1,
                                  const std::vector<Edge>& added) {
  GEA_CHECK(!norm_adjacency.empty());
  const int64_t n = norm_adjacency.rows();
  GEA_CHECK(degp1.rows() == n && degp1.cols() == 1);
  if (added.empty()) return norm_adjacency;

  // Per-node degree deltas from the additions.
  std::vector<int64_t> delta(ZU(n), 0);
  for (const Edge& e : added) {
    ++delta[ZU(e.u)];
    ++delta[ZU(e.v)];
  }

  // Merge the new slots in.  Seeding them with 1/√(d̃_u·d̃_v) of the *old*
  // degrees lets the uniform rescaling pass below finish the job for old
  // and new entries alike.
  CsrMatrix out = ApplyEdgeFlips(norm_adjacency, added, /*removed=*/{});
  const CsrPattern& p = *out.pattern();
  std::vector<double>& val = out.mutable_values();
  auto entry_of = [&p](int64_t r, int64_t c) {
    const int64_t lo = p.row_ptr[ZU(r)], hi = p.row_ptr[ZU(r + 1)];
    const auto it = std::lower_bound(p.col_idx.begin() + lo,
                                     p.col_idx.begin() + hi, c);
    GEA_CHECK(it != p.col_idx.begin() + hi && *it == c);
    return static_cast<int64_t>(it - p.col_idx.begin());
  };
  for (const Edge& e : added) {
    const double seed = 1.0 / std::sqrt(degp1.at(e.u, 0) * degp1.at(e.v, 0));
    val[ZU(entry_of(e.u, e.v))] = seed;
    val[ZU(entry_of(e.v, e.u))] = seed;
  }

  // Rescale every entry incident to a touched node i by
  // f_i = √(d̃_i / (d̃_i + δ_i)) — once from the row side, once from the
  // column side, so (i, j) with both endpoints touched gets f_i·f_j and the
  // diagonal gets f_i².
  for (int64_t i = 0; i < n; ++i) {
    if (delta[ZU(i)] == 0) continue;
    const double f = std::sqrt(
        degp1.at(i, 0) /
        (degp1.at(i, 0) + static_cast<double>(delta[ZU(i)])));
    for (int64_t e = p.row_ptr[ZU(i)]; e < p.row_ptr[ZU(i + 1)]; ++e) {
      val[ZU(e)] *= f;
      val[ZU(entry_of(p.col_idx[ZU(e)], i))] *= f;
    }
  }
  return out;
}

CsrMatrix GcnRenormalizeAfterFlips(const CsrMatrix& norm_adjacency,
                                   const Tensor& degp1,
                                   const std::vector<Edge>& added,
                                   const std::vector<Edge>& removed) {
  GEA_CHECK(!norm_adjacency.empty());
  GEA_CHECK(norm_adjacency.rows() == norm_adjacency.cols());
  const int64_t n = norm_adjacency.rows();
  GEA_CHECK(degp1.rows() == n && degp1.cols() == 1);
  if (added.empty() && removed.empty()) return norm_adjacency;

  std::vector<int64_t> delta(ZU(n), 0);
  for (const Edge& e : added) {
    ++delta[ZU(e.u)];
    ++delta[ZU(e.v)];
  }
  for (const Edge& e : removed) {
    --delta[ZU(e.u)];
    --delta[ZU(e.v)];
  }

  // New d̃^{-1/2} for every node.  Integer-valued doubles: degp1 + delta is
  // exact, so untouched nodes reproduce their old dinv bit-for-bit and
  // touched nodes get exactly what GcnNormalizeCsr would compute.
  std::vector<double> dinv(ZU(n));
  for (int64_t i = 0; i < n; ++i) {
    const double d = degp1.at(i, 0) + static_cast<double>(delta[ZU(i)]);
    GEA_CHECK(d >= 1.0);  // Removals may not take a node below its self loop.
    dinv[ZU(i)] = 1.0 / std::sqrt(d);
  }

  // Merge the pattern (removals drop entries, adds insert them; Ã's pattern
  // is A + I, and flips are off-diagonal, so this lands exactly on the
  // churned graph's A' + I pattern), then recompute all touched values.
  CsrMatrix out = ApplyEdgeFlips(norm_adjacency, added, removed);
  const CsrPattern& p = *out.pattern();
  std::vector<double>& val = out.mutable_values();
  auto entry_of = [&p](int64_t r, int64_t c) {
    const int64_t lo = p.row_ptr[ZU(r)], hi = p.row_ptr[ZU(r + 1)];
    const auto it = std::lower_bound(p.col_idx.begin() + lo,
                                     p.col_idx.begin() + hi, c);
    GEA_CHECK(it != p.col_idx.begin() + hi && *it == c);
    return static_cast<int64_t>(it - p.col_idx.begin());
  };
  for (int64_t i = 0; i < n; ++i) {
    if (delta[ZU(i)] == 0) continue;
    const double di = dinv[ZU(i)];
    for (int64_t e = p.row_ptr[ZU(i)]; e < p.row_ptr[ZU(i + 1)]; ++e) {
      const int64_t j = p.col_idx[ZU(e)];
      const double v = di * dinv[ZU(j)];
      val[ZU(e)] = v;
      val[ZU(entry_of(j, i))] = v;
    }
  }
  return out;
}

}  // namespace geattack
