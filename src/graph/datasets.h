// Dataset presets mirroring the paper's benchmarks (Table 3).
//
// Each preset configures the synthetic citation-graph generator
// (src/graph/generators.h) to match the published largest-connected-
// component statistics of CITESEER, CORA and ACM.  A `scale` in (0,1]
// shrinks node/edge/feature counts proportionally for fast benchmarks; the
// class counts and structural ratios (edge density, homophily) are
// preserved so that relative results carry over.

#ifndef GEATTACK_SRC_GRAPH_DATASETS_H_
#define GEATTACK_SRC_GRAPH_DATASETS_H_

#include <string>

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/tensor/random.h"

namespace geattack {

/// The paper's three benchmark datasets.
enum class DatasetId { kCiteseer, kCora, kAcm };

/// Display name, e.g. "CITESEER".
std::string DatasetName(DatasetId id);

/// Published LCC statistics (Table 3) used to calibrate generator presets.
struct DatasetStats {
  int64_t nodes;
  int64_t edges;
  int64_t classes;
  int64_t features;
};

/// Paper-reported statistics for `id`.
DatasetStats PaperStats(DatasetId id);

/// Generator configuration matched to `id`, shrunk by `scale` in (0,1].
CitationGraphConfig PresetConfig(DatasetId id, double scale);

/// Generates the synthetic stand-in for `id` at `scale`, keeping the
/// largest connected component (the paper's preprocessing).
GraphData MakeDataset(DatasetId id, double scale, Rng* rng);

/// Reads the bench scale from the GEATTACK_BENCH_SCALE environment variable
/// (default `fallback`; clamped to (0, 1]).
double BenchScaleFromEnv(double fallback);

}  // namespace geattack

#endif  // GEATTACK_SRC_GRAPH_DATASETS_H_
