#include "src/graph/datasets.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace geattack {

std::string DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kCiteseer:
      return "CITESEER";
    case DatasetId::kCora:
      return "CORA";
    case DatasetId::kAcm:
      return "ACM";
  }
  return "UNKNOWN";
}

DatasetStats PaperStats(DatasetId id) {
  // Table 3 of the paper (largest connected component).
  switch (id) {
    case DatasetId::kCiteseer:
      return {2110, 3668, 6, 3703};
    case DatasetId::kCora:
      return {2485, 5069, 7, 1433};
    case DatasetId::kAcm:
      return {3025, 13128, 3, 1870};
  }
  return {0, 0, 0, 0};
}

CitationGraphConfig PresetConfig(DatasetId id, double scale) {
  GEA_CHECK(scale > 0.0 && scale <= 1.0);
  const DatasetStats stats = PaperStats(id);
  CitationGraphConfig cfg;
  cfg.num_nodes = std::max<int64_t>(
      stats.classes * 8,
      std::llround(static_cast<double>(stats.nodes) * scale));
  cfg.num_edges = std::max<int64_t>(
      cfg.num_nodes, std::llround(static_cast<double>(stats.edges) * scale));
  cfg.num_classes = stats.classes;
  // Feature dimensionality shrinks sub-linearly: informativeness matters,
  // raw width only costs time.
  cfg.feature_dim = std::max<int64_t>(
      stats.classes * 16,
      std::llround(static_cast<double>(stats.features) * std::sqrt(scale)));
  cfg.homophily = 0.8;
  switch (id) {
    case DatasetId::kCiteseer:
      cfg.topic_on_prob = 0.35;
      break;
    case DatasetId::kCora:
      cfg.topic_on_prob = 0.4;
      break;
    case DatasetId::kAcm:
      // Denser co-authorship graph, fewer classes, slightly noisier text.
      cfg.homophily = 0.75;
      cfg.topic_on_prob = 0.45;
      cfg.background_on_prob = 0.02;
      break;
  }
  return cfg;
}

GraphData MakeDataset(DatasetId id, double scale, Rng* rng) {
  const CitationGraphConfig cfg = PresetConfig(id, scale);
  GraphData data = GenerateCitationGraph(cfg, rng);
  return KeepLargestConnectedComponent(data);
}

double BenchScaleFromEnv(double fallback) {
  const char* env = std::getenv("GEATTACK_BENCH_SCALE");
  if (env == nullptr) return fallback;
  const double v = std::atof(env);
  if (v <= 0.0) return fallback;
  return std::min(v, 1.0);
}

}  // namespace geattack
