// Undirected graph representation and GCN normalization.
//
// Graphs are simple (no self loops, no multi-edges) and undirected, matching
// the paper's setting.  Adjacency-list storage backs the structural queries
// (degrees, neighborhoods, connected components); dense Tensor views are
// produced on demand for the models and attacks.

#ifndef GEATTACK_SRC_GRAPH_GRAPH_H_
#define GEATTACK_SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "src/tensor/autodiff.h"
#include "src/tensor/csr.h"
#include "src/tensor/tensor.h"

namespace geattack {

/// An undirected edge with u < v canonical ordering.
struct Edge {
  int64_t u = 0;
  int64_t v = 0;

  Edge() = default;
  Edge(int64_t a, int64_t b) : u(a < b ? a : b), v(a < b ? b : a) {}

  bool operator==(const Edge& o) const { return u == o.u && v == o.v; }
  bool operator<(const Edge& o) const {
    return u != o.u ? u < o.u : v < o.v;
  }
};

/// Simple undirected graph.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int64_t num_nodes);

  /// Builds a graph from a dense symmetric 0/1 adjacency matrix; entries
  /// > 0.5 are edges, the diagonal is ignored.
  static Graph FromDense(const Tensor& adjacency);

  int64_t num_nodes() const { return static_cast<int64_t>(adj_.size()); }
  int64_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge (u,v).  Returns false if it already exists or
  /// u == v.
  bool AddEdge(int64_t u, int64_t v);
  /// Removes the undirected edge (u,v).  Returns false if absent.
  bool RemoveEdge(int64_t u, int64_t v);
  bool HasEdge(int64_t u, int64_t v) const;

  int64_t Degree(int64_t u) const;
  /// Sorted neighbor set of u.
  const std::set<int64_t>& Neighbors(int64_t u) const;

  /// All edges in canonical (u < v) order.
  std::vector<Edge> Edges() const;

  /// Dense symmetric adjacency matrix with zero diagonal.
  Tensor DenseAdjacency() const;

  /// Sparse CSR adjacency (symmetric, zero diagonal, all stored values 1.0).
  /// O(n + |E|); the adjacency sets are already sorted so no sort is needed.
  CsrMatrix CsrAdjacency() const;

  /// Nodes within `hops` hops of `center` (including it) — the GCN
  /// computation graph that explainers operate on.
  std::vector<int64_t> KHopNeighborhood(int64_t center, int hops) const;

  /// Connected component ids (0-based, by discovery) per node.
  std::vector<int64_t> ConnectedComponents() const;

  /// Extracts the largest connected component.  `mapping` (optional out)
  /// receives, for each new node id, the original node id.
  Graph LargestConnectedComponent(std::vector<int64_t>* mapping = nullptr)
      const;

  /// True if symmetric-by-construction invariants hold (debug helper).
  bool CheckInvariants() const;

 private:
  std::vector<std::set<int64_t>> adj_;
  int64_t num_edges_ = 0;
};

/// GCN normalization of a dense adjacency: Ã = D̃^{-1/2} (A + I) D̃^{-1/2}
/// with D̃ the degree matrix of A + I (Kipf & Welling).  Non-differentiable
/// fast path used when the graph is fixed.
Tensor NormalizeAdjacency(const Tensor& adjacency);

/// Differentiable GCN normalization on the autodiff graph; used when
/// attacking (gradients w.r.t. the adjacency) and when explaining
/// (gradients w.r.t. the mask).
Var NormalizeAdjacencyVar(const Var& adjacency);

/// Sparse twin of NormalizeAdjacency: Ã in CSR form, built in O(n + |E|)
/// without ever materializing a dense matrix.  The fast path for training
/// and inference on large graphs.
CsrMatrix NormalizeAdjacencyCsr(const Graph& graph);

/// Applies a set of undirected edge flips to a symmetric CSR adjacency in a
/// single merge pass, O(nnz + k·log k + n) for k flips — the incremental
/// update attack loops use instead of rebuilding from the Graph.  Edges in
/// `added` are written symmetrically with value 1.0 (must be absent from
/// `adjacency`); edges in `removed` are deleted (must be present).
CsrMatrix ApplyEdgeFlips(const CsrMatrix& adjacency,
                         const std::vector<Edge>& added,
                         const std::vector<Edge>& removed);

/// Incremental GCN re-normalization after edge additions: given the
/// *normalized* adjacency Ã of the current graph and its d̃ = degree + 1
/// per node, returns Ã of (A + added).  Only entries incident to a touched
/// node are recomputed — the merge copies the pattern and then rescales
/// O(Σ_{touched} deg) values in place, versus GcnNormalizeCsr's full
/// O(n + nnz) rebuild plus a CSR construction of the raw adjacency.  The
/// eval pipeline reuses one normalized clean CSR across all targets this
/// way.  `added` edges must be absent; repeated endpoints are fine.
CsrMatrix GcnRenormalizeAfterAdds(const CsrMatrix& norm_adjacency,
                                  const Tensor& degp1,
                                  const std::vector<Edge>& added);

/// General incremental GCN re-normalization over an edge-flip batch (adds
/// AND removals): given Ã of the current 0/1 graph and its d̃ = degree + 1,
/// returns Ã of (A + added − removed).  Unlike GcnRenormalizeAfterAdds'
/// rescale-in-place, every entry incident to a touched node is *recomputed*
/// from the new degrees with exactly GcnNormalizeCsr's per-entry expression
/// (all underlying adjacency values are 1.0, and d̃ is an exact small
/// integer in a double), so the result is bit-identical to
/// GcnNormalizeCsr(churned.CsrAdjacency()) — the property that lets a live
/// snapshot built incrementally epoch over epoch stand in for a fresh
/// context without perturbing any attacker's picks.  `added` edges must be
/// absent, `removed` edges present, and no removal may empty a node past
/// d̃ = 1 (the self loop).  O(n + nnz + Σ_touched deg·log deg).
CsrMatrix GcnRenormalizeAfterFlips(const CsrMatrix& norm_adjacency,
                                   const Tensor& degp1,
                                   const std::vector<Edge>& added,
                                   const std::vector<Edge>& removed);

/// Attributed graph with node labels: the unit of work for every
/// experiment.  `labels[i]` in [0, num_classes).
struct GraphData {
  Graph graph;
  Tensor features;            // num_nodes x feature_dim.
  std::vector<int64_t> labels;
  int64_t num_classes = 0;

  int64_t num_nodes() const { return graph.num_nodes(); }
  int64_t feature_dim() const { return features.cols(); }
};

/// Train/validation/test node index split.
struct Split {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_GRAPH_GRAPH_H_
