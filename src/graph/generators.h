// Synthetic attributed-graph generators.
//
// The paper evaluates on CITESEER, CORA and ACM — downloads this offline
// environment does not have.  DESIGN.md §3 documents the substitution: a
// degree-corrected stochastic-block-model (DC-SBM) citation-graph generator
// with class-conditional bag-of-words features reproduces the structural
// properties the paper's claims rest on (sparsity, homophily, heavy-tailed
// degrees, informative sparse features) so that a 2-layer GCN trains to high
// accuracy and the attack/explanation code paths behave as on the real data.

#ifndef GEATTACK_SRC_GRAPH_GENERATORS_H_
#define GEATTACK_SRC_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/graph.h"
#include "src/tensor/random.h"

namespace geattack {

/// Configuration of the DC-SBM citation-graph generator.
struct CitationGraphConfig {
  int64_t num_nodes = 500;
  int64_t num_edges = 1000;      ///< Target undirected edge count.
  int64_t num_classes = 5;
  int64_t feature_dim = 200;

  /// Fraction of edges that connect same-class endpoints.  Citation graphs
  /// are strongly homophilous (~0.8 for CORA/CITESEER).
  double homophily = 0.8;

  /// Pareto shape for the degree propensities; smaller = heavier tail.
  double degree_exponent = 2.5;

  /// Number of "topic words" characteristic for each class.
  int64_t words_per_class = 24;
  /// Probability a node switches on one of its class's topic words.
  double topic_on_prob = 0.4;
  /// Probability a node switches on any other (background) word.
  double background_on_prob = 0.012;
};

/// Generates an attributed homophilous graph per `config`.  Node labels are
/// balanced; features are binary bag-of-words.  Deterministic given `rng`'s
/// state.
GraphData GenerateCitationGraph(const CitationGraphConfig& config, Rng* rng);

/// Keeps only the largest connected component of `data` (graph, features and
/// labels are re-indexed consistently), mirroring the paper's preprocessing.
GraphData KeepLargestConnectedComponent(const GraphData& data);

/// Random Erdős–Rényi graph (test utility / null model).
Graph GenerateErdosRenyi(int64_t num_nodes, double edge_prob, Rng* rng);

/// 10%/10%/80% train/val/test node split as in the paper (§A.1), stratified
/// per class so every class appears in training.
Split MakeSplit(const GraphData& data, double train_frac, double val_frac,
                Rng* rng);

}  // namespace geattack

#endif  // GEATTACK_SRC_GRAPH_GENERATORS_H_
