// Plain-text serialization for graphs, datasets and model weights.
//
// Formats are deliberately simple line-oriented text so experiment
// artifacts (generated datasets, trained victims, attacked graphs) can be
// saved, diffed and re-loaded across runs without any binary dependency.
//
//   GraphData ("geadata v1"): header line, then labels, edge list, and the
//   sparse non-zeros of the feature matrix.
//   Gcn weights ("geagcn v1"): dims header then row-major weight values.
//
// Failure semantics: the loaders never trust the bytes.  Malformed input —
// bad magic, truncated file, bad counts, out-of-range node ids or labels,
// self-loop/duplicate edges, non-finite features or weights — yields a
// kDataLoss Status with a specific message instead of UB or an abort, so a
// service loading a 1M-node artifact can report the file rather than die.
// `*data` / `*model` are unspecified on failure.

#ifndef GEATTACK_SRC_GRAPH_IO_H_
#define GEATTACK_SRC_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "src/base/status.h"
#include "src/graph/graph.h"
#include "src/nn/gcn.h"

namespace geattack {

/// Writes `data` to `os`.  Fails with kError on stream failure.
Status SaveGraphData(const GraphData& data, std::ostream& os);
/// Reads a GraphData written by SaveGraphData (structured errors above).
Status LoadGraphData(std::istream& is, GraphData* data);

/// File-path convenience wrappers; add the path to open-failure messages.
Status SaveGraphDataToFile(const GraphData& data, const std::string& path);
Status LoadGraphDataFromFile(const std::string& path, GraphData* data);

/// Writes the trained weights (architecture dims + W1, W2).
Status SaveGcn(const Gcn& model, std::ostream& os);
/// Reads weights written by SaveGcn into a freshly constructed model.
/// Fails with kDataLoss on parse failure, architecture mismatch, or
/// non-finite weight values.
Status LoadGcn(std::istream& is, Gcn* model);

Status SaveGcnToFile(const Gcn& model, const std::string& path);
Status LoadGcnFromFile(const std::string& path, Gcn* model);

}  // namespace geattack

#endif  // GEATTACK_SRC_GRAPH_IO_H_
