// Plain-text serialization for graphs, datasets and model weights.
//
// Formats are deliberately simple line-oriented text so experiment
// artifacts (generated datasets, trained victims, attacked graphs) can be
// saved, diffed and re-loaded across runs without any binary dependency.
//
//   GraphData ("geadata v1"): header line, then labels, edge list, and the
//   sparse non-zeros of the feature matrix.
//   Gcn weights ("geagcn v1"): dims header then row-major weight values.

#ifndef GEATTACK_SRC_GRAPH_IO_H_
#define GEATTACK_SRC_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "src/graph/graph.h"
#include "src/nn/gcn.h"

namespace geattack {

/// Writes `data` to `os`.  Returns false on stream failure.
bool SaveGraphData(const GraphData& data, std::ostream& os);
/// Reads a GraphData written by SaveGraphData.  Returns false on parse or
/// stream failure; `*data` is unspecified on failure.
bool LoadGraphData(std::istream& is, GraphData* data);

/// File-path convenience wrappers.
bool SaveGraphDataToFile(const GraphData& data, const std::string& path);
bool LoadGraphDataFromFile(const std::string& path, GraphData* data);

/// Writes the trained weights (architecture dims + W1, W2).
bool SaveGcn(const Gcn& model, std::ostream& os);
/// Reads weights written by SaveGcn into a freshly constructed model.
/// Returns false on parse failure or architecture mismatch markers.
bool LoadGcn(std::istream& is, Gcn* model);

bool SaveGcnToFile(const Gcn& model, const std::string& path);
bool LoadGcnFromFile(const std::string& path, Gcn* model);

}  // namespace geattack

#endif  // GEATTACK_SRC_GRAPH_IO_H_
