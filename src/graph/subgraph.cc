#include "src/graph/subgraph.h"

#include <algorithm>
#include <queue>

namespace geattack {

namespace {

/// CSR with at most one unit entry per row: row r carries a 1.0 at column
/// col_of_row[r], or nothing when col_of_row[r] < 0.
std::shared_ptr<const CsrMatrix> UnitSelector(
    int64_t rows, int64_t cols, const std::vector<int64_t>& col_of_row) {
  auto p = std::make_shared<CsrPattern>();
  p->rows = rows;
  p->cols = cols;
  p->row_ptr.reserve(static_cast<size_t>(rows) + 1);
  p->row_ptr.push_back(0);
  for (int64_t r = 0; r < rows; ++r) {
    if (col_of_row[static_cast<size_t>(r)] >= 0)
      p->col_idx.push_back(col_of_row[static_cast<size_t>(r)]);
    p->row_ptr.push_back(static_cast<int64_t>(p->col_idx.size()));
  }
  std::vector<double> values(p->col_idx.size(), 1.0);
  return std::make_shared<const CsrMatrix>(std::move(p), std::move(values));
}

}  // namespace

int64_t SubgraphView::EdgeSlot(int64_t u_local, int64_t v_local) const {
  if (u_local == v_local) return -1;
  const IndexPair key{std::min(u_local, v_local), std::max(u_local, v_local)};
  const auto it = std::lower_bound(
      edges_local.begin(), edges_local.end(), key,
      [](const IndexPair& a, const IndexPair& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      });
  if (it != edges_local.end() && it->u == key.u && it->v == key.v)
    return static_cast<int64_t>(it - edges_local.begin());
  // Candidate edges are all (target, c); scan the candidate block.
  if (key.u == target_local || key.v == target_local) {
    const int64_t other = key.u == target_local ? key.v : key.u;
    for (size_t k = 0; k < candidates_local.size(); ++k)
      if (candidates_local[k] == other)
        return num_edges() + static_cast<int64_t>(k);
  }
  return -1;
}

SubgraphView BuildSubgraphView(
    const Graph& graph, int64_t target, int hops,
    const std::vector<int64_t>& candidates_global) {
  const int64_t n = graph.num_nodes();
  GEA_CHECK(target >= 0 && target < n);
  for (int64_t c : candidates_global) {
    GEA_CHECK(c >= 0 && c < n && c != target);
    GEA_CHECK(!graph.HasEdge(target, c));
  }

  SubgraphView view;
  view.candidates_global = candidates_global;
  view.global_to_local.assign(static_cast<size_t>(n), -1);

  // ----- Node set: hops-hop ball around the target in the augmented graph
  // (the candidate edges put every candidate at distance 1). -----
  if (hops < 0) {
    view.nodes.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) view.nodes[static_cast<size_t>(i)] = i;
  } else {
    std::vector<int> dist(static_cast<size_t>(n), -1);
    std::queue<int64_t> q;
    dist[static_cast<size_t>(target)] = 0;
    q.push(target);
    if (hops >= 1) {
      for (int64_t c : candidates_global) {
        if (dist[static_cast<size_t>(c)] < 0) {
          dist[static_cast<size_t>(c)] = 1;
          q.push(c);
        }
      }
    }
    while (!q.empty()) {
      const int64_t u = q.front();
      q.pop();
      if (dist[static_cast<size_t>(u)] >= hops) continue;
      for (int64_t w : graph.Neighbors(u)) {
        if (dist[static_cast<size_t>(w)] < 0) {
          dist[static_cast<size_t>(w)] = dist[static_cast<size_t>(u)] + 1;
          q.push(w);
        }
      }
    }
    for (int64_t i = 0; i < n; ++i)
      if (dist[static_cast<size_t>(i)] >= 0) view.nodes.push_back(i);
  }
  for (size_t l = 0; l < view.nodes.size(); ++l)
    view.global_to_local[static_cast<size_t>(view.nodes[l])] =
        static_cast<int64_t>(l);
  view.target_local = view.global_to_local[static_cast<size_t>(target)];
  const int64_t ns = view.num_nodes();

  view.candidates_local.reserve(candidates_global.size());
  for (int64_t c : candidates_global) {
    const int64_t lc = view.global_to_local[static_cast<size_t>(c)];
    GEA_CHECK(lc >= 0);  // Candidates are in the ball by construction.
    view.candidates_local.push_back(lc);
  }
  const int64_t m = view.num_candidates();

  // ----- Induced clean edges and out-degrees. -----
  view.out_degree = Tensor(ns, 1);
  for (int64_t l = 0; l < ns; ++l) {
    const int64_t g = view.nodes[static_cast<size_t>(l)];
    int64_t internal = 0;
    for (int64_t w : graph.Neighbors(g)) {
      const int64_t lw = view.global_to_local[static_cast<size_t>(w)];
      if (lw < 0) continue;
      ++internal;
      if (l < lw) view.edges_local.push_back({l, lw});
    }
    view.out_degree.at(l, 0) =
        static_cast<double>(graph.Degree(g) - internal);
  }
  // edges_local is already canonical-sorted: outer loop ascends l and
  // Neighbors() is an ordered set, so (l, lw) pairs with l < lw come out in
  // (u, v) lexicographic order.
  const int64_t num_edges = view.num_edges();
  const int64_t num_slots = num_edges + m;

  // ----- Augmented pattern: per-row sorted columns. -----
  std::vector<std::vector<int64_t>> rows(static_cast<size_t>(ns));
  for (int64_t l = 0; l < ns; ++l) rows[static_cast<size_t>(l)].push_back(l);
  for (const IndexPair& e : view.edges_local) {
    rows[static_cast<size_t>(e.u)].push_back(e.v);
    rows[static_cast<size_t>(e.v)].push_back(e.u);
  }
  for (int64_t lc : view.candidates_local) {
    rows[static_cast<size_t>(view.target_local)].push_back(lc);
    rows[static_cast<size_t>(lc)].push_back(view.target_local);
  }
  auto pattern = std::make_shared<CsrPattern>();
  pattern->rows = pattern->cols = ns;
  pattern->row_ptr.reserve(static_cast<size_t>(ns) + 1);
  pattern->row_ptr.push_back(0);
  for (int64_t l = 0; l < ns; ++l) {
    auto& row = rows[static_cast<size_t>(l)];
    std::sort(row.begin(), row.end());
    pattern->col_idx.insert(pattern->col_idx.end(), row.begin(), row.end());
    pattern->row_ptr.push_back(static_cast<int64_t>(pattern->col_idx.size()));
  }
  const int64_t nnz = pattern->nnz();

  // ----- Slot bookkeeping: classify every nnz position. -----
  // slot_of_local_pair: for (u,v) with u < v, the undirected slot id.
  view.slot_nnz.assign(static_cast<size_t>(num_slots), {-1, -1});
  view.diag_nnz.assign(static_cast<size_t>(ns), -1);
  std::vector<int64_t> slot_of_nnz(static_cast<size_t>(nnz), -1);
  std::vector<int64_t> cand_of_nnz(static_cast<size_t>(nnz), -1);
  // Candidate lookup for rows incident to the target.
  std::vector<int64_t> cand_index_of_local(static_cast<size_t>(ns), -1);
  for (int64_t k = 0; k < m; ++k)
    cand_index_of_local[static_cast<size_t>(view.candidates_local[k])] = k;

  // Walk rows, resolving each (i, j) to diag / clean-edge / candidate.
  // Clean-edge slot ids are recovered by the same lexicographic order used
  // to emit edges_local.
  {
    // Map canonical pair -> slot via binary search on edges_local.
    auto edge_slot = [&view](int64_t u, int64_t v) {
      const IndexPair key{std::min(u, v), std::max(u, v)};
      const auto it = std::lower_bound(
          view.edges_local.begin(), view.edges_local.end(), key,
          [](const IndexPair& a, const IndexPair& b) {
            return a.u != b.u ? a.u < b.u : a.v < b.v;
          });
      GEA_CHECK(it != view.edges_local.end() && it->u == key.u &&
                it->v == key.v);
      return static_cast<int64_t>(it - view.edges_local.begin());
    };
    for (int64_t i = 0; i < ns; ++i) {
      for (int64_t e = pattern->row_ptr[i]; e < pattern->row_ptr[i + 1];
           ++e) {
        const int64_t j = pattern->col_idx[e];
        if (i == j) {
          view.diag_nnz[static_cast<size_t>(i)] = e;
          continue;
        }
        int64_t slot;
        const bool target_row = i == view.target_local ||
                                j == view.target_local;
        const int64_t other = i == view.target_local ? j : i;
        const int64_t cand =
            target_row ? cand_index_of_local[static_cast<size_t>(other)] : -1;
        if (cand >= 0) {
          slot = num_edges + cand;
          cand_of_nnz[static_cast<size_t>(e)] = cand;
        } else {
          slot = edge_slot(i, j);
        }
        slot_of_nnz[static_cast<size_t>(e)] = slot;
        auto& pair = view.slot_nnz[static_cast<size_t>(slot)];
        (pair.first < 0 ? pair.first : pair.second) = e;
      }
    }
  }

  // ----- Base values. -----
  view.base_values = Tensor(nnz, 1);
  for (int64_t e = 0; e < nnz; ++e) {
    const int64_t slot = slot_of_nnz[static_cast<size_t>(e)];
    view.base_values.at(e, 0) =
        (slot < 0 /* diag */ || slot < num_edges) ? 1.0 : 0.0;
  }
  view.und_base = Tensor(num_slots, 1);
  for (int64_t s = 0; s < num_edges; ++s) view.und_base.at(s, 0) = 1.0;

  // ----- Constant operators. -----
  view.slot_expand = UnitSelector(nnz, num_slots, slot_of_nnz);
  view.cand_expand = UnitSelector(nnz, m, cand_of_nnz);
  {
    std::vector<int64_t> pad(static_cast<size_t>(num_slots), -1);
    for (int64_t k = 0; k < m; ++k)
      pad[static_cast<size_t>(num_edges + k)] = k;
    view.cand_slot_pad = UnitSelector(num_slots, m, pad);
    std::vector<int64_t> take(static_cast<size_t>(m));
    for (int64_t k = 0; k < m; ++k)
      take[static_cast<size_t>(k)] = num_edges + k;
    view.cand_slot_take = UnitSelector(m, num_slots, take);
  }

  view.pattern = std::move(pattern);
  return view;
}

}  // namespace geattack
