#include "src/graph/subgraph.h"

#include <algorithm>
#include <queue>

namespace geattack {

namespace {

/// CSR with at most one unit entry per row: row r carries a 1.0 at column
/// col_of_row[r], or nothing when col_of_row[r] < 0.
std::shared_ptr<const CsrMatrix> UnitSelector(
    int64_t rows, int64_t cols, const std::vector<int64_t>& col_of_row) {
  auto p = std::make_shared<CsrPattern>();
  p->rows = rows;
  p->cols = cols;
  p->row_ptr.reserve(ZU(rows) + 1);
  p->row_ptr.push_back(0);
  for (int64_t r = 0; r < rows; ++r) {
    if (col_of_row[ZU(r)] >= 0)
      p->col_idx.push_back(col_of_row[ZU(r)]);
    p->row_ptr.push_back(static_cast<int64_t>(p->col_idx.size()));
  }
  std::vector<double> values(p->col_idx.size(), 1.0);
  return std::make_shared<const CsrMatrix>(std::move(p), std::move(values));
}

}  // namespace

int64_t SubgraphView::EdgeSlot(int64_t u_local, int64_t v_local) const {
  if (u_local == v_local) return -1;
  const IndexPair key{std::min(u_local, v_local), std::max(u_local, v_local)};
  const auto it = std::lower_bound(
      edges_local.begin(), edges_local.end(), key,
      [](const IndexPair& a, const IndexPair& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      });
  if (it != edges_local.end() && it->u == key.u && it->v == key.v)
    return static_cast<int64_t>(it - edges_local.begin());
  // Candidate edges are all (target, c); scan the candidate block.
  if (key.u == target_local || key.v == target_local) {
    const int64_t other = key.u == target_local ? key.v : key.u;
    for (size_t k = 0; k < candidates_local.size(); ++k)
      if (candidates_local[k] == other)
        return num_edges() + static_cast<int64_t>(k);
  }
  return -1;
}

SubgraphView BuildSubgraphView(
    const Graph& graph, int64_t target, int hops,
    const std::vector<int64_t>& candidates_global) {
  const int64_t n = graph.num_nodes();
  GEA_CHECK(target >= 0 && target < n);
  for (int64_t c : candidates_global) {
    GEA_CHECK(c >= 0 && c < n && c != target);
    GEA_CHECK(!graph.HasEdge(target, c));
  }

  SubgraphView view;
  view.candidates_global = candidates_global;
  view.global_to_local.assign(ZU(n), -1);

  // ----- Node set: hops-hop ball around the target in the augmented graph
  // (the candidate edges put every candidate at distance 1). -----
  if (hops < 0) {
    view.nodes.resize(ZU(n));
    for (int64_t i = 0; i < n; ++i) view.nodes[ZU(i)] = i;
  } else {
    std::vector<int> dist(ZU(n), -1);
    std::queue<int64_t> q;
    dist[ZU(target)] = 0;
    q.push(target);
    if (hops >= 1) {
      for (int64_t c : candidates_global) {
        if (dist[ZU(c)] < 0) {
          dist[ZU(c)] = 1;
          q.push(c);
        }
      }
    }
    while (!q.empty()) {
      const int64_t u = q.front();
      q.pop();
      if (dist[ZU(u)] >= hops) continue;
      for (int64_t w : graph.Neighbors(u)) {
        if (dist[ZU(w)] < 0) {
          dist[ZU(w)] = dist[ZU(u)] + 1;
          q.push(w);
        }
      }
    }
    for (int64_t i = 0; i < n; ++i)
      if (dist[ZU(i)] >= 0) view.nodes.push_back(i);
  }
  for (size_t l = 0; l < view.nodes.size(); ++l)
    view.global_to_local[ZU(view.nodes[l])] =
        static_cast<int64_t>(l);
  view.target_local = view.global_to_local[ZU(target)];
  const int64_t ns = view.num_nodes();

  view.candidates_local.reserve(candidates_global.size());
  for (int64_t c : candidates_global) {
    const int64_t lc = view.global_to_local[ZU(c)];
    GEA_CHECK(lc >= 0);  // Candidates are in the ball by construction.
    view.candidates_local.push_back(lc);
  }
  const int64_t m = view.num_candidates();

  // ----- Induced clean edges and out-degrees. -----
  view.out_degree = Tensor(ns, 1);
  for (int64_t l = 0; l < ns; ++l) {
    const int64_t g = view.nodes[ZU(l)];
    int64_t internal = 0;
    for (int64_t w : graph.Neighbors(g)) {
      const int64_t lw = view.global_to_local[ZU(w)];
      if (lw < 0) continue;
      ++internal;
      if (l < lw) view.edges_local.push_back({l, lw});
    }
    view.out_degree.at(l, 0) =
        static_cast<double>(graph.Degree(g) - internal);
  }
  // edges_local is already canonical-sorted: outer loop ascends l and
  // Neighbors() is an ordered set, so (l, lw) pairs with l < lw come out in
  // (u, v) lexicographic order.
  const int64_t num_edges = view.num_edges();
  const int64_t num_slots = num_edges + m;

  // ----- Augmented pattern: per-row sorted columns. -----
  std::vector<std::vector<int64_t>> rows(ZU(ns));
  for (int64_t l = 0; l < ns; ++l) rows[ZU(l)].push_back(l);
  for (const IndexPair& e : view.edges_local) {
    rows[ZU(e.u)].push_back(e.v);
    rows[ZU(e.v)].push_back(e.u);
  }
  for (int64_t lc : view.candidates_local) {
    rows[ZU(view.target_local)].push_back(lc);
    rows[ZU(lc)].push_back(view.target_local);
  }
  auto pattern = std::make_shared<CsrPattern>();
  pattern->rows = pattern->cols = ns;
  pattern->row_ptr.reserve(ZU(ns) + 1);
  pattern->row_ptr.push_back(0);
  for (int64_t l = 0; l < ns; ++l) {
    auto& row = rows[ZU(l)];
    std::sort(row.begin(), row.end());
    pattern->col_idx.insert(pattern->col_idx.end(), row.begin(), row.end());
    pattern->row_ptr.push_back(static_cast<int64_t>(pattern->col_idx.size()));
  }
  const int64_t nnz = pattern->nnz();

  // ----- Slot bookkeeping: classify every nnz position. -----
  // slot_of_local_pair: for (u,v) with u < v, the undirected slot id.
  view.slot_nnz.assign(ZU(num_slots), {-1, -1});
  view.diag_nnz.assign(ZU(ns), -1);
  std::vector<int64_t> slot_of_nnz(ZU(nnz), -1);
  std::vector<int64_t> cand_of_nnz(ZU(nnz), -1);
  // Candidate lookup for rows incident to the target.
  std::vector<int64_t> cand_index_of_local(ZU(ns), -1);
  for (int64_t k = 0; k < m; ++k)
    cand_index_of_local[ZU(view.candidates_local[ZU(k)])] = k;

  // Walk rows, resolving each (i, j) to diag / clean-edge / candidate.
  // Clean-edge slot ids are recovered by the same lexicographic order used
  // to emit edges_local.
  {
    // Map canonical pair -> slot via binary search on edges_local.
    auto edge_slot = [&view](int64_t u, int64_t v) {
      const IndexPair key{std::min(u, v), std::max(u, v)};
      const auto it = std::lower_bound(
          view.edges_local.begin(), view.edges_local.end(), key,
          [](const IndexPair& a, const IndexPair& b) {
            return a.u != b.u ? a.u < b.u : a.v < b.v;
          });
      GEA_CHECK(it != view.edges_local.end() && it->u == key.u &&
                it->v == key.v);
      return static_cast<int64_t>(it - view.edges_local.begin());
    };
    for (int64_t i = 0; i < ns; ++i) {
      for (int64_t e = pattern->row_ptr[ZU(i)]; e < pattern->row_ptr[ZU(i + 1)];
           ++e) {
        const int64_t j = pattern->col_idx[ZU(e)];
        if (i == j) {
          view.diag_nnz[ZU(i)] = e;
          continue;
        }
        int64_t slot;
        const bool target_row = i == view.target_local ||
                                j == view.target_local;
        const int64_t other = i == view.target_local ? j : i;
        const int64_t cand =
            target_row ? cand_index_of_local[ZU(other)] : -1;
        if (cand >= 0) {
          slot = num_edges + cand;
          cand_of_nnz[ZU(e)] = cand;
        } else {
          slot = edge_slot(i, j);
        }
        slot_of_nnz[ZU(e)] = slot;
        auto& pair = view.slot_nnz[ZU(slot)];
        (pair.first < 0 ? pair.first : pair.second) = e;
      }
    }
  }

  // ----- Base values. -----
  view.base_values = Tensor(nnz, 1);
  for (int64_t e = 0; e < nnz; ++e) {
    const int64_t slot = slot_of_nnz[ZU(e)];
    view.base_values.at(e, 0) =
        (slot < 0 /* diag */ || slot < num_edges) ? 1.0 : 0.0;
  }
  view.und_base = Tensor(num_slots, 1);
  for (int64_t s = 0; s < num_edges; ++s) view.und_base.at(s, 0) = 1.0;

  // ----- Constant operators. -----
  view.slot_expand = UnitSelector(nnz, num_slots, slot_of_nnz);
  view.cand_expand = UnitSelector(nnz, m, cand_of_nnz);
  {
    std::vector<int64_t> pad(ZU(num_slots), -1);
    for (int64_t k = 0; k < m; ++k)
      pad[ZU(num_edges + k)] = k;
    view.cand_slot_pad = UnitSelector(num_slots, m, pad);
    std::vector<int64_t> take(ZU(m));
    for (int64_t k = 0; k < m; ++k)
      take[ZU(k)] = num_edges + k;
    view.cand_slot_take = UnitSelector(m, num_slots, take);
  }

  view.pattern = std::move(pattern);
  return view;
}

namespace {

/// Binary search for the canonical pair (min(u,v), max(u,v)) in a
/// lexicographically sorted pair list; -1 when absent.
int64_t FindPair(const std::vector<IndexPair>& pairs, int64_t u, int64_t v) {
  const IndexPair key{std::min(u, v), std::max(u, v)};
  const auto it = std::lower_bound(
      pairs.begin(), pairs.end(), key, [](const IndexPair& a,
                                          const IndexPair& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      });
  if (it != pairs.end() && it->u == key.u && it->v == key.v)
    return static_cast<int64_t>(it - pairs.begin());
  return -1;
}

}  // namespace

std::vector<char> AugmentedBallFlags(
    const Graph& graph, int64_t target, int hops,
    const std::vector<int64_t>& candidates_global) {
  const int64_t n = graph.num_nodes();
  std::vector<char> in_ball(ZU(n), 0);
  if (hops < 0) {
    std::fill(in_ball.begin(), in_ball.end(), 1);
    return in_ball;
  }
  std::vector<int> dist(ZU(n), -1);
  std::queue<int64_t> q;
  dist[ZU(target)] = 0;
  q.push(target);
  if (hops >= 1) {
    for (int64_t c : candidates_global) {
      if (dist[ZU(c)] < 0) {
        dist[ZU(c)] = 1;
        q.push(c);
      }
    }
  }
  while (!q.empty()) {
    const int64_t u = q.front();
    q.pop();
    if (dist[ZU(u)] >= hops) continue;
    for (int64_t w : graph.Neighbors(u)) {
      if (dist[ZU(w)] < 0) {
        dist[ZU(w)] = dist[ZU(u)] + 1;
        q.push(w);
      }
    }
  }
  for (int64_t i = 0; i < n; ++i)
    if (dist[ZU(i)] >= 0) in_ball[ZU(i)] = 1;
  return in_ball;
}

BatchedSubgraphView BuildBatchedSubgraphView(
    const Graph& graph, const std::vector<int64_t>& targets, int hops,
    const std::vector<std::vector<int64_t>>& candidates_global) {
  const int64_t n = graph.num_nodes();
  const int64_t k = static_cast<int64_t>(targets.size());
  GEA_CHECK(k >= 1);
  GEA_CHECK(candidates_global.size() == targets.size());
  for (int64_t t = 0; t < k; ++t) {
    GEA_CHECK(targets[ZU(t)] >= 0 &&
              targets[ZU(t)] < n);
    for (int64_t c : candidates_global[ZU(t)]) {
      GEA_CHECK(c >= 0 && c < n && c != targets[ZU(t)]);
      GEA_CHECK(!graph.HasEdge(targets[ZU(t)], c));
    }
  }

  BatchedSubgraphView bv;
  bv.targets_global = targets;
  bv.global_to_local.assign(ZU(n), -1);

  // ----- Per-target balls and their union. -----
  std::vector<std::vector<char>> ball(ZU(k));
  for (int64_t t = 0; t < k; ++t)
    ball[ZU(t)] =
        AugmentedBallFlags(graph, targets[ZU(t)], hops,
                           candidates_global[ZU(t)]);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t t = 0; t < k; ++t) {
      if (ball[ZU(t)][ZU(i)]) {
        bv.nodes.push_back(i);
        break;
      }
    }
  }
  for (size_t l = 0; l < bv.nodes.size(); ++l)
    bv.global_to_local[ZU(bv.nodes[l])] =
        static_cast<int64_t>(l);
  const int64_t ns = bv.num_nodes();

  // ----- Union induced clean edges, canonical (u < v) local order. -----
  std::vector<IndexPair> union_edges;
  for (int64_t l = 0; l < ns; ++l) {
    const int64_t g = bv.nodes[ZU(l)];
    for (int64_t w : graph.Neighbors(g)) {
      const int64_t lw = bv.global_to_local[ZU(w)];
      if (lw >= 0 && l < lw) union_edges.push_back({l, lw});
    }
  }
  const int64_t num_union_edges = static_cast<int64_t>(union_edges.size());

  // ----- Candidate pairs across every target, deduplicated (two targets
  // proposing the same edge share one slot; their value columns stay
  // independent). -----
  std::vector<IndexPair> cand_pairs;
  for (int64_t t = 0; t < k; ++t) {
    const int64_t tl = bv.global_to_local[ZU(
        targets[ZU(t)])];
    for (int64_t c : candidates_global[ZU(t)]) {
      const int64_t lc = bv.global_to_local[ZU(c)];
      GEA_CHECK(tl >= 0 && lc >= 0);  // In the ball by construction.
      cand_pairs.push_back({std::min(tl, lc), std::max(tl, lc)});
    }
  }
  std::sort(cand_pairs.begin(), cand_pairs.end(),
            [](const IndexPair& a, const IndexPair& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  cand_pairs.erase(std::unique(cand_pairs.begin(), cand_pairs.end(),
                               [](const IndexPair& a, const IndexPair& b) {
                                 return a.u == b.u && a.v == b.v;
                               }),
                   cand_pairs.end());

  // ----- Shared augmented pattern: diag + clean + candidate slots. -----
  std::vector<std::vector<int64_t>> rows(ZU(ns));
  for (int64_t l = 0; l < ns; ++l) rows[ZU(l)].push_back(l);
  for (const IndexPair& e : union_edges) {
    rows[ZU(e.u)].push_back(e.v);
    rows[ZU(e.v)].push_back(e.u);
  }
  for (const IndexPair& e : cand_pairs) {
    rows[ZU(e.u)].push_back(e.v);
    rows[ZU(e.v)].push_back(e.u);
  }
  auto pattern = std::make_shared<CsrPattern>();
  pattern->rows = pattern->cols = ns;
  pattern->row_ptr.reserve(ZU(ns) + 1);
  pattern->row_ptr.push_back(0);
  for (int64_t l = 0; l < ns; ++l) {
    auto& row = rows[ZU(l)];
    std::sort(row.begin(), row.end());
    pattern->col_idx.insert(pattern->col_idx.end(), row.begin(), row.end());
    pattern->row_ptr.push_back(static_cast<int64_t>(pattern->col_idx.size()));
  }
  const int64_t nnz = pattern->nnz();

  // ----- Classify every nnz position: diag / clean edge / candidate. -----
  bv.diag_nnz.assign(ZU(ns), -1);
  std::vector<std::pair<int64_t, int64_t>> edge_nnz(
      ZU(num_union_edges), {-1, -1});
  std::vector<std::pair<int64_t, int64_t>> cand_nnz(cand_pairs.size(),
                                                    {-1, -1});
  std::vector<int64_t> edge_of_nnz(ZU(nnz), -1);
  std::vector<int64_t> cand_pair_of_nnz(ZU(nnz), -1);
  for (int64_t i = 0; i < ns; ++i) {
    for (int64_t e = pattern->row_ptr[ZU(i)];
         e < pattern->row_ptr[ZU(i + 1)]; ++e) {
      const int64_t j = pattern->col_idx[ZU(e)];
      if (i == j) {
        bv.diag_nnz[ZU(i)] = e;
        continue;
      }
      const int64_t cp = FindPair(cand_pairs, i, j);
      if (cp >= 0) {
        cand_pair_of_nnz[ZU(e)] = cp;
        auto& pair = cand_nnz[ZU(cp)];
        (pair.first < 0 ? pair.first : pair.second) = e;
        continue;
      }
      const int64_t eid = FindPair(union_edges, i, j);
      GEA_CHECK(eid >= 0);
      edge_of_nnz[ZU(e)] = eid;
      auto& pair = edge_nnz[ZU(eid)];
      (pair.first < 0 ? pair.first : pair.second) = e;
    }
  }

  // ----- Per-target views over the shared pattern. -----
  bv.per_target.reserve(ZU(k));
  for (int64_t t = 0; t < k; ++t) {
    const std::vector<char>& bt = ball[ZU(t)];
    SubgraphView v;
    v.nodes = bv.nodes;
    v.global_to_local = bv.global_to_local;
    v.target_local = bv.global_to_local[ZU(
        targets[ZU(t)])];
    v.candidates_global = candidates_global[ZU(t)];
    v.candidates_local.reserve(v.candidates_global.size());
    for (int64_t c : v.candidates_global)
      v.candidates_local.push_back(
          bv.global_to_local[ZU(c)]);
    const int64_t m = v.num_candidates();

    // t's in-ball subset of the union edges; because both remaps ascend in
    // global id, the subset keeps the exact slot order of t's standalone
    // view.  edge_slot_of_union[eid] is t's undirected slot, or -1.
    std::vector<int64_t> edge_slot_of_union(
        ZU(num_union_edges), -1);
    for (int64_t eid = 0; eid < num_union_edges; ++eid) {
      const IndexPair& e = union_edges[ZU(eid)];
      const int64_t gu = bv.nodes[ZU(e.u)];
      const int64_t gv = bv.nodes[ZU(e.v)];
      if (bt[ZU(gu)] && bt[ZU(gv)]) {
        edge_slot_of_union[ZU(eid)] =
            static_cast<int64_t>(v.edges_local.size());
        v.edges_local.push_back(e);
      }
    }
    const int64_t num_edges_t = v.num_edges();
    const int64_t num_slots_t = num_edges_t + m;

    // Out-degree column: true-degree correction inside the ball; degree+1
    // outside so zero-valued rows normalize finitely (their entries are all
    // 0, so the value never matters — it only has to be positive).
    v.out_degree = Tensor(ns, 1);
    for (int64_t l = 0; l < ns; ++l) {
      const int64_t g = bv.nodes[ZU(l)];
      if (!bt[ZU(g)]) {
        v.out_degree.at(l, 0) = static_cast<double>(graph.Degree(g)) + 1.0;
        continue;
      }
      int64_t internal = 0;
      for (int64_t w : graph.Neighbors(g))
        if (bt[ZU(w)]) ++internal;
      v.out_degree.at(l, 0) =
          static_cast<double>(graph.Degree(g) - internal);
    }

    // Value-level masking: 1.0 only on t's own clean-edge and diagonal
    // slots.
    std::vector<int64_t> slot_of_nnz(ZU(nnz), -1);
    std::vector<int64_t> cand_of_nnz(ZU(nnz), -1);
    std::vector<int64_t> cand_index_of_local(ZU(ns), -1);
    for (int64_t c = 0; c < m; ++c)
      cand_index_of_local[ZU(
          v.candidates_local[ZU(c)])] = c;

    v.base_values = Tensor(nnz, 1);
    v.slot_nnz.assign(ZU(num_slots_t), {-1, -1});
    for (int64_t eid = 0; eid < num_union_edges; ++eid) {
      const int64_t slot = edge_slot_of_union[ZU(eid)];
      if (slot < 0) continue;
      const auto& pair = edge_nnz[ZU(eid)];
      v.slot_nnz[ZU(slot)] = pair;
      v.base_values.at(pair.first, 0) = 1.0;
      v.base_values.at(pair.second, 0) = 1.0;
      slot_of_nnz[ZU(pair.first)] = slot;
      slot_of_nnz[ZU(pair.second)] = slot;
    }
    for (int64_t c = 0; c < m; ++c) {
      const int64_t cp = FindPair(
          cand_pairs, v.target_local,
          v.candidates_local[ZU(c)]);
      GEA_CHECK(cp >= 0);
      const auto& pair = cand_nnz[ZU(cp)];
      v.slot_nnz[ZU(num_edges_t + c)] = pair;
      slot_of_nnz[ZU(pair.first)] = num_edges_t + c;
      slot_of_nnz[ZU(pair.second)] = num_edges_t + c;
      cand_of_nnz[ZU(pair.first)] = c;
      cand_of_nnz[ZU(pair.second)] = c;
    }
    for (int64_t l = 0; l < ns; ++l) {
      if (!bt[ZU(bv.nodes[ZU(l)])])
        continue;
      const int64_t d = bv.diag_nnz[ZU(l)];
      v.base_values.at(d, 0) = 1.0;
      v.diag_nnz.push_back(d);  // In-ball diagonal positions only.
    }
    v.und_base = Tensor(num_slots_t, 1);
    for (int64_t s = 0; s < num_edges_t; ++s) v.und_base.at(s, 0) = 1.0;

    v.slot_expand = UnitSelector(nnz, num_slots_t, slot_of_nnz);
    v.cand_expand = UnitSelector(nnz, m, cand_of_nnz);
    {
      std::vector<int64_t> pad(ZU(num_slots_t), -1);
      for (int64_t c = 0; c < m; ++c)
        pad[ZU(num_edges_t + c)] = c;
      v.cand_slot_pad = UnitSelector(num_slots_t, m, pad);
      std::vector<int64_t> take(ZU(m));
      for (int64_t c = 0; c < m; ++c)
        take[ZU(c)] = num_edges_t + c;
      v.cand_slot_take = UnitSelector(m, num_slots_t, take);
    }
    v.pattern = pattern;
    bv.per_target.push_back(std::move(v));
  }

  bv.pattern = std::move(pattern);
  return bv;
}

std::vector<std::vector<int64_t>> GroupTargetsBySharedNeighbors(
    const Graph& graph, const std::vector<int64_t>& targets,
    int64_t max_group) {
  const int64_t m = static_cast<int64_t>(targets.size());
  std::vector<std::vector<int64_t>> groups;
  if (max_group <= 1) {
    for (int64_t i = 0; i < m; ++i) groups.push_back({i});
    return groups;
  }
  std::vector<char> used(ZU(m), 0);
  for (int64_t i = 0; i < m; ++i) {
    if (used[ZU(i)]) continue;
    used[ZU(i)] = 1;
    std::vector<int64_t> group{i};
    const auto& ni = graph.Neighbors(targets[ZU(i)]);
    std::vector<std::pair<int64_t, int64_t>> scored;  // (score, index).
    for (int64_t j = i + 1; j < m; ++j) {
      if (used[ZU(j)]) continue;
      int64_t score =
          graph.HasEdge(targets[ZU(i)],
                        targets[ZU(j)]) ||
                  targets[ZU(i)] ==
                      targets[ZU(j)]
              ? 1
              : 0;
      for (int64_t w : graph.Neighbors(targets[ZU(j)]))
        score += ni.count(w) ? 1 : 0;
      if (score > 0) scored.emplace_back(score, j);
    }
    std::sort(scored.begin(), scored.end(),
              [](const std::pair<int64_t, int64_t>& a,
                 const std::pair<int64_t, int64_t>& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
    for (const auto& [score, j] : scored) {
      if (static_cast<int64_t>(group.size()) >= max_group) break;
      group.push_back(j);
      used[ZU(j)] = 1;
    }
    std::sort(group.begin(), group.end());
    groups.push_back(std::move(group));
  }
  return groups;
}

}  // namespace geattack
