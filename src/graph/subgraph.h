// SubgraphView — the candidate-edge extraction layer the sparse attack
// loops run on.
//
// A targeted attack perturbs only edges incident to one node, and a k-layer
// GCN's prediction at that node only depends on its k-hop neighborhood (in
// the *augmented* graph: clean edges plus the candidate add-edges).  This
// module extracts that region once per target and freezes it into a single
// CSR pattern over compact local indices:
//
//   * the induced clean edges,
//   * one self-loop slot per node (the +I of GCN normalization), and
//   * one explicit slot pair per candidate add-edge (target, c).
//
// Because every edge the attack could ever add already has a slot, the
// entire greedy outer loop is values-only: committing a picked edge writes
// 1.0 into its two slots, and no pattern is ever rebuilt.  The view also
// carries the constant slot-expansion operators the differentiable forward
// in src/nn/sparse_forward.h needs (the degree gathers of normalization are
// expressed through the pattern itself by the fused GcnNormValues node), so
// gradients — and the second-order explainer hypergradient — flow through
// candidate-edge *values* instead of dense n x n adjacencies.
//
// With `hops < 0` the view covers every node (local == global up to the
// identity): the sparse forward is then numerically identical to the dense
// path.  With `hops >= 0` the view is the k-hop ball around the target in
// the augmented graph; `out_degree` records, per node, the clean edges left
// outside so that GCN normalization still uses true degrees (boundary edges
// act as unmasked constants — the standard subgraph-explanation
// approximation, exact for the unmasked attack forward whenever
// hops >= the GCN depth).

#ifndef GEATTACK_SRC_GRAPH_SUBGRAPH_H_
#define GEATTACK_SRC_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/graph/graph.h"
#include "src/tensor/autodiff.h"
#include "src/tensor/csr.h"
#include "src/tensor/tensor.h"

namespace geattack {

/// A target's attack-relevant region in compact local indices, with the
/// static augmented CSR pattern and the constant operators of the
/// differentiable candidate-edge path.  Build once per target; share across
/// outer iterations.
struct SubgraphView {
  // ----- Node set. -----
  std::vector<int64_t> nodes;            ///< local -> global id, ascending.
  std::vector<int64_t> global_to_local;  ///< size n_global; -1 outside.
  int64_t target_local = -1;

  // ----- Candidate add-edges (target, candidates[k]). -----
  std::vector<int64_t> candidates_global;
  std::vector<int64_t> candidates_local;

  // ----- Induced clean edges, canonical (u < v) local order. -----
  std::vector<IndexPair> edges_local;

  /// Augmented pattern over local ids: induced clean edges + self loops +
  /// candidate edges.  Structurally immutable for the view's lifetime.
  std::shared_ptr<const CsrPattern> pattern;

  /// Per-nnz base values: 1.0 at clean-edge and diagonal slots, 0.0 at
  /// candidate slots (they start absent).
  Tensor base_values;  // (nnz, 1)

  /// Per-undirected-slot base values over the S = |edges_local| + m slots
  /// (clean edges first, then candidates): 1.0 / 0.0 as above.
  Tensor und_base;  // (S, 1)

  /// For undirected slot s: the two directed nnz positions (upper, lower).
  std::vector<std::pair<int64_t, int64_t>> slot_nnz;

  /// nnz position of each local node's diagonal slot.
  std::vector<int64_t> diag_nnz;

  /// Clean edges from each view node to nodes *outside* the view (0 for a
  /// full view); added to pattern row sums so normalization sees true
  /// degrees.
  Tensor out_degree;  // (n_sub, 1)

  // ----- Constant sparse operators for the differentiable path. -----
  /// (nnz, S): scatters one value per undirected slot onto both of its
  /// directed slots; diagonal rows are empty.
  std::shared_ptr<const CsrMatrix> slot_expand;
  /// (nnz, m): scatters one value per candidate onto its two directed slots.
  std::shared_ptr<const CsrMatrix> cand_expand;
  /// (S, m): embeds an (m,1) candidate vector at slots S-m..S-1.
  std::shared_ptr<const CsrMatrix> cand_slot_pad;
  /// (m, S): selects the candidate block of an (S,1) slot vector.
  std::shared_ptr<const CsrMatrix> cand_slot_take;
  // (Per-slot row/column degree gathers used to live here as explicit
  // selector matrices; the fused GcnNormValues node expresses them through
  // the pattern itself, so the view no longer carries them.)

  int64_t num_nodes() const { return static_cast<int64_t>(nodes.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_local.size()); }
  int64_t num_candidates() const {
    return static_cast<int64_t>(candidates_global.size());
  }
  int64_t num_slots() const { return num_edges() + num_candidates(); }
  bool full() const {
    return nodes.size() == global_to_local.size();
  }

  /// Undirected slot id of local edge (u, v) — clean or candidate — or -1
  /// if the pair has no slot.  O(log |E_sub|).
  int64_t EdgeSlot(int64_t u_local, int64_t v_local) const;
};

/// Builds the view for `target` on `graph`.  `hops < 0` covers every node;
/// otherwise the view is the `hops`-hop ball around the target in the
/// augmented graph (clean + candidate edges).  Candidates must be distinct
/// from the target and not adjacent to it.
SubgraphView BuildSubgraphView(const Graph& graph, int64_t target, int hops,
                               const std::vector<int64_t>& candidates_global);

/// The shared-subgraph layer of the batched multi-target attack path: ONE
/// union ball, ONE local remap, ONE static CSR pattern (union clean edges +
/// self loops + every target's candidate slots, shared candidate pairs
/// deduplicated) — built once per target *group* instead of once per
/// target.
///
/// Each element of `per_target` is an ordinary SubgraphView expressed over
/// the union's local indices and sharing the union `pattern`, so the whole
/// per-target machinery (SparseAttackForward, value assembly, greedy
/// commits) runs on it unchanged.  Per-target exactness is value-level:
/// target t's base values carry 1.0 only on ITS in-ball clean edges and
/// diagonal slots, every other slot is 0.0, and its out_degree column keeps
/// the true-degree normalization of its own ball.  Because both remaps are
/// monotone in global id, t's slots appear in the union rows in the same
/// relative order as in its standalone view, and 0.0-valued foreign slots
/// never change an IEEE partial sum — so forwards, gradients, and greedy
/// picks over the union pattern are bit-identical to the standalone
/// per-target path (out-of-ball nodes get out_degree = degree + 1 so their
/// zero rows normalize finitely instead of 0·∞).
///
/// Caveat: a per-target view's `diag_nnz` lists only its in-ball diagonal
/// positions (it is not indexed by local node like a standalone view's),
/// and `out_degree`/`base_values` span the union.
struct BatchedSubgraphView {
  std::vector<int64_t> targets_global;   ///< One entry per batched target.
  std::vector<int64_t> nodes;            ///< Union local -> global, ascending.
  std::vector<int64_t> global_to_local;  ///< size n_global; -1 outside union.
  std::shared_ptr<const CsrPattern> pattern;  ///< Shared augmented pattern.
  std::vector<int64_t> diag_nnz;         ///< Per union-local node.
  std::vector<SubgraphView> per_target;  ///< Union-index views, see above.

  int64_t num_nodes() const { return static_cast<int64_t>(nodes.size()); }
  int64_t num_targets() const {
    return static_cast<int64_t>(targets_global.size());
  }
};

/// Builds the shared view for a group of targets.  `hops` as in
/// BuildSubgraphView (applied per target around its own ball);
/// `candidates_global[t]` are target t's candidate endpoints (distinct from
/// and non-adjacent to it).  Targets may repeat; shared candidate pairs
/// (e.g. two targets proposing the same edge) collapse onto one slot.
BatchedSubgraphView BuildBatchedSubgraphView(
    const Graph& graph, const std::vector<int64_t>& targets, int hops,
    const std::vector<std::vector<int64_t>>& candidates_global);

/// Membership flags (size n, 0/1) of the `hops`-hop ball around `target` in
/// the augmented graph (clean edges + the candidate edges, which put every
/// candidate at distance 1) — exactly the node set BuildSubgraphView would
/// materialize, without building the view.  `hops < 0` flags every node.
/// The live-graph service uses this for ball-overlap invalidation: a churn
/// batch whose endpoints all lie outside a queued target's ball cannot
/// change that target's view, out-degrees, or candidate set, so its picks
/// are identical on the old and new epochs and it keeps its pinned
/// snapshot.
std::vector<char> AugmentedBallFlags(
    const Graph& graph, int64_t target, int hops,
    const std::vector<int64_t>& candidates_global);

/// Greedy grouping heuristic for batched attacks: walks `targets` in order,
/// seeds a group with the first ungrouped target, and fills it (up to
/// `max_group`) with the ungrouped targets sharing the most neighbors with
/// the seed (direct adjacency counts as one shared neighbor; ties break
/// toward lower index).  Targets sharing nothing with the seed are left for
/// their own groups — the singleton fallback.  Returns groups of INDICES
/// into `targets`, deterministic for a given input.
std::vector<std::vector<int64_t>> GroupTargetsBySharedNeighbors(
    const Graph& graph, const std::vector<int64_t>& targets,
    int64_t max_group);

}  // namespace geattack

#endif  // GEATTACK_SRC_GRAPH_SUBGRAPH_H_
