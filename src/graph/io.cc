#include "src/graph/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace geattack {

namespace {
constexpr char kDataMagic[] = "geadata v1";
constexpr char kGcnMagic[] = "geagcn v1";
}  // namespace

bool SaveGraphData(const GraphData& data, std::ostream& os) {
  os << kDataMagic << "\n";
  os << data.num_nodes() << " " << data.graph.num_edges() << " "
     << data.num_classes << " " << data.feature_dim() << "\n";
  os << "labels";
  for (int64_t y : data.labels) os << " " << y;
  os << "\n";
  for (const Edge& e : data.graph.Edges()) os << "e " << e.u << " " << e.v
                                              << "\n";
  // Sparse feature non-zeros: "f node index value".
  for (int64_t i = 0; i < data.num_nodes(); ++i)
    for (int64_t j = 0; j < data.feature_dim(); ++j)
      if (data.features.at(i, j) != 0.0)
        os << "f " << i << " " << j << " " << data.features.at(i, j) << "\n";
  os << "end\n";
  return static_cast<bool>(os);
}

bool LoadGraphData(std::istream& is, GraphData* data) {
  GEA_CHECK(data != nullptr);
  std::string magic;
  if (!std::getline(is, magic) || magic != kDataMagic) return false;
  int64_t n = 0, m = 0, c = 0, d = 0;
  if (!(is >> n >> m >> c >> d) || n < 0 || m < 0 || c <= 0 || d <= 0)
    return false;
  data->graph = Graph(n);
  data->features = Tensor(n, d);
  data->labels.assign(ZU(n), 0);
  data->num_classes = c;

  std::string tag;
  if (!(is >> tag) || tag != "labels") return false;
  for (int64_t i = 0; i < n; ++i) {
    if (!(is >> data->labels[ZU(i)])) return false;
    if (data->labels[ZU(i)] < 0 || data->labels[ZU(i)] >= c) return false;
  }
  while (is >> tag) {
    if (tag == "end") break;
    if (tag == "e") {
      int64_t u = 0, v = 0;
      if (!(is >> u >> v)) return false;
      if (u < 0 || u >= n || v < 0 || v >= n) return false;
      data->graph.AddEdge(u, v);
    } else if (tag == "f") {
      int64_t i = 0, j = 0;
      double value = 0;
      if (!(is >> i >> j >> value)) return false;
      if (i < 0 || i >= n || j < 0 || j >= d) return false;
      data->features.at(i, j) = value;
    } else {
      return false;
    }
  }
  return tag == "end" && data->graph.num_edges() == m;
}

bool SaveGraphDataToFile(const GraphData& data, const std::string& path) {
  std::ofstream os(path);
  return os && SaveGraphData(data, os);
}

bool LoadGraphDataFromFile(const std::string& path, GraphData* data) {
  std::ifstream is(path);
  return is && LoadGraphData(is, data);
}

bool SaveGcn(const Gcn& model, std::ostream& os) {
  const GcnConfig& cfg = model.config();
  os << kGcnMagic << "\n";
  os << cfg.in_dim << " " << cfg.hidden_dim << " " << cfg.num_classes << "\n";
  os.precision(17);
  for (int64_t i = 0; i < model.w1().size(); ++i) os << model.w1()[i] << "\n";
  for (int64_t i = 0; i < model.w2().size(); ++i) os << model.w2()[i] << "\n";
  return static_cast<bool>(os);
}

bool LoadGcn(std::istream& is, Gcn* model) {
  GEA_CHECK(model != nullptr);
  std::string magic;
  if (!std::getline(is, magic) || magic != kGcnMagic) return false;
  int64_t in = 0, hidden = 0, classes = 0;
  if (!(is >> in >> hidden >> classes)) return false;
  const GcnConfig& cfg = model->config();
  if (in != cfg.in_dim || hidden != cfg.hidden_dim ||
      classes != cfg.num_classes)
    return false;
  for (int64_t i = 0; i < model->mutable_w1().size(); ++i)
    if (!(is >> model->mutable_w1()[i])) return false;
  for (int64_t i = 0; i < model->mutable_w2().size(); ++i)
    if (!(is >> model->mutable_w2()[i])) return false;
  return true;
}

bool SaveGcnToFile(const Gcn& model, const std::string& path) {
  std::ofstream os(path);
  return os && SaveGcn(model, os);
}

bool LoadGcnFromFile(const std::string& path, Gcn* model) {
  std::ifstream is(path);
  return is && LoadGcn(is, model);
}

}  // namespace geattack
