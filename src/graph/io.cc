#include "src/graph/io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace geattack {

namespace {

constexpr char kDataMagic[] = "geadata v1";
constexpr char kGcnMagic[] = "geagcn v1";

// ---------------------------------------------------------------------------
// Bulk text writing.  Formatting through operator<< costs a virtual call and
// a locale lookup per token; at 1M nodes (tens of millions of tokens) that
// dominates save time.  Instead, tokens are formatted with snprintf into one
// append-only buffer that is flushed to the stream in multi-megabyte chunks.

void AppendInt(std::string* out, int64_t v) {
  char tmp[24];
  const int len =
      std::snprintf(tmp, sizeof(tmp), "%lld", static_cast<long long>(v));
  out->append(tmp, static_cast<size_t>(len));
}

void AppendDouble(std::string* out, double v) {
  // %.17g round-trips every finite double exactly, so load(save(x)) == x
  // bit-for-bit (the round-trip tests assert MaxAbsDiff == 0).
  char tmp[40];
  const int len = std::snprintf(tmp, sizeof(tmp), "%.17g", v);
  out->append(tmp, static_cast<size_t>(len));
}

void FlushChunk(std::string* out, std::ostream& os, size_t threshold) {
  if (out->size() < threshold) return;
  os.write(out->data(), static_cast<std::streamsize>(out->size()));
  out->clear();
}

// ---------------------------------------------------------------------------
// Bulk text reading.  The loader slurps the remaining stream once and
// tokenizes it in place with a char cursor — no per-token stream state, no
// locale, no istream sentries.  The format is unchanged ("geadata v1").

bool ReadAll(std::istream& is, std::string* buf) {
  char chunk[1 << 16];
  while (is.read(chunk, sizeof(chunk)))
    buf->append(chunk, sizeof(chunk));
  buf->append(chunk, static_cast<size_t>(is.gcount()));
  return !buf->empty();
}

struct Cursor {
  const char* p;
  const char* end;
};

bool IsSpace(char c) {
  return c == ' ' || c == '\n' || c == '\t' || c == '\r';
}

void SkipSpace(Cursor* c) {
  while (c->p < c->end && IsSpace(*c->p)) ++c->p;
}

bool ParseInt(Cursor* c, int64_t* out) {
  SkipSpace(c);
  bool negative = false;
  if (c->p < c->end && *c->p == '-') {
    negative = true;
    ++c->p;
  }
  if (c->p >= c->end || *c->p < '0' || *c->p > '9') return false;
  int64_t v = 0;
  while (c->p < c->end && *c->p >= '0' && *c->p <= '9') {
    v = v * 10 + (*c->p - '0');
    ++c->p;
  }
  *out = negative ? -v : v;
  return true;
}

bool ParseDouble(Cursor* c, double* out) {
  SkipSpace(c);
  if (c->p >= c->end) return false;
  // The backing buffer is a std::string, so c->end points at a NUL — strtod
  // cannot run past it.
  char* after = nullptr;
  *out = std::strtod(c->p, &after);
  if (after == c->p || after > c->end) return false;
  c->p = after;
  return true;
}

/// Next whitespace-delimited token, viewed into the buffer (no copy).
bool ParseToken(Cursor* c, std::string_view* token) {
  SkipSpace(c);
  if (c->p >= c->end) return false;
  const char* start = c->p;
  while (c->p < c->end && !IsSpace(*c->p)) ++c->p;
  *token = std::string_view(start, static_cast<size_t>(c->p - start));
  return true;
}

}  // namespace

bool SaveGraphData(const GraphData& data, std::ostream& os) {
  constexpr size_t kFlushThreshold = size_t{1} << 22;  // 4 MiB chunks.
  std::string out;
  out.reserve(kFlushThreshold + 64);
  out += kDataMagic;
  out += '\n';
  AppendInt(&out, data.num_nodes());
  out += ' ';
  AppendInt(&out, data.graph.num_edges());
  out += ' ';
  AppendInt(&out, data.num_classes);
  out += ' ';
  AppendInt(&out, data.feature_dim());
  out += '\n';
  out += "labels";
  for (int64_t y : data.labels) {
    out += ' ';
    AppendInt(&out, y);
  }
  out += '\n';
  for (const Edge& e : data.graph.Edges()) {
    out += "e ";
    AppendInt(&out, e.u);
    out += ' ';
    AppendInt(&out, e.v);
    out += '\n';
    FlushChunk(&out, os, kFlushThreshold);
  }
  // Sparse feature non-zeros: "f node index value".
  for (int64_t i = 0; i < data.num_nodes(); ++i) {
    for (int64_t j = 0; j < data.feature_dim(); ++j) {
      const double value = data.features.at(i, j);
      if (value == 0.0) continue;
      out += "f ";
      AppendInt(&out, i);
      out += ' ';
      AppendInt(&out, j);
      out += ' ';
      AppendDouble(&out, value);
      out += '\n';
    }
    FlushChunk(&out, os, kFlushThreshold);
  }
  out += "end\n";
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  return static_cast<bool>(os);
}

bool LoadGraphData(std::istream& is, GraphData* data) {
  GEA_CHECK(data != nullptr);
  std::string buf;
  if (!ReadAll(is, &buf)) return false;
  Cursor c{buf.data(), buf.data() + buf.size()};

  const char* nl = static_cast<const char*>(
      std::memchr(c.p, '\n', static_cast<size_t>(c.end - c.p)));
  if (nl == nullptr ||
      std::string_view(c.p, static_cast<size_t>(nl - c.p)) != kDataMagic)
    return false;
  c.p = nl + 1;

  int64_t n = 0, m = 0, classes = 0, d = 0;
  if (!ParseInt(&c, &n) || !ParseInt(&c, &m) || !ParseInt(&c, &classes) ||
      !ParseInt(&c, &d))
    return false;
  if (n < 0 || m < 0 || classes <= 0 || d <= 0) return false;
  data->graph = Graph(n);
  data->features = Tensor(n, d);
  data->labels.assign(ZU(n), 0);
  data->num_classes = classes;

  std::string_view token;
  if (!ParseToken(&c, &token) || token != "labels") return false;
  for (int64_t i = 0; i < n; ++i) {
    if (!ParseInt(&c, &data->labels[ZU(i)])) return false;
    if (data->labels[ZU(i)] < 0 || data->labels[ZU(i)] >= classes)
      return false;
  }
  bool saw_end = false;
  while (ParseToken(&c, &token)) {
    if (token == "end") {
      saw_end = true;
      break;
    }
    if (token == "e") {
      int64_t u = 0, v = 0;
      if (!ParseInt(&c, &u) || !ParseInt(&c, &v)) return false;
      if (u < 0 || u >= n || v < 0 || v >= n) return false;
      data->graph.AddEdge(u, v);
    } else if (token == "f") {
      int64_t i = 0, j = 0;
      double value = 0;
      if (!ParseInt(&c, &i) || !ParseInt(&c, &j) || !ParseDouble(&c, &value))
        return false;
      if (i < 0 || i >= n || j < 0 || j >= d) return false;
      data->features.at(i, j) = value;
    } else {
      return false;
    }
  }
  return saw_end && data->graph.num_edges() == m;
}

bool SaveGraphDataToFile(const GraphData& data, const std::string& path) {
  std::ofstream os(path);
  return os && SaveGraphData(data, os);
}

bool LoadGraphDataFromFile(const std::string& path, GraphData* data) {
  std::ifstream is(path);
  return is && LoadGraphData(is, data);
}

bool SaveGcn(const Gcn& model, std::ostream& os) {
  const GcnConfig& cfg = model.config();
  os << kGcnMagic << "\n";
  os << cfg.in_dim << " " << cfg.hidden_dim << " " << cfg.num_classes << "\n";
  os.precision(17);
  for (int64_t i = 0; i < model.w1().size(); ++i) os << model.w1()[i] << "\n";
  for (int64_t i = 0; i < model.w2().size(); ++i) os << model.w2()[i] << "\n";
  return static_cast<bool>(os);
}

bool LoadGcn(std::istream& is, Gcn* model) {
  GEA_CHECK(model != nullptr);
  std::string magic;
  if (!std::getline(is, magic) || magic != kGcnMagic) return false;
  int64_t in = 0, hidden = 0, classes = 0;
  if (!(is >> in >> hidden >> classes)) return false;
  const GcnConfig& cfg = model->config();
  if (in != cfg.in_dim || hidden != cfg.hidden_dim ||
      classes != cfg.num_classes)
    return false;
  for (int64_t i = 0; i < model->mutable_w1().size(); ++i)
    if (!(is >> model->mutable_w1()[i])) return false;
  for (int64_t i = 0; i < model->mutable_w2().size(); ++i)
    if (!(is >> model->mutable_w2()[i])) return false;
  return true;
}

bool SaveGcnToFile(const Gcn& model, const std::string& path) {
  std::ofstream os(path);
  return os && SaveGcn(model, os);
}

bool LoadGcnFromFile(const std::string& path, Gcn* model) {
  std::ifstream is(path);
  return is && LoadGcn(is, model);
}

}  // namespace geattack
