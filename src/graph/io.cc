#include "src/graph/io.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

#include "src/graph/io_text.h"

namespace geattack {

namespace {

constexpr char kDataMagic[] = "geadata v1";
constexpr char kGcnMagic[] = "geagcn v1";

using textio::AppendDouble;
using textio::AppendInt;
using textio::Cursor;
using textio::FlushChunk;
using textio::ParseDouble;
using textio::ParseInt;
using textio::ParseToken;
using textio::ReadAll;

Status Truncated(const char* what) {
  return Status::DataLoss(std::string("truncated input: missing ") + what);
}

}  // namespace

Status SaveGraphData(const GraphData& data, std::ostream& os) {
  constexpr size_t kFlushThreshold = size_t{1} << 22;  // 4 MiB chunks.
  std::string out;
  out.reserve(kFlushThreshold + 64);
  out += kDataMagic;
  out += '\n';
  AppendInt(&out, data.num_nodes());
  out += ' ';
  AppendInt(&out, data.graph.num_edges());
  out += ' ';
  AppendInt(&out, data.num_classes);
  out += ' ';
  AppendInt(&out, data.feature_dim());
  out += '\n';
  out += "labels";
  for (int64_t y : data.labels) {
    out += ' ';
    AppendInt(&out, y);
  }
  out += '\n';
  for (const Edge& e : data.graph.Edges()) {
    out += "e ";
    AppendInt(&out, e.u);
    out += ' ';
    AppendInt(&out, e.v);
    out += '\n';
    FlushChunk(&out, os, kFlushThreshold);
  }
  // Sparse feature non-zeros: "f node index value".
  for (int64_t i = 0; i < data.num_nodes(); ++i) {
    for (int64_t j = 0; j < data.feature_dim(); ++j) {
      const double value = data.features.at(i, j);
      if (value == 0.0) continue;
      out += "f ";
      AppendInt(&out, i);
      out += ' ';
      AppendInt(&out, j);
      out += ' ';
      AppendDouble(&out, value);
      out += '\n';
    }
    FlushChunk(&out, os, kFlushThreshold);
  }
  out += "end\n";
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!os) return Status::Error("stream write failed");
  return Status::Ok();
}

Status LoadGraphData(std::istream& is, GraphData* data) {
  GEA_CHECK(data != nullptr);
  std::string buf;
  if (!ReadAll(is, &buf)) return Status::DataLoss("empty input");
  Cursor c{buf.data(), buf.data() + buf.size()};

  const char* nl = static_cast<const char*>(
      std::memchr(c.p, '\n', static_cast<size_t>(c.end - c.p)));
  if (nl == nullptr ||
      std::string_view(c.p, static_cast<size_t>(nl - c.p)) != kDataMagic)
    return Status::DataLoss("bad magic: expected \"geadata v1\" header");
  c.p = nl + 1;

  int64_t n = 0, m = 0, classes = 0, d = 0;
  if (!ParseInt(&c, &n) || !ParseInt(&c, &m) || !ParseInt(&c, &classes) ||
      !ParseInt(&c, &d))
    return Truncated("count header (nodes edges classes features)");
  if (n < 0 || m < 0 || classes <= 0 || d <= 0)
    return Status::DataLoss(
        "bad counts: nodes/edges must be >= 0, classes/features > 0 (got " +
        std::to_string(n) + " " + std::to_string(m) + " " +
        std::to_string(classes) + " " + std::to_string(d) + ")");
  data->graph = Graph(n);
  data->features = Tensor(n, d);
  data->labels.assign(ZU(n), 0);
  data->num_classes = classes;

  std::string_view token;
  if (!ParseToken(&c, &token) || token != "labels")
    return Truncated("\"labels\" section");
  for (int64_t i = 0; i < n; ++i) {
    if (!ParseInt(&c, &data->labels[ZU(i)]))
      return Truncated("label values");
    if (data->labels[ZU(i)] < 0 || data->labels[ZU(i)] >= classes)
      return Status::DataLoss(
          "label out of range [0, " + std::to_string(classes) + ") at node " +
          std::to_string(i) + ": " + std::to_string(data->labels[ZU(i)]));
  }
  bool saw_end = false;
  while (ParseToken(&c, &token)) {
    if (token == "end") {
      saw_end = true;
      break;
    }
    if (token == "e") {
      int64_t u = 0, v = 0;
      if (!ParseInt(&c, &u) || !ParseInt(&c, &v))
        return Truncated("edge endpoints");
      if (u < 0 || u >= n || v < 0 || v >= n)
        return Status::DataLoss("edge endpoint out of range [0, " +
                                std::to_string(n) + "): (" +
                                std::to_string(u) + ", " + std::to_string(v) +
                                ")");
      if (!data->graph.AddEdge(u, v))
        return Status::DataLoss("self-loop or duplicate edge (" +
                                std::to_string(u) + ", " + std::to_string(v) +
                                ")");
    } else if (token == "f") {
      int64_t i = 0, j = 0;
      double value = 0;
      if (!ParseInt(&c, &i) || !ParseInt(&c, &j) || !ParseDouble(&c, &value))
        return Truncated("feature triple");
      if (i < 0 || i >= n || j < 0 || j >= d)
        return Status::DataLoss("feature index out of range: (" +
                                std::to_string(i) + ", " + std::to_string(j) +
                                ")");
      if (!std::isfinite(value))
        return Status::DataLoss("non-finite feature value at (" +
                                std::to_string(i) + ", " + std::to_string(j) +
                                ")");
      data->features.at(i, j) = value;
    } else {
      return Status::DataLoss("unknown record token \"" + std::string(token) +
                              "\"");
    }
  }
  if (!saw_end) return Truncated("\"end\" marker");
  if (data->graph.num_edges() != m)
    return Status::DataLoss("edge count mismatch: header says " +
                            std::to_string(m) + ", file carries " +
                            std::to_string(data->graph.num_edges()));
  return Status::Ok();
}

Status SaveGraphDataToFile(const GraphData& data, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::Error("cannot open for writing: " + path);
  return SaveGraphData(data, os);
}

Status LoadGraphDataFromFile(const std::string& path, GraphData* data) {
  std::ifstream is(path);
  if (!is) return Status::Error("cannot open for reading: " + path);
  return LoadGraphData(is, data);
}

Status SaveGcn(const Gcn& model, std::ostream& os) {
  constexpr size_t kFlushThreshold = size_t{1} << 22;
  const GcnConfig& cfg = model.config();
  std::string out;
  out.reserve(kFlushThreshold + 64);
  out += kGcnMagic;
  out += '\n';
  AppendInt(&out, cfg.in_dim);
  out += ' ';
  AppendInt(&out, cfg.hidden_dim);
  out += ' ';
  AppendInt(&out, cfg.num_classes);
  out += '\n';
  for (int64_t i = 0; i < model.w1().size(); ++i) {
    AppendDouble(&out, model.w1()[i]);
    out += '\n';
    FlushChunk(&out, os, kFlushThreshold);
  }
  for (int64_t i = 0; i < model.w2().size(); ++i) {
    AppendDouble(&out, model.w2()[i]);
    out += '\n';
    FlushChunk(&out, os, kFlushThreshold);
  }
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  if (!os) return Status::Error("stream write failed");
  return Status::Ok();
}

Status LoadGcn(std::istream& is, Gcn* model) {
  GEA_CHECK(model != nullptr);
  std::string buf;
  if (!ReadAll(is, &buf)) return Status::DataLoss("empty input");
  Cursor c{buf.data(), buf.data() + buf.size()};

  const char* nl = static_cast<const char*>(
      std::memchr(c.p, '\n', static_cast<size_t>(c.end - c.p)));
  if (nl == nullptr ||
      std::string_view(c.p, static_cast<size_t>(nl - c.p)) != kGcnMagic)
    return Status::DataLoss("bad magic: expected \"geagcn v1\" header");
  c.p = nl + 1;

  int64_t in = 0, hidden = 0, classes = 0;
  if (!ParseInt(&c, &in) || !ParseInt(&c, &hidden) || !ParseInt(&c, &classes))
    return Truncated("dims header");
  const GcnConfig& cfg = model->config();
  if (in != cfg.in_dim || hidden != cfg.hidden_dim ||
      classes != cfg.num_classes)
    return Status::DataLoss(
        "architecture mismatch: file is (" + std::to_string(in) + ", " +
        std::to_string(hidden) + ", " + std::to_string(classes) +
        "), model is (" + std::to_string(cfg.in_dim) + ", " +
        std::to_string(cfg.hidden_dim) + ", " +
        std::to_string(cfg.num_classes) + ")");
  auto load_weights = [&c](Tensor* w, const char* name) -> Status {
    for (int64_t i = 0; i < w->size(); ++i) {
      double value = 0;
      if (!ParseDouble(&c, &value)) return Truncated(name);
      if (!std::isfinite(value))
        return Status::DataLoss(std::string("non-finite weight in ") + name +
                                " at index " + std::to_string(i));
      (*w)[i] = value;
    }
    return Status::Ok();
  };
  if (const Status s = load_weights(&model->mutable_w1(), "W1 values"); !s)
    return s;
  if (const Status s = load_weights(&model->mutable_w2(), "W2 values"); !s)
    return s;
  return Status::Ok();
}

Status SaveGcnToFile(const Gcn& model, const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::Error("cannot open for writing: " + path);
  return SaveGcn(model, os);
}

Status LoadGcnFromFile(const std::string& path, Gcn* model) {
  std::ifstream is(path);
  if (!is) return Status::Error("cannot open for reading: " + path);
  return LoadGcn(is, model);
}

}  // namespace geattack
