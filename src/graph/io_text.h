// Shared bulk-text tokenization helpers for the line-oriented formats
// ("geadata v1", "geagcn v1", "geajournal v1").
//
// Writing: formatting through operator<< costs a virtual call and a locale
// lookup per token; at 1M nodes (tens of millions of tokens) that dominates
// save time.  Tokens are instead formatted with snprintf into one
// append-only buffer flushed to the stream in multi-megabyte chunks.
//
// Reading: the loader slurps the stream once and tokenizes it in place with
// a char cursor — no per-token stream state, no locale, no istream
// sentries.  Every Parse* helper returns false instead of trusting the
// bytes, so loaders can surface structured errors (see src/base/status.h).

#ifndef GEATTACK_SRC_GRAPH_IO_TEXT_H_
#define GEATTACK_SRC_GRAPH_IO_TEXT_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>
#include <string_view>

namespace geattack {
namespace textio {

inline void AppendInt(std::string* out, int64_t v) {
  char tmp[24];
  const int len =
      std::snprintf(tmp, sizeof(tmp), "%lld", static_cast<long long>(v));
  out->append(tmp, static_cast<size_t>(len));
}

inline void AppendUint(std::string* out, uint64_t v) {
  char tmp[24];
  const int len = std::snprintf(tmp, sizeof(tmp), "%llu",
                                static_cast<unsigned long long>(v));
  out->append(tmp, static_cast<size_t>(len));
}

inline void AppendDouble(std::string* out, double v) {
  // %.17g round-trips every finite double exactly, so load(save(x)) == x
  // bit-for-bit (the round-trip tests assert MaxAbsDiff == 0).
  char tmp[40];
  const int len = std::snprintf(tmp, sizeof(tmp), "%.17g", v);
  out->append(tmp, static_cast<size_t>(len));
}

inline void FlushChunk(std::string* out, std::ostream& os, size_t threshold) {
  if (out->size() < threshold) return;
  os.write(out->data(), static_cast<std::streamsize>(out->size()));
  out->clear();
}

inline bool ReadAll(std::istream& is, std::string* buf) {
  char chunk[1 << 16];
  while (is.read(chunk, sizeof(chunk)))
    buf->append(chunk, sizeof(chunk));
  buf->append(chunk, static_cast<size_t>(is.gcount()));
  return !buf->empty();
}

struct Cursor {
  const char* p;
  const char* end;
};

inline bool IsSpace(char c) {
  return c == ' ' || c == '\n' || c == '\t' || c == '\r';
}

inline void SkipSpace(Cursor* c) {
  while (c->p < c->end && IsSpace(*c->p)) ++c->p;
}

inline bool ParseInt(Cursor* c, int64_t* out) {
  SkipSpace(c);
  bool negative = false;
  if (c->p < c->end && *c->p == '-') {
    negative = true;
    ++c->p;
  }
  if (c->p >= c->end || *c->p < '0' || *c->p > '9') return false;
  int64_t v = 0;
  while (c->p < c->end && *c->p >= '0' && *c->p <= '9') {
    v = v * 10 + (*c->p - '0');
    ++c->p;
  }
  *out = negative ? -v : v;
  return true;
}

inline bool ParseUint(Cursor* c, uint64_t* out) {
  SkipSpace(c);
  if (c->p >= c->end || *c->p < '0' || *c->p > '9') return false;
  uint64_t v = 0;
  while (c->p < c->end && *c->p >= '0' && *c->p <= '9') {
    v = v * 10 + static_cast<uint64_t>(*c->p - '0');
    ++c->p;
  }
  *out = v;
  return true;
}

inline bool ParseDouble(Cursor* c, double* out) {
  SkipSpace(c);
  if (c->p >= c->end) return false;
  // The backing buffer is a std::string, so c->end points at a NUL — strtod
  // cannot run past it.
  char* after = nullptr;
  *out = std::strtod(c->p, &after);
  if (after == c->p || after > c->end) return false;
  c->p = after;
  return true;
}

/// Next whitespace-delimited token, viewed into the buffer (no copy).
inline bool ParseToken(Cursor* c, std::string_view* token) {
  SkipSpace(c);
  if (c->p >= c->end) return false;
  const char* start = c->p;
  while (c->p < c->end && !IsSpace(*c->p)) ++c->p;
  *token = std::string_view(start, static_cast<size_t>(c->p - start));
  return true;
}

}  // namespace textio
}  // namespace geattack

#endif  // GEATTACK_SRC_GRAPH_IO_TEXT_H_
