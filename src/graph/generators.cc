#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

namespace geattack {

namespace {

/// Pareto-distributed degree propensity with the given shape; bounded to
/// avoid a single node absorbing the whole edge budget.
double DegreePropensity(double shape, Rng* rng) {
  const double u = rng->Uniform(1e-9, 1.0);
  const double p = std::pow(u, -1.0 / shape);
  return std::min(p, 30.0);
}

}  // namespace

GraphData GenerateCitationGraph(const CitationGraphConfig& config, Rng* rng) {
  GEA_CHECK(rng != nullptr);
  GEA_CHECK(config.num_nodes > config.num_classes);
  GEA_CHECK(config.num_classes >= 2);
  GEA_CHECK(config.feature_dim >= config.num_classes * 2);
  const int64_t n = config.num_nodes;
  const int64_t c = config.num_classes;

  // Balanced label assignment, then shuffled so labels are not contiguous.
  std::vector<int64_t> labels(ZU(n));
  for (int64_t i = 0; i < n; ++i) labels[ZU(i)] = i % c;
  rng->Shuffle(&labels);

  // Degree-corrected propensities, bucketed per class for weighted sampling.
  std::vector<double> propensity(ZU(n));
  for (auto& p : propensity) p = DegreePropensity(config.degree_exponent, rng);
  std::vector<std::vector<int64_t>> nodes_of_class(ZU(c));
  for (int64_t i = 0; i < n; ++i)
    nodes_of_class[ZU(labels[ZU(i)])].push_back(i);
  std::vector<std::vector<double>> weight_of_class(ZU(c));
  for (int64_t k = 0; k < c; ++k)
    for (int64_t i : nodes_of_class[ZU(k)])
      weight_of_class[ZU(k)].push_back(propensity[ZU(i)]);

  // Prefix-sum samplers: O(log n) per draw instead of a linear scan, which
  // is what makes multi-10k-node generation (the sparse-path benchmarks)
  // affordable.  Each Sample consumes exactly one uniform draw, like
  // Rng::SampleWeighted, so seeded graphs are unchanged.
  const WeightedSampler propensity_sampler(propensity);
  std::vector<WeightedSampler> class_samplers;
  class_samplers.reserve(ZU(c));
  for (int64_t k = 0; k < c; ++k)
    class_samplers.emplace_back(weight_of_class[ZU(k)]);

  Graph graph(n);
  // Sample edges: pick endpoint u by propensity; pick v same-class with
  // probability `homophily`, otherwise from a different class.  Retry on
  // duplicates; bail out of pathological configs via an attempt cap.
  int64_t attempts = 0;
  const int64_t max_attempts = config.num_edges * 50;
  while (graph.num_edges() < config.num_edges && attempts < max_attempts) {
    ++attempts;
    const int64_t u = propensity_sampler.Sample(rng);
    int64_t target_class;
    if (rng->Bernoulli(config.homophily)) {
      target_class = labels[ZU(u)];
    } else {
      target_class = rng->UniformInt(0, c - 1);
      if (target_class == labels[ZU(u)]) target_class = (target_class + 1) % c;
    }
    const auto& bucket = nodes_of_class[ZU(target_class)];
    const int64_t v = bucket[ZU(class_samplers[ZU(target_class)].Sample(rng))];
    if (u == v) continue;
    graph.AddEdge(u, v);
  }
  // Ensure no isolated nodes: attach each to a random same-class peer, so
  // the LCC keeps most of the graph (as on the real datasets).
  for (int64_t i = 0; i < n; ++i) {
    if (graph.Degree(i) > 0) continue;
    const auto& bucket = nodes_of_class[ZU(labels[ZU(i)])];
    for (int tries = 0; tries < 20; ++tries) {
      const int64_t v = bucket[ZU(rng->UniformInt(
          0, static_cast<int64_t>(bucket.size()) - 1))];
      if (v != i && graph.AddEdge(i, v)) break;
    }
  }

  // Class-conditional bag-of-words features: each class owns a block of
  // topic words; nodes switch topic words on with high probability and
  // background words with low probability.
  const int64_t d = config.feature_dim;
  const int64_t words = std::min(config.words_per_class, d / c);
  Tensor features(n, d);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t base = labels[ZU(i)] * words;
    for (int64_t j = 0; j < d; ++j) {
      const bool topic = j >= base && j < base + words;
      const double p = topic ? config.topic_on_prob : config.background_on_prob;
      if (rng->Bernoulli(p)) features.at(i, j) = 1.0;
    }
  }

  GraphData data;
  data.graph = std::move(graph);
  data.features = std::move(features);
  data.labels = std::move(labels);
  data.num_classes = c;
  return data;
}

GraphData KeepLargestConnectedComponent(const GraphData& data) {
  std::vector<int64_t> mapping;
  Graph lcc = data.graph.LargestConnectedComponent(&mapping);
  const int64_t m = lcc.num_nodes();
  Tensor features(m, data.features.cols());
  std::vector<int64_t> labels(ZU(m));
  for (int64_t i = 0; i < m; ++i) {
    const int64_t old = mapping[ZU(i)];
    labels[ZU(i)] = data.labels[ZU(old)];
    for (int64_t j = 0; j < data.features.cols(); ++j)
      features.at(i, j) = data.features.at(old, j);
  }
  GraphData out;
  out.graph = std::move(lcc);
  out.features = std::move(features);
  out.labels = std::move(labels);
  out.num_classes = data.num_classes;
  return out;
}

Graph GenerateErdosRenyi(int64_t num_nodes, double edge_prob, Rng* rng) {
  GEA_CHECK(rng != nullptr);
  Graph g(num_nodes);
  for (int64_t i = 0; i < num_nodes; ++i)
    for (int64_t j = i + 1; j < num_nodes; ++j)
      if (rng->Bernoulli(edge_prob)) g.AddEdge(i, j);
  return g;
}

Split MakeSplit(const GraphData& data, double train_frac, double val_frac,
                Rng* rng) {
  GEA_CHECK(rng != nullptr);
  GEA_CHECK(train_frac > 0 && val_frac >= 0 && train_frac + val_frac < 1.0);
  Split split;
  // Stratified: split each class's nodes independently so small classes are
  // represented in training even at 10%.
  std::vector<std::vector<int64_t>> by_class(ZU(data.num_classes));
  for (int64_t i = 0; i < data.num_nodes(); ++i)
    by_class[ZU(data.labels[ZU(i)])].push_back(i);
  for (auto& bucket : by_class) {
    rng->Shuffle(&bucket);
    const auto sz = static_cast<int64_t>(bucket.size());
    const double dsz = static_cast<double>(sz);
    int64_t n_train = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(train_frac * dsz)));
    int64_t n_val = static_cast<int64_t>(std::llround(val_frac * dsz));
    n_train = std::min(n_train, sz);
    n_val = std::min(n_val, sz - n_train);
    for (int64_t i = 0; i < sz; ++i) {
      if (i < n_train) {
        split.train.push_back(bucket[ZU(i)]);
      } else if (i < n_train + n_val) {
        split.val.push_back(bucket[ZU(i)]);
      } else {
        split.test.push_back(bucket[ZU(i)]);
      }
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.val.begin(), split.val.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

}  // namespace geattack
