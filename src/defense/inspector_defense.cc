#include "src/defense/inspector_defense.h"

#include <algorithm>
#include <set>

namespace geattack {

namespace {

/// The highest-ranked explanation edge incident to `node` that is still
/// present in `graph` and inside the inspected top-`subgraph_size` window.
/// Instead of scanning the ranking, this walks the node's incident edges
/// (there are only deg(node) of them) against a RankIndex — O(deg · log
/// |ranked|) per round.  Returns false if no incident edge is ranked.
bool TopIncidentEdge(const Explanation& explanation, const Graph& graph,
                     int64_t node, int64_t subgraph_size, Edge* best) {
  const RankIndex index(explanation);
  int64_t best_rank = subgraph_size;  // Exclusive upper bound.
  bool found = false;
  for (int64_t neighbor : graph.Neighbors(node)) {
    const Edge e(node, neighbor);
    const int64_t rank = index.RankOf(e);
    if (rank < 0 || rank >= best_rank) continue;
    best_rank = rank;
    *best = e;
    found = true;
  }
  return found;
}

}  // namespace

DefenseOutcome InspectAndPruneInPlace(const ProtocolContext& ctx,
                                      Graph* graph, int64_t node,
                                      const InspectorDefenseConfig& config,
                                      const std::vector<Edge>*
                                          known_adversarial) {
  GEA_CHECK(graph != nullptr);
  DefenseOutcome outcome;
  outcome.prediction_before = PredictAtNode(ctx, *graph, node);
  outcome.prediction_after = outcome.prediction_before;

  if (config.iterative) {
    // Analyst loop: prune one suspect, re-inspect, stop when the prediction
    // flips (the anomaly is "resolved") or the budget runs out.
    for (int64_t round = 0; round < config.prune_top; ++round) {
      const Explanation explanation = ctx.explainer().Explain(
          *graph, node, outcome.prediction_after);
      Edge suspect;
      if (!TopIncidentEdge(explanation, *graph, node, config.subgraph_size,
                           &suspect)) {
        break;
      }
      graph->RemoveEdge(suspect.u, suspect.v);
      outcome.pruned_edges.push_back(suspect);
      outcome.prediction_after = PredictAtNode(ctx, *graph, node);
      if (outcome.prediction_after != outcome.prediction_before) break;
    }
  } else {
    const Explanation explanation =
        ctx.explainer().Explain(*graph, node, outcome.prediction_before);
    int64_t pruned = 0;
    for (const Edge& e : explanation.TopEdges(config.subgraph_size)) {
      if (pruned >= config.prune_top) break;
      if (e.u != node && e.v != node) continue;
      if (!graph->RemoveEdge(e.u, e.v)) continue;
      outcome.pruned_edges.push_back(e);
      ++pruned;
    }
    outcome.prediction_after = PredictAtNode(ctx, *graph, node);
  }

  if (known_adversarial != nullptr) {
    const std::set<Edge> adv(known_adversarial->begin(),
                             known_adversarial->end());
    for (const Edge& e : outcome.pruned_edges)
      if (adv.count(e)) ++outcome.true_adversarial_pruned;
  }
  return outcome;
}

DefenseOutcome InspectAndPrune(const ProtocolContext& ctx, const Graph& graph,
                               int64_t node,
                               const InspectorDefenseConfig& config,
                               const std::vector<Edge>* known_adversarial) {
  Graph working = graph;
  return InspectAndPruneInPlace(ctx, &working, node, config,
                                known_adversarial);
}

DefenseOutcome InspectAndPrune(const Gcn& model, const Tensor& features,
                               const Explainer& explainer,
                               const Tensor& adjacency, int64_t node,
                               const InspectorDefenseConfig& config,
                               const std::vector<Edge>* known_adversarial) {
  const ProtocolContext ctx(&model, &features, &explainer);
  Graph working = Graph::FromDense(adjacency);
  DefenseOutcome outcome = InspectAndPruneInPlace(ctx, &working, node, config,
                                                  known_adversarial);
  // Dense materialization for dense-context callers only.
  outcome.pruned_adjacency = adjacency;
  for (const Edge& e : outcome.pruned_edges) {
    outcome.pruned_adjacency.at(e.u, e.v) = 0.0;
    outcome.pruned_adjacency.at(e.v, e.u) = 0.0;
  }
  return outcome;
}

}  // namespace geattack
