#include "src/defense/inspector_defense.h"

#include <set>

namespace geattack {

namespace {

/// Removes the highest-ranked explanation edge incident to `node`.
/// Returns false if none found.
bool PruneTopIncident(const Explanation& explanation, int64_t node,
                      int64_t subgraph_size, Tensor* adjacency,
                      std::vector<Edge>* pruned) {
  for (const Edge& e : explanation.TopEdges(subgraph_size)) {
    if (e.u != node && e.v != node) continue;
    if (adjacency->at(e.u, e.v) == 0.0) continue;
    adjacency->at(e.u, e.v) = 0.0;
    adjacency->at(e.v, e.u) = 0.0;
    pruned->push_back(e);
    return true;
  }
  return false;
}

}  // namespace

DefenseOutcome InspectAndPrune(const Gcn& model, const Tensor& features,
                               const Explainer& explainer,
                               const Tensor& adjacency, int64_t node,
                               const InspectorDefenseConfig& config,
                               const std::vector<Edge>* known_adversarial) {
  DefenseOutcome outcome;
  const Tensor logits_before = model.LogitsFromRaw(adjacency, features);
  outcome.prediction_before = logits_before.ArgMaxRow(node);
  outcome.pruned_adjacency = adjacency;
  outcome.prediction_after = outcome.prediction_before;

  if (config.iterative) {
    // Analyst loop: prune one suspect, re-inspect, stop when the prediction
    // flips (the anomaly is "resolved") or the budget runs out.
    for (int64_t round = 0; round < config.prune_top; ++round) {
      const Explanation explanation = explainer.Explain(
          outcome.pruned_adjacency, node, outcome.prediction_after);
      if (!PruneTopIncident(explanation, node, config.subgraph_size,
                            &outcome.pruned_adjacency,
                            &outcome.pruned_edges)) {
        break;
      }
      const Tensor logits =
          model.LogitsFromRaw(outcome.pruned_adjacency, features);
      outcome.prediction_after = logits.ArgMaxRow(node);
      if (outcome.prediction_after != outcome.prediction_before) break;
    }
  } else {
    const Explanation explanation =
        explainer.Explain(adjacency, node, outcome.prediction_before);
    int64_t pruned = 0;
    for (const Edge& e : explanation.TopEdges(config.subgraph_size)) {
      if (pruned >= config.prune_top) break;
      if (e.u != node && e.v != node) continue;
      outcome.pruned_adjacency.at(e.u, e.v) = 0.0;
      outcome.pruned_adjacency.at(e.v, e.u) = 0.0;
      outcome.pruned_edges.push_back(e);
      ++pruned;
    }
    const Tensor logits =
        model.LogitsFromRaw(outcome.pruned_adjacency, features);
    outcome.prediction_after = logits.ArgMaxRow(node);
  }

  if (known_adversarial != nullptr) {
    const std::set<Edge> adv(known_adversarial->begin(),
                             known_adversarial->end());
    for (const Edge& e : outcome.pruned_edges)
      if (adv.count(e)) ++outcome.true_adversarial_pruned;
  }
  return outcome;
}

}  // namespace geattack
