// Explanation-based defense (the paper's motivating workflow, §1/§3).
//
// The paper argues GNNEXPLAINER "can act as an inspection tool": when a
// prediction looks suspicious, an inspector explains it, examines the
// top-ranked edges, and excludes those judged adversarial.  This module
// mechanizes that loop so it can be measured:
//
//   1. explain the (possibly attacked) prediction at the target;
//   2. mark the top-R explanation edges incident to the target as suspect;
//   3. prune them and re-predict.
//
// Against attacks whose edges the explainer surfaces (FGA-T, Nettack), the
// defense restores the original label; against GEAttack it degrades —
// quantifying exactly the safety gap the paper warns about.

#ifndef GEATTACK_SRC_DEFENSE_INSPECTOR_DEFENSE_H_
#define GEATTACK_SRC_DEFENSE_INSPECTOR_DEFENSE_H_

#include <cstdint>
#include <vector>

#include "src/explain/explanation.h"
#include "src/nn/gcn.h"

namespace geattack {

/// Defense configuration.
struct InspectorDefenseConfig {
  /// How many top explanation edges (incident to the inspected node) the
  /// inspector removes — the total pruning budget.
  int64_t prune_top = 3;
  /// Subgraph size L the inspector examines.
  int64_t subgraph_size = 20;
  /// Iterative mode: prune the single most suspicious incident edge,
  /// re-explain on the pruned graph, and stop as soon as the prediction
  /// changes (the analyst's actual workflow).  One-shot mode (false) prunes
  /// the top `prune_top` at once.
  bool iterative = true;
};

/// Outcome of one inspect-and-prune pass.
struct DefenseOutcome {
  Tensor pruned_adjacency;           ///< Graph after removing suspects.
  std::vector<Edge> pruned_edges;    ///< What the inspector removed.
  int64_t prediction_before = -1;    ///< Model prediction pre-defense.
  int64_t prediction_after = -1;     ///< Model prediction post-defense.
  int64_t true_adversarial_pruned = 0;  ///< How many pruned edges were real
                                        ///< adversarial edges (if known).
};

/// Runs the inspect-and-prune loop on `adjacency` at `node` with the given
/// explainer.  `known_adversarial` (optional, evaluation only) lets the
/// caller score how many pruned edges were truly adversarial.
DefenseOutcome InspectAndPrune(const Gcn& model, const Tensor& features,
                               const Explainer& explainer,
                               const Tensor& adjacency, int64_t node,
                               const InspectorDefenseConfig& config,
                               const std::vector<Edge>* known_adversarial =
                                   nullptr);

}  // namespace geattack

#endif  // GEATTACK_SRC_DEFENSE_INSPECTOR_DEFENSE_H_
