// Explanation-based defense (the paper's motivating workflow, §1/§3).
//
// The paper argues GNNEXPLAINER "can act as an inspection tool": when a
// prediction looks suspicious, an inspector explains it, examines the
// top-ranked edges, and excludes those judged adversarial.  This module
// mechanizes that loop so it can be measured:
//
//   1. explain the (possibly attacked) prediction at the target;
//   2. mark the top-R explanation edges incident to the target as suspect;
//   3. prune them and re-predict.
//
// Against attacks whose edges the explainer surfaces (FGA-T, Nettack), the
// defense restores the original label; against GEAttack it degrades —
// quantifying exactly the safety gap the paper warns about.
//
// The loop is graph-native: it runs on Graph/CSR state, edge-list deltas
// (`DefenseOutcome::pruned_edges`) are the source of truth, and re-predicts
// use the GCN-depth ball-local sparse forward (PredictAtNode) — so one
// inspect-and-prune pass costs O(rounds · (explain + |E_ball|·h)) and runs
// unchanged on million-node graphs.  The dense overload is a reference
// adapter that converts, delegates, and additionally materializes
// `pruned_adjacency` for dense-context callers.

#ifndef GEATTACK_SRC_DEFENSE_INSPECTOR_DEFENSE_H_
#define GEATTACK_SRC_DEFENSE_INSPECTOR_DEFENSE_H_

#include <cstdint>
#include <vector>

#include "src/eval/protocol.h"
#include "src/explain/explanation.h"
#include "src/nn/gcn.h"

namespace geattack {

/// Defense configuration.
struct InspectorDefenseConfig {
  /// How many top explanation edges (incident to the inspected node) the
  /// inspector removes — the total pruning budget.
  int64_t prune_top = 3;
  /// Subgraph size L the inspector examines.
  int64_t subgraph_size = 20;
  /// Iterative mode: prune the single most suspicious incident edge,
  /// re-explain on the pruned graph, and stop as soon as the prediction
  /// changes (the analyst's actual workflow).  One-shot mode (false) prunes
  /// the top `prune_top` at once.
  bool iterative = true;
};

/// Outcome of one inspect-and-prune pass.  The edge-list delta
/// `pruned_edges` is the source of truth; `pruned_adjacency` is an optional
/// dense materialization that only the dense reference adapter fills (it
/// stays empty on the graph-native path — nothing n×n is ever built there).
struct DefenseOutcome {
  std::vector<Edge> pruned_edges;    ///< What the inspector removed.
  int64_t prediction_before = -1;    ///< Model prediction pre-defense.
  int64_t prediction_after = -1;     ///< Model prediction post-defense.
  int64_t true_adversarial_pruned = 0;  ///< How many pruned edges were real
                                        ///< adversarial edges (if known).
  Tensor pruned_adjacency;  ///< Dense graph after removal — filled ONLY by
                            ///< the dense adapter; empty otherwise.
};

/// Graph-native primary: runs the inspect-and-prune loop at `node` on a
/// working copy of `graph` with the context's explainer.
/// `known_adversarial` (optional, evaluation only) lets the caller score
/// how many pruned edges were truly adversarial.
DefenseOutcome InspectAndPrune(const ProtocolContext& ctx, const Graph& graph,
                               int64_t node,
                               const InspectorDefenseConfig& config,
                               const std::vector<Edge>* known_adversarial =
                                   nullptr);

/// In-place variant for callers that maintain their own working graph
/// (e.g. the eval pipeline's mutate-and-restore loop): prunes `graph`
/// directly and leaves it pruned.  Restoring is the caller's job — re-add
/// the returned `pruned_edges`.
DefenseOutcome InspectAndPruneInPlace(const ProtocolContext& ctx,
                                      Graph* graph, int64_t node,
                                      const InspectorDefenseConfig& config,
                                      const std::vector<Edge>*
                                          known_adversarial = nullptr);

/// Dense reference adapter: converts `adjacency`, delegates to the
/// graph-native path above (one implementation, two surfaces), and fills
/// `DefenseOutcome::pruned_adjacency`.
DefenseOutcome InspectAndPrune(const Gcn& model, const Tensor& features,
                               const Explainer& explainer,
                               const Tensor& adjacency, int64_t node,
                               const InspectorDefenseConfig& config,
                               const std::vector<Edge>* known_adversarial =
                                   nullptr);

}  // namespace geattack

#endif  // GEATTACK_SRC_DEFENSE_INSPECTOR_DEFENSE_H_
