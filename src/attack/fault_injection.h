// Deterministic fault-injection decorator for attack robustness tests.
//
// Wraps any TargetedAttack and fires a configured fault when (and only
// when) the request's target_node matches an injected spec:
//
//   * kThrow — throws std::runtime_error before delegating, modelling an
//     arbitrary per-task crash;
//   * kNaN   — routes a quiet NaN through CheckFiniteScore, modelling a
//     numeric blowup caught by the attackers' finite-score tripwire
//     (throws NonFiniteError);
//   * kDelay — sleeps for delay_ms, then delegates, modelling a stuck
//     target for deadline tests.
//
// Faults are keyed by target node, so they are deterministic across thread
// counts and batch groupings.  AttackBatch is deliberately NOT overridden:
// the base per-member fallback runs each member through Attack, which makes
// a fault inside a batched group surface as an exception from the group's
// shared pass — exactly the case the driver's member-by-member re-run
// isolates.

#ifndef GEATTACK_SRC_ATTACK_FAULT_INJECTION_H_
#define GEATTACK_SRC_ATTACK_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/attack/attack.h"

namespace geattack {

enum class FaultKind {
  kThrow,
  kNaN,
  kDelay,
};

struct FaultSpec {
  FaultKind kind = FaultKind::kThrow;
  double delay_ms = 0.0;  ///< Sleep duration for kDelay; ignored otherwise.
};

class FaultInjectingAttack : public TargetedAttack {
 public:
  /// Decorates `inner` (not owned; must outlive this).
  explicit FaultInjectingAttack(const TargetedAttack* inner);

  /// Arms `spec` for requests on `target_node` (replaces a prior spec).
  void InjectAt(int64_t target_node, FaultSpec spec);

  /// Number of Attack() invocations that reached the point of delegating to
  /// (or faulting instead of) the inner attack — lets tests prove a resumed
  /// run recomputed only the missing targets.
  int64_t attack_calls() const {
    return attack_calls_->load(std::memory_order_relaxed);
  }

  std::string name() const override;
  AttackResult Attack(const AttackContext& ctx, const AttackRequest& request,
                      Rng* rng) const override;

 private:
  const TargetedAttack* inner_;
  std::map<int64_t, FaultSpec> faults_;  // Ordered: deterministic, lint-clean.
  // Shared counter (not a mutable member) so the const Attack override can
  // count concurrent calls from driver workers.
  std::shared_ptr<std::atomic<int64_t>> attack_calls_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_FAULT_INJECTION_H_
