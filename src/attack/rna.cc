#include "src/attack/rna.h"

namespace geattack {

AttackResult RandomAttack::Attack(const AttackContext& ctx,
                                  const AttackRequest& request,
                                  Rng* rng) const {
  GEA_CHECK(rng != nullptr);
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  for (int64_t step = 0; step < request.budget; ++step) {
    if (Cancelled(request)) {
      result.status = Status::TimedOut("deadline exceeded");
      break;
    }
    auto candidates =
        DirectAddCandidates(result.adjacency, request.target_node,
                            ctx.data->labels, request.target_label);
    if (candidates.empty()) break;
    const int64_t pick = candidates[ZU(rng->UniformInt(
        0, static_cast<int64_t>(candidates.size()) - 1))];
    AddEdgeDense(&result.adjacency, request.target_node, pick);
    result.added_edges.emplace_back(request.target_node, pick);
  }
  return result;
}

}  // namespace geattack
