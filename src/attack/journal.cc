#include "src/attack/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>

#include "src/graph/io_text.h"

namespace geattack {

namespace {

using textio::AppendInt;
using textio::AppendUint;
using textio::Cursor;
using textio::ParseInt;
using textio::ParseToken;
using textio::ParseUint;
using textio::ReadAll;

// Sanity caps: a corrupted length field must not drive a giant allocation.
constexpr int64_t kMaxEdgesPerRecord = int64_t{1} << 24;
constexpr int64_t kMaxMessageBytes = int64_t{1} << 20;

bool ValidCode(int64_t code) {
  return code >= static_cast<int64_t>(StatusCode::kOk) &&
         code <= static_cast<int64_t>(StatusCode::kNotFound);
}

/// CRC32 (reflected, polynomial 0xEDB88320 — the zlib/PNG one) over a byte
/// span.  Table built once; static local init is thread-safe.
uint32_t Crc32(const char* data, size_t len) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xEDB88320u : 0u);
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i)
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(data[i])) &
                             0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

/// Outcome of parsing one record: v1 and v2 records parse the same fields,
/// but only a complete v2 record whose CRC mismatches is kCorrupt — every
/// other failure mode is indistinguishable from a torn tail.
enum class RecordParse { kOk, kTorn, kCorrupt };

/// Parses one record starting exactly at `c->p` (caller skips leading
/// space so the CRC span starts at the 'r').
RecordParse ParseRecord(Cursor* c, int64_t num_requests, bool with_crc,
                        JournalRecord* out) {
  const char* record_start = c->p;
  std::string_view token;
  if (!ParseToken(c, &token) || token != "r") return RecordParse::kTorn;
  int64_t idx = 0, code = 0, num_edges = 0, msg_len = 0;
  if (!ParseInt(c, &idx) || !ParseInt(c, &code) || !ParseInt(c, &num_edges))
    return RecordParse::kTorn;
  if (idx < 0 || idx >= num_requests || !ValidCode(code))
    return RecordParse::kTorn;
  if (num_edges < 0 || num_edges > kMaxEdgesPerRecord)
    return RecordParse::kTorn;
  out->request_index = idx;
  out->result.added_edges.clear();
  out->result.added_edges.reserve(static_cast<size_t>(num_edges));
  for (int64_t e = 0; e < num_edges; ++e) {
    int64_t u = 0, v = 0;
    if (!ParseInt(c, &u) || !ParseInt(c, &v)) return RecordParse::kTorn;
    out->result.added_edges.emplace_back(u, v);
  }
  if (!ParseInt(c, &msg_len)) return RecordParse::kTorn;
  if (msg_len < 0 || msg_len > kMaxMessageBytes) return RecordParse::kTorn;
  // Exactly one '\n' separates the length from the raw message bytes.
  if (c->p >= c->end || *c->p != '\n') return RecordParse::kTorn;
  ++c->p;
  if (c->end - c->p < msg_len) return RecordParse::kTorn;  // Torn mid-message.
  std::string message(c->p, static_cast<size_t>(msg_len));
  c->p += msg_len;
  const char* payload_end = c->p;  // CRC covers [record_start, here).
  if (with_crc) {
    uint64_t stored = 0;
    if (!ParseToken(c, &token) || token != "c") return RecordParse::kTorn;
    if (!ParseUint(c, &stored)) return RecordParse::kTorn;
    if (!ParseToken(c, &token) || token != ";") return RecordParse::kTorn;
    const uint32_t computed = Crc32(
        record_start, static_cast<size_t>(payload_end - record_start));
    // The record is COMPLETE (terminator parsed) but its bytes changed
    // since it was written: structured corruption, not a torn tail.
    if (stored != computed) return RecordParse::kCorrupt;
  } else {
    if (!ParseToken(c, &token) || token != ";") return RecordParse::kTorn;
  }
  out->result.status =
      Status::FromCode(static_cast<StatusCode>(code), std::move(message));
  return RecordParse::kOk;
}

/// write(2) the whole buffer, retrying on short writes / EINTR.
bool WriteAll(int fd, const std::string& buf) {
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t w = ::write(fd, buf.data() + off, buf.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

}  // namespace

JournalLoadResult LoadAttackJournal(const std::string& path,
                                    uint64_t base_seed,
                                    int64_t num_requests) {
  JournalLoadResult loaded;
  std::ifstream is(path);
  std::string buf;
  if (!is || !ReadAll(is, &buf)) return loaded;  // Fresh start.
  Cursor c{buf.data(), buf.data() + buf.size()};

  std::string_view token;
  if (!ParseToken(&c, &token) || token != "geajournal") return loaded;
  if (!ParseToken(&c, &token) || (token != "v1" && token != "v2"))
    return loaded;
  const bool with_crc = (token == "v2");
  loaded.legacy = !with_crc;
  if (!ParseToken(&c, &token) || token != "meta") return loaded;
  uint64_t seed = 0;
  int64_t count = 0;
  if (!ParseUint(&c, &seed) || !ParseInt(&c, &count)) return loaded;
  // A journal for a different seed or request set belongs to some other
  // run; replaying it would be wrong, so it is ignored (and overwritten).
  if (seed != base_seed || count != num_requests) return loaded;
  loaded.header_ok = true;
  textio::SkipSpace(&c);
  loaded.valid_bytes = c.p - buf.data();

  JournalRecord record;
  while (c.p < c.end) {
    const RecordParse parse = ParseRecord(&c, num_requests, with_crc, &record);
    if (parse == RecordParse::kTorn) break;  // Normal kill artifact.
    if (parse == RecordParse::kCorrupt) {
      // valid_bytes still points before this record, so the resuming
      // writer truncates the corrupt tail and the driver recomputes it.
      loaded.status = Status::DataLoss(
          "journal record failed CRC check at byte offset " +
          std::to_string(loaded.valid_bytes) + " of " + path +
          "; dropping it and everything after it");
      break;
    }
    loaded.records.push_back(std::move(record));
    record = JournalRecord();
    textio::SkipSpace(&c);
    loaded.valid_bytes = c.p - buf.data();
  }
  return loaded;
}

AttackJournalWriter::~AttackJournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status AttackJournalWriter::Open(const std::string& path,
                                 int64_t resume_offset, uint64_t base_seed,
                                 int64_t num_requests) {
  GEA_CHECK(fd_ < 0);
  GEA_CHECK(resume_offset >= 0);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) return Status::Error(ErrnoMessage("cannot open journal", path));
  if (::ftruncate(fd_, static_cast<off_t>(resume_offset)) != 0 ||
      ::lseek(fd_, 0, SEEK_END) < 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::Error(ErrnoMessage("cannot position journal", path));
  }
  if (resume_offset == 0) {
    std::string header = "geajournal v2\nmeta ";
    AppendUint(&header, base_seed);
    header += ' ';
    AppendInt(&header, num_requests);
    header += '\n';
    if (!WriteAll(fd_, header)) {
      ::close(fd_);
      fd_ = -1;
      return Status::Error(ErrnoMessage("cannot write journal header", path));
    }
  }
  if (::fsync(fd_) != 0)
    return Status::Error(ErrnoMessage("cannot fsync journal", path));
  return Status::Ok();
}

Status AttackJournalWriter::Append(int64_t request_index,
                                   const AttackResult& result) {
  GEA_CHECK(fd_ >= 0);
  std::string out = "r ";
  AppendInt(&out, request_index);
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(result.status.code()));
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(result.added_edges.size()));
  for (const Edge& e : result.added_edges) {
    out += ' ';
    AppendInt(&out, e.u);
    out += ' ';
    AppendInt(&out, e.v);
  }
  out += ' ';
  AppendInt(&out,
            static_cast<int64_t>(result.status.message().size()));
  out += '\n';
  out += result.status.message();
  // CRC32 spans the record bytes written so far — the leading 'r' through
  // the last message byte — exactly what the loader recomputes over.
  const uint32_t crc = Crc32(out.data(), out.size());
  out += "\nc ";
  AppendUint(&out, crc);
  out += " ;\n";
  if (!WriteAll(fd_, out)) return Status::Error("journal write failed");
  if (::fsync(fd_) != 0) return Status::Error("journal fsync failed");
  return Status::Ok();
}

}  // namespace geattack
