#include "src/attack/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>

#include "src/graph/io_text.h"

namespace geattack {

namespace {

using textio::AppendInt;
using textio::AppendUint;
using textio::Cursor;
using textio::ParseInt;
using textio::ParseToken;
using textio::ParseUint;
using textio::ReadAll;

// Sanity caps: a corrupted length field must not drive a giant allocation.
constexpr int64_t kMaxEdgesPerRecord = int64_t{1} << 24;
constexpr int64_t kMaxMessageBytes = int64_t{1} << 20;
constexpr int64_t kMaxBumpedTickets = int64_t{1} << 24;

bool ValidCode(int64_t code) {
  return code >= static_cast<int64_t>(StatusCode::kOk) &&
         code <= static_cast<int64_t>(StatusCode::kNotFound);
}

/// CRC32 (reflected, polynomial 0xEDB88320 — the zlib/PNG one) over a byte
/// span.  Table built once; static local init is thread-safe.
uint32_t Crc32(const char* data, size_t len) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xEDB88320u : 0u);
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i)
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(data[i])) &
                             0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

/// Outcome of parsing one record: v1 and CRC'd records parse the same
/// fields, but only a complete CRC'd record whose checksum mismatches is
/// kCorrupt — every other failure mode is indistinguishable from a torn
/// tail.
enum class RecordParse { kOk, kTorn, kCorrupt };

/// Parses the length-prefixed raw-bytes payload: `<len>\n<len bytes>`.
bool ParseLengthPrefixed(Cursor* c, int64_t max_len, std::string* out) {
  int64_t len = 0;
  if (!ParseInt(c, &len)) return false;
  if (len < 0 || len > max_len) return false;
  // Exactly one '\n' separates the length from the raw bytes.
  if (c->p >= c->end || *c->p != '\n') return false;
  ++c->p;
  if (c->end - c->p < len) return false;  // Torn mid-payload.
  out->assign(c->p, static_cast<size_t>(len));
  c->p += len;
  return true;
}

/// Parses the CRC trailer `c <crc32> ;` (or the bare v1 `;`) covering
/// [record_start, payload_end).
RecordParse ParseTrailer(Cursor* c, const char* record_start,
                         const char* payload_end, bool with_crc) {
  std::string_view token;
  if (with_crc) {
    uint64_t stored = 0;
    if (!ParseToken(c, &token) || token != "c") return RecordParse::kTorn;
    if (!ParseUint(c, &stored)) return RecordParse::kTorn;
    if (!ParseToken(c, &token) || token != ";") return RecordParse::kTorn;
    const uint32_t computed = Crc32(
        record_start, static_cast<size_t>(payload_end - record_start));
    // The record is COMPLETE (terminator parsed) but its bytes changed
    // since it was written: structured corruption, not a torn tail.
    if (stored != computed) return RecordParse::kCorrupt;
  } else {
    if (!ParseToken(c, &token) || token != ";") return RecordParse::kTorn;
  }
  return RecordParse::kOk;
}

bool ParseEdgeList(Cursor* c, int64_t count, std::vector<Edge>* out) {
  out->clear();
  out->reserve(static_cast<size_t>(count));
  for (int64_t e = 0; e < count; ++e) {
    int64_t u = 0, v = 0;
    if (!ParseInt(c, &u) || !ParseInt(c, &v)) return false;
    out->emplace_back(u, v);
  }
  return true;
}

/// Parses one `r` record starting exactly at `c->p` (caller skips leading
/// space so the CRC span starts at the 'r').
RecordParse ParseRecord(Cursor* c, int64_t num_requests, bool with_crc,
                        JournalRecord* out) {
  const char* record_start = c->p;
  std::string_view token;
  if (!ParseToken(c, &token) || token != "r") return RecordParse::kTorn;
  int64_t idx = 0, code = 0, num_edges = 0;
  if (!ParseInt(c, &idx) || !ParseInt(c, &code) || !ParseInt(c, &num_edges))
    return RecordParse::kTorn;
  if (idx < 0 || idx >= num_requests || !ValidCode(code))
    return RecordParse::kTorn;
  if (num_edges < 0 || num_edges > kMaxEdgesPerRecord)
    return RecordParse::kTorn;
  out->request_index = idx;
  if (!ParseEdgeList(c, num_edges, &out->result.added_edges))
    return RecordParse::kTorn;
  std::string message;
  if (!ParseLengthPrefixed(c, kMaxMessageBytes, &message))
    return RecordParse::kTorn;
  const char* payload_end = c->p;  // CRC covers [record_start, here).
  const RecordParse trailer =
      ParseTrailer(c, record_start, payload_end, with_crc);
  if (trailer != RecordParse::kOk) return trailer;
  out->result.status =
      Status::FromCode(static_cast<StatusCode>(code), std::move(message));
  return RecordParse::kOk;
}

/// Parses one service record (`s` / `g` / `t`, always CRC'd) starting
/// exactly at `c->p`.
RecordParse ParseServiceRecord(Cursor* c, ServiceJournalEvent* out) {
  const char* record_start = c->p;
  std::string_view token;
  if (!ParseToken(c, &token)) return RecordParse::kTorn;
  if (token == "s") {
    out->kind = ServiceJournalEvent::Kind::kSubmit;
    ServiceSubmitRecord& r = out->submit;
    if (!ParseInt(c, &r.ticket) || !ParseInt(c, &r.accepted_index) ||
        !ParseInt(c, &r.epoch) || !ParseInt(c, &r.target_node) ||
        !ParseInt(c, &r.target_label) || !ParseInt(c, &r.budget) ||
        !ParseInt(c, &r.priority))
      return RecordParse::kTorn;
    if (r.ticket < 0 || r.accepted_index < 0 || r.epoch < 0)
      return RecordParse::kTorn;
    if (!ParseLengthPrefixed(c, kMaxMessageBytes, &r.version))
      return RecordParse::kTorn;
    return ParseTrailer(c, record_start, c->p, /*with_crc=*/true);
  }
  if (token == "g") {
    out->kind = ServiceJournalEvent::Kind::kChurn;
    ServiceChurnRecord& r = out->churn;
    int64_t n_bumped = 0, n_add = 0, n_rem = 0;
    if (!ParseInt(c, &r.epoch) || !ParseInt(c, &n_bumped))
      return RecordParse::kTorn;
    if (r.epoch <= 0 || n_bumped < 0 || n_bumped > kMaxBumpedTickets)
      return RecordParse::kTorn;
    r.bumped_tickets.clear();
    r.bumped_tickets.reserve(static_cast<size_t>(n_bumped));
    for (int64_t i = 0; i < n_bumped; ++i) {
      int64_t t = 0;
      if (!ParseInt(c, &t) || t < 0) return RecordParse::kTorn;
      r.bumped_tickets.push_back(t);
    }
    if (!ParseInt(c, &n_add) || n_add < 0 || n_add > kMaxEdgesPerRecord ||
        !ParseEdgeList(c, n_add, &r.added))
      return RecordParse::kTorn;
    if (!ParseInt(c, &n_rem) || n_rem < 0 || n_rem > kMaxEdgesPerRecord ||
        !ParseEdgeList(c, n_rem, &r.removed))
      return RecordParse::kTorn;
    if (!ParseLengthPrefixed(c, kMaxMessageBytes, &r.version))
      return RecordParse::kTorn;
    return ParseTrailer(c, record_start, c->p, /*with_crc=*/true);
  }
  if (token == "t") {
    out->kind = ServiceJournalEvent::Kind::kComplete;
    ServiceCompleteRecord& r = out->complete;
    int64_t code = 0, num_edges = 0;
    if (!ParseInt(c, &r.ticket) || !ParseInt(c, &r.attempts) ||
        !ParseInt(c, &r.effective_budget) || !ParseInt(c, &r.epoch) ||
        !ParseInt(c, &code) || !ParseInt(c, &num_edges))
      return RecordParse::kTorn;
    if (r.ticket < 0 || r.attempts < 0 || r.epoch < 0 || !ValidCode(code))
      return RecordParse::kTorn;
    if (num_edges < 0 || num_edges > kMaxEdgesPerRecord)
      return RecordParse::kTorn;
    if (!ParseEdgeList(c, num_edges, &r.result.added_edges))
      return RecordParse::kTorn;
    std::string message;
    if (!ParseLengthPrefixed(c, kMaxMessageBytes, &message))
      return RecordParse::kTorn;
    const char* payload_end = c->p;
    const RecordParse trailer =
        ParseTrailer(c, record_start, payload_end, /*with_crc=*/true);
    if (trailer != RecordParse::kOk) return trailer;
    r.result.status =
        Status::FromCode(static_cast<StatusCode>(code), std::move(message));
    return RecordParse::kOk;
  }
  return RecordParse::kTorn;
}

/// write(2) the whole buffer, retrying on short writes / EINTR.
bool WriteAll(int fd, const std::string& buf) {
  size_t off = 0;
  while (off < buf.size()) {
    const ssize_t w = ::write(fd, buf.data() + off, buf.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

std::string ErrnoMessage(const char* what, const std::string& path) {
  return std::string(what) + " " + path + ": " + std::strerror(errno);
}

/// fsyncs the directory containing `path`, making a just-created (or
/// just-renamed) directory entry itself durable.  fsync on the file alone
/// persists the file's bytes and inode but NOT the parent directory's entry
/// pointing at it — a crash right after creation could lose the name, and a
/// journal whose name is gone protects nothing.
Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0)
    return Status::Error(ErrnoMessage("cannot open journal directory", dir));
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0)
    return Status::Error(ErrnoMessage("cannot fsync journal directory", dir));
  return Status::Ok();
}

/// Appends the CRC trailer: the checksum spans the record bytes built so
/// far — the leading tag byte through the last payload byte — exactly what
/// the loader recomputes over.
void FinishRecord(std::string* record) {
  const uint32_t crc = Crc32(record->data(), record->size());
  *record += "\nc ";
  AppendUint(record, crc);
  *record += " ;\n";
}

void AppendEdgeList(std::string* out, const std::vector<Edge>& edges) {
  for (const Edge& e : edges) {
    *out += ' ';
    AppendInt(out, e.u);
    *out += ' ';
    AppendInt(out, e.v);
  }
}

void AppendLengthPrefixed(std::string* out, const std::string& payload) {
  *out += ' ';
  AppendInt(out, static_cast<int64_t>(payload.size()));
  *out += '\n';
  *out += payload;
}

std::string EncodeResultRecord(int64_t request_index,
                               const AttackResult& result) {
  std::string out = "r ";
  AppendInt(&out, request_index);
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(result.status.code()));
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(result.added_edges.size()));
  AppendEdgeList(&out, result.added_edges);
  AppendLengthPrefixed(&out, result.status.message());
  FinishRecord(&out);
  return out;
}

std::string EncodeHeader(uint64_t base_seed, int64_t num_requests) {
  std::string header = "geajournal v3\nmeta ";
  AppendUint(&header, base_seed);
  header += ' ';
  AppendInt(&header, num_requests);
  header += '\n';
  return header;
}

/// Shared Open body: position the fd at `resume_offset` (truncating any
/// torn tail), write `header` when starting fresh, and make both the file
/// and its directory entry durable.
Status OpenJournalFd(int* fd, const std::string& path, int64_t resume_offset,
                     const std::string& header) {
  GEA_CHECK(*fd < 0);
  GEA_CHECK(resume_offset >= 0);
  *fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (*fd < 0) return Status::Error(ErrnoMessage("cannot open journal", path));
  if (::ftruncate(*fd, static_cast<off_t>(resume_offset)) != 0 ||
      ::lseek(*fd, 0, SEEK_END) < 0) {
    ::close(*fd);
    *fd = -1;
    return Status::Error(ErrnoMessage("cannot position journal", path));
  }
  if (resume_offset == 0 && !WriteAll(*fd, header)) {
    ::close(*fd);
    *fd = -1;
    return Status::Error(ErrnoMessage("cannot write journal header", path));
  }
  if (::fsync(*fd) != 0)
    return Status::Error(ErrnoMessage("cannot fsync journal", path));
  // Durability guarantee: the journal's directory entry survives a crash
  // from here on — fsync on the file covers its bytes, the directory fsync
  // covers the name O_CREAT may just have added.
  return FsyncParentDir(path);
}

Status AppendDurable(int fd, const std::string& record) {
  GEA_CHECK(fd >= 0);
  if (!WriteAll(fd, record)) return Status::Error("journal write failed");
  if (::fsync(fd) != 0) return Status::Error("journal fsync failed");
  return Status::Ok();
}

}  // namespace

JournalLoadResult LoadAttackJournal(const std::string& path,
                                    uint64_t base_seed,
                                    int64_t num_requests) {
  JournalLoadResult loaded;
  std::ifstream is(path);
  std::string buf;
  if (!is || !ReadAll(is, &buf)) return loaded;  // Fresh start.
  Cursor c{buf.data(), buf.data() + buf.size()};

  std::string_view token;
  if (!ParseToken(&c, &token) || token != "geajournal") return loaded;
  if (!ParseToken(&c, &token) ||
      (token != "v1" && token != "v2" && token != "v3"))
    return loaded;
  const bool with_crc = (token != "v1");
  loaded.legacy = !with_crc;
  if (!ParseToken(&c, &token) || token != "meta") return loaded;
  uint64_t seed = 0;
  int64_t count = 0;
  if (!ParseUint(&c, &seed) || !ParseInt(&c, &count)) return loaded;
  // A journal for a different seed or request set belongs to some other
  // run; replaying it would be wrong, so it is ignored (and overwritten).
  if (seed != base_seed || count != num_requests) return loaded;
  loaded.header_ok = true;
  textio::SkipSpace(&c);
  loaded.valid_bytes = c.p - buf.data();

  JournalRecord record;
  while (c.p < c.end) {
    const RecordParse parse = ParseRecord(&c, num_requests, with_crc, &record);
    if (parse == RecordParse::kTorn) break;  // Normal kill artifact.
    if (parse == RecordParse::kCorrupt) {
      // valid_bytes still points before this record, so the resuming
      // writer truncates the corrupt tail and the driver recomputes it.
      loaded.status = Status::DataLoss(
          "journal record failed CRC check at byte offset " +
          std::to_string(loaded.valid_bytes) + " of " + path +
          "; dropping it and everything after it");
      break;
    }
    loaded.records.push_back(std::move(record));
    record = JournalRecord();
    textio::SkipSpace(&c);
    loaded.valid_bytes = c.p - buf.data();
  }
  return loaded;
}

AttackJournalWriter::~AttackJournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status AttackJournalWriter::Open(const std::string& path,
                                 int64_t resume_offset, uint64_t base_seed,
                                 int64_t num_requests) {
  return OpenJournalFd(&fd_, path, resume_offset,
                       EncodeHeader(base_seed, num_requests));
}

Status AttackJournalWriter::Append(int64_t request_index,
                                   const AttackResult& result) {
  return AppendDurable(fd_, EncodeResultRecord(request_index, result));
}

Status RewriteJournal(const std::string& path, uint64_t base_seed,
                      int64_t num_requests,
                      const std::vector<JournalRecord>& records,
                      int64_t* resume_offset) {
  GEA_CHECK(resume_offset != nullptr);
  std::string buf = EncodeHeader(base_seed, num_requests);
  for (const JournalRecord& r : records)
    buf += EncodeResultRecord(r.request_index, r.result);

  const std::string tmp = path + ".rewrite.tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return Status::Error(ErrnoMessage("cannot open journal rewrite", tmp));
  if (!WriteAll(fd, buf) || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Error(ErrnoMessage("cannot write journal rewrite", tmp));
  }
  ::close(fd);
  // The atomic commit point: before this rename the original journal is
  // untouched (a crash leaves the loadable old file plus a stale tmp the
  // next rewrite truncates); after it the path names the complete new
  // file.  The directory fsync makes the swap itself durable.
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    return Status::Error(ErrnoMessage("cannot commit journal rewrite", path));
  const Status synced = FsyncParentDir(path);
  if (!synced.ok()) return synced;
  *resume_offset = static_cast<int64_t>(buf.size());
  return Status::Ok();
}

ServiceJournalLoadResult LoadServiceJournal(const std::string& path,
                                            uint64_t base_seed) {
  ServiceJournalLoadResult loaded;
  std::ifstream is(path);
  std::string buf;
  if (!is || !ReadAll(is, &buf)) return loaded;  // Fresh start.
  Cursor c{buf.data(), buf.data() + buf.size()};

  std::string_view token;
  if (!ParseToken(&c, &token) || token != "geajournal") return loaded;
  if (!ParseToken(&c, &token) || token != "v3") return loaded;
  if (!ParseToken(&c, &token) || token != "meta") return loaded;
  uint64_t seed = 0;
  int64_t count = 0;
  if (!ParseUint(&c, &seed) || !ParseInt(&c, &count)) return loaded;
  if (seed != base_seed || count != -1) return loaded;
  loaded.header_ok = true;
  textio::SkipSpace(&c);
  loaded.valid_bytes = c.p - buf.data();

  ServiceJournalEvent event;
  while (c.p < c.end) {
    const RecordParse parse = ParseServiceRecord(&c, &event);
    if (parse == RecordParse::kTorn) break;  // Normal kill artifact.
    if (parse == RecordParse::kCorrupt) {
      loaded.status = Status::DataLoss(
          "service journal record failed CRC check at byte offset " +
          std::to_string(loaded.valid_bytes) + " of " + path +
          "; dropping it and everything after it");
      break;
    }
    loaded.events.push_back(std::move(event));
    event = ServiceJournalEvent();
    textio::SkipSpace(&c);
    loaded.valid_bytes = c.p - buf.data();
  }
  return loaded;
}

ServiceJournalWriter::~ServiceJournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status ServiceJournalWriter::Open(const std::string& path,
                                  int64_t resume_offset, uint64_t base_seed) {
  return OpenJournalFd(&fd_, path, resume_offset,
                       EncodeHeader(base_seed, /*num_requests=*/-1));
}

Status ServiceJournalWriter::AppendSubmit(const ServiceSubmitRecord& record) {
  std::string out = "s ";
  AppendInt(&out, record.ticket);
  out += ' ';
  AppendInt(&out, record.accepted_index);
  out += ' ';
  AppendInt(&out, record.epoch);
  out += ' ';
  AppendInt(&out, record.target_node);
  out += ' ';
  AppendInt(&out, record.target_label);
  out += ' ';
  AppendInt(&out, record.budget);
  out += ' ';
  AppendInt(&out, record.priority);
  AppendLengthPrefixed(&out, record.version);
  FinishRecord(&out);
  return AppendDurable(fd_, out);
}

Status ServiceJournalWriter::AppendChurn(const ServiceChurnRecord& record) {
  std::string out = "g ";
  AppendInt(&out, record.epoch);
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(record.bumped_tickets.size()));
  for (int64_t t : record.bumped_tickets) {
    out += ' ';
    AppendInt(&out, t);
  }
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(record.added.size()));
  AppendEdgeList(&out, record.added);
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(record.removed.size()));
  AppendEdgeList(&out, record.removed);
  AppendLengthPrefixed(&out, record.version);
  FinishRecord(&out);
  return AppendDurable(fd_, out);
}

Status ServiceJournalWriter::AppendComplete(
    const ServiceCompleteRecord& record) {
  std::string out = "t ";
  AppendInt(&out, record.ticket);
  out += ' ';
  AppendInt(&out, record.attempts);
  out += ' ';
  AppendInt(&out, record.effective_budget);
  out += ' ';
  AppendInt(&out, record.epoch);
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(record.result.status.code()));
  out += ' ';
  AppendInt(&out, static_cast<int64_t>(record.result.added_edges.size()));
  AppendEdgeList(&out, record.result.added_edges);
  AppendLengthPrefixed(&out, record.result.status.message());
  FinishRecord(&out);
  return AppendDurable(fd_, out);
}

}  // namespace geattack
