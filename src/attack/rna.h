// Random Attack (RNA) baseline (paper §A.4): connect the target to random
// nodes whose label equals the desired target label, up to the budget.

#ifndef GEATTACK_SRC_ATTACK_RNA_H_
#define GEATTACK_SRC_ATTACK_RNA_H_

#include "src/attack/attack.h"

namespace geattack {

/// The RNA baseline.  Weakest attacker; hardest for an explainer to detect
/// because random edges carry little predictive influence (Table 1).
class RandomAttack : public TargetedAttack {
 public:
  std::string name() const override { return "RNA"; }

  AttackResult Attack(const AttackContext& ctx, const AttackRequest& request,
                      Rng* rng) const override;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_RNA_H_
