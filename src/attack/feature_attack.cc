#include "src/attack/feature_attack.h"

#include <limits>

namespace geattack {

FeatureAttackResult FeatureAttack::Attack(const AttackContext& ctx,
                                          const AttackRequest& request) const {
  GEA_CHECK(request.target_label >= 0);
  FeatureAttackResult result;
  result.features = ctx.data->features;
  const int64_t v = request.target_node;
  const int64_t d = result.features.cols();
  const Tensor norm = NormalizeAdjacency(ctx.clean_adjacency);
  const Var norm_v = Constant(norm, "norm_adj");
  const Var w1 = Constant(ctx.model->w1(), "w1");
  const Var w2 = Constant(ctx.model->w2(), "w2");

  for (int64_t step = 0; step < request.budget; ++step) {
    Var x = Var::Leaf(result.features, /*requires_grad=*/true, "X_hat");
    Var h = Relu(MatMul(norm_v, MatMul(x, w1)));
    Var logits = MatMul(norm_v, MatMul(h, w2));
    Var loss = NllRow(logits, v, request.target_label);
    const Tensor g = GradOne(loss, x).value();

    // A 0->1 flip changes the loss by ~ +g, a 1->0 flip by ~ -g: score each
    // bit by the signed change its flip induces; pick the most negative.
    int64_t best = -1;
    double best_delta = 0.0;  // Only flip if the loss is predicted to drop.
    for (int64_t j = 0; j < d; ++j) {
      bool already = false;
      for (int64_t f : result.flipped) {
        if (f == j) {
          already = true;
          break;
        }
      }
      if (already) continue;
      const double bit = result.features.at(v, j);
      const double delta = bit > 0.5 ? -g.at(v, j) : g.at(v, j);
      if (delta < best_delta) {
        best_delta = delta;
        best = j;
      }
    }
    if (best < 0) break;
    result.features.at(v, best) =
        result.features.at(v, best) > 0.5 ? 0.0 : 1.0;
    result.flipped.push_back(best);
  }
  return result;
}

}  // namespace geattack
