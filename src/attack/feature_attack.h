// Feature-perturbation attack (extension).
//
// The paper restricts its study to structure attacks and explicitly leaves
// feature perturbations as future work (§6).  This module implements the
// natural gradient-based variant for binary bag-of-words features: greedily
// flip the target node's feature bits whose attack-loss gradient promises
// the largest loss decrease — the feature-space analogue of FGA-T.  It
// shares the AttackContext/AttackRequest interface so the evaluation
// pipeline can score it, and exists to exercise the paper's "other types of
// adversarial perturbations" direction.

#ifndef GEATTACK_SRC_ATTACK_FEATURE_ATTACK_H_
#define GEATTACK_SRC_ATTACK_FEATURE_ATTACK_H_

#include "src/attack/attack.h"

namespace geattack {

/// Result of a feature attack: the perturbed feature matrix.
struct FeatureAttackResult {
  Tensor features;                 ///< Perturbed node features X̂.
  std::vector<int64_t> flipped;    ///< Flipped feature indices of the target.
};

/// Targeted greedy bit-flip attack on the target node's features.
class FeatureAttack {
 public:
  std::string name() const { return "FeatureFGA-T"; }

  /// Flips up to `request.budget` bits of the target's feature row so the
  /// model predicts `request.target_label`.  Only the target's own row is
  /// touched (direct attack); bits may flip 0→1 or 1→0.
  FeatureAttackResult Attack(const AttackContext& ctx,
                             const AttackRequest& request) const;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_FEATURE_ATTACK_H_
