#include "src/attack/fga_te.h"

#include <set>

namespace geattack {

std::vector<int64_t> FgaTeAttack::ExcludedNodes(
    const AttackContext& ctx, const Graph& current,
    const AttackRequest& request) const {
  // Explain the model's current prediction at the target on the current
  // (possibly already perturbed) graph, and avoid the subgraph's nodes.
  // Graph-native throughout; the context's shared X·W₁ fold is reused so
  // each evasion round costs O(|E_sub|·h).
  const Tensor logits =
      ctx.model->LogitsFromGraph(current, ctx.data->features);
  const int64_t predicted = logits.ArgMaxRow(request.target_node);
  GnnExplainer explainer(ctx.model, &ctx.data->features, explainer_config_);
  const Explanation explanation = explainer.ExplainGraph(
      current, request.target_node, predicted, &CachedXw1(ctx));
  std::set<int64_t> nodes;
  for (const Edge& e : explanation.TopEdges(subgraph_size_)) {
    nodes.insert(e.u);
    nodes.insert(e.v);
  }
  return {nodes.begin(), nodes.end()};
}

}  // namespace geattack
