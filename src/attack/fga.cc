#include "src/attack/fga.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "src/graph/subgraph.h"
#include "src/nn/sparse_forward.h"

namespace geattack {

int64_t BestCandidateByGradient(const Tensor& gradient, int64_t target,
                                const std::vector<int64_t>& candidates) {
  int64_t best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (int64_t j : candidates) {
    const double score = CheckFiniteScore(
        gradient.at(target, j) + gradient.at(j, target), "gradient score");
    if (score < best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

std::vector<int64_t> FgaAttack::ExcludedNodes(const AttackContext&,
                                              const Graph&,
                                              const AttackRequest&) const {
  return {};
}

AttackResult FgaAttack::Attack(const AttackContext& ctx,
                               const AttackRequest& request, Rng*) const {
  return use_sparse_ ? AttackSparse(ctx, request)
                     : AttackDense(ctx, request);
}

AttackResult FgaAttack::AttackDense(const AttackContext& ctx,
                                    const AttackRequest& request) const {
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  const GcnForwardContext& fwd = CachedForward(ctx);
  const int64_t v = request.target_node;
  Graph current = ctx.data->graph;

  for (int64_t step = 0; step < request.budget; ++step) {
    if (Cancelled(request)) {
      result.status = Status::TimedOut("deadline exceeded");
      break;
    }
    Var adj = Var::Leaf(result.adjacency, /*requires_grad=*/true, "A_hat");
    Var loss;
    if (targeted_) {
      GEA_CHECK(request.target_label >= 0);
      loss = TargetedAttackLoss(fwd, adj, v, request.target_label);
    } else {
      // Untargeted: maximize the loss of the current prediction, i.e.
      // minimize its negation.
      const Tensor logits =
          ctx.model->LogitsFromRaw(result.adjacency, ctx.data->features);
      loss = Neg(TargetedAttackLoss(fwd, adj, v, logits.ArgMaxRow(v)));
    }
    const Tensor gradient = GradOne(loss, adj).value();

    auto candidates = DirectAddCandidates(result.adjacency, v,
                                          ctx.data->labels, /*label*/ -1);
    const auto excluded = ExcludedNodes(ctx, current, request);
    if (!excluded.empty()) {
      // lint-ok: unordered-iteration (this `excluded` is the std::vector
      // returned by ExcludedNodes; `ex` is membership-only)
      const std::unordered_set<int64_t> ex(excluded.begin(), excluded.end());
      candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                      [&ex](int64_t j) { return ex.count(j); }),
                       candidates.end());
    }
    const int64_t pick = BestCandidateByGradient(gradient, v, candidates);
    if (pick < 0) break;
    AddEdgeDense(&result.adjacency, v, pick);
    current.AddEdge(v, pick);
    result.added_edges.emplace_back(v, pick);
  }
  return result;
}

std::vector<AttackResult> FgaAttack::AttackBatch(
    const AttackContext& ctx, const std::vector<AttackRequest>& requests,
    const std::vector<Rng*>& rngs) const {
  const int64_t k = static_cast<int64_t>(requests.size());
  if (!use_sparse_ || k <= 1)
    return TargetedAttack::AttackBatch(ctx, requests, rngs);
  GEA_CHECK(requests.size() == rngs.size());
  const Graph& clean = ctx.data->graph;

  std::vector<int64_t> targets;
  std::vector<std::vector<int64_t>> candidates;
  for (const AttackRequest& req : requests) {
    GEA_CHECK(targeted_ ? req.target_label >= 0 : true);
    targets.push_back(req.target_node);
    candidates.push_back(
        DirectAddCandidates(clean, req.target_node, ctx.data->labels,
                            /*label*/ -1));
  }
  const BatchedSubgraphView bview =
      BuildBatchedSubgraphView(clean, targets, /*hops=*/-1, candidates);
  StackedAttackForward ssf =
      MakeStackedAttackForward(bview, *ctx.model, CachedXw1(ctx));

  std::vector<AttackResult> results(static_cast<size_t>(k));
  std::vector<Graph> current(static_cast<size_t>(k), clean);
  std::vector<std::vector<char>> active(static_cast<size_t>(k));
  std::vector<char> done(static_cast<size_t>(k), 0);
  int64_t max_budget = 0;
  for (int64_t t = 0; t < k; ++t) {
    const int64_t m = ssf.per_target[static_cast<size_t>(t)]
                          .view->num_candidates();
    active[static_cast<size_t>(t)].assign(static_cast<size_t>(m), 1);
    if (m == 0) done[static_cast<size_t>(t)] = 1;
    max_budget = std::max(max_budget, requests[static_cast<size_t>(t)].budget);
  }

  for (int64_t step = 0; step < max_budget; ++step) {
    // The greedy rounds run in lockstep: target t is live while it still
    // has budget and candidates, and its committed state after `step` picks
    // matches the per-target loop's exactly.
    std::vector<int64_t> live;
    std::vector<char> is_live(static_cast<size_t>(k), 0);
    for (int64_t t = 0; t < k; ++t) {
      if (done[static_cast<size_t>(t)] ||
          step >= requests[static_cast<size_t>(t)].budget)
        continue;
      if (Cancelled(requests[static_cast<size_t>(t)])) {
        done[static_cast<size_t>(t)] = 1;
        results[static_cast<size_t>(t)].status =
            Status::TimedOut("deadline exceeded");
        continue;
      }
      live.push_back(t);
      is_live[static_cast<size_t>(t)] = 1;
    }
    if (live.empty()) break;

    std::vector<int64_t> labels(static_cast<size_t>(k), -1);
    for (int64_t t : live) {
      labels[static_cast<size_t>(t)] =
          targeted_ ? requests[static_cast<size_t>(t)].target_label
                    : ctx.model
                          ->LogitsFromGraph(current[static_cast<size_t>(t)],
                                            ctx.data->features)
                          .ArgMaxRow(requests[static_cast<size_t>(t)]
                                         .target_node);
    }

    // One stacked forward for every live target; finished targets ride
    // along as constant committed columns (no gradient work).
    std::vector<Var> ws(static_cast<size_t>(k));
    for (int64_t t = 0; t < k; ++t) {
      SparseAttackForward& pt = ssf.per_target[static_cast<size_t>(t)];
      ws[static_cast<size_t>(t)] =
          is_live[static_cast<size_t>(t)]
              ? Var::Leaf(Tensor::Zeros(pt.view->num_candidates(), 1),
                          /*requires_grad=*/true, "w")
              : Constant(Tensor::Zeros(pt.view->num_candidates(), 1), "w0");
    }
    Var stacked =
        StackedGcnLogitsVarFromValues(ssf, StackedRawValues(ssf, ws));
    Var total;
    std::vector<Var> live_ws;
    for (int64_t t : live) {
      Var loss = NllRow(
          StackedLogitsBlock(ssf, stacked, t),
          ssf.per_target[static_cast<size_t>(t)].view->target_local,
          labels[static_cast<size_t>(t)]);
      if (!targeted_) loss = Neg(loss);
      total = total.defined() ? Add(total, loss) : loss;
      live_ws.push_back(ws[static_cast<size_t>(t)]);
    }
    const std::vector<Var> grads = Grad(total, live_ws);

    for (size_t li = 0; li < live.size(); ++li) {
      const int64_t t = live[li];
      SparseAttackForward& pt = ssf.per_target[static_cast<size_t>(t)];
      const AttackRequest& req = requests[static_cast<size_t>(t)];
      const Tensor& g = grads[li].value();

      std::unordered_set<int64_t> excluded;
      for (int64_t j :
           ExcludedNodes(ctx, current[static_cast<size_t>(t)], req))
        excluded.insert(j);

      int64_t pick = -1;
      double best = std::numeric_limits<double>::infinity();
      const int64_t m = pt.view->num_candidates();
      for (int64_t c = 0; c < m; ++c) {
        if (!active[static_cast<size_t>(t)][static_cast<size_t>(c)]) continue;
        if (excluded.count(
                pt.view->candidates_global[static_cast<size_t>(c)]))
          continue;
        const double score =
            CheckFiniteScore(g.at(c, 0), "gradient score");
        if (score < best) {
          best = score;
          pick = c;
        }
      }
      if (pick < 0) {
        done[static_cast<size_t>(t)] = 1;
        continue;
      }
      const int64_t j =
          pt.view->candidates_global[static_cast<size_t>(pick)];
      CommitCandidate(&pt, pick);
      active[static_cast<size_t>(t)][static_cast<size_t>(pick)] = 0;
      current[static_cast<size_t>(t)].AddEdge(req.target_node, j);
      results[static_cast<size_t>(t)].added_edges.emplace_back(
          req.target_node, j);
    }
  }

  if (ctx.clean_adjacency.rows() > 0) {
    for (int64_t t = 0; t < k; ++t)
      results[static_cast<size_t>(t)].adjacency =
          current[static_cast<size_t>(t)].DenseAdjacency();
  }
  return results;
}

AttackResult FgaAttack::AttackSparse(const AttackContext& ctx,
                                     const AttackRequest& request) const {
  AttackResult result;
  const Graph& clean = ctx.data->graph;
  const int64_t v = request.target_node;
  GEA_CHECK(targeted_ ? request.target_label >= 0 : true);

  const std::vector<int64_t> candidates =
      DirectAddCandidates(clean, v, ctx.data->labels, /*label*/ -1);
  const SubgraphView view =
      BuildSubgraphView(clean, v, /*hops=*/-1, candidates);
  SparseAttackForward sf =
      MakeSparseAttackForward(view, *ctx.model, CachedXw1(ctx));
  const int64_t m = view.num_candidates();
  std::vector<char> active(static_cast<size_t>(m), 1);
  Graph current = clean;

  for (int64_t step = 0; step < request.budget && m > 0; ++step) {
    if (Cancelled(request)) {
      result.status = Status::TimedOut("deadline exceeded");
      break;
    }
    int64_t label = request.target_label;
    if (!targeted_) {
      label = ctx.model->LogitsFromGraph(current, ctx.data->features)
                  .ArgMaxRow(v);
    }
    Var w = Var::Leaf(Tensor::Zeros(m, 1), /*requires_grad=*/true, "w");
    Var loss =
        NllRow(SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, w)),
               view.target_local, label);
    if (!targeted_) loss = Neg(loss);
    const Tensor g = GradOne(loss, w).value();

    std::unordered_set<int64_t> excluded;
    for (int64_t j : ExcludedNodes(ctx, current, request)) excluded.insert(j);

    int64_t pick = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int64_t k = 0; k < m; ++k) {
      if (!active[static_cast<size_t>(k)]) continue;
      if (excluded.count(view.candidates_global[static_cast<size_t>(k)]))
        continue;
      const double score = CheckFiniteScore(g.at(k, 0), "gradient score");
      if (score < best) {
        best = score;
        pick = k;
      }
    }
    if (pick < 0) break;
    const int64_t j = view.candidates_global[static_cast<size_t>(pick)];
    CommitCandidate(&sf, pick);
    active[static_cast<size_t>(pick)] = 0;
    current.AddEdge(v, j);
    result.added_edges.emplace_back(v, j);
  }

  // Densify only when the context carries a dense clean adjacency (large
  // sparse-only contexts skip it).
  if (ctx.clean_adjacency.rows() > 0)
    result.adjacency = current.DenseAdjacency();
  return result;
}

}  // namespace geattack
