#include "src/attack/fga.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace geattack {

int64_t BestCandidateByGradient(const Tensor& gradient, int64_t target,
                                const std::vector<int64_t>& candidates) {
  int64_t best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (int64_t j : candidates) {
    const double score = gradient.at(target, j) + gradient.at(j, target);
    if (score < best_score) {
      best_score = score;
      best = j;
    }
  }
  // Only add an edge whose relaxed-gradient direction actually decreases
  // the loss.
  return best_score < 0.0 ? best : best;
}

std::vector<int64_t> FgaAttack::ExcludedNodes(const AttackContext&,
                                              const Tensor&,
                                              const AttackRequest&) const {
  return {};
}

AttackResult FgaAttack::Attack(const AttackContext& ctx,
                               const AttackRequest& request, Rng*) const {
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  const GcnForwardContext fwd = MakeForwardContext(*ctx.model,
                                                   ctx.data->features);
  const int64_t v = request.target_node;

  for (int64_t step = 0; step < request.budget; ++step) {
    Var adj = Var::Leaf(result.adjacency, /*requires_grad=*/true, "A_hat");
    Var loss;
    if (targeted_) {
      GEA_CHECK(request.target_label >= 0);
      loss = TargetedAttackLoss(fwd, adj, v, request.target_label);
    } else {
      // Untargeted: maximize the loss of the current prediction, i.e.
      // minimize its negation.
      const Tensor logits =
          ctx.model->LogitsFromRaw(result.adjacency, ctx.data->features);
      loss = Neg(TargetedAttackLoss(fwd, adj, v, logits.ArgMaxRow(v)));
    }
    const Tensor gradient = GradOne(loss, adj).value();

    auto candidates = DirectAddCandidates(result.adjacency, v,
                                          ctx.data->labels, /*label*/ -1);
    const auto excluded = ExcludedNodes(ctx, result.adjacency, request);
    if (!excluded.empty()) {
      const std::unordered_set<int64_t> ex(excluded.begin(), excluded.end());
      candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                      [&ex](int64_t j) { return ex.count(j); }),
                       candidates.end());
    }
    const int64_t pick = BestCandidateByGradient(gradient, v, candidates);
    if (pick < 0) break;
    AddEdgeDense(&result.adjacency, v, pick);
    result.added_edges.emplace_back(v, pick);
  }
  return result;
}

}  // namespace geattack
