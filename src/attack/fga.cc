#include "src/attack/fga.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "src/graph/subgraph.h"
#include "src/nn/sparse_forward.h"

namespace geattack {

int64_t BestCandidateByGradient(const Tensor& gradient, int64_t target,
                                const std::vector<int64_t>& candidates) {
  int64_t best = -1;
  double best_score = std::numeric_limits<double>::infinity();
  for (int64_t j : candidates) {
    const double score = gradient.at(target, j) + gradient.at(j, target);
    if (score < best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

std::vector<int64_t> FgaAttack::ExcludedNodes(const AttackContext&,
                                              const Graph&,
                                              const AttackRequest&) const {
  return {};
}

AttackResult FgaAttack::Attack(const AttackContext& ctx,
                               const AttackRequest& request, Rng*) const {
  return use_sparse_ ? AttackSparse(ctx, request)
                     : AttackDense(ctx, request);
}

AttackResult FgaAttack::AttackDense(const AttackContext& ctx,
                                    const AttackRequest& request) const {
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  const GcnForwardContext& fwd = CachedForward(ctx);
  const int64_t v = request.target_node;
  Graph current = ctx.data->graph;

  for (int64_t step = 0; step < request.budget; ++step) {
    Var adj = Var::Leaf(result.adjacency, /*requires_grad=*/true, "A_hat");
    Var loss;
    if (targeted_) {
      GEA_CHECK(request.target_label >= 0);
      loss = TargetedAttackLoss(fwd, adj, v, request.target_label);
    } else {
      // Untargeted: maximize the loss of the current prediction, i.e.
      // minimize its negation.
      const Tensor logits =
          ctx.model->LogitsFromRaw(result.adjacency, ctx.data->features);
      loss = Neg(TargetedAttackLoss(fwd, adj, v, logits.ArgMaxRow(v)));
    }
    const Tensor gradient = GradOne(loss, adj).value();

    auto candidates = DirectAddCandidates(result.adjacency, v,
                                          ctx.data->labels, /*label*/ -1);
    const auto excluded = ExcludedNodes(ctx, current, request);
    if (!excluded.empty()) {
      const std::unordered_set<int64_t> ex(excluded.begin(), excluded.end());
      candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                      [&ex](int64_t j) { return ex.count(j); }),
                       candidates.end());
    }
    const int64_t pick = BestCandidateByGradient(gradient, v, candidates);
    if (pick < 0) break;
    AddEdgeDense(&result.adjacency, v, pick);
    current.AddEdge(v, pick);
    result.added_edges.emplace_back(v, pick);
  }
  return result;
}

AttackResult FgaAttack::AttackSparse(const AttackContext& ctx,
                                     const AttackRequest& request) const {
  AttackResult result;
  const Graph& clean = ctx.data->graph;
  const int64_t v = request.target_node;
  GEA_CHECK(targeted_ ? request.target_label >= 0 : true);

  const std::vector<int64_t> candidates =
      DirectAddCandidates(clean, v, ctx.data->labels, /*label*/ -1);
  const SubgraphView view =
      BuildSubgraphView(clean, v, /*hops=*/-1, candidates);
  SparseAttackForward sf =
      MakeSparseAttackForward(view, *ctx.model, CachedXw1(ctx));
  const int64_t m = view.num_candidates();
  std::vector<char> active(static_cast<size_t>(m), 1);
  Graph current = clean;

  for (int64_t step = 0; step < request.budget && m > 0; ++step) {
    int64_t label = request.target_label;
    if (!targeted_) {
      label = ctx.model->LogitsFromGraph(current, ctx.data->features)
                  .ArgMaxRow(v);
    }
    Var w = Var::Leaf(Tensor::Zeros(m, 1), /*requires_grad=*/true, "w");
    Var loss =
        NllRow(SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, w)),
               view.target_local, label);
    if (!targeted_) loss = Neg(loss);
    const Tensor g = GradOne(loss, w).value();

    std::unordered_set<int64_t> excluded;
    for (int64_t j : ExcludedNodes(ctx, current, request)) excluded.insert(j);

    int64_t pick = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int64_t k = 0; k < m; ++k) {
      if (!active[static_cast<size_t>(k)]) continue;
      if (excluded.count(view.candidates_global[static_cast<size_t>(k)]))
        continue;
      if (g.at(k, 0) < best) {
        best = g.at(k, 0);
        pick = k;
      }
    }
    if (pick < 0) break;
    const int64_t j = view.candidates_global[static_cast<size_t>(pick)];
    CommitCandidate(&sf, pick);
    active[static_cast<size_t>(pick)] = 0;
    current.AddEdge(v, j);
    result.added_edges.emplace_back(v, j);
  }

  // Densify only when the context carries a dense clean adjacency (large
  // sparse-only contexts skip it).
  if (ctx.clean_adjacency.rows() > 0)
    result.adjacency = current.DenseAdjacency();
  return result;
}

}  // namespace geattack
