#include "src/attack/fault_injection.h"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <thread>

namespace geattack {

FaultInjectingAttack::FaultInjectingAttack(const TargetedAttack* inner)
    : inner_(inner),
      attack_calls_(std::make_shared<std::atomic<int64_t>>(0)) {
  GEA_CHECK(inner_ != nullptr);
}

void FaultInjectingAttack::InjectAt(int64_t target_node, FaultSpec spec) {
  faults_[target_node] = spec;
}

std::string FaultInjectingAttack::name() const {
  return inner_->name() + "+faults";
}

AttackResult FaultInjectingAttack::Attack(const AttackContext& ctx,
                                          const AttackRequest& request,
                                          Rng* rng) const {
  attack_calls_->fetch_add(1, std::memory_order_relaxed);
  const auto it = faults_.find(request.target_node);
  if (it != faults_.end()) {
    switch (it->second.kind) {
      case FaultKind::kThrow:
        throw std::runtime_error("injected fault");
      case FaultKind::kNaN:
        // Exercise the same tripwire the attack loops wrap candidate scores
        // in — this is what a poisoned gradient looks like to the driver.
        CheckFiniteScore(std::numeric_limits<double>::quiet_NaN(),
                         "injected fault score");
        break;
      case FaultKind::kDelay:
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            it->second.delay_ms));
        break;
    }
  }
  return inner_->Attack(ctx, request, rng);
}

}  // namespace geattack
