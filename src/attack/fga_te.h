// FGA-T&E baseline (paper §A.4): FGA-T that additionally tries to evade the
// explainer heuristically — before selecting each adversarial edge, it runs
// GNNExplainer on the current graph and excludes the nodes of the generated
// explanation subgraph from the candidate set.  Table 1 shows this naive
// evasion barely helps, which is what motivates GEAttack's bilevel design.

#ifndef GEATTACK_SRC_ATTACK_FGA_TE_H_
#define GEATTACK_SRC_ATTACK_FGA_TE_H_

#include "src/attack/fga.h"
#include "src/explain/gnn_explainer.h"

namespace geattack {

/// FGA-T with heuristic explainer evasion.
class FgaTeAttack : public FgaAttack {
 public:
  /// `subgraph_size` is the explanation size L whose nodes are avoided.
  explicit FgaTeAttack(GnnExplainerConfig explainer_config,
                       int64_t subgraph_size = 20)
      : FgaAttack(/*targeted=*/true),
        explainer_config_(explainer_config),
        subgraph_size_(subgraph_size) {}

  std::string name() const override { return "FGA-T&E"; }

 protected:
  std::vector<int64_t> ExcludedNodes(const AttackContext& ctx,
                                     const Graph& current,
                                     const AttackRequest& request)
      const override;

 private:
  GnnExplainerConfig explainer_config_;
  int64_t subgraph_size_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_FGA_TE_H_
