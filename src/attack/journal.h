// Append-only, fsync'd write-ahead journals for attack runs and the live
// attack service ("geajournal v3"; v1 and v2 journals still load).
//
// Two journal flavors share one on-disk grammar:
//
//   * DRIVER journals (one per RunMultiTargetAttack call): one `r` record
//     per completed target; a killed run resumes by replaying the journal
//     and attacking only the missing targets.  Because every target draws
//     from its own TargetSeed(base_seed, request_index) stream, the resumed
//     targets compute exactly what an uninterrupted run would have — final
//     results are byte-identical.
//   * SERVICE journals (WAL of a long-lived AttackService): `s` records
//     make admissions durable before Submit returns, `g` records log each
//     churn batch (with the tickets it re-pinned), and `t` records log each
//     finalized ticket.  AttackService::Recover replays the WAL in file
//     order — rebuilding every epoch, completed result, and still-pending
//     ticket from journal records alone (no clock bits) — and re-runs only
//     the remainder.
//
// On-disk format (line-oriented text, reusing src/graph/io_text.h):
//
//   geajournal v3
//   meta <base_seed> <num_requests>        (service WALs use -1: streaming)
//   r <request_index> <status_code> <num_edges> [u v]... <msg_len>
//   <msg_len raw message bytes>
//   c <crc32> ;
//   s <ticket> <accepted_index> <epoch> <target> <label> <budget> <priority>
//     <name_len>                           (one line in the file)
//   <name_len raw version-name bytes>
//   c <crc32> ;
//   g <epoch> <n_bumped> [ticket]... <n_add> [u v]... <n_rem> [u v]...
//     <name_len>                           (one line in the file)
//   <name_len raw version-name bytes>
//   c <crc32> ;
//   t <ticket> <attempts> <effective_budget> <epoch> <status_code>
//     <num_edges> [u v]... <msg_len>       (one line in the file)
//   <msg_len raw message bytes>
//   c <crc32> ;
//
// Status messages and version names are length-prefixed raw bytes so
// replayed results carry byte-identical diagnostics.  Every record's `c`
// line carries a CRC32 (polynomial 0xEDB88320) over the record bytes from
// the leading tag through the end of the raw payload, so a flipped byte
// inside an otherwise-parseable record — e.g. a silently corrupted edge
// endpoint that still range-checks — is detected instead of replayed as a
// wrong-but-plausible result.  v1 records (no `c` line) load without
// integrity checking for backward compatibility; v2 differs from v3 only in
// the header (no service records were ever written under v2, and `r`
// records are grammar-identical), so a v2 driver journal resumes in place
// without a rewrite.  A v1 journal cannot take CRC'd appends under its
// header, so the driver migrates it — atomically: the replayed records are
// rewritten to `<path>.rewrite.tmp`, fsync'd, and rename(2)'d over the
// original, so a kill at ANY point mid-migration leaves either the intact
// v1 file or a complete v3 file, never a half-rewritten hybrid
// (RewriteJournal below; pinned by fault_tolerance_test).
//
// Records are durable when Append returns (write + fsync; the opening of a
// journal also fsyncs the PARENT DIRECTORY, so a crash right after creation
// cannot lose the directory entry itself).  A torn tail (the record being
// written when the process died) parses as invalid and is truncated away on
// resume, silently — that is the expected kill artifact.  A *complete*
// record whose CRC mismatches is different: it is structured data loss,
// reported in the load result's status; replay stops before it and the
// resuming writer truncates from there, so the corrupt record is recomputed
// rather than trusted.  A journal whose header or meta line does not match
// the run (different seed or request count) is ignored and overwritten — it
// belongs to some other run.

#ifndef GEATTACK_SRC_ATTACK_JOURNAL_H_
#define GEATTACK_SRC_ATTACK_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/attack/attack.h"
#include "src/base/status.h"

namespace geattack {

/// One replayed driver-journal entry.  `result` carries added_edges and
/// status only; the driver reconstructs the dense adjacency (exactly
/// 0.0/1.0 values) from the context's clean adjacency.
struct JournalRecord {
  int64_t request_index = -1;
  AttackResult result;
};

struct JournalLoadResult {
  /// Ok, or kDataLoss when a complete CRC'd record failed its check (the
  /// record and everything after it are dropped from `records`, and
  /// valid_bytes points before it so the corrupt tail is truncated on
  /// resume).  A torn tail is NOT data loss — it is the normal kill
  /// artifact.
  Status status;
  /// Magic + meta matched this run's (base_seed, num_requests).
  bool header_ok = false;
  /// The file was "geajournal v1" (records carry no CRC).  A legacy journal
  /// replays fine, but the driver must not append CRC'd records under a v1
  /// header — it migrates the file to v3 via RewriteJournal (atomic
  /// tmp + rename) before resuming.
  bool legacy = false;
  /// Byte offset just past the last complete record — the resume offset.
  /// 0 when header_ok is false (the file will be overwritten).
  int64_t valid_bytes = 0;
  /// Complete records in file order (indices validated against
  /// num_requests; the driver takes the first record per index — the
  /// writer appends each target exactly once, so duplicates only arise
  /// from corruption).
  std::vector<JournalRecord> records;
};

/// Replays `path`.  A missing or unreadable file is a normal fresh start
/// (header_ok = false, no records).  Parsing stops at the first torn or
/// malformed record; everything before it is returned.
JournalLoadResult LoadAttackJournal(const std::string& path,
                                    uint64_t base_seed, int64_t num_requests);

/// Appends durable records; one instance per run, writes serialized by the
/// driver's journal mutex.
class AttackJournalWriter {
 public:
  AttackJournalWriter() = default;
  ~AttackJournalWriter();
  AttackJournalWriter(const AttackJournalWriter&) = delete;
  AttackJournalWriter& operator=(const AttackJournalWriter&) = delete;

  /// Opens `path` truncated to `resume_offset` (any torn tail past the last
  /// complete record is discarded); offset 0 starts fresh and writes the
  /// v3 header + meta lines.  Durability: the file AND its parent
  /// directory are fsync'd before this returns, so a crash immediately
  /// after creation cannot lose the directory entry.
  Status Open(const std::string& path, int64_t resume_offset,
              uint64_t base_seed, int64_t num_requests);

  bool is_open() const { return fd_ >= 0; }

  /// Appends one record; durable (fsync'd) when this returns Ok.
  Status Append(int64_t request_index, const AttackResult& result);

 private:
  int fd_ = -1;
};

/// Atomically replaces `path` with a fresh v3 journal holding exactly
/// `records`: writes `<path>.rewrite.tmp`, fsyncs it, rename(2)s it over
/// `path`, and fsyncs the parent directory.  A kill before the rename
/// leaves `path` untouched (plus a stale tmp the next rewrite truncates); a
/// kill after it leaves the complete new file — never a half-rewritten
/// journal.  On success `*resume_offset` is the new file size, ready to
/// pass to AttackJournalWriter::Open.
Status RewriteJournal(const std::string& path, uint64_t base_seed,
                      int64_t num_requests,
                      const std::vector<JournalRecord>& records,
                      int64_t* resume_offset);

// ----- Service WAL (AttackService crash recovery). ---------------------------

/// One applied churn batch (`g`).  `bumped_tickets` lists the queued
/// tickets the service re-pinned to the new epoch, journaled explicitly so
/// recovery replays the pinning decision instead of re-deriving a
/// load-order-dependent overlap rule.
struct ServiceChurnRecord {
  std::string version;
  int64_t epoch = 0;  ///< The epoch this batch created (prev epoch + 1).
  std::vector<int64_t> bumped_tickets;
  std::vector<Edge> added;
  std::vector<Edge> removed;
};

/// One durable admission (`s`), appended before Submit returns its ticket.
struct ServiceSubmitRecord {
  int64_t ticket = -1;
  int64_t accepted_index = -1;
  int64_t epoch = 0;  ///< Epoch of `version` the request was pinned to.
  int64_t target_node = -1;
  int64_t target_label = -1;
  int64_t budget = 0;
  int64_t priority = 0;
  std::string version;
};

/// One finalized ticket (`t`) — the commit point of exactly-once delivery:
/// a ticket with a complete `t` record replays its recorded result on
/// recovery; one without is re-run on its recorded seed stream.
struct ServiceCompleteRecord {
  int64_t ticket = -1;
  int64_t attempts = 0;
  int64_t effective_budget = 0;
  int64_t epoch = 0;  ///< Epoch the final attempt was computed at.
  /// status + added_edges; the dense adjacency is rebuilt on replay.
  AttackResult result;
};

/// One WAL event in file order.
struct ServiceJournalEvent {
  enum class Kind { kChurn, kSubmit, kComplete };
  Kind kind = Kind::kSubmit;
  ServiceChurnRecord churn;
  ServiceSubmitRecord submit;
  ServiceCompleteRecord complete;
};

struct ServiceJournalLoadResult {
  /// Ok, or kDataLoss for a complete record failing CRC (as above).
  Status status;
  /// Magic v3 + meta matched (base_seed, -1).
  bool header_ok = false;
  /// Resume offset past the last complete record.
  int64_t valid_bytes = 0;
  std::vector<ServiceJournalEvent> events;
};

/// Replays a service WAL.  Same fresh-start / torn-tail / CRC semantics as
/// LoadAttackJournal; only v3 headers qualify (service records never
/// existed before v3).
ServiceJournalLoadResult LoadServiceJournal(const std::string& path,
                                            uint64_t base_seed);

/// Append-side of the service WAL; writes serialized under the service's
/// mutex so file order equals admission/finalization order.
class ServiceJournalWriter {
 public:
  ServiceJournalWriter() = default;
  ~ServiceJournalWriter();
  ServiceJournalWriter(const ServiceJournalWriter&) = delete;
  ServiceJournalWriter& operator=(const ServiceJournalWriter&) = delete;

  /// As AttackJournalWriter::Open (v3 header, `meta <base_seed> -1`,
  /// file + parent-directory fsync).
  Status Open(const std::string& path, int64_t resume_offset,
              uint64_t base_seed);

  bool is_open() const { return fd_ >= 0; }

  Status AppendChurn(const ServiceChurnRecord& record);
  Status AppendSubmit(const ServiceSubmitRecord& record);
  Status AppendComplete(const ServiceCompleteRecord& record);

 private:
  int fd_ = -1;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_JOURNAL_H_
