// Append-only, fsync'd checkpoint journal for multi-target attack runs
// ("geajournal v2"; v1 journals still load).
//
// The driver appends one record per completed target; a killed run resumes
// by replaying the journal and attacking only the missing targets.  Because
// every target draws from its own TargetSeed(base_seed, request_index)
// stream, the resumed targets compute exactly what an uninterrupted run
// would have — final results are byte-identical.
//
// On-disk format (line-oriented text, reusing src/graph/io_text.h):
//
//   geajournal v2
//   meta <base_seed> <num_requests>
//   r <request_index> <status_code> <num_edges> [u v]... <msg_len>
//   <msg_len raw message bytes>
//   c <crc32> ;
//
// The status message is length-prefixed raw bytes so resumed results carry
// byte-identical diagnostics.  The v2 `c` line carries a CRC32 (polynomial
// 0xEDB88320) over the record bytes from the leading 'r' through the end of
// the message, so a flipped byte inside an otherwise-parseable record —
// e.g. a silently corrupted edge endpoint that still range-checks — is
// detected instead of replayed as a wrong-but-plausible result.  v1 records
// (no `c` line) load without integrity checking for backward compatibility.
//
// Records are durable when Append returns (write + fsync); a torn tail
// (the record being written when the process died) parses as invalid and
// is truncated away on resume, silently — that is the expected kill
// artifact.  A *complete* record whose CRC mismatches is different: it is
// structured data loss, reported in JournalLoadResult::status; replay
// stops before it and the resuming writer truncates from there, so the
// corrupt result is recomputed rather than trusted.  A journal whose
// header or meta line does not match the run (different seed or request
// count) is ignored and overwritten — it belongs to some other run.

#ifndef GEATTACK_SRC_ATTACK_JOURNAL_H_
#define GEATTACK_SRC_ATTACK_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/attack/attack.h"
#include "src/base/status.h"

namespace geattack {

/// One replayed journal entry.  `result` carries added_edges and status
/// only; the driver reconstructs the dense adjacency (exactly 0.0/1.0
/// values) from the context's clean adjacency.
struct JournalRecord {
  int64_t request_index = -1;
  AttackResult result;
};

struct JournalLoadResult {
  /// Ok, or kDataLoss when a complete v2 record failed its CRC (the record
  /// and everything after it are dropped from `records`, and valid_bytes
  /// points before it so the corrupt tail is truncated on resume).  A torn
  /// tail is NOT data loss — it is the normal kill artifact.
  Status status;
  /// Magic + meta matched this run's (base_seed, num_requests).
  bool header_ok = false;
  /// The file was "geajournal v1" (records carry no CRC).  A legacy journal
  /// replays fine, but the driver must not append v2 records under a v1
  /// header — it rewrites the file as v2 (header + replayed records) before
  /// resuming, migrating the journal in place.
  bool legacy = false;
  /// Byte offset just past the last complete record — the resume offset.
  /// 0 when header_ok is false (the file will be overwritten).
  int64_t valid_bytes = 0;
  /// Complete records in file order (indices validated against
  /// num_requests; the driver takes the first record per index — the
  /// writer appends each target exactly once, so duplicates only arise
  /// from corruption).
  std::vector<JournalRecord> records;
};

/// Replays `path`.  A missing or unreadable file is a normal fresh start
/// (header_ok = false, no records).  Parsing stops at the first torn or
/// malformed record; everything before it is returned.
JournalLoadResult LoadAttackJournal(const std::string& path,
                                    uint64_t base_seed, int64_t num_requests);

/// Appends durable records; one instance per run, writes serialized by the
/// driver's journal mutex.
class AttackJournalWriter {
 public:
  AttackJournalWriter() = default;
  ~AttackJournalWriter();
  AttackJournalWriter(const AttackJournalWriter&) = delete;
  AttackJournalWriter& operator=(const AttackJournalWriter&) = delete;

  /// Opens `path` truncated to `resume_offset` (any torn tail past the last
  /// complete record is discarded); offset 0 starts fresh and writes the
  /// header + meta lines.
  Status Open(const std::string& path, int64_t resume_offset,
              uint64_t base_seed, int64_t num_requests);

  bool is_open() const { return fd_ >= 0; }

  /// Appends one record; durable (fsync'd) when this returns Ok.
  Status Append(int64_t request_index, const AttackResult& result);

 private:
  int fd_ = -1;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_JOURNAL_H_
