#include "src/attack/ig_attack.h"

#include <algorithm>
#include <limits>

namespace geattack {

AttackResult IgAttack::Attack(const AttackContext& ctx,
                              const AttackRequest& request, Rng*) const {
  GEA_CHECK(request.target_label >= 0);
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  const GcnForwardContext fwd =
      MakeForwardContext(*ctx.model, ctx.data->features);
  const int64_t v = request.target_node;

  for (int64_t step = 0; step < request.budget; ++step) {
    auto candidates = DirectAddCandidates(result.adjacency, v,
                                          ctx.data->labels, /*label*/ -1);
    if (candidates.empty()) break;

    // Optional gradient shortlist: keep the `shortlist` candidates with the
    // most loss-decreasing plain gradient.
    if (config_.shortlist > 0 &&
        static_cast<int64_t>(candidates.size()) > config_.shortlist) {
      Var adj = Var::Leaf(result.adjacency, true, "A_hat");
      Var loss = TargetedAttackLoss(fwd, adj, v, request.target_label);
      const Tensor g = GradOne(loss, adj).value();
      std::sort(candidates.begin(), candidates.end(),
                [&](int64_t a, int64_t b) {
                  return g.at(v, a) + g.at(a, v) < g.at(v, b) + g.at(b, v);
                });
      candidates.resize(static_cast<size_t>(config_.shortlist));
    }

    // Exact per-candidate integrated gradients along the single-entry path.
    int64_t best = -1;
    double best_ig = std::numeric_limits<double>::infinity();
    for (int64_t j : candidates) {
      double ig = 0.0;
      for (int64_t k = 1; k <= config_.steps; ++k) {
        const double alpha =
            static_cast<double>(k) / static_cast<double>(config_.steps);
        Tensor interp = result.adjacency;
        interp.at(v, j) = alpha;
        interp.at(j, v) = alpha;
        Var adj = Var::Leaf(interp, true, "A_alpha");
        Var loss = TargetedAttackLoss(fwd, adj, v, request.target_label);
        const Tensor g = GradOne(loss, adj).value();
        ig += g.at(v, j) + g.at(j, v);
      }
      ig /= static_cast<double>(config_.steps);
      if (ig < best_ig) {
        best_ig = ig;
        best = j;
      }
    }
    if (best < 0) break;
    AddEdgeDense(&result.adjacency, v, best);
    result.added_edges.emplace_back(v, best);
  }
  return result;
}

}  // namespace geattack
