#include "src/attack/ig_attack.h"

#include <algorithm>
#include <limits>

#include "src/graph/subgraph.h"
#include "src/nn/sparse_forward.h"

namespace geattack {

AttackResult IgAttack::Attack(const AttackContext& ctx,
                              const AttackRequest& request, Rng*) const {
  GEA_CHECK(request.target_label >= 0);
  return config_.use_sparse ? AttackSparse(ctx, request)
                            : AttackDense(ctx, request);
}

AttackResult IgAttack::AttackDense(const AttackContext& ctx,
                                   const AttackRequest& request) const {
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  const GcnForwardContext& fwd = CachedForward(ctx);
  const int64_t v = request.target_node;

  bool timed_out = false;
  for (int64_t step = 0; step < request.budget && !timed_out; ++step) {
    if (Cancelled(request)) break;
    auto candidates = DirectAddCandidates(result.adjacency, v,
                                          ctx.data->labels, /*label*/ -1);
    if (candidates.empty()) break;

    // Optional gradient shortlist: keep the `shortlist` candidates with the
    // most loss-decreasing plain gradient.
    if (config_.shortlist > 0 &&
        static_cast<int64_t>(candidates.size()) > config_.shortlist) {
      Var adj = Var::Leaf(result.adjacency, true, "A_hat");
      Var loss = TargetedAttackLoss(fwd, adj, v, request.target_label);
      const Tensor g = GradOne(loss, adj).value();
      std::sort(candidates.begin(), candidates.end(),
                [&](int64_t a, int64_t b) {
                  return g.at(v, a) + g.at(a, v) < g.at(v, b) + g.at(b, v);
                });
      candidates.resize(static_cast<size_t>(config_.shortlist));
    }

    // Exact per-candidate integrated gradients along the single-entry path.
    // One IG round is `steps` full backwards per candidate — by far the
    // most expensive greedy round in the suite — so the deadline is also
    // polled per candidate.
    int64_t best = -1;
    double best_ig = std::numeric_limits<double>::infinity();
    for (int64_t j : candidates) {
      if (Cancelled(request)) {
        timed_out = true;
        break;
      }
      double ig = 0.0;
      for (int64_t k = 1; k <= config_.steps; ++k) {
        const double alpha =
            static_cast<double>(k) / static_cast<double>(config_.steps);
        Tensor interp = result.adjacency;
        interp.at(v, j) = alpha;
        interp.at(j, v) = alpha;
        Var adj = Var::Leaf(interp, true, "A_alpha");
        Var loss = TargetedAttackLoss(fwd, adj, v, request.target_label);
        const Tensor g = GradOne(loss, adj).value();
        ig += g.at(v, j) + g.at(j, v);
      }
      ig = CheckFiniteScore(ig / static_cast<double>(config_.steps),
                            "integrated-gradient score");
      if (ig < best_ig) {
        best_ig = ig;
        best = j;
      }
    }
    if (timed_out || best < 0) break;
    AddEdgeDense(&result.adjacency, v, best);
    result.added_edges.emplace_back(v, best);
  }
  if (timed_out || Cancelled(request))
    result.status = Status::TimedOut("deadline exceeded");
  return result;
}

AttackResult IgAttack::AttackSparse(const AttackContext& ctx,
                                    const AttackRequest& request) const {
  AttackResult result;
  const Graph& clean = ctx.data->graph;
  const int64_t v = request.target_node;

  const std::vector<int64_t> candidates =
      DirectAddCandidates(clean, v, ctx.data->labels, /*label*/ -1);
  const SubgraphView view =
      BuildSubgraphView(clean, v, /*hops=*/-1, candidates);
  SparseAttackForward sf =
      MakeSparseAttackForward(view, *ctx.model, CachedXw1(ctx));
  const int64_t m = view.num_candidates();
  std::vector<char> active(static_cast<size_t>(m), 1);
  Graph current = clean;

  // Loss of the target label with candidate values `w`; gradient (m, 1).
  auto grad_at = [&](const Tensor& w_tensor) {
    Var w = Var::Leaf(w_tensor, /*requires_grad=*/true, "w");
    Var loss =
        NllRow(SparseGcnLogitsVar(sf, RawValuesFromCandidates(sf, w)),
               view.target_local, request.target_label);
    return GradOne(loss, w).value();
  };

  bool timed_out = false;
  for (int64_t step = 0; step < request.budget && m > 0 && !timed_out;
       ++step) {
    if (Cancelled(request)) break;
    std::vector<int64_t> pool;  // Candidate indices into the view.
    for (int64_t k = 0; k < m; ++k)
      if (active[static_cast<size_t>(k)]) pool.push_back(k);
    if (pool.empty()) break;

    if (config_.shortlist > 0 &&
        static_cast<int64_t>(pool.size()) > config_.shortlist) {
      const Tensor g = grad_at(Tensor::Zeros(m, 1));
      std::sort(pool.begin(), pool.end(), [&](int64_t a, int64_t b) {
        return g.at(a, 0) < g.at(b, 0);
      });
      pool.resize(static_cast<size_t>(config_.shortlist));
    }

    int64_t best = -1;
    double best_ig = std::numeric_limits<double>::infinity();
    Tensor w_tensor = Tensor::Zeros(m, 1);
    for (int64_t k : pool) {
      if (Cancelled(request)) {
        timed_out = true;
        break;
      }
      double ig = 0.0;
      for (int64_t s = 1; s <= config_.steps; ++s) {
        w_tensor.at(k, 0) =
            static_cast<double>(s) / static_cast<double>(config_.steps);
        ig += grad_at(w_tensor).at(k, 0);
      }
      w_tensor.at(k, 0) = 0.0;
      ig = CheckFiniteScore(ig / static_cast<double>(config_.steps),
                            "integrated-gradient score");
      if (ig < best_ig) {
        best_ig = ig;
        best = k;
      }
    }
    if (timed_out || best < 0) break;
    const int64_t j = view.candidates_global[static_cast<size_t>(best)];
    CommitCandidate(&sf, best);
    active[static_cast<size_t>(best)] = 0;
    current.AddEdge(v, j);
    result.added_edges.emplace_back(v, j);
  }

  if (timed_out || Cancelled(request))
    result.status = Status::TimedOut("deadline exceeded");
  if (ctx.clean_adjacency.rows() > 0)
    result.adjacency = current.DenseAdjacency();
  return result;
}

}  // namespace geattack
