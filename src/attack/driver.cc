#include "src/attack/driver.h"

#include <algorithm>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "src/graph/subgraph.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace geattack {

uint64_t TargetSeed(uint64_t base_seed, int64_t target_index) {
  // SplitMix64 finalizer over the combined state.  The golden-ratio
  // increment separates consecutive target indices far apart in state
  // space; the two xor-shift-multiply rounds mix every input bit into
  // every output bit, so per-target engines (mt19937_64 seeded with this)
  // see unrelated streams.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL *
                               (static_cast<uint64_t>(target_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

/// Per-worker target queues with stealing.  Each worker pops from the front
/// of its own queue and, when empty, steals from the *back* of the busiest
/// other queue — classic work stealing at per-target granularity (a mutex
/// per queue is plenty at this grain; tasks run for milliseconds to
/// seconds).
class StealingQueues {
 public:
  StealingQueues(int64_t num_tasks, int num_workers)
      : queues_(static_cast<size_t>(num_workers)),
        mutexes_(static_cast<size_t>(num_workers)) {
    // Round-robin initial distribution keeps neighboring targets (often
    // similar cost) spread across workers.
    for (int64_t t = 0; t < num_tasks; ++t)
      queues_[static_cast<size_t>(t % num_workers)].push_back(t);
  }

  /// Next task for `worker`, or -1 when every queue is drained.
  int64_t Pop(int worker) {
    {
      std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(worker)]);
      auto& q = queues_[static_cast<size_t>(worker)];
      if (!q.empty()) {
        const int64_t t = q.front();
        q.pop_front();
        return t;
      }
    }
    // Steal from the victim with the most remaining work.
    const int n = static_cast<int>(queues_.size());
    for (int attempt = 0; attempt < n; ++attempt) {
      int victim = -1;
      size_t best = 0;
      for (int w = 0; w < n; ++w) {
        if (w == worker) continue;
        std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(w)]);
        if (queues_[static_cast<size_t>(w)].size() > best) {
          best = queues_[static_cast<size_t>(w)].size();
          victim = w;
        }
      }
      if (victim < 0) return -1;
      std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(victim)]);
      auto& q = queues_[static_cast<size_t>(victim)];
      if (q.empty()) continue;  // Raced; rescan.
      const int64_t t = q.back();
      q.pop_back();
      return t;
    }
    return -1;
  }

 private:
  std::vector<std::deque<int64_t>> queues_;
  std::vector<std::mutex> mutexes_;
};

void WarmSharedCaches(const AttackContext& ctx) {
  // Build the lazily-initialized shared structures every attacker touches
  // before workers spawn.  The once_flags make concurrent first use safe
  // anyway; warming just keeps the folds off the critical path of one
  // unlucky worker.  CachedPenaltyBase is deliberately NOT warmed: it is
  // O(n²), only the dense GEAttack paths read it, and its call_once covers
  // them.
  CachedForward(ctx);
  if (!ctx.clean_csr.empty()) ctx.clean_csr.pattern()->Transpose();
  if (!ctx.clean_norm_csr.empty()) ctx.clean_norm_csr.pattern()->Transpose();
}

}  // namespace

std::vector<AttackResult> RunMultiTargetAttack(
    const AttackContext& ctx, const TargetedAttack& attack,
    const std::vector<AttackRequest>& requests,
    const AttackDriverConfig& config) {
  std::vector<AttackResult> results(requests.size());
  if (requests.empty()) return results;

  // The task unit is a target *group*: singletons when batch_targets <= 1
  // (the PR-4 schedule), shared-neighbor groups otherwise.  Each member
  // keeps the stream of its ORIGINAL request index, so the grouping (and
  // the thread count) is invisible in the results.
  std::vector<std::vector<int64_t>> groups;
  if (config.batch_targets <= 1) {
    groups.reserve(requests.size());
    for (int64_t i = 0; i < static_cast<int64_t>(requests.size()); ++i)
      groups.push_back({i});
  } else {
    GEA_CHECK(ctx.data != nullptr);
    std::vector<int64_t> targets;
    targets.reserve(requests.size());
    for (const AttackRequest& r : requests) targets.push_back(r.target_node);
    groups = GroupTargetsBySharedNeighbors(ctx.data->graph, targets,
                                           config.batch_targets);
  }

  auto run_group = [&](int64_t gi) {
    const std::vector<int64_t>& group = groups[static_cast<size_t>(gi)];
    std::vector<AttackRequest> group_requests;
    std::vector<Rng> rngs;
    std::vector<Rng*> rng_ptrs;
    group_requests.reserve(group.size());
    rngs.reserve(group.size());
    for (int64_t i : group) {
      group_requests.push_back(requests[static_cast<size_t>(i)]);
      rngs.emplace_back(TargetSeed(config.base_seed, i));
    }
    for (Rng& r : rngs) rng_ptrs.push_back(&r);
    std::vector<AttackResult> group_results =
        attack.AttackBatch(ctx, group_requests, rng_ptrs);
    GEA_CHECK(group_results.size() == group.size());
    for (size_t g = 0; g < group.size(); ++g)
      results[static_cast<size_t>(group[g])] = std::move(group_results[g]);
  };

  const int threads = static_cast<int>(
      std::min<int64_t>(std::max(config.num_threads, 1),
                        static_cast<int64_t>(groups.size())));
  if (threads <= 1) {
    for (int64_t gi = 0; gi < static_cast<int64_t>(groups.size()); ++gi)
      run_group(gi);
    return results;
  }

  WarmSharedCaches(ctx);
#ifdef _OPENMP
  // Split the machine's OpenMP budget across the workers so the row-parallel
  // kernels inside each attack don't oversubscribe cores threads-fold.  The
  // ICV is per-thread, and OpenMP team size never affects kernel *values*
  // (rows are whole-row assigned, reductions never split), so this is a
  // pure scheduling knob.
  const int omp_budget = std::max(1, omp_get_max_threads() / threads);
#endif
  StealingQueues queues(static_cast<int64_t>(groups.size()), threads);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&queues, &run_group, w
#ifdef _OPENMP
                          ,
                          omp_budget
#endif
    ] {
#ifdef _OPENMP
      omp_set_num_threads(omp_budget);
#endif
      for (int64_t t = queues.Pop(w); t >= 0; t = queues.Pop(w)) run_group(t);
    });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

}  // namespace geattack
