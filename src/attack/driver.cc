#include "src/attack/driver.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "src/attack/journal.h"
#include "src/graph/subgraph.h"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace geattack {

uint64_t TargetSeed(uint64_t base_seed, int64_t target_index) {
  // SplitMix64 finalizer over the combined state.  The golden-ratio
  // increment separates consecutive target indices far apart in state
  // space; the two xor-shift-multiply rounds mix every input bit into
  // every output bit, so per-target engines (mt19937_64 seeded with this)
  // see unrelated streams.
  uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL *
                               (static_cast<uint64_t>(target_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

/// Per-worker target queues with stealing.  Each worker pops from the front
/// of its own queue and, when empty, steals from the *back* of the busiest
/// other queue — classic work stealing at per-target granularity (a mutex
/// per queue is plenty at this grain; tasks run for milliseconds to
/// seconds).
class StealingQueues {
 public:
  StealingQueues(int64_t num_tasks, int num_workers)
      : queues_(static_cast<size_t>(num_workers)),
        mutexes_(static_cast<size_t>(num_workers)) {
    // Round-robin initial distribution keeps neighboring targets (often
    // similar cost) spread across workers.
    for (int64_t t = 0; t < num_tasks; ++t)
      queues_[static_cast<size_t>(t % num_workers)].push_back(t);
  }

  /// Next task for `worker`, or -1 when every queue is drained.
  int64_t Pop(int worker) {
    {
      std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(worker)]);
      auto& q = queues_[static_cast<size_t>(worker)];
      if (!q.empty()) {
        const int64_t t = q.front();
        q.pop_front();
        return t;
      }
    }
    // Steal from the victim with the most remaining work.
    const int n = static_cast<int>(queues_.size());
    for (int attempt = 0; attempt < n; ++attempt) {
      int victim = -1;
      size_t best = 0;
      for (int w = 0; w < n; ++w) {
        if (w == worker) continue;
        std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(w)]);
        if (queues_[static_cast<size_t>(w)].size() > best) {
          best = queues_[static_cast<size_t>(w)].size();
          victim = w;
        }
      }
      if (victim < 0) return -1;
      std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(victim)]);
      auto& q = queues_[static_cast<size_t>(victim)];
      if (q.empty()) continue;  // Raced; rescan.
      const int64_t t = q.back();
      q.pop_back();
      return t;
    }
    return -1;
  }

 private:
  std::vector<std::deque<int64_t>> queues_;
  std::vector<std::mutex> mutexes_;
};

void WarmSharedCaches(const AttackContext& ctx) {
  // Build the lazily-initialized shared structures every attacker touches
  // before workers spawn.  The once_flags make concurrent first use safe
  // anyway; warming just keeps the folds off the critical path of one
  // unlucky worker.  CachedPenaltyBase is deliberately NOT warmed: it is
  // O(n²), only the dense GEAttack paths read it, and its call_once covers
  // them.
  CachedForward(ctx);
  if (!ctx.clean_csr.empty()) ctx.clean_csr.pattern()->Transpose();
  if (!ctx.clean_norm_csr.empty()) ctx.clean_norm_csr.pattern()->Transpose();
}

/// Empty string when `request` is well-formed; the documented rejection
/// message otherwise (the request becomes a kInvalidArgument result
/// without running — no UB, no abort).
std::string ValidateRequest(const AttackContext& ctx,
                            const AttackRequest& request) {
  const int64_t n = ctx.data->num_nodes();
  if (request.target_node < 0 || request.target_node >= n)
    return "target_node " + std::to_string(request.target_node) +
           " out of range [0, " + std::to_string(n) + ")";
  if (request.target_label < -1 ||
      request.target_label >= ctx.data->num_classes)
    return "target_label " + std::to_string(request.target_label) +
           " out of range [-1, " + std::to_string(ctx.data->num_classes) +
           ")";
  if (request.budget < 0)
    return "budget " + std::to_string(request.budget) + " is negative";
  return std::string();
}

/// Rebuilds a replayed journal record into a full result.  Adjacency
/// values are exactly 0.0/1.0, so clean + AddEdgeDense reproduces the
/// attack's dense output bit-for-bit.  Returns false on a
/// corrupt-but-parseable record (out-of-range endpoints) — the target is
/// simply recomputed.
bool RebuildJournaledResult(const AttackContext& ctx,
                            const JournalRecord& record, AttackResult* out) {
  const int64_t n = ctx.data->num_nodes();
  for (const Edge& e : record.result.added_edges)
    if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n || e.u == e.v)
      return false;
  *out = record.result;
  const StatusCode code = out->status.code();
  if (ctx.clean_adjacency.rows() > 0 &&
      (code == StatusCode::kOk || code == StatusCode::kTimedOut)) {
    out->adjacency = ctx.clean_adjacency;
    for (const Edge& e : out->added_edges)
      AddEdgeDense(&out->adjacency, e.u, e.v);
  }
  return true;
}

}  // namespace

std::vector<AttackResult> RunMultiTargetAttack(
    const AttackContext& ctx, const TargetedAttack& attack,
    const std::vector<AttackRequest>& requests,
    const AttackDriverConfig& config) {
  std::vector<AttackResult> results(requests.size());
  if (requests.empty()) return results;
  GEA_CHECK(ctx.data != nullptr);
  GEA_CHECK(config.request_seeds.empty() ||
            config.request_seeds.size() == requests.size());
  // The journal's resume contract binds results to TargetSeed(base_seed, i)
  // streams; explicit per-request seeds would silently break it.
  GEA_CHECK(config.request_seeds.empty() || config.journal_path.empty());
  const int64_t num_requests = static_cast<int64_t>(requests.size());

  // Malformed requests become kInvalidArgument results without running —
  // they are never scheduled and never journaled (revalidated on resume).
  std::vector<char> done(requests.size(), 0);
  for (int64_t i = 0; i < num_requests; ++i) {
    const std::string error = ValidateRequest(ctx, requests[ZU(i)]);
    if (!error.empty()) {
      results[ZU(i)].status = Status::InvalidArgument(error);
      done[ZU(i)] = 1;
    }
  }

  // Checkpoint/resume: replay the journal's completed targets, then open
  // the writer positioned past the last complete record (discarding any
  // torn tail).
  AttackJournalWriter journal;
  std::mutex journal_mutex;
  if (!config.journal_path.empty()) {
    const JournalLoadResult prior =
        LoadAttackJournal(config.journal_path, config.base_seed, num_requests);
    // Surfaced corruption (a complete record whose CRC mismatched) is
    // recoverable here — the dropped targets are simply recomputed — but it
    // means the storage flipped bits, which the operator should know about.
    if (!prior.status.ok())
      std::fprintf(stderr, "geattack: %s\n", prior.status.ToString().c_str());
    std::vector<int64_t> replayed;
    replayed.reserve(prior.records.size());
    for (const JournalRecord& record : prior.records) {
      const int64_t i = record.request_index;
      if (done[ZU(i)]) continue;
      if (RebuildJournaledResult(ctx, record, &results[ZU(i)])) {
        done[ZU(i)] = 1;
        replayed.push_back(i);
      }
    }
    // A legacy (v1) journal replays fine, but appending CRC'd records
    // under its v1 header would corrupt the next resume — so migrate
    // ATOMICALLY: RewriteJournal writes a v3 twin holding the replayed
    // records to a tmp file and rename(2)s it over the v1 original, so a
    // kill at any point mid-migration leaves either the loadable v1 or
    // the complete v3, never a half-rewritten hybrid.  (A v2 journal
    // needs no rewrite — `r` records are grammar-identical under both
    // headers — so it resumes in place.)
    int64_t resume_offset =
        (prior.header_ok && !prior.legacy) ? prior.valid_bytes : 0;
    Status opened = Status::Ok();
    if (prior.header_ok && prior.legacy) {
      std::vector<JournalRecord> migrated;
      migrated.reserve(replayed.size());
      for (int64_t i : replayed) {
        JournalRecord record;
        record.request_index = i;
        record.result.added_edges = results[ZU(i)].added_edges;
        record.result.status = results[ZU(i)].status;
        migrated.push_back(std::move(record));
      }
      opened = RewriteJournal(config.journal_path, config.base_seed,
                              num_requests, migrated, &resume_offset);
    }
    if (opened.ok())
      opened = journal.Open(config.journal_path, resume_offset,
                            config.base_seed, num_requests);
    // A configured journal that cannot be written is a setup error, not a
    // per-target fault: fail loudly instead of silently dropping durability.
    if (!opened.ok()) {
      std::fprintf(stderr, "geattack: %s\n", opened.ToString().c_str());
      GEA_CHECK(opened.ok());
    }
  }

  // The task unit is a target *group* over the still-pending requests:
  // singletons when batch_targets <= 1 (the PR-4 schedule), shared-neighbor
  // groups otherwise.  Each member keeps the stream of its ORIGINAL request
  // index, so grouping, thread count, and resume point are invisible in the
  // results.
  std::vector<int64_t> pending;
  pending.reserve(requests.size());
  for (int64_t i = 0; i < num_requests; ++i)
    if (!done[ZU(i)]) pending.push_back(i);

  std::vector<std::vector<int64_t>> groups;  // Of original request indices.
  if (config.batch_targets <= 1) {
    groups.reserve(pending.size());
    for (int64_t i : pending) groups.push_back({i});
  } else {
    std::vector<int64_t> targets;
    targets.reserve(pending.size());
    for (int64_t i : pending) targets.push_back(requests[ZU(i)].target_node);
    // GroupTargetsBySharedNeighbors returns groups of positions into
    // `targets` — remap through `pending` back to request indices.  Any
    // grouping yields bit-identical per-target results (the batched
    // contract), so grouping only the pending set is resume-safe.
    for (const std::vector<int64_t>& g : GroupTargetsBySharedNeighbors(
             ctx.data->graph, targets, config.batch_targets)) {
      std::vector<int64_t> group;
      group.reserve(g.size());
      for (int64_t local : g) group.push_back(pending[ZU(local)]);
      groups.push_back(std::move(group));
    }
  }

  // Whole-run deadline, armed now; per-target tokens chain to it so an
  // expired run also cancels in-flight targets at their next poll.
  CancellationToken run_token;
  run_token.SetDeadlineAfterMs(config.run_deadline_ms);

  const auto seed_of = [&](int64_t i) {
    return config.request_seeds.empty() ? TargetSeed(config.base_seed, i)
                                        : config.request_seeds[ZU(i)];
  };
  auto run_one = [&](int64_t i, const CancellationToken* token) {
    AttackRequest request = requests[ZU(i)];
    request.cancel = token;
    Rng rng(seed_of(i));
    return attack.Attack(ctx, request, &rng);
  };
  // A per-task fault (exception or non-finite blowup) lands only on its own
  // target: the result is replaced wholesale, and since every target runs
  // from its own TargetSeed stream, no survivor observed any state the
  // faulty task touched.
  auto fail = [&](int64_t i, const std::string& what) {
    results[ZU(i)] = AttackResult();
    results[ZU(i)].status = Status::Error(
        "target " + std::to_string(requests[ZU(i)].target_node) + ": " + what);
  };
  auto run_isolated = [&](int64_t i, const CancellationToken* token) {
    try {
      results[ZU(i)] = run_one(i, token);
    } catch (const std::exception& e) {
      fail(i, e.what());
    } catch (...) {
      fail(i, "unknown exception");
    }
  };

  auto run_group = [&](int64_t gi) {
    const std::vector<int64_t>& group = groups[static_cast<size_t>(gi)];
    auto skip = [&](int64_t i, const char* why) {
      results[ZU(i)] = AttackResult();
      results[ZU(i)].status = Status::Skipped(why);
    };
    // Members whose caller-provided token (e.g. the attack service's
    // per-request absolute deadline) already expired are skipped HERE,
    // before any Rng is constructed or any attack state is touched: the
    // doomed request consumes nothing, so appending it to a run leaves
    // every survivor's stream — hence picks — untouched.
    auto pre_expired = [&](int64_t i) {
      const CancellationToken* caller = requests[ZU(i)].cancel;
      return caller != nullptr && caller->Expired();
    };
    std::vector<int64_t> live;
    live.reserve(group.size());
    if (run_token.Expired()) {
      // Task started after the run deadline: nothing was computed, so the
      // targets are skipped (and deliberately NOT journaled — a resumed run
      // with more time should attack them).
      for (int64_t i : group)
        skip(i, "run deadline exceeded before target started");
    } else {
      for (int64_t i : group) {
        if (pre_expired(i))
          skip(i, "deadline expired before target started");
        else
          live.push_back(i);
      }
    }
    if (live.size() == 1) {
      const int64_t i = live[0];
      CancellationToken token(&run_token, requests[ZU(i)].cancel);
      token.SetDeadlineAfterMs(config.target_deadline_ms);
      run_isolated(i, &token);
    } else if (live.size() > 1) {
      CancellationToken token(&run_token);
      token.SetDeadlineAfterMs(config.target_deadline_ms);
      std::vector<AttackRequest> group_requests;
      // Each member's effective token chains the group's shared deadline
      // with the member's own caller token; unique_ptr keeps the addresses
      // stable behind the request pointers.
      std::vector<std::unique_ptr<CancellationToken>> member_tokens;
      std::vector<Rng> rngs;
      std::vector<Rng*> rng_ptrs;
      group_requests.reserve(live.size());
      member_tokens.reserve(live.size());
      rngs.reserve(live.size());
      for (int64_t i : live) {
        member_tokens.push_back(std::make_unique<CancellationToken>(
            &token, requests[ZU(i)].cancel));
        group_requests.push_back(requests[static_cast<size_t>(i)]);
        group_requests.back().cancel = member_tokens.back().get();
        rngs.emplace_back(seed_of(i));
      }
      for (Rng& r : rngs) rng_ptrs.push_back(&r);
      bool batch_faulted = false;
      try {
        std::vector<AttackResult> group_results =
            attack.AttackBatch(ctx, group_requests, rng_ptrs);
        GEA_CHECK(group_results.size() == live.size());
        for (size_t g = 0; g < live.size(); ++g)
          results[static_cast<size_t>(live[g])] = std::move(group_results[g]);
      } catch (...) {
        batch_faulted = true;
      }
      if (batch_faulted) {
        // A fault in the group's shared stacked pass poisons every member's
        // in-flight state, so re-run each member individually with a fresh
        // per-request stream and a fresh deadline.  The fault lands only on
        // the faulty member; survivors recompute their serial-reference
        // picks, which the batched==serial contract guarantees are the
        // picks the batch would have produced.
        for (int64_t i : live) {
          CancellationToken member_token(&run_token, requests[ZU(i)].cancel);
          member_token.SetDeadlineAfterMs(config.target_deadline_ms);
          run_isolated(i, &member_token);
        }
      }
    }
    if (journal.is_open()) {
      std::lock_guard<std::mutex> lock(journal_mutex);
      for (int64_t i : group) {
        if (results[ZU(i)].status.code() == StatusCode::kSkipped) continue;
        const Status appended = journal.Append(i, results[ZU(i)]);
        GEA_CHECK(appended.ok());
      }
    }
  };

  const int threads = static_cast<int>(
      std::min<int64_t>(std::max(config.num_threads, 1),
                        static_cast<int64_t>(groups.size())));
  if (threads <= 1) {
    for (int64_t gi = 0; gi < static_cast<int64_t>(groups.size()); ++gi)
      run_group(gi);
    return results;
  }

  WarmSharedCaches(ctx);
#ifdef _OPENMP
  // Split the machine's OpenMP budget across the workers so the row-parallel
  // kernels inside each attack don't oversubscribe cores threads-fold.  The
  // ICV is per-thread, and OpenMP team size never affects kernel *values*
  // (rows are whole-row assigned, reductions never split), so this is a
  // pure scheduling knob.
  const int omp_budget = std::max(1, omp_get_max_threads() / threads);
#endif
  StealingQueues queues(static_cast<int64_t>(groups.size()), threads);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&queues, &run_group, w
#ifdef _OPENMP
                          ,
                          omp_budget
#endif
    ] {
#ifdef _OPENMP
      omp_set_num_threads(omp_budget);
#endif
      for (int64_t t = queues.Pop(w); t >= 0; t = queues.Pop(w)) run_group(t);
    });
  }
  for (std::thread& t : workers) t.join();
  return results;
}

}  // namespace geattack
