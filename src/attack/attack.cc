#include "src/attack/attack.h"

namespace geattack {

const GcnForwardContext& CachedForward(const AttackContext& ctx) {
  GEA_CHECK(ctx.scratch != nullptr);
  GEA_CHECK(ctx.data != nullptr && ctx.model != nullptr);
  AttackScratch* s = ctx.scratch.get();
  std::call_once(s->fwd_once, [s, &ctx] {
    s->xw1 = ctx.data->features.MatMul(ctx.model->w1());
    s->fwd.xw1 = Constant(s->xw1, "xw1");
    s->fwd.w2 = Constant(ctx.model->w2(), "w2");
  });
  return s->fwd;
}

const Tensor& CachedXw1(const AttackContext& ctx) {
  CachedForward(ctx);
  return ctx.scratch->xw1;
}

const Tensor& CachedPenaltyBase(const AttackContext& ctx) {
  GEA_CHECK(ctx.scratch != nullptr);
  AttackScratch* s = ctx.scratch.get();
  std::call_once(s->b_once, [s, &ctx] {
    const int64_t n = ctx.clean_adjacency.rows();
    GEA_CHECK(n > 0);  // Requires a dense context.
    s->b_base = Tensor::Ones(n, n) - Tensor::Identity(n) -
                ctx.clean_adjacency;
  });
  return s->b_base;
}

std::vector<AttackResult> TargetedAttack::AttackBatch(
    const AttackContext& ctx, const std::vector<AttackRequest>& requests,
    const std::vector<Rng*>& rngs) const {
  GEA_CHECK(requests.size() == rngs.size());
  std::vector<AttackResult> results;
  results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i)
    results.push_back(Attack(ctx, requests[i], rngs[i]));
  return results;
}

std::vector<int64_t> DirectAddCandidates(const Tensor& adjacency,
                                         int64_t target,
                                         const std::vector<int64_t>& labels,
                                         int64_t required_label) {
  const int64_t n = adjacency.rows();
  GEA_CHECK(target >= 0 && target < n);
  std::vector<int64_t> candidates;
  for (int64_t j = 0; j < n; ++j) {
    if (j == target) continue;
    if (adjacency.at(target, j) > 0.5) continue;
    if (required_label >= 0 && labels[ZU(j)] != required_label) continue;
    candidates.push_back(j);
  }
  return candidates;
}

std::vector<int64_t> DirectAddCandidates(const Graph& graph, int64_t target,
                                         const std::vector<int64_t>& labels,
                                         int64_t required_label) {
  const int64_t n = graph.num_nodes();
  GEA_CHECK(target >= 0 && target < n);
  const std::set<int64_t>& neighbors = graph.Neighbors(target);
  std::vector<int64_t> candidates;
  for (int64_t j = 0; j < n; ++j) {
    if (j == target) continue;
    if (neighbors.count(j)) continue;
    if (required_label >= 0 && labels[ZU(j)] != required_label) continue;
    candidates.push_back(j);
  }
  return candidates;
}

Var TargetedAttackLoss(const GcnForwardContext& ctx, const Var& adjacency,
                       int64_t node, int64_t label) {
  return NllRow(GcnLogitsVar(ctx, adjacency), node, label);
}

void AddEdgeDense(Tensor* adjacency, int64_t u, int64_t v) {
  GEA_CHECK(adjacency != nullptr);
  GEA_CHECK(u != v);
  adjacency->at(u, v) = 1.0;
  adjacency->at(v, u) = 1.0;
}

bool PredictsLabel(const Gcn& model, const Tensor& adjacency,
                   const Tensor& features, int64_t node, int64_t label) {
  const Tensor logits = model.LogitsFromRaw(adjacency, features);
  return logits.ArgMaxRow(node) == label;
}

}  // namespace geattack
