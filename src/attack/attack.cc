#include "src/attack/attack.h"

namespace geattack {

std::vector<int64_t> DirectAddCandidates(const Tensor& adjacency,
                                         int64_t target,
                                         const std::vector<int64_t>& labels,
                                         int64_t required_label) {
  const int64_t n = adjacency.rows();
  GEA_CHECK(target >= 0 && target < n);
  std::vector<int64_t> candidates;
  for (int64_t j = 0; j < n; ++j) {
    if (j == target) continue;
    if (adjacency.at(target, j) > 0.5) continue;
    if (required_label >= 0 && labels[j] != required_label) continue;
    candidates.push_back(j);
  }
  return candidates;
}

Var TargetedAttackLoss(const GcnForwardContext& ctx, const Var& adjacency,
                       int64_t node, int64_t label) {
  return NllRow(GcnLogitsVar(ctx, adjacency), node, label);
}

void AddEdgeDense(Tensor* adjacency, int64_t u, int64_t v) {
  GEA_CHECK(adjacency != nullptr);
  GEA_CHECK(u != v);
  adjacency->at(u, v) = 1.0;
  adjacency->at(v, u) = 1.0;
}

bool PredictsLabel(const Gcn& model, const Tensor& adjacency,
                   const Tensor& features, int64_t node, int64_t label) {
  const Tensor logits = model.LogitsFromRaw(adjacency, features);
  return logits.ArgMaxRow(node) == label;
}

}  // namespace geattack
