// Parallel multi-target attack driver.
//
// The paper's evaluation protocol attacks ~40 victim nodes per dataset and
// seed, and each targeted attack is independent of every other: the context
// (trained model, clean CSR, folded X·W₁) is read-only, and all mutable
// state (SubgraphView, SparseAttackForward, autodiff graphs) is built per
// target.  That makes the per-target loop embarrassingly parallel — this
// module runs it on a work-stealing thread pool.
//
// Determinism contract: results are *bit-identical* to running the targets
// one by one in a single thread, regardless of thread count or scheduling.
// Two properties deliver that:
//
//   1. RNG isolation.  Each target gets its own seeded stream,
//      Rng(TargetSeed(base_seed, i)), instead of consuming draws from a
//      shared sequential stream — so the draws a target sees cannot depend
//      on which targets ran before it.
//   2. Kernel determinism.  Every floating-point kernel in the library
//      accumulates each output element sequentially (see SpmmAccumulate in
//      src/tensor/csr.cc); OpenMP row-parallelism assigns whole rows to
//      threads and never splits a reduction, so a target's attack computes
//      the same bits no matter which worker runs it or what else runs
//      concurrently.
//
// Shared-state audit (what makes concurrent Attack calls safe):
//   * AttackScratch caches (CachedForward / CachedXw1 / CachedPenaltyBase)
//     are once_flag-guarded; the driver additionally pre-warms them so
//     workers only ever read.
//   * CsrPattern::Transpose() is call_once-cached — concurrent SpMM
//     backwards on the shared clean/normalized CSR patterns are safe.
//   * The autodiff node-id counter is atomic; graphs themselves are
//     per-target.
//   * Everything else a worker touches (Graph copies, Tensors, views) is
//     built inside the task.

#ifndef GEATTACK_SRC_ATTACK_DRIVER_H_
#define GEATTACK_SRC_ATTACK_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/attack/attack.h"

namespace geattack {

/// The per-target RNG seed: a SplitMix64 finalizer mix of (base_seed,
/// target_index).  Consecutive indices land in statistically independent
/// streams, and the mapping is stable across thread counts — it *is* the
/// determinism anchor of the driver.
uint64_t TargetSeed(uint64_t base_seed, int64_t target_index);

struct AttackDriverConfig {
  /// Worker threads.  <= 1 runs the tasks inline in the calling thread
  /// (same seeds, same results).  Values above the task count are clamped.
  int num_threads = 1;
  /// Base seed of the per-target streams.
  uint64_t base_seed = 0;
  /// Target-group size of the batched task type.  1 (default) schedules one
  /// task per target, exactly the PR-4 driver.  > 1 groups up to this many
  /// targets by shared-neighbor count (GroupTargetsBySharedNeighbors) and
  /// schedules each group as ONE task run through
  /// TargetedAttack::AttackBatch — shared subgraph construction and
  /// stacked-RHS scoring for attackers that support it, the per-target
  /// fallback loop for the rest.  Every target still draws from its own
  /// TargetSeed(base_seed, request_index) stream, so results are
  /// bit-identical to batch_targets = 1 at any thread count and grouping.
  int batch_targets = 1;
  /// Whole-run wall-clock deadline in milliseconds, armed when the run
  /// starts (<= 0 = none).  Targets whose task starts after it passed are
  /// marked kSkipped without running; targets caught mid-loop return their
  /// partial result as kTimedOut.
  double run_deadline_ms = 0.0;
  /// Per-target deadline in milliseconds, armed when the target's task
  /// STARTS (queue wait does not count), <= 0 = none.  Polled
  /// cooperatively at greedy-round / inner-mask-step granularity; an
  /// expired target returns the picks committed so far with kTimedOut.
  /// With batch_targets > 1 the group shares one token, so the deadline
  /// bounds the group's lockstep loop.
  double target_deadline_ms = 0.0;
  /// When non-empty (must then match requests.size()), request i draws
  /// from Rng(request_seeds[i]) instead of Rng(TargetSeed(base_seed, i)).
  /// The attack service uses this to pin each accepted request to the
  /// stream of its admission order — and each *retry* to a distinct
  /// documented attempt stream (AttemptSeed) — no matter how requests are
  /// packed into dispatch waves.  All determinism guarantees are unchanged:
  /// a request's draws depend only on its own seed, never on scheduling.
  /// Incompatible with journal_path (the journal binds base_seed streams).
  std::vector<uint64_t> request_seeds;
  /// Non-empty enables the append-only fsync'd checkpoint journal
  /// (src/attack/journal.h): every completed target is durably recorded,
  /// and a re-run with the same path, requests and base_seed resumes —
  /// journaled targets are replayed, only missing ones are attacked, and
  /// the final results are byte-identical to an uninterrupted run (the
  /// per-target TargetSeed streams make resumed targets compute exactly
  /// what they would have).  The path must be writable (checked).
  std::string journal_path;
};

/// Runs `attack` on every request against the shared read-only `ctx` and
/// returns results in request order.  Bit-identical output for any
/// `num_threads` and any `batch_targets`.  Workers steal whole tasks
/// (targets, or target groups) from each other's queues, so one slow task
/// (e.g. a hub node with a huge candidate set) does not serialize the tail.
///
/// Fault containment: requests with an out-of-range target_node /
/// target_label or a negative budget come back as kInvalidArgument without
/// running; requests whose caller-provided cancellation token (chained
/// under the per-target token) is already expired when their task starts
/// come back as kSkipped *before* any rng stream is consumed — a doomed
/// request never perturbs a survivor and never burns compute; a per-task
/// exception or non-finite score blowup yields a
/// kError result for that target only.  In both cases every other target's
/// picks are bit-identical to a run without the bad target — per-target
/// RNG streams mean a failed target cannot perturb a survivor.  When a
/// fault hits a batched group's shared stacked pass, the group re-runs
/// member-by-member (fresh TargetSeed streams, fresh per-target deadlines)
/// so the fault lands only on the faulty member and survivors keep the
/// serial-reference picks, which the batched path's contract guarantees
/// are the batched picks too.
std::vector<AttackResult> RunMultiTargetAttack(
    const AttackContext& ctx, const TargetedAttack& attack,
    const std::vector<AttackRequest>& requests,
    const AttackDriverConfig& config = {});

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_DRIVER_H_
