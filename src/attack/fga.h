// FGA — fast gradient attack on the adjacency matrix (paper §A.4, after
// Chen et al. / the FGSM-style graph attack): relax A to a continuous
// matrix, take the gradient of the attack loss, and greedily add the
// candidate edge whose gradient entry promises the largest loss decrease.
//
// Two modes:
//   * untargeted FGA: maximize the loss of the currently-predicted label —
//     the paper uses this both as a baseline and to *choose* each target
//     node's specific target label (§5.1);
//   * FGA-T: minimize the loss of a specific target label ŷ (Eq. 4).
//
// Two execution paths: the historical dense one (gradient w.r.t. every
// n x n adjacency entry, O(n²·h) per step) and the default sparse one,
// where the only relaxed parameters are the candidate-edge values of a
// SubgraphView and each step costs O((|E| + m)·h).  Both evaluate the same
// gradient — q[v,j] + q[j,v] equals the candidate-value gradient — so they
// pick identical edges up to floating-point roundoff.

#ifndef GEATTACK_SRC_ATTACK_FGA_H_
#define GEATTACK_SRC_ATTACK_FGA_H_

#include "src/attack/attack.h"

namespace geattack {

/// Gradient-based add-edge attack.
class FgaAttack : public TargetedAttack {
 public:
  /// `targeted` selects FGA-T (true) vs. plain FGA (false); `use_sparse`
  /// selects the candidate-edge-value path (default) vs. the dense n x n
  /// relaxation.
  explicit FgaAttack(bool targeted, bool use_sparse = true)
      : targeted_(targeted), use_sparse_(use_sparse) {}

  std::string name() const override { return targeted_ ? "FGA-T" : "FGA"; }

  AttackResult Attack(const AttackContext& ctx, const AttackRequest& request,
                      Rng* rng) const override;

  /// Batched sparse path: one BatchedSubgraphView shared by the group, one
  /// stacked wide forward per greedy round scoring every live target, one
  /// backward for all candidate gradients.  Bit-identical picks to the
  /// per-target loop (falls back to it on the dense path).  The virtual
  /// ExcludedNodes hook runs per target inside each round, so FGA-T&E rides
  /// the batched path too.
  std::vector<AttackResult> AttackBatch(
      const AttackContext& ctx, const std::vector<AttackRequest>& requests,
      const std::vector<Rng*>& rngs) const override;

 protected:
  /// Hook for FGA-T&E: returns candidate endpoints to exclude given the
  /// current (possibly already perturbed) graph.  Base implementation
  /// excludes nothing.
  virtual std::vector<int64_t> ExcludedNodes(const AttackContext& ctx,
                                             const Graph& current,
                                             const AttackRequest& request)
      const;

 private:
  AttackResult AttackDense(const AttackContext& ctx,
                           const AttackRequest& request) const;
  AttackResult AttackSparse(const AttackContext& ctx,
                            const AttackRequest& request) const;

  bool targeted_;
  bool use_sparse_;
};

/// Given the gradient Q = ∇_Â L of a loss to *minimize*, returns the
/// candidate j whose symmetric gradient score Q[target,j] + Q[j,target] is
/// most negative (adding that edge most decreases the loss), or -1 if no
/// candidate improves.  Shared by FGA/FGA-T/GEAttack edge selection.
int64_t BestCandidateByGradient(const Tensor& gradient, int64_t target,
                                const std::vector<int64_t>& candidates);

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_FGA_H_
