// FGA — fast gradient attack on the adjacency matrix (paper §A.4, after
// Chen et al. / the FGSM-style graph attack): relax A to a continuous
// matrix, take the gradient of the attack loss, and greedily add the
// candidate edge whose gradient entry promises the largest loss decrease.
//
// Two modes:
//   * untargeted FGA: maximize the loss of the currently-predicted label —
//     the paper uses this both as a baseline and to *choose* each target
//     node's specific target label (§5.1);
//   * FGA-T: minimize the loss of a specific target label ŷ (Eq. 4).

#ifndef GEATTACK_SRC_ATTACK_FGA_H_
#define GEATTACK_SRC_ATTACK_FGA_H_

#include "src/attack/attack.h"

namespace geattack {

/// Gradient-based add-edge attack.
class FgaAttack : public TargetedAttack {
 public:
  /// `targeted` selects FGA-T (true) vs. plain FGA (false).
  explicit FgaAttack(bool targeted) : targeted_(targeted) {}

  std::string name() const override { return targeted_ ? "FGA-T" : "FGA"; }

  AttackResult Attack(const AttackContext& ctx, const AttackRequest& request,
                      Rng* rng) const override;

 protected:
  /// Hook for FGA-T&E: returns candidate endpoints to exclude given the
  /// current perturbed adjacency.  Base implementation excludes nothing.
  virtual std::vector<int64_t> ExcludedNodes(const AttackContext& ctx,
                                             const Tensor& adjacency,
                                             const AttackRequest& request)
      const;

 private:
  bool targeted_;
};

/// Given the gradient Q = ∇_Â L of a loss to *minimize*, returns the
/// candidate j whose symmetric gradient score Q[target,j] + Q[j,target] is
/// most negative (adding that edge most decreases the loss), or -1 if no
/// candidate improves.  Shared by FGA/FGA-T/GEAttack edge selection.
int64_t BestCandidateByGradient(const Tensor& gradient, int64_t target,
                                const std::vector<int64_t>& candidates);

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_FGA_H_
