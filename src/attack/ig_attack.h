// IG-Attack (Wu et al., IJCAI'19): scores candidate edge additions by the
// integrated gradient of the attack loss along the straight path from
// "edge absent" to "edge present", which reflects the true effect of the
// discrete flip better than the local gradient (paper §A.4).
//
//   IG(v,j) = ∫₀¹ ∂L/∂A[v,j] (A with A[v,j] = α) dα
//           ≈ (1/m) Σ_{k=1..m} ∂L/∂A[v,j] at α = k/m.
//
// The exact form needs m forward/backward passes per candidate.  To keep
// the greedy loop affordable we first shortlist candidates by the plain
// gradient (an FGA pass), then compute exact per-candidate IG on the
// shortlist — DESIGN.md §3 documents this substitution; `shortlist = 0`
// disables it and scores every candidate exactly.

#ifndef GEATTACK_SRC_ATTACK_IG_ATTACK_H_
#define GEATTACK_SRC_ATTACK_IG_ATTACK_H_

#include "src/attack/attack.h"

namespace geattack {

/// IG-Attack configuration.
struct IgAttackConfig {
  int64_t steps = 5;       ///< Riemann steps m of the path integral.
  int64_t shortlist = 32;  ///< Gradient-prefiltered candidate pool (0 = all).
  /// Candidate-edge-value path (default): each path sample relaxes only the
  /// scored candidate's value, O((|E| + m)·h) instead of O(n²·h) per
  /// forward/backward.  Identical scores to the dense relaxation.
  bool use_sparse = true;
};

/// The IG-Attack baseline.
class IgAttack : public TargetedAttack {
 public:
  explicit IgAttack(const IgAttackConfig& config = {}) : config_(config) {}

  std::string name() const override { return "IG-Attack"; }

  AttackResult Attack(const AttackContext& ctx, const AttackRequest& request,
                      Rng* rng) const override;

 private:
  AttackResult AttackDense(const AttackContext& ctx,
                           const AttackRequest& request) const;
  AttackResult AttackSparse(const AttackContext& ctx,
                            const AttackRequest& request) const;

  IgAttackConfig config_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_IG_ATTACK_H_
