#include "src/attack/nettack.h"

#include <limits>
#include <vector>

namespace geattack {

namespace {

/// Target-label margin of a surrogate logits row:
/// Z[ŷ] − max_{c != ŷ} Z[c].
double TargetMargin(const Tensor& logits_row, int64_t target_label) {
  double other = -std::numeric_limits<double>::infinity();
  for (int64_t c = 0; c < logits_row.cols(); ++c)
    if (c != target_label) other = std::max(other, logits_row.at(0, c));
  return logits_row.at(0, target_label) - other;
}

}  // namespace

AttackResult Nettack::Attack(const AttackContext& ctx,
                             const AttackRequest& request, Rng*) const {
  GEA_CHECK(request.target_label >= 0);
  return config_.use_sparse ? AttackSparse(ctx, request)
                            : AttackDense(ctx, request);
}

AttackResult Nettack::AttackDense(const AttackContext& ctx,
                                  const AttackRequest& request) const {
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  const int64_t v = request.target_node;
  const int64_t target_label = request.target_label;

  const LinearizedGcn surrogate(*ctx.model, ctx.data->features);
  const DegreeDistributionTest degree_test(
      Graph::FromDense(ctx.clean_adjacency), config_.degree_test_d_min,
      config_.degree_test_threshold);
  Graph current = Graph::FromDense(ctx.clean_adjacency);

  for (int64_t step = 0; step < request.budget; ++step) {
    if (Cancelled(request)) {
      result.status = Status::TimedOut("deadline exceeded");
      break;
    }
    const auto candidates = DirectAddCandidates(result.adjacency, v,
                                                ctx.data->labels, /*label*/ -1);
    // Score each candidate by the surrogate margin of the target label
    // after adding the edge:  Z[v, ŷ] - max_{c != ŷ} Z[v, c].
    int64_t best = -1;
    double best_margin = -std::numeric_limits<double>::infinity();
    for (int64_t j : candidates) {
      if (config_.enforce_degree_test &&
          !degree_test.EdgeAdditionUnnoticeable(current, v, j)) {
        continue;
      }
      Tensor trial = result.adjacency;
      AddEdgeDense(&trial, v, j);
      const Tensor logits_row = surrogate.LogitsRow(trial, v);
      const double margin = CheckFiniteScore(
          TargetMargin(logits_row, target_label), "surrogate margin");
      if (margin > best_margin) {
        best_margin = margin;
        best = j;
      }
    }
    if (best < 0) break;  // Degree test rejected everything.
    AddEdgeDense(&result.adjacency, v, best);
    current.AddEdge(v, best);
    result.added_edges.emplace_back(v, best);
  }
  return result;
}

AttackResult Nettack::AttackSparse(const AttackContext& ctx,
                                   const AttackRequest& request) const {
  AttackResult result;
  const Graph& clean = ctx.data->graph;
  const int64_t v = request.target_node;
  const int64_t target_label = request.target_label;

  const LinearizedGcn surrogate(*ctx.model, ctx.data->features);
  const DegreeDistributionTest degree_test(clean, config_.degree_test_d_min,
                                           config_.degree_test_threshold);
  Graph current = clean;

  // One normalized CSR shared across the greedy loop (the context caches
  // the clean one); each pick patches it incrementally, and candidate
  // scoring rescales entries on the fly — no per-candidate normalization.
  CsrMatrix norm = ctx.clean_norm_csr.empty()
                       ? NormalizeAdjacencyCsr(clean)
                       : ctx.clean_norm_csr;
  std::vector<double> degp1(static_cast<size_t>(clean.num_nodes()));
  for (int64_t i = 0; i < clean.num_nodes(); ++i)
    degp1[static_cast<size_t>(i)] =
        static_cast<double>(clean.Degree(i)) + 1.0;

  for (int64_t step = 0; step < request.budget; ++step) {
    if (Cancelled(request)) {
      result.status = Status::TimedOut("deadline exceeded");
      break;
    }
    const auto candidates =
        DirectAddCandidates(current, v, ctx.data->labels, /*label*/ -1);
    int64_t best = -1;
    double best_margin = -std::numeric_limits<double>::infinity();
    for (int64_t j : candidates) {
      if (config_.enforce_degree_test &&
          !degree_test.EdgeAdditionUnnoticeable(current, v, j)) {
        continue;
      }
      const Tensor logits_row =
          surrogate.LogitsRowWithEdgeAdded(norm, degp1, v, j);
      const double margin = CheckFiniteScore(
          TargetMargin(logits_row, target_label), "surrogate margin");
      if (margin > best_margin) {
        best_margin = margin;
        best = j;
      }
    }
    if (best < 0) break;  // Degree test rejected everything.
    // Commit: patch the normalized CSR and the degree vector in place.
    Tensor degp1_t(static_cast<int64_t>(degp1.size()), 1);
    for (size_t i = 0; i < degp1.size(); ++i)
      degp1_t.at(static_cast<int64_t>(i), 0) = degp1[i];
    norm = GcnRenormalizeAfterAdds(norm, degp1_t, {Edge(v, best)});
    degp1[static_cast<size_t>(v)] += 1.0;
    degp1[static_cast<size_t>(best)] += 1.0;
    current.AddEdge(v, best);
    result.added_edges.emplace_back(v, best);
  }

  if (ctx.clean_adjacency.rows() > 0)
    result.adjacency = current.DenseAdjacency();
  return result;
}

}  // namespace geattack
