#include "src/attack/nettack.h"

#include <limits>

namespace geattack {

AttackResult Nettack::Attack(const AttackContext& ctx,
                             const AttackRequest& request, Rng*) const {
  GEA_CHECK(request.target_label >= 0);
  AttackResult result;
  result.adjacency = ctx.clean_adjacency;
  const int64_t v = request.target_node;
  const int64_t target_label = request.target_label;

  const LinearizedGcn surrogate(*ctx.model, ctx.data->features);
  const DegreeDistributionTest degree_test(
      Graph::FromDense(ctx.clean_adjacency), config_.degree_test_d_min,
      config_.degree_test_threshold);
  Graph current = Graph::FromDense(ctx.clean_adjacency);

  for (int64_t step = 0; step < request.budget; ++step) {
    const auto candidates = DirectAddCandidates(result.adjacency, v,
                                                ctx.data->labels, /*label*/ -1);
    // Score each candidate by the surrogate margin of the target label
    // after adding the edge:  Z[v, ŷ] - max_{c != ŷ} Z[v, c].
    int64_t best = -1;
    double best_margin = -std::numeric_limits<double>::infinity();
    for (int64_t j : candidates) {
      if (config_.enforce_degree_test &&
          !degree_test.EdgeAdditionUnnoticeable(current, v, j)) {
        continue;
      }
      Tensor trial = result.adjacency;
      AddEdgeDense(&trial, v, j);
      const Tensor logits_row = surrogate.LogitsRow(trial, v);
      double other = -std::numeric_limits<double>::infinity();
      for (int64_t c = 0; c < logits_row.cols(); ++c)
        if (c != target_label) other = std::max(other, logits_row.at(0, c));
      const double margin = logits_row.at(0, target_label) - other;
      if (margin > best_margin) {
        best_margin = margin;
        best = j;
      }
    }
    if (best < 0) break;  // Degree test rejected everything.
    AddEdgeDense(&result.adjacency, v, best);
    current.AddEdge(v, best);
    result.added_edges.emplace_back(v, best);
  }
  return result;
}

}  // namespace geattack
