// Common interface and utilities for targeted structure attacks.
//
// Setting (paper §3 "Problem Statement" and §5.1):
//   * evasion attacks on a fixed trained GCN (white box);
//   * direct attacks: every adversarial edge is incident to the target node;
//   * add-edge only (footnote 1: adding fake connections is the cheap,
//     realistic perturbation in social/citation graphs);
//   * budget Δ edges per target (set to the target's degree in the paper).

#ifndef GEATTACK_SRC_ATTACK_ATTACK_H_
#define GEATTACK_SRC_ATTACK_ATTACK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/graph/graph.h"
#include "src/nn/gcn.h"
#include "src/tensor/random.h"
#include "src/tensor/tensor.h"

namespace geattack {

/// Lazily-built caches shared by repeated Attack calls on one context.
/// Everything here is a deterministic function of (data, model), so hoisting
/// it out of the per-call loops changes no numerics — it just stops every
/// Attack call from redoing the O(n·d·h) weight fold (and, on the dense
/// GEAttack path, the O(n²) penalty-support build).  Each cache is guarded
/// by a once_flag so concurrent attack workers (src/attack/driver.h) can
/// race on first use; after initialization all access is read-only.
struct AttackScratch {
  std::once_flag fwd_once;
  GcnForwardContext fwd;  ///< Folded attack-time forward (X·W₁, W₂).
  Tensor xw1;             ///< (n, h) value behind fwd.xw1, for sparse views.
  std::once_flag b_once;
  Tensor b_base;  ///< B = 11ᵀ − I − A of the clean graph (dense GEAttack).
};

/// Immutable attack-time context shared across targets.
struct AttackContext {
  const GraphData* data = nullptr;  ///< Clean attributed graph.
  const Gcn* model = nullptr;       ///< Trained victim (fixed, evasion).
  Tensor clean_adjacency;           ///< Dense adjacency of the clean graph;
                                    ///< may be empty (rows() == 0) on
                                    ///< sparse-only contexts for graphs too
                                    ///< large to densify.
  CsrMatrix clean_csr;              ///< The same adjacency in CSR form; the
                                    ///< sparse eval path patches it with
                                    ///< ApplyEdgeFlips instead of
                                    ///< re-densifying per target.
  CsrMatrix clean_norm_csr;         ///< GCN-normalized clean CSR, computed
                                    ///< once and reused across targets
                                    ///< (values-only incremental updates).
  Tensor clean_degp1;               ///< (n, 1) clean degree + 1 (the d̃ the
                                    ///< normalized values were built from).
  std::shared_ptr<AttackScratch> scratch = std::make_shared<AttackScratch>();
};

/// The context's folded forward (built on first use, then reused by every
/// attack on this context).
const GcnForwardContext& CachedForward(const AttackContext& ctx);

/// The (n, h) X·W₁ rows behind CachedForward — the sparse candidate-edge
/// views gather their local rows from this shared tensor.
const Tensor& CachedXw1(const AttackContext& ctx);

/// The clean graph's dense penalty support B = 11ᵀ − I − A (built on first
/// use; requires a dense clean_adjacency).
const Tensor& CachedPenaltyBase(const AttackContext& ctx);

/// One attack query.
struct AttackRequest {
  int64_t target_node = -1;
  /// The specific incorrect label ŷ the attacker wants predicted.  -1 means
  /// untargeted (any wrong label) — only plain FGA uses that mode.
  int64_t target_label = -1;
  int64_t budget = 1;  ///< Δ: maximum number of added edges.
  /// Optional cooperative deadline/cancellation token (not owned), polled
  /// by the attack loops at greedy-round / inner-mask-step granularity.
  /// The multi-target driver plumbs its per-target and whole-run deadlines
  /// through this; null means no deadline.
  const CancellationToken* cancel = nullptr;
};

/// The loop-top cancellation poll every attack loop uses.
inline bool Cancelled(const AttackRequest& request) {
  return request.cancel != nullptr && request.cancel->Expired();
}

/// Attack outcome.
struct AttackResult {
  Tensor adjacency;               ///< Perturbed dense adjacency Â.
  std::vector<Edge> added_edges;  ///< The adversarial edges E'.
  /// Per-target outcome.  Attacks themselves only ever mark kTimedOut
  /// (cooperative deadline hit mid-loop; `added_edges` holds the picks
  /// committed so far).  The driver adds kError (exception / non-finite
  /// blowup), kSkipped (run deadline hit before the target started) and
  /// kInvalidArgument (request rejected by validation).
  Status status;
};

/// Interface implemented by every attacker (baselines and GEAttack).
class TargetedAttack {
 public:
  virtual ~TargetedAttack() = default;

  /// Display name used in result tables, e.g. "Nettack".
  virtual std::string name() const = 0;

  /// Perturbs the graph for one request.  `rng` supplies any stochasticity
  /// (random baseline, mask init); deterministic given its state.
  virtual AttackResult Attack(const AttackContext& ctx,
                              const AttackRequest& request, Rng* rng) const = 0;

  /// Attacks a GROUP of requests batched together by the multi-target
  /// driver; `rngs[i]` is request i's independent stream.  The contract is
  /// bit-identity: results must equal running Attack(ctx, requests[i],
  /// rngs[i]) one by one.  The base implementation does exactly that (every
  /// attacker is batchable by fallback); attackers with a stacked scoring
  /// path (FGA and GEAttack) override it to share subgraph construction and
  /// score all targets per wide forward while preserving the contract.
  virtual std::vector<AttackResult> AttackBatch(
      const AttackContext& ctx, const std::vector<AttackRequest>& requests,
      const std::vector<Rng*>& rngs) const;
};

/// Candidate endpoints for a direct add-edge attack on `target`: nodes j
/// with A[target, j] = 0 and j != target.  When `required_label` >= 0, only
/// nodes carrying that label are returned (the paper's per-baseline
/// targeted-label constraint).
std::vector<int64_t> DirectAddCandidates(const Tensor& adjacency,
                                         int64_t target,
                                         const std::vector<int64_t>& labels,
                                         int64_t required_label);

/// Graph-based twin of DirectAddCandidates — O(n) with no dense adjacency,
/// used by the sparse attack loops (identical candidate order).
std::vector<int64_t> DirectAddCandidates(const Graph& graph, int64_t target,
                                         const std::vector<int64_t>& labels,
                                         int64_t required_label);

/// The targeted attack loss of Eq. (4): -log f(Â, X)[v, ŷ], differentiable
/// in the adjacency.
Var TargetedAttackLoss(const GcnForwardContext& ctx, const Var& adjacency,
                       int64_t node, int64_t label);

/// Adds edge (u,v) symmetrically to a dense adjacency.
void AddEdgeDense(Tensor* adjacency, int64_t u, int64_t v);

/// True if the attacked model now predicts `label` for `node`.
bool PredictsLabel(const Gcn& model, const Tensor& adjacency,
                   const Tensor& features, int64_t node, int64_t label);

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_ATTACK_H_
