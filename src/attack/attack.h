// Common interface and utilities for targeted structure attacks.
//
// Setting (paper §3 "Problem Statement" and §5.1):
//   * evasion attacks on a fixed trained GCN (white box);
//   * direct attacks: every adversarial edge is incident to the target node;
//   * add-edge only (footnote 1: adding fake connections is the cheap,
//     realistic perturbation in social/citation graphs);
//   * budget Δ edges per target (set to the target's degree in the paper).

#ifndef GEATTACK_SRC_ATTACK_ATTACK_H_
#define GEATTACK_SRC_ATTACK_ATTACK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph.h"
#include "src/nn/gcn.h"
#include "src/tensor/random.h"
#include "src/tensor/tensor.h"

namespace geattack {

/// Immutable attack-time context shared across targets.
struct AttackContext {
  const GraphData* data = nullptr;  ///< Clean attributed graph.
  const Gcn* model = nullptr;       ///< Trained victim (fixed, evasion).
  Tensor clean_adjacency;           ///< Dense adjacency of the clean graph.
  CsrMatrix clean_csr;              ///< The same adjacency in CSR form; the
                                    ///< sparse eval path patches it with
                                    ///< ApplyEdgeFlips instead of
                                    ///< re-densifying per target.
};

/// One attack query.
struct AttackRequest {
  int64_t target_node = -1;
  /// The specific incorrect label ŷ the attacker wants predicted.  -1 means
  /// untargeted (any wrong label) — only plain FGA uses that mode.
  int64_t target_label = -1;
  int64_t budget = 1;  ///< Δ: maximum number of added edges.
};

/// Attack outcome.
struct AttackResult {
  Tensor adjacency;               ///< Perturbed dense adjacency Â.
  std::vector<Edge> added_edges;  ///< The adversarial edges E'.
};

/// Interface implemented by every attacker (baselines and GEAttack).
class TargetedAttack {
 public:
  virtual ~TargetedAttack() = default;

  /// Display name used in result tables, e.g. "Nettack".
  virtual std::string name() const = 0;

  /// Perturbs the graph for one request.  `rng` supplies any stochasticity
  /// (random baseline, mask init); deterministic given its state.
  virtual AttackResult Attack(const AttackContext& ctx,
                              const AttackRequest& request, Rng* rng) const = 0;
};

/// Candidate endpoints for a direct add-edge attack on `target`: nodes j
/// with A[target, j] = 0 and j != target.  When `required_label` >= 0, only
/// nodes carrying that label are returned (the paper's per-baseline
/// targeted-label constraint).
std::vector<int64_t> DirectAddCandidates(const Tensor& adjacency,
                                         int64_t target,
                                         const std::vector<int64_t>& labels,
                                         int64_t required_label);

/// The targeted attack loss of Eq. (4): -log f(Â, X)[v, ŷ], differentiable
/// in the adjacency.
Var TargetedAttackLoss(const GcnForwardContext& ctx, const Var& adjacency,
                       int64_t node, int64_t label);

/// Adds edge (u,v) symmetrically to a dense adjacency.
void AddEdgeDense(Tensor* adjacency, int64_t u, int64_t v);

/// True if the attacked model now predicts `label` for `node`.
bool PredictsLabel(const Gcn& model, const Tensor& adjacency,
                   const Tensor& features, int64_t node, int64_t label);

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_ATTACK_H_
