// Nettack (Zügner et al., KDD'18), targeted structure variant (paper §5.1):
// greedy edge addition scored on the linearized GCN surrogate, restricted
// to perturbations that preserve the graph's power-law degree distribution.

#ifndef GEATTACK_SRC_ATTACK_NETTACK_H_
#define GEATTACK_SRC_ATTACK_NETTACK_H_

#include "src/attack/attack.h"
#include "src/nn/linearized_gcn.h"

namespace geattack {

/// Nettack configuration.
struct NettackConfig {
  /// Enable the degree-distribution unnoticeability constraint.
  bool enforce_degree_test = true;
  /// χ²(1) likelihood-ratio cutoff (Nettack default).
  double degree_test_threshold = 0.004;
  int64_t degree_test_d_min = 2;
  /// Incremental scoring path (default): candidates are scored with
  /// LinearizedGcn::LogitsRowWithEdgeAdded on one normalized CSR with
  /// incrementally-maintained degrees — O(two-hop volume · c) per candidate
  /// instead of the dense path's O(n²) re-normalization.  Identical picks
  /// up to floating-point roundoff.
  bool use_sparse = true;
};

/// The Nettack baseline.
class Nettack : public TargetedAttack {
 public:
  explicit Nettack(const NettackConfig& config = {}) : config_(config) {}

  std::string name() const override { return "Nettack"; }

  AttackResult Attack(const AttackContext& ctx, const AttackRequest& request,
                      Rng* rng) const override;

 private:
  AttackResult AttackDense(const AttackContext& ctx,
                           const AttackRequest& request) const;
  AttackResult AttackSparse(const AttackContext& ctx,
                            const AttackRequest& request) const;

  NettackConfig config_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_ATTACK_NETTACK_H_
