#include "src/service/attack_service.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "src/graph/subgraph.h"

namespace geattack {

namespace {

std::chrono::steady_clock::time_point AfterMs(
    std::chrono::steady_clock::time_point from, double ms) {
  return from + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
}

/// Unique churn endpoints, for ball-overlap checks.
std::vector<int64_t> ChurnEndpoints(const ChurnBatch& batch) {
  std::vector<int64_t> nodes;
  nodes.reserve(2 * (batch.added.size() + batch.removed.size()));
  for (const ChurnEdge& e : batch.added) {
    nodes.push_back(e.u);
    nodes.push_back(e.v);
  }
  for (const ChurnEdge& e : batch.removed) {
    nodes.push_back(e.u);
    nodes.push_back(e.v);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace

uint64_t AttemptSeed(uint64_t base_seed, int64_t accepted_index, int attempt) {
  GEA_CHECK(attempt >= 0);
  const uint64_t first = TargetSeed(base_seed, accepted_index);
  if (attempt == 0) return first;
  return TargetSeed(first, attempt);
}

AttackService::AttackService(const AttackServiceConfig& config)
    : config_(config) {
  GEA_CHECK(config_.queue_capacity > 0);
  GEA_CHECK(config_.wave_size > 0);
  GEA_CHECK(config_.max_attempts >= 1);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AttackService::~AttackService() {
  Stop();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Status AttackService::RegisterGraph(
    const std::string& version, const GraphData& data, const Gcn& model,
    std::shared_ptr<const TargetedAttack> attack, bool dense_context) {
  if (version.empty())
    return Status::InvalidArgument("graph version name must be non-empty");
  if (attack == nullptr)
    return Status::InvalidArgument("graph registration needs an attack");
  // The epoch-0 snapshot (copies + normalization) is built outside mu_ so a
  // large registration does not stall Submit/Take on other versions.
  auto snap =
      MakeGraphSnapshot(version, data, model, std::move(attack), dense_context);
  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.count(version) != 0)
    return Status::InvalidArgument("graph version '" + version +
                                   "' already registered (snapshots are "
                                   "immutable — churn it with UpdateGraph)");
  graphs_[version] = std::move(snap);
  return Status::Ok();
}

ChurnResult AttackService::UpdateGraph(const std::string& version,
                                       const ChurnBatch& batch) {
  // churn_mu_ serializes churners, so `prev` stays the current snapshot for
  // the whole build (the GEA_CHECK below re-asserts it).  mu_ is NOT held
  // while the next epoch is built — Submit/Take/dispatch stay live.
  std::lock_guard<std::mutex> churn_lock(churn_mu_);
  std::shared_ptr<const GraphSnapshot> prev;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return {Status::ResourceExhausted("service stopping"), -1, 0};
    // Configured durability that never opened is a setup error: Recover()
    // must run (and open the WAL) before the first churn.
    if (journaling()) GEA_CHECK(wal_.is_open());
    const auto it = graphs_.find(version);
    if (it == graphs_.end())
      return {Status::NotFound("graph version '" + version +
                               "' not registered"),
              -1, 0};
    prev = it->second;
  }

  // All-or-nothing admission: any malformed entry rejects the whole batch
  // before ANY state is touched (validation is pure).
  Status valid = ValidateChurnBatch(prev->data.graph, batch);
  if (!valid.ok()) return {std::move(valid), -1, 0};

  auto next = ApplyChurn(prev, batch);
  const std::vector<int64_t> endpoints = ChurnEndpoints(batch);

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(version);
  GEA_CHECK(it != graphs_.end() && it->second == prev);

  // Ball-overlap invalidation: a QUEUED request re-pins to the new epoch
  // only when some churn endpoint lies inside its augmented ball — outside
  // it, the view, out-degrees, and candidate set are unchanged, so old- and
  // new-epoch picks are identical and the old pin stays correct.  Balls are
  // computed on `prev`'s graph for every queued entry, including ones still
  // pinned to older epochs: not having been bumped by the intervening
  // churns means their ball region is identical in every epoch since their
  // pin.  Running entries are never disturbed — they finish on their
  // dispatch snapshot.
  std::vector<int64_t> bumped;
  for (Entry* e : pending_) {
    if (e->request.graph != version) continue;
    bool overlap = true;
    if (config_.churn_ball_hops >= 0) {
      const std::vector<int64_t> candidates =
          DirectAddCandidates(prev->data.graph, e->request.target_node,
                              prev->data.labels, e->request.target_label);
      const std::vector<char> ball =
          AugmentedBallFlags(prev->data.graph, e->request.target_node,
                             config_.churn_ball_hops, candidates);
      overlap = false;
      for (const int64_t node : endpoints) {
        if (ball[ZU(node)] != 0) {
          overlap = true;
          break;
        }
      }
    }
    if (overlap) {
      e->snap = next;
      bumped.push_back(e->ticket);
    }
  }

  // WAL discipline: the churn (with its exact re-pinning decisions, which
  // recovery replays rather than re-derives) is durable BEFORE the new
  // epoch becomes visible.
  if (journaling()) {
    ServiceChurnRecord rec;
    rec.version = version;
    rec.epoch = next->epoch;
    rec.bumped_tickets = bumped;
    rec.added = ChurnEdgesOf(batch.added);
    rec.removed = ChurnEdgesOf(batch.removed);
    const Status appended = wal_.AppendChurn(rec);
    GEA_CHECK(appended.ok());
  }
  it->second = next;
  ++stats_.churn_batches;
  stats_.requeued_stale += static_cast<int64_t>(bumped.size());
  work_cv_.notify_all();
  return {Status::Ok(), next->epoch, static_cast<int64_t>(bumped.size())};
}

RecoveryReport AttackService::Recover() {
  RecoveryReport report;
  std::lock_guard<std::mutex> churn_lock(churn_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  GEA_CHECK(!recovered_);
  GEA_CHECK(!stopping_);
  GEA_CHECK(next_ticket_ == 0 && entries_.empty());
  recovered_ = true;
  if (!journaling()) return report;

  ServiceJournalLoadResult load =
      LoadServiceJournal(config_.journal_path, config_.base_seed);
  report.status = load.status;
  if (!load.status.ok()) {
    // Structured data loss: a complete record failed its CRC.  Everything
    // before it replays; the corrupt tail is truncated below and its work
    // recomputed.  Fail-soft with a warning, matching the driver.
    std::fprintf(stderr, "geattack: service WAL '%s': %s\n",
                 config_.journal_path.c_str(),
                 load.status.message().c_str());
  }

  // Pre-pass: every version in the WAL must have been re-registered (at
  // epoch 0) before Recover() — fail before mutating anything.
  for (const ServiceJournalEvent& ev : load.events) {
    const std::string* version = nullptr;
    if (ev.kind == ServiceJournalEvent::Kind::kChurn) version = &ev.churn.version;
    if (ev.kind == ServiceJournalEvent::Kind::kSubmit)
      version = &ev.submit.version;
    if (version != nullptr && graphs_.count(*version) == 0) {
      report.status = Status::InvalidArgument(
          "service WAL references graph version '" + *version +
          "' — re-register every epoch-0 graph before Recover()");
      return report;
    }
  }

  // Epoch chains rebuild deterministically from the `g` records; submits
  // pin the snapshot their record names; completions replay their recorded
  // results.  No wall-clock is read from the journal (none is in it).
  std::map<std::string, std::map<int64_t, std::shared_ptr<const GraphSnapshot>>>
      epochs;
  for (const auto& kv : graphs_) {
    GEA_CHECK(kv.second->epoch == 0);
    epochs[kv.first][0] = kv.second;
  }
  for (const ServiceJournalEvent& ev : load.events) {
    switch (ev.kind) {
      case ServiceJournalEvent::Kind::kChurn: {
        const ServiceChurnRecord& rec = ev.churn;
        const auto git = graphs_.find(rec.version);
        GEA_CHECK(git != graphs_.end());
        GEA_CHECK(rec.epoch == git->second->epoch + 1);
        ChurnBatch batch;
        for (const Edge& e : rec.added) batch.added.push_back({e.u, e.v, 1.0});
        for (const Edge& e : rec.removed)
          batch.removed.push_back({e.u, e.v, 1.0});
        auto next = ApplyChurn(git->second, batch);
        git->second = next;
        epochs[rec.version][rec.epoch] = next;
        for (const int64_t ticket : rec.bumped_tickets) {
          const auto eit = entries_.find(ticket);
          GEA_CHECK(eit != entries_.end());
          GEA_CHECK(eit->second->state == EntryState::kQueued);
          eit->second->snap = next;
        }
        ++stats_.churn_batches;
        stats_.requeued_stale +=
            static_cast<int64_t>(rec.bumped_tickets.size());
        ++report.churn_batches;
        break;
      }
      case ServiceJournalEvent::Kind::kSubmit: {
        const ServiceSubmitRecord& rec = ev.submit;
        GEA_CHECK(entries_.count(rec.ticket) == 0);
        const auto vit = epochs.find(rec.version);
        GEA_CHECK(vit != epochs.end());
        const auto sit = vit->second.find(rec.epoch);
        GEA_CHECK(sit != vit->second.end());
        auto entry = std::make_unique<Entry>();
        Entry* e = entry.get();
        e->ticket = rec.ticket;
        e->request.graph = rec.version;
        e->request.target_node = rec.target_node;
        e->request.target_label = rec.target_label;
        e->request.budget = rec.budget;
        e->request.priority = static_cast<int32_t>(rec.priority);
        // deadline_ms stays 0: wall-clock deadlines are never journaled
        // (no clock bits), so recovered work re-runs without one.
        e->snap = sit->second;
        e->accepted_index = rec.accepted_index;
        e->submitted_at = std::chrono::steady_clock::now();
        e->out.accepted_index = e->accepted_index;
        e->out.effective_budget = rec.budget;
        entries_.emplace(e->ticket, std::move(entry));
        pending_.push_back(e);
        next_ticket_ = std::max(next_ticket_, rec.ticket + 1);
        next_accepted_index_ =
            std::max(next_accepted_index_, rec.accepted_index + 1);
        ++stats_.submitted;
        ++stats_.accepted;
        break;
      }
      case ServiceJournalEvent::Kind::kComplete: {
        const ServiceCompleteRecord& rec = ev.complete;
        const auto eit = entries_.find(rec.ticket);
        GEA_CHECK(eit != entries_.end());
        Entry* e = eit->second.get();
        GEA_CHECK(e->state == EntryState::kQueued);
        GEA_CHECK(e->snap->epoch == rec.epoch);
        pending_.erase(std::find(pending_.begin(), pending_.end(), e));
        e->attempt = static_cast<int>(rec.attempts);
        e->out.attempts = e->attempt;
        e->out.seed = rec.attempts > 0
                          ? AttemptSeed(config_.base_seed, e->accepted_index,
                                        e->attempt - 1)
                          : 0;
        e->out.effective_budget = rec.effective_budget;
        AttackResult result = rec.result;
        const StatusCode code = result.status.code();
        if (e->snap->ctx.clean_adjacency.rows() > 0 &&
            (code == StatusCode::kOk || code == StatusCode::kTimedOut)) {
          // Adjacency values are exactly 0.0/1.0: clean + AddEdgeDense
          // reproduces the attack's dense output bit-for-bit (same rebuild
          // the driver journal uses).
          result.adjacency = e->snap->ctx.clean_adjacency;
          for (const Edge& edge : result.added_edges)
            AddEdgeDense(&result.adjacency, edge.u, edge.v);
        }
        Finalize(e, std::move(result), /*from_replay=*/true);
        ++stats_.replayed_results;
        ++report.replayed_results;
        report.completed_tickets.push_back(rec.ticket);
        break;
      }
    }
  }

  stats_.queue_depth = static_cast<int64_t>(pending_.size());
  stats_.max_queue_depth =
      std::max(stats_.max_queue_depth, stats_.queue_depth);
  report.pending = static_cast<int64_t>(pending_.size());
  report.pending_tickets.reserve(pending_.size());
  for (const Entry* e : pending_) report.pending_tickets.push_back(e->ticket);

  const int64_t resume_offset = load.header_ok ? load.valid_bytes : 0;
  const Status opened =
      wal_.Open(config_.journal_path, resume_offset, config_.base_seed);
  // A WAL that cannot open means the recovery contract cannot be kept —
  // fail loudly rather than run undurably (same stance as the driver).
  GEA_CHECK(opened.ok());

  work_cv_.notify_all();
  done_cv_.notify_all();
  return report;
}

Admission AttackService::Submit(const AttackServiceRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (stopping_) {
    ++stats_.rejected_queue_full;
    return {Status::ResourceExhausted("service stopping"), -1};
  }
  // Configured durability that never opened is a setup error: Recover()
  // must run (and open the WAL) before the first admission.
  if (journaling()) GEA_CHECK(wal_.is_open());
  const auto graph_it = graphs_.find(request.graph);
  if (graph_it == graphs_.end()) {
    ++stats_.rejected_invalid;
    return {Status::NotFound("graph version '" + request.graph +
                             "' not registered"),
            -1};
  }
  const std::shared_ptr<const GraphSnapshot>& snap = graph_it->second;
  const int64_t n = snap->data.num_nodes();
  if (request.target_node < 0 || request.target_node >= n ||
      request.target_label < -1 || request.budget < 0) {
    ++stats_.rejected_invalid;
    return {Status::InvalidArgument("bad request: node " +
                                    std::to_string(request.target_node) +
                                    " label " +
                                    std::to_string(request.target_label) +
                                    " budget " +
                                    std::to_string(request.budget)),
            -1};
  }
  // Feasibility pre-check: a deadline below the floor cannot finish even on
  // an idle service — reject now instead of letting it occupy a queue slot
  // until it expires.  NO rng stream is consumed by a rejection: streams
  // are keyed by accepted_index, which only advances on acceptance.
  if (config_.min_feasible_deadline_ms > 0.0 && request.deadline_ms > 0.0 &&
      request.deadline_ms < config_.min_feasible_deadline_ms) {
    ++stats_.rejected_infeasible;
    return {Status::ResourceExhausted(
                "deadline " + std::to_string(request.deadline_ms) +
                " ms is below the feasibility floor"),
            -1};
  }
  if (static_cast<int64_t>(pending_.size()) >= config_.queue_capacity) {
    ++stats_.rejected_queue_full;
    return {Status::ResourceExhausted("submission queue full"), -1};
  }

  auto entry = std::make_unique<Entry>();
  Entry* e = entry.get();
  e->ticket = next_ticket_++;
  e->request = request;
  e->snap = snap;  // Pinned: churn after this point re-pins only on overlap.
  e->submitted_at = std::chrono::steady_clock::now();
  e->accepted_index = next_accepted_index_++;
  e->out.accepted_index = e->accepted_index;
  e->out.effective_budget = request.budget;
  if (request.deadline_ms > 0.0) {
    e->has_deadline = true;
    e->deadline = AfterMs(std::chrono::steady_clock::now(),
                          request.deadline_ms);
    // Armed before the entry becomes visible to the dispatcher (mu_ is
    // held), so the driver's workers only ever read it.
    e->token.SetDeadlineAfterMs(request.deadline_ms);
  }
  // Durable admission: the `s` record is fsync'd before the ticket is
  // returned, so an accepted ticket survives kill −9 from this line on.
  if (journaling()) {
    ServiceSubmitRecord rec;
    rec.ticket = e->ticket;
    rec.accepted_index = e->accepted_index;
    rec.epoch = e->snap->epoch;
    rec.target_node = request.target_node;
    rec.target_label = request.target_label;
    rec.budget = request.budget;
    rec.priority = request.priority;
    rec.version = request.graph;
    const Status appended = wal_.AppendSubmit(rec);
    GEA_CHECK(appended.ok());
  }
  entries_.emplace(e->ticket, std::move(entry));
  pending_.push_back(e);
  ++stats_.accepted;
  stats_.queue_depth = static_cast<int64_t>(pending_.size());
  stats_.max_queue_depth = std::max(stats_.max_queue_depth,
                                    stats_.queue_depth);
  work_cv_.notify_one();
  return {Status::Ok(), e->ticket};
}

void AttackService::Cancel(int64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(ticket);
  if (it == entries_.end()) return;
  it->second->token.Cancel();
  // A queued entry finalizes at its next dispatch consideration (the
  // driver's pre-check turns it into kSkipped without consuming any
  // stream); wake the dispatcher so that happens promptly.
  work_cv_.notify_one();
}

ServiceResult AttackService::Take(int64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = entries_.find(ticket);
  if (it == entries_.end()) {
    ServiceResult unknown;
    unknown.result.status =
        Status::NotFound("ticket " + std::to_string(ticket) +
                         " was never issued or was already taken");
    return unknown;
  }
  Entry* e = it->second.get();
  done_cv_.wait(lock, [e] { return e->state == EntryState::kDone; });
  ServiceResult out = std::move(e->out);
  entries_.erase(ticket);
  return out;
}

void AttackService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_.empty() && in_flight_ == 0; });
}

void AttackService::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  work_cv_.notify_all();
}

int64_t AttackService::CurrentEpoch(const std::string& version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(version);
  return it == graphs_.end() ? -1 : it->second->epoch;
}

std::shared_ptr<const GraphSnapshot> AttackService::CurrentSnapshot(
    const std::string& version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = graphs_.find(version);
  return it == graphs_.end() ? nullptr : it->second;
}

ServiceStats AttackService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats snapshot = stats_;
  snapshot.queue_depth = static_cast<int64_t>(pending_.size());
  snapshot.in_flight = in_flight_;
  return snapshot;
}

void AttackService::CountOutcome(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      ++stats_.completed_ok;
      break;
    case StatusCode::kTimedOut:
      ++stats_.timed_out;
      break;
    case StatusCode::kSkipped:
      ++stats_.skipped;
      break;
    case StatusCode::kResourceExhausted:
      ++stats_.shed;
      break;
    default:
      ++stats_.failed;
      break;
  }
}

void AttackService::Finalize(Entry* e, AttackResult result, bool from_replay) {
  e->out.result = std::move(result);
  e->out.epoch = e->snap->epoch;
  e->out.latency_ms =
      from_replay ? 0.0
                  : std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - e->submitted_at)
                        .count();
  // The `t` record is the exactly-once commit point: once it is durable the
  // result replays on recovery; a crash before this append re-runs the
  // ticket on its recorded seed stream, computing the identical result.
  if (!from_replay && journaling()) {
    ServiceCompleteRecord rec;
    rec.ticket = e->ticket;
    rec.attempts = e->out.attempts;
    rec.effective_budget = e->out.effective_budget;
    rec.epoch = e->out.epoch;
    rec.result.status = e->out.result.status;
    rec.result.added_edges = e->out.result.added_edges;
    const Status appended = wal_.AppendComplete(rec);
    GEA_CHECK(appended.ok());
  }
  e->state = EntryState::kDone;
  CountOutcome(e->out.result.status.code());
}

void AttackService::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (pending_.empty()) {
      if (stopping_) break;
      work_cv_.wait(lock,
                    [this] { return stopping_ || !pending_.empty(); });
      continue;
    }
    if (stopping_) {
      // Queued work is finalized (never silently dropped) so every Take()
      // unblocks with a structured outcome.
      for (Entry* e : pending_) {
        AttackResult r;
        r.status = Status::ResourceExhausted("service stopping");
        Finalize(e, std::move(r));
      }
      pending_.clear();
      stats_.queue_depth = 0;
      done_cv_.notify_all();
      break;
    }

    const auto now = std::chrono::steady_clock::now();

    // Overload shedding: above the watermark, drop lowest-priority (then
    // latest-deadline, then youngest) requests down to the watermark.
    // Shedding is structured — the caller gets kResourceExhausted, and no
    // rng stream is touched, so the survivors' offline reference is simply
    // "the accepted set minus the shed tickets".
    if (config_.shed_watermark > 0) {
      bool any_shed = false;
      while (static_cast<int64_t>(pending_.size()) > config_.shed_watermark) {
        auto victim = std::min_element(
            pending_.begin(), pending_.end(), [](Entry* a, Entry* b) {
              if (a->request.priority != b->request.priority)
                return a->request.priority < b->request.priority;
              if (a->has_deadline != b->has_deadline)
                return !a->has_deadline;  // No deadline = most slack.
              if (a->has_deadline && a->deadline != b->deadline)
                return a->deadline > b->deadline;
              return a->accepted_index > b->accepted_index;
            });
        Entry* e = *victim;
        pending_.erase(victim);
        AttackResult r;
        r.status = Status::ResourceExhausted(
            "shed under overload (queue depth above watermark)");
        Finalize(e, std::move(r));
        any_shed = true;
      }
      if (any_shed) {
        stats_.queue_depth = static_cast<int64_t>(pending_.size());
        done_cv_.notify_all();
      }
    }
    if (pending_.empty()) continue;

    // Wave selection: expiring-soonest first (ties by admission order),
    // restricted to one snapshot EPOCH per wave (entries re-pinned by a
    // churn wait for a wave on the new epoch), skipping entries still in
    // retry backoff.  Reordering cannot change any result — every
    // request's draws come from its own AttemptSeed stream.
    std::vector<Entry*> eligible;
    eligible.reserve(pending_.size());
    auto earliest_backoff =
        std::chrono::steady_clock::time_point::max();
    for (Entry* e : pending_) {
      if (e->eligible_at > now) {
        earliest_backoff = std::min(earliest_backoff, e->eligible_at);
        continue;
      }
      eligible.push_back(e);
    }
    if (eligible.empty()) {
      // Everything queued is backing off: sleep until the earliest retry
      // becomes eligible (or new work / stop arrives).
      work_cv_.wait_until(lock, earliest_backoff);
      continue;
    }
    std::sort(eligible.begin(), eligible.end(), [](Entry* a, Entry* b) {
      if (a->has_deadline != b->has_deadline) return a->has_deadline;
      if (a->has_deadline && a->deadline != b->deadline)
        return a->deadline < b->deadline;
      return a->accepted_index < b->accepted_index;
    });
    // The local shared_ptr keeps the wave's snapshot alive across the
    // unlocked driver call even if every queued pin moves on mid-wave.
    const std::shared_ptr<const GraphSnapshot> wave_snap =
        eligible.front()->snap;
    std::vector<Entry*> wave;
    for (Entry* e : eligible) {
      if (e->snap != wave_snap) continue;
      wave.push_back(e);
      if (static_cast<int64_t>(wave.size()) >= config_.wave_size) break;
    }

    // Degradation: while the queue is past the watermark, waves run with a
    // capped budget and a tighter per-target deadline — everything still
    // admitted finishes smaller instead of nothing finishing.
    const bool degraded =
        config_.degrade_watermark > 0 &&
        static_cast<int64_t>(pending_.size()) > config_.degrade_watermark;
    if (degraded) ++stats_.degraded_waves;
    double wave_deadline_ms = config_.target_deadline_ms;
    if (degraded && config_.degraded_target_deadline_ms > 0.0)
      wave_deadline_ms = config_.degraded_target_deadline_ms;

    std::vector<AttackRequest> requests;
    std::vector<uint64_t> seeds;
    requests.reserve(wave.size());
    seeds.reserve(wave.size());
    for (Entry* e : wave) {
      pending_.erase(std::find(pending_.begin(), pending_.end(), e));
      e->state = EntryState::kRunning;
      int64_t budget = e->request.budget;
      if (degraded && config_.degraded_budget_cap > 0)
        budget = std::min(budget, config_.degraded_budget_cap);
      e->out.effective_budget = budget;
      AttackRequest r;
      r.target_node = e->request.target_node;
      r.target_label = e->request.target_label;
      r.budget = budget;
      r.cancel = &e->token;
      requests.push_back(r);
      seeds.push_back(
          AttemptSeed(config_.base_seed, e->accepted_index, e->attempt));
    }
    in_flight_ = static_cast<int64_t>(wave.size());
    stats_.queue_depth = static_cast<int64_t>(pending_.size());

    AttackDriverConfig driver_config;
    driver_config.num_threads = config_.num_threads;
    driver_config.batch_targets = config_.batch_targets;
    driver_config.target_deadline_ms = wave_deadline_ms;
    driver_config.request_seeds = std::move(seeds);

    lock.unlock();
    std::vector<AttackResult> results = RunMultiTargetAttack(
        wave_snap->ctx, *wave_snap->attack, requests, driver_config);
    lock.lock();

    const auto finished = std::chrono::steady_clock::now();
    for (size_t i = 0; i < wave.size(); ++i) {
      Entry* e = wave[i];
      AttackResult result = std::move(results[i]);
      const bool ran = result.status.code() != StatusCode::kSkipped;
      if (ran) {
        ++e->attempt;
        e->out.attempts = e->attempt;
        e->out.seed =
            AttemptSeed(config_.base_seed, e->accepted_index, e->attempt - 1);
      }
      const bool retry = !stopping_ &&
                         IsRetryableStatus(result.status.code()) &&
                         e->attempt < config_.max_attempts &&
                         !e->token.Expired();
      if (retry) {
        // Back off exponentially: retry r waits base * 2^(r-1) after the
        // failed attempt.  The retry draws from AttemptSeed(base, index,
        // attempt) — a stream disjoint from every first-attempt stream.
        const double backoff =
            config_.retry_backoff_ms *
            static_cast<double>(int64_t{1} << (e->attempt - 1));
        e->eligible_at =
            backoff > 0.0 ? AfterMs(finished, backoff) : finished;
        e->state = EntryState::kQueued;
        pending_.push_back(e);
        ++stats_.retried;
      } else {
        Finalize(e, std::move(result));
      }
    }
    in_flight_ = 0;
    stats_.queue_depth = static_cast<int64_t>(pending_.size());
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, stats_.queue_depth);
    done_cv_.notify_all();
  }
  done_cv_.notify_all();
}

}  // namespace geattack
