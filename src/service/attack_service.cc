#include "src/service/attack_service.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace geattack {

namespace {

std::chrono::steady_clock::time_point AfterMs(
    std::chrono::steady_clock::time_point from, double ms) {
  return from + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

uint64_t AttemptSeed(uint64_t base_seed, int64_t accepted_index, int attempt) {
  GEA_CHECK(attempt >= 0);
  const uint64_t first = TargetSeed(base_seed, accepted_index);
  if (attempt == 0) return first;
  return TargetSeed(first, attempt);
}

AttackService::AttackService(const AttackServiceConfig& config)
    : config_(config) {
  GEA_CHECK(config_.queue_capacity > 0);
  GEA_CHECK(config_.wave_size > 0);
  GEA_CHECK(config_.max_attempts >= 1);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AttackService::~AttackService() {
  Stop();
  if (dispatcher_.joinable()) dispatcher_.join();
}

Status AttackService::RegisterGraph(const std::string& version,
                                    const AttackContext* ctx,
                                    const TargetedAttack* attack) {
  if (version.empty())
    return Status::InvalidArgument("graph version name must be non-empty");
  if (ctx == nullptr || ctx->data == nullptr || attack == nullptr)
    return Status::InvalidArgument("graph registration needs a context and "
                                   "an attack");
  std::lock_guard<std::mutex> lock(mu_);
  if (graphs_.count(version) != 0)
    return Status::InvalidArgument("graph version '" + version +
                                   "' already registered (versions are "
                                   "immutable — publish a new name)");
  graphs_[version] = GraphEntry{ctx, attack};
  return Status::Ok();
}

Admission AttackService::Submit(const AttackServiceRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (stopping_) {
    ++stats_.rejected_queue_full;
    return {Status::ResourceExhausted("service stopping"), -1};
  }
  const auto graph_it = graphs_.find(request.graph);
  if (graph_it == graphs_.end()) {
    ++stats_.rejected_invalid;
    return {Status::NotFound("graph version '" + request.graph +
                             "' not registered"),
            -1};
  }
  const GraphEntry& graph = graph_it->second;
  const int64_t n = graph.ctx->data->num_nodes();
  if (request.target_node < 0 || request.target_node >= n ||
      request.target_label < -1 || request.budget < 0) {
    ++stats_.rejected_invalid;
    return {Status::InvalidArgument("bad request: node " +
                                    std::to_string(request.target_node) +
                                    " label " +
                                    std::to_string(request.target_label) +
                                    " budget " +
                                    std::to_string(request.budget)),
            -1};
  }
  // Feasibility pre-check: a deadline below the floor cannot finish even on
  // an idle service — reject now instead of letting it occupy a queue slot
  // until it expires.  NO rng stream is consumed by a rejection: streams
  // are keyed by accepted_index, which only advances on acceptance.
  if (config_.min_feasible_deadline_ms > 0.0 && request.deadline_ms > 0.0 &&
      request.deadline_ms < config_.min_feasible_deadline_ms) {
    ++stats_.rejected_infeasible;
    return {Status::ResourceExhausted(
                "deadline " + std::to_string(request.deadline_ms) +
                " ms is below the feasibility floor"),
            -1};
  }
  if (static_cast<int64_t>(pending_.size()) >= config_.queue_capacity) {
    ++stats_.rejected_queue_full;
    return {Status::ResourceExhausted("submission queue full"), -1};
  }

  auto entry = std::make_unique<Entry>();
  Entry* e = entry.get();
  e->ticket = next_ticket_++;
  e->request = request;
  e->graph = &graph;
  e->submitted_at = std::chrono::steady_clock::now();
  e->accepted_index = next_accepted_index_++;
  e->out.accepted_index = e->accepted_index;
  e->out.effective_budget = request.budget;
  if (request.deadline_ms > 0.0) {
    e->has_deadline = true;
    e->deadline = AfterMs(std::chrono::steady_clock::now(),
                          request.deadline_ms);
    // Armed before the entry becomes visible to the dispatcher (mu_ is
    // held), so the driver's workers only ever read it.
    e->token.SetDeadlineAfterMs(request.deadline_ms);
  }
  entries_.emplace(e->ticket, std::move(entry));
  pending_.push_back(e);
  ++stats_.accepted;
  stats_.queue_depth = static_cast<int64_t>(pending_.size());
  stats_.max_queue_depth = std::max(stats_.max_queue_depth,
                                    stats_.queue_depth);
  work_cv_.notify_one();
  return {Status::Ok(), e->ticket};
}

void AttackService::Cancel(int64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(ticket);
  if (it == entries_.end()) return;
  it->second->token.Cancel();
  // A queued entry finalizes at its next dispatch consideration (the
  // driver's pre-check turns it into kSkipped without consuming any
  // stream); wake the dispatcher so that happens promptly.
  work_cv_.notify_one();
}

ServiceResult AttackService::Take(int64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = entries_.find(ticket);
  if (it == entries_.end()) {
    ServiceResult unknown;
    unknown.result.status =
        Status::NotFound("ticket " + std::to_string(ticket) +
                         " was never issued or was already taken");
    return unknown;
  }
  Entry* e = it->second.get();
  done_cv_.wait(lock, [e] { return e->state == EntryState::kDone; });
  ServiceResult out = std::move(e->out);
  entries_.erase(ticket);
  return out;
}

void AttackService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_.empty() && in_flight_ == 0; });
}

void AttackService::Stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  work_cv_.notify_all();
}

ServiceStats AttackService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats snapshot = stats_;
  snapshot.queue_depth = static_cast<int64_t>(pending_.size());
  snapshot.in_flight = in_flight_;
  return snapshot;
}

void AttackService::Finalize(Entry* e, AttackResult result) {
  e->out.result = std::move(result);
  e->out.latency_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - e->submitted_at)
                          .count();
  e->state = EntryState::kDone;
  switch (e->out.result.status.code()) {
    case StatusCode::kOk:
      ++stats_.completed_ok;
      break;
    case StatusCode::kTimedOut:
      ++stats_.timed_out;
      break;
    case StatusCode::kSkipped:
      ++stats_.skipped;
      break;
    case StatusCode::kResourceExhausted:
      ++stats_.shed;
      break;
    default:
      ++stats_.failed;
      break;
  }
}

void AttackService::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (pending_.empty()) {
      if (stopping_) break;
      work_cv_.wait(lock,
                    [this] { return stopping_ || !pending_.empty(); });
      continue;
    }
    if (stopping_) {
      // Queued work is finalized (never silently dropped) so every Take()
      // unblocks with a structured outcome.
      for (Entry* e : pending_) {
        AttackResult r;
        r.status = Status::ResourceExhausted("service stopping");
        Finalize(e, std::move(r));
      }
      pending_.clear();
      stats_.queue_depth = 0;
      done_cv_.notify_all();
      break;
    }

    const auto now = std::chrono::steady_clock::now();

    // Overload shedding: above the watermark, drop lowest-priority (then
    // latest-deadline, then youngest) requests down to the watermark.
    // Shedding is structured — the caller gets kResourceExhausted, and no
    // rng stream is touched, so the survivors' offline reference is simply
    // "the accepted set minus the shed tickets".
    if (config_.shed_watermark > 0) {
      bool any_shed = false;
      while (static_cast<int64_t>(pending_.size()) > config_.shed_watermark) {
        auto victim = std::min_element(
            pending_.begin(), pending_.end(), [](Entry* a, Entry* b) {
              if (a->request.priority != b->request.priority)
                return a->request.priority < b->request.priority;
              if (a->has_deadline != b->has_deadline)
                return !a->has_deadline;  // No deadline = most slack.
              if (a->has_deadline && a->deadline != b->deadline)
                return a->deadline > b->deadline;
              return a->accepted_index > b->accepted_index;
            });
        Entry* e = *victim;
        pending_.erase(victim);
        AttackResult r;
        r.status = Status::ResourceExhausted(
            "shed under overload (queue depth above watermark)");
        Finalize(e, std::move(r));
        any_shed = true;
      }
      if (any_shed) {
        stats_.queue_depth = static_cast<int64_t>(pending_.size());
        done_cv_.notify_all();
      }
    }
    if (pending_.empty()) continue;

    // Wave selection: expiring-soonest first (ties by admission order),
    // restricted to one graph version per wave, skipping entries still in
    // retry backoff.  Reordering cannot change any result — every
    // request's draws come from its own AttemptSeed stream.
    std::vector<Entry*> eligible;
    eligible.reserve(pending_.size());
    auto earliest_backoff =
        std::chrono::steady_clock::time_point::max();
    for (Entry* e : pending_) {
      if (e->eligible_at > now) {
        earliest_backoff = std::min(earliest_backoff, e->eligible_at);
        continue;
      }
      eligible.push_back(e);
    }
    if (eligible.empty()) {
      // Everything queued is backing off: sleep until the earliest retry
      // becomes eligible (or new work / stop arrives).
      work_cv_.wait_until(lock, earliest_backoff);
      continue;
    }
    std::sort(eligible.begin(), eligible.end(), [](Entry* a, Entry* b) {
      if (a->has_deadline != b->has_deadline) return a->has_deadline;
      if (a->has_deadline && a->deadline != b->deadline)
        return a->deadline < b->deadline;
      return a->accepted_index < b->accepted_index;
    });
    const GraphEntry* wave_graph = eligible.front()->graph;
    std::vector<Entry*> wave;
    for (Entry* e : eligible) {
      if (e->graph != wave_graph) continue;
      wave.push_back(e);
      if (static_cast<int64_t>(wave.size()) >= config_.wave_size) break;
    }

    // Degradation: while the queue is past the watermark, waves run with a
    // capped budget and a tighter per-target deadline — everything still
    // admitted finishes smaller instead of nothing finishing.
    const bool degraded =
        config_.degrade_watermark > 0 &&
        static_cast<int64_t>(pending_.size()) > config_.degrade_watermark;
    if (degraded) ++stats_.degraded_waves;
    double wave_deadline_ms = config_.target_deadline_ms;
    if (degraded && config_.degraded_target_deadline_ms > 0.0)
      wave_deadline_ms = config_.degraded_target_deadline_ms;

    std::vector<AttackRequest> requests;
    std::vector<uint64_t> seeds;
    requests.reserve(wave.size());
    seeds.reserve(wave.size());
    for (Entry* e : wave) {
      pending_.erase(std::find(pending_.begin(), pending_.end(), e));
      e->state = EntryState::kRunning;
      int64_t budget = e->request.budget;
      if (degraded && config_.degraded_budget_cap > 0)
        budget = std::min(budget, config_.degraded_budget_cap);
      e->out.effective_budget = budget;
      AttackRequest r;
      r.target_node = e->request.target_node;
      r.target_label = e->request.target_label;
      r.budget = budget;
      r.cancel = &e->token;
      requests.push_back(r);
      seeds.push_back(
          AttemptSeed(config_.base_seed, e->accepted_index, e->attempt));
    }
    in_flight_ = static_cast<int64_t>(wave.size());
    stats_.queue_depth = static_cast<int64_t>(pending_.size());

    AttackDriverConfig driver_config;
    driver_config.num_threads = config_.num_threads;
    driver_config.batch_targets = config_.batch_targets;
    driver_config.target_deadline_ms = wave_deadline_ms;
    driver_config.request_seeds = std::move(seeds);

    const AttackContext* ctx = wave_graph->ctx;
    const TargetedAttack* attack = wave_graph->attack;
    lock.unlock();
    std::vector<AttackResult> results =
        RunMultiTargetAttack(*ctx, *attack, requests, driver_config);
    lock.lock();

    const auto finished = std::chrono::steady_clock::now();
    for (size_t i = 0; i < wave.size(); ++i) {
      Entry* e = wave[i];
      AttackResult result = std::move(results[i]);
      const bool ran = result.status.code() != StatusCode::kSkipped;
      if (ran) {
        ++e->attempt;
        e->out.attempts = e->attempt;
        e->out.seed =
            AttemptSeed(config_.base_seed, e->accepted_index, e->attempt - 1);
      }
      const bool retry = !stopping_ &&
                         IsRetryableStatus(result.status.code()) &&
                         e->attempt < config_.max_attempts &&
                         !e->token.Expired();
      if (retry) {
        // Back off exponentially: retry r waits base * 2^(r-1) after the
        // failed attempt.  The retry draws from AttemptSeed(base, index,
        // attempt) — a stream disjoint from every first-attempt stream.
        const double backoff =
            config_.retry_backoff_ms *
            static_cast<double>(int64_t{1} << (e->attempt - 1));
        e->eligible_at =
            backoff > 0.0 ? AfterMs(finished, backoff) : finished;
        e->state = EntryState::kQueued;
        pending_.push_back(e);
        ++stats_.retried;
      } else {
        Finalize(e, std::move(result));
      }
    }
    in_flight_ = 0;
    stats_.queue_depth = static_cast<int64_t>(pending_.size());
    stats_.max_queue_depth =
        std::max(stats_.max_queue_depth, stats_.queue_depth);
    done_cv_.notify_all();
  }
  done_cv_.notify_all();
}

}  // namespace geattack
