#include "src/service/graph_snapshot.h"

#include <cmath>
#include <set>
#include <string>
#include <utility>

#include "src/tensor/csr.h"

namespace geattack {

namespace {

std::string EntryName(const char* kind, size_t i, const ChurnEdge& e) {
  return std::string("churn ") + kind + "[" + std::to_string(i) + "] = (" +
         std::to_string(e.u) + ", " + std::to_string(e.v) + ")";
}

}  // namespace

Status ValidateChurnBatch(const Graph& graph, const ChurnBatch& batch) {
  if (batch.added.empty() && batch.removed.empty())
    return Status::InvalidArgument(
        "empty churn batch (an epoch must change something)");
  const int64_t n = graph.num_nodes();
  std::set<std::pair<int64_t, int64_t>> seen;
  auto check = [&](const char* kind, const std::vector<ChurnEdge>& entries,
                   bool adding) -> Status {
    for (size_t i = 0; i < entries.size(); ++i) {
      const ChurnEdge& e = entries[i];
      if (!std::isfinite(e.weight) || e.weight != 1.0)
        return Status::InvalidArgument(
            EntryName(kind, i, e) + ": weight " + std::to_string(e.weight) +
            " is not the unit weight this unweighted graph supports");
      if (e.u < 0 || e.u >= n || e.v < 0 || e.v >= n)
        return Status::InvalidArgument(EntryName(kind, i, e) +
                                       ": endpoint out of range [0, " +
                                       std::to_string(n) + ")");
      if (e.u == e.v)
        return Status::InvalidArgument(EntryName(kind, i, e) + ": self loop");
      const auto key = std::minmax(e.u, e.v);
      if (!seen.insert({key.first, key.second}).second)
        return Status::InvalidArgument(
            EntryName(kind, i, e) + ": duplicate undirected pair in batch");
      if (adding && graph.HasEdge(e.u, e.v))
        return Status::InvalidArgument(EntryName(kind, i, e) +
                                       ": edge already present");
      if (!adding && !graph.HasEdge(e.u, e.v))
        return Status::InvalidArgument(EntryName(kind, i, e) +
                                       ": edge not present");
    }
    return Status::Ok();
  };
  Status s = check("add", batch.added, /*adding=*/true);
  if (!s.ok()) return s;
  return check("remove", batch.removed, /*adding=*/false);
}

std::vector<Edge> ChurnEdgesOf(const std::vector<ChurnEdge>& entries) {
  std::vector<Edge> out;
  out.reserve(entries.size());
  for (const ChurnEdge& e : entries) out.emplace_back(e.u, e.v);
  return out;
}

std::shared_ptr<const GraphSnapshot> MakeGraphSnapshot(
    const std::string& version, const GraphData& data, const Gcn& model,
    std::shared_ptr<const TargetedAttack> attack, bool dense) {
  GEA_CHECK(!version.empty());
  GEA_CHECK(attack != nullptr);
  auto snap = std::make_shared<GraphSnapshot>();
  snap->version = version;
  snap->epoch = 0;
  snap->dense = dense;
  snap->data = data;
  snap->model = std::make_shared<const Gcn>(model);
  snap->attack = std::move(attack);
  // Exactly the MakeSparseAttackContext / MakeAttackContext recipe
  // (src/eval/pipeline.cc) over the snapshot-owned copies, pinned by
  // tests/live_graph_test.cc, so epoch 0 is bit-identical to the caller's
  // own offline context.
  AttackContext& ctx = snap->ctx;
  ctx.data = &snap->data;
  ctx.model = snap->model.get();
  ctx.clean_csr = snap->data.graph.CsrAdjacency();
  ctx.clean_norm_csr = GcnNormalizeCsr(ctx.clean_csr);
  ctx.clean_degp1 = Tensor(snap->data.num_nodes(), 1);
  for (int64_t i = 0; i < snap->data.num_nodes(); ++i)
    ctx.clean_degp1.at(i, 0) =
        static_cast<double>(snap->data.graph.Degree(i)) + 1.0;
  if (dense) ctx.clean_adjacency = snap->data.graph.DenseAdjacency();
  return snap;
}

std::shared_ptr<const GraphSnapshot> ApplyChurn(
    const std::shared_ptr<const GraphSnapshot>& prev,
    const ChurnBatch& batch) {
  GEA_CHECK(prev != nullptr);
  GEA_CHECK(ValidateChurnBatch(prev->data.graph, batch).ok());
  const std::vector<Edge> added = ChurnEdgesOf(batch.added);
  const std::vector<Edge> removed = ChurnEdgesOf(batch.removed);

  auto next = std::make_shared<GraphSnapshot>();
  next->version = prev->version;
  next->epoch = prev->epoch + 1;
  next->dense = prev->dense;
  next->data = prev->data;
  next->model = prev->model;
  next->attack = prev->attack;
  for (const Edge& e : added) GEA_CHECK(next->data.graph.AddEdge(e.u, e.v));
  for (const Edge& e : removed)
    GEA_CHECK(next->data.graph.RemoveEdge(e.u, e.v));

  AttackContext& ctx = next->ctx;
  ctx.data = &next->data;
  ctx.model = next->model.get();
  ctx.clean_csr = ApplyEdgeFlips(prev->ctx.clean_csr, added, removed);
  ctx.clean_norm_csr = GcnRenormalizeAfterFlips(
      prev->ctx.clean_norm_csr, prev->ctx.clean_degp1, added, removed);
  // Integer degree deltas on integer-valued doubles: exact, so the column
  // matches a fresh Degree(i) + 1.0 rebuild bit for bit.
  ctx.clean_degp1 = prev->ctx.clean_degp1;
  for (const Edge& e : added) {
    ctx.clean_degp1.at(e.u, 0) += 1.0;
    ctx.clean_degp1.at(e.v, 0) += 1.0;
  }
  for (const Edge& e : removed) {
    ctx.clean_degp1.at(e.u, 0) -= 1.0;
    ctx.clean_degp1.at(e.v, 0) -= 1.0;
  }
  if (next->dense) {
    ctx.clean_adjacency = prev->ctx.clean_adjacency;
    for (const Edge& e : added) AddEdgeDense(&ctx.clean_adjacency, e.u, e.v);
    for (const Edge& e : removed) {
      ctx.clean_adjacency.at(e.u, e.v) = 0.0;
      ctx.clean_adjacency.at(e.v, e.u) = 0.0;
    }
    // Fresh scratch: the dense cached penalty base B = 11ᵀ − I − A depends
    // on the adjacency this epoch changed.
  } else {
    // The sparse caches (folded forward, X·W₁) are functions of features
    // and weights only — both shared across epochs — so reuse them.
    ctx.scratch = prev->ctx.scratch;
  }
  return next;
}

}  // namespace geattack
