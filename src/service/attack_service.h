// Overload-safe attack service over the fault-contained multi-target driver,
// with epoch-versioned LIVE graphs and kill−9 crash recovery.
//
// The driver (src/attack/driver.h) is a batch engine: give it a request
// vector and it returns results.  Real evaluation campaigns do not arrive
// as one tidy vector — targets trickle in from many experiments against
// many graph snapshots, sometimes faster than the machine can attack them,
// and the graphs themselves change under the load.  AttackService is the
// long-lived front end for that regime:
//
//   * a registry of graph versions, each a chain of immutable,
//     shared_ptr-owned GraphSnapshot epochs (src/service/graph_snapshot.h).
//     RegisterGraph COPIES the caller's data and model into epoch 0 — the
//     old raw-pointer "must outlive the service" contract is retired;
//   * live churn: UpdateGraph applies an atomic, validated edge-flip batch
//     and publishes epoch k + 1 built incrementally (ApplyEdgeFlips /
//     GcnRenormalizeAfterFlips), bit-identical to a fresh re-prepare.
//     In-flight waves finish on the snapshot they were dispatched against;
//     queued requests are re-pinned to the new epoch only when the churn
//     touches their augmented ball (see churn_ball_hops), so unaffected
//     work is provably NOT invalidated;
//   * a BOUNDED submission queue with admission control, deadline-aware
//     dispatch, retry with backoff, priority shedding and budget/deadline
//     degradation under watermarks, and a ServiceStats health snapshot
//     (see PR 9's semantics, unchanged);
//   * a crash-durable WAL (journal_path): admissions (`s`), churn batches
//     (`g`), and finalized results (`t`) are fsync'd geajournal-v3 records.
//     After a kill −9 at ANY point, a fresh service that re-registers the
//     same epoch-0 graphs and calls Recover() replays the WAL — rebuilding
//     every epoch, every completed result, and every still-pending ticket
//     from journal records alone — and re-runs only the remainder on the
//     recorded seed streams: exactly-once delivery per accepted ticket.
//
// Determinism contract (the reason a service layer can exist at all
// without breaking the repo's bit-identity invariant):
//
//   Every accepted request is assigned a monotonically increasing
//   accepted_index at admission.  Attempt 0 of request k draws from
//   Rng(AttemptSeed(base_seed, k, 0)) == Rng(TargetSeed(base_seed, k)) —
//   exactly the stream the offline driver gives position k.  So for every
//   request that completes on its first attempt with an undegraded budget,
//   the picks are bit-identical to RunMultiTargetAttack over the accepted
//   set in admission order ON ITS PINNED SNAPSHOT EPOCH, at ANY thread
//   count, queue bound, wave packing and arrival order.  Retries must not
//   reuse the attempt-0 stream (a retry that replayed the same draws after
//   a *transient* fault would anchor "retry" to "identical failure" for
//   deterministic faults), so attempt a > 0 draws from the distinct
//   documented stream AttemptSeed(base, k, a) = TargetSeed(TargetSeed(base,
//   k), a).  The final attempt number, seed, effective budget, and epoch
//   are recorded in the ServiceResult, so ANY completed request — retried,
//   degraded, or computed at a churned epoch — can be replayed offline
//   bit-identically by passing the recorded seed and budget straight to
//   the driver against that epoch's context (tests do exactly that).
//
// Epoch staleness: ServiceResult::epoch is the snapshot epoch the result
// was computed at.  A caller that churned the graph mid-flight can compare
// it against CurrentEpoch(version) to detect results that predate the
// churn — the service never silently re-runs them (their picks are still
// exact for their epoch; whether staleness matters is the caller's call).
//
// Recovery scope (the no-clock-bits doctrine, see CONTRIBUTING.md): the
// WAL records seeds, budgets, epochs, and outcomes — never wall-clock.
// Deadlines, shedding, and degradation are load/time-dependent, so the
// byte-identical kill−9 guarantee is scoped to configurations that do not
// use them (the crash harness runs max_attempts = 1, no watermarks, no
// deadlines); already-FINALIZED degraded/shed results replay faithfully
// from their records either way.  Replayed results report latency_ms = 0.
//
// Threading model: Submit/Cancel/Take/Drain/UpdateGraph/stats are
// thread-safe.  One internal dispatcher thread builds waves (same snapshot,
// expiring-soonest first, up to wave_size) and runs each wave through
// RunMultiTargetAttack with config.num_threads workers; faults stay
// contained per target by the driver's isolation machinery.  Recover() is
// NOT concurrent: call it once, after RegisterGraph and before any
// Submit/UpdateGraph, whenever journal_path is set.

#ifndef GEATTACK_SRC_SERVICE_ATTACK_SERVICE_H_
#define GEATTACK_SRC_SERVICE_ATTACK_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/attack/attack.h"
#include "src/attack/driver.h"
#include "src/attack/journal.h"
#include "src/base/status.h"
#include "src/service/graph_snapshot.h"

namespace geattack {

/// The per-attempt RNG seed.  Attempt 0 is TargetSeed(base_seed, index) —
/// the offline driver's stream for position `index` — so un-retried
/// completions are bit-identical to the offline run for free.  Retries mix
/// the attempt number through a second TargetSeed application, landing in
/// streams that are (a) disjoint from every attempt-0 stream and (b) stable
/// functions of (base_seed, index, attempt), so a retried result is still
/// exactly reproducible offline.
uint64_t AttemptSeed(uint64_t base_seed, int64_t accepted_index, int attempt);

struct AttackServiceConfig {
  /// Base seed of the accepted-index streams (see AttemptSeed).
  uint64_t base_seed = 0;
  /// Worker threads handed to the driver per dispatch wave.
  int num_threads = 1;
  /// Driver target-group size within a wave (see AttackDriverConfig).
  int batch_targets = 1;
  /// Bounded queue: Submit rejects with kResourceExhausted when this many
  /// requests are already queued (in-flight waves do not count).
  int64_t queue_capacity = 64;
  /// Max targets dispatched per wave (one wave = one driver call over
  /// requests pinned to a single snapshot epoch).
  int64_t wave_size = 8;
  /// Total attempts per request, first try included (>= 1; 1 = no retry).
  int max_attempts = 1;
  /// Base backoff before retry r (1-indexed): retry_backoff_ms * 2^(r-1)
  /// milliseconds after the failed attempt finished.  0 retries eagerly.
  double retry_backoff_ms = 0.0;
  /// Per-target deadline armed by the driver when the target starts
  /// (<= 0 = none).  Degradation may shrink it (see below).
  double target_deadline_ms = 0.0;
  /// Admission feasibility floor: a request submitted with a deadline
  /// tighter than this is rejected up front with kResourceExhausted — it
  /// could not finish even on an idle service, so queueing it only steals
  /// a slot from a request that could.  <= 0 disables the check.
  double min_feasible_deadline_ms = 0.0;
  /// Shedding watermark: when the queue is deeper than this, the
  /// dispatcher sheds the lowest-priority / latest-deadline requests
  /// (structured kResourceExhausted results) until the depth is back at
  /// the watermark.  0 disables shedding (the bounded queue still rejects
  /// at capacity).
  int64_t shed_watermark = 0;
  /// Degradation watermark: waves dispatched while the queue is deeper
  /// than this run with the degraded budget/deadline below.  0 disables.
  int64_t degrade_watermark = 0;
  /// Per-target budget cap applied to degraded waves (> 0 to enable).
  /// The *effective* budget is recorded in the ServiceResult, so degraded
  /// completions remain offline-reproducible.
  int64_t degraded_budget_cap = 0;
  /// Per-target deadline for degraded waves (> 0 to enable; replaces
  /// target_deadline_ms for those waves).
  double degraded_target_deadline_ms = 0.0;
  /// Ball-overlap invalidation radius for UpdateGraph: a QUEUED request is
  /// re-pinned to the new epoch only when some churn endpoint lies within
  /// `churn_ball_hops` hops of its target in the augmented graph (clean
  /// edges + its candidate edges) — outside that ball, the view, its
  /// out-degrees, and the candidate set are provably unchanged, so old-
  /// and new-epoch picks are identical and the old pin stays valid.
  /// MUST be >= the attacker's own view radius (e.g. GEAttackConfig::hops)
  /// for that proof to apply; the default -1 is the conservative whole-
  /// graph ball (every queued request re-pins on every churn), matching
  /// the in-tree attackers that default to hops = -1.
  int churn_ball_hops = -1;
  /// Crash-recovery WAL path; empty disables journaling.  When set,
  /// Recover() must be called once after registering the epoch-0 graphs
  /// and before any Submit/UpdateGraph — on a fresh path it just opens the
  /// WAL, after a crash it replays it.
  std::string journal_path;
};

/// One submission.
struct AttackServiceRequest {
  /// Registered graph version to attack (see RegisterGraph).
  std::string graph;
  int64_t target_node = -1;
  /// Desired wrong label; -1 = untargeted.
  int64_t target_label = -1;
  int64_t budget = 1;
  /// Shedding priority: LOWER values are shed first under overload.
  /// Equal-priority ties shed the latest-deadline request first (it has
  /// the most slack to resubmit).
  int32_t priority = 0;
  /// Relative deadline from admission, in milliseconds; <= 0 = none.
  /// Queue wait counts against it: a request still queued when it expires
  /// comes back kSkipped without ever consuming its rng stream.
  double deadline_ms = 0.0;
};

/// Submit outcome: ok() with a ticket, or a structured rejection
/// (kResourceExhausted / kNotFound / kInvalidArgument) with ticket -1.
struct Admission {
  Status status;
  int64_t ticket = -1;
};

/// UpdateGraph outcome: ok() with the new epoch number, or a structured
/// rejection (kNotFound for an unregistered version, kInvalidArgument for
/// a malformed batch — in which case NOTHING was mutated).
struct ChurnResult {
  Status status;
  /// Epoch the batch created; -1 on rejection.
  int64_t epoch = -1;
  /// Queued requests re-pinned to the new epoch (ball overlap).
  int64_t requeued = 0;
};

/// What Recover() rebuilt from the WAL.
struct RecoveryReport {
  /// Ok, or the load's kDataLoss when a complete record failed CRC (replay
  /// still used everything before the corruption).
  Status status;
  /// Churn batches re-applied (epochs rebuilt).
  int64_t churn_batches = 0;
  /// Tickets whose recorded results were replayed (no recomputation).
  int64_t replayed_results = 0;
  /// Tickets re-queued for execution (admitted but never finalized).
  int64_t pending = 0;
  /// The re-queued tickets, in admission order — a resuming driver submits
  /// only work NOT in this list and Takes everything.
  std::vector<int64_t> pending_tickets;
  /// Tickets with replayed results, in finalization order.
  std::vector<int64_t> completed_tickets;
};

/// Final outcome of one accepted request, consumed via Take(ticket).
struct ServiceResult {
  AttackResult result;
  /// Position in the accepted sequence — the offline reference index.
  int64_t accepted_index = -1;
  /// Attempts actually run (0 = shed/cancelled before the first attempt).
  int attempts = 0;
  /// Seed of the final attempt: AttemptSeed(base, accepted_index,
  /// attempts - 1) when attempts > 0.
  uint64_t seed = 0;
  /// Budget the final attempt ran with (== requested unless degraded).
  int64_t effective_budget = 0;
  /// Snapshot epoch the result was computed at (the pin at finalization).
  /// Compare against CurrentEpoch(version) to detect staleness after
  /// churn; -1 only for never-admitted sentinel results (unknown ticket).
  int64_t epoch = -1;
  /// Wall-clock milliseconds from admission to finalization (queue wait +
  /// attempts + backoff).  The open-loop bench derives p50/p99 from this.
  /// 0 for results replayed from the WAL by Recover() — wall-clock is
  /// never journaled (no clock bits in recovery state).
  double latency_ms = 0.0;
};

/// Monotonic health counters plus current queue state.  `queue_depth` and
/// `in_flight` are instantaneous; everything else only ever increases.
/// Conservation identity (holds at every quiescent point and is pinned
/// under races by service_test):
///   accepted == completed_ok + failed + timed_out + skipped + shed
///               + queue_depth + in_flight.
struct ServiceStats {
  int64_t submitted = 0;
  int64_t accepted = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_infeasible = 0;
  int64_t rejected_invalid = 0;   ///< kInvalidArgument / kNotFound rejects.
  int64_t shed = 0;               ///< Accepted, then shed under overload.
  int64_t retried = 0;            ///< Re-dispatched attempts (not requests).
  int64_t completed_ok = 0;
  int64_t failed = 0;             ///< Final kError / kInvalidArgument.
  int64_t timed_out = 0;          ///< Final kTimedOut (retries exhausted).
  int64_t skipped = 0;            ///< Deadline expired before a try ran.
  int64_t degraded_waves = 0;
  int64_t churn_batches = 0;      ///< Accepted UpdateGraph batches.
  int64_t requeued_stale = 0;     ///< Queued requests re-pinned by churn.
  int64_t replayed_results = 0;   ///< Results rebuilt from the WAL.
  int64_t queue_depth = 0;
  int64_t max_queue_depth = 0;
  int64_t in_flight = 0;
};

class AttackService {
 public:
  explicit AttackService(const AttackServiceConfig& config);
  ~AttackService();
  AttackService(const AttackService&) = delete;
  AttackService& operator=(const AttackService&) = delete;

  /// Registers a graph version at epoch 0, COPYING `data` and `model` into
  /// a service-owned immutable snapshot (derived context bit-identical to
  /// MakeSparseAttackContext / MakeAttackContext on the same inputs, so
  /// offline references built by the caller still match).  `attack` is
  /// shared, not copied.  Re-registering a name is an error — snapshots
  /// are immutable; churn happens through UpdateGraph, which publishes the
  /// next epoch under the same name.  `dense_context` additionally
  /// materializes the dense clean adjacency (small reference graphs only).
  Status RegisterGraph(const std::string& version, const GraphData& data,
                       const Gcn& model,
                       std::shared_ptr<const TargetedAttack> attack,
                       bool dense_context = false);

  /// Applies one atomic churn batch to `version`, publishing the next
  /// epoch.  Validation is all-or-nothing: any malformed entry (range,
  /// self-loop, duplicate, add-present / remove-absent, non-finite or
  /// non-unit weight) rejects the WHOLE batch with kInvalidArgument and
  /// zero mutation.  In-flight waves are never disturbed; queued requests
  /// re-pin to the new epoch only on ball overlap (churn_ball_hops).
  /// Concurrent UpdateGraph calls serialize; Submit/Take stay live while
  /// the new snapshot is built.
  ChurnResult UpdateGraph(const std::string& version,
                          const ChurnBatch& batch);

  /// Replays the WAL after a crash (or opens it fresh).  Must be called
  /// exactly once, after every epoch-0 RegisterGraph and before any
  /// Submit / UpdateGraph, whenever journal_path is set.  Rebuilds epochs
  /// from `g` records, completed results from `t` records (Take works on
  /// them immediately), and re-queues admitted-but-unfinalized tickets on
  /// their recorded accepted_index streams.
  RecoveryReport Recover();

  /// Admission control.  Never blocks.  Rejections are structured:
  /// kNotFound (unregistered graph), kInvalidArgument (bad node / label /
  /// budget), kResourceExhausted (queue full, or deadline below the
  /// feasibility floor).  With journaling on, the admission is durable
  /// (fsync'd `s` record) before the ticket is returned.
  Admission Submit(const AttackServiceRequest& request);

  /// Cooperatively cancels a queued or running request.  Queued requests
  /// finalize as kSkipped without consuming their rng stream; running ones
  /// stop at the next loop-top poll with kTimedOut partial results.
  void Cancel(int64_t ticket);

  /// Blocks until `ticket` finishes and consumes its result.  A ticket
  /// that was never issued (or already taken) returns kNotFound.
  ServiceResult Take(int64_t ticket);

  /// Blocks until the queue is empty and no wave is in flight.
  void Drain();

  /// Stops the dispatcher; queued requests finalize as kResourceExhausted
  /// ("service stopping").  Idempotent; the destructor calls it.
  void Stop();

  /// Current epoch of `version`, or -1 if unregistered.
  int64_t CurrentEpoch(const std::string& version) const;

  /// Current snapshot of `version` (offline-reference contexts for tests
  /// and benches), or nullptr if unregistered.
  std::shared_ptr<const GraphSnapshot> CurrentSnapshot(
      const std::string& version) const;

  ServiceStats stats() const;

 private:
  enum class EntryState { kQueued, kRunning, kDone };

  struct Entry {
    int64_t ticket = -1;
    AttackServiceRequest request;
    /// Pinned snapshot: the epoch this request will run (or ran) against.
    /// UpdateGraph re-pins QUEUED entries on ball overlap; running entries
    /// keep theirs until finalization.
    std::shared_ptr<const GraphSnapshot> snap;
    int64_t accepted_index = -1;
    /// Next attempt number to run (0-based).
    int attempt = 0;
    /// Earliest dispatch time (backoff); default = immediately.
    std::chrono::steady_clock::time_point eligible_at{};
    /// Absolute deadline mirror of `token` for expiring-soonest ordering.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /// Armed at admission; chained under the driver's per-target token so
    /// queue wait counts against the request's deadline.
    CancellationToken token;
    std::chrono::steady_clock::time_point submitted_at{};
    EntryState state = EntryState::kQueued;
    ServiceResult out;
  };

  /// Dispatcher body: shed, pick a wave, run it, finalize/requeue.
  void DispatcherLoop();
  /// Marks `e` done with `result`, stamps the epoch, updates final-outcome
  /// counters, and (unless `from_replay`) appends the WAL `t` record.
  /// Caller holds mu_.
  void Finalize(Entry* e, AttackResult result, bool from_replay = false);
  /// Bumps the final-outcome counter for `code`.  Caller holds mu_.
  void CountOutcome(StatusCode code);
  /// True when the config enables the WAL.  The writer must then be open
  /// (Recover() was called) before any admission or churn.
  bool journaling() const { return !config_.journal_path.empty(); }

  const AttackServiceConfig config_;

  /// Serializes UpdateGraph callers so each next-epoch snapshot is built
  /// (outside mu_, keeping Submit/Take live) against a stable predecessor.
  /// Lock order: churn_mu_ before mu_; nothing under mu_ takes churn_mu_.
  std::mutex churn_mu_;

  // mu_ is the lock itself, not a lazily filled cache: every member it
  // protects is read and written only under this mutex (const stats()
  // included). lint-ok: unguarded-mutable (the mutex is the guard)
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< Wakes the dispatcher.
  std::condition_variable done_cv_;   ///< Wakes Take()/Drain() waiters.
  /// Current (latest-epoch) snapshot per version.  Older epochs stay alive
  /// exactly as long as some queued/running entry or caller pins them.
  std::map<std::string, std::shared_ptr<const GraphSnapshot>> graphs_;
  std::map<int64_t, std::unique_ptr<Entry>> entries_;  ///< By ticket.
  std::vector<Entry*> pending_;       ///< Queued tickets, unordered.
  int64_t next_ticket_ = 0;
  int64_t next_accepted_index_ = 0;
  int64_t in_flight_ = 0;
  bool stopping_ = false;
  bool recovered_ = false;            ///< Recover() already ran.
  ServiceStats stats_;
  ServiceJournalWriter wal_;

  std::thread dispatcher_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_SERVICE_ATTACK_SERVICE_H_
