// Overload-safe attack service over the fault-contained multi-target driver.
//
// The driver (src/attack/driver.h) is a batch engine: give it a request
// vector and it returns results.  Real evaluation campaigns do not arrive
// as one tidy vector — targets trickle in from many experiments against
// many graph snapshots, sometimes faster than the machine can attack them.
// AttackService is the long-lived front end for that regime:
//
//   * a registry of graph versions (context + attacker), so one service
//     instance serves attacks against several registered snapshots;
//   * a BOUNDED submission queue with admission control: a full queue or a
//     deadline that is already infeasible rejects the request *at submit
//     time* with kResourceExhausted, instead of letting it rot in an
//     unbounded backlog and time out after wasting queue slots;
//   * deadline-aware dispatch: queued requests run expiring-soonest first.
//     Reordering is SAFE here because a request's picks depend only on its
//     own seed (below), never on what ran before it;
//   * retry with exponential backoff for transient failures (kError,
//     kTimedOut — see IsRetryableStatus), each retry drawing from a
//     distinct documented seed stream;
//   * graceful degradation under sustained overload: above configurable
//     queue watermarks the service sheds the lowest-priority requests
//     (structured kResourceExhausted results, not silent drops) and/or
//     shrinks the per-target budget and deadline so that everything still
//     admitted finishes, smaller, instead of nothing finishing at all;
//   * a ServiceStats health snapshot (accepted / shed / retried /
//     completed counters, queue depth) cheap enough to poll per scrape.
//
// Determinism contract (the reason a service layer can exist at all
// without breaking the repo's bit-identity invariant):
//
//   Every accepted request is assigned a monotonically increasing
//   accepted_index at admission.  Attempt 0 of request k draws from
//   Rng(AttemptSeed(base_seed, k, 0)) == Rng(TargetSeed(base_seed, k)) —
//   exactly the stream the offline driver gives position k.  So for every
//   request that completes on its first attempt with an undegraded budget,
//   the picks are bit-identical to RunMultiTargetAttack over the accepted
//   set in admission order, at ANY thread count, queue bound, wave packing
//   and arrival order.  Retries must not reuse the attempt-0 stream (a
//   retry that replayed the same draws after a *transient* fault would
//   anchor "retry" to "identical failure" for deterministic faults), so
//   attempt a > 0 draws from the distinct documented stream
//   AttemptSeed(base, k, a) = TargetSeed(TargetSeed(base, k), a).  The
//   final attempt number, seed and effective budget are recorded in the
//   ServiceResult, so ANY completed request — retried or degraded — can be
//   replayed offline bit-identically by passing the recorded seed and
//   budget straight to the driver (tests/service_test.cc does exactly
//   that; bench_attack's overload gate uses the plain admission-order
//   reference).
//
// Threading model: Submit/Cancel/Take/Drain/stats are thread-safe.  One
// internal dispatcher thread builds waves (same graph version,
// expiring-soonest first, up to wave_size) and runs each wave through
// RunMultiTargetAttack with config.num_threads workers; faults stay
// contained per target by the driver's isolation machinery.

#ifndef GEATTACK_SRC_SERVICE_ATTACK_SERVICE_H_
#define GEATTACK_SRC_SERVICE_ATTACK_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/attack/attack.h"
#include "src/attack/driver.h"
#include "src/base/status.h"

namespace geattack {

/// The per-attempt RNG seed.  Attempt 0 is TargetSeed(base_seed, index) —
/// the offline driver's stream for position `index` — so un-retried
/// completions are bit-identical to the offline run for free.  Retries mix
/// the attempt number through a second TargetSeed application, landing in
/// streams that are (a) disjoint from every attempt-0 stream and (b) stable
/// functions of (base_seed, index, attempt), so a retried result is still
/// exactly reproducible offline.
uint64_t AttemptSeed(uint64_t base_seed, int64_t accepted_index, int attempt);

struct AttackServiceConfig {
  /// Base seed of the accepted-index streams (see AttemptSeed).
  uint64_t base_seed = 0;
  /// Worker threads handed to the driver per dispatch wave.
  int num_threads = 1;
  /// Driver target-group size within a wave (see AttackDriverConfig).
  int batch_targets = 1;
  /// Bounded queue: Submit rejects with kResourceExhausted when this many
  /// requests are already queued (in-flight waves do not count).
  int64_t queue_capacity = 64;
  /// Max targets dispatched per wave (one wave = one driver call over
  /// requests of a single graph version).
  int64_t wave_size = 8;
  /// Total attempts per request, first try included (>= 1; 1 = no retry).
  int max_attempts = 1;
  /// Base backoff before retry r (1-indexed): retry_backoff_ms * 2^(r-1)
  /// milliseconds after the failed attempt finished.  0 retries eagerly.
  double retry_backoff_ms = 0.0;
  /// Per-target deadline armed by the driver when the target starts
  /// (<= 0 = none).  Degradation may shrink it (see below).
  double target_deadline_ms = 0.0;
  /// Admission feasibility floor: a request submitted with a deadline
  /// tighter than this is rejected up front with kResourceExhausted — it
  /// could not finish even on an idle service, so queueing it only steals
  /// a slot from a request that could.  <= 0 disables the check.
  double min_feasible_deadline_ms = 0.0;
  /// Shedding watermark: when the queue is deeper than this, the
  /// dispatcher shuts out the lowest-priority / latest-deadline requests
  /// (structured kResourceExhausted results) until the depth is back at
  /// the watermark.  0 disables shedding (the bounded queue still rejects
  /// at capacity).
  int64_t shed_watermark = 0;
  /// Degradation watermark: waves dispatched while the queue is deeper
  /// than this run with the degraded budget/deadline below.  0 disables.
  int64_t degrade_watermark = 0;
  /// Per-target budget cap applied to degraded waves (> 0 to enable).
  /// The *effective* budget is recorded in the ServiceResult, so degraded
  /// completions remain offline-reproducible.
  int64_t degraded_budget_cap = 0;
  /// Per-target deadline for degraded waves (> 0 to enable; replaces
  /// target_deadline_ms for those waves).
  double degraded_target_deadline_ms = 0.0;
};

/// One submission.
struct AttackServiceRequest {
  /// Registered graph version to attack (see RegisterGraph).
  std::string graph;
  int64_t target_node = -1;
  /// Desired wrong label; -1 = untargeted.
  int64_t target_label = -1;
  int64_t budget = 1;
  /// Shedding priority: LOWER values are shed first under overload.
  /// Equal-priority ties shed the latest-deadline request first (it has
  /// the most slack to resubmit).
  int32_t priority = 0;
  /// Relative deadline from admission, in milliseconds; <= 0 = none.
  /// Queue wait counts against it: a request still queued when it expires
  /// comes back kSkipped without ever consuming its rng stream.
  double deadline_ms = 0.0;
};

/// Submit outcome: ok() with a ticket, or a structured rejection
/// (kResourceExhausted / kNotFound / kInvalidArgument) with ticket -1.
struct Admission {
  Status status;
  int64_t ticket = -1;
};

/// Final outcome of one accepted request, consumed via Take(ticket).
struct ServiceResult {
  AttackResult result;
  /// Position in the accepted sequence — the offline reference index.
  int64_t accepted_index = -1;
  /// Attempts actually run (0 = shed/cancelled before the first attempt).
  int attempts = 0;
  /// Seed of the final attempt: AttemptSeed(base, accepted_index,
  /// attempts - 1) when attempts > 0.
  uint64_t seed = 0;
  /// Budget the final attempt ran with (== requested unless degraded).
  int64_t effective_budget = 0;
  /// Wall-clock milliseconds from admission to finalization (queue wait +
  /// attempts + backoff).  The open-loop bench derives p50/p99 from this.
  double latency_ms = 0.0;
};

/// Monotonic health counters plus current queue state.  `queue_depth` and
/// `in_flight` are instantaneous; everything else only ever increases.
struct ServiceStats {
  int64_t submitted = 0;
  int64_t accepted = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_infeasible = 0;
  int64_t rejected_invalid = 0;   ///< kInvalidArgument / kNotFound rejects.
  int64_t shed = 0;               ///< Accepted, then shed under overload.
  int64_t retried = 0;            ///< Re-dispatched attempts (not requests).
  int64_t completed_ok = 0;
  int64_t failed = 0;             ///< Final kError / kInvalidArgument.
  int64_t timed_out = 0;          ///< Final kTimedOut (retries exhausted).
  int64_t skipped = 0;            ///< Deadline expired before a try ran.
  int64_t degraded_waves = 0;
  int64_t queue_depth = 0;
  int64_t max_queue_depth = 0;
  int64_t in_flight = 0;
};

class AttackService {
 public:
  explicit AttackService(const AttackServiceConfig& config);
  ~AttackService();
  AttackService(const AttackService&) = delete;
  AttackService& operator=(const AttackService&) = delete;

  /// Registers a graph version.  `ctx` and `attack` are borrowed and must
  /// outlive the service.  Re-registering a name is an error (versions are
  /// immutable snapshots — publish a new name instead).
  Status RegisterGraph(const std::string& version, const AttackContext* ctx,
                       const TargetedAttack* attack);

  /// Admission control.  Never blocks.  Rejections are structured:
  /// kNotFound (unregistered graph), kInvalidArgument (bad node / label /
  /// budget), kResourceExhausted (queue full, or deadline below the
  /// feasibility floor).
  Admission Submit(const AttackServiceRequest& request);

  /// Cooperatively cancels a queued or running request.  Queued requests
  /// finalize as kSkipped without consuming their rng stream; running ones
  /// stop at the next loop-top poll with kTimedOut partial results.
  void Cancel(int64_t ticket);

  /// Blocks until `ticket` finishes and consumes its result.  A ticket
  /// that was never issued (or already taken) returns kNotFound.
  ServiceResult Take(int64_t ticket);

  /// Blocks until the queue is empty and no wave is in flight.
  void Drain();

  /// Stops the dispatcher; queued requests finalize as kResourceExhausted
  /// ("service stopping").  Idempotent; the destructor calls it.
  void Stop();

  ServiceStats stats() const;

 private:
  struct GraphEntry {
    const AttackContext* ctx = nullptr;
    const TargetedAttack* attack = nullptr;
  };

  enum class EntryState { kQueued, kRunning, kDone };

  struct Entry {
    int64_t ticket = -1;
    AttackServiceRequest request;
    const GraphEntry* graph = nullptr;
    int64_t accepted_index = -1;
    /// Next attempt number to run (0-based).
    int attempt = 0;
    /// Earliest dispatch time (backoff); default = immediately.
    std::chrono::steady_clock::time_point eligible_at{};
    /// Absolute deadline mirror of `token` for expiring-soonest ordering.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /// Armed at admission; chained under the driver's per-target token so
    /// queue wait counts against the request's deadline.
    CancellationToken token;
    std::chrono::steady_clock::time_point submitted_at{};
    EntryState state = EntryState::kQueued;
    ServiceResult out;
  };

  /// Dispatcher body: shed, pick a wave, run it, finalize/requeue.
  void DispatcherLoop();
  /// Marks `e` done with `result` and updates final-outcome counters.
  /// Caller holds mu_.
  void Finalize(Entry* e, AttackResult result);

  const AttackServiceConfig config_;

  // mu_ is the lock itself, not a lazily filled cache: every member it
  // protects is read and written only under this mutex (const stats()
  // included). lint-ok: unguarded-mutable (the mutex is the guard)
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< Wakes the dispatcher.
  std::condition_variable done_cv_;   ///< Wakes Take()/Drain() waiters.
  std::map<std::string, GraphEntry> graphs_;
  std::map<int64_t, std::unique_ptr<Entry>> entries_;  ///< By ticket.
  std::vector<Entry*> pending_;       ///< Queued tickets, unordered.
  int64_t next_ticket_ = 0;
  int64_t next_accepted_index_ = 0;
  int64_t in_flight_ = 0;
  bool stopping_ = false;
  ServiceStats stats_;

  std::thread dispatcher_;
};

}  // namespace geattack

#endif  // GEATTACK_SRC_SERVICE_ATTACK_SERVICE_H_
