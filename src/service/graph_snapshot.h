// Epoch-versioned immutable graph snapshots for the live attack service.
//
// A registered graph version is no longer a borrowed (context, attack)
// pointer pair: it is a chain of GraphSnapshot epochs, each an immutable,
// shared_ptr-owned copy of everything an attack wave needs (graph, features,
// labels, trained model, attack implementation, and the derived
// AttackContext).  Epoch 0 is built from the caller's data at registration;
// every UpdateGraph applies one validated ChurnBatch and produces epoch
// k + 1 *incrementally* — ApplyEdgeFlips on the CSR, integer degree deltas,
// GcnRenormalizeAfterFlips on the normalized values — instead of a full
// re-prepare.
//
// The bit-identity contract that makes incremental maintenance safe:
// every derived field of an ApplyChurn snapshot is bit-identical to a
// context built from scratch on the churned graph (MakeSparseAttackContext
// recipe).  CSR values are exact (0/1 copies), degrees are exact integer
// arithmetic in doubles, and GcnRenormalizeAfterFlips *recomputes* touched
// normalized entries with GcnNormalizeCsr's own expression rather than
// rescaling them.  tests/live_graph_test.cc pins this field by field, so a
// wave dispatched against epoch k computes exactly what an offline driver
// run on a frozen copy of epoch k would.
//
// Churn admission is all-or-nothing: ValidateChurnBatch checks every entry
// (range, self-loop, duplicate, add-present / remove-absent, non-finite or
// non-unit weight) before anything is applied, so a malformed batch yields
// a structured kInvalidArgument with zero partial mutation.

#ifndef GEATTACK_SRC_SERVICE_GRAPH_SNAPSHOT_H_
#define GEATTACK_SRC_SERVICE_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/attack/attack.h"
#include "src/base/status.h"
#include "src/graph/graph.h"
#include "src/nn/gcn.h"

namespace geattack {

/// One churn entry.  The graphs served here are unweighted, so `weight`
/// exists to make weighted upstream feeds fail loudly instead of silently
/// dropping information: validation requires exactly 1.0 (NaN, Inf, and any
/// other value are the "non-finite / malformed" rejection class).
struct ChurnEdge {
  int64_t u = -1;
  int64_t v = -1;
  double weight = 1.0;
};

/// One atomic edge-flip batch: applied in full or not at all.
struct ChurnBatch {
  std::vector<ChurnEdge> added;
  std::vector<ChurnEdge> removed;
};

/// All-or-nothing admission check against the CURRENT graph.  Returns Ok or
/// kInvalidArgument naming the first offending entry; performs no mutation
/// ever.  Rejected: empty batches, endpoints out of [0, n), self loops,
/// repeated undirected pairs anywhere in the batch (including the same pair
/// added and removed), adds of present edges, removes of absent edges, and
/// weights that are non-finite or != 1.0.
Status ValidateChurnBatch(const Graph& graph, const ChurnBatch& batch);

/// `batch`'s add (or remove) list as canonical Edge pairs, in batch order.
/// Requires a validated batch.
std::vector<Edge> ChurnEdgesOf(const std::vector<ChurnEdge>& entries);

/// One immutable epoch of a registered graph version.  `ctx` points at the
/// snapshot's own `data`/`model`, so a wave holding the shared_ptr can run
/// on it regardless of concurrent churn or deregistration — the raw-pointer
/// "must outlive the service" contract is retired.  Never copied after
/// construction (ctx would dangle).
struct GraphSnapshot {
  GraphSnapshot() = default;
  GraphSnapshot(const GraphSnapshot&) = delete;
  GraphSnapshot& operator=(const GraphSnapshot&) = delete;

  std::string version;
  int64_t epoch = 0;
  /// Whether ctx carries a dense clean_adjacency (small-graph reference
  /// paths); sparse-only snapshots never densify.
  bool dense = false;
  GraphData data;
  std::shared_ptr<const Gcn> model;            ///< Shared across epochs.
  std::shared_ptr<const TargetedAttack> attack;  ///< Shared across epochs.
  AttackContext ctx;
};

/// Builds epoch 0 of `version` by copying `data` and `model` into the
/// snapshot and deriving the context with exactly the
/// MakeSparseAttackContext / MakeAttackContext recipe, so service results
/// are bit-identical to an offline driver run on the caller's own context.
std::shared_ptr<const GraphSnapshot> MakeGraphSnapshot(
    const std::string& version, const GraphData& data, const Gcn& model,
    std::shared_ptr<const TargetedAttack> attack, bool dense);

/// Applies a VALIDATED batch to `prev`, producing the next epoch.  All
/// derived state is maintained incrementally yet bit-identical to a fresh
/// build (see file comment).  Sparse-only snapshots share `prev`'s
/// AttackScratch (its cached X·W₁ fold is graph-independent); dense
/// snapshots get a fresh scratch because the cached penalty base depends on
/// the adjacency.  GEA_CHECKs on unvalidated input.
std::shared_ptr<const GraphSnapshot> ApplyChurn(
    const std::shared_ptr<const GraphSnapshot>& prev, const ChurnBatch& batch);

}  // namespace geattack

#endif  // GEATTACK_SRC_SERVICE_GRAPH_SNAPSHOT_H_
